package impeccable_test

import (
	"testing"

	"impeccable"
	"impeccable/internal/dock"
)

// fastPublicConfig shrinks everything for the public-API integration
// tests.
func fastPublicConfig() impeccable.Config {
	cfg := impeccable.DefaultConfig(impeccable.PLPro())
	cfg.LibrarySize = 1000
	cfg.TrainSize = 200
	cfg.CGCount = 4
	cfg.TopCompounds = 2
	cfg.OutliersPer = 2
	cfg.FastProtocols = true
	p := dock.DefaultParams()
	p.Runs = 1
	p.Generations = 8
	p.Population = 20
	cfg.DockParams = &p
	return cfg
}

func TestPublicAPICampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	res, err := impeccable.RunCampaign(fastPublicConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Funnel.Screened != 1000 || res.Funnel.CG != 4 {
		t.Fatalf("funnel = %+v", res.Funnel)
	}
	if res.RES == nil || len(res.Top) == 0 {
		t.Fatal("missing artifacts")
	}
}

func TestPublicAPITargetsAndLibraries(t *testing.T) {
	targets := impeccable.StandardTargets()
	if len(targets) != 4 {
		t.Fatalf("targets = %d", len(targets))
	}
	ozd, ord := impeccable.StandardLibraries(1, 0.0001)
	if ozd.Size() == 0 || ord.Size() == 0 {
		t.Fatal("empty libraries")
	}
	m := impeccable.MoleculeFromID(42)
	if m.SMILES == "" {
		t.Fatal("molecule missing SMILES")
	}
	for _, tg := range targets {
		dg := tg.TrueAffinity(m)
		if dg < -18 || dg > 2 {
			t.Fatalf("affinity out of range: %v", dg)
		}
	}
}

func TestPublicAPISimulation(t *testing.T) {
	cfg := impeccable.DefaultSimConfig()
	cfg.Pipelines = 2
	cfg.Nodes = 16
	res := impeccable.RunSim(cfg)
	if res.Makespan <= 0 || len(res.Trace) == 0 {
		t.Fatalf("sim result malformed: %+v", res)
	}
	scale := impeccable.SimDockingAtScale(64, 20000, 1)
	if scale.Throughput <= 0 || scale.Utilization <= 0 {
		t.Fatalf("scaling result malformed: %+v", scale)
	}
}

func TestPublicAPITable2(t *testing.T) {
	rows := impeccable.Table2()
	if len(rows) != 5 || rows[0].Method == "" {
		t.Fatalf("Table2 = %+v", rows)
	}
}

func TestPublicAPIEnTKPath(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	res, err := impeccable.RunCampaignViaEnTK(fastPublicConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PilotTrace) == 0 {
		t.Fatal("EnTK path produced no pilot trace")
	}
}

func TestPublicAPIIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	cfg := fastPublicConfig()
	cfg.LibrarySize = 600
	cfg.TrainSize = 120
	results, sums, err := impeccable.RunIterations(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(sums) != 2 {
		t.Fatalf("iterations = %d", len(results))
	}
	if sums[1].PoolSize <= sums[0].PoolSize {
		t.Fatal("pool did not accumulate")
	}
}
