// bench_test.go regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers). Each benchmark prints
// its headline quantities through b.ReportMetric / b.Logf:
//
//	go test -bench=. -benchmem
//
// Naming: BenchmarkTableN_* and BenchmarkFigN_* map one-to-one onto the
// paper's evaluation artifacts; BenchmarkScaling_* and BenchmarkAblation_*
// cover the §8 scale claims and the §5.1 design-choice claims.
package impeccable

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"impeccable/internal/campaign"
	"impeccable/internal/chem"
	"impeccable/internal/deepdrive"
	"impeccable/internal/dock"
	"impeccable/internal/esmacs"
	"impeccable/internal/hpc"
	"impeccable/internal/latent"
	"impeccable/internal/raptor"
	"impeccable/internal/receptor"
	"impeccable/internal/stats"
	"impeccable/internal/surrogate"
	"impeccable/internal/ties"
	"impeccable/internal/xrand"
)

// fastCG/fastFG shrink MD durations while preserving the CG:FG structure
// (replica counts and duration ratios), so benches finish in seconds.
func fastCG() esmacs.Protocol {
	p := esmacs.CG()
	p.EquilSteps, p.ProdSteps, p.MinimizeIters = 40, 160, 25
	return p
}

func fastFG() esmacs.Protocol {
	p := esmacs.FG()
	p.EquilSteps, p.ProdSteps, p.MinimizeIters = 80, 400, 40
	return p
}

// BenchmarkTable2_CostLadder measures the wall-clock cost per ligand of
// each integrated method on this substrate and reports the cost ratios
// that Table 2 normalizes to node-hours. The paper's ladder spans ~6
// orders of magnitude (docking 1e-4 → FG 5 node-h); the reproduced
// ladder's *ratios* are the comparable quantity.
func BenchmarkTable2_CostLadder(b *testing.B) {
	tg := receptor.PLPro()
	m := chem.FromID(42)
	for i := 0; i < b.N; i++ {
		runner := esmacs.NewRunner(tg, 1)
		eng := dock.NewEngine(tg, 1)
		runner.Workers = 1 // measure cost, not host parallelism
		eng.Workers = 1
		eng.Params.Runs = 2

		tDock := wallSeconds(func() { eng.DockOne(m) })
		cgEst := esmacs.Estimate{}
		tCG := wallSeconds(func() { cgEst = runner.Estimate(m, nil, fastCG()) })
		tFG := wallSeconds(func() { runner.Estimate(m, nil, fastFG()) })
		_ = cgEst

		b.ReportMetric(tCG/tDock, "CG/dock-cost-ratio")
		b.ReportMetric(tFG/tCG, "FG/CG-cost-ratio")
		b.Logf("measured: dock %.4fs, CG %.2fs, FG %.2fs per ligand (paper node-h: 1e-4, 0.5, 5)",
			tDock, tCG, tFG)
	}
}

// BenchmarkTable3_ML1Throughput measures surrogate inference throughput
// (paper: 319,674 ligands/s on 1536 GPUs; per-GPU ≈ 208 lig/s).
func BenchmarkTable3_ML1Throughput(b *testing.B) {
	model := surrogate.NewModel(1)
	ids := make([]uint64, 4096)
	r := xrand.New(1)
	for i := range ids {
		ids[i] = r.Uint64()
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		model.PredictIDs(ids, 0)
		n += len(ids)
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(n)/secs, "ligands/s")
		b.ReportMetric(float64(model.InferenceFlops(n))/secs, "flop/s")
	}
}

// BenchmarkTable3_S1Throughput measures docking throughput (paper:
// 14,252 ligands/s on 6000 GPUs; per-GPU ≈ 2.4 lig/s).
func BenchmarkTable3_S1Throughput(b *testing.B) {
	eng := dock.NewEngine(receptor.PLPro(), 1)
	eng.Params.Runs = 1
	eng.Params.Generations = 10
	mols := make([]*chem.Molecule, 32)
	for i := range mols {
		mols[i] = chem.FromID(uint64(i))
	}
	b.ResetTimer()
	var n int
	var flops int64
	for i := 0; i < b.N; i++ {
		for _, res := range eng.DockBatch(mols) {
			flops += res.Flops
		}
		n += len(mols)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(n)/secs, "ligands/s")
		b.ReportMetric(float64(flops)/secs, "flop/s")
	}
}

// BenchmarkTable3_S3Throughput measures CG and FG estimation throughput
// (paper: 2000 and 200 "ligand/s" rows of Table 3 — whose 10:1 ratio is
// the reproducible shape).
func BenchmarkTable3_S3Throughput(b *testing.B) {
	tg := receptor.PLPro()
	runner := esmacs.NewRunner(tg, 1)
	m := chem.FromID(7)
	runner.Workers = 1 // measure cost, not host parallelism
	b.ResetTimer()
	var tCG, tFG float64
	for i := 0; i < b.N; i++ {
		tCG += wallSeconds(func() { runner.Estimate(m, nil, fastCG()) })
		tFG += wallSeconds(func() { runner.Estimate(m, nil, fastFG()) })
	}
	b.StopTimer()
	if tCG > 0 && tFG > 0 {
		b.ReportMetric(float64(b.N)/tCG, "CG-ligands/s")
		b.ReportMetric(float64(b.N)/tFG, "FG-ligands/s")
		b.ReportMetric((float64(b.N)/tCG)/(float64(b.N)/tFG), "CG:FG-ratio")
	}
}

// BenchmarkFig4_RES trains ML1 on docking scores and evaluates the
// regression enrichment surface. The paper reads RES(δ=10⁻³·u): ≈50 % of
// the top 10⁻⁴ and ≈40 % of the top 10⁻³ captured.
func BenchmarkFig4_RES(b *testing.B) {
	tg := receptor.PLPro()
	for i := 0; i < b.N; i++ {
		r := xrand.New(3)
		// Docking-score targets: oracle + docking-grade noise stands in
		// for full docking here to keep the bench minutes-scale; the
		// examples/docking-campaign program uses real docking output.
		n := 20000
		mols := make([]*chem.Molecule, n)
		truth := make([]float64, n)
		for j := 0; j < n; j++ {
			mols[j] = chem.FromID(r.Uint64())
			truth[j] = tg.TrueAffinity(mols[j]) + r.Norm(0, 1.5)
		}
		model := surrogate.NewModel(11)
		cfg := surrogate.DefaultTrainConfig()
		cfg.Epochs = 20
		if _, err := model.Fit(mols[:4000], truth[:4000], cfg); err != nil {
			b.Fatal(err)
		}
		pred := model.Predict(mols)
		res := surrogate.ComputeRES(pred, truth, surrogate.DefaultFractions(), surrogate.DefaultFractions())
		capFine := res.At(1e-3, 1e-4)
		capSame := res.At(1e-3, 1e-3)
		b.ReportMetric(capFine, "RES(1e-3,1e-4)")
		b.ReportMetric(capSame, "RES(1e-3,1e-3)")
		b.Logf("RES at δ=1e-3: capture %.0f%% of top 1e-4, %.0f%% of top 1e-3 (paper: ~50%%, ~40%%)",
			100*capFine, 100*capSame)
	}
}

// BenchmarkFig5A_DeltaGHistogram reproduces the CG-ESMACS binding
// free-energy distribution (paper: unimodal, ≈[-60, +20] kcal/mol).
func BenchmarkFig5A_DeltaGHistogram(b *testing.B) {
	tg := receptor.PLPro()
	for i := 0; i < b.N; i++ {
		runner := esmacs.NewRunner(tg, 5)
		r := xrand.New(4)
		proto := fastCG()
		dgs := make([]float64, 0, 40)
		for j := 0; j < 40; j++ {
			dgs = append(dgs, runner.Estimate(chem.FromID(r.Uint64()), nil, proto).DeltaG)
		}
		s := stats.Summarize(dgs)
		h := stats.NewHistogram(dgs, -60, 20, 16)
		b.ReportMetric(s.Mean, "mean-dG")
		b.ReportMetric(s.Min, "min-dG")
		b.ReportMetric(s.Max, "max-dG")
		b.Logf("ΔG distribution: mean %.1f, [%.1f, %.1f] kcal/mol; mode bin %.1f\n%s",
			s.Mean, s.Min, s.Max, h.BinCenter(h.Mode()), h.Render(30))
	}
}

// BenchmarkFig5B_RMSDDistribution reproduces the ensemble RMSD summary
// (paper: tight distribution with a few high-fluctuation LPCs > 1.9 Å).
func BenchmarkFig5B_RMSDDistribution(b *testing.B) {
	tg := receptor.PLPro()
	for i := 0; i < b.N; i++ {
		runner := esmacs.NewRunner(tg, 6)
		r := xrand.New(5)
		proto := fastCG()
		var rmsds []float64
		outliers := 0
		for j := 0; j < 24; j++ {
			est := runner.Estimate(chem.FromID(r.Uint64()), nil, proto)
			rmsds = append(rmsds, est.MeanRMSD)
			if est.MaxRMSD > 1.9 {
				outliers++
			}
		}
		s := stats.Summarize(rmsds)
		b.ReportMetric(s.Median, "median-RMSD")
		b.ReportMetric(float64(outliers), "LPCs-above-1.9A")
		b.Logf("RMSD: median %.2f Å (IQR %.2f–%.2f), %d/24 LPCs exceed 1.9 Å",
			s.Median, s.Q25, s.Q75, outliers)
	}
}

// BenchmarkFig5C_LatentSpace trains the 3D-AAE on CG trajectories, embeds
// them, t-SNE-projects the validation set and verifies that LOF outliers
// separate high-RMSD conformations (the Fig. 5C structure).
func BenchmarkFig5C_LatentSpace(b *testing.B) {
	tg := receptor.PLPro()
	for i := 0; i < b.N; i++ {
		runner := esmacs.NewRunner(tg, 7)
		runner.KeepTrajectories = true
		r := xrand.New(6)
		proto := fastCG()
		var ests []esmacs.Estimate
		for j := 0; j < 4; j++ {
			ests = append(ests, runner.Estimate(chem.FromID(r.Uint64()), nil, proto))
		}
		d := deepdrive.NewDriver(tg)
		d.Cfg.Epochs = 6
		d.Cfg.MaxFrames = 160
		rep, err := d.Run(ests)
		if err != nil {
			b.Fatal(err)
		}
		// Project to 2-D for the figure and quantify outlier/RMSD link.
		cfg := latent.DefaultTSNEConfig()
		cfg.Iters = 120
		emb2d := latent.TSNE(rep.Embeddings, cfg)
		_ = emb2d
		var rmsdOut, rmsdIn float64
		var nOut, nIn int
		top := latent.TopOutliers(rep.LOF, len(rep.LOF)/10)
		isTop := map[int]bool{}
		for _, t := range top {
			isTop[t] = true
		}
		for j, ref := range rep.Refs {
			if isTop[j] {
				rmsdOut += ref.RMSD
				nOut++
			} else {
				rmsdIn += ref.RMSD
				nIn++
			}
		}
		ratio := (rmsdOut / float64(nOut)) / (rmsdIn / float64(nIn))
		b.ReportMetric(rep.ValRecon, "val-chamfer")
		b.ReportMetric(ratio, "outlier-RMSD-ratio")
		b.Logf("val Chamfer %.4f; LOF outliers have %.2f× the RMSD of inliers", rep.ValRecon, ratio)
	}
}

// BenchmarkFig6_CGvsFG runs a full campaign iteration and compares CG vs
// FG estimates of the top compounds (paper: FG lower for all five).
func BenchmarkFig6_CGvsFG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := campaign.DefaultConfig(receptor.PLPro())
		cfg.LibrarySize = 1200
		cfg.TrainSize = 250
		cfg.CGCount = 6
		cfg.TopCompounds = 3
		cfg.OutliersPer = 3
		cfg.FastProtocols = true
		p := dock.DefaultParams()
		p.Runs = 1
		p.Generations = 10
		cfg.DockParams = &p
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lower := 0
		for _, tc := range res.Top {
			if tc.FG < tc.CG {
				lower++
			}
			b.Logf("mol %012x: CG %.1f±%.1f  FG %.1f±%.1f  (truth %.1f)",
				tc.MolID, tc.CG, tc.CGErr, tc.FG, tc.FGErr, tc.Truth)
		}
		b.ReportMetric(float64(lower)/float64(len(res.Top)), "frac-FG-below-CG")
	}
}

// BenchmarkFig7_Utilization reproduces the node-utilization time series
// of the integrated (S3-CG)-(S2)-(S3-FG) workload and the claim that
// runtime overheads are invariant to scale.
func BenchmarkFig7_Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := campaign.DefaultSimConfig()
		res := campaign.RunSim(cfg)
		ts := make([]float64, len(res.Trace))
		vs := make([]float64, len(res.Trace))
		for j, s := range res.Trace {
			ts[j] = s.Time / 3600
			vs[j] = float64(s.BusyNodes)
		}
		b.ReportMetric(res.Utilization, "utilization")
		b.ReportMetric(res.MeanSchedulingDelay, "sched-delay-s")
		b.Logf("makespan %.1f h, utilization %.0f%%, mean scheduling delay %.1f s\n%s",
			res.Makespan/3600, 100*res.Utilization, res.MeanSchedulingDelay,
			stats.TimeSeries(ts, vs, 64, 8))
	}
}

// BenchmarkScaling_RAPTOR sweeps the docking overlay over node counts,
// reproducing near-linear scaling to thousands of nodes and the §8
// 40 M-docks/hour headline.
func BenchmarkScaling_RAPTOR(b *testing.B) {
	for _, nodes := range []int{64, 256, 1024, 4000} {
		nodes := nodes
		b.Run(fmt.Sprintf("nodes-%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := campaign.SimDockingAtScale(nodes, nodes*500, 1)
				b.ReportMetric(res.Throughput, "docks/s")
				b.ReportMetric(res.DocksPerHour/1e6, "Mdocks/hour")
				b.ReportMetric(res.Utilization, "utilization")
			}
		})
	}
}

// BenchmarkAblation_LocalSearch compares the two AutoDock-GPU local
// search methods (§5.1.1: ADADELTA improves pose quality over
// Solis-Wets at higher per-evaluation cost).
func BenchmarkAblation_LocalSearch(b *testing.B) {
	tg := receptor.PLPro()
	for i := 0; i < b.N; i++ {
		var swScore, adScore float64
		var swEvals, adEvals int64
		const n = 8
		for j := 0; j < n; j++ {
			m := chem.FromID(uint64(100 + j))
			sw := dock.Dock(dock.NewScoreFunc(tg, m), dock.DefaultParams(), xrand.NewFrom(1, uint64(j)))
			ad := dock.Dock(dock.NewScoreFunc(tg, m), dock.QualityParams(), xrand.NewFrom(1, uint64(j)))
			swScore += sw.Score
			adScore += ad.Score
			swEvals += sw.Evals
			adEvals += ad.Evals
		}
		b.ReportMetric(swScore/n, "solis-wets-score")
		b.ReportMetric(adScore/n, "adadelta-score")
		b.ReportMetric(float64(adEvals)/float64(swEvals), "adadelta-eval-cost-ratio")
	}
}

// BenchmarkAblation_EnsembleVariance reproduces §5.1.3: single-trajectory
// MMPBSA has far higher seed-to-seed variance than the 6-replica CG
// ensemble, which FG tightens further.
func BenchmarkAblation_EnsembleVariance(b *testing.B) {
	tg := receptor.PLPro()
	m := chem.FromID(11)
	for i := 0; i < b.N; i++ {
		spread := func(proto esmacs.Protocol) float64 {
			var dgs []float64
			for seed := uint64(0); seed < 6; seed++ {
				dgs = append(dgs, esmacs.NewRunner(tg, seed).Estimate(m, nil, proto).DeltaG)
			}
			return stats.Summarize(dgs).Std
		}
		single := fastCG()
		single.Replicas = 1
		sd1 := spread(single)
		sd6 := spread(fastCG())
		b.ReportMetric(sd1, "sd-1-replica")
		b.ReportMetric(sd6, "sd-6-replica")
		b.ReportMetric(sd1/sd6, "variance-reduction")
	}
}

// BenchmarkAblation_Featurization compares the paper's image/CNN ML1
// featurization (§5.1.2: 2-D depictions through a convolutional network)
// against the fingerprint MLP on the same docking labels.
func BenchmarkAblation_Featurization(b *testing.B) {
	tg := receptor.PLPro()
	for i := 0; i < b.N; i++ {
		r := xrand.New(13)
		n := 2400
		mols := make([]*chem.Molecule, n)
		truth := make([]float64, n)
		for j := 0; j < n; j++ {
			mols[j] = chem.FromID(r.Uint64())
			truth[j] = tg.TrueAffinity(mols[j]) + r.Norm(0, 1.5)
		}
		cfg := surrogate.DefaultTrainConfig()
		cfg.Epochs = 12

		mlp := surrogate.NewModel(5)
		if _, err := mlp.Fit(mols[:1200], truth[:1200], cfg); err != nil {
			b.Fatal(err)
		}
		cnn := surrogate.NewCNNModel(5)
		cfgCNN := cfg
		cfgCNN.LR = 2e-3
		if _, err := cnn.Fit(mols[:1200], truth[:1200], cfgCNN); err != nil {
			b.Fatal(err)
		}
		hold, holdT := mols[1200:], truth[1200:]
		mlpRho := surrogate.Spearman(mlp.Predict(hold), holdT)
		cnnRho := surrogate.Spearman(cnn.Predict(hold), holdT)
		mlpEF := surrogate.EnrichmentFactor(mlp.Predict(hold), holdT, 0.05)
		cnnEF := surrogate.EnrichmentFactor(cnn.Predict(hold), holdT, 0.05)
		b.ReportMetric(mlpRho, "mlp-spearman")
		b.ReportMetric(cnnRho, "cnn-spearman")
		b.Logf("fingerprint MLP: ρ=%.3f EF(5%%)=%.1f; image CNN: ρ=%.3f EF(5%%)=%.1f",
			mlpRho, mlpEF, cnnRho, cnnEF)
	}
}

// BenchmarkIteration_ActiveLearning runs three campaign iterations with
// the accumulated docking-label pool (§8: "over time the ML component
// models improve such that the overall workflow becomes tuned to the
// specific target problem").
func BenchmarkIteration_ActiveLearning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := campaign.DefaultConfig(receptor.PLPro())
		cfg.LibrarySize = 900
		cfg.TrainSize = 200
		cfg.CGCount = 6
		cfg.TopCompounds = 3
		cfg.OutliersPer = 2
		cfg.FastProtocols = true
		p := dock.DefaultParams()
		p.Runs = 1
		p.Generations = 10
		p.Population = 24
		cfg.DockParams = &p
		_, sums, err := campaign.RunIterations(cfg, 3)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range sums {
			b.Logf("iter %d: pool %d, yield %.2f, bestCG %.1f (truth %.1f), val loss %.4f",
				s.Iteration, s.PoolSize, s.Yield, s.BestCG, s.BestTruth, s.ValLoss)
		}
		first, last := sums[0], sums[len(sums)-1]
		b.ReportMetric(first.ValLoss, "val-loss-iter0")
		b.ReportMetric(last.ValLoss, "val-loss-final")
	}
}

// BenchmarkTIES_Transformation exercises the lead-optimization stage the
// paper lists in Table 2 but did not integrate: an 8/8-sign-accurate
// relative binding free energy at ~2 orders of magnitude the FG cost.
func BenchmarkTIES_Transformation(b *testing.B) {
	tg := receptor.PLPro()
	a, c := chem.FromID(101), chem.FromID(102)
	cfg := ties.Default()
	cfg.Windows = 5
	cfg.Replicas = 3
	cfg.EquilSteps, cfg.ProdSteps, cfg.MinimizeIters = 40, 160, 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ties.Compute(tg, a, c, cfg, 1)
		b.ReportMetric(res.DeltaDeltaG, "ddG")
		b.ReportMetric(res.StdErr, "ddG-stderr")
	}
}

// BenchmarkAblation_BulkSize sweeps the RAPTOR bulk size: too-small bulks
// flood the masters with messages (§6.1.2 mechanism i), too-large bulks
// defeat dynamic load balancing on long-tailed workloads.
func BenchmarkAblation_BulkSize(b *testing.B) {
	for _, bulk := range []int{1, 8, 64, 512} {
		bulk := bulk
		b.Run(fmt.Sprintf("bulk-%d", bulk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clk := hpc.NewSimClock()
				cfg := raptor.DefaultConfig(64)
				cfg.BulkSize = bulk
				o := raptor.New(clk, cfg)
				r := xrand.New(1)
				durs := make([]float64, 64*400)
				for j := range durs {
					durs[j] = 0.4 * mathexp(r.Norm(0, 0.5))
				}
				st := o.RunSim(durs, clk)
				b.ReportMetric(st.Throughput, "docks/s")
				b.ReportMetric(float64(st.Bulks), "bulks")
			}
		})
	}
}

// BenchmarkAblation_WorkerFailures measures RAPTOR throughput under
// increasing worker-crash rates (the §6.1.1 resilience requirement).
func BenchmarkAblation_WorkerFailures(b *testing.B) {
	for _, p := range []float64{0, 0.002, 0.01} {
		p := p
		b.Run(fmt.Sprintf("failure-%.3f", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clk := hpc.NewSimClock()
				cfg := raptor.DefaultConfig(32)
				cfg.FailureProb = p
				cfg.RestartDelay = 3
				o := raptor.New(clk, cfg)
				r := xrand.New(2)
				durs := make([]float64, 32*500)
				for j := range durs {
					durs[j] = 0.3 * mathexp(r.Norm(0, 0.5))
				}
				st := o.RunSim(durs, clk)
				b.ReportMetric(st.Throughput, "docks/s")
				b.ReportMetric(float64(st.Failures), "crashes")
			}
		})
	}
}

func mathexp(x float64) float64 { return math.Exp(x) }

// BenchmarkStreamingVsSequential compares the wall-clock of the
// sequential funnel front (s1-train → ml1-train → ml1-screen → s1-dock
// as barriers) against the streaming dataflow, which overlaps the
// resample docks with ML1 training and the running-top-K docks with the
// screen. The acceptance claim: on a multi-core box the streaming
// front's wall-clock is strictly below the sum of the sequential ML1+S1
// stage timings. Scientific output is asserted identical — only the
// schedule may differ.
func BenchmarkStreamingVsSequential(b *testing.B) {
	cfg := campaign.DefaultConfig(receptor.PLPro())
	cfg.LibrarySize = 2400
	cfg.TrainSize = 200
	cfg.CGCount = 4
	cfg.TopCompounds = 2
	cfg.OutliersPer = 2
	cfg.FastProtocols = true
	p := dock.DefaultParams()
	p.Runs = 1
	p.Generations = 10
	p.Population = 24
	cfg.DockParams = &p

	front := []string{"s1-train", "ml1-train", "ml1-screen", "s1-dock"}
	for i := 0; i < b.N; i++ {
		seq, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		str, err := campaign.RunStreaming(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if seq.Funnel.Counts() != str.Funnel.Counts() {
			b.Fatalf("streaming diverged from sequential:\n  %+v\n  %+v",
				seq.Funnel.Counts(), str.Funnel.Counts())
		}

		seqSum := seq.Funnel.StageSeconds(front...)
		_, strEnd, ok := str.Funnel.StageWindow(front...)
		if !ok {
			b.Fatal("streaming path recorded no front-stage timings")
		}
		b.ReportMetric(seqSum, "seq-ml1+s1-s")
		b.ReportMetric(strEnd, "stream-ml1+s1-s")
		b.ReportMetric(seqSum/strEnd, "front-speedup")
		b.ReportMetric(str.Funnel.OverlapRatio, "overlap-ratio")
		b.ReportMetric(float64(str.Funnel.SpeculativeDocks), "speculative-docks")
		b.Logf("sequential front %.2fs (sum of barriers), streaming front %.2fs, overlap ratio %.2f, %d speculative docks (%d evals) on %d cores",
			seqSum, strEnd, str.Funnel.OverlapRatio,
			str.Funnel.SpeculativeDocks, str.Funnel.SpeculativeEvals, runtime.NumCPU())
		// On a single core there is no idle to fill, and speculation can
		// only add work; the acceptance claim is about parallel hardware.
		if runtime.NumCPU() >= 4 && strEnd >= seqSum {
			b.Errorf("streaming front %.3fs not below sequential ML1+S1 sum %.3fs on %d cores",
				strEnd, seqSum, runtime.NumCPU())
		}
	}
}

// BenchmarkTransfer_OZDtoORD reproduces the §7.1 library-transfer
// experiment: the ORD library was "chosen ... for the purposes of testing
// if ML1 can indeed be used for transferring knowledge learned from one
// library to another". Train on OZD docking labels, evaluate enrichment
// on ORD compounds outside the 1.5 M-equivalent overlap.
func BenchmarkTransfer_OZDtoORD(b *testing.B) {
	tg := receptor.PLPro()
	for i := 0; i < b.N; i++ {
		ozd, ord := chem.StandardLibraries(7, 0.002) // 13 k compounds each
		r := xrand.New(3)
		label := func(m *chem.Molecule) float64 {
			return tg.TrueAffinity(m) + r.Norm(0, 1.5)
		}
		// Train on an OZD sample.
		trainIdx := r.SampleK(ozd.Size(), 4000)
		mols := make([]*chem.Molecule, len(trainIdx))
		scores := make([]float64, len(trainIdx))
		for j, idx := range trainIdx {
			mols[j] = ozd.At(idx)
			scores[j] = label(mols[j])
		}
		model := surrogate.NewModel(11)
		cfg := surrogate.DefaultTrainConfig()
		cfg.Epochs = 20
		if _, err := model.Fit(mols, scores, cfg); err != nil {
			b.Fatal(err)
		}
		// Evaluate on ORD compounds outside the overlap.
		overlap := chem.Overlap(ozd, ord)
		var testMols []*chem.Molecule
		var testScores []float64
		for j := overlap; j < ord.Size() && len(testMols) < 4000; j++ {
			m := ord.At(j)
			testMols = append(testMols, m)
			testScores = append(testScores, label(m))
		}
		pred := model.Predict(testMols)
		ef := surrogate.EnrichmentFactor(pred, testScores, 0.05)
		rho := surrogate.Spearman(pred, testScores)
		b.ReportMetric(ef, "ORD-EF(5%)")
		b.ReportMetric(rho, "ORD-spearman")
		b.Logf("OZD-trained model on held-out ORD: EF(5%%) = %.1f, Spearman = %.3f", ef, rho)
	}
}

// wallSeconds times fn once.
func wallSeconds(fn func()) float64 {
	t := testingClock()
	fn()
	return testingClock() - t
}
