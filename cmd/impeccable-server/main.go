// Command impeccable-server runs the IMPECCABLE campaign engine as a
// long-lived, multi-tenant HTTP service: submitted campaigns queue onto
// a bounded worker pool and share a sharded docking-score cache, so
// overlapping submissions dedupe their most expensive evaluations.
// With -state-dir the service is crash-safe: job lifecycle events are
// journaled ahead of acknowledgment and the caches are checkpointed,
// so a restarted server serves all prior terminal results and reruns
// interrupted jobs deterministically under their original IDs.
//
// Usage:
//
//	impeccable-server [-addr :8080] [-workers N] [-campaign-workers N]
//	                  [-shards N] [-max-cache N] [-state-dir DIR]
//	                  [-snapshot-every D] [-max-queued N] [-max-jobs N]
//
// Quickstart:
//
//	impeccable-server -state-dir /var/lib/impeccable &
//	curl -X POST localhost:8080/api/v1/campaigns -d \
//	  '{"target":"PLPro","library_size":1000,"train_size":200,"fast_protocols":true}'
//	curl localhost:8080/api/v1/campaigns/job-000001
//	curl localhost:8080/api/v1/campaigns/job-000001/result
//	curl localhost:8080/api/v1/cache
//
// On SIGTERM/SIGINT the server drains gracefully: the HTTP listener
// closes, the queue stops popping, running campaigns are canceled, and
// a final cache checkpoint lands in -state-dir. Queued and interrupted
// jobs are NOT journaled as canceled — the next start re-enqueues them.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"impeccable/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent campaigns (0 = half of GOMAXPROCS)")
	campaignWorkers := flag.Int("campaign-workers", 0, "worker pool width inside each campaign (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 64, "cache shard count")
	maxCache := flag.Int("max-cache", 0, "score-cache entry bound (0 = unbounded)")
	stateDir := flag.String("state-dir", "", "durable state directory: job journal + cache checkpoints (empty = in-memory only)")
	snapshotEvery := flag.Duration("snapshot-every", 30*time.Second, "cache checkpoint cadence when -state-dir is set")
	maxQueued := flag.Int("max-queued", 0, "pending-queue bound; overflow submissions get HTTP 429 (0 = unbounded)")
	maxJobs := flag.Int("max-jobs", 0, "terminal job records kept in memory and listings (0 = unbounded; the journal keeps full history)")
	flag.Parse()

	svc, err := service.Open(service.Options{
		Workers:         *workers,
		CampaignWorkers: *campaignWorkers,
		CacheShards:     *shards,
		MaxCacheEntries: *maxCache,
		StateDir:        *stateDir,
		SnapshotEvery:   *snapshotEvery,
		MaxQueued:       *maxQueued,
		MaxJobRecords:   *maxJobs,
	})
	if err != nil {
		log.Fatalf("opening service: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if *stateDir != "" {
		recovered := len(svc.Jobs())
		log.Printf("impeccable-server listening on %s (targets: %v, state: %s, %d jobs recovered)",
			*addr, svc.Targets(), *stateDir, recovered)
	} else {
		log.Printf("impeccable-server listening on %s (targets: %v)", *addr, svc.Targets())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case s := <-sig:
		log.Printf("received %v, draining (running jobs cancel; queued jobs resume on next start)", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "http shutdown: %v\n", err)
	}
	// Drain: stop popping, cancel running campaigns, write the final
	// cache checkpoint and close the journal.
	svc.Shutdown()
	if *stateDir != "" {
		log.Printf("drained; state saved under %s", *stateDir)
	}
}
