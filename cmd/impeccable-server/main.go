// Command impeccable-server runs the IMPECCABLE campaign engine as a
// long-lived, multi-tenant HTTP service: submitted campaigns queue onto
// a bounded worker pool and share a sharded docking-score cache, so
// overlapping submissions dedupe their most expensive evaluations.
//
// Usage:
//
//	impeccable-server [-addr :8080] [-workers N] [-campaign-workers N]
//	                  [-shards N] [-max-cache N]
//
// Quickstart:
//
//	impeccable-server &
//	curl -X POST localhost:8080/api/v1/campaigns -d \
//	  '{"target":"PLPro","library_size":1000,"train_size":200,"fast_protocols":true}'
//	curl localhost:8080/api/v1/campaigns/job-000001
//	curl localhost:8080/api/v1/campaigns/job-000001/result
//	curl localhost:8080/api/v1/cache
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"impeccable/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent campaigns (0 = half of GOMAXPROCS)")
	campaignWorkers := flag.Int("campaign-workers", 0, "worker pool width inside each campaign (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 64, "cache shard count")
	maxCache := flag.Int("max-cache", 0, "score-cache entry bound (0 = unbounded)")
	flag.Parse()

	svc := service.NewService(service.Options{
		Workers:         *workers,
		CampaignWorkers: *campaignWorkers,
		CacheShards:     *shards,
		MaxCacheEntries: *maxCache,
	})

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("impeccable-server listening on %s (targets: %v)", *addr, svc.Targets())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case s := <-sig:
		log.Printf("received %v, draining", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "http shutdown: %v\n", err)
	}
	svc.Shutdown()
}
