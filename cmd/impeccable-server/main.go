// Command impeccable-server runs the IMPECCABLE campaign engine as a
// long-lived, multi-tenant HTTP service: submitted campaigns queue onto
// a bounded worker pool and share a sharded docking-score cache, so
// overlapping submissions dedupe their most expensive evaluations.
// With -state-dir the service is crash-safe: job lifecycle events are
// journaled ahead of acknowledgment and the caches are checkpointed,
// so a restarted server serves all prior terminal results and reruns
// interrupted jobs deterministically under their original IDs.
//
// Usage:
//
//	impeccable-server [-addr :8080] [-workers N] [-campaign-workers N]
//	                  [-shards N] [-max-cache N] [-state-dir DIR]
//	                  [-snapshot-every D] [-segment-bytes N] [-inline-limit N]
//	                  [-compact-every D] [-max-queued N] [-max-jobs N]
//	                  [-lease-ttl D] [-tenant SPEC ...] [-preempt-after D]
//
// -workers=0 starts the server as a pure coordinator with zero
// in-process workers: every campaign executes on remote
// impeccable-worker processes pulling jobs through the lease API
// (POST /api/v1/worker/lease|heartbeat|complete). Workers that stop
// heartbeating for -lease-ttl lose their job, which re-enters the
// queue under its original ID and reruns byte-identically.
//
// Tenancy: submissions carry a tenant (body field or X-Tenant header;
// absent = "default") and pending work is arbitrated per tenant by
// weighted deficit round-robin, so one tenant's flood cannot starve
// another's trickle. -tenant configures one tenant's limits and
// repeats, e.g.
//
//	impeccable-server -tenant 'acme,weight=3,max-queued=100' \
//	                  -tenant 'guest,weight=1,rate=2,burst=5,max-running=1' \
//	                  -preempt-after 30s
//
// SPEC is name[,weight=N][,max-queued=N][,max-running=N][,rate=F][,burst=N];
// unnamed tenants get weight 1 and the -max-queued bound. -preempt-after
// arms preemption: a queued priority job starved that long may revoke
// an over-share tenant's youngest remote lease (the revoked job
// requeues and reruns byte-identically).
//
// Quickstart:
//
//	impeccable-server -state-dir /var/lib/impeccable &
//	curl -X POST localhost:8080/api/v1/campaigns -d \
//	  '{"target":"PLPro","library_size":1000,"train_size":200,"fast_protocols":true}'
//	curl localhost:8080/api/v1/campaigns/job-000001
//	curl localhost:8080/api/v1/campaigns/job-000001/result
//	curl localhost:8080/api/v1/cache
//
// On SIGTERM/SIGINT the server drains gracefully: /healthz flips to
// 503 "draining" (load balancers stop routing), the queue stops
// popping, running campaigns are canceled, a final cache checkpoint
// lands in -state-dir, and only then does the HTTP listener close.
// Queued and interrupted jobs are NOT journaled as canceled — the next
// start re-enqueues them; outstanding remote leases survive into the
// next start too.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"impeccable/internal/service"
)

// tenantFlags accumulates repeated -tenant specs into the service's
// per-tenant limits table.
type tenantFlags map[string]service.TenantLimits

func (tf tenantFlags) String() string {
	names := make([]string, 0, len(tf))
	for name := range tf {
		names = append(names, name)
	}
	return strings.Join(names, ",")
}

// Set parses one name[,weight=N][,max-queued=N][,max-running=N]
// [,rate=F][,burst=N] spec.
func (tf tenantFlags) Set(spec string) error {
	parts := strings.Split(spec, ",")
	name := strings.TrimSpace(parts[0])
	if name == "" {
		return fmt.Errorf("tenant spec %q: empty name", spec)
	}
	var lim service.TenantLimits
	for _, kv := range parts[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("tenant spec %q: %q is not key=value", spec, kv)
		}
		var err error
		switch key {
		case "weight":
			lim.Weight, err = strconv.Atoi(val)
		case "max-queued":
			lim.MaxQueued, err = strconv.Atoi(val)
		case "max-running":
			lim.MaxRunning, err = strconv.Atoi(val)
		case "rate":
			lim.SubmitPerSec, err = strconv.ParseFloat(val, 64)
		case "burst":
			lim.SubmitBurst, err = strconv.Atoi(val)
		default:
			return fmt.Errorf("tenant spec %q: unknown key %q", spec, key)
		}
		if err != nil {
			return fmt.Errorf("tenant spec %q: bad %s: %v", spec, key, err)
		}
	}
	tf[name] = lim
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", -1, "in-process concurrent campaigns (-1 = half of GOMAXPROCS, 0 = remote workers only)")
	campaignWorkers := flag.Int("campaign-workers", 0, "worker pool width inside each campaign (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 64, "cache shard count")
	maxCache := flag.Int("max-cache", 0, "score-cache entry bound (0 = unbounded)")
	stateDir := flag.String("state-dir", "", "durable state directory: job journal + cache checkpoints (empty = in-memory only)")
	snapshotEvery := flag.Duration("snapshot-every", 30*time.Second, "cache checkpoint cadence when -state-dir is set")
	segmentBytes := flag.Int64("segment-bytes", 0, "journal segment rotation threshold in bytes (0 = 4 MiB)")
	inlineLimit := flag.Int("inline-limit", 0, "journal payloads above this many bytes spill to the blob store (0 = 32 KiB, negative = never spill)")
	compactEvery := flag.Duration("compact-every", 0, "journal compaction + blob GC cadence when -state-dir is set (0 = 1m, negative = never)")
	maxQueued := flag.Int("max-queued", 0, "pending-queue bound; overflow submissions get HTTP 429 (0 = unbounded)")
	maxJobs := flag.Int("max-jobs", 0, "terminal job records kept in memory and listings (0 = unbounded; the journal keeps full history)")
	leaseTTL := flag.Duration("lease-ttl", 0, "remote-worker lease TTL; a worker silent this long loses its job (0 = 30s)")
	accessLog := flag.Bool("access-log", false, "log one line per HTTP request (method, path, status, latency, request ID)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (do not enable on untrusted networks)")
	tenants := tenantFlags{}
	flag.Var(tenants, "tenant", "per-tenant limits, repeatable: name[,weight=N][,max-queued=N][,max-running=N][,rate=F][,burst=N]")
	preemptAfter := flag.Duration("preempt-after", 0, "starved priority jobs may revoke an over-share tenant's youngest lease after waiting this long (0 = never preempt)")
	flag.Parse()

	var logf func(string, ...any)
	if *accessLog {
		logf = log.Printf
	}
	svc, err := service.Open(service.Options{
		Workers:         max(*workers, 0),
		RemoteOnly:      *workers == 0,
		CampaignWorkers: *campaignWorkers,
		CacheShards:     *shards,
		MaxCacheEntries: *maxCache,
		StateDir:        *stateDir,
		SnapshotEvery:   *snapshotEvery,
		SegmentBytes:    *segmentBytes,
		InlineLimit:     *inlineLimit,
		CompactEvery:    *compactEvery,
		MaxQueued:       *maxQueued,
		MaxJobRecords:   *maxJobs,
		LeaseTTL:        *leaseTTL,
		Tenants:         tenants,
		PreemptAfter:    *preemptAfter,
		Logf:            logf,
	})
	if err != nil {
		log.Fatalf("opening service: %v", err)
	}
	if *workers == 0 {
		log.Printf("running as pure coordinator: campaigns execute only on remote impeccable-worker processes")
	}

	handler := svc.Handler()
	if *pprofOn {
		// The profiler mounts beside the API, outside its middleware:
		// profile downloads should not skew the request-latency series.
		root := http.NewServeMux()
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root.Handle("/", handler)
		handler = root
		log.Printf("pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if *stateDir != "" {
		recovered := len(svc.Jobs())
		log.Printf("impeccable-server listening on %s (targets: %v, state: %s, %d jobs recovered)",
			*addr, svc.Targets(), *stateDir, recovered)
	} else {
		log.Printf("impeccable-server listening on %s (targets: %v)", *addr, svc.Targets())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case s := <-sig:
		log.Printf("received %v, draining (running jobs cancel; queued jobs resume on next start)", s)
	}

	// Drain the service first, with the listener still up: /healthz
	// flips to 503 "draining" immediately, so load balancers stop
	// routing here before the socket disappears, and status/result
	// queries keep answering while running campaigns wind down.
	svc.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "http shutdown: %v\n", err)
	}
	if *stateDir != "" {
		log.Printf("drained; state saved under %s", *stateDir)
	}
}
