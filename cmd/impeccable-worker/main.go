// Command impeccable-worker is a remote campaign executor: it pulls
// jobs from an impeccable-server coordinator over the lease API, runs
// each campaign locally against per-worker caches, heartbeats while it
// runs, and posts back the result summary plus the score/feature-cache
// deltas. Point any number of workers (across any number of machines)
// at one coordinator started with -workers=0 and the single binary
// becomes a coordinator + N workers cluster.
//
// Usage:
//
//	impeccable-worker -server http://host:8080 [-id NAME] [-ttl D]
//	                  [-poll D] [-campaign-workers N] [-shards N]
//	                  [-max-cache N] [-metrics ADDR] [-pprof]
//
// Fault tolerance lives in the lease protocol, not in this process: a
// worker killed mid-job simply stops heartbeating, the coordinator
// re-enqueues the job under its original ID (Seed and LibOffset
// preserved), and the rerun on any other worker is byte-identical
// science. SIGINT/SIGTERM stop the worker after aborting any run in
// flight; the coordinator re-enqueues that job the same way.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"impeccable/internal/obs"
	"impeccable/internal/service"
	"impeccable/internal/service/worker"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "coordinator base URL")
	id := flag.String("id", "", "worker identity in leases and listings (empty = <hostname>-<pid>)")
	ttl := flag.Duration("ttl", 0, "requested lease TTL; losing heartbeats for this long re-enqueues the job (0 = coordinator default)")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle wait between lease attempts")
	campaignWorkers := flag.Int("campaign-workers", 0, "worker pool width inside each campaign (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 16, "per-worker cache shard count")
	maxCache := flag.Int("max-cache", 0, "per-worker score-cache entry bound (0 = unbounded)")
	metricsAddr := flag.String("metrics", "", "listen address for the worker's own /metrics exposition (empty = disabled)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the -metrics listener")
	flag.Parse()

	w := worker.New(worker.Options{
		Server:          *server,
		ID:              *id,
		TTL:             *ttl,
		Poll:            *poll,
		CampaignWorkers: *campaignWorkers,
		CacheShards:     *shards,
		MaxCacheEntries: *maxCache,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", metricsHandler(w))
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
		log.Printf("worker metrics on %s/metrics", *metricsAddr)
	} else if *pprofOn {
		log.Printf("-pprof requires -metrics (it mounts on that listener); ignoring")
	}
	log.Printf("impeccable-worker %s pulling from %s", w.ID(), *server)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("worker: %v", err)
	}
	log.Printf("impeccable-worker %s stopped (%d jobs completed)", w.ID(), w.Completed())
}

// metricsHandler exposes the worker's own counters — jobs completed
// and the persistent per-worker caches — in the Prometheus text
// format. The series are mirrored from Worker's stats at scrape time
// (obs.Counter.Set ignores regressions, so the mirrors stay monotone).
func metricsHandler(w *worker.Worker) http.Handler {
	reg := obs.NewRegistry()
	completed := reg.Counter("impeccable_worker_jobs_completed_total",
		"Jobs this worker has finalized (done, failed or canceled).")
	hits := reg.CounterVec("impeccable_worker_local_cache_hits_total",
		"Persistent per-worker cache hits, by cache.", "cache")
	misses := reg.CounterVec("impeccable_worker_local_cache_misses_total",
		"Persistent per-worker cache misses, by cache.", "cache")
	evictions := reg.CounterVec("impeccable_worker_local_cache_evictions_total",
		"Persistent per-worker cache evictions, by cache.", "cache")
	entries := reg.GaugeVec("impeccable_worker_local_cache_entries",
		"Entries currently in the per-worker caches, by cache.", "cache")
	reg.OnCollect(func() {
		completed.Set(float64(w.Completed()))
		for _, c := range []struct {
			name string
			st   func() service.CacheStats
		}{{"score", w.ScoreCacheStats}, {"feature", w.FeatureCacheStats}} {
			st := c.st()
			hits.With(c.name).Set(float64(st.Hits))
			misses.With(c.name).Set(float64(st.Misses))
			evictions.With(c.name).Set(float64(st.Evictions))
			entries.With(c.name).Set(float64(st.Entries))
		}
	})
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rw.Header().Set("Cache-Control", "no-store")
		_, _ = reg.WriteTo(rw)
	})
}
