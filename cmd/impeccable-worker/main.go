// Command impeccable-worker is a remote campaign executor: it pulls
// jobs from an impeccable-server coordinator over the lease API, runs
// each campaign locally against per-worker caches, heartbeats while it
// runs, and posts back the result summary plus the score/feature-cache
// deltas. Point any number of workers (across any number of machines)
// at one coordinator started with -workers=0 and the single binary
// becomes a coordinator + N workers cluster.
//
// Usage:
//
//	impeccable-worker -server http://host:8080 [-id NAME] [-ttl D]
//	                  [-poll D] [-campaign-workers N] [-shards N]
//	                  [-max-cache N]
//
// Fault tolerance lives in the lease protocol, not in this process: a
// worker killed mid-job simply stops heartbeating, the coordinator
// re-enqueues the job under its original ID (Seed and LibOffset
// preserved), and the rerun on any other worker is byte-identical
// science. SIGINT/SIGTERM stop the worker after aborting any run in
// flight; the coordinator re-enqueues that job the same way.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"os/signal"
	"syscall"
	"time"

	"impeccable/internal/service/worker"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "coordinator base URL")
	id := flag.String("id", "", "worker identity in leases and listings (empty = <hostname>-<pid>)")
	ttl := flag.Duration("ttl", 0, "requested lease TTL; losing heartbeats for this long re-enqueues the job (0 = coordinator default)")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle wait between lease attempts")
	campaignWorkers := flag.Int("campaign-workers", 0, "worker pool width inside each campaign (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 16, "per-worker cache shard count")
	maxCache := flag.Int("max-cache", 0, "per-worker score-cache entry bound (0 = unbounded)")
	flag.Parse()

	w := worker.New(worker.Options{
		Server:          *server,
		ID:              *id,
		TTL:             *ttl,
		Poll:            *poll,
		CampaignWorkers: *campaignWorkers,
		CacheShards:     *shards,
		MaxCacheEntries: *maxCache,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("impeccable-worker %s pulling from %s", w.ID(), *server)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("worker: %v", err)
	}
	log.Printf("impeccable-worker %s stopped (%d jobs completed)", w.ID(), w.Completed())
}
