// Command impeccable-vet runs the project-invariant static-analysis
// suite (internal/analysis) over the repository: determinism of the
// science packages, the declared service mutex order,
// journal-before-apply on terminal job states, source-level metric
// grammar, and map-iteration ordering. It exits nonzero on any
// unsuppressed finding, so CI can gate merges on the invariants the
// golden-funnel guarantee rests on.
//
// Usage:
//
//	impeccable-vet [-json] [-analyzers=a,b] [packages ...]
//
// Package patterns default to ./... and accept directories, module
// import paths, and /... suffixes. Findings are suppressed one site
// at a time with //impeccable:<keyword> directives; see DESIGN.md §5.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"impeccable/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: impeccable-vet [flags] [packages ...]\n\nanalyzers:\n")
		for _, a := range analysis.DefaultAnalyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name(), a.Doc())
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *names != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*names, ",") {
			a := analysis.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "impeccable-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "impeccable-vet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "impeccable-vet: %v\n", err)
		os.Exit(2)
	}
	// Type errors mean partial analysis: surface them so a finding the
	// checker could not reach is never mistaken for a clean pass.
	badTypes := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			badTypes = true
			fmt.Fprintf(os.Stderr, "impeccable-vet: %s: type error: %v\n", pkg.Path, terr)
		}
	}

	diags := analysis.Run(pkgs, analyzers)
	if *jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "impeccable-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	switch {
	case len(diags) > 0:
		fmt.Fprintf(os.Stderr, "impeccable-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	case badTypes:
		os.Exit(2)
	}
}
