// Command metrics-lint validates Prometheus text exposition read from
// stdin against the 0.0.4 grammar (the same checker the obs package
// tests itself with). It exits 0 when the input parses cleanly and 1
// with a diagnostic otherwise, so shell pipelines can gate on it:
//
//	curl -fsS localhost:8080/metrics | metrics-lint
//
// The cluster smoke test uses it to fail the run if the coordinator
// ever serves malformed exposition.
package main

import (
	"bufio"
	"fmt"
	"os"

	"impeccable/internal/obs"
)

func main() {
	if err := obs.Validate(bufio.NewReader(os.Stdin)); err != nil {
		fmt.Fprintf(os.Stderr, "metrics-lint: %v\n", err)
		os.Exit(1)
	}
}
