// Command impeccable runs one campaign iteration of the IMPECCABLE
// pipeline at a configurable scale and prints the funnel report: stage
// counts, top-compound CG/FG comparison, surrogate quality and FLOP
// accounting.
//
// Usage:
//
//	impeccable [-target PLPro] [-library 4000] [-train 600] [-cg 12]
//	           [-top 5] [-outliers 5] [-seed 1] [-fast] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"impeccable/internal/campaign"
	"impeccable/internal/receptor"
	"impeccable/internal/stats"
)

func main() {
	var (
		targetName = flag.String("target", "PLPro", "target protein: 3CLPro, PLPro, ADRP, NSP15")
		library    = flag.Int("library", 4000, "compounds screened by ML1")
		train      = flag.Int("train", 600, "compounds docked offline for ML1 training")
		cg         = flag.Int("cg", 12, "compounds advanced to CG-ESMACS")
		top        = flag.Int("top", 5, "top compounds advanced to S2/FG")
		outliers   = flag.Int("outliers", 5, "outlier conformations per top compound")
		seed       = flag.Uint64("seed", 1, "campaign seed")
		fast       = flag.Bool("fast", false, "shrink MD protocols (quick demo)")
		workers    = flag.Int("workers", 0, "worker pool width (0 = all cores)")
		jsonOut    = flag.String("json", "", "write a JSON result export to this file")
		viaEnTK    = flag.Bool("entk", false, "execute through the EnTK/pilot workflow stack")
	)
	flag.Parse()

	var target *receptor.Target
	for _, t := range receptor.StandardTargets() {
		if strings.EqualFold(t.Name, *targetName) {
			target = t
		}
	}
	if target == nil {
		fmt.Fprintf(os.Stderr, "unknown target %q\n", *targetName)
		os.Exit(2)
	}

	cfg := campaign.DefaultConfig(target)
	cfg.LibrarySize = *library
	cfg.TrainSize = *train
	cfg.CGCount = *cg
	cfg.TopCompounds = *top
	cfg.OutliersPer = *outliers
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.FastProtocols = *fast

	fmt.Printf("IMPECCABLE campaign: target %s (PDB %s), library %d compounds\n\n",
		target.Name, target.PDBID, cfg.LibrarySize)
	run := campaign.Run
	if *viaEnTK {
		run = campaign.RunViaEnTK
	}
	res, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign failed:", err)
		os.Exit(1)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := res.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		f.Close()
		fmt.Printf("JSON export written to %s\n\n", *jsonOut)
	}

	f := res.Funnel
	fmt.Println("Funnel:")
	fmt.Println(stats.Table(
		[]string{"stage", "compounds/units"},
		[][]string{
			{"ML1 screened", fmt.Sprint(f.Screened)},
			{"S1 docked", fmt.Sprint(f.Docked)},
			{"S3-CG estimated", fmt.Sprint(f.CG)},
			{"S2 frames analyzed", fmt.Sprint(f.S2Frames)},
			{"S3-FG refined", fmt.Sprint(f.FG)},
		}))

	fmt.Println("Top compounds (CG vs FG, Fig. 6):")
	rows := make([][]string, 0, len(res.Top))
	for _, tc := range res.Top {
		rows = append(rows, []string{
			fmt.Sprintf("%012x", tc.MolID),
			fmt.Sprintf("%.1f ± %.1f", tc.CG, tc.CGErr),
			fmt.Sprintf("%.1f ± %.1f", tc.FG, tc.FGErr),
			fmt.Sprintf("%.1f", tc.Truth),
		})
	}
	fmt.Println(stats.Table(
		[]string{"compound", "ΔG CG (kcal/mol)", "ΔG FG (kcal/mol)", "truth"}, rows))

	fmt.Printf("Surrogate RES(1e-2, 1e-2): %.0f%% of true top captured\n",
		100*res.RES.At(1e-2, 1e-2))
	fmt.Printf("Scientific yield: %.0f%% of CG compounds are true top-1%% binders\n\n",
		100*res.ScientificYield)

	fmt.Println("FLOP accounting:")
	frow := [][]string{}
	for _, s := range res.Counter.Stats() {
		frow = append(frow, []string{s.Component, fmt.Sprint(s.Flops), fmt.Sprint(s.Units)})
	}
	fmt.Println(stats.Table([]string{"component", "flops", "work units"}, frow))
}
