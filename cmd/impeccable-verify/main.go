// Command impeccable-verify replays a state directory offline and
// checks everything the provenance machinery promises, without
// starting a server or rerunning a single campaign:
//
//   - every journal event's chain hash re-derives from its predecessor
//     and its own canonical JSON;
//   - every sealed Merkle root (and every compaction checkpoint's
//     preserved root) equals the Merkle root of its job's event hashes,
//     and a sampled inclusion proof verifies against it;
//   - every spilled artifact ({sha256, size} ref in a journal line)
//     resolves to bytes matching its hash;
//   - the cache-snapshot manifest names a readable, hash-clean blob.
//
// A bit flipped anywhere in the state dir — a journal field, a spilled
// request or result ledger, a cache checkpoint — fails the run.
//
// Usage:
//
//	impeccable-verify -state /var/lib/impeccable
//
// Exit status 0 when every check passes, 1 otherwise (problems on
// stderr), 2 for usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"impeccable/internal/service"
)

func main() {
	state := flag.String("state", "", "state directory to verify (the server's -state-dir)")
	asJSON := flag.Bool("json", false, "emit the full report as JSON on stdout")
	quiet := flag.Bool("quiet", false, "print nothing on success")
	flag.Parse()
	if *state == "" {
		fmt.Fprintln(os.Stderr, "impeccable-verify: -state is required")
		flag.Usage()
		os.Exit(2)
	}
	report, err := service.VerifyStateDir(*state)
	if err != nil {
		fmt.Fprintf(os.Stderr, "impeccable-verify: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(report)
	} else if !*quiet || !report.Ok() {
		fmt.Printf("%s: %d events, %d jobs (%d sealed, %d checkpointed, %d legacy), %d artifacts verified\n",
			*state, report.Events, report.Jobs, report.Sealed, report.Checkpoints, report.Legacy, report.Blobs)
	}
	if !report.Ok() {
		for _, p := range report.Problems {
			fmt.Fprintf(os.Stderr, "FAIL: %s\n", p)
		}
		os.Exit(1)
	}
}
