// Command bench-tables regenerates the paper's evaluation artifacts as
// text tables and ASCII figures, optionally writing CSVs for external
// plotting.
//
// Usage:
//
//	bench-tables [-table2] [-table3] [-fig4] [-fig5] [-fig6] [-fig7]
//	             [-scaling] [-all] [-csv DIR] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"impeccable/internal/campaign"
	"impeccable/internal/chem"
	"impeccable/internal/deepdrive"
	"impeccable/internal/dock"
	"impeccable/internal/esmacs"
	"impeccable/internal/latent"
	"impeccable/internal/receptor"
	"impeccable/internal/stats"
	"impeccable/internal/surrogate"
	"impeccable/internal/xrand"
)

var csvDir = flag.String("csv", "", "directory to write CSV outputs (optional)")

func main() {
	var (
		t2      = flag.Bool("table2", false, "method cost ladder")
		t3      = flag.Bool("table3", false, "component throughput")
		f4      = flag.Bool("fig4", false, "RES profile")
		f5      = flag.Bool("fig5", false, "CG ΔG histogram + RMSD + latent")
		f6      = flag.Bool("fig6", false, "CG vs FG for top compounds")
		f7      = flag.Bool("fig7", false, "node utilization time series")
		scaling = flag.Bool("scaling", false, "RAPTOR docking scaling sweep")
		all     = flag.Bool("all", false, "everything")
		seed    = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()
	if *all {
		*t2, *t3, *f4, *f5, *f6, *f7, *scaling = true, true, true, true, true, true, true
	}
	if !(*t2 || *t3 || *f4 || *f5 || *f6 || *f7 || *scaling) {
		flag.Usage()
		os.Exit(2)
	}
	if *t2 {
		table2()
	}
	if *t3 {
		table3(*seed)
	}
	if *f4 {
		fig4(*seed)
	}
	if *f5 {
		fig5(*seed)
	}
	if *f6 {
		fig6(*seed)
	}
	if *f7 {
		fig7(*seed)
	}
	if *scaling {
		scalingSweep(*seed)
	}
}

func writeCSV(name string, header []string, rows [][]string) {
	if *csvDir == "" {
		return
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	f, err := os.Create(filepath.Join(*csvDir, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	if err := stats.WriteCSV(f, header, rows); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func table2() {
	fmt.Println("== Table 2: normalized computational costs on Summit ==")
	rows := [][]string{}
	for _, r := range campaign.Table2() {
		rows = append(rows, []string{
			r.Method,
			fmt.Sprintf("%.4g", r.NodesPerLig),
			fmt.Sprintf("%.4g", r.HoursPerLig),
			fmt.Sprintf("%.4g", r.NodeHrsPerLig),
		})
	}
	hdr := []string{"method", "nodes/ligand", "hours/ligand", "node-hours/ligand"}
	fmt.Println(stats.Table(hdr, rows))
	writeCSV("table2.csv", hdr, rows)
}

func table3(seed uint64) {
	fmt.Println("== Table 3: per-component throughput (this substrate, 1 process) ==")
	tg := receptor.PLPro()

	// ML1 inference.
	model := surrogate.NewModel(seed)
	ids := make([]uint64, 8192)
	r := xrand.New(seed)
	for i := range ids {
		ids[i] = r.Uint64()
	}
	mlT := timeIt(func() { model.PredictIDs(ids, 0) })
	mlThrough := float64(len(ids)) / mlT

	// S1 docking.
	eng := dock.NewEngine(tg, seed)
	eng.Params.Runs = 1
	eng.Params.Generations = 10
	mols := make([]*chem.Molecule, 48)
	for i := range mols {
		mols[i] = chem.FromID(uint64(i))
	}
	s1T := timeIt(func() { eng.DockBatch(mols) })
	s1Through := float64(len(mols)) / s1T

	// S3-CG and S3-FG.
	runner := esmacs.NewRunner(tg, seed)
	// Serial replica execution: per-ligand *cost* must not be masked by
	// replica-level parallelism (FG's 24 replicas parallelize better
	// than CG's 6 on a many-core host).
	runner.Workers = 1
	m := chem.FromID(7)
	cg := esmacs.CG()
	cg.EquilSteps, cg.ProdSteps, cg.MinimizeIters = 40, 160, 25
	fg := esmacs.FG()
	fg.EquilSteps, fg.ProdSteps, fg.MinimizeIters = 80, 400, 40
	cgT := timeIt(func() { runner.Estimate(m, nil, cg) })
	fgT := timeIt(func() { runner.Estimate(m, nil, fg) })

	hdr := []string{"component", "throughput (ligands/s)", "paper (ligands/s)"}
	rows := [][]string{
		{"ML1", fmt.Sprintf("%.0f", mlThrough), "319674 (1536 GPUs)"},
		{"S1", fmt.Sprintf("%.1f", s1Through), "14252 (6000 GPUs)"},
		{"S3-CG", fmt.Sprintf("%.2f", 1/cgT), "2000 (6000 GPUs)"},
		{"S3-FG", fmt.Sprintf("%.2f", 1/fgT), "200 (6000 GPUs)"},
	}
	fmt.Println(stats.Table(hdr, rows))
	fmt.Printf("shape check: ML1 >> S1 >> CG ≈ 10×FG (paper ratios 22:71:10:1)\n\n")
	writeCSV("table3.csv", hdr, rows)
}

func fig4(seed uint64) {
	fmt.Println("== Fig. 4: RES profile for PLPro (real docking scores) ==")
	tg := receptor.PLPro()
	eng := dock.NewEngine(tg, seed)
	eng.Params.Runs = 1
	eng.Params.Generations = 10
	r := xrand.New(seed)
	const n = 8000
	mols := make([]*chem.Molecule, n)
	for i := range mols {
		mols[i] = chem.FromID(r.Uint64())
	}
	docks := eng.DockBatch(mols)
	scores := make([]float64, n)
	for i, d := range docks {
		scores[i] = d.Score
	}
	model := surrogate.NewModel(seed ^ 0x11)
	cfg := surrogate.DefaultTrainConfig()
	cfg.Epochs = 25
	if _, err := model.Fit(mols[:3000], scores[:3000], cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pred := model.Predict(mols)
	fr := []float64{1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 1}
	res := surrogate.ComputeRES(pred, scores, fr, fr)
	hdr := []string{"alpha\\beta"}
	for _, b := range fr {
		hdr = append(hdr, fmt.Sprintf("%.0e", b))
	}
	rows := [][]string{}
	for i, a := range fr {
		row := []string{fmt.Sprintf("%.0e", a)}
		for j := range fr {
			row = append(row, fmt.Sprintf("%.2f", res.R[i][j]))
		}
		rows = append(rows, row)
		_ = a
	}
	fmt.Println(stats.Table(hdr, rows))
	writeCSV("fig4_res.csv", hdr, rows)
}

func fig5(seed uint64) {
	fmt.Println("== Fig. 5A/B/C: CG-ESMACS distributions and latent space ==")
	tg := receptor.PLPro()
	runner := esmacs.NewRunner(tg, seed)
	runner.KeepTrajectories = true
	proto := esmacs.CG()
	proto.EquilSteps, proto.ProdSteps, proto.MinimizeIters = 40, 160, 25
	r := xrand.New(seed)
	var dgs, rmsds []float64
	var ests []esmacs.Estimate
	for i := 0; i < 24; i++ {
		est := runner.Estimate(chem.FromID(r.Uint64()), nil, proto)
		dgs = append(dgs, est.DeltaG)
		rmsds = append(rmsds, est.MeanRMSD)
		if i < 4 {
			ests = append(ests, est)
		}
	}
	fmt.Println("5A: ΔG histogram (kcal/mol):")
	fmt.Println(stats.NewHistogram(dgs, -60, 20, 16).Render(40))
	s := stats.Summarize(rmsds)
	fmt.Printf("5B: RMSD median %.2f Å (IQR %.2f-%.2f, max %.2f)\n\n", s.Median, s.Q25, s.Q75, s.Max)

	d := deepdrive.NewDriver(tg)
	d.Cfg.Epochs = 6
	d.Cfg.MaxFrames = 160
	rep, err := d.Run(ests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("5C: 3D-AAE validation Chamfer %.4f over %d frames; %d outlier conformations selected\n",
		rep.ValRecon, rep.Frames, len(rep.Selections))
	// t-SNE projection of the latent manifold with LOF outliers marked
	// (the paper paints validation grey and test by RMSD; here inliers
	// are dots and density outliers 'O').
	tcfg := latent.DefaultTSNEConfig()
	tcfg.Iters = 150
	emb := latent.TSNE(rep.Embeddings, tcfg)
	mark := make([]bool, len(emb))
	for _, i := range latent.TopOutliers(rep.LOF, len(rep.LOF)/10) {
		mark[i] = true
	}
	fmt.Println(stats.Scatter(emb, mark, 66, 18))
	rows := [][]string{}
	for i, dg := range dgs {
		rows = append(rows, []string{fmt.Sprint(i), fmt.Sprintf("%.2f", dg), fmt.Sprintf("%.3f", rmsds[i])})
	}
	writeCSV("fig5_dg_rmsd.csv", []string{"compound", "dG", "rmsd"}, rows)
}

func fig6(seed uint64) {
	fmt.Println("== Fig. 6: CG vs FG for the top compounds ==")
	cfg := campaign.DefaultConfig(receptor.PLPro())
	cfg.LibrarySize = 1500
	cfg.TrainSize = 300
	cfg.CGCount = 8
	cfg.TopCompounds = 5
	cfg.OutliersPer = 3
	cfg.FastProtocols = true
	cfg.Seed = seed
	p := dock.DefaultParams()
	p.Runs = 1
	p.Generations = 10
	cfg.DockParams = &p
	res, err := campaign.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hdr := []string{"compound", "CG dG", "FG dG", "truth"}
	rows := [][]string{}
	lower := 0
	for _, tc := range res.Top {
		if tc.FG < tc.CG {
			lower++
		}
		rows = append(rows, []string{
			fmt.Sprintf("%012x", tc.MolID),
			fmt.Sprintf("%.1f±%.1f", tc.CG, tc.CGErr),
			fmt.Sprintf("%.1f±%.1f", tc.FG, tc.FGErr),
			fmt.Sprintf("%.1f", tc.Truth),
		})
	}
	fmt.Println(stats.Table(hdr, rows))
	fmt.Printf("FG below CG for %d/%d top compounds (paper: 5/5)\n\n", lower, len(res.Top))
	writeCSV("fig6_cg_fg.csv", hdr, rows)
}

func fig7(seed uint64) {
	fmt.Println("== Fig. 7: node utilization of integrated (S3-CG)-(S2)-(S3-FG) ==")
	cfg := campaign.DefaultSimConfig()
	cfg.Seed = seed
	res := campaign.RunSim(cfg)
	ts := make([]float64, len(res.Trace))
	vs := make([]float64, len(res.Trace))
	rows := [][]string{}
	for i, s := range res.Trace {
		ts[i] = s.Time / 3600
		vs[i] = float64(s.BusyNodes)
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", s.Time), fmt.Sprint(s.BusyNodes),
			fmt.Sprint(s.Running), fmt.Sprint(s.Queued)})
	}
	fmt.Print(stats.TimeSeries(ts, vs, 70, 10))
	fmt.Printf("makespan %.1f h, utilization %.0f%%, mean scheduling delay %.1f s\n\n",
		res.Makespan/3600, 100*res.Utilization, res.MeanSchedulingDelay)
	writeCSV("fig7_utilization.csv", []string{"time_s", "busy_nodes", "running", "queued"}, rows)
}

func scalingSweep(seed uint64) {
	fmt.Println("== §8 scaling: RAPTOR docking throughput vs nodes ==")
	hdr := []string{"nodes", "docks/s", "Mdocks/hour", "utilization"}
	rows := [][]string{}
	for _, nodes := range []int{64, 128, 256, 512, 1024, 2048, 4000} {
		res := campaign.SimDockingAtScale(nodes, nodes*500, seed)
		rows = append(rows, []string{
			fmt.Sprint(nodes),
			fmt.Sprintf("%.0f", res.Throughput),
			fmt.Sprintf("%.2f", res.DocksPerHour/1e6),
			fmt.Sprintf("%.2f", res.Utilization),
		})
	}
	fmt.Println(stats.Table(hdr, rows))
	fmt.Println("paper: sustained 40M docks/hour on ~4000 nodes; near-linear scaling")
	writeCSV("scaling.csv", hdr, rows)
}

func timeIt(fn func()) float64 {
	t0 := nowSeconds()
	fn()
	return nowSeconds() - t0
}
