package main

import "time"

var epoch = time.Now()

// nowSeconds returns seconds since process start.
func nowSeconds() float64 { return time.Since(epoch).Seconds() }
