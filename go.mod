module impeccable

go 1.24
