// Utilization: drive the workflow infrastructure (EnTK pipelines over a
// pilot on simulated Summit) with the paper's integrated
// (S3-CG)-(S2)-(S3-FG) workload and render the Fig. 7 node-utilization
// time series, then sweep RAPTOR docking throughput across node counts
// (the §8 scaling claims).
//
//	go run ./examples/utilization
package main

import (
	"fmt"

	"impeccable"
	"impeccable/internal/stats"
)

func main() {
	// Fig. 7: integrated heterogeneous workload on a 64-node pilot.
	cfg := impeccable.DefaultSimConfig()
	res := impeccable.RunSim(cfg)

	fmt.Printf("Integrated (S3-CG)-(S2)-(S3-FG) on %d Summit nodes, %d pipelines:\n\n",
		cfg.Nodes, cfg.Pipelines)
	ts := make([]float64, len(res.Trace))
	vs := make([]float64, len(res.Trace))
	for i, s := range res.Trace {
		ts[i] = s.Time / 3600
		vs[i] = float64(s.BusyNodes)
	}
	fmt.Print(stats.TimeSeries(ts, vs, 70, 10))
	fmt.Printf("\n  busy nodes over time (hours); makespan %.1f h\n", res.Makespan/3600)
	fmt.Printf("  utilization %.0f%%, %d tasks, %.0f node-hours, mean scheduling delay %.1f s\n\n",
		100*res.Utilization, res.Tasks, res.NodeHours, res.MeanSchedulingDelay)

	// Overhead invariance: same workload density at 4× the scale.
	big := cfg
	big.Nodes *= 4
	big.Pipelines *= 4
	bigRes := impeccable.RunSim(big)
	fmt.Printf("Overhead invariance: %d nodes → delay %.1f s; %d nodes → delay %.1f s\n\n",
		cfg.Nodes, res.MeanSchedulingDelay, big.Nodes, bigRes.MeanSchedulingDelay)

	// §8: RAPTOR docking scaling sweep.
	fmt.Println("RAPTOR docking throughput vs allocation (Table 2-calibrated per-dock cost):")
	fmt.Printf("  %8s  %12s  %14s  %12s\n", "nodes", "docks/s", "Mdocks/hour", "utilization")
	for _, nodes := range []int{64, 256, 1024, 4000} {
		r := impeccable.SimDockingAtScale(nodes, nodes*400, 1)
		fmt.Printf("  %8d  %12.0f  %14.2f  %11.0f%%\n",
			r.Nodes, r.Throughput, r.DocksPerHour/1e6, 100*r.Utilization)
	}
	fmt.Println("\npaper: sustained 40M docks/hour over 24h on ~4000 nodes")
}
