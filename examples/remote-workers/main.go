// Remote workers: run the campaign service as a pure coordinator
// (zero in-process workers) and attach two pull-based workers through
// the lease API — the same protocol cmd/impeccable-worker speaks
// across machines, here in one process for a self-contained demo.
//
// Three campaigns are submitted; once the first is under way, worker 1
// is killed mid-job. Its lease expires, the coordinator re-enqueues
// the job under its original ID, and worker 2 finishes everything —
// the printout shows the lease handoffs, which worker ran each job,
// and the worker cache deltas merged back into the coordinator.
//
//	go run ./examples/remote-workers
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"impeccable"
)

func main() {
	coord := impeccable.NewService(impeccable.ServiceOptions{
		RemoteOnly: true,            // no in-process execution: leases only
		LeaseTTL:   2 * time.Second, // a worker silent this long loses its job
	})
	defer coord.Shutdown()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	fmt.Printf("coordinator at %s (zero in-process workers)\n", srv.URL)

	// Two workers pull from the coordinator, exactly like two
	// `impeccable-worker -server ...` processes on other machines.
	ctx1, kill1 := context.WithCancel(context.Background())
	ctx2, stop2 := context.WithCancel(context.Background())
	defer stop2()
	quiet := func(string, ...any) {}
	w1 := impeccable.NewWorker(impeccable.WorkerOptions{
		Server: srv.URL, ID: "worker-1", Poll: 50 * time.Millisecond, Logf: quiet,
	})
	w2 := impeccable.NewWorker(impeccable.WorkerOptions{
		Server: srv.URL, ID: "worker-2", Poll: 50 * time.Millisecond, Logf: quiet,
	})
	go func() { _ = w1.Run(ctx1) }()
	go func() { _ = w2.Run(ctx2) }()

	req := impeccable.SubmitRequest{
		Target:        "PLPro",
		LibrarySize:   1000,
		TrainSize:     200,
		CGCount:       3,
		TopCompounds:  2,
		OutliersPer:   2,
		FastProtocols: true,
	}
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		r := req
		r.Seed = seed
		id, err := coord.Submit(r)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
		fmt.Printf("submitted %s (seed %d)\n", id, seed)
	}

	// Wait until some job is leased and making progress, then kill
	// worker 1 — no goodbye, no complete, just silence (what a machine
	// failure looks like to the coordinator).
	for {
		if snap, ok := leasedJob(coord); ok && snap.Progress > 0 {
			fmt.Printf("\n%s is running on %s (%s, %.0f%%) — killing worker-1\n",
				snap.ID, snap.Worker, snap.Stage, 100*snap.Progress)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	kill1()

	fmt.Println("worker-1 dead; its lease will expire and the job re-enqueues...")
	for _, id := range ids {
		snap, err := coord.Wait(id, 5*time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		if snap.State != impeccable.JobDone {
			log.Fatalf("job %s ended %s: %s", id, snap.State, snap.Error)
		}
		fmt.Printf("  %s done on %-9s in %.1fs\n", id, snap.Worker, snap.Duration().Seconds())
	}

	// Let the last worker finish reading its complete response (the
	// coordinator marks the job done mid-POST, so Wait can win by a
	// hair) before reading the per-worker counters.
	time.Sleep(200 * time.Millisecond)

	// The workers posted their score/feature-cache deltas with each
	// completion; the coordinator's sharded caches hold the labels now.
	scores := coord.ScoreCacheStats()
	feats := coord.FeatureCacheStats()
	fmt.Printf("\ncoordinator caches after merges: %d score entries, %d feature entries\n",
		scores.Entries, feats.Entries)
	fmt.Printf("worker-1 completed %d jobs, worker-2 completed %d\n",
		w1.Completed(), w2.Completed())
	fmt.Println("every job survived the worker kill — fault tolerance lives in the lease")
}

// leasedJob returns some currently leased job's snapshot.
func leasedJob(s *impeccable.Service) (impeccable.JobSnapshot, bool) {
	jobs := s.JobsFiltered(impeccable.JobQuery{State: impeccable.JobLeased, Limit: 1})
	if len(jobs) == 0 {
		return impeccable.JobSnapshot{}, false
	}
	return jobs[0], true
}
