// Docking-campaign: the ML1 + S1 half of IMPECCABLE on real docking
// output — dock a training library with the Lamarckian GA engine, train
// the surrogate on the scores, then measure how well the surrogate
// pre-selects compounds (the Fig. 4 / §5.1.2 story: two orders of
// magnitude of library filtering at near-full top-capture).
//
//	go run ./examples/docking-campaign
package main

import (
	"fmt"
	"runtime"
	"time"

	"impeccable/internal/chem"
	"impeccable/internal/dock"
	"impeccable/internal/receptor"
	"impeccable/internal/surrogate"
	"impeccable/internal/xrand"
)

func main() {
	tg := receptor.PLPro()
	fmt.Printf("Target: %s (PDB %s), %d pocket subsites\n", tg.Name, tg.PDBID, len(tg.Wells()))

	// 1. Dock a compound sample with AutoDock-style LGA (Solis-Wets).
	eng := dock.NewEngine(tg, 1)
	eng.Params.Runs = 2
	r := xrand.New(7)
	const n = 2400
	mols := make([]*chem.Molecule, n)
	for i := range mols {
		mols[i] = chem.FromID(r.Uint64())
	}
	fmt.Printf("Docking %d compounds on %d workers...\n", n, runtime.GOMAXPROCS(0))
	t0 := time.Now()
	results := eng.DockBatch(mols)
	dockSecs := time.Since(t0).Seconds()
	scores := make([]float64, n)
	var evals int64
	for i, res := range results {
		scores[i] = res.Score
		evals += res.Evals
	}
	fmt.Printf("  %.1f ligands/s, %.1fM energy evaluations total\n",
		float64(n)/dockSecs, float64(evals)/1e6)

	// 2. Train the surrogate on half, evaluate on the other half.
	model := surrogate.NewModel(11)
	cfg := surrogate.DefaultTrainConfig()
	cfg.Epochs = 25
	rep, err := model.Fit(mols[:n/2], scores[:n/2], cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Surrogate trained: %d samples, val loss %.4f → %.4f\n",
		rep.Samples, rep.ValLoss[0], rep.ValLoss[len(rep.ValLoss)-1])

	// 3. Enrichment on held-out compounds.
	hold := mols[n/2:]
	holdScores := scores[n/2:]
	pred := model.Predict(hold)
	for _, frac := range []float64{0.01, 0.05, 0.10} {
		ef := surrogate.EnrichmentFactor(pred, holdScores, frac)
		fmt.Printf("  EF(%.0f%%) = %.1f× over random\n", frac*100, ef)
	}
	fr := []float64{0.01, 0.03, 0.1, 0.3, 1}
	res := surrogate.ComputeRES(pred, holdScores, fr, fr)
	fmt.Println("\nRES surface (rows: allocation α, cols: true-top β):")
	fmt.Print("        ")
	for _, b := range fr {
		fmt.Printf("β=%-6.2f", b)
	}
	fmt.Println()
	for i, a := range fr {
		fmt.Printf("α=%-5.2f ", a)
		for j := range fr {
			fmt.Printf("%-8.2f", res.R[i][j])
		}
		fmt.Println()
	}

	// 4. Inference throughput over a larger virtual library (the ML1
	// pre-selection role).
	ids := make([]uint64, 50_000)
	for i := range ids {
		ids[i] = r.Uint64()
	}
	t0 = time.Now()
	preds := model.PredictIDs(ids, 0)
	infSecs := time.Since(t0).Seconds()
	top := surrogate.TopK(preds, 10)
	fmt.Printf("\nScreened %d virtual compounds at %.0f ligands/s; best predicted:\n",
		len(ids), float64(len(ids))/infSecs)
	for _, i := range top[:5] {
		m := chem.FromID(ids[i])
		fmt.Printf("  %s  (pred %.3f, truth %.1f kcal/mol)\n",
			m.SMILES, preds[i], tg.TrueAffinity(m))
	}
}
