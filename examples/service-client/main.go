// Service client: start the campaign service in-process, then act as two
// tenants submitting overlapping campaigns over its HTTP API. The second
// tenant's campaign is served largely from the shared docking-score
// cache — the printout shows the live job states, the eval counts of
// both campaigns and the cache hit rate.
//
// The service runs with a state directory, so the second act
// demonstrates crash-safety: the service drains, a fresh instance
// reopens the same directory, serves both finished results straight
// from the journal, and a resubmission against the restored cache
// checkpoint spends zero docking evaluations.
//
//	go run ./examples/service-client
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"impeccable"
)

func main() {
	stateDir, err := os.MkdirTemp("", "impeccable-state-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)

	svc, err := impeccable.OpenService(impeccable.ServiceOptions{
		Workers:  2,
		StateDir: stateDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	fmt.Printf("campaign service listening at %s (state: %s)\n\n", srv.URL, stateDir)

	req := impeccable.SubmitRequest{
		Target:        "PLPro",
		LibrarySize:   800,
		TrainSize:     160,
		CGCount:       4,
		TopCompounds:  2,
		OutliersPer:   2,
		Seed:          1,
		FastProtocols: true,
	}

	fmt.Println("tenant A submits a PLPro campaign (cold cache)...")
	idA, sumA := runJob(srv.URL, req)
	fmt.Println("tenant B submits the same screen (warm cache)...")
	_, sumB := runJob(srv.URL, req)

	fmt.Printf("\ntenant A spent %d docking evaluations (%d cache hits)\n",
		sumA.Funnel.DockEvals, sumA.Funnel.DockCacheHits)
	fmt.Printf("tenant B spent %d docking evaluations (%d cache hits)\n",
		sumB.Funnel.DockEvals, sumB.Funnel.DockCacheHits)
	if sumA.Funnel.DockEvals > 0 {
		fmt.Printf("shared cache saved tenant B %.0f%% of the docking work\n",
			100*(1-float64(sumB.Funnel.DockEvals)/float64(sumA.Funnel.DockEvals)))
	}

	var cache struct {
		Scores   impeccable.CacheStats `json:"scores"`
		Features impeccable.CacheStats `json:"features"`
	}
	getJSON(srv.URL+"/api/v1/cache", &cache)
	fmt.Printf("\nscore cache:   %d entries, hit rate %.0f%%\n",
		cache.Scores.Entries, 100*cache.Scores.HitRate)
	fmt.Printf("feature cache: %d entries, hit rate %.0f%%\n",
		cache.Features.Entries, 100*cache.Features.HitRate)

	// Act two: the "server" goes away and comes back on the same state
	// dir. Nothing reruns — the journal already has both results — and a
	// third tenant's identical submission runs entirely from the
	// restored cache checkpoint.
	fmt.Println("\ndraining the service and reopening the state dir...")
	srv.Close()
	svc.Shutdown()

	svc2, err := impeccable.OpenService(impeccable.ServiceOptions{
		Workers:  2,
		StateDir: stateDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc2.Shutdown()
	srv2 := httptest.NewServer(svc2.Handler())
	defer srv2.Close()

	var jobs []impeccable.JobSnapshot
	getJSON(srv2.URL+"/api/v1/campaigns", &jobs)
	fmt.Printf("recovered %d jobs from the journal:\n", len(jobs))
	for _, j := range jobs {
		fmt.Printf("  %-10s %-9s ran %.1fs\n", j.ID, j.State, j.Duration().Seconds())
	}
	var sumA2 impeccable.ResultSummary
	getJSON(srv2.URL+"/api/v1/campaigns/"+idA+"/result", &sumA2)
	fmt.Printf("tenant A's result survives the restart (%d screened, %d docked, %d top compounds)\n",
		sumA2.Funnel.Screened, sumA2.Funnel.Docked, len(sumA2.Top))

	fmt.Println("tenant C submits the same screen against the restored cache...")
	_, sumC := runJob(srv2.URL, req)
	fmt.Printf("tenant C spent %d docking evaluations (%d cache hits) — the checkpoint kept the cache warm\n",
		sumC.Funnel.DockEvals, sumC.Funnel.DockCacheHits)
}

// runJob submits one campaign and polls its status until done.
func runJob(base string, req impeccable.SubmitRequest) (string, impeccable.ResultSummary) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var snap impeccable.JobSnapshot
	decode(resp, &snap)
	start := time.Now()
	lastStage := ""
	for !snap.State.Terminal() {
		time.Sleep(100 * time.Millisecond)
		getJSON(base+"/api/v1/campaigns/"+snap.ID, &snap)
		if snap.Stage != lastStage {
			fmt.Printf("  %-10s %-10s %3.0f%%\n", snap.ID, snap.Stage, 100*snap.Progress)
			lastStage = snap.Stage
		}
	}
	if snap.State != impeccable.JobDone {
		log.Fatalf("job %s ended %s: %s", snap.ID, snap.State, snap.Error)
	}
	fmt.Printf("  %-10s done in %.1fs\n", snap.ID, time.Since(start).Seconds())
	var sum impeccable.ResultSummary
	getJSON(base+"/api/v1/campaigns/"+snap.ID+"/result", &sum)
	return snap.ID, sum
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
