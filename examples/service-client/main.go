// Service client: start the campaign service in-process, then act as two
// tenants submitting overlapping campaigns over its HTTP API. The second
// tenant's campaign is served largely from the shared docking-score
// cache — the printout shows the live job states, the eval counts of
// both campaigns and the cache hit rate.
//
//	go run ./examples/service-client
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"impeccable"
)

func main() {
	svc := impeccable.NewService(impeccable.ServiceOptions{Workers: 2})
	defer svc.Shutdown()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	fmt.Printf("campaign service listening at %s\n\n", srv.URL)

	req := impeccable.SubmitRequest{
		Target:        "PLPro",
		LibrarySize:   800,
		TrainSize:     160,
		CGCount:       4,
		TopCompounds:  2,
		OutliersPer:   2,
		Seed:          1,
		FastProtocols: true,
	}

	fmt.Println("tenant A submits a PLPro campaign (cold cache)...")
	sumA := runJob(srv.URL, req)
	fmt.Println("tenant B submits the same screen (warm cache)...")
	sumB := runJob(srv.URL, req)

	fmt.Printf("\ntenant A spent %d docking evaluations (%d cache hits)\n",
		sumA.Funnel.DockEvals, sumA.Funnel.DockCacheHits)
	fmt.Printf("tenant B spent %d docking evaluations (%d cache hits)\n",
		sumB.Funnel.DockEvals, sumB.Funnel.DockCacheHits)
	if sumA.Funnel.DockEvals > 0 {
		fmt.Printf("shared cache saved tenant B %.0f%% of the docking work\n",
			100*(1-float64(sumB.Funnel.DockEvals)/float64(sumA.Funnel.DockEvals)))
	}

	var cache struct {
		Scores   impeccable.CacheStats `json:"scores"`
		Features impeccable.CacheStats `json:"features"`
	}
	getJSON(srv.URL+"/api/v1/cache", &cache)
	fmt.Printf("\nscore cache:   %d entries, hit rate %.0f%%\n",
		cache.Scores.Entries, 100*cache.Scores.HitRate)
	fmt.Printf("feature cache: %d entries, hit rate %.0f%%\n",
		cache.Features.Entries, 100*cache.Features.HitRate)
}

// runJob submits one campaign and polls its status until done.
func runJob(base string, req impeccable.SubmitRequest) impeccable.ResultSummary {
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var snap impeccable.JobSnapshot
	decode(resp, &snap)
	start := time.Now()
	lastStage := ""
	for !snap.State.Terminal() {
		time.Sleep(100 * time.Millisecond)
		getJSON(base+"/api/v1/campaigns/"+snap.ID, &snap)
		if snap.Stage != lastStage {
			fmt.Printf("  %-10s %-10s %3.0f%%\n", snap.ID, snap.Stage, 100*snap.Progress)
			lastStage = snap.Stage
		}
	}
	if snap.State != impeccable.JobDone {
		log.Fatalf("job %s ended %s: %s", snap.ID, snap.State, snap.Error)
	}
	fmt.Printf("  %-10s done in %.1fs\n", snap.ID, time.Since(start).Seconds())
	var sum impeccable.ResultSummary
	getJSON(base+"/api/v1/campaigns/"+snap.ID+"/result", &sum)
	return sum
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
