// Adaptive-sampling: the S3-CG → S2 → S3-FG loop of IMPECCABLE on a few
// compounds — ensemble free energies, 3D-AAE latent-space learning, LOF
// outlier selection, and FG refinement from the selected conformations
// (the Figs. 5-6 pipeline).
//
//	go run ./examples/adaptive-sampling
package main

import (
	"fmt"
	"sort"

	"impeccable/internal/chem"
	"impeccable/internal/deepdrive"
	"impeccable/internal/esmacs"
	"impeccable/internal/receptor"
	"impeccable/internal/xrand"
)

func main() {
	tg := receptor.PLPro()

	// S3-CG over a compound set, keeping trajectories for S2.
	runner := esmacs.NewRunner(tg, 5)
	runner.KeepTrajectories = true
	cg := esmacs.CG()
	cg.EquilSteps, cg.ProdSteps, cg.MinimizeIters = 60, 300, 30

	r := xrand.New(3)
	fmt.Println("S3-CG: 6-replica ensemble free energies...")
	var ests []esmacs.Estimate
	for i := 0; i < 6; i++ {
		m := chem.FromID(r.Uint64())
		est := runner.Estimate(m, nil, cg)
		ests = append(ests, est)
		fmt.Printf("  %012x: ΔG = %6.1f ± %4.1f kcal/mol  (RMSD %.2f Å, truth %5.1f)\n",
			est.MolID, est.DeltaG, est.StdErr, est.MeanRMSD, tg.TrueAffinity(m))
	}
	sort.Slice(ests, func(a, b int) bool { return ests[a].DeltaG < ests[b].DeltaG })
	top := ests[:3]

	// S2: 3D-AAE + LOF outlier selection on the top compounds.
	fmt.Println("\nS2: training 3D-AAE on pooled Cα point clouds...")
	driver := deepdrive.NewDriver(tg)
	driver.Cfg.Epochs = 8
	driver.Cfg.MaxFrames = 200
	driver.Cfg.OutliersPerLigand = 3
	rep, err := driver.Run(top)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  %d frames embedded (latent dim 64), validation Chamfer %.4f\n",
		rep.Frames, rep.ValRecon)
	fmt.Printf("  epochs: recon %.4f → %.4f\n",
		rep.History[0].Recon, rep.History[len(rep.History)-1].Recon)
	fmt.Printf("  selected %d outlier conformations (LOF top scores: ", len(rep.Selections))
	for i, sel := range rep.Selections {
		if i > 0 {
			fmt.Print(", ")
		}
		if i == 3 {
			fmt.Print("...")
			break
		}
		fmt.Printf("%.2f", sel.LOFScore)
	}
	fmt.Println(")")

	// S3-FG from the outlier conformations (Fig. 6).
	fmt.Println("\nS3-FG: 24-replica refinement from outlier conformations...")
	fg := esmacs.FG()
	fg.EquilSteps, fg.ProdSteps, fg.MinimizeIters = 100, 500, 40
	cgByMol := map[uint64]float64{}
	for _, est := range top {
		cgByMol[est.MolID] = est.DeltaG
	}
	best := map[uint64]float64{}
	for _, sel := range rep.Selections {
		est := runner.Estimate(chem.FromID(sel.Ref.MolID), sel.Ligand, fg)
		if prev, ok := best[est.MolID]; !ok || est.DeltaG < prev {
			best[est.MolID] = est.DeltaG
		}
	}
	fmt.Println("\nCG vs FG (paper Fig. 6: FG lower for all selected compounds):")
	for mol, cgDG := range cgByMol {
		fgDG, ok := best[mol]
		if !ok {
			continue
		}
		verdict := "improved"
		if fgDG >= cgDG {
			verdict = "not improved"
		}
		fmt.Printf("  %012x: CG %6.1f → FG %6.1f kcal/mol (%s)\n", mol, cgDG, fgDG, verdict)
	}
}
