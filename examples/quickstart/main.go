// Quickstart: run a small end-to-end IMPECCABLE campaign against PLPro
// and print the funnel, the top compounds and the CG-vs-FG refinement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"impeccable"
)

func main() {
	cfg := impeccable.DefaultConfig(impeccable.PLPro())
	cfg.LibrarySize = 1500 // compounds screened by the ML surrogate
	cfg.TrainSize = 300    // compounds docked to train the surrogate
	cfg.CGCount = 6        // compounds through coarse-grained ESMACS
	cfg.TopCompounds = 3   // best binders advanced to S2 + FG
	cfg.OutliersPer = 3    // conformations per compound for FG
	cfg.FastProtocols = true

	fmt.Println("Running one IMPECCABLE iteration (ML1 → S1 → S3-CG → S2 → S3-FG)...")
	res, err := impeccable.RunCampaign(cfg)
	if err != nil {
		log.Fatal(err)
	}

	f := res.Funnel
	fmt.Printf("\nFunnel: %d screened → %d docked → %d CG → %d S2 frames → %d FG runs\n",
		f.Screened, f.Docked, f.CG, f.S2Frames, f.FG)

	fmt.Println("\nTop compounds (CG vs FG binding free energies, kcal/mol):")
	for _, tc := range res.Top {
		marker := ""
		if tc.FG < tc.CG {
			marker = "  ← FG refined"
		}
		fmt.Printf("  %012x  CG %6.1f ± %4.1f   FG %6.1f ± %4.1f   truth %5.1f%s\n",
			tc.MolID, tc.CG, tc.CGErr, tc.FG, tc.FGErr, tc.Truth, marker)
	}

	fmt.Printf("\nSurrogate enrichment: RES(1%%, 1%%) = %.0f%% of true top captured\n",
		100*res.RES.At(1e-2, 1e-2))
	fmt.Printf("Scientific yield: %.0f%% of CG compounds are true top-1%% binders (random: 1%%)\n",
		100*res.ScientificYield)
}
