package campaign

import (
	"encoding/json"
	"fmt"
	"io"
)

// Export is the JSON-serializable summary of a campaign Result: what a
// downstream consumer (plotting, database upload, the next iteration's
// bookkeeping) needs, without in-memory-only artifacts like the trained
// model or retained trajectories.
type Export struct {
	Funnel          FunnelStats       `json:"funnel"`
	Top             []TopComparison   `json:"top_compounds"`
	CG              []ExportEstimate  `json:"cg_estimates"`
	FG              []ExportEstimate  `json:"fg_estimates"`
	RES             *ExportRES        `json:"res,omitempty"`
	Components      []ExportComponent `json:"components"`
	ScientificYield float64           `json:"scientific_yield"`
	TrainLoss       []float64         `json:"train_loss,omitempty"`
	ValLoss         []float64         `json:"val_loss,omitempty"`
}

// ExportEstimate is the serializable form of an ESMACS estimate.
type ExportEstimate struct {
	MolID    string  `json:"mol_id"`
	Protocol string  `json:"protocol"`
	DeltaG   float64 `json:"delta_g"`
	StdErr   float64 `json:"std_err"`
	MeanRMSD float64 `json:"mean_rmsd"`
}

// ExportRES is the serializable RES surface.
type ExportRES struct {
	Alphas []float64   `json:"alphas"`
	Betas  []float64   `json:"betas"`
	R      [][]float64 `json:"recall"`
}

// ExportComponent is one FLOP-accounting row.
type ExportComponent struct {
	Component string  `json:"component"`
	Flops     int64   `json:"flops"`
	Units     int64   `json:"units"`
	Seconds   float64 `json:"seconds"`
}

// Export builds the serializable summary.
func (r *Result) Export() Export {
	e := Export{
		Funnel:          r.Funnel,
		Top:             r.Top,
		ScientificYield: r.ScientificYield,
		TrainLoss:       r.TrainReport.TrainLoss,
		ValLoss:         r.TrainReport.ValLoss,
	}
	for _, est := range r.CGEstimates {
		e.CG = append(e.CG, ExportEstimate{
			MolID:    fmt.Sprintf("%016x", est.MolID),
			Protocol: est.Protocol,
			DeltaG:   est.DeltaG,
			StdErr:   est.StdErr,
			MeanRMSD: est.MeanRMSD,
		})
	}
	for _, est := range r.FGEstimates {
		e.FG = append(e.FG, ExportEstimate{
			MolID:    fmt.Sprintf("%016x", est.MolID),
			Protocol: est.Protocol,
			DeltaG:   est.DeltaG,
			StdErr:   est.StdErr,
			MeanRMSD: est.MeanRMSD,
		})
	}
	if r.RES != nil {
		e.RES = &ExportRES{Alphas: r.RES.Alphas, Betas: r.RES.Betas, R: r.RES.R}
	}
	if r.Counter != nil {
		for _, s := range r.Counter.Stats() {
			e.Components = append(e.Components, ExportComponent{
				Component: s.Component,
				Flops:     s.Flops,
				Units:     s.Units,
				Seconds:   s.Seconds,
			})
		}
	}
	return e
}

// WriteJSON writes the export as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Export())
}

// ReadExport parses a previously written export.
func ReadExport(rd io.Reader) (Export, error) {
	var e Export
	err := json.NewDecoder(rd).Decode(&e)
	return e, err
}
