package campaign

import "testing"

func TestRunIterationsAccumulatesPool(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	cfg := fastConfig()
	cfg.LibrarySize = 900
	cfg.TrainSize = 200
	results, sums, err := RunIterations(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || len(sums) != 3 {
		t.Fatalf("iterations = %d/%d", len(results), len(sums))
	}
	// Pool must grow monotonically: each round adds its docking labels.
	if sums[0].PoolSize != 0 {
		t.Fatalf("first pool = %d", sums[0].PoolSize)
	}
	for i := 1; i < 3; i++ {
		if sums[i].PoolSize <= sums[i-1].PoolSize {
			t.Fatalf("pool did not grow: %d -> %d", sums[i-1].PoolSize, sums[i].PoolSize)
		}
	}
	// Later iterations train on more data.
	if results[2].TrainReport.Samples <= results[0].TrainReport.Samples {
		t.Fatalf("training set did not grow: %d -> %d",
			results[0].TrainReport.Samples, results[2].TrainReport.Samples)
	}
	for i, s := range sums {
		t.Logf("iter %d: pool %d, yield %.2f, bestCG %.1f (truth %.1f), val loss %.4f",
			i, s.PoolSize, s.Yield, s.BestCG, s.BestTruth, s.ValLoss)
	}
}

func TestIterationsScreenDistinctWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	cfg := fastConfig()
	cfg.LibrarySize = 600
	cfg.TrainSize = 150
	results, _, err := RunIterations(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// CG compounds of the two iterations must not overlap (different
	// library windows).
	seen := map[uint64]bool{}
	for _, est := range results[0].CGEstimates {
		seen[est.MolID] = true
	}
	for _, est := range results[1].CGEstimates {
		if seen[est.MolID] {
			t.Fatalf("compound %x screened in both windows", est.MolID)
		}
	}
}
