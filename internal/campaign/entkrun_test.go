package campaign

import "testing"

func TestRunViaEnTKEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	cfg := fastConfig()
	res, err := RunViaEnTK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Funnel
	if f.Screened != cfg.LibrarySize {
		t.Fatalf("screened = %d", f.Screened)
	}
	if f.CG != cfg.CGCount {
		t.Fatalf("CG = %d", f.CG)
	}
	if f.FG != cfg.TopCompounds*cfg.OutliersPer {
		t.Fatalf("FG = %d", f.FG)
	}
	if len(res.Top) == 0 {
		t.Fatal("no Fig. 6 comparisons")
	}
	// The pilot path must leave a utilization trace (the workflow engine
	// actually executed the tasks).
	if len(res.PilotTrace) == 0 {
		t.Fatal("no pilot utilization trace")
	}
	// And the flop counter must be fed through pilot task accounting for
	// every component name used by the stages.
	for _, comp := range []string{"S1", "ML1", "S3-CG", "S2", "S3-FG"} {
		if res.Counter.Get(comp).Units == 0 {
			t.Fatalf("component %s never executed on the pilot", comp)
		}
	}
}

func TestRunViaEnTKMatchesDirectFunnelShape(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	// The EnTK path and the direct path must agree on the funnel shape
	// (they share engines but schedule differently, so scores may differ
	// only where ordering-dependent RNG streams diverge — the structure
	// must not).
	cfg := fastConfig()
	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaEntk, err := RunViaEnTK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Funnel.Screened != viaEntk.Funnel.Screened ||
		direct.Funnel.CG != viaEntk.Funnel.CG {
		t.Fatalf("funnels diverge: %+v vs %+v", direct.Funnel, viaEntk.Funnel)
	}
}

func TestRunViaEnTKErrors(t *testing.T) {
	if _, err := RunViaEnTK(Config{}); err == nil {
		t.Fatal("nil target accepted")
	}
}
