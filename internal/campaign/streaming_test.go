package campaign

import (
	"errors"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"impeccable/internal/dock"
	"impeccable/internal/receptor"
)

// tinyStreamConfig is a campaign small enough that cancellation tests
// run in -short mode (and under -race in CI).
func tinyStreamConfig() Config {
	cfg := DefaultConfig(receptor.PLPro())
	cfg.LibrarySize = 240
	cfg.TrainSize = 24
	cfg.CGCount = 2
	cfg.TopCompounds = 1
	cfg.OutliersPer = 1
	cfg.FastProtocols = true
	cfg.Streaming = true
	cfg.Workers = 2
	p := dock.DefaultParams()
	p.Runs = 1
	p.Generations = 6
	p.Population = 16
	cfg.DockParams = &p
	return cfg
}

// requireNoPipelineGoroutines fails unless the goroutine count settles
// back to the pre-campaign baseline — the leak detector for the
// streaming pipeline's worker/collector goroutines.
func requireNoPipelineGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	var buf strings.Builder
	_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
	t.Fatalf("goroutines leaked: %d live vs baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf.String())
}

// cancelAtStage runs a streaming campaign whose cancel channel closes
// the first time the progress observer reports the given stage, then
// verifies ErrCanceled and zero leaked goroutines.
func cancelAtStage(t *testing.T, stage string) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	cancel := make(chan struct{})
	var once sync.Once
	cfg := tinyStreamConfig()
	cfg.Cancel = cancel
	cfg.Progress = func(s string, frac float64) {
		if s == stage {
			once.Do(func() { close(cancel) })
		}
	}
	res, err := RunWithPool(cfg, nil, 0)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancel at %q: err = %v, res = %v", stage, err, res)
	}
	requireNoPipelineGoroutines(t, baseline)
}

func TestStreamingCancelDuringTrainDock(t *testing.T) { cancelAtStage(t, "s1-train") }
func TestStreamingCancelDuringML1Train(t *testing.T)  { cancelAtStage(t, "ml1-train") }
func TestStreamingCancelMidScreen(t *testing.T)       { cancelAtStage(t, "ml1-screen") }
func TestStreamingCancelDuringDockFeed(t *testing.T)  { cancelAtStage(t, "s1-dock") }
func TestStreamingCancelBetweenStages(t *testing.T)   { cancelAtStage(t, "s3-cg") }

// TestStreamingCancelAlreadyClosed covers the degenerate case: a cancel
// channel closed before the campaign starts.
func TestStreamingCancelAlreadyClosed(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cancel := make(chan struct{})
	close(cancel)
	cfg := tinyStreamConfig()
	cfg.Cancel = cancel
	if _, err := RunWithPool(cfg, nil, 0); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	requireNoPipelineGoroutines(t, baseline)
}

// TestStreamingCompletesWithoutLeaks runs a full streaming campaign to
// completion and verifies every pipeline goroutine retired.
func TestStreamingCompletesWithoutLeaks(t *testing.T) {
	if testing.Short() {
		t.Skip("full (tiny) campaign")
	}
	baseline := runtime.NumGoroutine()
	res, err := RunWithPool(tinyStreamConfig(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Funnel.Screened != 240 || res.Funnel.CG == 0 {
		t.Fatalf("funnel = %+v", res.Funnel)
	}
	if res.Funnel.OverlapRatio <= 0 {
		t.Fatalf("no overlap ratio recorded: %+v", res.Funnel)
	}
	requireNoPipelineGoroutines(t, baseline)
}

// TestStreamingValidation mirrors the sequential path's config checks.
func TestStreamingValidation(t *testing.T) {
	cfg := tinyStreamConfig()
	cfg.Target = nil
	if _, err := RunWithPool(cfg, nil, 0); err == nil {
		t.Fatal("nil target accepted")
	}
	cfg = tinyStreamConfig()
	cfg.LibrarySize = 5
	if _, err := RunWithPool(cfg, nil, 0); err == nil {
		t.Fatal("tiny library accepted")
	}
}

// TestStreamingPoolFeedback verifies the streaming path feeds docking
// labels into the active-learning pool exactly like the sequential path.
func TestStreamingPoolFeedback(t *testing.T) {
	if testing.Short() {
		t.Skip("two full (tiny) campaigns")
	}
	cfg := tinyStreamConfig()
	cfg.Streaming = false
	seqPool := &Pool{}
	if _, err := RunWithPool(cfg, seqPool, 0); err != nil {
		t.Fatal(err)
	}
	cfg.Streaming = true
	strPool := &Pool{}
	if _, err := RunWithPool(cfg, strPool, 0); err != nil {
		t.Fatal(err)
	}
	if seqPool.Size() != strPool.Size() || seqPool.Size() == 0 {
		t.Fatalf("pool sizes differ: %d vs %d", seqPool.Size(), strPool.Size())
	}
	for i := range seqPool.Scores {
		if seqPool.Scores[i] != strPool.Scores[i] || seqPool.Mols[i].ID != strPool.Mols[i].ID {
			t.Fatalf("pool entry %d differs", i)
		}
	}
}
