// streaming.go is the streaming funnel: ML1 screening and S1 docking
// overlap through bounded channels instead of running as barriers. The
// paper's whole premise is keeping six orders of magnitude of per-ligand
// cost concurrently busy; this path is the single-campaign analogue —
// docking workers pull candidates the moment the surrogate's running
// top-K admits them, while the screen is still scoring the rest of the
// library window.
//
// Scheduling changes, science does not: the final S1 selection is
// recomputed exactly (selectDockIdx over the complete predictions), and
// every per-molecule engine is seeded by molecule ID, so the results are
// byte-identical to the sequential path. Speculation is the only waste:
// a candidate that entered the running top-K but was later evicted may
// already have docked; its cost is reported separately as
// FunnelStats.SpeculativeDocks/SpeculativeEvals and kept out of the
// consumed-work ledger. Speculation is gated until streamWarmup of the
// screen has been seen, which bounds the expected waste to
// topK·ln(1/streamWarmup) docks.
package campaign

import (
	"sync"
	"time"

	"impeccable/internal/chem"
	"impeccable/internal/dock"
	"impeccable/internal/hpc"
	"impeccable/internal/surrogate"
	"impeccable/internal/xrand"
)

const (
	// streamChunk is the ML1 scoring granularity: small enough that
	// worker load stays balanced and candidates reach the dock feed
	// early, large enough that the forward pass stays batched. 256 rows
	// amortize the blocked kernels' per-call setup (finite scan, row
	// partitioning) better than the previous 128 while still draining
	// a chunk well under the docking cadence; scores are chunk-size
	// independent (row-independent forward), so science is unaffected.
	streamChunk = 256
	// streamBacklog bounds every pipeline channel (scored chunks,
	// docking candidates, docking results), so a stalled consumer
	// backpressures the producer instead of buffering the library.
	streamBacklog = 64
	// streamWarmup is the fraction of the screen that must be seen
	// before running-top-K entrants are docked speculatively.
	streamWarmup = 0.7
)

// runStreamingWithPool is RunWithPool's streaming dataflow. Stage
// structure:
//
//	s1-train ──► ml1-train ──► ml1-screen ──► selection barrier
//	                 │              │              │ (catch-up)
//	                 ▼              ▼              ▼
//	            [ dock feed: resample set, then top-K entrants ] ──► tail
//
// The dock workers start before ML1 training: the §7.1.1 random
// resample is deterministic given (seed, libOffset), so those docks
// overlap training; running-top-K survivors then overlap the screen.
func runStreamingWithPool(cfg Config, pool *Pool, libOffset uint64) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{Counter: hpc.NewFlopCounter()}
	clk := newFunnelClock()
	r := xrand.New(cfg.Seed + libOffset)
	lib := chem.NewLibrary("OZD", cfg.Seed^0x11B, libOffset, cfg.LibrarySize)

	// --- S1 training docking: the funnel's one hard barrier (labels
	// gate ML1 training), identical to the sequential path. ---
	clk.start("s1-train")
	cfg.progress("s1-train", 0.02)
	eng := newFunnelEngine(&cfg)
	trainIDs := lib.Sample(r, min(cfg.TrainSize, lib.Size()))
	trainMols := materialize(trainIDs)
	trainDocks := eng.DockBatch(trainMols)
	clk.stop("s1-train")
	if cfg.canceled() {
		return nil, ErrCanceled
	}
	trainScores, dockFlops := tallyDocks(res, trainDocks)
	res.Counter.Add("S1", dockFlops, 0, int64(len(trainDocks)))

	ids := libraryIDs(lib)
	resample := resampleIndices(&cfg, len(ids), libOffset)
	nSel := topCount(&cfg, len(ids)) + len(resample)

	// --- Dock feed: workers start now, so the resample set docks while
	// ML1 trains and top-K survivors dock while the screen runs. ---
	clk.start("s1-dock")
	candCh := make(chan *chem.Molecule, streamBacklog)
	resCh := eng.DockStream(candCh, streamBacklog)
	closeCands := sync.OnceFunc(func() { close(candCh) })

	// Collector: owns the result map until the feed closes; reports
	// interleaved s1-dock progress while the screen is still running.
	byID := make(map[uint64]dock.Result)
	collDone := make(chan struct{})
	go func() {
		defer close(collDone)
		n := 0
		for d := range resCh {
			byID[d.MolID] = d
			n++
			frac := float64(n) / float64(max(nSel, 1))
			cfg.progress("s1-dock", 0.45+0.1*min(1.0, frac))
		}
	}()

	sent := make(map[int]bool)
	sendCand := func(i int) {
		if sent[i] {
			return
		}
		sent[i] = true
		select {
		case candCh <- chem.FromID(ids[i]):
		case <-cfg.Cancel: // nil Cancel: case never fires, send proceeds
		}
	}
	abort := func() (*Result, error) {
		closeCands()
		<-collDone
		return nil, ErrCanceled
	}

	// Resample extras depend only on (seed, libOffset) — dock them now,
	// overlapped with ML1 training.
	for _, i := range resample {
		sendCand(i)
	}

	// --- ML1 training (+ accumulated pool), overlapped with the
	// resample docks. ---
	clk.start("ml1-train")
	cfg.progress("ml1-train", 0.15)
	model, err := fitSurrogate(&cfg, res, trainMols, trainScores, pool)
	if err != nil {
		closeCands()
		<-collDone
		return nil, err
	}
	clk.stop("ml1-train")
	if cfg.canceled() {
		return abort()
	}

	// --- ML1 streaming screen, overlapped with speculative docking of
	// running-top-K entrants once the stream has warmed up. ---
	clk.start("ml1-screen")
	cfg.progress("ml1-screen", 0.30)
	preds := make([]float64, len(ids))
	topk := surrogate.NewRunningTopK(topCount(&cfg, len(ids)))
	warmAt := int(streamWarmup * float64(len(ids)))
	seen, warmed := 0, false
	for ck := range model.PredictIDsStream(ids, cfg.Workers, streamChunk, cfg.Features, cfg.Cancel) {
		copy(preds[ck.Start:ck.Start+len(ck.Scores)], ck.Scores)
		for off, s := range ck.Scores {
			i := ck.Start + off
			entered := topk.Offer(i, s)
			if warmed && entered {
				sendCand(i)
			}
		}
		seen += len(ck.Scores)
		if !warmed && seen >= warmAt {
			warmed = true
			for _, i := range topk.Indices() {
				sendCand(i)
			}
		}
		cfg.progress("ml1-screen", 0.30+0.15*float64(seen)/float64(len(ids)))
	}
	if cfg.canceled() {
		return abort()
	}
	res.Funnel.Screened = len(ids)
	res.Counter.Add("ML1", model.InferenceFlops(len(ids)), 0, int64(len(ids)))
	clk.stop("ml1-screen")

	// --- Selection barrier: the exact, path-invariant S1 selection over
	// the complete predictions; catch up on anything speculation missed,
	// then close the feed and drain. ---
	dockIdx := selectDockIdx(&cfg, preds, libOffset)
	for _, i := range dockIdx {
		sendCand(i)
	}
	closeCands()
	<-collDone
	clk.stop("s1-dock")
	if cfg.canceled() {
		return nil, ErrCanceled
	}

	dockMols := make([]*chem.Molecule, len(dockIdx))
	res.DockResults = make([]dock.Result, len(dockIdx))
	used := make(map[uint64]bool, len(dockIdx))
	for k, i := range dockIdx {
		dockMols[k] = chem.FromID(ids[i])
		res.DockResults[k] = byID[ids[i]]
		used[ids[i]] = true
	}
	res.Funnel.Docked = len(res.DockResults) + len(trainDocks)
	_, dockFlops = tallyDocks(res, res.DockResults)
	res.Counter.Add("S1", dockFlops, 0, int64(len(res.DockResults)))
	for id, d := range byID {
		if !used[id] {
			res.Funnel.SpeculativeDocks++
			res.Funnel.SpeculativeEvals += d.Evals
		}
	}

	if err := runTail(&cfg, res, clk, model, ids, trainMols, trainScores, dockMols, pool); err != nil {
		return nil, err
	}
	return res, nil
}

// funnelClock accumulates per-stage wall-clock windows; safe for
// concurrent use (the streaming path stamps stages from several
// goroutines' perspectives).
type funnelClock struct {
	mu   sync.Mutex
	t0   time.Time
	last time.Time
	open map[string]time.Time
	sp   []StageTiming
}

func newFunnelClock() *funnelClock {
	now := time.Now() //impeccable:wallclock stage timings are observability, excluded from science Counts()
	return &funnelClock{t0: now, last: now, open: map[string]time.Time{}}
}

// start opens a stage window.
func (c *funnelClock) start(stage string) {
	c.mu.Lock()
	c.open[stage] = time.Now() //impeccable:wallclock stage timings are observability, excluded from science Counts()
	c.mu.Unlock()
}

// stop closes a stage window opened by start.
func (c *funnelClock) stop(stage string) {
	now := time.Now() //impeccable:wallclock stage timings are observability, excluded from science Counts()
	c.mu.Lock()
	if at, ok := c.open[stage]; ok {
		delete(c.open, stage)
		c.sp = append(c.sp, StageTiming{
			Stage:   stage,
			StartS:  at.Sub(c.t0).Seconds(),
			Seconds: now.Sub(at).Seconds(),
		})
	}
	c.mu.Unlock()
}

// mark records a window from the previous mark (or the clock's birth) to
// now — the boundary-only instrumentation the EnTK path uses, where
// stage starts are not directly hookable.
func (c *funnelClock) mark(stage string) {
	now := time.Now() //impeccable:wallclock stage timings are observability, excluded from science Counts()
	c.mu.Lock()
	c.sp = append(c.sp, StageTiming{
		Stage:   stage,
		StartS:  c.last.Sub(c.t0).Seconds(),
		Seconds: now.Sub(c.last).Seconds(),
	})
	c.last = now
	c.mu.Unlock()
}

// finish stamps the stats with the recorded windows, the total
// wall-clock and the overlap ratio.
func (c *funnelClock) finish(f *FunnelStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f.Timings = append([]StageTiming(nil), c.sp...)
	f.WallSeconds = time.Since(c.t0).Seconds() //impeccable:wallclock wall-clock total is the quantity being reported
	var sum float64
	for _, s := range c.sp {
		sum += s.Seconds
	}
	if f.WallSeconds > 0 {
		f.OverlapRatio = sum / f.WallSeconds
	}
}

// StageSeconds sums the wall-clock of the named stages (a convenience
// for benchmarks comparing schedules).
func (f FunnelStats) StageSeconds(stages ...string) float64 {
	var sum float64
	for _, t := range f.Timings {
		for _, s := range stages {
			if t.Stage == s {
				sum += t.Seconds
			}
		}
	}
	return sum
}

// StageWindow returns the earliest start and latest end over the named
// stages (offsets from campaign start); ok is false when none recorded.
func (f FunnelStats) StageWindow(stages ...string) (start, end float64, ok bool) {
	for _, t := range f.Timings {
		for _, s := range stages {
			if t.Stage != s {
				continue
			}
			if !ok || t.StartS < start {
				start = t.StartS
			}
			if e := t.StartS + t.Seconds; !ok || e > end {
				end = e
			}
			ok = true
		}
	}
	return start, end, ok
}
