package campaign

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"impeccable/internal/chem"
	"impeccable/internal/deepdrive"
	"impeccable/internal/dock"
	"impeccable/internal/entk"
	"impeccable/internal/esmacs"
	"impeccable/internal/geom"
	"impeccable/internal/hpc"
	"impeccable/internal/pilot"
	"impeccable/internal/surrogate"
	"impeccable/internal/xrand"
)

// RunViaEnTK executes the same funnel as Run, but codified exactly as the
// paper deploys it (§6.1): an EnTK pipeline whose stages hold the
// concurrent tasks of each phase — docking chunks, one ESMACS ensemble
// per compound, the S2 learner, the FG refinements — scheduled by a real
// pilot over the local host's cores, with the adaptive S2→FG hand-off
// expressed as a PostExec hook that appends the FG stage from S2's
// selections at runtime.
//
// The scientific results are produced by the same engines as Run; what
// this path exercises is the production programming model: PST
// composition, pilot bin-packing, task concurrency limits and the
// runtime adaptivity the paper's §5.2.1 lists as an EnTK requirement.
func RunViaEnTK(cfg Config) (*Result, error) {
	if cfg.Target == nil {
		return nil, fmt.Errorf("campaign: nil target")
	}
	if cfg.LibrarySize < 10 || cfg.TrainSize < 10 {
		return nil, fmt.Errorf("campaign: library/train sizes too small (%d/%d)",
			cfg.LibrarySize, cfg.TrainSize)
	}
	cores := cfg.Workers
	if cores <= 0 {
		cores = runtime.GOMAXPROCS(0)
	}
	// One "node" with the host's cores; every task declares cores so the
	// pilot bounds real concurrency.
	platform := hpc.Platform{Name: "localhost", Nodes: 1,
		Spec: hpc.NodeSpec{Cores: cores}}
	clock := hpc.NewRealClock()
	pl := pilot.NewPilot(platform, clock, &pilot.RealExecutor{})
	am := entk.NewAppManager(pl)

	res := &Result{Counter: hpc.NewFlopCounter()}
	pl.Counter = res.Counter
	clk := newFunnelClock()
	r := xrand.New(cfg.Seed)
	lib := chem.NewLibrary("OZD", cfg.Seed^0x11B, 0, cfg.LibrarySize)

	eng := dock.NewEngine(cfg.Target, cfg.Seed^0xD0C)
	if cfg.DockParams != nil {
		eng.Params = *cfg.DockParams
	} else {
		eng.Params.Runs = 2
	}
	eng.Workers = 1 // the pilot provides the parallelism
	eng.Cache = cfg.DockCache

	var mu sync.Mutex // guards the shared state below across task Fns
	trainIDs := lib.Sample(r, min(cfg.TrainSize, lib.Size()))
	trainMols := materialize(trainIDs)
	trainScores := make([]float64, len(trainMols))

	model := surrogate.NewModel(cfg.Seed ^ 0x111)
	var dockMols []*chem.Molecule
	var cgMols []*chem.Molecule
	var cgPoses [][]geom.Vec3

	runner := esmacs.NewRunner(cfg.Target, cfg.Seed^0xE5)
	runner.Workers = 1
	runner.KeepTrajectories = true
	cgProto := esmacs.CG()
	fgProto := esmacs.FG()
	if cfg.FastProtocols {
		cgProto = fastProto(cgProto, 40, 200)
		fgProto = fastProto(fgProto, 80, 500)
	}

	// ESMACS ensembles prefer 2 cores but must stay placeable on small
	// hosts — an over-declared task is unsatisfiable and fails fatally.
	esCores := min(2, cores)

	pipe := entk.NewPipeline("impeccable")

	// --- Stage 1: offline docking of the training sample, chunked. ---
	s1train := entk.NewStage("S1-train")
	s1train.PostExec = func(p *entk.Pipeline) { clk.mark("s1-train") }
	const chunk = 32
	for at := 0; at < len(trainMols); at += chunk {
		end := at + chunk
		if end > len(trainMols) {
			end = len(trainMols)
		}
		at, end := at, end
		s1train.AddTask(&entk.Task{
			Name: fmt.Sprintf("dock-train-%d", at), Cores: 1, Component: "S1",
			Fn: func() {
				for i := at; i < end; i++ {
					if cfg.canceled() {
						return
					}
					d := eng.DockOne(trainMols[i])
					mu.Lock()
					trainScores[i] = d.Score
					res.Funnel.DockEvals += d.Evals
					if d.Cached {
						res.Funnel.DockCacheHits++
					}
					mu.Unlock()
				}
			},
		})
	}

	// --- Stage 2: ML1 training + library screening + selection. ---
	var fitErr error
	ml1 := entk.NewStage("ML1")
	ml1.AddTask(&entk.Task{
		Name: "train+screen", Cores: cores, Component: "ML1",
		Fn: func() {
			cfg.progress("ml1-train", 0.15)
			if cfg.canceled() {
				return
			}
			rep, err := model.Fit(trainMols, trainScores, surrogate.DefaultTrainConfig())
			if err != nil {
				mu.Lock()
				fitErr = err
				mu.Unlock()
				return
			}
			mu.Lock()
			res.TrainReport = rep
			res.Model = model
			mu.Unlock()
			clk.mark("ml1-train") // train/screen boundary inside the one ML1 task
			ids := libraryIDs(lib)
			preds := model.PredictIDsFrom(ids, cores, cfg.Features)
			idx := selectDockIdx(&cfg, preds, 0)
			mu.Lock()
			res.Funnel.Screened = len(ids)
			for _, i := range idx {
				dockMols = append(dockMols, chem.FromID(ids[i]))
			}
			mu.Unlock()
		},
	})

	// --- Stage 3: production docking. Tasks are added by the ML1
	// stage's PostExec (the selection is only known at runtime). ---
	ml1.PostExec = func(p *entk.Pipeline) {
		clk.mark("ml1-screen")
		if cfg.canceled() {
			return // stop appending stages; Wait drains what's in flight
		}
		cfg.progress("s1-dock", 0.45)
		s1 := entk.NewStage("S1")
		mu.Lock()
		mols := dockMols
		mu.Unlock()
		results := make([]dock.Result, len(mols))
		for at := 0; at < len(mols); at += chunk {
			end := at + chunk
			if end > len(mols) {
				end = len(mols)
			}
			at, end := at, end
			s1.AddTask(&entk.Task{
				Name: fmt.Sprintf("dock-%d", at), Cores: 1, Component: "S1",
				Fn: func() {
					for i := at; i < end; i++ {
						if cfg.canceled() {
							return
						}
						results[i] = eng.DockOne(mols[i])
					}
				},
			})
		}
		// After docking: diversity selection feeds the CG stage.
		s1.PostExec = func(p *entk.Pipeline) {
			clk.mark("s1-dock")
			if cfg.canceled() {
				return
			}
			cfg.progress("s3-cg", 0.60)
			mu.Lock()
			res.DockResults = results
			res.Funnel.Docked = len(results) + len(trainMols)
			for _, d := range results {
				res.Funnel.DockEvals += d.Evals
				if d.Cached {
					res.Funnel.DockCacheHits++
				}
			}
			best := surrogate.BottomK(scoresOf(results), min(cfg.CGCount*3, len(results)))
			cands := make([]*chem.Molecule, len(best))
			for i, j := range best {
				cands[i] = mols[best[i]]
				_ = j
			}
			for _, j := range chem.MaxMinDiverse(cands, min(cfg.CGCount, len(cands)), 0) {
				cgMols = append(cgMols, cands[j])
				cgPoses = append(cgPoses, dockedPose(cfg.Target, cands[j], results[best[j]]))
			}
			localCG := cgMols
			localPoses := cgPoses
			mu.Unlock()

			cg := entk.NewStage("S3-CG")
			ests := make([]esmacs.Estimate, len(localCG))
			for i := range localCG {
				i := i
				cg.AddTask(&entk.Task{
					Name: fmt.Sprintf("esmacs-cg-%d", i), Cores: esCores, Component: "S3-CG",
					Fn: func() {
						ests[i] = runner.Estimate(localCG[i], localPoses[i], cgProto)
					},
				})
			}
			cg.PostExec = func(p *entk.Pipeline) {
				clk.mark("s3-cg")
				if cfg.canceled() {
					return
				}
				cfg.progress("s2", 0.80)
				mu.Lock()
				res.CGEstimates = ests
				sort.Slice(res.CGEstimates, func(a, b int) bool {
					return res.CGEstimates[a].DeltaG < res.CGEstimates[b].DeltaG
				})
				res.Funnel.CG = len(res.CGEstimates)
				topEsts := res.CGEstimates[:min(cfg.TopCompounds, len(res.CGEstimates))]
				mu.Unlock()

				s2 := entk.NewStage("S2")
				s2.AddTask(&entk.Task{
					Name: "deepdrivemd", Cores: cores, Component: "S2",
					Fn: func() {
						driver := deepdrive.NewDriver(cfg.Target)
						driver.Cfg.Seed = cfg.Seed ^ 0x52
						driver.Cfg.OutliersPerLigand = cfg.OutliersPer
						if cfg.FastProtocols {
							driver.Cfg.Epochs = 4
							driver.Cfg.MaxFrames = 240
						}
						rep, err := driver.Run(topEsts)
						mu.Lock()
						if err != nil {
							fitErr = err
						} else {
							res.S2Report = rep
							res.Funnel.S2Frames = rep.Frames
						}
						mu.Unlock()
					},
				})
				// Adaptive hand-off: the FG stage is appended only after
				// S2 produced its selections (§5.2.1 adaptivity).
				s2.PostExec = func(p *entk.Pipeline) {
					clk.mark("s2")
					if cfg.canceled() {
						return
					}
					cfg.progress("s3-fg", 0.90)
					mu.Lock()
					rep := res.S2Report
					mu.Unlock()
					if rep == nil {
						return
					}
					fg := entk.NewStage("S3-FG")
					fgEsts := make([]esmacs.Estimate, len(rep.Selections))
					for i, sel := range rep.Selections {
						i, sel := i, sel
						fg.AddTask(&entk.Task{
							Name: fmt.Sprintf("esmacs-fg-%d", i), Cores: esCores, Component: "S3-FG",
							Fn: func() {
								fgEsts[i] = runner.Estimate(
									chem.FromID(sel.Ref.MolID), sel.Ligand, fgProto)
							},
						})
					}
					fg.PostExec = func(p *entk.Pipeline) {
						clk.mark("s3-fg")
						mu.Lock()
						defer mu.Unlock()
						res.FGEstimates = fgEsts
						res.Funnel.FG = len(fgEsts)
						bestFG := map[uint64]esmacs.Estimate{}
						for _, est := range fgEsts {
							if prev, ok := bestFG[est.MolID]; !ok || est.DeltaG < prev.DeltaG {
								bestFG[est.MolID] = est
							}
						}
						for _, est := range topEsts {
							fge, ok := bestFG[est.MolID]
							if !ok {
								continue
							}
							res.Top = append(res.Top, TopComparison{
								MolID: est.MolID,
								CG:    est.DeltaG, CGErr: est.StdErr,
								FG: fge.DeltaG, FGErr: fge.StdErr,
								Truth: cfg.Target.TrueAffinity(chem.FromID(est.MolID)),
							})
						}
					}
					p.AddStage(fg)
				}
				p.AddStage(s2)
			}
			p.AddStage(cg)
		}
		p.AddStage(s1)
	}

	pipe.AddStage(s1train).AddStage(ml1)
	cfg.progress("s1-train", 0.02)
	am.Run(pipe)
	am.Wait()

	if cfg.canceled() {
		return nil, ErrCanceled
	}
	if fitErr != nil {
		return nil, fmt.Errorf("campaign: entk run: %w", fitErr)
	}
	// A task the pilot rejected as unsatisfiable "completed" without
	// running its Fn; surfacing it here keeps its zero-valued output
	// from masquerading as science.
	if failed := pl.FailedTasks(); len(failed) > 0 {
		return nil, fmt.Errorf("campaign: entk run: %d tasks failed (first: %s: %v)",
			len(failed), failed[0].Name, failed[0].Err)
	}
	res.ScientificYield = yield(cfg.Target, libraryIDs(lib), cgMols)
	res.PilotTrace = pl.UtilizationTrace()
	clk.finish(&res.Funnel)
	cfg.progress("done", 1.0)
	return res, nil
}
