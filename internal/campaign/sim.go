package campaign

import (
	"math"

	"impeccable/internal/entk"
	"impeccable/internal/hpc"
	"impeccable/internal/pilot"
	"impeccable/internal/raptor"
	"impeccable/internal/xrand"
)

// MethodCost is one row of the paper's Table 2: normalized computational
// cost of a method on Summit.
type MethodCost struct {
	Method        string
	NodesPerLig   float64
	HoursPerLig   float64
	NodeHrsPerLig float64
}

// Table2 returns the paper's published cost ladder. The simulated
// campaign's task durations are calibrated to these numbers; the real
// (laptop) campaign measures its own ladder for comparison in
// EXPERIMENTS.md.
func Table2() []MethodCost {
	return []MethodCost{
		{"Docking (S1)", 1.0 / 6, 0.0001 * 6, 0.0001},
		{"BFE-CG (S3-CG)", 1, 0.5, 0.5},
		{"Ad. Sampling (S2)", 2, 2, 4},
		{"BFE-FG (S3-FG)", 4, 1.25, 5},
		{"BFE-TI (not integrated)", 64, 10, 640},
	}
}

// SimConfig sizes a Summit-scale simulated run of the integrated
// (S3-CG)-(S2)-(S3-FG) workload (Fig. 7).
type SimConfig struct {
	Nodes         int // pilot allocation
	Pipelines     int // concurrent EnTK pipelines
	CGPerPipeline int // CG ensemble tasks per pipeline (6-replica groups)
	FGPerPipeline int // FG tasks per pipeline
	QueueWait     float64
	Seed          uint64
	// DurationJitter is the lognormal sigma applied to task durations
	// (§5.2: per-LPC convergence rates vary).
	DurationJitter float64
}

// DefaultSimConfig returns a medium Summit slice.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Nodes:          64,
		Pipelines:      8,
		CGPerPipeline:  12,
		FGPerPipeline:  4,
		QueueWait:      0,
		Seed:           1,
		DurationJitter: 0.15,
	}
}

// SimResult is the outcome of a simulated campaign slice.
type SimResult struct {
	Trace     []pilot.UtilSample
	Makespan  float64 // seconds of simulated time
	Tasks     int
	NodeHours float64 // busy node-hours consumed
	// MeanSchedulingDelay is the average seconds tasks waited while
	// resources were available at submit time — the runtime overhead
	// that Fig. 7 shows is invariant to scale.
	MeanSchedulingDelay float64
	Utilization         float64 // time-weighted busy-node fraction
}

// RunSim executes the integrated (S3-CG)-(S2)-(S3-FG) workload of Fig. 7
// in simulated time: each pipeline runs a CG stage (1-node ensemble tasks,
// 0.5 h each), an S2 stage (2-node, 2 h), and an FG stage (4-node, 1.25 h
// each), all concurrently on one pilot.
func RunSim(cfg SimConfig) SimResult {
	clk := hpc.NewSimClock()
	pl := pilot.NewPilot(hpc.Summit().WithNodes(cfg.Nodes), clk, &pilot.SimExecutor{Clock: clk})
	am := entk.NewAppManager(pl)
	r := xrand.New(cfg.Seed)

	jitter := func(base float64) float64 {
		if cfg.DurationJitter <= 0 {
			return base
		}
		return base * lognorm(r, cfg.DurationJitter)
	}

	pipes := make([]*entk.Pipeline, cfg.Pipelines)
	for pi := range pipes {
		p := entk.NewPipeline("lpc-batch")
		cg := entk.NewStage("S3-CG")
		for i := 0; i < cfg.CGPerPipeline; i++ {
			cg.AddTask(&entk.Task{
				Name: "esmacs-cg", Cores: 42, GPUs: 6, Nodes: 1,
				Duration: jitter(0.5 * 3600), Component: "S3-CG",
			})
		}
		s2 := entk.NewStage("S2")
		s2.AddTask(&entk.Task{
			Name: "deepdrivemd", Cores: 42, GPUs: 6, Nodes: 2,
			Duration: jitter(2 * 3600), Component: "S2",
		})
		fg := entk.NewStage("S3-FG")
		for i := 0; i < cfg.FGPerPipeline; i++ {
			fg.AddTask(&entk.Task{
				Name: "esmacs-fg", Cores: 42, GPUs: 6, Nodes: 4,
				Duration: jitter(1.25 * 3600), Component: "S3-FG",
			})
		}
		p.AddStage(cg).AddStage(s2).AddStage(fg)
		pipes[pi] = p
	}
	am.Run(pipes...)
	end := clk.Run()

	res := SimResult{
		Trace:    pl.UtilizationTrace(),
		Makespan: end,
	}
	var delaySum float64
	for _, t := range pl.Executed() {
		res.Tasks++
		res.NodeHours += float64(len(placementNodes(t))) * (t.EndTime - t.StartTime) / 3600
		delaySum += t.StartTime - t.SubmitTime
	}
	if res.Tasks > 0 {
		res.MeanSchedulingDelay = delaySum / float64(res.Tasks)
	}
	res.Utilization = timeWeightedUtilization(res.Trace, cfg.Nodes, end)
	return res
}

// placementNodes infers the node count of a completed task from its
// request (placement itself is released on completion).
func placementNodes(t *pilot.Task) []int {
	n := t.Nodes
	if n <= 0 {
		n = 1
	}
	return make([]int, n)
}

// timeWeightedUtilization integrates busy-node fraction over the trace.
func timeWeightedUtilization(trace []pilot.UtilSample, nodes int, end float64) float64 {
	if len(trace) == 0 || end <= 0 || nodes <= 0 {
		return 0
	}
	var area float64
	for i := 0; i < len(trace); i++ {
		t0 := trace[i].Time
		t1 := end
		if i+1 < len(trace) {
			t1 = trace[i+1].Time
		}
		area += float64(trace[i].BusyNodes) * (t1 - t0)
	}
	return area / (float64(nodes) * end)
}

func lognorm(r *xrand.RNG, sigma float64) float64 {
	return math.Exp(r.Norm(0, sigma))
}

// SimMultiPilotDocking reproduces §6.1.2 mechanism (iii): "multiple
// concurrent pilots are used to isolate the docking computation of
// individual compounds within each pilot allocation". nPilots independent
// RAPTOR overlays run concurrently on one simulated clock, each with its
// own allocation and workload partition; per-pilot throughput is
// returned. Isolation means a pathological compound batch (poisonPilot ≥
// 0 gets a 50× heavy-tailed workload) degrades only its own pilot.
func SimMultiPilotDocking(nPilots, nodesPerPilot, docksPerPilot int, poisonPilot int, seed uint64) []DockingScaleResult {
	clk := hpc.NewSimClock()
	overlays := make([]*raptor.Overlay, nPilots)
	workloads := make([][]float64, nPilots)
	for p := 0; p < nPilots; p++ {
		cfg := raptor.DefaultConfig(nodesPerPilot)
		overlays[p] = raptor.New(clk, cfg)
		r := xrand.NewFrom(seed, uint64(p))
		durs := make([]float64, docksPerPilot)
		for i := range durs {
			durs[i] = 2.16 * lognorm(r, 0.5)
			if p == poisonPilot && r.Bool(0.05) {
				durs[i] *= 50 // pathological receptor/compound pairs
			}
		}
		workloads[p] = durs
	}
	// Pilots hold disjoint allocations, so virtual-time interleaving
	// cannot change their individual throughput; running each overlay's
	// event cascade to completion on the shared clock yields the same
	// per-pilot numbers as a fully interleaved schedule.
	results := make([]DockingScaleResult, nPilots)
	stats := make([]raptor.Stats, nPilots)
	for p := 0; p < nPilots; p++ {
		stats[p] = overlays[p].RunSim(workloads[p], clk)
	}
	for p := 0; p < nPilots; p++ {
		cfg := raptor.DefaultConfig(nodesPerPilot)
		results[p] = DockingScaleResult{
			Nodes:        nodesPerPilot,
			Workers:      cfg.Workers,
			Throughput:   stats[p].Throughput,
			DocksPerHour: stats[p].Throughput * 3600,
			Utilization:  stats[p].Utilization(cfg.SlotsPerWorker),
		}
	}
	return results
}

// DockingScaleResult is one point of the §8 scaling reproduction
// ("sustained 40 M docking hits per hour on ~4000 nodes").
type DockingScaleResult struct {
	Nodes        int
	Workers      int
	Throughput   float64 // docks per second
	DocksPerHour float64
	Utilization  float64
}

// SimDockingAtScale runs the RAPTOR overlay at the given node count with
// Table 2-calibrated per-dock durations (1e-4 node-hours per ligand at
// 1/6 node per dock = 2.16 s per GPU-dock) and returns throughput.
func SimDockingAtScale(nodes int, docks int, seed uint64) DockingScaleResult {
	clk := hpc.NewSimClock()
	cfg := raptor.DefaultConfig(nodes) // one worker per node, 6 GPU slots
	o := raptor.New(clk, cfg)
	r := xrand.New(seed)
	// 1e-4 node-h/ligand × 3600 s/h × 6 GPOs/node = 2.16 s per dock on
	// one GPU; long-tailed across receptors/compounds (§6.1.2).
	durs := make([]float64, docks)
	for i := range durs {
		durs[i] = 2.16 * lognorm(r, 0.5)
	}
	st := o.RunSim(durs, clk)
	return DockingScaleResult{
		Nodes:        nodes,
		Workers:      cfg.Workers,
		Throughput:   st.Throughput,
		DocksPerHour: st.Throughput * 3600,
		Utilization:  st.Utilization(cfg.SlotsPerWorker),
	}
}
