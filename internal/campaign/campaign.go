// Package campaign integrates the stages into the IMPECCABLE funnel of
// Fig. 1: ML1 surrogate filtering → S1 docking → S3-CG ensemble free
// energies → S2 latent-space outlier selection → S3-FG refined free
// energies, with feedback (docking results retrain the surrogate, S2
// outliers seed FG). At each stage only the most promising candidates
// advance, yielding the N-deep pipeline whose methods span six orders of
// magnitude in per-ligand cost (Table 2).
//
// Because the substrate has a ground-truth oracle, the campaign can also
// report *scientific performance* — the paper's second metric, effective
// ligands sampled per unit time — exactly, as the recovery of true
// top-binders by each stage.
package campaign

import (
	"errors"
	"fmt"
	"sort"

	"impeccable/internal/chem"
	"impeccable/internal/deepdrive"
	"impeccable/internal/dock"
	"impeccable/internal/esmacs"
	"impeccable/internal/geom"
	"impeccable/internal/hpc"
	"impeccable/internal/pilot"
	"impeccable/internal/receptor"
	"impeccable/internal/surrogate"
	"impeccable/internal/xrand"
)

// Config sizes one campaign iteration. The ratios mirror §7.1: surrogate
// screens the library and passes ~1 % to docking (plus a 15-20 % random
// resample of lower ranks to avoid blind spots), docking winners are
// diversity-reduced for CG-ESMACS, S2 selects outlier conformations of
// the top compounds, FG-ESMACS refines those.
type Config struct {
	Target *receptor.Target

	LibrarySize   int     // compounds screened by ML1
	TrainSize     int     // compounds docked offline to train ML1
	TopFrac       float64 // fraction of library passed to S1 (0.01)
	ResampleFrac  float64 // extra lower-ranked fraction resampled (0.15)
	CGCount       int     // compounds advanced to S3-CG
	TopCompounds  int     // compounds advanced from CG to S2/FG (5)
	OutliersPer   int     // conformations per compound for FG (5)
	Seed          uint64
	Workers       int
	FastProtocols bool // shrink MD durations (tests / laptop examples)

	// Streaming routes Run/RunWithPool through the streaming dataflow:
	// ML1 screening and S1 docking overlap through bounded channels (the
	// deterministic resample set docks during ML1 training, and running
	// top-K survivors dock while the screen is still scoring the
	// library). The scientific output is byte-identical to the
	// sequential path — only the schedule changes. See RunStreaming.
	Streaming bool

	// DockParams defaults to dock.DefaultParams with Runs reduced to 2
	// for throughput.
	DockParams *dock.Params

	// DockCache, when non-nil, memoizes S1 docking results by molecule
	// structure so overlapping campaigns against the same target skip
	// repeated LGA runs (the service layer injects a sharded shared
	// cache here).
	DockCache dock.ScoreCache

	// Features, when non-nil, supplies memoized feature vectors for the
	// ML1 library screen instead of materializing each molecule.
	Features surrogate.FeatureSource

	// Cancel, when non-nil, aborts the campaign between stages (and
	// between ligands inside the docking batches) once closed; Run then
	// returns ErrCanceled.
	Cancel <-chan struct{}

	// Progress, when non-nil, is called at stage boundaries with the
	// stage name and the approximate completed fraction of the campaign.
	// The streaming path additionally reports interleaved mid-stage
	// updates ("ml1-screen" and "s1-dock" alternate while they overlap),
	// and may call it from multiple pipeline goroutines — implementations
	// must be safe for concurrent use.
	Progress func(stage string, frac float64)
}

// ErrCanceled is returned by Run/RunWithPool when Config.Cancel closes
// before the campaign completes.
var ErrCanceled = errors.New("campaign: canceled")

// canceled reports whether the config's cancel channel has closed.
func (cfg *Config) canceled() bool {
	if cfg.Cancel == nil {
		return false
	}
	select {
	case <-cfg.Cancel:
		return true
	default:
		return false
	}
}

// progress reports a stage boundary to the optional observer.
func (cfg *Config) progress(stage string, frac float64) {
	if cfg.Progress != nil {
		cfg.Progress(stage, frac)
	}
}

// DefaultConfig returns a laptop-scale configuration preserving the
// paper's stage ratios.
func DefaultConfig(t *receptor.Target) Config {
	return Config{
		Target:       t,
		LibrarySize:  4000,
		TrainSize:    600,
		TopFrac:      0.01,
		ResampleFrac: 0.15,
		CGCount:      12,
		TopCompounds: 5,
		OutliersPer:  5,
		Seed:         1,
	}
}

// FunnelStats counts compounds at each stage.
type FunnelStats struct {
	Screened int // ML1 inference count
	Docked   int // S1 count (training + selected)
	CG       int // S3-CG count
	S2Frames int // frames aggregated by S2
	FG       int // S3-FG conformations

	// DockEvals is the total energy evaluations actually spent in S1
	// (training + selected docks). Cache hits contribute zero, so a
	// campaign warmed by a shared score cache shows a lower count than
	// the cold campaign that populated it.
	DockEvals int64
	// DockCacheHits counts S1 docks served from the injected score
	// cache without spending any evaluations.
	DockCacheHits int

	// SpeculativeDocks/SpeculativeEvals count docking work the streaming
	// path spent on running-top-K candidates that a later chunk evicted
	// before the final selection — the price of overlapping S1 with the
	// ML1 screen. Excluded from DockEvals so the consumed-work ledger
	// stays path-invariant; always zero on the sequential paths.
	SpeculativeDocks int
	SpeculativeEvals int64

	// Timings records each stage's wall-clock window as offsets from the
	// campaign start. Sequential paths produce back-to-back windows; the
	// streaming path's s1-dock window overlaps ml1-train and ml1-screen.
	Timings []StageTiming
	// WallSeconds is the campaign's total wall-clock time.
	WallSeconds float64
	// OverlapRatio is the sum of per-stage wall-clock over WallSeconds:
	// ≈1 when stages run back-to-back, >1 when stages overlap.
	OverlapRatio float64
}

// StageTiming is one funnel stage's wall-clock window, in seconds
// relative to the campaign start.
type StageTiming struct {
	Stage   string  `json:"stage"`
	StartS  float64 `json:"start_s"`
	Seconds float64 `json:"seconds"`
}

// FunnelCounts is the deterministic projection of FunnelStats: the
// fields that depend only on (seed, config), never on scheduling. For a
// fixed config these are byte-identical across Run, RunViaEnTK and the
// streaming path — the golden-funnel regression contract.
type FunnelCounts struct {
	Screened      int
	Docked        int
	CG            int
	S2Frames      int
	FG            int
	DockEvals     int64
	DockCacheHits int
}

// Counts extracts the path-invariant projection.
func (f FunnelStats) Counts() FunnelCounts {
	return FunnelCounts{
		Screened:      f.Screened,
		Docked:        f.Docked,
		CG:            f.CG,
		S2Frames:      f.S2Frames,
		FG:            f.FG,
		DockEvals:     f.DockEvals,
		DockCacheHits: f.DockCacheHits,
	}
}

// TopComparison pairs the CG and FG estimates of one top compound
// (the Fig. 6 data).
type TopComparison struct {
	MolID  uint64
	CG, FG float64 // ΔG estimates (kcal/mol)
	CGErr  float64
	FGErr  float64
	Truth  float64 // ground-truth affinity (oracle; reproduction-only)
}

// Result is everything one campaign iteration produced.
type Result struct {
	TrainReport surrogate.Report
	Model       *surrogate.Model
	RES         *surrogate.RES

	DockResults []dock.Result
	CGEstimates []esmacs.Estimate
	S2Report    *deepdrive.Report
	FGEstimates []esmacs.Estimate
	Top         []TopComparison

	Funnel  FunnelStats
	Counter *hpc.FlopCounter
	// PilotTrace is the pilot utilization trace when the campaign ran
	// through the EnTK/pilot path (RunViaEnTK); nil otherwise.
	PilotTrace []pilot.UtilSample

	// ScientificYield is the fraction of the library's true top-1 %
	// binders present among the compounds that reached S3-CG — the
	// oracle-measured enrichment of the funnel.
	ScientificYield float64
}

// Pool accumulates docking-labelled molecules across campaign iterations
// — the training memory of the active-learning loop (§5.1: "Each
// successive iteration of IMPECCABLE thus provides successive yields of
// LPCs that could be modeled as an active learning pipeline").
type Pool struct {
	Mols   []*chem.Molecule
	Scores []float64
}

// Add appends labelled compounds to the pool.
func (p *Pool) Add(mols []*chem.Molecule, scores []float64) {
	p.Mols = append(p.Mols, mols...)
	p.Scores = append(p.Scores, scores...)
}

// Size returns the number of labelled compounds.
func (p *Pool) Size() int { return len(p.Mols) }

// Run executes one campaign iteration.
func Run(cfg Config) (*Result, error) { return RunWithPool(cfg, nil, 0) }

// RunStreaming executes one campaign iteration through the streaming
// dataflow (equivalent to setting Config.Streaming and calling Run).
func RunStreaming(cfg Config) (*Result, error) {
	cfg.Streaming = true
	return RunWithPool(cfg, nil, 0)
}

// RunWithPool executes one campaign iteration whose surrogate trains on
// the accumulated pool in addition to this iteration's offline docking
// sample, screening the library window starting at libOffset. Docked
// compounds and their scores are appended to the pool (when non-nil) for
// the next iteration.
func RunWithPool(cfg Config, pool *Pool, libOffset uint64) (*Result, error) {
	if cfg.Streaming {
		return runStreamingWithPool(cfg, pool, libOffset)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{Counter: hpc.NewFlopCounter()}
	clk := newFunnelClock()
	r := xrand.New(cfg.Seed + libOffset)
	lib := chem.NewLibrary("OZD", cfg.Seed^0x11B, libOffset, cfg.LibrarySize)

	// --- Offline docking of a training sample (pre-training data for
	// ML1, §6.1.1: "pre-trained on 500,000 randomly selected samples
	// from the OZD ligand dataset"). ---
	clk.start("s1-train")
	cfg.progress("s1-train", 0.02)
	eng := newFunnelEngine(&cfg)
	trainIDs := lib.Sample(r, min(cfg.TrainSize, lib.Size()))
	trainMols := materialize(trainIDs)
	trainDocks := eng.DockBatch(trainMols)
	clk.stop("s1-train")
	if cfg.canceled() {
		return nil, ErrCanceled
	}
	trainScores, dockFlops := tallyDocks(res, trainDocks)
	res.Counter.Add("S1", dockFlops, 0, int64(len(trainDocks)))

	// --- ML1 training: this iteration's sample plus the accumulated
	// active-learning pool. ---
	clk.start("ml1-train")
	cfg.progress("ml1-train", 0.15)
	model, err := fitSurrogate(&cfg, res, trainMols, trainScores, pool)
	if err != nil {
		return nil, err
	}
	clk.stop("ml1-train")

	// --- ML1 inference over the library. ---
	clk.start("ml1-screen")
	cfg.progress("ml1-screen", 0.30)
	if cfg.canceled() {
		return nil, ErrCanceled
	}
	ids := libraryIDs(lib)
	preds := model.PredictIDsFrom(ids, cfg.Workers, cfg.Features)
	res.Funnel.Screened = len(ids)
	res.Counter.Add("ML1", model.InferenceFlops(len(ids)), 0, int64(len(ids)))
	clk.stop("ml1-screen")

	// --- Selection for S1, then the production docking batch. ---
	dockIdx := selectDockIdx(&cfg, preds, libOffset)
	dockMols := make([]*chem.Molecule, len(dockIdx))
	for i, j := range dockIdx {
		dockMols[i] = chem.FromID(ids[j])
	}
	clk.start("s1-dock")
	cfg.progress("s1-dock", 0.45)
	res.DockResults = eng.DockBatch(dockMols)
	clk.stop("s1-dock")
	if cfg.canceled() {
		return nil, ErrCanceled
	}
	res.Funnel.Docked = len(res.DockResults) + len(trainDocks)
	_, dockFlops = tallyDocks(res, res.DockResults)
	res.Counter.Add("S1", dockFlops, 0, int64(len(res.DockResults)))

	if err := runTail(&cfg, res, clk, model, ids, trainMols, trainScores, dockMols, pool); err != nil {
		return nil, err
	}
	return res, nil
}

// validate rejects configurations no path can run.
func (cfg *Config) validate() error {
	if cfg.Target == nil {
		return fmt.Errorf("campaign: nil target")
	}
	if cfg.LibrarySize < 10 || cfg.TrainSize < 10 {
		return fmt.Errorf("campaign: library/train sizes too small (%d/%d)",
			cfg.LibrarySize, cfg.TrainSize)
	}
	return nil
}

// newFunnelEngine builds the S1 docking engine wired to the config's
// cache and cancellation, with the throughput default of Runs=2.
func newFunnelEngine(cfg *Config) *dock.Engine {
	eng := dock.NewEngine(cfg.Target, cfg.Seed^0xD0C)
	if cfg.DockParams != nil {
		eng.Params = *cfg.DockParams
	} else {
		eng.Params.Runs = 2
	}
	eng.Workers = cfg.Workers
	eng.Cache = cfg.DockCache
	eng.Cancel = cfg.Cancel
	return eng
}

// fitSurrogate trains ML1 on this iteration's docking sample plus the
// accumulated active-learning pool, recording the report on res.
func fitSurrogate(cfg *Config, res *Result, trainMols []*chem.Molecule, trainScores []float64, pool *Pool) (*surrogate.Model, error) {
	fitMols, fitScores := trainMols, trainScores
	if pool != nil && pool.Size() > 0 {
		fitMols = append(append([]*chem.Molecule{}, pool.Mols...), trainMols...)
		fitScores = append(append([]float64{}, pool.Scores...), trainScores...)
	}
	model := surrogate.NewModel(cfg.Seed ^ 0x111)
	rep, err := model.Fit(fitMols, fitScores, surrogate.DefaultTrainConfig())
	if err != nil {
		return nil, fmt.Errorf("campaign: surrogate training: %w", err)
	}
	res.TrainReport = rep
	res.Model = model
	res.Counter.Add("ML1-train", rep.Flops, 0, int64(rep.Samples))
	return model, nil
}

// libraryIDs materializes the screen window's molecule IDs.
func libraryIDs(lib *chem.Library) []uint64 {
	ids := make([]uint64, lib.Size())
	for i := range ids {
		ids[i] = lib.IDAt(i)
	}
	return ids
}

// tallyDocks folds a slice of docking results into the funnel's
// consumed-work ledger, returning the scores and the flop total.
func tallyDocks(res *Result, docks []dock.Result) (scores []float64, flops int64) {
	scores = make([]float64, len(docks))
	for i, d := range docks {
		scores[i] = d.Score
		flops += d.Flops
		res.Funnel.DockEvals += d.Evals
		if d.Cached {
			res.Funnel.DockCacheHits++
		}
	}
	return scores, flops
}

// topCount is the size of the predicted-top selection for an n-compound
// screen.
func topCount(cfg *Config, n int) int {
	return max(1, int(cfg.TopFrac*float64(n)))
}

// resampleIndices returns the random lower-rank resample draw of §7.1.1
// ("we also select about 15–20 % of compounds from the RES to the
// subsequent stages"). The draw comes from a dedicated RNG stream that
// depends only on (seed, libOffset) — never on the predictions — so
// every execution path selects the same extras, and the streaming path
// can start docking them before ML1 has even finished training.
// Duplicate draws and collisions with the predicted top set simply
// yield fewer extras.
func resampleIndices(cfg *Config, n int, libOffset uint64) []int {
	nExtra := int(cfg.ResampleFrac * float64(topCount(cfg, n)))
	rr := xrand.NewFrom(cfg.Seed+libOffset, 0x5E1)
	out := make([]int, nExtra)
	for j := range out {
		out[j] = rr.Intn(n)
	}
	return out
}

// selectDockIdx computes the final S1 selection — predicted top fraction
// plus the deterministic resample — as sorted library indices. Every
// execution path (sequential, EnTK, streaming) calls this with the same
// predictions and therefore docks the identical compound set.
func selectDockIdx(cfg *Config, preds []float64, libOffset uint64) []int {
	sel := map[int]bool{}
	for _, i := range surrogate.TopK(preds, topCount(cfg, len(preds))) {
		sel[i] = true
	}
	for _, i := range resampleIndices(cfg, len(preds), libOffset) {
		sel[i] = true
	}
	idx := make([]int, 0, len(sel))
	for i := range sel {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// runTail executes everything downstream of S1 — active-learning pool
// feedback, RES analysis, diversity reduction, S3-CG, S2, S3-FG and the
// oracle metrics — shared verbatim by the sequential and streaming paths
// so their results stay byte-identical from the first docked pose on.
func runTail(cfg *Config, res *Result, clk *funnelClock, model *surrogate.Model,
	ids []uint64, trainMols []*chem.Molecule, trainScores []float64,
	dockMols []*chem.Molecule, pool *Pool) error {
	// Feed every docking label of this iteration back into the pool.
	if pool != nil {
		pool.Add(trainMols, trainScores)
		pool.Add(dockMols, scoresOf(res.DockResults))
	}

	// --- RES analysis (Fig. 4): surrogate vs docking truth on the
	// docked selection plus the training set. ---
	resMols := append(append([]*chem.Molecule{}, trainMols...), dockMols...)
	resTruth := append(append([]float64{}, trainScores...), scoresOf(res.DockResults)...)
	resPred := model.Predict(resMols)
	res.RES = surrogate.ComputeRES(resPred, resTruth,
		surrogate.DefaultFractions(), surrogate.DefaultFractions())

	// --- Diversity reduction and S3-CG (§7.1.2: structurally most
	// diverse compounds among the docking winners). ---
	bestDocked := surrogate.BottomK(scoresOf(res.DockResults), min(cfg.CGCount*3, len(res.DockResults)))
	candidates := make([]*chem.Molecule, len(bestDocked))
	for i, j := range bestDocked {
		candidates[i] = dockMols[j]
	}
	diverse := chem.MaxMinDiverse(candidates, min(cfg.CGCount, len(candidates)), 0)
	cgMols := make([]*chem.Molecule, len(diverse))
	cgPoses := make([][]geom.Vec3, len(diverse))
	for i, j := range diverse {
		cgMols[i] = candidates[j]
		cgPoses[i] = dockedPose(cfg.Target, cgMols[i], res.DockResults[bestDocked[j]])
	}
	clk.start("s3-cg")
	cfg.progress("s3-cg", 0.60)
	runner := esmacs.NewRunner(cfg.Target, cfg.Seed^0xE5)
	runner.Workers = cfg.Workers
	runner.KeepTrajectories = true
	cgProto := esmacs.CG()
	if cfg.FastProtocols {
		cgProto = fastProto(cgProto, 40, 200)
	}
	for i, m := range cgMols {
		if cfg.canceled() {
			return ErrCanceled
		}
		est := runner.Estimate(m, cgPoses[i], cgProto)
		res.CGEstimates = append(res.CGEstimates, est)
		res.Counter.Add("S3-CG", est.Flops, 0, 1)
	}
	res.Funnel.CG = len(res.CGEstimates)
	clk.stop("s3-cg")

	// --- S2: 3D-AAE + LOF over the CG ensembles of the top compounds. ---
	clk.start("s2")
	cfg.progress("s2", 0.80)
	if cfg.canceled() {
		return ErrCanceled
	}
	sort.Slice(res.CGEstimates, func(a, b int) bool {
		return res.CGEstimates[a].DeltaG < res.CGEstimates[b].DeltaG
	})
	nTopC := min(cfg.TopCompounds, len(res.CGEstimates))
	topEsts := res.CGEstimates[:nTopC]
	driver := deepdrive.NewDriver(cfg.Target)
	driver.Cfg.Seed = cfg.Seed ^ 0x52
	driver.Cfg.OutliersPerLigand = cfg.OutliersPer
	if cfg.FastProtocols {
		driver.Cfg.Epochs = 4
		driver.Cfg.MaxFrames = 240
	}
	s2rep, err := driver.Run(topEsts)
	if err != nil {
		return fmt.Errorf("campaign: S2: %w", err)
	}
	res.S2Report = s2rep
	res.Funnel.S2Frames = s2rep.Frames
	res.Counter.Add("S2", s2rep.Flops, 0, int64(nTopC))
	clk.stop("s2")

	// --- S3-FG from the S2-selected outlier conformations. ---
	clk.start("s3-fg")
	cfg.progress("s3-fg", 0.90)
	fgProto := esmacs.FG()
	if cfg.FastProtocols {
		fgProto = fastProto(fgProto, 80, 500)
	}
	bestFG := map[uint64]esmacs.Estimate{}
	for _, sel := range s2rep.Selections {
		if cfg.canceled() {
			return ErrCanceled
		}
		est := runner.Estimate(chem.FromID(sel.Ref.MolID), sel.Ligand, fgProto)
		res.FGEstimates = append(res.FGEstimates, est)
		res.Counter.Add("S3-FG", est.Flops, 0, 1)
		if prev, ok := bestFG[est.MolID]; !ok || est.DeltaG < prev.DeltaG {
			bestFG[est.MolID] = est
		}
	}
	res.Funnel.FG = len(res.FGEstimates)
	clk.stop("s3-fg")

	// --- Fig. 6 comparison + oracle metrics. ---
	for _, est := range topEsts {
		fg, ok := bestFG[est.MolID]
		if !ok {
			continue
		}
		res.Top = append(res.Top, TopComparison{
			MolID: est.MolID,
			CG:    est.DeltaG, CGErr: est.StdErr,
			FG: fg.DeltaG, FGErr: fg.StdErr,
			Truth: cfg.Target.TrueAffinity(chem.FromID(est.MolID)),
		})
	}
	res.ScientificYield = yield(cfg.Target, ids, cgMols)
	clk.finish(&res.Funnel)
	cfg.progress("done", 1.0)
	return nil
}

// dockedPose reconstructs the bead positions of a docking result.
func dockedPose(t *receptor.Target, m *chem.Molecule, d dock.Result) []geom.Vec3 {
	if d.Genome == nil {
		return nil
	}
	s := dock.NewScoreFunc(t, m)
	return s.PoseBeads(d.Genome)
}

// yield computes the fraction of the library's true top-1 % binders that
// made it into the CG set — oracle-only scientific performance.
func yield(t *receptor.Target, ids []uint64, cgMols []*chem.Molecule) float64 {
	if len(cgMols) == 0 {
		return 0
	}
	truths := make([]float64, len(ids))
	for i, id := range ids {
		truths[i] = t.TrueAffinity(chem.FromID(id))
	}
	nTop := max(1, len(ids)/100)
	topSet := map[uint64]bool{}
	for _, i := range surrogate.BottomK(truths, nTop) {
		topSet[ids[i]] = true
	}
	hits := 0
	for _, m := range cgMols {
		if topSet[m.ID] {
			hits++
		}
	}
	return float64(hits) / float64(len(cgMols))
}

func fastProto(p esmacs.Protocol, equil, prod int) esmacs.Protocol {
	scale := float64(p.Replicas) // keep replica structure, shrink time
	_ = scale
	p.EquilSteps = equil
	p.ProdSteps = prod
	p.MinimizeIters = 30
	return p
}

func scoresOf(rs []dock.Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Score
	}
	return out
}

func materialize(ids []uint64) []*chem.Molecule {
	out := make([]*chem.Molecule, len(ids))
	for i, id := range ids {
		out[i] = chem.FromID(id)
	}
	return out
}
