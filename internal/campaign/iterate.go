package campaign

import "impeccable/internal/chem"

// IterationSummary captures the per-iteration trajectory of the
// active-learning campaign.
type IterationSummary struct {
	Iteration int
	PoolSize  int     // labelled compounds available before training
	Yield     float64 // oracle-measured enrichment of the CG set
	BestCG    float64 // best CG ΔG found this iteration
	BestTruth float64 // true affinity of the best CG-ranked compound
	ValLoss   float64 // surrogate final validation loss
}

// RunIterations executes n successive campaign iterations against fresh
// library windows, with the surrogate retrained each round on all
// docking labels accumulated so far — the feedback loop the paper argues
// tunes the workflow to the target over time (§8: "over time the ML
// component models improve such that the overall workflow becomes tuned
// to the specific target problem").
func RunIterations(cfg Config, n int) ([]*Result, []IterationSummary, error) {
	pool := &Pool{}
	var results []*Result
	var summaries []IterationSummary
	for it := 0; it < n; it++ {
		poolBefore := pool.Size()
		offset := uint64(it) * uint64(cfg.LibrarySize)
		res, err := RunWithPool(cfg, pool, offset)
		if err != nil {
			return results, summaries, err
		}
		results = append(results, res)
		sum := IterationSummary{
			Iteration: it,
			PoolSize:  poolBefore,
			Yield:     res.ScientificYield,
		}
		if len(res.CGEstimates) > 0 {
			best := res.CGEstimates[0] // sorted ascending by Run
			sum.BestCG = best.DeltaG
			sum.BestTruth = cfg.Target.TrueAffinity(chem.FromID(best.MolID))
		}
		if vl := res.TrainReport.ValLoss; len(vl) > 0 {
			sum.ValLoss = vl[len(vl)-1]
		}
		summaries = append(summaries, sum)
	}
	return results, summaries, nil
}
