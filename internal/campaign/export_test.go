package campaign

import (
	"bytes"
	"testing"
)

func TestExportRoundTrip(t *testing.T) {
	res, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Funnel.Counts() != res.Funnel.Counts() {
		t.Fatalf("funnel mismatch: %+v vs %+v", got.Funnel, res.Funnel)
	}
	if len(got.CG) != len(res.CGEstimates) || len(got.FG) != len(res.FGEstimates) {
		t.Fatal("estimate counts mismatch")
	}
	if len(got.Top) != len(res.Top) {
		t.Fatal("top comparisons mismatch")
	}
	if got.RES == nil || len(got.RES.R) == 0 {
		t.Fatal("RES surface missing")
	}
	if len(got.Components) == 0 {
		t.Fatal("component accounting missing")
	}
	if got.ScientificYield != res.ScientificYield {
		t.Fatal("yield mismatch")
	}
	// Mol IDs serialize as fixed-width hex.
	for _, e := range got.CG {
		if len(e.MolID) != 16 {
			t.Fatalf("mol id %q not 16 hex chars", e.MolID)
		}
	}
}

func TestExportEmptyResult(t *testing.T) {
	r := &Result{}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadExport(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPilotIsolation(t *testing.T) {
	// §6.1.2 (iii): a pathological compound batch degrades only its own
	// pilot.
	clean := SimMultiPilotDocking(3, 64, 20000, -1, 5)
	poisoned := SimMultiPilotDocking(3, 64, 20000, 0, 5)
	if poisoned[0].Throughput >= clean[0].Throughput {
		t.Fatalf("poison did not slow its pilot: %v vs %v",
			poisoned[0].Throughput, clean[0].Throughput)
	}
	for p := 1; p < 3; p++ {
		ratio := poisoned[p].Throughput / clean[p].Throughput
		if ratio < 0.99 || ratio > 1.01 {
			t.Fatalf("pilot %d affected by another pilot's workload: ratio %v", p, ratio)
		}
	}
	t.Logf("poisoned pilot: %.0f/s vs clean %.0f/s; others isolated",
		poisoned[0].Throughput, clean[0].Throughput)
}
