package campaign

import (
	"math"
	"testing"
)

func TestTable2Ladder(t *testing.T) {
	rows := Table2()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Costs must span ≥ 6 orders of magnitude (§3.2).
	ratio := rows[len(rows)-1].NodeHrsPerLig / rows[0].NodeHrsPerLig
	if ratio < 1e6 {
		t.Fatalf("cost dynamic range = %v, want >= 1e6", ratio)
	}
	// Each row is costlier than the previous.
	for i := 1; i < len(rows); i++ {
		if rows[i].NodeHrsPerLig <= rows[i-1].NodeHrsPerLig {
			t.Fatalf("cost ladder not monotone at %s", rows[i].Method)
		}
	}
}

func TestRunSimIntegratedWorkload(t *testing.T) {
	cfg := DefaultSimConfig()
	res := RunSim(cfg)
	if res.Tasks != cfg.Pipelines*(cfg.CGPerPipeline+1+cfg.FGPerPipeline) {
		t.Fatalf("tasks = %d", res.Tasks)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// The pilot must be reasonably utilized for a saturating workload.
	if res.Utilization < 0.3 {
		t.Fatalf("utilization = %v", res.Utilization)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no utilization trace (Fig. 7 input)")
	}
	// Node-hour accounting: 8 pipelines × (12×0.5 + 1×2×2 + 4×4×1.25) ≈
	// 8 × (6+4+20) = 240 node-hours, modulo jitter.
	if res.NodeHours < 150 || res.NodeHours > 350 {
		t.Fatalf("node-hours = %v, want ≈240", res.NodeHours)
	}
}

func TestOverheadInvariantToScale(t *testing.T) {
	// Fig. 7: "the overheads are invariant to scale". Compare mean
	// scheduling delay at 1× and 4× workload+nodes: it must not grow
	// proportionally (allow 3× slack for queueing noise).
	small := DefaultSimConfig()
	small.Nodes = 32
	small.Pipelines = 4
	large := DefaultSimConfig()
	large.Nodes = 128
	large.Pipelines = 16
	ds := RunSim(small).MeanSchedulingDelay
	dl := RunSim(large).MeanSchedulingDelay
	if dl > 3*ds+60 {
		t.Fatalf("scheduling delay grew with scale: %v -> %v", ds, dl)
	}
	t.Logf("mean scheduling delay: %d nodes %.1f s, %d nodes %.1f s",
		small.Nodes, ds, large.Nodes, dl)
}

func TestSimDockingAtScale(t *testing.T) {
	res := SimDockingAtScale(256, 200_000, 1)
	if res.Nodes != 256 {
		t.Fatalf("nodes = %d", res.Nodes)
	}
	// Capacity: 256 nodes × 6 GPUs / 2.16 s ≈ 711 docks/s; require most
	// of it.
	capacity := 256.0 * 6 / 2.16
	if res.Throughput < 0.6*capacity || res.Throughput > 1.05*capacity {
		t.Fatalf("throughput %v vs capacity %v", res.Throughput, capacity)
	}
	if res.Utilization < 0.6 {
		t.Fatalf("utilization = %v", res.Utilization)
	}
}

func TestDockingScalingNearLinear(t *testing.T) {
	// §8: near-linear to thousands of nodes. 4× nodes (with 4× work)
	// must give ≥ 3.2× throughput.
	t1 := SimDockingAtScale(64, 100_000, 2).Throughput
	t4 := SimDockingAtScale(256, 400_000, 2).Throughput
	if t4 < 3.2*t1 {
		t.Fatalf("scaling %.0f -> %.0f docks/s (%.2fx over 4x nodes)", t1, t4, t4/t1)
	}
	t.Logf("64 nodes %.0f/s → 256 nodes %.0f/s (%.2fx)", t1, t4, t4/t1)
}

func TestFortyMillionDocksPerHour(t *testing.T) {
	// The paper's headline: sustained 40 M docks/hour on ~4000 nodes
	// (Frontera had no GPUs; our Summit model with 6 GPU slots/node and
	// the Table 2 per-dock cost lands at the same order of magnitude:
	// 4000 nodes × 6 / 2.16 s × 3600 ≈ 40 M/h).
	res := SimDockingAtScale(4000, 2_000_000, 3)
	if res.DocksPerHour < 25e6 {
		t.Fatalf("docks/hour = %.1fM, want >= 25M", res.DocksPerHour/1e6)
	}
	t.Logf("4000 nodes: %.1f M docks/hour at %.0f%% utilization",
		res.DocksPerHour/1e6, 100*res.Utilization)
}

func TestUtilizationHelperEdgeCases(t *testing.T) {
	if u := timeWeightedUtilization(nil, 10, 100); u != 0 {
		t.Fatalf("empty trace utilization = %v", u)
	}
}

func TestLognormUnitMedian(t *testing.T) {
	// Sanity of the jitter model: median of samples ≈ 1.
	cfg := DefaultSimConfig()
	a := RunSim(cfg)
	cfg.DurationJitter = 0
	b := RunSim(cfg)
	// Without jitter the makespan is deterministic and close to the
	// jittered one.
	if math.Abs(a.Makespan-b.Makespan) > 0.5*b.Makespan {
		t.Fatalf("jittered makespan %v far from deterministic %v", a.Makespan, b.Makespan)
	}
}
