package campaign

import (
	"testing"

	"impeccable/internal/dock"
	"impeccable/internal/receptor"
)

// goldenConfig is the fixed-seed campaign the golden-funnel regression
// pins: small enough to run three times in one test, large enough that
// every stage does real work.
func goldenConfig() Config {
	cfg := DefaultConfig(receptor.PLPro())
	cfg.LibrarySize = 900
	cfg.TrainSize = 150
	cfg.CGCount = 5
	cfg.TopCompounds = 2
	cfg.OutliersPer = 2
	cfg.Seed = 7
	cfg.FastProtocols = true
	p := dock.DefaultParams()
	p.Runs = 1
	p.Generations = 10
	p.Population = 24
	cfg.DockParams = &p
	return cfg
}

// goldenDigest flattens the parts of a result that must be identical on
// every execution path: funnel counts, the S1 dock ledger, the CG/FG
// estimates and the final top-K compounds. Exact float equality is
// intentional — the substrate's oracle and per-molecule seeding make the
// paths bit-reproducible, and any divergence is a scheduling bug leaking
// into the science.
type goldenDigest struct {
	counts  FunnelCounts
	dockIDs []uint64
	docks   []float64
	cgIDs   []uint64
	cgDGs   []float64
	fgIDs   []uint64
	fgDGs   []float64
	topIDs  []uint64
	topCG   []float64
	topFG   []float64
	yield   float64
}

func digest(res *Result) goldenDigest {
	d := goldenDigest{counts: res.Funnel.Counts(), yield: res.ScientificYield}
	for _, r := range res.DockResults {
		d.dockIDs = append(d.dockIDs, r.MolID)
		d.docks = append(d.docks, r.Score)
	}
	for _, e := range res.CGEstimates {
		d.cgIDs = append(d.cgIDs, e.MolID)
		d.cgDGs = append(d.cgDGs, e.DeltaG)
	}
	for _, e := range res.FGEstimates {
		d.fgIDs = append(d.fgIDs, e.MolID)
		d.fgDGs = append(d.fgDGs, e.DeltaG)
	}
	for _, tc := range res.Top {
		d.topIDs = append(d.topIDs, tc.MolID)
		d.topCG = append(d.topCG, tc.CG)
		d.topFG = append(d.topFG, tc.FG)
	}
	return d
}

func compareDigests(t *testing.T, pathA, pathB string, a, b goldenDigest) {
	t.Helper()
	if a.counts != b.counts {
		t.Errorf("%s vs %s: funnel counts differ:\n  %+v\n  %+v", pathA, pathB, a.counts, b.counts)
	}
	cmpU64 := func(name string, x, y []uint64) {
		t.Helper()
		if len(x) != len(y) {
			t.Errorf("%s vs %s: %s length %d vs %d", pathA, pathB, name, len(x), len(y))
			return
		}
		for i := range x {
			if x[i] != y[i] {
				t.Errorf("%s vs %s: %s[%d] = %016x vs %016x", pathA, pathB, name, i, x[i], y[i])
				return
			}
		}
	}
	cmpF64 := func(name string, x, y []float64) {
		t.Helper()
		if len(x) != len(y) {
			t.Errorf("%s vs %s: %s length %d vs %d", pathA, pathB, name, len(x), len(y))
			return
		}
		for i := range x {
			if x[i] != y[i] {
				t.Errorf("%s vs %s: %s[%d] = %v vs %v", pathA, pathB, name, i, x[i], y[i])
				return
			}
		}
	}
	cmpU64("dock mol IDs", a.dockIDs, b.dockIDs)
	cmpF64("dock scores", a.docks, b.docks)
	cmpU64("CG mol IDs", a.cgIDs, b.cgIDs)
	cmpF64("CG dG", a.cgDGs, b.cgDGs)
	cmpU64("FG mol IDs", a.fgIDs, b.fgIDs)
	cmpF64("FG dG", a.fgDGs, b.fgDGs)
	cmpU64("top-K mol IDs", a.topIDs, b.topIDs)
	cmpF64("top-K CG", a.topCG, b.topCG)
	cmpF64("top-K FG", a.topFG, b.topFG)
	if a.yield != b.yield {
		t.Errorf("%s vs %s: yield %v vs %v", pathA, pathB, a.yield, b.yield)
	}
}

// TestGoldenFunnelAcrossPaths is the golden-funnel regression: the same
// fixed-seed campaign must produce identical funnel counts, dock ledger
// and top-K compound IDs whether it runs sequentially, as an EnTK
// pipeline over a real pilot, or through the streaming dataflow. The
// substrate's determinism (per-molecule RNG streams everywhere) makes
// exact comparison possible; this is the contract every future
// stage-overlap change must keep.
func TestGoldenFunnelAcrossPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full (small) campaigns")
	}
	cfg := goldenConfig()

	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entk, err := RunViaEnTK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := RunStreaming(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ds, de, dm := digest(seq), digest(entk), digest(stream)
	compareDigests(t, "sequential", "entk", ds, de)
	compareDigests(t, "sequential", "streaming", ds, dm)

	if len(ds.topIDs) == 0 {
		t.Fatal("golden campaign produced no top compounds")
	}
	if seq.Funnel.SpeculativeDocks != 0 || seq.Funnel.SpeculativeEvals != 0 {
		t.Fatalf("sequential path reported speculation: %+v", seq.Funnel)
	}
	// The streaming schedule must still have produced the stage windows.
	for _, stage := range []string{"s1-train", "ml1-train", "ml1-screen", "s1-dock", "s3-cg", "s2", "s3-fg"} {
		if stream.Funnel.StageSeconds(stage) <= 0 {
			t.Errorf("streaming path missing %s timing: %+v", stage, stream.Funnel.Timings)
		}
	}
	// And the dock window must open before the screen closes — the
	// overlap the streaming path exists to create.
	dockStart, _, ok1 := stream.Funnel.StageWindow("s1-dock")
	_, screenEnd, ok2 := stream.Funnel.StageWindow("ml1-screen")
	if !ok1 || !ok2 || dockStart >= screenEnd {
		t.Errorf("streaming dock window [%v..] does not overlap screen [..%v]", dockStart, screenEnd)
	}
	t.Logf("golden funnel: %+v", ds.counts)
	t.Logf("streaming: overlap ratio %.2f, %d speculative docks (%d evals)",
		stream.Funnel.OverlapRatio, stream.Funnel.SpeculativeDocks, stream.Funnel.SpeculativeEvals)
}

// TestGoldenFunnelStreamingDeterminism pins the streaming path against
// itself: two runs with the same seed must be bit-identical even though
// the interleaving of chunks and docks differs between runs.
func TestGoldenFunnelStreamingDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full (small) campaigns")
	}
	cfg := goldenConfig()
	cfg.Workers = 4 // force real pipeline concurrency
	a, err := RunStreaming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStreaming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareDigests(t, "streaming-run-1", "streaming-run-2", digest(a), digest(b))
}
