package campaign

import (
	"testing"

	"impeccable/internal/dock"
	"impeccable/internal/receptor"
)

// fastConfig returns a small-but-complete campaign for integration tests.
func fastConfig() Config {
	cfg := DefaultConfig(receptor.PLPro())
	cfg.LibrarySize = 1200
	cfg.TrainSize = 250
	cfg.CGCount = 6
	cfg.TopCompounds = 3
	cfg.OutliersPer = 2
	cfg.FastProtocols = true
	p := dock.DefaultParams()
	p.Runs = 1
	p.Generations = 10
	p.Population = 24
	cfg.DockParams = &p
	return cfg
}

func TestCampaignEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	res, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Funnel shape: screened >> docked >> CG >= top >= FG groups.
	f := res.Funnel
	if f.Screened != 1200 {
		t.Fatalf("screened = %d", f.Screened)
	}
	if f.Docked <= 0 || f.Docked >= f.Screened {
		t.Fatalf("docked = %d", f.Docked)
	}
	if f.CG != 6 {
		t.Fatalf("CG = %d", f.CG)
	}
	if f.FG != 3*2 {
		t.Fatalf("FG = %d, want top×outliers = 6", f.FG)
	}
	if f.S2Frames <= 0 {
		t.Fatal("no S2 frames")
	}
	// Every deliverable present.
	if res.RES == nil || res.S2Report == nil || res.Model == nil {
		t.Fatal("missing analysis artifacts")
	}
	if len(res.Top) == 0 {
		t.Fatal("no Fig. 6 comparisons")
	}
	// FLOP accounting covers all five components.
	for _, comp := range []string{"ML1", "ML1-train", "S1", "S3-CG", "S2", "S3-FG"} {
		if res.Counter.Get(comp).Flops <= 0 {
			t.Fatalf("no flops recorded for %s", comp)
		}
	}
}

func TestCampaignFGRefinesCG(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	// Fig. 6: FG estimates from S2-selected outlier conformations should
	// be lower (better) than CG for most of the top compounds.
	res, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	lower := 0
	for _, tc := range res.Top {
		if tc.FG < tc.CG {
			lower++
		}
	}
	if lower*2 < len(res.Top) {
		t.Fatalf("FG better in only %d/%d top compounds", lower, len(res.Top))
	}
	t.Logf("FG < CG in %d/%d top compounds", lower, len(res.Top))
}

func TestCampaignEnrichesOverRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	// Scientific performance: the CG set must be enriched in true
	// top-1 % binders far beyond random expectation (0.01).
	res, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ScientificYield <= 0.01 {
		t.Fatalf("scientific yield %v no better than random", res.ScientificYield)
	}
	t.Logf("scientific yield: %.0f%% of CG compounds are true top-1%% binders",
		100*res.ScientificYield)
}

func TestCampaignErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil target accepted")
	}
	cfg := fastConfig()
	cfg.LibrarySize = 5
	if _, err := Run(cfg); err == nil {
		t.Fatal("tiny library accepted")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	cfg := fastConfig()
	cfg.Workers = 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Top) != len(b.Top) {
		t.Fatal("top sets differ")
	}
	for i := range a.Top {
		if a.Top[i].MolID != b.Top[i].MolID || a.Top[i].FG != b.Top[i].FG {
			t.Fatalf("campaign not deterministic at top %d", i)
		}
	}
}
