package entk

import (
	"sync"
	"sync/atomic"
	"testing"

	"impeccable/internal/hpc"
	"impeccable/internal/pilot"
)

func simSetup(nodes int) (*AppManager, *hpc.SimClock, *pilot.Pilot) {
	clk := hpc.NewSimClock()
	pl := pilot.NewPilot(hpc.Summit().WithNodes(nodes), clk, &pilot.SimExecutor{Clock: clk})
	return NewAppManager(pl), clk, pl
}

func TestStagesRunSequentially(t *testing.T) {
	am, clk, _ := simSetup(4)
	p := NewPipeline("p")
	s1 := NewStage("s1")
	s1.AddTask(&Task{Name: "a", Cores: 1, Duration: 10})
	s1.AddTask(&Task{Name: "b", Cores: 1, Duration: 5})
	s2 := NewStage("s2")
	s2.AddTask(&Task{Name: "c", Cores: 1, Duration: 3})
	p.AddStage(s1).AddStage(s2)
	am.Run(p)
	clk.Run()
	if !am.Idle() {
		t.Fatal("pipelines not retired")
	}
	c := s2.Tasks[0].PilotTask
	// Stage 2 starts only after the longest stage-1 task (10 s).
	if c.StartTime != 10 {
		t.Fatalf("stage-2 start = %v, want 10", c.StartTime)
	}
	if clk.Now() != 13 {
		t.Fatalf("makespan = %v", clk.Now())
	}
}

func TestTasksWithinStageConcurrent(t *testing.T) {
	am, clk, _ := simSetup(4)
	p := NewPipeline("p")
	s := NewStage("s")
	for i := 0; i < 4; i++ {
		s.AddTask(&Task{Name: "t", Cores: 42, GPUs: 6, Nodes: 1, Duration: 10})
	}
	p.AddStage(s)
	am.Run(p)
	clk.Run()
	if clk.Now() != 10 {
		t.Fatalf("4 node-tasks on 4 nodes should take 10 s, took %v", clk.Now())
	}
}

func TestPipelinesProgressIndependently(t *testing.T) {
	// §5.2.1: asynchronous execution of concurrent pipelines — a slow
	// pipeline must not block a fast one.
	am, clk, _ := simSetup(2)
	slow := NewPipeline("slow")
	slow.AddStage(NewStage("s").AddTask(&Task{Name: "x", Cores: 1, Duration: 100}))
	fast := NewPipeline("fast")
	fastTasks := make([]*Task, 3)
	for i := range fastTasks {
		fastTasks[i] = &Task{Name: "y", Cores: 1, Duration: 1}
		fast.AddStage(NewStage("s").AddTask(fastTasks[i]))
	}
	am.Run(slow, fast)
	clk.Run()
	// Fast pipeline's last stage ends at t=3, far before 100.
	if end := fastTasks[2].PilotTask.EndTime; end != 3 {
		t.Fatalf("fast pipeline finished at %v, want 3", end)
	}
	if clk.Now() != 100 {
		t.Fatalf("makespan = %v", clk.Now())
	}
}

func TestPostExecAdaptivity(t *testing.T) {
	// The EnTK adaptivity hook: a stage's PostExec appends another stage
	// (the paper's iterative S2↔S3-FG feedback loop shape).
	am, clk, _ := simSetup(2)
	p := NewPipeline("adaptive")
	var iterations atomic.Int64
	var addStage func(pl *Pipeline)
	addStage = func(pl *Pipeline) {
		if iterations.Add(1) >= 3 {
			return
		}
		s := NewStage("iter")
		s.AddTask(&Task{Name: "work", Cores: 1, Duration: 5})
		s.PostExec = addStage
		pl.AddStage(s)
	}
	first := NewStage("seed")
	first.AddTask(&Task{Name: "work", Cores: 1, Duration: 5})
	first.PostExec = addStage
	p.AddStage(first)
	am.Run(p)
	clk.Run()
	if got := iterations.Load(); got != 3 {
		t.Fatalf("iterations = %d, want 3", got)
	}
	if clk.Now() != 15 {
		t.Fatalf("adaptive makespan = %v, want 15", clk.Now())
	}
}

func TestEmptyStageSkipped(t *testing.T) {
	am, clk, _ := simSetup(1)
	p := NewPipeline("p")
	p.AddStage(NewStage("empty"))
	p.AddStage(NewStage("real").AddTask(&Task{Name: "t", Cores: 1, Duration: 2}))
	am.Run(p)
	clk.Run()
	if !am.Idle() || clk.Now() != 2 {
		t.Fatalf("empty-stage handling broken: idle=%v now=%v", am.Idle(), clk.Now())
	}
}

func TestEmptyPipelineRetires(t *testing.T) {
	am, clk, _ := simSetup(1)
	am.Run(NewPipeline("empty"))
	clk.Run()
	if !am.Idle() {
		t.Fatal("empty pipeline did not retire")
	}
}

func TestHeterogeneousStage(t *testing.T) {
	// §7.2: single-GPU tasks execute alongside MPI multi-node and CPU
	// tasks in distinct stages of concurrent pipelines.
	am, clk, pl := simSetup(4)
	p1 := NewPipeline("md")
	p1.AddStage(NewStage("sim").
		AddTask(&Task{Name: "openmm", Cores: 1, GPUs: 1, Duration: 20}).
		AddTask(&Task{Name: "openmm", Cores: 1, GPUs: 1, Duration: 20}))
	p2 := NewPipeline("train")
	p2.AddStage(NewStage("ddp").
		AddTask(&Task{Name: "torch-ddp", Cores: 42, GPUs: 6, Nodes: 2, Duration: 30}))
	p3 := NewPipeline("agg")
	p3.AddStage(NewStage("cpu").
		AddTask(&Task{Name: "aggregate", Cores: 20, Duration: 10}))
	am.Run(p1, p2, p3)
	clk.Run()
	if clk.Now() != 30 {
		t.Fatalf("heterogeneous makespan = %v, want 30", clk.Now())
	}
	if len(pl.Executed()) != 4 {
		t.Fatalf("executed = %d", len(pl.Executed()))
	}
}

func TestRealClockExecution(t *testing.T) {
	clk := hpc.NewRealClock()
	pl := pilot.NewPilot(hpc.Summit().WithNodes(2), clk, &pilot.RealExecutor{})
	am := NewAppManager(pl)
	var mu sync.Mutex
	var order []string
	p := NewPipeline("p")
	s1 := NewStage("s1")
	for i := 0; i < 3; i++ {
		s1.AddTask(&Task{Name: "a", Cores: 1, Fn: func() {
			mu.Lock()
			order = append(order, "s1")
			mu.Unlock()
		}})
	}
	s2 := NewStage("s2").AddTask(&Task{Name: "b", Cores: 1, Fn: func() {
		mu.Lock()
		order = append(order, "s2")
		mu.Unlock()
	}})
	p.AddStage(s1).AddStage(s2)
	am.Run(p)
	am.Wait()
	if len(order) != 4 || order[3] != "s2" {
		t.Fatalf("order = %v", order)
	}
}

func TestManyConcurrentPipelines(t *testing.T) {
	// Stress: 50 pipelines × 3 stages × 4 tasks on a small pilot.
	am, clk, pl := simSetup(8)
	pipes := make([]*Pipeline, 50)
	for i := range pipes {
		p := NewPipeline("p")
		for s := 0; s < 3; s++ {
			st := NewStage("s")
			for k := 0; k < 4; k++ {
				st.AddTask(&Task{Name: "t", Cores: 4, GPUs: 1, Duration: 1})
			}
			p.AddStage(st)
		}
		pipes[i] = p
	}
	am.Run(pipes...)
	clk.Run()
	if !am.Idle() {
		t.Fatal("pipelines stuck")
	}
	if got := len(pl.Executed()); got != 50*3*4 {
		t.Fatalf("executed = %d", got)
	}
	if pl.Oversubscribed() {
		t.Fatal("oversubscription under pipeline load")
	}
}

func BenchmarkPipelineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		am, clk, _ := simSetup(16)
		pipes := make([]*Pipeline, 20)
		for j := range pipes {
			p := NewPipeline("p")
			for s := 0; s < 3; s++ {
				st := NewStage("s")
				for k := 0; k < 8; k++ {
					st.AddTask(&Task{Cores: 4, GPUs: 1, Duration: 1})
				}
				p.AddStage(st)
			}
			pipes[j] = p
		}
		am.Run(pipes...)
		clk.Run()
	}
}

func TestFailingTaskDoesNotWedgePipeline(t *testing.T) {
	// A task that panics must fail in isolation; the stage still
	// completes and the pipeline advances (EnTK's per-task isolation).
	clk := hpc.NewRealClock()
	pl := pilot.NewPilot(hpc.Summit().WithNodes(1), clk, &pilot.RealExecutor{})
	am := NewAppManager(pl)
	var after atomic.Int64
	p := NewPipeline("p")
	s1 := NewStage("s1").
		AddTask(&Task{Name: "boom", Cores: 1, Fn: func() { panic("x") }}).
		AddTask(&Task{Name: "ok", Cores: 1, Fn: func() {}})
	s2 := NewStage("s2").AddTask(&Task{Name: "after", Cores: 1, Fn: func() { after.Add(1) }})
	p.AddStage(s1).AddStage(s2)
	am.Run(p)
	am.Wait()
	if after.Load() != 1 {
		t.Fatal("pipeline did not advance past a failing task")
	}
	if s1.Tasks[0].PilotTask.State != pilot.Failed {
		t.Fatalf("failing task state = %v", s1.Tasks[0].PilotTask.State)
	}
	if s1.Tasks[0].PilotTask.Err == nil {
		t.Fatal("panic not recorded")
	}
}
