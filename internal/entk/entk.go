// Package entk reimplements the Ensemble Toolkit (EnTK) programming
// system the paper codifies its campaign in (§5.2.1, §6.1): the PST
// (Pipeline, Stage, Task) model.
//
//   - Tasks without mutual ordering constraints group into a Stage and
//     run concurrently (arbitrary stage sizing / variable concurrency);
//   - Stages order execution within a Pipeline (a stage starts only when
//     its predecessor completed — the priority relation);
//   - Pipelines execute concurrently and asynchronously, each progressing
//     at its own pace;
//   - post-stage callbacks may append further stages, which is how the
//     paper's adaptive methods (§5.2.1: runtime parameter selection,
//     iterative S2↔S3 loops) are expressed.
//
// AppManager executes pipelines over a pilot, mapping every PST task to a
// pilot.Task.
package entk

import (
	"fmt"
	"sync"

	"impeccable/internal/pilot"
)

// Task is a PST task: a stand-alone process with defined inputs, outputs
// and resource requirements (§5.2.1). It wraps the pilot task description.
type Task struct {
	Name      string
	Cores     int
	GPUs      int
	Nodes     int
	Duration  float64 // modeled duration (simulation executor)
	Fn        func()  // real work (real executor)
	Flops     int64
	Component string

	// filled at runtime
	PilotTask *pilot.Task
}

// Stage is a set of tasks with no reciprocal priority relation; they may
// execute concurrently.
type Stage struct {
	Name  string
	Tasks []*Task
	// PostExec runs after every task in the stage completed; it may
	// mutate the owning pipeline (append stages) — the EnTK adaptivity
	// hook.
	PostExec func(p *Pipeline)
}

// AddTask appends a task and returns the stage for chaining.
func (s *Stage) AddTask(t *Task) *Stage {
	s.Tasks = append(s.Tasks, t)
	return s
}

// Pipeline is an ordered sequence of stages.
type Pipeline struct {
	Name   string
	Stages []*Stage

	mu   sync.Mutex
	next int // index of the next stage to run
}

// AddStage appends a stage (safe to call from PostExec).
func (p *Pipeline) AddStage(s *Stage) *Pipeline {
	p.mu.Lock()
	p.Stages = append(p.Stages, s)
	p.mu.Unlock()
	return p
}

// NewPipeline creates a named pipeline.
func NewPipeline(name string) *Pipeline { return &Pipeline{Name: name} }

// NewStage creates a named stage.
func NewStage(name string) *Stage { return &Stage{Name: name} }

// AppManager executes pipelines over a pilot (the EnTK execution backend
// is RADICAL-Pilot, §5.2.2).
type AppManager struct {
	Pilot *pilot.Pilot

	mu       sync.Mutex
	cond     *sync.Cond
	inFlight int
	taskSeq  uint64
}

// NewAppManager builds an application manager over the pilot.
func NewAppManager(pl *pilot.Pilot) *AppManager {
	am := &AppManager{Pilot: pl}
	am.cond = sync.NewCond(&am.mu)
	return am
}

// Run submits all pipelines for concurrent execution. Each pipeline's
// stages run sequentially; separate pipelines interleave freely on the
// pilot. Run returns immediately; use Wait (real clock) or drive the
// SimClock then Wait (simulated).
func (am *AppManager) Run(pipelines ...*Pipeline) {
	am.mu.Lock()
	am.inFlight += len(pipelines)
	am.mu.Unlock()
	for _, p := range pipelines {
		am.advance(p)
	}
}

// advance launches pipeline p's next stage, or retires the pipeline when
// no stages remain.
func (am *AppManager) advance(p *Pipeline) {
	p.mu.Lock()
	if p.next >= len(p.Stages) {
		p.mu.Unlock()
		am.mu.Lock()
		am.inFlight--
		am.cond.Broadcast()
		am.mu.Unlock()
		return
	}
	stage := p.Stages[p.next]
	p.next++
	p.mu.Unlock()

	if len(stage.Tasks) == 0 {
		am.finishStage(p, stage)
		return
	}
	pending := int64(len(stage.Tasks))
	var mu sync.Mutex
	for _, t := range stage.Tasks {
		pt := &pilot.Task{
			Name:      fmt.Sprintf("%s/%s/%s", p.Name, stage.Name, t.Name),
			Cores:     t.Cores,
			GPUs:      t.GPUs,
			Nodes:     t.Nodes,
			Duration:  t.Duration,
			Fn:        t.Fn,
			Flops:     t.Flops,
			Component: t.Component,
		}
		t.PilotTask = pt
		pt.OnDone = func(*pilot.Task) {
			mu.Lock()
			pending--
			last := pending == 0
			mu.Unlock()
			if last {
				am.finishStage(p, stage)
			}
		}
		am.Pilot.Submit(pt)
	}
}

// finishStage runs the stage's adaptivity hook and advances the pipeline.
func (am *AppManager) finishStage(p *Pipeline, s *Stage) {
	if s.PostExec != nil {
		s.PostExec(p)
	}
	am.advance(p)
}

// Wait blocks until every submitted pipeline has retired.
func (am *AppManager) Wait() {
	am.mu.Lock()
	for am.inFlight > 0 {
		am.cond.Wait()
	}
	am.mu.Unlock()
}

// Idle reports whether all pipelines have retired.
func (am *AppManager) Idle() bool {
	am.mu.Lock()
	defer am.mu.Unlock()
	return am.inFlight == 0
}
