package latent

import (
	"math"
	"testing"

	"impeccable/internal/xrand"
)

// gaussianCluster samples n points around center with the given spread.
func gaussianCluster(r *xrand.RNG, n, dim int, center, spread float64) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dim)
		for d := range pts[i] {
			pts[i][d] = r.Norm(center, spread)
		}
	}
	return pts
}

func TestLOFDetectsPlantedOutliers(t *testing.T) {
	r := xrand.New(1)
	pts := gaussianCluster(r, 100, 4, 0, 0.5)
	// Plant 3 far outliers.
	outIdx := []int{100, 101, 102}
	for range outIdx {
		p := make([]float64, 4)
		for d := range p {
			p[d] = r.Norm(10, 0.2)
		}
		pts = append(pts, p)
	}
	scores := LOF(pts, 10)
	top := TopOutliers(scores, 3)
	found := map[int]bool{}
	for _, i := range top {
		found[i] = true
	}
	for _, want := range outIdx {
		if !found[want] {
			t.Fatalf("planted outlier %d not in top-3 LOF: top = %v", want, top)
		}
	}
}

func TestLOFInliersNearOne(t *testing.T) {
	r := xrand.New(2)
	pts := gaussianCluster(r, 200, 3, 0, 1)
	scores := LOF(pts, 15)
	var mean float64
	for _, s := range scores {
		mean += s
	}
	mean /= float64(len(scores))
	if mean < 0.8 || mean > 1.5 {
		t.Fatalf("mean LOF of uniform cluster = %v, want ≈1", mean)
	}
}

func TestLOFPanicsOnBadK(t *testing.T) {
	pts := gaussianCluster(xrand.New(3), 10, 2, 0, 1)
	for _, k := range []int{0, 10, 20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for k=%d", k)
				}
			}()
			LOF(pts, k)
		}()
	}
}

func TestTopOutliersOrder(t *testing.T) {
	scores := []float64{1.0, 3.0, 2.0, 0.5}
	top := TopOutliers(scores, 2)
	if top[0] != 1 || top[1] != 2 {
		t.Fatalf("TopOutliers = %v", top)
	}
	if got := TopOutliers(scores, 100); len(got) != 4 {
		t.Fatalf("overflow m: %v", got)
	}
}

func TestTSNESeparatesClusters(t *testing.T) {
	r := xrand.New(4)
	a := gaussianCluster(r, 40, 8, 0, 0.3)
	b := gaussianCluster(r, 40, 8, 6, 0.3)
	pts := append(a, b...)
	cfg := DefaultTSNEConfig()
	cfg.Iters = 250
	y := TSNE(pts, cfg)
	if len(y) != 80 || len(y[0]) != 2 {
		t.Fatalf("embedding shape wrong: %d × %d", len(y), len(y[0]))
	}
	// Mean intra-cluster distance must be far below inter-cluster
	// distance in the embedding.
	intra, inter := 0.0, 0.0
	ni, nx := 0, 0
	for i := 0; i < 80; i++ {
		for j := i + 1; j < 80; j++ {
			d := euclid(y[i], y[j])
			if (i < 40) == (j < 40) {
				intra += d
				ni++
			} else {
				inter += d
				nx++
			}
		}
	}
	intra /= float64(ni)
	inter /= float64(nx)
	if inter < 1.5*intra {
		t.Fatalf("t-SNE failed to separate: intra %v, inter %v", intra, inter)
	}
}

func TestTSNEEdgeCases(t *testing.T) {
	if got := TSNE(nil, DefaultTSNEConfig()); got != nil {
		t.Fatalf("empty input: %v", got)
	}
	one := TSNE([][]float64{{1, 2, 3}}, DefaultTSNEConfig())
	if len(one) != 1 || len(one[0]) != 2 {
		t.Fatalf("single point embedding: %v", one)
	}
	// Tiny inputs must not hang or NaN.
	r := xrand.New(5)
	small := gaussianCluster(r, 5, 3, 0, 1)
	cfg := DefaultTSNEConfig()
	cfg.Iters = 50
	y := TSNE(small, cfg)
	for _, row := range y {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite embedding value: %v", y)
			}
		}
	}
}

func TestTSNEDeterministic(t *testing.T) {
	r := xrand.New(6)
	pts := gaussianCluster(r, 30, 4, 0, 1)
	cfg := DefaultTSNEConfig()
	cfg.Iters = 60
	a := TSNE(pts, cfg)
	b := TSNE(pts, cfg)
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatal("t-SNE not deterministic")
			}
		}
	}
}

func TestKMeansRecoversClusters(t *testing.T) {
	r := xrand.New(7)
	a := gaussianCluster(r, 50, 3, 0, 0.4)
	b := gaussianCluster(r, 50, 3, 8, 0.4)
	pts := append(a, b...)
	res := KMeans(pts, 2, 50, 1)
	// All of cluster a must share one label, all of b the other.
	la := res.Assign[0]
	for i := 1; i < 50; i++ {
		if res.Assign[i] != la {
			t.Fatalf("cluster a split: %v", res.Assign[:50])
		}
	}
	lb := res.Assign[50]
	if lb == la {
		t.Fatal("clusters merged")
	}
	for i := 51; i < 100; i++ {
		if res.Assign[i] != lb {
			t.Fatalf("cluster b split")
		}
	}
	if res.Inertia <= 0 {
		t.Fatalf("inertia = %v", res.Inertia)
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if res := KMeans(nil, 3, 10, 1); res.Assign != nil {
		t.Fatal("empty input should produce empty result")
	}
	pts := gaussianCluster(xrand.New(8), 3, 2, 0, 1)
	res := KMeans(pts, 10, 10, 1) // k > n
	if len(res.Centroids) != 3 {
		t.Fatalf("k clamped wrong: %d centroids", len(res.Centroids))
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	r := xrand.New(9)
	pts := gaussianCluster(r, 120, 4, 0, 2)
	i2 := KMeans(pts, 2, 50, 3).Inertia
	i8 := KMeans(pts, 8, 50, 3).Inertia
	if i8 >= i2 {
		t.Fatalf("inertia did not decrease with k: k=2 %v, k=8 %v", i2, i8)
	}
}

func BenchmarkLOF500(b *testing.B) {
	pts := gaussianCluster(xrand.New(1), 500, 16, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LOF(pts, 20)
	}
}

func BenchmarkTSNE200(b *testing.B) {
	pts := gaussianCluster(xrand.New(1), 200, 16, 0, 1)
	cfg := DefaultTSNEConfig()
	cfg.Iters = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TSNE(pts, cfg)
	}
}
