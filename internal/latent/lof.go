// Package latent provides the latent-space analysis toolkit of the S2
// stage: local outlier factor (LOF) detection for selecting "interesting"
// protein-ligand conformations from 3D-AAE embeddings (§5.1.4), exact
// t-SNE for the latent-space visualizations of Fig. 5C, and k-means for
// conformational substate clustering (§3.2 S2).
package latent

import (
	"math"
	"sort"
)

// LOF computes the local outlier factor of every point (Breunig et al.
// 2000) with neighbourhood size k. Scores near 1 indicate inliers; scores
// substantially above 1 indicate density-based outliers. Points are rows
// of x. Panics if k <= 0 or k >= len(x).
func LOF(x [][]float64, k int) []float64 {
	n := len(x)
	if k <= 0 || k >= n {
		panic("latent: LOF requires 0 < k < n")
	}
	// Pairwise distances and k-nearest neighbours.
	type nb struct {
		idx int
		d   float64
	}
	neighbors := make([][]nb, n)
	kdist := make([]float64, n)
	for i := 0; i < n; i++ {
		all := make([]nb, 0, n-1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			all = append(all, nb{j, euclid(x[i], x[j])})
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		neighbors[i] = all[:k]
		kdist[i] = all[k-1].d
	}
	// Local reachability density.
	lrd := make([]float64, n)
	for i := 0; i < n; i++ {
		var reachSum float64
		for _, nbr := range neighbors[i] {
			reach := nbr.d
			if kdist[nbr.idx] > reach {
				reach = kdist[nbr.idx]
			}
			reachSum += reach
		}
		if reachSum == 0 {
			lrd[i] = math.Inf(1)
		} else {
			lrd[i] = float64(k) / reachSum
		}
	}
	// LOF = mean neighbour lrd / own lrd.
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for _, nbr := range neighbors[i] {
			s += lrd[nbr.idx]
		}
		s /= float64(k)
		switch {
		case math.IsInf(lrd[i], 1) && math.IsInf(s, 1):
			out[i] = 1
		case math.IsInf(lrd[i], 1):
			out[i] = 0
		default:
			out[i] = s / lrd[i]
		}
	}
	return out
}

// TopOutliers returns the indices of the m largest LOF scores, most
// anomalous first.
func TopOutliers(scores []float64, m int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if m > len(idx) {
		m = len(idx)
	}
	return idx[:m]
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
