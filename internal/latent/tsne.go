package latent

import (
	"math"

	"impeccable/internal/xrand"
)

// TSNEConfig controls the exact t-SNE embedding (van der Maaten & Hinton
// 2008) used to visualize AAE latent spaces (Fig. 5C). Exact (quadratic)
// t-SNE is appropriate at the few-thousand-point scale of the paper's
// validation-set plots.
type TSNEConfig struct {
	Perplexity   float64
	Iters        int
	LearningRate float64
	Momentum     float64
	Seed         uint64
	OutDim       int
}

// DefaultTSNEConfig mirrors common defaults.
func DefaultTSNEConfig() TSNEConfig {
	return TSNEConfig{
		Perplexity:   30,
		Iters:        300,
		LearningRate: 100,
		Momentum:     0.8,
		Seed:         1,
		OutDim:       2,
	}
}

// TSNE embeds the rows of x into cfg.OutDim dimensions.
func TSNE(x [][]float64, cfg TSNEConfig) [][]float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if cfg.OutDim <= 0 {
		cfg.OutDim = 2
	}
	if n == 1 {
		return [][]float64{make([]float64, cfg.OutDim)}
	}
	perp := cfg.Perplexity
	if maxPerp := float64(n-1) / 3; perp > maxPerp {
		perp = maxPerp
	}
	if perp < 2 {
		perp = 2
	}
	p := jointProbabilities(x, perp)

	r := xrand.New(cfg.Seed)
	y := make([][]float64, n)
	for i := range y {
		y[i] = make([]float64, cfg.OutDim)
		for d := range y[i] {
			y[i][d] = r.Norm(0, 1e-2)
		}
	}
	vel := make([][]float64, n)
	grad := make([][]float64, n)
	for i := range vel {
		vel[i] = make([]float64, cfg.OutDim)
		grad[i] = make([]float64, cfg.OutDim)
	}
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}

	for iter := 0; iter < cfg.Iters; iter++ {
		// Early exaggeration for the first quarter of iterations.
		exag := 1.0
		if iter < cfg.Iters/4 {
			exag = 4.0
		}
		// Student-t affinities in the embedding.
		var qsum float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d2 := 0.0
				for d := 0; d < cfg.OutDim; d++ {
					diff := y[i][d] - y[j][d]
					d2 += diff * diff
				}
				v := 1 / (1 + d2)
				q[i][j] = v
				q[j][i] = v
				qsum += 2 * v
			}
		}
		if qsum == 0 {
			qsum = 1e-12
		}
		// Gradient: 4 Σ_j (p_ij·exag - q_ij/qsum)·(1+|y_i-y_j|²)⁻¹·(y_i-y_j).
		for i := 0; i < n; i++ {
			for d := 0; d < cfg.OutDim; d++ {
				grad[i][d] = 0
			}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				mult := 4 * (exag*p[i][j] - q[i][j]/qsum) * q[i][j]
				for d := 0; d < cfg.OutDim; d++ {
					grad[i][d] += mult * (y[i][d] - y[j][d])
				}
			}
		}
		for i := 0; i < n; i++ {
			for d := 0; d < cfg.OutDim; d++ {
				vel[i][d] = cfg.Momentum*vel[i][d] - cfg.LearningRate*grad[i][d]
				y[i][d] += vel[i][d]
			}
		}
	}
	return y
}

// jointProbabilities builds the symmetrized high-dimensional affinity
// matrix with per-point bandwidths calibrated to the target perplexity by
// bisection.
func jointProbabilities(x [][]float64, perplexity float64) [][]float64 {
	n := len(x)
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i != j {
				dd := euclid(x[i], x[j])
				d2[i][j] = dd * dd
			}
		}
	}
	logPerp := math.Log(perplexity)
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
	}
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := 1e-20, 1e20
		beta := 1.0
		for bis := 0; bis < 50; bis++ {
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				row[j] = math.Exp(-d2[i][j] * beta)
				sum += row[j]
			}
			if sum == 0 {
				sum = 1e-12
			}
			// Shannon entropy of the conditional distribution.
			var h float64
			for j := 0; j < n; j++ {
				if row[j] > 0 {
					pj := row[j] / sum
					h -= pj * math.Log(pj)
				}
			}
			if math.Abs(h-logPerp) < 1e-5 {
				break
			}
			if h > logPerp {
				lo = beta
				if hi > 1e19 {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				beta = (beta + lo) / 2
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			row[j] = math.Exp(-d2[i][j] * beta)
			sum += row[j]
		}
		if sum == 0 {
			sum = 1e-12
		}
		for j := 0; j < n; j++ {
			p[i][j] = row[j] / sum
		}
	}
	// Symmetrize and normalize.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (p[i][j] + p[j][i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			p[i][j] = v
			p[j][i] = v
		}
		p[i][i] = 0
	}
	return p
}
