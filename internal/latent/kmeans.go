package latent

import (
	"math"

	"impeccable/internal/xrand"
)

// KMeansResult holds a clustering of latent points.
type KMeansResult struct {
	Centroids [][]float64
	Assign    []int   // cluster index per point
	Inertia   float64 // sum of squared distances to assigned centroids
}

// KMeans clusters the rows of x into k clusters with k-means++
// initialization and Lloyd iterations. Used to identify "kinetically and
// energetically coherent conformational substates" from embeddings
// (§3.2 S2).
func KMeans(x [][]float64, k, iters int, seed uint64) KMeansResult {
	n := len(x)
	if n == 0 || k <= 0 {
		return KMeansResult{}
	}
	if k > n {
		k = n
	}
	dim := len(x[0])
	r := xrand.New(seed)

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := r.Intn(n)
	centroids = append(centroids, append([]float64(nil), x[first]...))
	minD2 := make([]float64, n)
	for i := range minD2 {
		minD2[i] = sq(euclid(x[i], centroids[0]))
	}
	for len(centroids) < k {
		var total float64
		for _, d := range minD2 {
			total += d
		}
		var pick int
		if total == 0 {
			pick = r.Intn(n)
		} else {
			t := r.Float64() * total
			for i, d := range minD2 {
				t -= d
				if t < 0 {
					pick = i
					break
				}
			}
		}
		c := append([]float64(nil), x[pick]...)
		centroids = append(centroids, c)
		for i := range minD2 {
			if d := sq(euclid(x[i], c)); d < minD2[i] {
				minD2[i] = d
			}
		}
	}

	assign := make([]int, n)
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d := sq(euclid(x[i], centroids[c])); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		for c := 0; c < k; c++ {
			counts[c] = 0
			for d := 0; d < dim; d++ {
				centroids[c][d] = 0
			}
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				centroids[c][d] += x[i][d]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centroids[c], x[r.Intn(n)])
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] /= float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	var inertia float64
	for i := 0; i < n; i++ {
		inertia += sq(euclid(x[i], centroids[assign[i]]))
	}
	return KMeansResult{Centroids: centroids, Assign: assign, Inertia: inertia}
}

func sq(x float64) float64 { return x * x }
