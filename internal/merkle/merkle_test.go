package merkle

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"
)

// leafset builds n distinct 32-byte leaves.
func leafset(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		h := sha256.Sum256([]byte(fmt.Sprintf("leaf-%d", i)))
		out[i] = h[:]
	}
	return out
}

func TestEmptyAndSingleRoots(t *testing.T) {
	empty := sha256.Sum256([]byte{0x00})
	if !bytes.Equal(Root(nil), empty[:]) {
		t.Fatal("empty root is not H(0x00)")
	}
	leaves := leafset(1)
	if !bytes.Equal(Root(leaves), leaves[0]) {
		t.Fatal("single-leaf root must be the leaf itself")
	}
	if bytes.Equal(Root(nil), Root(leaves)) {
		t.Fatal("empty and single-leaf roots collide")
	}
}

func TestRootDependsOnEveryLeafAndOrder(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 7, 8, 9, 33} {
		leaves := leafset(n)
		root := Root(leaves)
		// Flip one bit in each leaf in turn: the root must move.
		for i := range leaves {
			mut := leafset(n)
			mut[i][0] ^= 0x80
			if bytes.Equal(Root(mut), root) {
				t.Fatalf("n=%d: root ignores leaf %d", n, i)
			}
		}
		// Swapping two leaves must move the root (position matters).
		if n >= 2 {
			sw := leafset(n)
			sw[0], sw[n-1] = sw[n-1], sw[0]
			if bytes.Equal(Root(sw), root) {
				t.Fatalf("n=%d: root ignores leaf order", n)
			}
		}
	}
}

func TestRootIsDeterministic(t *testing.T) {
	leaves := leafset(13)
	if !bytes.Equal(Root(leaves), Root(leafset(13))) {
		t.Fatal("same leaves, different roots")
	}
}

func TestProofsVerifyAtEverySizeAndIndex(t *testing.T) {
	for n := 1; n <= 17; n++ {
		leaves := leafset(n)
		root := Root(leaves)
		for i := 0; i < n; i++ {
			proof := Proof(leaves, i)
			if proof == nil {
				t.Fatalf("n=%d i=%d: nil proof", n, i)
			}
			if !Verify(root, leaves[i], proof) {
				t.Fatalf("n=%d i=%d: proof does not verify", n, i)
			}
			// A tampered leaf must fail against the honest proof.
			bad := append([]byte(nil), leaves[i]...)
			bad[5] ^= 0x01
			if Verify(root, bad, proof) {
				t.Fatalf("n=%d i=%d: tampered leaf verified", n, i)
			}
			// The proof must not verify a different position's leaf.
			if n > 1 {
				other := leaves[(i+1)%n]
				if Verify(root, other, proof) {
					t.Fatalf("n=%d i=%d: proof verified the wrong leaf", n, i)
				}
			}
		}
	}
}

func TestProofOutOfRange(t *testing.T) {
	leaves := leafset(4)
	if Proof(leaves, -1) != nil || Proof(leaves, 4) != nil {
		t.Fatal("out-of-range index returned a proof")
	}
}

func TestTamperedProofStepFails(t *testing.T) {
	leaves := leafset(8)
	root := Root(leaves)
	proof := Proof(leaves, 3)
	proof[1].Hash = append([]byte(nil), proof[1].Hash...)
	proof[1].Hash[0] ^= 0xff
	if Verify(root, leaves[3], proof) {
		t.Fatal("tampered proof step verified")
	}
}

// TestLeafCannotImpersonateInterior: the 0x01 domain prefix means a
// leaf crafted as the concatenation of two child hashes does not hash
// like the parent node.
func TestLeafCannotImpersonateInterior(t *testing.T) {
	leaves := leafset(2)
	root := Root(leaves)
	concat := append(append([]byte(nil), leaves[0]...), leaves[1]...)
	forged := sha256.Sum256(concat)
	if bytes.Equal(root, forged[:]) {
		t.Fatal("interior node is an unprefixed hash of its children")
	}
}
