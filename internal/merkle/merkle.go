// Package merkle builds Merkle trees over campaign event-hash chains
// and produces logarithmic inclusion proofs, giving the journal's
// provenance records a single tamper-evident commitment per campaign:
// the root recorded at terminal time covers every lifecycle event that
// produced the result, and any single event's membership is checkable
// without shipping the whole history.
//
// Tree shape: leaves are already hashes (the per-event chain hashes),
// so they enter the tree as-is. Interior nodes are
// SHA-256(0x01 || left || right); an odd node at any level is promoted
// unchanged to the next level (no duplication, so proofs stay minimal
// and two different leaf multisets cannot share a root by padding).
// The empty tree's root is SHA-256(0x00), distinct from every
// single-leaf root.
package merkle

import (
	"bytes"
	"crypto/sha256"
)

// interiorPrefix domain-separates interior nodes from leaf input, so a
// crafted leaf equal to a 64-byte concatenation cannot impersonate an
// interior node.
const interiorPrefix = 0x01

// Root reduces the leaf hashes to the tree's root. Leaves are used
// verbatim (they are hashes already); Root(nil) is SHA-256(0x00).
func Root(leaves [][]byte) []byte {
	if len(leaves) == 0 {
		empty := sha256.Sum256([]byte{0x00})
		return empty[:]
	}
	level := make([][]byte, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i]) // odd node promotes
				break
			}
			next = append(next, interior(level[i], level[i+1]))
		}
		level = next
	}
	return level[0]
}

// interior hashes one parent node from its two children.
func interior(left, right []byte) []byte {
	h := sha256.New()
	h.Write([]byte{interiorPrefix})
	h.Write(left)
	h.Write(right)
	return h.Sum(nil)
}

// ProofStep is one sibling on the path from a leaf to the root. Left
// reports which side the sibling combines on: true means the sibling
// is the left child (the proven node is the right one).
type ProofStep struct {
	Hash []byte
	Left bool
}

// Proof returns the inclusion proof for leaves[index]: the sibling
// path whose successive combination with the leaf reproduces Root.
// Returns nil for an out-of-range index. A promoted odd node
// contributes no step at that level.
func Proof(leaves [][]byte, index int) []ProofStep {
	if index < 0 || index >= len(leaves) {
		return nil
	}
	steps := []ProofStep{} // single-leaf tree: empty but valid proof
	level := make([][]byte, len(leaves))
	copy(level, leaves)
	pos := index
	for len(level) > 1 {
		var next [][]byte
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i]) // odd node promotes, no step
				break
			}
			switch pos {
			case i:
				steps = append(steps, ProofStep{Hash: level[i+1], Left: false})
			case i + 1:
				steps = append(steps, ProofStep{Hash: level[i], Left: true})
			}
			next = append(next, interior(level[i], level[i+1]))
		}
		pos /= 2
		level = next
	}
	return steps
}

// Verify reports whether the proof connects leaf to root.
func Verify(root, leaf []byte, proof []ProofStep) bool {
	cur := leaf
	for _, step := range proof {
		if step.Left {
			cur = interior(step.Hash, cur)
		} else {
			cur = interior(cur, step.Hash)
		}
	}
	return bytes.Equal(cur, root)
}
