package md

import (
	"math"

	"impeccable/internal/geom"
)

// Energies decomposes the potential energy of a configuration into the
// components the ESMACS MMPBSA-style estimator consumes.
type Energies struct {
	ProteinInternal float64 // bonds + elastic-network restraints
	LigandInternal  float64 // ligand bonds and shape springs
	Inter           float64 // protein-ligand interaction (wells, repulsion, clash)
	Potential       float64 // sum of the above
}

// Forces computes -∇E into s.forceBuf and returns the energy
// decomposition. The returned slice is owned by the System and valid
// until the next Forces call.
func (s *System) Forces() ([]geom.Vec3, Energies) {
	f := s.forceBuf
	for i := range f {
		f[i] = geom.Vec3{}
	}
	var e Energies

	// --- Protein internal ---
	// Elastic-network anchors.
	kr := s.Par.ProteinRestraintK
	for i := 0; i < s.NProt; i++ {
		d := s.Pos[i].Sub(s.proteinRef[i])
		e.ProteinInternal += 0.5 * kr * d.Norm2()
		f[i] = f[i].Sub(d.Scale(kr))
	}
	// Cα-Cα virtual bonds.
	kb := s.Par.ProteinBondK
	for i := 0; i+1 < s.NProt; i++ {
		e.ProteinInternal += spring(s.Pos, f, i, i+1, s.protBond0[i], kb)
	}

	// --- Ligand internal ---
	lig := s.NProt
	klb := s.Par.LigandBondK
	for i := 0; i+1 < s.NLig; i++ {
		e.LigandInternal += spring(s.Pos, f, lig+i, lig+i+1, s.ligBond0[i], klb)
	}
	kla := s.Par.LigandAngleK
	for i := 0; i+2 < s.NLig; i++ {
		e.LigandInternal += spring(s.Pos, f, lig+i, lig+i+2, s.ligAngle0[i], kla)
	}

	// --- Protein-ligand interaction ---
	// Soft-core repulsion between Cα beads and ligand beads.
	kRep := s.Par.RepulsionK
	pr := s.Par.ProteinRadius
	for i := 0; i < s.NProt; i++ {
		for j := 0; j < s.NLig; j++ {
			jj := lig + j
			rc := pr + s.Conf.Beads[j].Radius
			d := s.Pos[i].Dist(s.Pos[jj])
			if d >= rc || d == 0 {
				continue
			}
			ov := rc - d
			e.Inter += kRep * ov * ov
			dir := s.Pos[jj].Sub(s.Pos[i]).Scale(1 / d)
			push := dir.Scale(2 * kRep * ov)
			f[jj] = f[jj].Add(push)
			f[i] = f[i].Sub(push)
		}
	}
	// Subsite attraction (same wells/depths as the docking score).
	ws := s.Par.WellScale
	for j := 0; j < s.NLig; j++ {
		jj := lig + j
		class := s.Conf.Beads[j].Class
		for w := range s.wells {
			well := &s.wells[w]
			depth := ws * s.depths[w][class]
			diff := s.Pos[jj].Sub(well.Pos)
			d2 := diff.Norm2()
			sig2 := well.Sigma * well.Sigma
			g := math.Exp(-d2 / (2 * sig2))
			e.Inter -= depth * g
			// F = -∇E = -depth*g*(diff/sig2)  (attractive toward well)
			f[jj] = f[jj].Sub(diff.Scale(depth * g / sig2))
		}
	}
	// Protein-body clash keeps the ligand in cavity or solvent.
	kc := s.Par.BodyClashK
	for j := 0; j < s.NLig; j++ {
		jj := lig + j
		pen := s.Target.BodyPenetration(s.Pos[jj])
		if pen <= 0 {
			continue
		}
		e.Inter += kc * pen * pen
		f[jj] = f[jj].Add(penetrationGradient(s, s.Pos[jj]).Scale(-2 * kc * pen))
	}

	e.Potential = e.ProteinInternal + e.LigandInternal + e.Inter
	return f, e
}

// spring accumulates a harmonic bond between beads a and b with rest
// length r0 and stiffness k; returns the bond energy.
func spring(pos, f []geom.Vec3, a, b int, r0, k float64) float64 {
	d := pos[b].Sub(pos[a])
	r := d.Norm()
	if r == 0 {
		return 0
	}
	dr := r - r0
	dir := d.Scale(1 / r)
	fv := dir.Scale(k * dr) // force on a toward b when stretched
	f[a] = f[a].Add(fv)
	f[b] = f[b].Sub(fv)
	return 0.5 * k * dr * dr
}

// penetrationGradient returns ∇pen(x) for the receptor body-penetration
// measure: pen = min(R - |x|, dcav - pr) on its support.
func penetrationGradient(s *System, x geom.Vec3) geom.Vec3 {
	R := s.Target.SurfaceRadius()
	pc := s.Target.PocketCenter()
	prad := s.Target.PocketRadius()
	d := x.Norm()
	if d >= R {
		return geom.Vec3{}
	}
	cav := x.Dist(pc)
	if cav <= prad {
		return geom.Vec3{}
	}
	penSurf := R - d
	penWall := cav - prad
	if penWall < penSurf {
		// pen = |x - pc| - prad, ∇ = unit(x - pc)
		return x.Sub(pc).Unit()
	}
	// pen = R - |x|, ∇ = -x̂
	return x.Unit().Scale(-1)
}

// PotentialEnergy returns the decomposition without touching forces
// (convenience for estimators that only need energies).
func (s *System) PotentialEnergy() Energies {
	_, e := s.Forces()
	return e
}

// KineticEnergy returns ½ Σ m v².
func (s *System) KineticEnergy() float64 {
	var ke float64
	for i := range s.Vel {
		ke += 0.5 * s.Mass[i] * s.Vel[i].Norm2()
	}
	return ke
}
