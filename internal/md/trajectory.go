package md

import (
	"impeccable/internal/geom"
	"impeccable/internal/xrand"
)

// Frame is one saved trajectory snapshot.
type Frame struct {
	Step       int
	Protein    []geom.Vec3 // Cα coordinates (the AAE point cloud input)
	Ligand     []geom.Vec3
	E          Energies
	LigandRMSD float64 // vs the starting pose
	Contacts   int     // protein-ligand contacts within ContactCutoff
}

// ContactCutoff is the heavy-atom contact distance (Å) used for the LPC
// stability measure.
const ContactCutoff = 5.0

// Trajectory is an ordered sequence of frames from one replica.
type Trajectory struct {
	MolID  uint64
	Frames []Frame
}

// RunConfig drives a single simulation segment.
type RunConfig struct {
	Steps      int  // number of integration steps
	SampleEach int  // save a frame every this many steps (0 = no frames)
	Record     bool // whether to record frames at all
}

// Run advances the system, recording frames per cfg, and returns the
// trajectory (empty if Record is false).
func Run(s *System, in Integrator, cfg RunConfig, r *xrand.RNG) *Trajectory {
	tr := &Trajectory{MolID: s.Mol.ID}
	for step := 1; step <= cfg.Steps; step++ {
		e := in.Step(s, r)
		if cfg.Record && cfg.SampleEach > 0 && step%cfg.SampleEach == 0 {
			tr.Frames = append(tr.Frames, Frame{
				Step:       step,
				Protein:    s.ProteinPos(),
				Ligand:     s.LigandPos(),
				E:          e,
				LigandRMSD: s.LigandRMSD(),
				Contacts:   s.ContactCount(ContactCutoff),
			})
		}
	}
	return tr
}

// MeanInterEnergy returns the trajectory-average protein-ligand
// interaction energy (the MMPBSA-style enthalpic core).
func (t *Trajectory) MeanInterEnergy() float64 {
	if len(t.Frames) == 0 {
		return 0
	}
	var s float64
	for _, fr := range t.Frames {
		s += fr.E.Inter
	}
	return s / float64(len(t.Frames))
}

// MeanRMSD returns the trajectory-average ligand RMSD.
func (t *Trajectory) MeanRMSD() float64 {
	if len(t.Frames) == 0 {
		return 0
	}
	var s float64
	for _, fr := range t.Frames {
		s += fr.LigandRMSD
	}
	return s / float64(len(t.Frames))
}

// MaxRMSD returns the maximum ligand RMSD over the trajectory.
func (t *Trajectory) MaxRMSD() float64 {
	var m float64
	for _, fr := range t.Frames {
		if fr.LigandRMSD > m {
			m = fr.LigandRMSD
		}
	}
	return m
}
