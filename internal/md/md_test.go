package md

import (
	"math"
	"testing"

	"impeccable/internal/chem"
	"impeccable/internal/geom"
	"impeccable/internal/receptor"
	"impeccable/internal/xrand"
)

func newTestSystem(molID uint64) *System {
	return NewSystem(receptor.PLPro(), chem.FromID(molID), nil)
}

func TestSystemLayout(t *testing.T) {
	s := newTestSystem(1)
	if s.NProt != receptor.BackboneLen {
		t.Fatalf("NProt = %d", s.NProt)
	}
	if s.NLig != len(s.Conf.Beads) {
		t.Fatalf("NLig = %d", s.NLig)
	}
	if s.N() != len(s.Pos) || s.N() != len(s.Vel) || s.N() != len(s.Mass) {
		t.Fatal("slice lengths inconsistent")
	}
}

func TestForcesMatchEnergyGradient(t *testing.T) {
	// F = -∇E, verified by central differences on a random subset of
	// coordinates. This is the master correctness check for the force
	// field.
	s := newTestSystem(3)
	// Perturb ligand into a generic (non-symmetric) configuration.
	r := xrand.New(1)
	for i := range s.Pos {
		s.Pos[i] = s.Pos[i].Add(geom.Vec3{
			X: r.Norm(0, 0.05), Y: r.Norm(0, 0.05), Z: r.Norm(0, 0.05)})
	}
	f, _ := s.Forces()
	fcopy := append([]geom.Vec3(nil), f...)
	const h = 1e-6
	checks := []int{0, 5, s.NProt - 1, s.NProt, s.NProt + 1, s.N() - 1}
	for _, i := range checks {
		for axis := 0; axis < 3; axis++ {
			orig := s.Pos[i]
			bump := geom.Vec3{}
			switch axis {
			case 0:
				bump.X = h
			case 1:
				bump.Y = h
			case 2:
				bump.Z = h
			}
			s.Pos[i] = orig.Add(bump)
			_, ep := s.Forces()
			s.Pos[i] = orig.Sub(bump)
			_, em := s.Forces()
			s.Pos[i] = orig
			fd := -(ep.Potential - em.Potential) / (2 * h)
			var got float64
			switch axis {
			case 0:
				got = fcopy[i].X
			case 1:
				got = fcopy[i].Y
			case 2:
				got = fcopy[i].Z
			}
			if math.Abs(fd-got) > 1e-3*(1+math.Abs(fd)) {
				t.Fatalf("bead %d axis %d: force %v, -dE/dx %v", i, axis, got, fd)
			}
		}
	}
}

func TestEnergyConservationZeroFriction(t *testing.T) {
	// With Gamma=0 BAOAB is velocity Verlet; total energy drift over a
	// short run must be small relative to the energy scale.
	s := newTestSystem(5)
	in := Integrator{Dt: 0.002, Gamma: 0, KT: 0}
	r := xrand.New(2)
	// Small random velocities.
	for i := range s.Vel {
		s.Vel[i] = geom.Vec3{X: r.Norm(0, 0.1), Y: r.Norm(0, 0.1), Z: r.Norm(0, 0.1)}
	}
	_, e0 := s.Forces()
	total0 := e0.Potential + s.KineticEnergy()
	for step := 0; step < 2000; step++ {
		in.Step(s, r)
	}
	_, e1 := s.Forces()
	total1 := e1.Potential + s.KineticEnergy()
	drift := math.Abs(total1 - total0)
	if drift > 0.02*(math.Abs(total0)+1) {
		t.Fatalf("energy drift %v (from %v to %v)", drift, total0, total1)
	}
}

func TestThermostatEquipartition(t *testing.T) {
	// Long Langevin run must equilibrate kinetic energy to (3/2) N kT.
	s := newTestSystem(7)
	in := Integrator{Dt: 0.01, Gamma: 2, KT: 0.6}
	r := xrand.New(3)
	in.InitVelocities(s, r)
	// Equilibrate then average.
	for i := 0; i < 500; i++ {
		in.Step(s, r)
	}
	var keSum float64
	const samples = 500
	for i := 0; i < samples; i++ {
		in.Step(s, r)
		keSum += s.KineticEnergy()
	}
	meanKE := keSum / samples
	wantKE := 1.5 * float64(s.N()) * in.KT
	if math.Abs(meanKE-wantKE) > 0.15*wantKE {
		t.Fatalf("mean KE = %v, equipartition predicts %v", meanKE, wantKE)
	}
}

func TestMinimizeReducesEnergy(t *testing.T) {
	s := newTestSystem(9)
	r := xrand.New(4)
	for i := s.NProt; i < s.N(); i++ {
		s.Pos[i] = s.Pos[i].Add(geom.Vec3{X: r.Norm(0, 0.5), Y: r.Norm(0, 0.5), Z: r.Norm(0, 0.5)})
	}
	_, e0 := s.Forces()
	final := Minimize(s, 200, 1e-3)
	if final >= e0.Potential {
		t.Fatalf("minimization failed: %v -> %v", e0.Potential, final)
	}
}

func TestLigandStaysNearPocket(t *testing.T) {
	// A thermostatted run must not eject the ligand from the pocket
	// region (the clash+box landscape should confine it).
	s := newTestSystem(11)
	in := DefaultIntegrator()
	r := xrand.New(5)
	in.InitVelocities(s, r)
	Run(s, in, RunConfig{Steps: 2000}, r)
	if d := s.PocketDepth(); d > s.Target.SurfaceRadius() {
		t.Fatalf("ligand drifted %v Å from pocket", d)
	}
}

func TestRunRecordsFrames(t *testing.T) {
	s := newTestSystem(13)
	in := DefaultIntegrator()
	r := xrand.New(6)
	tr := Run(s, in, RunConfig{Steps: 100, SampleEach: 10, Record: true}, r)
	if len(tr.Frames) != 10 {
		t.Fatalf("frames = %d, want 10", len(tr.Frames))
	}
	for _, fr := range tr.Frames {
		if len(fr.Protein) != s.NProt || len(fr.Ligand) != s.NLig {
			t.Fatal("frame coordinate counts wrong")
		}
		if fr.LigandRMSD < 0 || math.IsNaN(fr.LigandRMSD) {
			t.Fatalf("bad RMSD %v", fr.LigandRMSD)
		}
	}
	if tr.MeanRMSD() <= 0 {
		t.Fatalf("MeanRMSD = %v, expected thermal motion", tr.MeanRMSD())
	}
	if tr.MaxRMSD() < tr.MeanRMSD() {
		t.Fatal("MaxRMSD < MeanRMSD")
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func() float64 {
		s := newTestSystem(15)
		in := DefaultIntegrator()
		r := xrand.New(7)
		in.InitVelocities(s, r)
		tr := Run(s, in, RunConfig{Steps: 50, SampleEach: 50, Record: true}, r)
		return tr.Frames[0].E.Potential
	}
	if mk() != mk() {
		t.Fatal("MD not deterministic under fixed seed")
	}
}

func TestContactCountBehaviour(t *testing.T) {
	s := newTestSystem(17)
	in := s.ContactCount(ContactCutoff)
	// Move ligand far into solvent: contacts drop to zero.
	for i := s.NProt; i < s.N(); i++ {
		s.Pos[i] = s.Pos[i].Add(geom.Vec3{X: 50})
	}
	if out := s.ContactCount(ContactCutoff); out != 0 {
		t.Fatalf("solvent contacts = %d", out)
	}
	if in < 0 {
		t.Fatalf("pocket contacts = %d", in)
	}
}

func TestBetterBinderLowerInterEnergy(t *testing.T) {
	// Molecules with better ground-truth affinity should show lower
	// average interaction energy in equilibrium MD — the causal channel
	// behind CG-ESMACS ranking (Fig. 5A).
	tg := receptor.PLPro()
	r := xrand.New(8)
	type rec struct{ truth, inter float64 }
	var recs []rec
	for i := 0; i < 12; i++ {
		m := chem.FromID(r.Uint64())
		s := NewSystem(tg, m, nil)
		Minimize(s, 50, 1e-2)
		in := DefaultIntegrator()
		rr := xrand.NewFrom(100, uint64(i))
		in.InitVelocities(s, rr)
		Run(s, in, RunConfig{Steps: 300}, rr) // equilibrate
		tr := Run(s, in, RunConfig{Steps: 500, SampleEach: 25, Record: true}, rr)
		recs = append(recs, rec{tg.TrueAffinity(m), tr.MeanInterEnergy()})
	}
	var sx, sy, sxx, syy, sxy float64
	for _, x := range recs {
		sx += x.truth
		sy += x.inter
		sxx += x.truth * x.truth
		syy += x.inter * x.inter
		sxy += x.truth * x.inter
	}
	n := float64(len(recs))
	corr := (sxy/n - sx/n*sy/n) / math.Sqrt((sxx/n-sx/n*sx/n)*(syy/n-sy/n*sy/n))
	if corr < 0.2 {
		t.Fatalf("truth/inter-energy correlation = %v, want positive", corr)
	}
	t.Logf("truth vs mean inter-energy correlation = %.3f", corr)
}

func TestFlopsPerStepPositive(t *testing.T) {
	if newTestSystem(1).FlopsPerStep() <= 0 {
		t.Fatal("FlopsPerStep must be positive")
	}
}

func BenchmarkStep(b *testing.B) {
	s := newTestSystem(1)
	in := DefaultIntegrator()
	r := xrand.New(1)
	in.InitVelocities(s, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Step(s, r)
	}
}

func BenchmarkForces(b *testing.B) {
	s := newTestSystem(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Forces()
	}
}
