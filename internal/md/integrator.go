package md

import (
	"math"

	"impeccable/internal/geom"
	"impeccable/internal/xrand"
)

// Integrator advances a System with the BAOAB Langevin splitting. With
// Gamma == 0 the O-step is the identity and the scheme is exactly
// velocity Verlet (symplectic, energy-conserving), which the test suite
// exploits as a force-field correctness check.
type Integrator struct {
	Dt    float64 // time step (reduced units; "1 fs" at CG fidelity)
	Gamma float64 // friction (1/time)
	KT    float64 // thermal energy (kcal/mol)
}

// DefaultIntegrator returns the production thermostat: dt 0.01, friction
// 1.0, kT 0.6 (≈300 K in kcal/mol).
func DefaultIntegrator() Integrator {
	return Integrator{Dt: 0.01, Gamma: 1.0, KT: 0.6}
}

// Step advances the system by one BAOAB step.
func (in Integrator) Step(s *System, r *xrand.RNG) Energies {
	dt := in.Dt
	f, e := s.Forces()
	// B: half kick.
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Add(f[i].Scale(dt / 2 / s.Mass[i]))
	}
	// A: half drift.
	for i := range s.Pos {
		s.Pos[i] = s.Pos[i].Add(s.Vel[i].Scale(dt / 2))
	}
	// O: Ornstein-Uhlenbeck velocity refresh.
	if in.Gamma > 0 {
		c1 := math.Exp(-in.Gamma * dt)
		c2 := math.Sqrt(1 - c1*c1)
		for i := range s.Vel {
			sigma := math.Sqrt(in.KT / s.Mass[i])
			noise := geom.Vec3{
				X: r.NormFloat64(),
				Y: r.NormFloat64(),
				Z: r.NormFloat64(),
			}.Scale(sigma * c2)
			s.Vel[i] = s.Vel[i].Scale(c1).Add(noise)
		}
	}
	// A: half drift.
	for i := range s.Pos {
		s.Pos[i] = s.Pos[i].Add(s.Vel[i].Scale(dt / 2))
	}
	// B: half kick with fresh forces.
	f, e = s.Forces()
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Add(f[i].Scale(dt / 2 / s.Mass[i]))
	}
	return e
}

// InitVelocities draws Maxwell-Boltzmann velocities at temperature KT.
func (in Integrator) InitVelocities(s *System, r *xrand.RNG) {
	for i := range s.Vel {
		sigma := math.Sqrt(in.KT / s.Mass[i])
		s.Vel[i] = geom.Vec3{
			X: r.Norm(0, sigma),
			Y: r.Norm(0, sigma),
			Z: r.Norm(0, sigma),
		}
	}
}

// Minimize relaxes the system with damped steepest descent for at most
// maxIters steps or until the force norm drops below ftol. It returns the
// final potential energy. This is the "minimization step" the paper's
// S3-CG/FG stages run before equilibration (§6.1.3, §7.2).
func Minimize(s *System, maxIters int, ftol float64) float64 {
	step := 0.02
	_, e := s.Forces()
	last := e.Potential
	for it := 0; it < maxIters; it++ {
		f, _ := s.Forces()
		var fnorm float64
		for i := range f {
			fnorm += f[i].Norm2()
		}
		fnorm = math.Sqrt(fnorm)
		if fnorm < ftol {
			break
		}
		// Cap displacement at 0.2 Å per bead per iteration.
		scale := step
		if m := maxComponent(f); m*scale > 0.2 {
			scale = 0.2 / m
		}
		for i := range s.Pos {
			s.Pos[i] = s.Pos[i].Add(f[i].Scale(scale))
		}
		_, e = s.Forces()
		if e.Potential > last {
			// Overshot: back off and shrink the step.
			for i := range s.Pos {
				s.Pos[i] = s.Pos[i].Sub(f[i].Scale(scale))
			}
			step *= 0.5
			if step < 1e-6 {
				break
			}
		} else {
			last = e.Potential
			step *= 1.1
		}
	}
	return last
}

func maxComponent(f []geom.Vec3) float64 {
	var m float64
	for i := range f {
		if n := f[i].Norm(); n > m {
			m = n
		}
	}
	return m
}
