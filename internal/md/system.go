// Package md is the molecular-dynamics substrate standing in for the
// paper's OpenMM/NAMD engines: a coarse-grained bead model of the
// protein-ligand complex (LPC) with an elastic-network protein (one bead
// per Cα, 309 for PLPro as in §7.1.3), a flexible ligand, and the same
// pocket/well interaction landscape the docking engine scores against —
// so that docking poses, MD ensembles, and free-energy estimates are
// mutually consistent observations of one hidden ground truth.
//
// Dynamics are integrated with the BAOAB Langevin splitting (Leimkuhler &
// Matthews 2013), which reduces to velocity Verlet at zero friction — the
// property the energy-conservation tests rely on.
package md

import (
	"math"

	"impeccable/internal/chem"
	"impeccable/internal/geom"
	"impeccable/internal/receptor"
)

// ForceParams are the force-field constants (kcal/mol-Å units at the
// usual coarse-grained fidelity).
type ForceParams struct {
	ProteinBondK      float64 // Cα-Cα virtual bond stiffness
	ProteinRestraintK float64 // elastic-network anchor stiffness
	LigandBondK       float64 // ligand consecutive-bead bonds
	LigandAngleK      float64 // weak i,i+2 shape springs
	RepulsionK        float64 // protein-ligand soft-core repulsion
	WellScale         float64 // scale on the receptor subsite attraction
	BodyClashK        float64 // ligand-into-protein-body penalty
	ProteinRadius     float64 // effective Cα bead radius
}

// DefaultForceParams returns the standard parameterization.
func DefaultForceParams() ForceParams {
	return ForceParams{
		ProteinBondK:      20,
		ProteinRestraintK: 2.0,
		LigandBondK:       30,
		LigandAngleK:      3,
		RepulsionK:        4,
		WellScale:         1.0,
		BodyClashK:        4,
		ProteinRadius:     2.2,
	}
}

// System is a protein-ligand complex ready for dynamics. Positions are
// stored protein-first: indices [0, NProt) are Cα beads, [NProt,
// NProt+NLig) are ligand beads.
type System struct {
	Target *receptor.Target
	Mol    *chem.Molecule
	Conf   *chem.Conformer
	Par    ForceParams

	NProt, NLig int
	Pos         []geom.Vec3
	Vel         []geom.Vec3
	Mass        []float64

	proteinRef  []geom.Vec3 // elastic-network anchors
	protBond0   []float64   // reference Cα-Cα bond lengths
	ligBond0    []float64   // reference ligand bond lengths
	ligAngle0   []float64   // reference ligand i,i+2 distances
	depths      [][chem.NumBeadClasses]float64
	wells       []receptor.Well
	forceBuf    []geom.Vec3
	startLigand []geom.Vec3 // initial ligand positions, for RMSD
}

// NewSystem assembles an LPC. ligandPos gives the initial ligand bead
// positions (typically a docked pose); pass nil to place the canonical
// conformer at the pocket center.
func NewSystem(t *receptor.Target, m *chem.Molecule, ligandPos []geom.Vec3) *System {
	conf := chem.NewConformer(m)
	if ligandPos == nil {
		// Default placement: the canonical conformer shrunk to fit the
		// cavity. (The production pipeline always passes a docked pose;
		// this fallback only needs to avoid catastrophic clashes with
		// the cavity wall for elongated conformers.)
		ligandPos = conf.Apply(geom.Vec3{}, geom.IdentityQuat(),
			make([]float64, conf.NumTorsions()), nil)
		var maxR float64
		for _, p := range ligandPos {
			if r := p.Norm(); r > maxR {
				maxR = r
			}
		}
		fit := 0.8 * t.PocketRadius()
		scale := 1.0
		if maxR > fit {
			scale = fit / maxR
		}
		for i := range ligandPos {
			ligandPos[i] = ligandPos[i].Scale(scale).Add(t.PocketCenter())
		}
	}
	if len(ligandPos) != len(conf.Beads) {
		panic("md: ligand position count mismatch")
	}
	bb := t.Backbone()
	s := &System{
		Target: t,
		Mol:    m,
		Conf:   conf,
		Par:    DefaultForceParams(),
		NProt:  len(bb),
		NLig:   len(conf.Beads),
		depths: t.WellDepths(m),
		wells:  t.Wells(),
	}
	n := s.NProt + s.NLig
	s.Pos = make([]geom.Vec3, n)
	s.Vel = make([]geom.Vec3, n)
	s.Mass = make([]float64, n)
	s.proteinRef = make([]geom.Vec3, s.NProt)
	copy(s.Pos, bb)
	copy(s.proteinRef, bb)
	for i := 0; i < s.NProt; i++ {
		s.Mass[i] = 3.0 // Cα bead with side-chain mass lumped in
	}
	for i := 0; i < s.NLig; i++ {
		s.Pos[s.NProt+i] = ligandPos[i]
		s.Mass[s.NProt+i] = 1.0
	}
	s.protBond0 = make([]float64, s.NProt-1)
	for i := 0; i+1 < s.NProt; i++ {
		s.protBond0[i] = bb[i].Dist(bb[i+1])
	}
	s.ligBond0 = make([]float64, 0, s.NLig)
	for i := 0; i+1 < s.NLig; i++ {
		s.ligBond0 = append(s.ligBond0, conf.Beads[i].Pos.Dist(conf.Beads[i+1].Pos))
	}
	s.ligAngle0 = make([]float64, 0, s.NLig)
	for i := 0; i+2 < s.NLig; i++ {
		s.ligAngle0 = append(s.ligAngle0, conf.Beads[i].Pos.Dist(conf.Beads[i+2].Pos))
	}
	s.forceBuf = make([]geom.Vec3, n)
	s.startLigand = append([]geom.Vec3(nil), ligandPos...)
	return s
}

// N returns the total bead count.
func (s *System) N() int { return s.NProt + s.NLig }

// SetWellDepths overrides the (well × bead-class) depth table the pocket
// forces use. The alchemical TI stage (TIES) injects λ-interpolated
// tables here; the slice must have one row per receptor well.
func (s *System) SetWellDepths(depths [][chem.NumBeadClasses]float64) {
	if len(depths) != len(s.wells) {
		panic("md: depth table size mismatch")
	}
	s.depths = depths
}

// WellDepths returns the active depth table (one row per well).
func (s *System) WellDepths() [][chem.NumBeadClasses]float64 { return s.depths }

// WellEnergy evaluates only the subsite-attraction energy of the current
// ligand coordinates under an arbitrary depth table — the ∂U/∂λ kernel of
// thermodynamic integration (U is linear in the depths).
func (s *System) WellEnergy(depths [][chem.NumBeadClasses]float64) float64 {
	var e float64
	ws := s.Par.WellScale
	for j := 0; j < s.NLig; j++ {
		p := s.Pos[s.NProt+j]
		class := s.Conf.Beads[j].Class
		for w := range s.wells {
			well := &s.wells[w]
			d2 := p.Dist2(well.Pos)
			sig2 := well.Sigma * well.Sigma
			e -= ws * depths[w][class] * math.Exp(-d2/(2*sig2))
		}
	}
	return e
}

// LigandPos returns a copy of the current ligand bead positions.
func (s *System) LigandPos() []geom.Vec3 {
	return append([]geom.Vec3(nil), s.Pos[s.NProt:]...)
}

// ProteinPos returns a copy of the current Cα positions.
func (s *System) ProteinPos() []geom.Vec3 {
	return append([]geom.Vec3(nil), s.Pos[:s.NProt]...)
}

// LigandRMSD returns the RMSD of the current ligand coordinates to the
// starting pose (no superposition: the pocket frame is fixed).
func (s *System) LigandRMSD() float64 {
	return geom.RMSD(s.Pos[s.NProt:], s.startLigand)
}

// ProteinRMSD returns the RMSD of the Cα trace to its reference.
func (s *System) ProteinRMSD() float64 {
	return geom.RMSD(s.Pos[:s.NProt], s.proteinRef)
}

// ContactCount returns the number of protein-ligand bead pairs within
// cutoff: the paper's pragmatic LPC stability measure (§5.1.4, "number of
// heavy atom contacts between the protein and the ligand").
func (s *System) ContactCount(cutoff float64) int {
	c2 := cutoff * cutoff
	n := 0
	for i := 0; i < s.NProt; i++ {
		for j := 0; j < s.NLig; j++ {
			if s.Pos[i].Dist2(s.Pos[s.NProt+j]) <= c2 {
				n++
			}
		}
	}
	return n
}

// PocketDepth returns the distance from the ligand centroid to the pocket
// center (smaller = deeper insertion).
func (s *System) PocketDepth() float64 {
	return geom.Centroid(s.Pos[s.NProt:]).Dist(s.Target.PocketCenter())
}

// FlopsPerStep estimates floating-point operations for one force+integrate
// step, for Table 2/3 accounting: protein-ligand pairs dominate.
func (s *System) FlopsPerStep() int64 {
	pl := int64(s.NProt) * int64(s.NLig) * 30
	wells := int64(s.NLig) * int64(len(s.wells)) * 45
	bonded := int64(s.NProt+2*s.NLig) * 25
	integ := int64(s.N()) * 60
	return pl + wells + bonded + integ
}
