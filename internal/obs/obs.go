// Package obs is a dependency-free metrics library exposing the
// Prometheus text exposition format (version 0.0.4). The service layer
// was nearly blind under load — rich counters existed (cache hit
// rates, per-state job tallies, per-stage funnel windows) but never
// left the process. This package gives them a wire format any scraper
// understands, without pulling a client library into a reproduction
// that deliberately builds from the standard library alone.
//
// The model is a small subset of the Prometheus one:
//
//   - Counter / CounterVec: monotonically increasing float64s.
//   - Gauge / GaugeVec: arbitrary float64s; GaugeFunc reads a value at
//     scrape time.
//   - Histogram / HistogramVec: cumulative-bucket observations with
//     _bucket/_sum/_count series.
//
// A Registry owns one family per metric name and renders them sorted
// with WriteTo (the /metrics handler) or structurally with Collect
// (tests, programmatic checks). OnCollect hooks run before either, so
// metrics mirrored from externally maintained state (queue depths,
// cache shard counters) are refreshed per scrape instead of per event.
//
// Validate checks a rendered exposition against the text-format
// grammar — the conformance tests and the cluster-smoke CI scrape both
// go through it.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric type strings as they appear on "# TYPE" lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// DefBuckets are the default latency histogram bounds, in seconds:
// sub-millisecond fsyncs through multi-minute campaign stages.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// labelSep joins label values into a series key. 0xff never appears in
// valid UTF-8 label values' bytes... it can inside arbitrary strings,
// so pair it with 0xfe to make collisions practically impossible.
const labelSep = "\xff\xfe"

// Counter is a monotonically increasing value.
type Counter struct{ bits atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative deltas are ignored
// (counters are monotone by contract).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Set overwrites the counter's value. It exists for scrape-time
// mirroring of monotonic counts maintained elsewhere (cache shard
// atomics, scheduler tallies); event-driven counters should use
// Inc/Add. Regressing values are ignored so a mirror can never make
// the exposed counter run backwards.
func (c *Counter) Set(v float64) {
	for {
		old := c.bits.Load()
		if v < math.Float64frombits(old) {
			return
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (negative to decrease).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	upper   []float64 // strictly increasing upper bounds, +Inf implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	// Drop duplicates and a trailing +Inf (implicit).
	dedup := up[:0]
	for _, b := range up {
		if math.IsInf(b, +1) {
			continue
		}
		if len(dedup) == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{upper: dedup, counts: make([]atomic.Int64, len(dedup))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// vec is the shared label→child machinery behind the *Vec types.
type vec[T any] struct {
	labels []string
	newFn  func() *T

	mu sync.Mutex
	m  map[string]*T
	// keys remembers each child's label values for rendering.
	keys map[string][]string
}

func newVec[T any](labels []string, newFn func() *T) *vec[T] {
	return &vec[T]{labels: labels, newFn: newFn, m: map[string]*T{}, keys: map[string][]string{}}
}

func (v *vec[T]) with(values []string) *T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: metric expects %d label values (%v), got %d (%v)",
			len(v.labels), v.labels, len(values), values))
	}
	k := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	child, ok := v.m[k]
	if !ok {
		child = v.newFn()
		v.m[k] = child
		v.keys[k] = append([]string(nil), values...)
	}
	return child
}

// children snapshots the (labelValues, child) pairs sorted by key.
func (v *vec[T]) children() [][2]any {
	v.mu.Lock()
	defer v.mu.Unlock()
	ks := make([]string, 0, len(v.m))
	for k := range v.m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	out := make([][2]any, 0, len(ks))
	for _, k := range ks {
		out = append(out, [2]any{v.keys[k], v.m[k]})
	}
	return out
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ v *vec[Counter] }

// With returns (creating on first use) the counter for the label values.
func (c *CounterVec) With(values ...string) *Counter { return c.v.with(values) }

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct{ v *vec[Gauge] }

// With returns (creating on first use) the gauge for the label values.
func (g *GaugeVec) With(values ...string) *Gauge { return g.v.with(values) }

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct {
	v       *vec[Histogram]
	buckets []float64
}

// With returns (creating on first use) the histogram for the label values.
func (h *HistogramVec) With(values ...string) *Histogram { return h.v.with(values) }

// family is one registered metric name: its metadata plus whichever
// concrete holder backs it.
type family struct {
	name, help, typ string
	labels          []string

	counter    *Counter
	gauge      *Gauge
	gaugeFn    func() float64
	histogram  *Histogram
	counterVec *CounterVec
	gaugeVec   *GaugeVec
	histVec    *HistogramVec
}

// Registry owns a set of metric families and renders them in the
// Prometheus text exposition format. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order; rendering sorts by name
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register adds a family or panics on a duplicate/invalid name —
// metric registration is programmer-controlled, so both are bugs.
func (r *Registry) register(f *family) {
	if !validMetricName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: metric %s has invalid label name %q", f.name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	r.families[f.name] = f
	r.order = append(r.order, f.name)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: typeCounter, counter: c})
	return c
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{v: newVec(labels, func() *Counter { return &Counter{} })}
	r.register(&family{name: name, help: help, typ: typeCounter, labels: labels, counterVec: cv})
	return cv
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: typeGauge, gauge: g})
	return g
}

// GaugeVec registers and returns a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	gv := &GaugeVec{v: newVec(labels, func() *Gauge { return &Gauge{} })}
	r.register(&family{name: name, help: help, typ: typeGauge, labels: labels, gaugeVec: gv})
	return gv
}

// GaugeFunc registers a gauge whose value is read at collection time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: typeGauge, gaugeFn: fn})
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (nil = DefBuckets; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(&family{name: name, help: help, typ: typeHistogram, histogram: h})
	return h
}

// HistogramVec registers and returns a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	b := append([]float64(nil), buckets...)
	hv := &HistogramVec{buckets: b, v: newVec(labels, func() *Histogram { return newHistogram(b) })}
	r.register(&family{name: name, help: help, typ: typeHistogram, labels: labels, histVec: hv})
	return hv
}

// OnCollect registers a hook run before every Collect/WriteTo, for
// refreshing metrics mirrored from external state at scrape time.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// Sample is one rendered series: full series name (bucket/sum/count
// suffixes applied), label pairs in render order, and the value.
type Sample struct {
	Name   string
	Labels [][2]string
	Value  float64
}

// Family is the structural form of one metric family at collection
// time.
type Family struct {
	Name, Help, Type string
	Samples          []Sample
}

// Collect runs the OnCollect hooks and snapshots every family, sorted
// by name, with vec children sorted by label values.
func (r *Registry) Collect() []Family {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	names := append([]string{}, r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.collect())
	}
	return out
}

// collect renders one family's samples.
func (f *family) collect() Family {
	fam := Family{Name: f.name, Help: f.help, Type: f.typ}
	pair := func(values []string) [][2]string {
		ls := make([][2]string, len(f.labels))
		for i, l := range f.labels {
			ls[i] = [2]string{l, values[i]}
		}
		return ls
	}
	switch {
	case f.counter != nil:
		fam.Samples = []Sample{{Name: f.name, Value: f.counter.Value()}}
	case f.gauge != nil:
		fam.Samples = []Sample{{Name: f.name, Value: f.gauge.Value()}}
	case f.gaugeFn != nil:
		fam.Samples = []Sample{{Name: f.name, Value: f.gaugeFn()}}
	case f.histogram != nil:
		fam.Samples = histSamples(f.name, nil, f.histogram)
	case f.counterVec != nil:
		for _, ch := range f.counterVec.v.children() {
			fam.Samples = append(fam.Samples, Sample{
				Name: f.name, Labels: pair(ch[0].([]string)), Value: ch[1].(*Counter).Value(),
			})
		}
	case f.gaugeVec != nil:
		for _, ch := range f.gaugeVec.v.children() {
			fam.Samples = append(fam.Samples, Sample{
				Name: f.name, Labels: pair(ch[0].([]string)), Value: ch[1].(*Gauge).Value(),
			})
		}
	case f.histVec != nil:
		for _, ch := range f.histVec.v.children() {
			fam.Samples = append(fam.Samples, histSamples(f.name, pair(ch[0].([]string)), ch[1].(*Histogram))...)
		}
	}
	return fam
}

// histSamples renders one histogram as cumulative _bucket series plus
// _sum and _count, with the le label appended after any vec labels.
func histSamples(name string, labels [][2]string, h *Histogram) []Sample {
	out := make([]Sample, 0, len(h.upper)+3)
	var cum int64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		le := append(append([][2]string{}, labels...), [2]string{"le", formatValue(ub)})
		out = append(out, Sample{Name: name + "_bucket", Labels: le, Value: float64(cum)})
	}
	count := h.Count()
	inf := append(append([][2]string{}, labels...), [2]string{"le", "+Inf"})
	out = append(out, Sample{Name: name + "_bucket", Labels: inf, Value: float64(count)})
	out = append(out, Sample{Name: name + "_sum", Labels: labels, Value: h.Sum()})
	out = append(out, Sample{Name: name + "_count", Labels: labels, Value: float64(count)})
	return out
}

// WriteTo renders the registry in the text exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	for _, fam := range r.Collect() {
		if fam.Help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", fam.Name, fam.Type)
		for _, s := range fam.Samples {
			sb.WriteString(s.Name)
			if len(s.Labels) > 0 {
				sb.WriteByte('{')
				for i, kv := range s.Labels {
					if i > 0 {
						sb.WriteByte(',')
					}
					fmt.Fprintf(&sb, "%s=%q", kv[0], escapeLabel(kv[1]))
				}
				sb.WriteByte('}')
			}
			sb.WriteByte(' ')
			sb.WriteString(formatValue(s.Value))
			sb.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines for "# HELP" lines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value for rendering inside %q — the Go
// quoting already handles \" and \\; newlines become \n via %q too, so
// only pre-existing compliance matters. %q escapes more than the
// exposition format requires (e.g. \t), which scrapers accept; keep
// the explicit replacements for the three the spec names anyway.
func escapeLabel(s string) string { return s }

// validMetricName reports whether the name matches
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether the name matches
// [a-zA-Z_][a-zA-Z0-9_]*; names starting "__" are reserved.
func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
