package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// collect renders the registry to text once.
func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// mustValidate asserts the exposition parses.
func mustValidate(t *testing.T, text string) {
	t.Helper()
	if err := Validate(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition failed grammar check: %v\n%s", err, text)
	}
}

func TestCounterAndGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Total jobs ever submitted.")
	g := r.Gauge("queue_depth", "Jobs waiting for a worker.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	g.Set(7)
	g.Dec()

	out := render(t, r)
	mustValidate(t, out)
	for _, want := range []string{
		"# HELP jobs_total Total jobs ever submitted.",
		"# TYPE jobs_total counter",
		"jobs_total 3",
		"# TYPE queue_depth gauge",
		"queue_depth 6",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterSetNeverRegresses(t *testing.T) {
	var c Counter
	c.Set(10)
	c.Set(4) // mirrored counts must not run backwards
	if got := c.Value(); got != 10 {
		t.Fatalf("counter regressed to %v", got)
	}
	c.Set(12)
	if got := c.Value(); got != 12 {
		t.Fatalf("counter = %v, want 12", got)
	}
}

func TestVecLabelsRenderedAndSorted(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("http_requests_total", "Requests by route and code.", "route", "code")
	cv.With("/metrics", "200").Add(2)
	cv.With("/healthz", "503").Inc()
	cv.With("/healthz", "200").Add(5)

	out := render(t, r)
	mustValidate(t, out)
	for _, want := range []string{
		`http_requests_total{route="/healthz",code="200"} 5`,
		`http_requests_total{route="/healthz",code="503"} 1`,
		`http_requests_total{route="/metrics",code="200"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Children sorted by label values: /healthz lines precede /metrics.
	if strings.Index(out, `route="/healthz",code="200"`) > strings.Index(out, `route="/metrics"`) {
		t.Errorf("vec children not sorted:\n%s", out)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("weird_labels", "Escaping stress.", "v")
	gv.With(`quote " backslash \ newline` + "\n").Set(1)

	out := render(t, r)
	mustValidate(t, out)
	// Validate round-trips the escapes; also assert the raw escapes are
	// present in the rendered form.
	if !strings.Contains(out, `\"`) || !strings.Contains(out, `\\`) || !strings.Contains(out, `\n`) {
		t.Errorf("label escapes missing:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.07, 0.3, 0.9, 4} {
		h.Observe(v)
	}

	out := render(t, r)
	mustValidate(t, out)
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="0.5"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Sum() < 5.31 || h.Sum() > 5.33 {
		t.Errorf("sum = %v, want 5.32", h.Sum())
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("route_seconds", "Latency by route.", []float64{1}, "route")
	hv.With("/a").Observe(0.5)
	hv.With("/b").Observe(2)

	out := render(t, r)
	mustValidate(t, out)
	for _, want := range []string{
		`route_seconds_bucket{route="/a",le="1"} 1`,
		`route_seconds_bucket{route="/a",le="+Inf"} 1`,
		`route_seconds_bucket{route="/b",le="1"} 0`,
		`route_seconds_bucket{route="/b",le="+Inf"} 1`,
		`route_seconds_count{route="/a"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeFuncAndOnCollect(t *testing.T) {
	r := NewRegistry()
	depth := 0
	r.GaugeFunc("live_depth", "Read at scrape time.", func() float64 { return float64(depth) })
	mirrored := r.Gauge("mirrored", "Refreshed by hook.")
	r.OnCollect(func() { mirrored.Set(float64(depth * 2)) })

	depth = 21
	out := render(t, r)
	mustValidate(t, out)
	if !strings.Contains(out, "live_depth 21\n") {
		t.Errorf("GaugeFunc not read at scrape:\n%s", out)
	}
	if !strings.Contains(out, "mirrored 42\n") {
		t.Errorf("OnCollect hook not run before render:\n%s", out)
	}
}

func TestFamiliesSortedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "last")
	r.Counter("aaa_total", "first")
	out := render(t, r)
	mustValidate(t, out)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup_total", "")
}

func TestInvalidNamesPanic(t *testing.T) {
	for _, name := range []string{"", "0starts_with_digit", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q did not panic", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("reserved label name did not panic")
		}
	}()
	NewRegistry().CounterVec("ok_total", "", "__reserved")
}

func TestVecWrongArityPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("arity_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	cv.With("only-one")
}

func TestSpecialFloatValues(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("special", "")
	g.Set(math.Inf(1))
	out := render(t, r)
	mustValidate(t, out)
	if !strings.Contains(out, "special +Inf\n") {
		t.Errorf("+Inf not rendered:\n%s", out)
	}
}

func TestConcurrentUseUnderRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "")
	h := r.Histogram("race_seconds", "", nil)
	cv := r.CounterVec("race_vec_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 1000; n++ {
				c.Inc()
				h.Observe(float64(n) / 100)
				cv.With(string(rune('a' + i%4))).Inc()
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			_, _ = r.WriteTo(&sb)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("histogram count = %v, want 8000", got)
	}
	mustValidate(t, render(t, r))
}

// TestValidateRejectsMalformed exercises the grammar checker itself:
// it must reject the standard ways an exposition goes wrong, since the
// cluster-smoke CI check depends on it to catch regressions.
func TestValidateRejectsMalformed(t *testing.T) {
	bad := map[string]string{
		"bad metric name":   "9metric 1\n",
		"bad value":         "metric abc\n",
		"unterminated":      "metric{a=\"x} 1\n",
		"missing value":     "metric{a=\"x\"}\n",
		"bad label name":    "metric{9a=\"x\"} 1\n",
		"double TYPE":       "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"TYPE after sample": "m 1\n# TYPE m counter\n",
		"unknown type":      "# TYPE m widget\nm 1\n",
		"duplicate series":  "m{a=\"1\"} 1\nm{a=\"1\"} 2\n",
		"interleaved":       "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na{x=\"2\"} 1\n",
		"histogram no +Inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram not cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n" +
			"h_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"histogram count mismatch": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
	}
	for name, text := range bad {
		if err := Validate(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Validate accepted\n%s", name, text)
		}
	}
	good := "# HELP ok_total fine\n# TYPE ok_total counter\nok_total 3\n" +
		"# TYPE g gauge\ng{l=\"x\"} -1.5\ng{l=\"y\"} +Inf\n"
	if err := Validate(strings.NewReader(good)); err != nil {
		t.Errorf("Validate rejected well-formed exposition: %v", err)
	}
}
