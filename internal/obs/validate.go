package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Validate checks a Prometheus text exposition (version 0.0.4) against
// the format's grammar and the semantic rules scrapers rely on:
//
//   - every line is blank, a comment, "# HELP <name> <text>",
//     "# TYPE <name> <type>", or a well-formed sample;
//   - metric and label names match their character classes;
//   - label values are correctly quoted and escaped;
//   - sample values parse as floats (+Inf/-Inf/NaN allowed);
//   - at most one TYPE per metric, appearing before its samples;
//   - samples of one family are contiguous (no interleaving);
//   - no duplicate series (same name and label set twice);
//   - histograms carry a +Inf bucket whose value equals _count, with
//     cumulative (non-decreasing) bucket counts.
//
// The first violation is returned with its line number; nil means the
// exposition parses.
func Validate(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	typed := map[string]string{} // family → type
	sampled := map[string]bool{} // family has samples already
	seen := map[string]bool{}    // series key → present
	closed := map[string]bool{}  // family block ended
	hists := map[string]*histCheck{}
	current := ""
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			name, typ, isType, isHelp, err := parseComment(text)
			if err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			if !isType && !isHelp {
				continue // free-form comment
			}
			if name != current {
				if closed[name] {
					return fmt.Errorf("line %d: family %s reappears after other families", line, name)
				}
				if current != "" {
					closed[current] = true
				}
				current = name
			}
			if isType {
				if _, dup := typed[name]; dup {
					return fmt.Errorf("line %d: second TYPE line for %s", line, name)
				}
				if sampled[name] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", line, name)
				}
				typed[name] = typ
			}
			continue
		}
		s, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		fam := familyOf(s.Name, typed)
		if fam != current {
			if closed[fam] {
				return fmt.Errorf("line %d: samples of %s interleave with other families", line, fam)
			}
			if current != "" {
				closed[current] = true
			}
			current = fam
		}
		sampled[fam] = true
		key := seriesKey(s)
		if seen[key] {
			return fmt.Errorf("line %d: duplicate series %s", line, key)
		}
		seen[key] = true
		if typed[fam] == typeHistogram {
			h := hists[fam]
			if h == nil {
				h = &histCheck{buckets: map[string][]bucket{}, counts: map[string]float64{}}
				hists[fam] = h
			}
			if err := h.add(fam, s); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for fam, h := range hists {
		if err := h.check(fam); err != nil {
			return err
		}
	}
	return nil
}

// parseComment parses a "#" line, distinguishing HELP/TYPE metadata
// from free-form comments.
func parseComment(text string) (name, typ string, isType, isHelp bool, err error) {
	rest := strings.TrimPrefix(text, "#")
	rest = strings.TrimLeft(rest, " ")
	switch {
	case strings.HasPrefix(rest, "TYPE "):
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return "", "", false, false, fmt.Errorf("malformed TYPE line %q", text)
		}
		name, typ = fields[1], fields[2]
		if !validMetricName(name) {
			return "", "", false, false, fmt.Errorf("invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return "", "", false, false, fmt.Errorf("unknown metric type %q", typ)
		}
		return name, typ, true, false, nil
	case strings.HasPrefix(rest, "HELP "):
		fields := strings.SplitN(strings.TrimPrefix(rest, "HELP "), " ", 2)
		name = strings.TrimSpace(fields[0])
		if !validMetricName(name) {
			return "", "", false, false, fmt.Errorf("invalid metric name %q in HELP", name)
		}
		return name, "", false, true, nil
	default:
		return "", "", false, false, nil
	}
}

// sample is one parsed series line.
type sample struct {
	Name   string
	Labels [][2]string
	Value  float64
}

// parseSample parses `name{l="v",...} value [timestamp]`.
func parseSample(text string) (sample, error) {
	var s sample
	i := 0
	for i < len(text) && isNameChar(text[i], i == 0) {
		i++
	}
	s.Name = text[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name at %q", text)
	}
	if i < len(text) && text[i] == '{' {
		i++
		for {
			for i < len(text) && text[i] == ' ' {
				i++
			}
			if i < len(text) && text[i] == '}' {
				i++
				break
			}
			start := i
			for i < len(text) && isLabelChar(text[i], i == start) {
				i++
			}
			lname := text[start:i]
			if !validLabelName(lname) {
				return s, fmt.Errorf("invalid label name %q in %q", lname, text)
			}
			if i >= len(text) || text[i] != '=' {
				return s, fmt.Errorf("expected '=' after label %q in %q", lname, text)
			}
			i++
			val, rest, err := parseQuoted(text[i:])
			if err != nil {
				return s, fmt.Errorf("label %s in %q: %w", lname, text, err)
			}
			i = len(text) - len(rest)
			s.Labels = append(s.Labels, [2]string{lname, val})
			if i < len(text) && text[i] == ',' {
				i++
				continue
			}
			if i < len(text) && text[i] == '}' {
				i++
				break
			}
			return s, fmt.Errorf("expected ',' or '}' in label set of %q", text)
		}
	}
	rest := strings.TrimLeft(text[i:], " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value (and optional timestamp) in %q", text)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", fields[0], text)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q in %q", fields[1], text)
		}
	}
	return s, nil
}

// parseQuoted consumes a double-quoted, backslash-escaped string from
// the front of s, returning the decoded value and the remainder.
func parseQuoted(s string) (val, rest string, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", s, fmt.Errorf("expected quoted string")
	}
	var sb strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", s, fmt.Errorf("dangling backslash")
			}
			switch s[i+1] {
			case '\\', '"':
				sb.WriteByte(s[i+1])
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				// Go's %q may emit \xNN or \uNNNN; accept the escape
				// verbatim rather than rejecting a decodable line.
				sb.WriteByte(s[i+1])
			}
			i += 2
		case '"':
			return sb.String(), s[i+1:], nil
		default:
			sb.WriteByte(s[i])
			i++
		}
	}
	return "", s, fmt.Errorf("unterminated quoted string")
}

// parseFloat accepts exposition float syntax.
func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func isNameChar(c byte, first bool) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(!first && c >= '0' && c <= '9')
}

func isLabelChar(c byte, first bool) bool {
	return c == '_' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(!first && c >= '0' && c <= '9')
}

// familyOf strips histogram sample suffixes so _bucket/_sum/_count
// lines group under their TYPE'd family.
func familyOf(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := typed[base]; ok && (t == typeHistogram || t == "summary") {
				return base
			}
		}
	}
	return name
}

// seriesKey renders a canonical identity for duplicate detection:
// name plus the sorted label set.
func seriesKey(s sample) string {
	ls := append([][2]string{}, s.Labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i][0] < ls[j][0] })
	var sb strings.Builder
	sb.WriteString(s.Name)
	for _, kv := range ls {
		fmt.Fprintf(&sb, "|%s=%s", kv[0], kv[1])
	}
	return sb.String()
}

// bucket is one _bucket sample of a histogram series.
type bucket struct {
	le  float64
	val float64
}

// histCheck accumulates one histogram family's series for the
// cumulative-bucket and count-consistency checks, keyed by the
// non-le label set.
type histCheck struct {
	buckets map[string][]bucket
	counts  map[string]float64
}

// add files one sample of a histogram family.
func (h *histCheck) add(fam string, s sample) error {
	var rest [][2]string
	le := ""
	for _, kv := range s.Labels {
		if kv[0] == "le" {
			le = kv[1]
			continue
		}
		rest = append(rest, kv)
	}
	key := seriesKey(sample{Name: fam, Labels: rest})
	switch s.Name {
	case fam + "_bucket":
		if le == "" {
			return fmt.Errorf("histogram %s bucket without le label", fam)
		}
		v, err := parseFloat(le)
		if err != nil {
			return fmt.Errorf("histogram %s has unparseable le %q", fam, le)
		}
		h.buckets[key] = append(h.buckets[key], bucket{le: v, val: s.Value})
	case fam + "_count":
		h.counts[key] = s.Value
	}
	return nil
}

// check verifies cumulative buckets, the +Inf bucket, and its
// agreement with _count for every series of the family.
func (h *histCheck) check(fam string) error {
	for key, bs := range h.buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := math.Inf(-1)
		prev := -1.0
		for _, b := range bs {
			if b.le == last {
				return fmt.Errorf("histogram %s (%s): duplicate le %v", fam, key, b.le)
			}
			last = b.le
			if b.val < prev {
				return fmt.Errorf("histogram %s (%s): bucket counts not cumulative", fam, key)
			}
			prev = b.val
		}
		if len(bs) == 0 || !math.IsInf(bs[len(bs)-1].le, +1) {
			return fmt.Errorf("histogram %s (%s): missing +Inf bucket", fam, key)
		}
		if cnt, ok := h.counts[key]; ok && cnt != bs[len(bs)-1].val {
			return fmt.Errorf("histogram %s (%s): _count %v != +Inf bucket %v",
				fam, key, cnt, bs[len(bs)-1].val)
		}
	}
	return nil
}
