package service

import (
	"fmt"
	"testing"

	"impeccable/internal/campaign"
	"impeccable/internal/chem"
	"impeccable/internal/dock"
	"impeccable/internal/receptor"
)

// benchConfig is a small campaign for benchmarking repeated submissions.
func benchConfig(t *receptor.Target) campaign.Config {
	cfg := campaign.DefaultConfig(t)
	cfg.LibrarySize = 300
	cfg.TrainSize = 60
	cfg.CGCount = 3
	cfg.TopCompounds = 2
	cfg.OutliersPer = 2
	cfg.FastProtocols = true
	p := dock.DefaultParams()
	p.Runs = 1
	p.Generations = 8
	p.Population = 20
	cfg.DockParams = &p
	return cfg
}

// BenchmarkOverlappingCampaigns measures the tentpole speedup: the same
// campaign resubmitted against a shared score cache (the multi-tenant
// overlap case) versus cold every time. Compare:
//
//	go test ./internal/service -bench OverlappingCampaigns -benchtime 3x
func BenchmarkOverlappingCampaigns(b *testing.B) {
	t := receptor.PLPro()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := campaign.Run(benchConfig(t)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared-cache", func(b *testing.B) {
		scores := NewScoreCache(64, 0)
		features := NewFeatureCache(64, 0)
		// Warm once outside the timer: the steady state of a long-lived
		// service is every iteration after the first.
		warm := benchConfig(t)
		warm.DockCache = scores.ForTarget(t.Name)
		warm.Features = features
		if _, err := campaign.Run(warm); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := benchConfig(t)
			cfg.DockCache = scores.ForTarget(t.Name)
			cfg.Features = features
			res, err := campaign.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Funnel.DockCacheHits == 0 {
				b.Fatal("warm campaign missed the cache entirely")
			}
		}
		b.ReportMetric(scores.Stats().HitRate, "hit-rate")
	})
}

// BenchmarkScoreCacheParallel measures raw sharded-cache throughput
// under contention from all CPUs.
func BenchmarkScoreCacheParallel(b *testing.B) {
	for _, shards := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			c := NewScoreCache(shards, 0)
			mols := make([]*chem.Molecule, 512)
			for i := range mols {
				mols[i] = chem.FromID(uint64(i))
			}
			view := c.ForTarget("T")
			for _, m := range mols {
				view.Put(m, dock.Result{MolID: m.ID})
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					m := mols[i%len(mols)]
					if i%8 == 0 {
						view.Put(m, dock.Result{MolID: m.ID})
					} else {
						view.Get(m)
					}
					i++
				}
			})
		})
	}
}
