package service

import (
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"impeccable/internal/merkle"
)

// tinyJournalOpts forces the full persistence machinery on small
// campaigns: segments rotate every KiB, every payload spills to the
// blob store, compaction only on demand.
func tinyJournalOpts(dir string) Options {
	return Options{
		Workers:      1,
		CacheShards:  8,
		StateDir:     dir,
		SegmentBytes: 1 << 10,
		InlineLimit:  1,
		CompactEvery: -1,
	}
}

// listingDigest projects a snapshot down to what a restart must
// preserve bit-for-bit. Times compare by Equal (JSON round-trips strip
// the monotonic clock).
type listingDigest struct {
	id, target, state, err string
	submitted              string
	started, finished      string
	progress               float64
}

func digestListing(snaps []JobSnapshot) []listingDigest {
	ts := func(t *time.Time) string {
		if t == nil {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	var out []listingDigest
	for _, s := range snaps {
		out = append(out, listingDigest{
			id: s.ID, target: s.Target, state: string(s.State), err: s.Error,
			submitted: s.Submitted.UTC().Format(time.RFC3339Nano),
			started:   ts(s.Started), finished: ts(s.Finished),
			progress: s.Progress,
		})
	}
	return out
}

// TestSegmentedRestartRecovery is the tentpole acceptance test: with
// tiny SegmentBytes/InlineLimit forcing several rotations and spills,
// plus one compaction honoring the MaxJobRecords prune horizon, a
// kill-and-reopen serves listings and summaries identical to the
// pre-crash service, and the whole state dir verifies offline.
func TestSegmentedRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full (small) campaigns")
	}
	dir := stateDirForTest(t)
	opts := tinyJournalOpts(dir)
	opts.MaxJobRecords = 3
	s1, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 5
	var ids []string
	for i := 0; i < jobs; i++ {
		id, err := s1.Submit(smallReq())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s1.Wait(id, 5*time.Minute); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if n := s1.jl.segmentCount(); n < 4 {
		t.Fatalf("only %d segments after %d campaigns; rotation never triggered", n, jobs)
	}
	if err := s1.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if n := s1.jl.segmentCount(); n > 2 {
		t.Fatalf("%d segments after compaction, want at most 2", n)
	}

	pre := digestListing(s1.Jobs())
	if len(pre) != opts.MaxJobRecords {
		t.Fatalf("pre-crash listing has %d records, want MaxJobRecords=%d", len(pre), opts.MaxJobRecords)
	}
	preSums := map[string]ResultSummary{}
	for _, d := range pre {
		sum, err := s1.Result(d.id)
		if err != nil {
			t.Fatal(err)
		}
		preSums[d.id] = sum
	}
	crash(s1)

	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	post := digestListing(s2.Jobs())
	if !reflect.DeepEqual(pre, post) {
		t.Fatalf("listing diverged across restart:\npre:  %+v\npost: %+v", pre, post)
	}
	for id, want := range preSums {
		got, err := s2.Result(id)
		if err != nil {
			t.Fatalf("result %s after restart: %v", id, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("summary %s diverged across restart:\n%+v\nvs\n%+v", id, got, want)
		}
	}
	// Pruned history is gone from the journal too: a new submission
	// continues the ID sequence past everything ever journaled.
	id, err := s2.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if want := "job-000006"; id != want {
		t.Fatalf("post-restart ID = %s, want %s", id, want)
	}
	if _, err := s2.Wait(id, 5*time.Minute); err != nil {
		t.Fatal(err)
	}

	report, err := VerifyStateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Ok() {
		t.Fatalf("verifier rejects the state dir: %v", report.Problems)
	}
	if report.Checkpoints == 0 || report.Blobs == 0 {
		t.Fatalf("verifier saw no compaction/spill activity: %+v", report)
	}
}

// TestProvenanceProofAndTamper covers the provenance surface end to
// end: the API serves a sealed chain whose inclusion proof verifies
// against the Merkle root, the HTTP route exposes it, the offline
// verifier passes on the intact state dir, and a single flipped bit —
// in a spilled artifact or in a journal field — fails verification.
func TestProvenanceProofAndTamper(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (small) campaign")
	}
	dir := stateDirForTest(t)
	s, err := Open(tinyJournalOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(id, 5*time.Minute); err != nil {
		t.Fatal(err)
	}

	p, err := s.Provenance(id, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Sealed || p.Root == "" || p.Events < 3 || p.Proof == nil {
		t.Fatalf("provenance = %+v, want a sealed chain with a proof", p)
	}
	verifyInclusion(t, p)
	// Every event index serves a verifying proof, not just the last.
	for i := 0; i < p.Events; i++ {
		pi, err := s.Provenance(id, i)
		if err != nil {
			t.Fatal(err)
		}
		verifyInclusion(t, pi)
	}
	if _, err := s.Provenance(id, p.Events); err == nil {
		t.Fatal("out-of-range event index served a proof")
	}
	if _, err := s.Provenance("job-999999", -1); err != ErrUnknownJob {
		t.Fatalf("unknown job error = %v, want ErrUnknownJob", err)
	}

	// The HTTP surface serves the same record.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	var hp Provenance
	getJSON(t, srv.URL+"/api/v1/campaigns/"+id+"/provenance", http.StatusOK, &hp)
	if hp.Root != p.Root || !hp.Sealed || hp.Proof == nil {
		t.Fatalf("HTTP provenance = %+v, want root %s", hp, p.Root)
	}
	var hp0 Provenance
	getJSON(t, srv.URL+"/api/v1/campaigns/"+id+"/provenance?event=0", http.StatusOK, &hp0)
	if hp0.Proof == nil || hp0.Proof.Index != 0 {
		t.Fatalf("event=0 proof = %+v", hp0.Proof)
	}
	getJSON(t, srv.URL+"/api/v1/campaigns/"+id+"/provenance?event=banana", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/api/v1/campaigns/job-999999/provenance", http.StatusNotFound, nil)
	srv.Close()
	crash(s)

	report, err := VerifyStateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Ok() || report.Sealed == 0 || report.Blobs == 0 {
		t.Fatalf("intact state dir fails verification: %+v", report)
	}

	// Flip one bit in one spilled artifact: verification must fail.
	blobPath := anyBlobObject(t, dir)
	flipByte(t, blobPath, 0)
	if r, err := VerifyStateDir(dir); err != nil || r.Ok() {
		t.Fatalf("bit-flipped blob passed verification (err=%v)", err)
	}
	flipByte(t, blobPath, 0) // restore

	// Tamper with a journal field (keep the line valid JSON): the chain
	// hash no longer re-derives.
	seg := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), `"time":"2`, `"time":"3`, 1)
	if tampered == string(raw) {
		t.Fatal("no timestamp found to tamper with")
	}
	if err := os.WriteFile(seg, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if r, err := VerifyStateDir(dir); err != nil || r.Ok() {
		t.Fatalf("tampered journal passed verification (err=%v)", err)
	}
}

// verifyInclusion folds a served proof back to the root with the
// merkle package — the same check an external auditor would run.
func verifyInclusion(t *testing.T, p Provenance) {
	t.Helper()
	root, err := hex.DecodeString(p.Root)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := hex.DecodeString(p.Proof.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	steps := make([]merkle.ProofStep, len(p.Proof.Steps))
	for i, s := range p.Proof.Steps {
		h, err := hex.DecodeString(s.Hash)
		if err != nil {
			t.Fatal(err)
		}
		steps[i] = merkle.ProofStep{Hash: h, Left: s.Left}
	}
	if !merkle.Verify(root, leaf, steps) {
		t.Fatalf("inclusion proof for event %d does not verify", p.Proof.Index)
	}
}

// getJSON asserts a GET's status and decodes its body when out != nil.
func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d (body %s)", url, resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
}

// anyBlobObject returns the path of one stored blob object.
func anyBlobObject(t *testing.T, stateDir string) string {
	t.Helper()
	var found string
	root := filepath.Join(stateDir, blobDirName)
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || found != "" {
			return err
		}
		if !strings.Contains(info.Name(), ".tmp") {
			found = path
		}
		return nil
	})
	if err != nil || found == "" {
		t.Fatalf("no blob objects under %s (err=%v)", root, err)
	}
	return found
}

// flipByte XORs one byte of a file in place.
func flipByte(t *testing.T, path string, offset int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offset] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
