package service

import (
	"fmt"
	"sync"
	"testing"

	"impeccable/internal/chem"
	"impeccable/internal/dock"
)

func TestScoreCacheHitMissAccounting(t *testing.T) {
	c := NewScoreCache(8, 0)
	view := c.ForTarget("T1")
	m1, m2 := chem.FromID(1), chem.FromID(2)

	if _, ok := view.Get(m1); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	view.Put(m1, dock.Result{MolID: 1, Score: -7.5, Genome: []float64{1, 2}})
	r, ok := view.Get(m1)
	if !ok || r.Score != -7.5 {
		t.Fatalf("expected hit with score -7.5, got %+v ok=%v", r, ok)
	}
	if _, ok := view.Get(m2); ok {
		t.Fatal("unexpected hit for unseen molecule")
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want hits=1 misses=2 puts=1 entries=1", st)
	}
	if want := 1.0 / 3.0; st.HitRate < want-1e-9 || st.HitRate > want+1e-9 {
		t.Fatalf("hit rate = %v, want 1/3", st.HitRate)
	}
}

func TestScoreCacheTargetIsolation(t *testing.T) {
	c := NewScoreCache(4, 0)
	m := chem.FromID(99)
	c.ForTarget("A").Put(m, dock.Result{Score: -1})
	if _, ok := c.ForTarget("B").Get(m); ok {
		t.Fatal("target B saw target A's entry")
	}
	if r, ok := c.ForTarget("A").Get(m); !ok || r.Score != -1 {
		t.Fatal("target A lost its entry")
	}
}

func TestScoreCacheGenomeIsolation(t *testing.T) {
	c := NewScoreCache(2, 0)
	view := c.ForTarget("T")
	m := chem.FromID(7)
	g := []float64{1, 2, 3}
	view.Put(m, dock.Result{Genome: g})
	g[0] = 99 // caller mutates its slice after Put
	r1, _ := view.Get(m)
	if r1.Genome[0] != 1 {
		t.Fatalf("cache shared the caller's genome backing array: %v", r1.Genome)
	}
	r1.Genome[1] = 42 // tenant mutates its returned copy
	r2, _ := view.Get(m)
	if r2.Genome[1] != 2 {
		t.Fatalf("two tenants shared one genome slice: %v", r2.Genome)
	}
}

func TestScoreCacheEvictionBound(t *testing.T) {
	const maxEntries = 32
	c := NewScoreCache(4, maxEntries)
	view := c.ForTarget("T")
	for id := uint64(0); id < 500; id++ {
		view.Put(chem.FromID(id), dock.Result{MolID: id})
	}
	// Per-shard bound is ceil(32/4)=8, so the total can never exceed 32.
	if n := c.Len(); n > maxEntries {
		t.Fatalf("cache grew to %d entries, bound is %d", n, maxEntries)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("expected evictions after 500 puts into a 32-entry cache")
	}
}

// TestScoreCacheConcurrent hammers Get/Put from many goroutines across
// overlapping key ranges; run under -race this checks shard locking, and
// the final accounting checks no operation was lost.
func TestScoreCacheConcurrent(t *testing.T) {
	c := NewScoreCache(16, 0)
	const (
		goroutines = 16
		idsPerG    = 200
	)
	mols := make([]*chem.Molecule, idsPerG)
	for i := range mols {
		mols[i] = chem.FromID(uint64(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			view := c.ForTarget(fmt.Sprintf("T%d", g%4)) // 4 targets shared by 16 goroutines
			for i, m := range mols {
				if _, ok := view.Get(m); !ok {
					view.Put(m, dock.Result{MolID: m.ID, Score: float64(-i)})
				}
			}
			// Second pass must hit everything this target holds.
			for _, m := range mols {
				if _, ok := view.Get(m); !ok {
					t.Errorf("target T%d lost molecule %d", g%4, m.ID)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries != 4*idsPerG {
		t.Fatalf("entries = %d, want %d", st.Entries, 4*idsPerG)
	}
	// Every lookup is either a hit or a miss; the second pass alone is
	// goroutines*idsPerG guaranteed hits.
	if total := st.Hits + st.Misses; total != int64(2*goroutines*idsPerG) {
		t.Fatalf("hits+misses = %d, want %d", total, 2*goroutines*idsPerG)
	}
	if st.Hits < int64(goroutines*idsPerG) {
		t.Fatalf("hits = %d, want at least %d", st.Hits, goroutines*idsPerG)
	}
}

// molForTest and mockResult build deterministic cache fixtures shared
// with the snapshot tests.
func molForTest(id uint64) *chem.Molecule { return chem.FromID(id) }

func mockResult(id uint64) dock.Result {
	return dock.Result{
		MolID:  id,
		Score:  -float64(id),
		Genome: []float64{float64(id), 1, 2},
		Evals:  100,
		Method: "solis-wets",
	}
}

func TestScoreCacheExportImport(t *testing.T) {
	c := NewScoreCache(4, 0)
	for _, target := range []string{"PLPro", "3CLPro"} {
		view := c.ForTarget(target)
		for id := uint64(1); id <= 10; id++ {
			view.Put(molForTest(id), mockResult(id))
		}
	}
	entries := c.Export()
	if len(entries) != 20 {
		t.Fatalf("exported %d entries, want 20", len(entries))
	}
	c2 := NewScoreCache(16, 0)
	c2.Import(entries)
	if c2.Len() != 20 {
		t.Fatalf("imported cache holds %d entries, want 20", c2.Len())
	}
	for _, target := range []string{"PLPro", "3CLPro"} {
		view := c2.ForTarget(target)
		for id := uint64(1); id <= 10; id++ {
			r, ok := view.Get(molForTest(id))
			if !ok || r.Score != -float64(id) || r.Genome[0] != float64(id) {
				t.Fatalf("%s/%d restored as %+v ok=%v", target, id, r, ok)
			}
		}
	}
	// Import must not inflate runtime accounting.
	if st := c2.Stats(); st.Puts != 0 {
		t.Fatalf("import counted as %d puts", st.Puts)
	}
	// Mutating an exported genome must not reach the source cache.
	entries[0].Result.Genome[0] = 999
	r, _ := c.ForTarget(entries[0].Target).Get(molForTest(entries[0].Result.MolID))
	if r.Genome[0] == 999 {
		t.Fatal("export shares genome backing memory with the cache")
	}
}

func TestScoreCacheImportRespectsCapacity(t *testing.T) {
	const maxEntries = 16
	big := NewScoreCache(4, 0)
	view := big.ForTarget("T")
	for id := uint64(0); id < 200; id++ {
		view.Put(molForTest(id), mockResult(id))
	}
	small := NewScoreCache(4, maxEntries)
	small.Import(big.Export())
	if n := small.Len(); n > maxEntries {
		t.Fatalf("bounded cache grew to %d entries on import, bound %d", n, maxEntries)
	}
}

func TestFeatureCacheExportImport(t *testing.T) {
	c := NewFeatureCache(4, 0)
	for id := uint64(0); id < 50; id++ {
		c.Features(id)
	}
	entries := c.Export()
	if len(entries) != 50 {
		t.Fatalf("exported %d entries, want 50", len(entries))
	}
	c2 := NewFeatureCache(8, 0)
	c2.Import(entries)
	if st := c2.Stats(); st.Entries != 50 {
		t.Fatalf("imported %d entries, want 50", st.Entries)
	}
	// A restored vector must be served as a hit, byte-identical to the
	// deterministic materialization.
	before := c2.Stats().Hits
	got := c2.Features(7)
	want := chem.FromID(7).FeatureVector()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored features diverge at %d", i)
		}
	}
	if c2.Stats().Hits != before+1 {
		t.Fatal("restored entry was not served as a cache hit")
	}
}

func TestFeatureCacheConcurrent(t *testing.T) {
	c := NewFeatureCache(8, 0)
	want := chem.FromID(5).FeatureVector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := uint64(0); id < 100; id++ {
				v := c.Features(id)
				if len(v) != chem.FeatureDim {
					t.Errorf("feature dim = %d, want %d", len(v), chem.FeatureDim)
					return
				}
			}
		}()
	}
	wg.Wait()
	got := c.Features(5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cached features diverge from materialized at %d", i)
		}
	}
	st := c.Stats()
	if st.Entries != 100 {
		t.Fatalf("entries = %d, want 100", st.Entries)
	}
	if st.Hits == 0 {
		t.Fatal("expected hits from overlapping goroutines")
	}
}

// TestFeatureCacheFeaturesInto: the batched in-place path must serve the
// same vectors as Features with identical counter semantics (one hit or
// one miss per call, every miss stored, Puts == Misses).
func TestFeatureCacheFeaturesInto(t *testing.T) {
	c := NewFeatureCache(4, 0)
	dst := make([]float64, chem.FeatureDim)
	for i := range dst { // dirty buffer: FeaturesInto must overwrite fully
		dst[i] = -99
	}
	c.FeaturesInto(dst, 11) // miss: computes and stores
	want := chem.FromID(11).FeatureVector()
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("miss path diverges at %d: %v vs %v", i, dst[i], want[i])
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.Puts != st.Misses {
		t.Fatalf("after miss: %+v", st)
	}
	for i := range dst {
		dst[i] = -99
	}
	c.FeaturesInto(dst, 11) // hit: copies the cached vector
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("hit path diverges at %d", i)
		}
	}
	st = c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after hit: %+v", st)
	}
	// The cached copy must not alias the caller's buffer.
	dst[0] = 123
	if v, _ := c.Lookup(11); v[0] == 123 {
		t.Fatal("cache retained a reference to the caller's buffer")
	}
}
