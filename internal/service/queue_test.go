package service

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); ; {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerQueueBound exercises MaxQueued at the scheduler level
// with a blocking run function — no campaigns, so it runs in -short.
func TestSchedulerQueueBound(t *testing.T) {
	s := newScheduler(schedConfig{workers: 1, maxQueued: 1}, func(j *job) {
		<-j.cancel
		j.mu.Lock()
		j.state = StateCanceled
		j.mu.Unlock()
	})
	id1, err := s.submit(SubmitRequest{Target: "PLPro"}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the only worker picked job 1 up, so the queue is empty.
	waitFor(t, "job 1 to start", func() bool {
		j, _ := s.get(id1)
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.state == StateRunning
	})
	if _, err := s.submit(SubmitRequest{Target: "PLPro"}, time.Now()); err != nil {
		t.Fatalf("submit into empty queue: %v", err)
	}
	// Queue now holds 1 pending job = MaxQueued: the next must bounce.
	_, err = s.submit(SubmitRequest{Target: "PLPro"}, time.Now())
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}
	s.shutdown()
}

// TestCancelFreesQueueSlot: canceling a queued job must release its
// MaxQueued slot immediately, not when a worker eventually skips the
// tombstone.
func TestCancelFreesQueueSlot(t *testing.T) {
	s := newScheduler(schedConfig{workers: 1, maxQueued: 1}, func(j *job) {
		<-j.cancel
		j.mu.Lock()
		j.state = StateCanceled
		j.mu.Unlock()
	})
	idRun, _ := s.submit(SubmitRequest{Target: "PLPro"}, time.Now())
	waitFor(t, "blocker to start", func() bool {
		j, _ := s.get(idRun)
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.state == StateRunning
	})
	idQ, err := s.submit(SubmitRequest{Target: "PLPro"}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.submit(SubmitRequest{Target: "PLPro"}, time.Now()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("pre-cancel overflow error = %v, want ErrQueueFull", err)
	}
	if _, err := s.cancelJob(idQ); err != nil {
		t.Fatal("cancel returned false")
	}
	// The worker is still blocked, but the slot must already be free.
	if _, err := s.submit(SubmitRequest{Target: "PLPro"}, time.Now()); err != nil {
		t.Fatalf("submit after canceling the queued job: %v", err)
	}
	s.shutdown()
}

// TestUserCancelSurvivesDrain: a user cancel of a running job that
// overlaps a drain must still journal the terminal cancel — the drain
// suppression applies only to jobs interrupted without user intent.
func TestUserCancelSurvivesDrain(t *testing.T) {
	var mu sync.Mutex
	var recorded []journalEvent
	record := func(ev journalEvent) error {
		mu.Lock()
		recorded = append(recorded, ev)
		mu.Unlock()
		return nil
	}
	release := make(chan struct{})
	s := newScheduler(schedConfig{workers: 1, record: record}, func(j *job) {
		<-j.cancel
		<-release // hold the worker so the drain overlaps the cancel
		j.mu.Lock()
		j.state = StateCanceled
		j.mu.Unlock()
	})
	id, _ := s.submit(SubmitRequest{Target: "PLPro"}, time.Now())
	waitFor(t, "job to start", func() bool {
		j, _ := s.get(id)
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.state == StateRunning
	})
	if _, err := s.cancelJob(id); err != nil {
		t.Fatal("cancel returned false")
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	s.shutdown() // drain overlaps the in-flight user cancel
	mu.Lock()
	defer mu.Unlock()
	var last journalEvent
	for _, ev := range recorded {
		if ev.Job == id {
			last = ev
		}
	}
	if last.Kind != evCanceled {
		t.Fatalf("last journaled event = %+v, want the user's cancel", last)
	}
}

// TestSchedulerPruneTerminal exercises MaxJobRecords: terminal records
// beyond the bound disappear from the table, the order and listings,
// oldest first; live jobs are never pruned.
func TestSchedulerPruneTerminal(t *testing.T) {
	s := newScheduler(schedConfig{workers: 1, maxRecords: 2}, func(j *job) {})
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := s.submit(SubmitRequest{Target: "PLPro"}, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	waitFor(t, "all jobs to finish and prune", func() bool {
		list := s.list()
		if len(list) != 2 {
			return false
		}
		for _, snap := range list {
			if snap.State != StateDone {
				return false
			}
		}
		return true
	})
	// The survivors are the two newest.
	list := s.list()
	if list[0].ID != ids[3] || list[1].ID != ids[4] {
		t.Fatalf("survivors = %s,%s want %s,%s", list[0].ID, list[1].ID, ids[3], ids[4])
	}
	for _, id := range ids[:3] {
		if _, ok := s.get(id); ok {
			t.Fatalf("pruned job %s still in the table", id)
		}
	}
	// New submissions still work and IDs keep advancing past pruned ones.
	id6, err := s.submit(SubmitRequest{Target: "PLPro"}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if id6 != "job-000006" {
		t.Fatalf("next ID = %s, want job-000006", id6)
	}
	s.shutdown()
}

// TestSchedulerPruneSparesLiveJobs: a running job older than every
// terminal record must survive pruning.
func TestSchedulerPruneSparesLiveJobs(t *testing.T) {
	block := make(chan struct{})
	s := newScheduler(schedConfig{workers: 2, maxRecords: 1}, func(j *job) {
		j.mu.Lock()
		first := j.id == "job-000001"
		j.mu.Unlock()
		if first {
			<-block
		}
	})
	idRun, _ := s.submit(SubmitRequest{Target: "PLPro"}, time.Now())
	waitFor(t, "blocker to start", func() bool {
		j, _ := s.get(idRun)
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.state == StateRunning
	})
	// These run on the second worker and go terminal while the older
	// blocker is still running; pruning must only touch the terminals.
	var done []string
	for i := 0; i < 3; i++ {
		id, _ := s.submit(SubmitRequest{Target: "PLPro"}, time.Now())
		done = append(done, id)
	}
	waitFor(t, "quick jobs to finish and prune", func() bool {
		return len(s.list()) == 2 // running blocker + 1 retained terminal
	})
	j, ok := s.get(idRun)
	if !ok {
		t.Fatal("old running job was pruned")
	}
	j.mu.Lock()
	st := j.state
	j.mu.Unlock()
	if st != StateRunning {
		t.Fatalf("old running job state = %s, want running", st)
	}
	if _, ok := s.get(done[2]); !ok {
		t.Fatalf("newest terminal job %s missing", done[2])
	}
	close(block)
	waitFor(t, "blocker to finish and prune", func() bool {
		list := s.list()
		return len(list) == 1 && list[0].ID == done[2]
	})
	s.shutdown()
}
