package worker

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"impeccable/internal/service"
)

// TestPreemptedJobRerunsIdentically is the preemption acceptance test:
// a starved priority tenant revokes the flooding tenant's lease
// mid-campaign, the starved job runs in the freed slot, and the
// preempted job's eventual rerun — on a cold worker — is
// byte-identical to uninterrupted in-process execution, cost ledger
// included.
func TestPreemptedJobRerunsIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several (small) campaigns")
	}
	s, srv := newCoordinator(t, service.Options{
		LeaseTTL:     time.Second,
		PreemptAfter: 200 * time.Millisecond,
	})

	// Big enough that preemption lands mid-run, small enough to stay fast.
	hogReq := smallReq()
	hogReq.Tenant = "hog"
	hogReq.LibrarySize = 1200
	hogReq.TrainSize = 240
	hogID, err := s.Submit(hogReq)
	if err != nil {
		t.Fatal(err)
	}

	waitState := func(id string, want service.JobState) service.JobSnapshot {
		t.Helper()
		for deadline := time.Now().Add(30 * time.Second); ; {
			snap, ok := s.Status(id)
			if ok && snap.State == want {
				return snap
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never reached %s: %+v", id, want, snap)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	ctx := context.Background()
	w1 := newWorker(t, srv.URL, "w-hog", time.Second)
	w1done := make(chan struct{})
	go func() { defer close(w1done); _, _ = w1.RunOne(ctx) }()
	waitState(hogID, service.StateLeased)

	vipReq := smallReq()
	vipReq.Tenant = "vip"
	vipReq.Priority = 1
	vipID, err := s.Submit(vipReq)
	if err != nil {
		t.Fatal(err)
	}

	// The watchdog preempts the hog's lease once the vip job has waited
	// past PreemptAfter: the hog job re-enters its queue, and the evicted
	// worker discovers the revocation on its next heartbeat and abandons
	// the run without posting.
	waitState(hogID, service.StateQueued)
	<-w1done

	// A fresh worker gets the starved vip job first, not the (older)
	// requeued hog job.
	w2 := newWorker(t, srv.URL, "w-vip", time.Second)
	if ran, err := w2.RunOne(ctx); !ran || err != nil {
		t.Fatalf("vip RunOne = %v, %v", ran, err)
	}
	if snap, _ := s.Status(vipID); snap.State != service.StateDone || snap.Worker != "w-vip" {
		t.Fatalf("vip job after freed slot = %+v", snap)
	}
	if snap, _ := s.Status(hogID); snap.State != service.StateQueued {
		t.Fatalf("hog job = %+v, want still queued behind vip", snap)
	}

	// A cold worker reruns the preempted job; Seed and LibOffset rode
	// along in the retained request, so the science and the cost ledger
	// match an in-process run exactly.
	w3 := newWorker(t, srv.URL, "w-rerun", time.Second)
	if ran, err := w3.RunOne(ctx); !ran || err != nil {
		t.Fatalf("rerun RunOne = %v, %v", ran, err)
	}
	snap := waitState(hogID, service.StateDone)
	if snap.Worker != "w-rerun" {
		t.Fatalf("rerun worker = %q", snap.Worker)
	}
	got, err := s.Result(hogID)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "preempted rerun vs in-process", got, baseline(t, hogReq))

	// The preemption is visible on the metrics surface, labeled with the
	// victim tenant.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), `impeccable_tenant_preemptions_total{tenant="hog"} 1`) {
		t.Fatal("tenant preemption counter missing from /metrics")
	}
}
