// Package worker is the remote-execution side of the campaign
// service's lease protocol: a pull-based worker that leases jobs from
// a coordinator over HTTP, runs each campaign locally against
// per-worker score/feature caches, heartbeats while it runs, and posts
// back the result summary plus the cache deltas the run produced. The
// coordinator merges those deltas into its sharded caches, so labels
// computed on any worker warm the whole cluster's future submissions.
//
// The shape follows the paper's pilot-job middleware (EnTK/RADICAL
// pilots pull tasks onto allocated nodes rather than having tasks
// pushed at them) and fault-tolerant distributed evaluation harnesses:
// all failure handling lives in the lease. A worker that dies mid-job
// simply stops heartbeating; the coordinator re-enqueues the job under
// its original ID with Seed and LibOffset preserved, so the rerun —
// on any worker — is byte-identical science.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"impeccable/internal/campaign"
	"impeccable/internal/chem"
	"impeccable/internal/dock"
	"impeccable/internal/receptor"
	"impeccable/internal/service"
)

// Options configures a Worker.
type Options struct {
	// Server is the coordinator's base URL, e.g. "http://host:8080".
	Server string
	// ID names this worker in leases and listings; it must be stable
	// for the life of the process (heartbeats authenticate by it).
	// Empty = "<hostname>-<pid>".
	ID string
	// TTL is the lease duration requested from the coordinator; a
	// worker that stops heartbeating for this long loses its job. 0 =
	// the coordinator's default (explicit values are clamped server-side
	// to [1s, 5m]).
	TTL time.Duration
	// Poll is how long to wait between lease attempts when the
	// coordinator has no work; 0 means 500ms.
	Poll time.Duration
	// CampaignWorkers bounds the worker pools inside each campaign
	// (docking, screening, ESMACS); 0 means GOMAXPROCS.
	CampaignWorkers int
	// CacheShards is the lock-stripe width of the per-worker caches; 0
	// means 16.
	CacheShards int
	// MaxCacheEntries soft-bounds the per-worker score cache; 0 means
	// unbounded.
	MaxCacheEntries int
	// Targets are the receptors this worker can dock against; nil
	// means receptor.StandardTargets().
	Targets []*receptor.Target
	// HTTPClient overrides the default client (tests).
	HTTPClient *http.Client
	// Logf sinks the worker's log lines; nil = log.Printf.
	Logf func(format string, args ...any)
}

// Worker pulls leased jobs from a coordinator and executes them. Its
// score and feature caches persist across jobs, so repeated library
// windows on the same worker dock for free — the same economics the
// coordinator's shared caches give in-process workers.
type Worker struct {
	opts    Options
	client  *http.Client
	targets map[string]*receptor.Target
	// completeClient carries the complete upload: tens of MB of cache
	// deltas that a slow link cannot move inside the protocol client's
	// short timeout (which is sized for lease/heartbeat round-trips).
	completeClient *http.Client
	scores         *service.ScoreCache
	features       *service.FeatureCache
	logf           func(string, ...any)

	completed atomic.Int64 // jobs finalized (done, failed or canceled)
}

// New builds a worker; it holds no connections until Run.
func New(opts Options) *Worker {
	if opts.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		opts.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	shards := opts.CacheShards
	if shards <= 0 {
		shards = 16
	}
	targets := opts.Targets
	if targets == nil {
		targets = receptor.StandardTargets()
	}
	w := &Worker{
		opts:     opts,
		client:   opts.HTTPClient,
		targets:  make(map[string]*receptor.Target, len(targets)),
		scores:   service.NewScoreCache(shards, opts.MaxCacheEntries),
		features: service.NewFeatureCache(shards, opts.MaxCacheEntries),
		logf:     opts.Logf,
	}
	if w.client == nil {
		w.client = &http.Client{Timeout: 30 * time.Second}
		w.completeClient = &http.Client{Timeout: 10 * time.Minute}
	} else {
		// An injected client (tests) is authoritative for every call.
		w.completeClient = w.client
	}
	if w.logf == nil {
		w.logf = log.Printf
	}
	for _, t := range targets {
		w.targets[t.Name] = t
	}
	return w
}

// ID returns the worker's lease identity.
func (w *Worker) ID() string { return w.opts.ID }

// Completed returns how many jobs this worker has finalized.
func (w *Worker) Completed() int64 { return w.completed.Load() }

// ScoreCacheStats snapshots the worker's persistent score cache — the
// worker binary's own /metrics listener reads these at scrape time.
func (w *Worker) ScoreCacheStats() service.CacheStats { return w.scores.Stats() }

// FeatureCacheStats snapshots the worker's persistent feature cache.
func (w *Worker) FeatureCacheStats() service.CacheStats { return w.features.Stats() }

// Run leases and executes jobs until ctx is canceled. Lease/poll
// errors are logged and retried — a worker outlives coordinator
// restarts and network blips; correctness lives in the lease protocol,
// not in the worker staying up.
func (w *Worker) Run(ctx context.Context) error {
	for {
		ran, err := w.RunOne(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			w.logf("worker %s: %v", w.opts.ID, err)
		}
		if !ran {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.opts.Poll):
			}
		}
	}
}

// RunOne leases at most one job and executes it to completion,
// reporting whether a job was leased. Exposed for tests and embedders
// that want to control the polling loop themselves.
func (w *Worker) RunOne(ctx context.Context) (bool, error) {
	var grant service.LeaseGrant
	code, err := w.post(ctx, "/api/v1/worker/lease",
		service.LeaseRequest{WorkerID: w.opts.ID, TTLSeconds: w.opts.TTL.Seconds()}, &grant)
	if err != nil {
		return false, fmt.Errorf("lease: %w", err)
	}
	switch code {
	case http.StatusOK:
	case http.StatusNoContent:
		return false, nil
	default:
		return false, fmt.Errorf("lease: coordinator answered %d", code)
	}
	w.logf("worker %s: leased %s (target %s, expires %s)",
		w.opts.ID, grant.JobID, grant.Req.Target, grant.ExpiresAt.Format(time.RFC3339))
	return true, w.execute(ctx, &grant)
}

// execute runs one leased campaign with heartbeats and posts the
// outcome. A run whose lease is lost (expiry, cancel, coordinator
// restart that re-assigned it) is abandoned without posting — the
// coordinator owns the job again and the rerun is deterministic.
func (w *Worker) execute(ctx context.Context, g *service.LeaseGrant) error {
	t, ok := w.targets[g.Req.Target]
	if !ok {
		// Fail the job loudly rather than abandoning the lease: a pool
		// where no worker serves the target would otherwise bounce the
		// job between lease expiries forever, invisibly. Deploy workers
		// with Options.Targets matching the coordinator's.
		return w.postComplete(ctx, g, service.WorkerResult{
			Error: fmt.Sprintf("worker %s: unknown target %q", w.opts.ID, g.Req.Target),
		})
	}
	cfg := service.BaseConfig(g.Req, t)
	cfg.Workers = w.opts.CampaignWorkers
	scores := &recordingScores{inner: w.scores.ForTarget(t.Name), target: t.Name}
	features := &recordingFeatures{cache: w.features}
	cfg.DockCache = scores
	cfg.Features = features

	cancel := make(chan struct{})
	var abandoned atomic.Bool
	var once sync.Once
	abort := func() { abandoned.Store(true); once.Do(func() { close(cancel) }) }
	cfg.Cancel = cancel
	var prog progressState
	cfg.Progress = prog.set

	// Snapshot the persistent caches before the run: the difference
	// afterwards is this job's contribution, reported with the
	// completion so the coordinator's /metrics shows fleet-wide cache
	// effectiveness (impeccable_worker_cache_*_total).
	scoresBefore, featuresBefore := w.scores.Stats(), w.features.Stats()
	runStart := time.Now()

	runDone := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(ctx, g, &prog, runDone, abort)
	}()

	res, err := func() (res *campaign.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("worker: campaign panicked: %v", r)
			}
		}()
		return campaign.RunWithPool(cfg, nil, g.Req.LibOffset)
	}()
	close(runDone)
	<-hbDone

	if abandoned.Load() || ctx.Err() != nil {
		w.logf("worker %s: abandoned %s (lease lost or shutting down)", w.opts.ID, g.JobID)
		return nil
	}
	out := service.WorkerResult{Scores: scores.take(), Features: features.take()}
	if ds, df := scores.droppedN(), features.droppedN(); ds+df > 0 {
		w.logf("worker %s: %s delta capped (%d score, %d feature entries not shipped; coordinator cache stays colder)",
			w.opts.ID, g.JobID, ds, df)
	}
	out.Stats = &service.WorkerRunStats{
		ScoreCache:   statsDelta(scoresBefore, w.scores.Stats()),
		FeatureCache: statsDelta(featuresBefore, w.features.Stats()),
		WallSeconds:  time.Since(runStart).Seconds(),
	}
	switch {
	case errors.Is(err, campaign.ErrCanceled):
		out.Canceled = true
	case err != nil:
		out.Error = err.Error()
	default:
		out.Summary = &service.ResultSummary{
			Funnel:          res.Funnel,
			Top:             res.Top,
			ScientificYield: res.ScientificYield,
		}
		out.Stats.Timings = res.Funnel.Timings
		out.Stats.WallSeconds = res.Funnel.WallSeconds
	}
	return w.postComplete(ctx, g, out)
}

// heartbeatLoop extends the lease at TTL/3 cadence, reporting the
// remotely observed stage/progress, until the run finishes. It aborts
// the run when the coordinator says the lease is lost, or when
// heartbeats have failed for longer than the TTL (the lease has
// certainly expired by then, so the job is no longer this worker's).
func (w *Worker) heartbeatLoop(ctx context.Context, g *service.LeaseGrant, prog *progressState, runDone <-chan struct{}, abort func()) {
	ttl := time.Duration(g.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	interval := ttl / 3
	if interval < 20*time.Millisecond {
		interval = 20 * time.Millisecond
	}
	if interval > 10*time.Second {
		interval = 10 * time.Second
	}
	deadline := time.Now().Add(ttl)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-runDone:
			return
		case <-ctx.Done():
			abort()
			return
		case <-tick.C:
			stage, frac := prog.get()
			code, err := w.post(ctx, "/api/v1/worker/heartbeat", service.HeartbeatRequest{
				WorkerID: w.opts.ID, Token: g.Token, JobID: g.JobID, Stage: stage, Progress: frac,
			}, nil)
			switch {
			case err == nil && code == http.StatusOK:
				deadline = time.Now().Add(ttl)
			case code == http.StatusConflict || code == http.StatusNotFound:
				w.logf("worker %s: lease on %s lost (%d), aborting run", w.opts.ID, g.JobID, code)
				abort()
				return
			default:
				if time.Now().After(deadline) {
					w.logf("worker %s: no heartbeat through a full TTL on %s, aborting run", w.opts.ID, g.JobID)
					abort()
					return
				}
			}
		}
	}
}

// postComplete posts the outcome, retrying briefly over network blips.
// A 409 means the lease was lost and the result must be discarded (the
// rerun owns the job); that is not an error.
func (w *Worker) postComplete(ctx context.Context, g *service.LeaseGrant, res service.WorkerResult) error {
	req := service.CompleteRequest{WorkerID: w.opts.ID, Token: g.Token, JobID: g.JobID, WorkerResult: res}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(500 * time.Millisecond):
			}
		}
		code, err := w.postVia(ctx, w.completeClient, "/api/v1/worker/complete", req, nil)
		switch {
		case err != nil:
			lastErr = err
		case code == http.StatusOK:
			w.completed.Add(1)
			w.logf("worker %s: completed %s", w.opts.ID, g.JobID)
			return nil
		case code == http.StatusConflict || code == http.StatusNotFound:
			w.logf("worker %s: result for %s discarded (%d: lease lost)", w.opts.ID, g.JobID, code)
			return nil
		default:
			lastErr = fmt.Errorf("coordinator answered %d", code)
		}
	}
	return fmt.Errorf("complete %s: %w", g.JobID, lastErr)
}

// post issues one JSON POST and decodes a 200 response into out (when
// non-nil). Non-200 statuses are returned for the caller to interpret;
// only transport failures are errors.
func (w *Worker) post(ctx context.Context, path string, body, out any) (int, error) {
	return w.postVia(ctx, w.client, path, body, out)
}

func (w *Worker) postVia(ctx context.Context, client *http.Client, path string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Server+path, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	// One request ID per call, echoed back by the coordinator and
	// stamped on its access log — a failed lease or complete can be
	// matched to the exact coordinator-side line.
	req.Header.Set("X-Request-Id", fmt.Sprintf("%s-%d", w.opts.ID, time.Now().UnixNano()))
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}
	// Drain so the connection is reused.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode, nil
}

// statsDelta subtracts a before-run cache snapshot from the after-run
// one, yielding this job's own traffic. Entry counts and shard width
// are reported as-is (they are levels, not counters).
func statsDelta(before, after service.CacheStats) service.CacheStats {
	d := service.CacheStats{
		Shards:    after.Shards,
		Entries:   after.Entries,
		Hits:      after.Hits - before.Hits,
		Misses:    after.Misses - before.Misses,
		Puts:      after.Puts - before.Puts,
		Evictions: after.Evictions - before.Evictions,
	}
	if lookups := d.Hits + d.Misses; lookups > 0 {
		d.HitRate = float64(d.Hits) / float64(lookups)
	}
	return d
}

// progressState is the campaign's latest stage/progress, written by
// (possibly concurrent) Progress callbacks and read by heartbeats.
type progressState struct {
	mu    sync.Mutex
	stage string
	frac  float64
}

func (p *progressState) set(stage string, frac float64) {
	p.mu.Lock()
	p.stage = stage
	if frac > p.frac {
		p.frac = frac
	}
	p.mu.Unlock()
}

func (p *progressState) get() (string, float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stage, p.frac
}

// maxFeatureDelta bounds the feature-cache delta shipped per job: the
// vectors are recomputable from their IDs, so dropping the tail costs
// a restarted coordinator some recompute, never correctness.
const maxFeatureDelta = 50_000

// maxScoreDelta bounds the score-cache delta the same way. Score
// entries are expensive to recompute (each is a docking run), but the
// delta only warms the coordinator's shared cache — the worker keeps
// every entry in its own cache regardless — so dropping the tail costs
// the cluster some warmth, never correctness. Both caps together keep
// the worst-case complete payload well under the coordinator's body
// limit (http.maxCompleteBody).
const maxScoreDelta = 50_000

// recordingScores wraps the worker's per-target score-cache view and
// records every fresh docking result the run stores — the score-cache
// delta posted back with the job.
type recordingScores struct {
	inner  dock.ScoreCache
	target string

	mu      sync.Mutex
	delta   []service.ScoreEntry
	dropped int
}

func (r *recordingScores) Get(m *chem.Molecule) (dock.Result, bool) { return r.inner.Get(m) }

func (r *recordingScores) Put(m *chem.Molecule, res dock.Result) {
	r.inner.Put(m, res)
	// Private genome copy: the docking engine may reuse its slice.
	res.Genome = append([]float64(nil), res.Genome...)
	r.mu.Lock()
	if len(r.delta) < maxScoreDelta {
		r.delta = append(r.delta, service.ScoreEntry{Target: r.target, FP: m.FP(), Result: res})
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

func (r *recordingScores) take() []service.ScoreEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.delta
	r.delta = nil
	return d
}

func (r *recordingScores) droppedN() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// recordingFeatures serves ML1 feature vectors from the worker's
// persistent cache and records the ones this run computed fresh.
type recordingFeatures struct {
	cache *service.FeatureCache

	mu      sync.Mutex
	delta   []service.FeatureEntry
	dropped int
}

func (r *recordingFeatures) Features(id uint64) []float64 {
	if v, ok := r.cache.Lookup(id); ok {
		return v
	}
	v := chem.FromID(id).FeatureVector()
	r.cache.Insert(id, v)
	r.mu.Lock()
	if len(r.delta) < maxFeatureDelta {
		r.delta = append(r.delta, service.FeatureEntry{ID: id, Vec: v})
	} else {
		r.dropped++
	}
	r.mu.Unlock()
	return v
}

// FeaturesInto is the batched counterpart of Features (see
// surrogate.BatchFeatureSource): same cache interaction and delta
// recording, but the vector is written into dst instead of shared.
func (r *recordingFeatures) FeaturesInto(dst []float64, id uint64) {
	if v, ok := r.cache.Lookup(id); ok {
		copy(dst, v)
		return
	}
	chem.FromID(id).FeatureVectorInto(dst)
	v := append([]float64(nil), dst...)
	r.cache.Insert(id, v)
	r.mu.Lock()
	if len(r.delta) < maxFeatureDelta {
		r.delta = append(r.delta, service.FeatureEntry{ID: id, Vec: v})
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

func (r *recordingFeatures) take() []service.FeatureEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.delta
	r.delta = nil
	return d
}

func (r *recordingFeatures) droppedN() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
