package worker

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"impeccable/internal/campaign"
	"impeccable/internal/receptor"
	"impeccable/internal/service"
)

// smallReq mirrors the service package's test campaign: sized to
// finish in seconds.
func smallReq() service.SubmitRequest {
	return service.SubmitRequest{
		Target:        "PLPro",
		LibrarySize:   300,
		TrainSize:     60,
		CGCount:       3,
		TopCompounds:  2,
		OutliersPer:   2,
		Seed:          1,
		FastProtocols: true,
	}
}

// newCoordinator starts a RemoteOnly service behind httptest: nothing
// executes unless a worker leases it.
func newCoordinator(t *testing.T, opts service.Options) (*service.Service, *httptest.Server) {
	t.Helper()
	opts.RemoteOnly = true
	if opts.CacheShards == 0 {
		opts.CacheShards = 8
	}
	s, err := service.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Shutdown()
	})
	return s, srv
}

// newWorker builds a quiet, fast-polling test worker.
func newWorker(t *testing.T, url, id string, ttl time.Duration) *Worker {
	t.Helper()
	return New(Options{
		Server: url,
		ID:     id,
		TTL:    ttl,
		Poll:   20 * time.Millisecond,
		Logf:   t.Logf,
	})
}

// baseline runs the request in-process on a fresh (cold) single-worker
// service — the summary a remote execution must match byte for byte.
func baseline(t *testing.T, req service.SubmitRequest) service.ResultSummary {
	t.Helper()
	s := service.NewService(service.Options{Workers: 1, CacheShards: 8})
	defer s.Shutdown()
	id, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Wait(id, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != service.StateDone {
		t.Fatalf("baseline job = %+v", snap)
	}
	sum, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// assertIdentical compares the deterministic projection of two
// summaries: the funnel counts (cost ledger included — both runs are
// cold), the top-K comparisons and the scientific yield. Timings are
// wall-clock and excluded by construction.
func assertIdentical(t *testing.T, what string, got, want service.ResultSummary) {
	t.Helper()
	if !reflect.DeepEqual(got.Funnel.Counts(), want.Funnel.Counts()) {
		t.Fatalf("%s: funnel diverged:\n%+v\nvs\n%+v", what, got.Funnel.Counts(), want.Funnel.Counts())
	}
	if !reflect.DeepEqual(got.Top, want.Top) {
		t.Fatalf("%s: top-K diverged:\n%+v\nvs\n%+v", what, got.Top, want.Top)
	}
	if got.ScientificYield != want.ScientificYield {
		t.Fatalf("%s: yield %v vs %v", what, got.ScientificYield, want.ScientificYield)
	}
}

// TestWorkerRunsCampaignRemotely is the acceptance test for remote
// execution: a campaign submitted to a zero-local-worker coordinator
// completes on a worker process with a ResultSummary byte-identical to
// in-process execution, and the worker's cache deltas land in the
// coordinator's sharded caches.
func TestWorkerRunsCampaignRemotely(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full (small) campaigns")
	}
	s, srv := newCoordinator(t, service.Options{})
	id, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := newWorker(t, srv.URL, "w-remote", 0)
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	snap, err := s.Wait(id, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != service.StateDone {
		t.Fatalf("remote job = %+v", snap)
	}
	if snap.Worker != "w-remote" {
		t.Fatalf("snapshot worker = %q, want w-remote", snap.Worker)
	}
	got, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "remote vs in-process", got, baseline(t, smallReq()))

	// The worker's fresh docking labels were merged into the
	// coordinator's caches on complete.
	if st := s.ScoreCacheStats(); st.Entries == 0 {
		t.Fatalf("coordinator score cache empty after remote completion: %+v", st)
	}
	if st := s.FeatureCacheStats(); st.Entries == 0 {
		t.Fatalf("coordinator feature cache empty after remote completion: %+v", st)
	}
	cancel()
	<-done
}

// TestWorkerCachesWarmAcrossJobs: a worker's per-worker caches persist
// across jobs, so an identical second submission docks entirely from
// cache — zero evaluations — while the science stays identical.
func TestWorkerCachesWarmAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full (small) campaigns")
	}
	s, srv := newCoordinator(t, service.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := newWorker(t, srv.URL, "w-warm", 0)
	go func() { _ = w.Run(ctx) }()

	id1, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(id1, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	sum1, err := s.Result(id1)
	if err != nil {
		t.Fatal(err)
	}
	if sum1.Funnel.DockEvals == 0 {
		t.Fatal("cold remote run spent no dock evals")
	}

	id2, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(id2, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	sum2, err := s.Result(id2)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Funnel.DockEvals != 0 {
		t.Fatalf("warm remote rerun spent %d dock evals, want 0", sum2.Funnel.DockEvals)
	}
	if !reflect.DeepEqual(sum1.Top, sum2.Top) {
		t.Fatal("warm rerun changed the science")
	}
}

// TestWorkerKilledMidJobRerunsIdentically is the fault-tolerance
// acceptance test: a worker killed mid-job stops heartbeating, the
// lease expires, the job re-enters the queue under its original ID,
// and a second worker completes it with a ResultSummary byte-identical
// to in-process execution — with the whole lease history journaled, so
// a coordinator restart afterwards still serves the result.
func TestWorkerKilledMidJobRerunsIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several (small) campaigns")
	}
	dir := t.TempDir()
	s, srv := newCoordinator(t, service.Options{StateDir: dir, LeaseTTL: time.Second})

	// Big enough that the kill lands mid-run, small enough to stay fast.
	req := smallReq()
	req.LibrarySize = 1200
	req.TrainSize = 240
	id, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Worker A leases the job and dies (context kill: no complete, no
	// further heartbeats — exactly what kill -9 looks like upstream).
	ctxA, killA := context.WithCancel(context.Background())
	wA := newWorker(t, srv.URL, "w-doomed", 0)
	doneA := make(chan error, 1)
	go func() { doneA <- wA.Run(ctxA) }()
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, _ := s.Status(id)
		if snap.State == service.StateLeased && snap.Progress > 0 {
			break
		}
		if snap.State.Terminal() {
			t.Fatalf("job finished before the kill: %+v (grow the request)", snap)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never got leased and under way: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	killA()
	<-doneA
	if n := wA.Completed(); n != 0 {
		t.Fatalf("killed worker completed %d jobs", n)
	}

	// No heartbeats → lease expiry → requeue under the original ID.
	deadline = time.Now().Add(15 * time.Second)
	for {
		snap, _ := s.Status(id)
		if snap.State == service.StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never expired into a requeue: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Worker B picks the rerun up cold and completes it.
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	wB := newWorker(t, srv.URL, "w-rescue", 0)
	go func() { _ = wB.Run(ctxB) }()
	snap, err := s.Wait(id, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != service.StateDone || snap.Worker != "w-rescue" {
		t.Fatalf("rescued job = %+v", snap)
	}
	got, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "rescued rerun vs in-process", got, baseline(t, req))
	cancelB()

	// The journaled lease history (leased → requeued → leased → done)
	// replays cleanly: a restarted coordinator serves the same summary.
	s.Shutdown()
	s2, err := service.Open(service.Options{RemoteOnly: true, CacheShards: 8, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	snap2, ok := s2.Status(id)
	if !ok || snap2.State != service.StateDone {
		t.Fatalf("job after coordinator restart = %+v (ok=%v)", snap2, ok)
	}
	got2, err := s2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "replayed result vs rescued result", got2, got)
}

// TestWorkerReportsUnknownTargetAsFailure: a worker that cannot serve
// a target fails the job with a useful error instead of wedging the
// lease until expiry. Runs in -short (no campaign executes).
func TestWorkerReportsUnknownTargetAsFailure(t *testing.T) {
	s, srv := newCoordinator(t, service.Options{})
	id, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	w := New(Options{
		Server:  srv.URL,
		ID:      "w-limited",
		Poll:    20 * time.Millisecond,
		Targets: []*receptor.Target{receptor.StandardTargets()[0]}, // 3CLPro only: no PLPro
		Logf:    t.Logf,
	})
	ran, err := w.RunOne(context.Background())
	if err != nil || !ran {
		t.Fatalf("RunOne = %v, %v", ran, err)
	}
	snap, err := s.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != service.StateFailed || snap.Error == "" {
		t.Fatalf("job on a target-less worker = %+v, want failed with error", snap)
	}
}

// TestBaseConfigMatchesDefaults pins the shared request translation:
// a zero-valued submission must produce exactly the campaign defaults
// (what the coordinator's in-process path runs), so remote workers can
// never drift scientifically.
func TestBaseConfigMatchesDefaults(t *testing.T) {
	tgt := receptor.PLPro()
	got := service.BaseConfig(service.SubmitRequest{Target: "PLPro"}, tgt)
	want := campaign.DefaultConfig(tgt)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BaseConfig(zero req) = %+v, want defaults %+v", got, want)
	}
	req := smallReq()
	cfg := service.BaseConfig(req, tgt)
	if cfg.LibrarySize != req.LibrarySize || cfg.TrainSize != req.TrainSize ||
		cfg.Seed != req.Seed || !cfg.FastProtocols {
		t.Fatalf("BaseConfig dropped request knobs: %+v", cfg)
	}
}
