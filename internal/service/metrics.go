// Service metrics: every counter the coordinator already maintained
// internally — scheduler per-state tallies, lease lifecycle, journal
// fsyncs, cache shard hit rates, per-stage funnel windows — exposed as
// Prometheus text exposition through internal/obs, plus the HTTP
// middleware that measures the API itself (per-route latency, status
// codes, in-flight requests) and threads a request ID through logs and
// journal events.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"
	"time"

	"impeccable/internal/campaign"
	"impeccable/internal/obs"
)

// metrics bundles the service's registry and the event-driven
// instruments. Scrape-time mirrors (queue depth, per-state gauges,
// cache shard counters, Retry-After) are wired as OnCollect hooks in
// Service.registerCollectors, so their cost is paid per scrape, not
// per event.
type metrics struct {
	reg *obs.Registry

	jobsSubmitted *obs.Counter
	jobsTerminal  *obs.CounterVec // state
	jobsByState   *obs.GaugeVec   // state
	queueDepth    *obs.Gauge
	retryAfter    *obs.Gauge

	leaseGrants     *obs.Counter
	leaseHeartbeats *obs.Counter
	leaseExpiries   *obs.Counter
	leaseRequeues   *obs.Counter
	leasesActive    *obs.Gauge

	journalAppends           *obs.Counter
	journalBytes             *obs.Counter
	journalSize              *obs.Gauge
	journalSegments          *obs.Gauge
	journalRotations         *obs.Counter
	journalCompactions       *obs.Counter
	journalCompactionSeconds *obs.Histogram
	journalFsync             *obs.Histogram

	blobObjects *obs.Gauge
	blobBytes   *obs.Gauge
	blobPuts    *obs.Counter
	blobDeletes *obs.Counter

	snapshots       *obs.Counter
	snapshotSeconds *obs.Histogram

	cacheHits      *obs.CounterVec // cache, shard
	cacheMisses    *obs.CounterVec // cache, shard
	cacheEvictions *obs.CounterVec // cache, shard
	cacheEntries   *obs.GaugeVec   // cache, shard
	cachePuts      *obs.CounterVec // cache

	workerCacheHits      *obs.CounterVec // cache (fleet-reported)
	workerCacheMisses    *obs.CounterVec // cache
	workerCacheEvictions *obs.CounterVec // cache

	funnelStageSeconds *obs.CounterVec // stage
	funnelWallSeconds  *obs.Counter
	funnelRuns         *obs.Counter

	tenantQueueDepth    *obs.GaugeVec   // tenant
	tenantAdmissions    *obs.CounterVec // tenant
	tenantRejections    *obs.CounterVec // tenant, reason
	tenantPreemptions   *obs.CounterVec // tenant (the victim)
	tenantFunnelSeconds *obs.CounterVec // tenant

	httpRequests *obs.CounterVec   // route, method, code
	httpLatency  *obs.HistogramVec // route
	httpInFlight *obs.Gauge

	eventsPublished *obs.Counter
	sseSubscribers  *obs.Gauge
}

// newMetrics registers every event-driven instrument on a fresh
// registry.
func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}

	m.jobsSubmitted = reg.Counter("impeccable_jobs_submitted_total",
		"Campaign submissions accepted into the queue.")
	m.jobsTerminal = reg.CounterVec("impeccable_jobs_terminal_total",
		"Jobs that reached a terminal state, by state.", "state")
	m.jobsByState = reg.GaugeVec("impeccable_jobs",
		"Jobs currently in the table, by state.", "state")
	m.queueDepth = reg.Gauge("impeccable_queue_depth",
		"Jobs waiting in the pending queue.")
	m.retryAfter = reg.Gauge("impeccable_retry_after_seconds",
		"Backpressure estimate served with 429 responses: backlog times recent mean job duration over execution slots.")

	m.leaseGrants = reg.Counter("impeccable_lease_grants_total",
		"Jobs handed to remote workers under a TTL lease.")
	m.leaseHeartbeats = reg.Counter("impeccable_lease_heartbeats_total",
		"Accepted lease heartbeats.")
	m.leaseExpiries = reg.Counter("impeccable_lease_expiries_total",
		"Leases revoked because the worker stopped heartbeating.")
	m.leaseRequeues = reg.Counter("impeccable_lease_requeues_total",
		"Leased jobs re-entered into the queue (expiry or unacknowledged grant).")
	m.leasesActive = reg.Gauge("impeccable_leases_active",
		"Jobs currently out on a remote lease.")

	m.journalAppends = reg.Counter("impeccable_journal_appends_total",
		"Events appended to the write-ahead journal.")
	m.journalBytes = reg.Counter("impeccable_journal_append_bytes_total",
		"Bytes appended to the write-ahead journal.")
	m.journalSize = reg.Gauge("impeccable_journal_size_bytes",
		"Current size of the active journal segment.")
	m.journalSegments = reg.Gauge("impeccable_journal_segments",
		"Journal segment files on disk (sealed plus active).")
	m.journalRotations = reg.Counter("impeccable_journal_rotations_total",
		"Journal segment rotations (active segment sealed at SegmentBytes).")
	m.journalCompactions = reg.Counter("impeccable_journal_compactions_total",
		"Compactions that rewrote sealed segments into a checkpoint segment.")
	m.journalCompactionSeconds = reg.Histogram("impeccable_journal_compaction_seconds",
		"Wall-clock duration of journal compactions.", nil)
	m.journalFsync = reg.Histogram("impeccable_journal_fsync_seconds",
		"Latency of journal fsyncs (one per append batch).", nil)

	m.blobObjects = reg.Gauge("impeccable_blob_store_objects",
		"Objects in the content-addressed artifact store.")
	m.blobBytes = reg.Gauge("impeccable_blob_store_bytes",
		"Bytes stored in the content-addressed artifact store.")
	m.blobPuts = reg.Counter("impeccable_blob_store_puts_total",
		"Objects written to the artifact store (dedup hits excluded).")
	m.blobDeletes = reg.Counter("impeccable_blob_store_deletes_total",
		"Objects removed from the artifact store (explicit deletes and GC sweeps).")

	m.snapshots = reg.Counter("impeccable_snapshots_total",
		"Cache checkpoints written.")
	m.snapshotSeconds = reg.Histogram("impeccable_snapshot_seconds",
		"Wall-clock duration of cache checkpoint writes.", nil)

	m.cacheHits = reg.CounterVec("impeccable_cache_hits_total",
		"Cache lookups served from memory, by cache and shard.", "cache", "shard")
	m.cacheMisses = reg.CounterVec("impeccable_cache_misses_total",
		"Cache lookups that missed, by cache and shard.", "cache", "shard")
	m.cacheEvictions = reg.CounterVec("impeccable_cache_evictions_total",
		"Entries evicted at the capacity bound, by cache and shard.", "cache", "shard")
	m.cacheEntries = reg.GaugeVec("impeccable_cache_entries",
		"Entries currently cached, by cache and shard.", "cache", "shard")
	m.cachePuts = reg.CounterVec("impeccable_cache_puts_total",
		"Entries stored, by cache.", "cache")

	m.workerCacheHits = reg.CounterVec("impeccable_worker_cache_hits_total",
		"Cache hits reported by remote workers with completed jobs, by cache.", "cache")
	m.workerCacheMisses = reg.CounterVec("impeccable_worker_cache_misses_total",
		"Cache misses reported by remote workers with completed jobs, by cache.", "cache")
	m.workerCacheEvictions = reg.CounterVec("impeccable_worker_cache_evictions_total",
		"Cache evictions reported by remote workers with completed jobs, by cache.", "cache")

	m.funnelStageSeconds = reg.CounterVec("impeccable_funnel_stage_seconds_total",
		"Wall-clock seconds spent per funnel stage across completed campaigns (local and remote).", "stage")
	m.funnelWallSeconds = reg.Counter("impeccable_funnel_wall_seconds_total",
		"Total campaign wall-clock seconds across completed campaigns.")
	m.funnelRuns = reg.Counter("impeccable_funnel_runs_total",
		"Campaigns whose funnel timings have been aggregated.")

	m.tenantQueueDepth = reg.GaugeVec("impeccable_tenant_queue_depth",
		"Jobs waiting in each tenant's pending queue.", "tenant")
	m.tenantAdmissions = reg.CounterVec("impeccable_tenant_admissions_total",
		"Submissions accepted into the queue, by tenant.", "tenant")
	m.tenantRejections = reg.CounterVec("impeccable_tenant_rejections_total",
		"Submissions rejected with 429, by tenant and reason (queue_full, rate_limited).", "tenant", "reason")
	m.tenantPreemptions = reg.CounterVec("impeccable_tenant_preemptions_total",
		"Leased jobs revoked by the preemption arbiter, by victim tenant.", "tenant")
	m.tenantFunnelSeconds = reg.CounterVec("impeccable_tenant_funnel_seconds_total",
		"Campaign wall-clock seconds consumed per tenant across completed campaigns.", "tenant")

	m.httpRequests = reg.CounterVec("impeccable_http_requests_total",
		"HTTP requests served, by route pattern, method and status code.", "route", "method", "code")
	m.httpLatency = reg.HistogramVec("impeccable_http_request_seconds",
		"HTTP request latency by route pattern.", nil, "route")
	m.httpInFlight = reg.Gauge("impeccable_http_in_flight",
		"HTTP requests currently being served.")

	m.eventsPublished = reg.Counter("impeccable_events_published_total",
		"Job lifecycle events published on the event bus.")
	m.sseSubscribers = reg.Gauge("impeccable_sse_subscribers",
		"Live SSE subscriptions on campaign event streams.")

	return m
}

// Rejection reasons for the tenant rejection counter.
const (
	rejectQueueFull   = "queue_full"
	rejectRateLimited = "rate_limited"
)

// observeFunnel folds one completed campaign's stage windows into the
// cluster-wide per-stage seconds — the coordinator's own runs and
// remote workers' runs land in the same families — and charges the
// wall-clock to the owning tenant's series.
func (m *metrics) observeFunnel(tenant string, timings []campaign.StageTiming, wallSeconds float64) {
	if len(timings) == 0 && wallSeconds == 0 {
		return
	}
	for _, t := range timings {
		m.funnelStageSeconds.With(t.Stage).Add(t.Seconds)
	}
	m.funnelWallSeconds.Add(wallSeconds)
	m.funnelRuns.Inc()
	m.tenantFunnelSeconds.With(normalizeTenant(tenant)).Add(wallSeconds)
}

// addWorkerCacheStats folds the cache-stat deltas a remote worker
// reported with a completed job into the fleet-wide counters.
func (m *metrics) addWorkerCacheStats(st *WorkerRunStats) {
	if st == nil {
		return
	}
	for _, c := range []struct {
		name  string
		stats CacheStats
	}{{"score", st.ScoreCache}, {"feature", st.FeatureCache}} {
		m.workerCacheHits.With(c.name).Add(float64(c.stats.Hits))
		m.workerCacheMisses.With(c.name).Add(float64(c.stats.Misses))
		m.workerCacheEvictions.With(c.name).Add(float64(c.stats.Evictions))
	}
}

// registerCollectors wires the scrape-time mirrors: scheduler state,
// cache shard counters and the Retry-After estimate are read when
// /metrics is scraped, so their sources stay free of metric plumbing.
func (s *Service) registerCollectors() {
	m := s.met
	m.reg.GaugeFunc("impeccable_uptime_seconds",
		"Seconds since the service started.",
		func() float64 { return time.Since(s.started).Seconds() })
	m.reg.OnCollect(func() {
		counts := s.sched.stateCounts()
		for i, st := range countedStates {
			m.jobsByState.With(string(st)).Set(float64(counts[i]))
		}
		m.queueDepth.Set(float64(s.sched.queueDepth()))
		for tenant, depth := range s.sched.tenantQueueDepths() {
			m.tenantQueueDepth.With(tenant).Set(float64(depth))
		}
		m.leasesActive.Set(float64(s.sched.activeLeases()))
		m.retryAfter.Set(float64(s.sched.retryAfterSeconds()))
		mirrorCache(m, "score", s.scores.ShardStats())
		mirrorCache(m, "feature", s.features.ShardStats())
		m.cachePuts.With("score").Set(float64(s.scores.Stats().Puts))
		m.cachePuts.With("feature").Set(float64(s.features.Stats().Puts))
		if s.jl != nil {
			m.journalSize.Set(float64(s.jl.sizeBytes()))
			m.journalSegments.Set(float64(s.jl.segmentCount()))
		}
		if s.blobs != nil {
			st := s.blobs.Stats()
			m.blobObjects.Set(float64(st.Objects))
			m.blobBytes.Set(float64(st.Bytes))
			m.blobPuts.Set(float64(st.Puts))
			m.blobDeletes.Set(float64(st.Deletes))
		}
	})
}

// mirrorCache refreshes one cache's per-shard series from its shard
// counters. Counter.Set ignores regressions, so the mirrored series
// stay monotone even across racy reads.
func mirrorCache(m *metrics, cache string, shards []ShardStats) {
	for i, ss := range shards {
		sh := strconv.Itoa(i)
		m.cacheHits.With(cache, sh).Set(float64(ss.Hits))
		m.cacheMisses.With(cache, sh).Set(float64(ss.Misses))
		m.cacheEvictions.With(cache, sh).Set(float64(ss.Evictions))
		m.cacheEntries.With(cache, sh).Set(float64(ss.Entries))
	}
}

// Metrics exposes the service's registry for embedders that mount the
// exposition elsewhere or add their own instruments.
func (s *Service) Metrics() *obs.Registry { return s.met.reg }

// handleMetrics serves GET /metrics in the Prometheus text format.
// no-store: a scrape is a point-in-time read; a cached one is a lie.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	_, _ = s.met.reg.WriteTo(w)
}

// ---- request tracing ----

// ridKey is the context key carrying the request ID.
type ridKey struct{}

// RequestIDFrom returns the request ID attached by the middleware, or
// "" outside an instrumented request.
func RequestIDFrom(ctx context.Context) string {
	rid, _ := ctx.Value(ridKey{}).(string)
	return rid
}

// requestIDHeader is the trace header accepted and echoed by the API.
const requestIDHeader = "X-Request-Id"

// newRequestID mints a 16-hex-char random request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rid-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts a caller-supplied X-Request-Id when it is
// short and printable ASCII — anything else is replaced, not trusted
// into logs and the journal.
func sanitizeRequestID(rid string) string {
	if rid == "" || len(rid) > 64 {
		return ""
	}
	for i := 0; i < len(rid); i++ {
		if rid[i] <= 0x20 || rid[i] >= 0x7f {
			return ""
		}
	}
	return rid
}

// knownRoutes are the route patterns tracked individually by the HTTP
// metrics; anything else (404 noise, scanners) aggregates under
// "other" so unbounded request paths cannot mint unbounded series.
var knownRoutes = map[string]bool{
	"/api/v1/campaigns":                 true,
	"/api/v1/campaigns/{id}":            true,
	"/api/v1/campaigns/{id}/result":     true,
	"/api/v1/campaigns/{id}/events":     true,
	"/api/v1/campaigns/{id}/provenance": true,
	"/api/v1/cache":                     true,
	"/api/v1/worker/lease":              true,
	"/api/v1/worker/heartbeat":          true,
	"/api/v1/worker/complete":           true,
	"/healthz":                          true,
	"/metrics":                          true,
}

// routeLabel normalizes a request path to its route pattern.
func routeLabel(path string) string {
	const prefix = "/api/v1/campaigns/"
	if strings.HasPrefix(path, prefix) && len(path) > len(prefix) {
		rest := path[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			path = prefix + "{id}" + rest[i:]
		} else {
			path = prefix + "{id}"
		}
	}
	if knownRoutes[path] {
		return path
	}
	return "other"
}

// statusWriter captures the response code for metrics and logs while
// passing streaming capabilities (Flush for SSE) through.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so SSE streaming works
// through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps the API mux with the observability middleware:
// request-ID accept/generate/echo, per-route latency + status-code
// metrics, the in-flight gauge, and (when Options.Logf is set) one
// access-log line per request carrying the request ID.
func (s *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := sanitizeRequestID(r.Header.Get(requestIDHeader))
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set(requestIDHeader, rid)
		r = r.WithContext(context.WithValue(r.Context(), ridKey{}, rid))

		route := routeLabel(r.URL.Path)
		sw := &statusWriter{ResponseWriter: w}
		s.met.httpInFlight.Inc()
		start := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(start)
		s.met.httpInFlight.Dec()
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		s.met.httpRequests.With(route, r.Method, strconv.Itoa(sw.code)).Inc()
		s.met.httpLatency.With(route).Observe(dur.Seconds())
		if s.logf != nil {
			s.logf("http %s %s %d %s rid=%s", r.Method, r.URL.Path, sw.code,
				dur.Round(time.Microsecond), rid)
		}
	})
}
