package service

import (
	"testing"
	"time"
)

// smallReq is a campaign sized to finish in seconds.
func smallReq() SubmitRequest {
	return SubmitRequest{
		Target:        "PLPro",
		LibrarySize:   300,
		TrainSize:     60,
		CGCount:       3,
		TopCompounds:  2,
		OutliersPer:   2,
		Seed:          1,
		FastProtocols: true,
	}
}

func newTestService(t *testing.T, workers int) *Service {
	t.Helper()
	s := NewService(Options{Workers: workers, CacheShards: 8})
	t.Cleanup(s.Shutdown)
	return s
}

// TestOverlappingCampaignsShareCache is the acceptance test for the
// shared score cache: a second campaign over the same target and library
// window is served largely from cache, spending strictly fewer docking
// evaluations than the cold campaign that populated it.
func TestOverlappingCampaignsShareCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full (small) campaigns")
	}
	s := newTestService(t, 1)

	id1, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	snap1, err := s.Wait(id1, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if snap1.State != StateDone {
		t.Fatalf("job 1 = %+v", snap1)
	}
	sum1, err := s.Result(id1)
	if err != nil {
		t.Fatal(err)
	}
	// A cold campaign may still hit the cache a handful of times (its
	// training sample and S1 selection can overlap), but the bulk of its
	// docking must be real work.
	if sum1.Funnel.DockCacheHits >= sum1.Funnel.Docked/2 {
		t.Fatalf("cold campaign hit the cache %d times over %d docks",
			sum1.Funnel.DockCacheHits, sum1.Funnel.Docked)
	}
	if sum1.Funnel.DockEvals == 0 {
		t.Fatal("cold campaign spent no dock evals")
	}

	// Same target, seed and window → the same library IDs get docked.
	id2, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := s.Wait(id2, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.State != StateDone {
		t.Fatalf("job 2 = %+v", snap2)
	}
	sum2, err := s.Result(id2)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Funnel.DockCacheHits <= sum1.Funnel.DockCacheHits {
		t.Fatalf("warm campaign hit the cache %d times, cold %d — no cross-campaign reuse",
			sum2.Funnel.DockCacheHits, sum1.Funnel.DockCacheHits)
	}
	if sum2.Funnel.DockEvals >= sum1.Funnel.DockEvals {
		t.Fatalf("warm campaign spent %d evals, cold spent %d — cache saved nothing",
			sum2.Funnel.DockEvals, sum1.Funnel.DockEvals)
	}
	st := s.ScoreCacheStats()
	if st.HitRate <= 0 {
		t.Fatalf("cache hit rate = %v, want > 0", st.HitRate)
	}
	// Funnels must agree: the cache changes cost, not science.
	if sum1.Funnel.Screened != sum2.Funnel.Screened || sum1.Funnel.CG != sum2.Funnel.CG {
		t.Fatalf("funnels diverged: %+v vs %+v", sum1.Funnel, sum2.Funnel)
	}
}

func TestCancelRunningJob(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a real campaign")
	}
	s := newTestService(t, 1)
	// Big enough that it cannot finish before we cancel.
	req := smallReq()
	req.LibrarySize = 4000
	req.TrainSize = 800
	req.FastProtocols = false
	id, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for it to leave the queue, then cancel mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, _ := s.Status(id)
		if snap.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !s.Cancel(id) {
		t.Fatal("cancel returned false for a live job")
	}
	snap, err := s.Wait(id, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", snap.State)
	}
	if snap.Finished == nil {
		t.Fatal("canceled job has no finish time")
	}
	if _, err := s.Result(id); err == nil {
		t.Fatal("Result succeeded for a canceled job")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("occupies a worker with a real campaign")
	}
	s := newTestService(t, 1)
	// First job occupies the only worker; second stays queued.
	blocker := smallReq()
	blocker.LibrarySize = 4000
	blocker.TrainSize = 800
	blocker.FastProtocols = false
	id1, err := s.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if snap, _ := s.Status(id2); snap.State != StateQueued {
		t.Fatalf("job 2 state = %s, want queued", snap.State)
	}
	if !s.Cancel(id2) {
		t.Fatal("cancel returned false")
	}
	if snap, _ := s.Status(id2); snap.State != StateCanceled {
		t.Fatalf("job 2 state = %s, want canceled", snap.State)
	}
	s.Cancel(id1)
	if _, err := s.Wait(id1, time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestService(t, 1)
	if _, err := s.Submit(SubmitRequest{Target: "NoSuchProtease"}); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, err := s.Submit(SubmitRequest{Target: "PLPro", LibrarySize: 3}); err == nil {
		t.Fatal("tiny library accepted")
	}
	if _, err := s.Submit(SubmitRequest{Target: "PLPro", TrainSize: 2}); err == nil {
		t.Fatal("tiny train size accepted")
	}
	if _, err := s.Submit(SubmitRequest{Target: "PLPro", LibrarySize: MaxLibrarySize + 1}); err == nil {
		t.Fatal("oversized library accepted")
	}
	if _, err := s.Submit(SubmitRequest{Target: "PLPro", CGCount: MaxCGCount + 1}); err == nil {
		t.Fatal("oversized cg_count accepted")
	}
	if _, ok := s.Status("job-999999"); ok {
		t.Fatal("status of unknown job reported ok")
	}
	if s.Cancel("job-999999") {
		t.Fatal("cancel of unknown job reported true")
	}
	if _, err := s.Result("job-999999"); err == nil {
		t.Fatal("result of unknown job succeeded")
	}
}

func TestResultRetentionTrimming(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full (small) campaigns")
	}
	s := NewService(Options{Workers: 1, CacheShards: 8, MaxRetainedResults: 1})
	t.Cleanup(s.Shutdown)
	id1, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(id1, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FullResult(id1); err != nil {
		t.Fatalf("full result unavailable before trimming: %v", err)
	}
	req2 := smallReq()
	req2.LibOffset = 1000
	id2, err := s.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(id2, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	// Bound is 1: the older job's full result is released, the newer
	// kept; summaries survive for both.
	if _, err := s.FullResult(id1); err == nil {
		t.Fatal("job 1's full result survived past the retention bound")
	}
	if _, err := s.FullResult(id2); err != nil {
		t.Fatalf("job 2's full result missing: %v", err)
	}
	for _, id := range []string{id1, id2} {
		sum, err := s.Result(id)
		if err != nil || sum.Funnel.Screened == 0 {
			t.Fatalf("summary for %s lost: %+v, %v", id, sum, err)
		}
	}
}

func TestShutdownRejectsSubmissions(t *testing.T) {
	s := NewService(Options{Workers: 1})
	s.Shutdown()
	if _, err := s.Submit(smallReq()); err == nil {
		t.Fatal("submit succeeded after shutdown")
	}
	// Idempotent.
	s.Shutdown()
}
