package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"impeccable/internal/blob"
	"impeccable/internal/campaign"
	"impeccable/internal/dock"
	"impeccable/internal/receptor"
)

// Options configures a Service.
type Options struct {
	// Workers bounds how many campaigns run concurrently; 0 means half
	// of GOMAXPROCS (each campaign parallelizes internally too).
	Workers int
	// CampaignWorkers bounds the intra-campaign worker pools (docking,
	// screening, ESMACS); 0 means GOMAXPROCS.
	CampaignWorkers int
	// CacheShards is the lock-stripe width of the shared caches; 0
	// means 64.
	CacheShards int
	// MaxCacheEntries soft-bounds the score cache; 0 means unbounded.
	MaxCacheEntries int
	// MaxRetainedResults bounds how many completed jobs keep their full
	// in-memory campaign result (trajectories included); older jobs
	// retain only the small summary. 0 means 64; negative = unbounded.
	MaxRetainedResults int
	// Targets are the receptors the service accepts campaigns against;
	// nil means receptor.StandardTargets().
	Targets []*receptor.Target
	// Streaming routes every job through the streaming funnel
	// (campaign.Config.Streaming): ML1 screening and S1 docking overlap,
	// and the sharded score/feature caches are read and populated
	// mid-stream. Individual submissions can also opt in per job.
	Streaming bool
	// StateDir, when non-empty, makes the service crash-safe: job
	// lifecycle events are written ahead to segmented
	// <StateDir>/journal-<seq>.jsonl files (fsynced per batch), large
	// payloads spill to the content-addressed <StateDir>/blobs store,
	// and the score/feature caches are periodically checkpointed via
	// the <StateDir>/caches.snap manifest. Open replays the journal:
	// terminal jobs are served from their persisted summaries, and jobs
	// that were queued or running at crash time are re-enqueued under
	// their original IDs (Seed and LibOffset preserved, so reruns are
	// deterministic and warm-cache-identical). Empty = in-memory only.
	StateDir string
	// SnapshotEvery is the cadence of the periodic cache checkpoint
	// when StateDir is set; 0 means 30s. A checkpoint is also taken
	// after every job that reaches a terminal state and at Shutdown.
	SnapshotEvery time.Duration
	// SegmentBytes is the journal's rotation threshold: the active
	// journal-<seq>.jsonl segment seals once it would exceed this many
	// bytes, and sealed segments compact into checkpoint events so
	// replay scales with live+retained jobs. 0 means 4 MiB.
	SegmentBytes int64
	// InlineLimit is the largest event payload (SubmitRequest,
	// ResultSummary) kept inline in a journal line; bigger payloads
	// spill to the content-addressed blob store under
	// <StateDir>/blobs and the line carries a {sha256, size} ref.
	// 0 means 32 KiB; negative disables spilling.
	InlineLimit int
	// CompactEvery is the cadence of journal compaction and blob GC
	// when StateDir is set; 0 means 1m, negative disables the loop
	// (CompactNow still works).
	CompactEvery time.Duration
	// MaxJobRecords bounds how many terminal jobs stay in the
	// in-memory job table (and so in listings); the oldest terminal
	// records are pruned first, queued/running jobs never. 0 means
	// unbounded — with StateDir set the journal keeps full history
	// regardless of pruning.
	MaxJobRecords int
	// MaxQueued bounds each tenant's pending queue: a tenant's
	// submissions beyond it fail with ErrQueueFull (HTTP 429), so one
	// tenant cannot queue jobs until the server OOMs. Per tenant, not
	// global — a flooding tenant filling its own bound cannot make the
	// service 429 everyone else. 0 means unbounded. Tenants listed in
	// Tenants may override it individually.
	MaxQueued int
	// Tenants configures named tenants' scheduling weights, queue and
	// concurrency bounds, and submit rate limits. Tenants not listed
	// here get DefaultTenantLimits (resolved against MaxQueued); nil
	// means every tenant is default. Submissions without a tenant land
	// on DefaultTenant ("default").
	Tenants map[string]TenantLimits
	// DefaultTenantLimits applies to tenants absent from Tenants, and
	// fills the zero fields of those present. Its own zero fields fall
	// back to weight 1, MaxQueued above, no concurrency cap, no rate
	// limit.
	DefaultTenantLimits TenantLimits
	// PreemptAfter arms lease preemption: a starved tenant whose queue
	// head carries Priority > 0 and has waited this long below its fair
	// share may revoke the youngest leased job of the most over-share
	// tenant (the job requeues and reruns byte-identically, like a
	// lease expiry). 0 disables preemption.
	PreemptAfter time.Duration
	// RemoteOnly starts the service with zero in-process workers: the
	// coordinator only queues, leases and records jobs, and every
	// campaign executes on remote workers (cmd/impeccable-worker)
	// pulling work through the lease API.
	RemoteOnly bool
	// LeaseTTL is the default remote-worker lease duration: a worker
	// that stops heartbeating for this long loses its job, which
	// re-enters the queue under its original ID (Seed and LibOffset
	// preserved, so the rerun is byte-identical). Workers may request a
	// different TTL per lease, clamped to [1s, 5m]. 0 means 30s.
	LeaseTTL time.Duration
	// Logf, when set, receives one access-log line per instrumented
	// HTTP request (method, path, status, latency, request ID). Nil
	// disables access logging; metrics are recorded either way.
	Logf func(format string, args ...any)
}

// Service is a long-lived, multi-tenant campaign evaluation service:
// submitted campaigns queue onto a bounded worker pool and share a
// sharded docking-score cache and feature cache, so overlapping
// submissions dedupe their most expensive evaluations.
type Service struct {
	scores     *ScoreCache
	features   *FeatureCache
	targets    map[string]*receptor.Target
	sched      *scheduler
	workers    int  // per-campaign worker width
	maxResults int  // full campaign results retained; <0 = unbounded
	streaming  bool // route all jobs through the streaming funnel
	started    time.Time
	met        *metrics
	logf       func(format string, args ...any)
	limiter    *tenantLimiter // per-tenant submit token buckets

	// Persistence (zero-valued when Options.StateDir is empty).
	stateDir string
	jl       *journal
	blobs    blob.Store
	snapMu   sync.Mutex    // serializes checkpoint writers; guards snapRef
	snapRef  *blob.Ref     // the live cache-snapshot blob (GC pin)
	snapStop chan struct{} // stops the snapshot and compaction loops
	snapWG   sync.WaitGroup
	stopOnce sync.Once // persistence teardown runs once
}

// SubmitRequest describes one campaign submission. Zero-valued fields
// take the campaign defaults for the target.
type SubmitRequest struct {
	// Tenant names the submitting tenant for fair-share scheduling,
	// quotas and rate limits; empty means DefaultTenant (the HTTP layer
	// also accepts an X-Tenant header). Names are 1–64 chars of
	// [A-Za-z0-9._-]. Scheduling metadata only: it never changes the
	// campaign's scientific output.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the submission's priority class within its tenant
	// (0 = normal, up to MaxPriority). Higher-priority jobs dequeue
	// first within the tenant, and a starved tenant whose queue head
	// carries Priority > 0 may trigger preemption.
	Priority      int    `json:"priority,omitempty"`
	Target        string `json:"target"` // receptor name, e.g. "PLPro"
	LibrarySize   int    `json:"library_size,omitempty"`
	TrainSize     int    `json:"train_size,omitempty"`
	CGCount       int    `json:"cg_count,omitempty"`
	TopCompounds  int    `json:"top_compounds,omitempty"`
	OutliersPer   int    `json:"outliers_per,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
	LibOffset     uint64 `json:"lib_offset,omitempty"` // library window start
	FastProtocols bool   `json:"fast_protocols,omitempty"`
	// Streaming opts this job into the streaming funnel (overlapped ML1
	// screening and S1 docking); implied when the service itself was
	// built with Options.Streaming.
	Streaming bool `json:"streaming,omitempty"`
}

// jobResult pairs the campaign result with the serializable summary.
// full may be released by retention trimming; summary is kept forever.
type jobResult struct {
	full    *campaign.Result
	summary ResultSummary
}

// ResultSummary is the JSON-friendly projection of a campaign result.
// Funnel carries the cost accounting (DockEvals, DockCacheHits).
type ResultSummary struct {
	Funnel          campaign.FunnelStats     `json:"funnel"`
	Top             []campaign.TopComparison `json:"top"`
	ScientificYield float64                  `json:"scientific_yield"`
}

// NewService builds and starts a service; call Shutdown when done. It
// panics if Options.StateDir is set but unusable — services that need
// to handle persistence errors should call Open instead.
func NewService(opts Options) *Service {
	s, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds and starts a service. With Options.StateDir set it
// restores durable state first: the cache checkpoint is imported, the
// job journal is replayed (terminal jobs become servable records;
// interrupted jobs re-enter the queue under their original IDs), and
// only then does the service accept new submissions.
func Open(opts Options) (*Service, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / 2
		if workers < 1 {
			workers = 1
		}
	}
	shards := opts.CacheShards
	if shards <= 0 {
		shards = 64
	}
	targets := opts.Targets
	if targets == nil {
		targets = receptor.StandardTargets()
	}
	maxResults := opts.MaxRetainedResults
	if maxResults == 0 {
		maxResults = 64
	}
	s := &Service{
		scores:     NewScoreCache(shards, opts.MaxCacheEntries),
		features:   NewFeatureCache(shards, opts.MaxCacheEntries),
		targets:    make(map[string]*receptor.Target, len(targets)),
		workers:    opts.CampaignWorkers,
		maxResults: maxResults,
		streaming:  opts.Streaming,
		started:    time.Now(),
		met:        newMetrics(),
		logf:       opts.Logf,
		stateDir:   opts.StateDir,
		snapStop:   make(chan struct{}),
	}
	for _, t := range targets {
		s.targets[t.Name] = t
	}
	// One resolver feeds both the scheduler (weights, queue and
	// concurrency bounds) and the submit rate limiter, so a tenant's
	// limits cannot skew between the two layers. The map is copied:
	// callers mutating their Options after Open must not race the
	// scheduler.
	tenantCfg := make(map[string]TenantLimits, len(opts.Tenants))
	for name, lim := range opts.Tenants {
		tenantCfg[name] = lim
	}
	defaults := opts.DefaultTenantLimits
	if defaults.MaxQueued == 0 {
		defaults.MaxQueued = opts.MaxQueued
	}
	limitsFor := func(tenant string) TenantLimits {
		return tenantCfg[tenant].withDefaults(defaults)
	}
	s.limiter = newTenantLimiter(limitsFor)
	cfg := schedConfig{
		workers:      workers,
		remoteOnly:   opts.RemoteOnly,
		leaseTTL:     opts.LeaseTTL,
		maxQueued:    opts.MaxQueued,
		maxRecords:   opts.MaxJobRecords,
		limits:       limitsFor,
		preemptAfter: opts.PreemptAfter,
		met:          s.met,
		bus:          newEventBus(s.met),
	}
	var replayed []*job
	var maxID int
	if s.stateDir != "" {
		if err := os.MkdirAll(s.stateDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: creating state dir: %w", err)
		}
		blobs, err := blob.Open(filepath.Join(s.stateDir, blobDirName))
		if err != nil {
			return nil, err
		}
		s.blobs = blobs
		var events []journalEvent
		if s.jl, events, err = openJournal(s.stateDir, blobs, opts.SegmentBytes, opts.InlineLimit); err != nil {
			return nil, err
		}
		if s.snapRef, err = loadSnapshot(s.stateDir, blobs, s.scores, s.features); err != nil {
			return nil, err
		}
		replayed, maxID = replayJournal(events, blobs)
		s.jl.onAppend = func(events, bytes int, fsync time.Duration) {
			s.met.journalAppends.Add(float64(events))
			s.met.journalBytes.Add(float64(bytes))
			s.met.journalFsync.Observe(fsync.Seconds())
		}
		s.jl.onRotate = func() { s.met.journalRotations.Inc() }
		cfg.record = s.jl.append
		cfg.recordBatch = s.jl.appendBatch
		cfg.onTerminal = func() { _ = s.Snapshot() }
	}
	s.sched = newScheduler(cfg, s.runJob)
	s.registerCollectors()
	if len(replayed) > 0 || maxID > 0 {
		s.sched.restore(replayed, maxID)
		s.sched.pruneTerminal()
	}
	if s.stateDir != "" {
		every := opts.SnapshotEvery
		if every <= 0 {
			every = 30 * time.Second
		}
		s.snapWG.Add(1)
		go s.snapshotLoop(every)
		if opts.CompactEvery >= 0 {
			compactEvery := opts.CompactEvery
			if compactEvery == 0 {
				compactEvery = defaultCompactEvery
			}
			s.snapWG.Add(1)
			go s.compactLoop(compactEvery)
		}
	}
	return s, nil
}

// snapshotLoop periodically checkpoints the caches so that even a
// mid-campaign crash keeps most of the accumulated docking labels.
func (s *Service) snapshotLoop(every time.Duration) {
	defer s.snapWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = s.Snapshot()
		case <-s.snapStop:
			return
		}
	}
}

// Snapshot checkpoints the score and feature caches: the gob payload
// goes to the content-addressed blob store and a small manifest naming
// it is installed atomically (temp file + rename). An unchanged cache
// dedupes to the existing blob and skips the write entirely. A no-op
// without a StateDir.
func (s *Service) Snapshot() error {
	if s.stateDir == "" {
		return nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()
	ref, skipped, err := saveSnapshot(s.stateDir, s.blobs, s.scores, s.features, s.snapRef)
	if err == nil {
		s.snapRef = &ref
		if !skipped {
			s.met.snapshots.Inc()
			s.met.snapshotSeconds.Observe(time.Since(start).Seconds())
		}
	}
	return err
}

// Targets lists the receptor names the service accepts.
func (s *Service) Targets() []string {
	names := make([]string, 0, len(s.targets))
	for n := range s.targets {
		names = append(names, n)
	}
	return names
}

// Per-request ceilings: one tenant must not be able to OOM or
// monopolize the shared server with a single oversized submission.
const (
	MaxLibrarySize  = 1_000_000
	MaxTrainSize    = 100_000
	MaxCGCount      = 500
	MaxTopCompounds = 100
	MaxOutliersPer  = 100
)

// Submit validates a request and enqueues it, returning the job ID.
func (s *Service) Submit(req SubmitRequest) (string, error) {
	return s.SubmitCtx(context.Background(), req)
}

// SubmitCtx is Submit carrying the request context: when the context
// came through the HTTP middleware, its request ID is journaled with
// the submitted event so the durable record traces back to the call
// that caused it.
func (s *Service) SubmitCtx(ctx context.Context, req SubmitRequest) (string, error) {
	if err := validateTenant(req.Tenant); err != nil {
		return "", err
	}
	if req.Priority < 0 || req.Priority > MaxPriority {
		return "", fmt.Errorf("service: priority %d out of range [0, %d]", req.Priority, MaxPriority)
	}
	if _, ok := s.targets[req.Target]; !ok {
		return "", fmt.Errorf("service: unknown target %q (have %v)", req.Target, s.Targets())
	}
	for _, lim := range []struct {
		name     string
		val, max int
	}{
		{"library_size", req.LibrarySize, MaxLibrarySize},
		{"train_size", req.TrainSize, MaxTrainSize},
		{"cg_count", req.CGCount, MaxCGCount},
		{"top_compounds", req.TopCompounds, MaxTopCompounds},
		{"outliers_per", req.OutliersPer, MaxOutliersPer},
	} {
		if lim.val > lim.max {
			return "", fmt.Errorf("service: %s %d too large (max %d)", lim.name, lim.val, lim.max)
		}
	}
	if req.LibrarySize != 0 && req.LibrarySize < 10 {
		return "", fmt.Errorf("service: library_size %d too small (min 10)", req.LibrarySize)
	}
	if req.TrainSize != 0 && req.TrainSize < 10 {
		return "", fmt.Errorf("service: train_size %d too small (min 10)", req.TrainSize)
	}
	// Admission control, after validation (a malformed request must not
	// burn a token) and before the scheduler (the limiter's mutex is
	// never held together with the scheduler's).
	now := time.Now()
	tenant := normalizeTenant(req.Tenant)
	if ok, wait := s.limiter.allow(tenant, now); !ok {
		s.met.tenantRejections.With(tenant, rejectRateLimited).Inc()
		return "", &RateLimitError{Tenant: tenant, RetryAfter: wait}
	}
	return s.sched.submitTraced(req, now, RequestIDFrom(ctx))
}

// BaseConfig translates a submission into the campaign config knobs
// that determine its scientific output — the part shared by the
// coordinator's in-process execution and remote workers, so both run
// byte-identical science. Callers attach caches, worker width,
// cancellation and progress observers on top.
func BaseConfig(req SubmitRequest, t *receptor.Target) campaign.Config {
	cfg := campaign.DefaultConfig(t)
	if req.LibrarySize > 0 {
		cfg.LibrarySize = req.LibrarySize
	}
	if req.TrainSize > 0 {
		cfg.TrainSize = req.TrainSize
	}
	if req.CGCount > 0 {
		cfg.CGCount = req.CGCount
	}
	if req.TopCompounds > 0 {
		cfg.TopCompounds = req.TopCompounds
	}
	if req.OutliersPer > 0 {
		cfg.OutliersPer = req.OutliersPer
	}
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	cfg.FastProtocols = req.FastProtocols
	cfg.Streaming = req.Streaming
	return cfg
}

// configFor translates a submission into a campaign config wired to the
// shared caches and the job's cancellation channel.
func (s *Service) configFor(j *job) campaign.Config {
	t := s.targets[j.req.Target]
	cfg := BaseConfig(j.req, t)
	cfg.Streaming = cfg.Streaming || s.streaming
	cfg.Workers = s.workers
	cfg.DockCache = s.scores.ForTarget(t.Name)
	cfg.Features = s.features
	cfg.Cancel = j.cancel
	cfg.Progress = func(stage string, frac float64) {
		j.mu.Lock()
		// Publish only meaningful movement — a stage change or ≥1% of
		// progress — so a chatty campaign cannot churn the job's bounded
		// event ring out of its replay window.
		notable := stage != j.stage || frac >= j.progress+0.01 || (frac >= 1 && j.progress < 1)
		j.stage, j.progress = stage, frac
		if notable {
			s.sched.publishLocked(j, evTypeProgress, time.Now())
		}
		j.mu.Unlock()
	}
	return cfg
}

// runJob executes one job's campaign; invoked by scheduler workers. A
// panicking campaign fails its job, never the server — every other
// tenant's jobs keep running.
func (s *Service) runJob(j *job) {
	cfg := s.configFor(j)
	res, err := func() (res *campaign.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("service: campaign panicked: %v", r)
			}
		}()
		return campaign.RunWithPool(cfg, nil, j.req.LibOffset)
	}()
	j.mu.Lock()
	switch {
	case errors.Is(err, campaign.ErrCanceled):
		j.state = StateCanceled //impeccable:unjournaled in-process runner journals once after the run settles
	case err != nil:
		j.state = StateFailed //impeccable:unjournaled in-process runner journals once after the run settles
		j.err = err.Error()
	default:
		j.progress = 1
		j.result = &jobResult{
			full: res,
			summary: ResultSummary{
				Funnel:          res.Funnel,
				Top:             res.Top,
				ScientificYield: res.ScientificYield,
			},
		}
	}
	j.mu.Unlock()
	if err == nil && res != nil {
		s.met.observeFunnel(j.tenant, res.Funnel.Timings, res.Funnel.WallSeconds)
	}
	s.trimResults()
}

// trimResults releases the full campaign results of the oldest done
// jobs beyond the retention bound. Summaries (what the HTTP API serves)
// are kept for every job; only the heavyweight in-memory results go.
func (s *Service) trimResults() {
	if s.maxResults < 0 {
		return
	}
	var withFull []*job
	for _, j := range s.sched.jobsInOrder() {
		j.mu.Lock()
		if j.result != nil && j.result.full != nil {
			withFull = append(withFull, j)
		}
		j.mu.Unlock()
	}
	for _, j := range withFull[:max(0, len(withFull)-s.maxResults)] {
		j.mu.Lock()
		if j.result != nil {
			j.result.full = nil
		}
		j.mu.Unlock()
	}
}

// LeaseGrant is what a remote worker receives from Lease: the job, its
// full submission (Seed and LibOffset included, Streaming resolved
// against the service-wide option) and the lease window. The worker
// must heartbeat before ExpiresAt or the job is re-enqueued.
type LeaseGrant struct {
	JobID      string        `json:"job_id"`
	Req        SubmitRequest `json:"req"`
	TTLSeconds float64       `json:"ttl_seconds"`
	ExpiresAt  time.Time     `json:"expires_at"`
	// Token authenticates this lease's heartbeats and completion.
	// Worker IDs are published in job listings; the token is shared
	// only with the lease holder, so a forged complete (which would
	// poison the shared score cache) needs more than a listing read.
	Token string `json:"token"`
}

// Lease hands the next runnable job to the named remote worker under a
// TTL lease (ttl 0 = the service default, explicit values clamped to
// [1s, 5m]). Returns (nil, nil) when no work is available.
func (s *Service) Lease(workerID string, ttl time.Duration) (*LeaseGrant, error) {
	j, err := s.sched.lease(workerID, ttl, time.Now())
	if err != nil || j == nil {
		return nil, err
	}
	j.mu.Lock()
	grant := &LeaseGrant{
		JobID:      j.id,
		Req:        j.req,
		TTLSeconds: j.leaseTTL.Seconds(),
		ExpiresAt:  j.leaseExpiry,
		Token:      j.leaseToken,
	}
	j.mu.Unlock()
	// Resolve the service-wide streaming option into the shipped
	// request so the worker reproduces the coordinator's execution path.
	grant.Req.Streaming = grant.Req.Streaming || s.streaming
	return grant, nil
}

// Heartbeat extends the named worker's lease on a job and records the
// remotely observed stage/progress, returning the new expiry. The
// token must be the one granted with the lease. A heartbeat that comes
// back ErrLeaseLost tells the worker to abandon the run (the lease
// expired, or the job was canceled).
func (s *Service) Heartbeat(workerID, token, jobID, stage string, progress float64) (time.Time, error) {
	return s.sched.heartbeat(workerID, token, jobID, stage, progress, time.Now())
}

// WorkerResult is the outcome a remote worker posts back for a leased
// job: exactly one of Summary (success), Error (failure) or Canceled,
// plus the score/feature-cache deltas the run produced.
type WorkerResult struct {
	Summary  *ResultSummary `json:"summary,omitempty"`
	Error    string         `json:"error,omitempty"`
	Canceled bool           `json:"canceled,omitempty"`
	Scores   []ScoreEntry   `json:"scores,omitempty"`
	Features []FeatureEntry `json:"features,omitempty"`
	// Stats carries the run's observability payload — the worker's
	// local cache effectiveness and stage timings — so the coordinator's
	// /metrics shows fleet-wide behavior, not just its own.
	Stats *WorkerRunStats `json:"stats,omitempty"`
}

// WorkerRunStats is what one remote run reports about itself: the
// worker-local cache deltas for the run (hits/misses/evictions during
// this job only, not since worker start) and the funnel's per-stage
// wall-clock windows.
type WorkerRunStats struct {
	ScoreCache   CacheStats             `json:"score_cache"`
	FeatureCache CacheStats             `json:"feature_cache"`
	Timings      []campaign.StageTiming `json:"timings,omitempty"`
	WallSeconds  float64                `json:"wall_seconds,omitempty"`
}

// Complete finalizes a leased job with a remote worker's result and
// merges its cache deltas into the coordinator's sharded caches. The
// deltas are merged only when the completion is accepted: an unknown
// job, a lost lease or a malformed outcome must not be able to write
// into the shared caches (a poisoned score entry would silently break
// the byte-identical determinism every rerun relies on).
func (s *Service) Complete(workerID, token, jobID string, res WorkerResult) error {
	state := StateDone
	switch {
	case res.Canceled:
		state = StateCanceled
	case res.Error != "":
		state = StateFailed
	case res.Summary == nil:
		return fmt.Errorf("service: complete for job %s carries no summary, error or cancel", jobID)
	}
	// Resolve the job's tenant before completing: the completion itself
	// may prune the record (MaxJobRecords). The field is immutable after
	// submit, so the unlocked read is safe.
	tenant := DefaultTenant
	if j, ok := s.sched.get(jobID); ok {
		tenant = j.tenant
	}
	if err := s.sched.completeRemote(workerID, token, jobID, state, res.Error, res.Summary, time.Now()); err != nil {
		return err
	}
	s.scores.Import(res.Scores)
	s.features.Import(res.Features)
	// Fold the run's observability payload into the fleet-wide series —
	// only now, after the completion was accepted, so a lost lease
	// cannot inflate the counters.
	s.met.addWorkerCacheStats(res.Stats)
	if state == StateDone {
		timings, wall := []campaign.StageTiming(nil), 0.0
		if res.Stats != nil && len(res.Stats.Timings) > 0 {
			timings, wall = res.Stats.Timings, res.Stats.WallSeconds
		} else if res.Summary != nil {
			timings, wall = res.Summary.Funnel.Timings, res.Summary.Funnel.WallSeconds
		}
		s.met.observeFunnel(tenant, timings, wall)
	}
	// The per-terminal checkpoint runs here, after the merge
	// (completeRemote deliberately skips onTerminal): a checkpoint
	// taken before the deltas land would systematically exclude this
	// very job's docking labels — the main warmth a remote run
	// contributes.
	_ = s.Snapshot()
	return nil
}

// Draining reports whether Shutdown has begun: a draining coordinator
// answers health probes with 503 so load balancers stop routing to it.
func (s *Service) Draining() bool { return s.sched.isDraining() }

// Status returns the snapshot of one job.
func (s *Service) Status(id string) (JobSnapshot, bool) {
	j, ok := s.sched.get(id)
	if !ok {
		return JobSnapshot{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked(), true
}

// Jobs lists all jobs in submission order.
func (s *Service) Jobs() []JobSnapshot { return s.sched.list() }

// JobQuery bounds and filters a Jobs listing.
type JobQuery struct {
	State  JobState // only jobs in this state; "" = all
	Tenant string   // only this tenant's jobs; "" = all
	After  string   // exclusive job-ID cursor (pagination); "" = from the start
	Limit  int      // max snapshots returned; <= 0 = unbounded
}

// JobsFiltered lists jobs in submission order under the query's
// bounds; always returns a non-nil slice.
func (s *Service) JobsFiltered(q JobQuery) []JobSnapshot {
	return s.sched.listFiltered(jobQuery{state: q.State, tenant: q.Tenant, after: q.After, limit: q.Limit})
}

// Cancel requests cancellation of a job; false if the ID is unknown
// or the service is already shut down.
func (s *Service) Cancel(id string) bool {
	_, err := s.sched.cancelJob(id)
	return err == nil
}

// Result returns the summary of a completed job. The error distinguishes
// unknown IDs from jobs that are not (or never will be) done.
func (s *Service) Result(id string) (ResultSummary, error) {
	j, ok := s.sched.get(id)
	if !ok {
		return ResultSummary{}, ErrUnknownJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StateDone && j.result != nil:
		return j.result.summary, nil
	case j.state == StateDone && j.summaryRef != nil:
		// The summary was spilled to the blob store (journal replay
		// resolves artifacts lazily, so cold starts scale with event
		// count, not artifact bytes). Resolve and cache it now; the read
		// is hash-verified, so a corrupt artifact surfaces here instead
		// of being served.
		sum, err := s.resolveSummary(j.summaryRef)
		if err != nil {
			return ResultSummary{}, fmt.Errorf("service: job %s summary: %w", id, err)
		}
		j.result = &jobResult{summary: *sum}
		return *sum, nil
	case j.state.Terminal():
		return ResultSummary{}, fmt.Errorf("%w: job %s is %s", ErrNoResult, id, j.state)
	default:
		return ResultSummary{}, fmt.Errorf("%w: job %s is %s", ErrNotFinished, id, j.state)
	}
}

// resolveSummary loads a spilled ResultSummary from the blob store.
func (s *Service) resolveSummary(ref *blob.Ref) (*ResultSummary, error) {
	if s.blobs == nil {
		return nil, fmt.Errorf("no blob store attached")
	}
	data, err := s.blobs.Get(*ref)
	if err != nil {
		return nil, err
	}
	var sum ResultSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		return nil, fmt.Errorf("decoding summary artifact: %w", err)
	}
	return &sum, nil
}

// FullResult returns the complete in-memory campaign result of a done
// job (for in-process embedders; not exposed over HTTP). Returns
// ErrNoResult once retention trimming has released the full result —
// the summary remains available via Result.
func (s *Service) FullResult(id string) (*campaign.Result, error) {
	j, ok := s.sched.get(id)
	if !ok {
		return nil, ErrUnknownJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone && j.result != nil {
		if j.result.full == nil {
			return nil, fmt.Errorf("%w: job %s's full result was released by retention trimming", ErrNoResult, id)
		}
		return j.result.full, nil
	}
	return nil, fmt.Errorf("%w: job %s is %s", ErrNotFinished, id, j.state)
}

// Sentinel errors for Result/FullResult.
var (
	ErrUnknownJob  = errors.New("service: unknown job")
	ErrNotFinished = errors.New("service: job not finished")
	ErrNoResult    = errors.New("service: job produced no result")
)

// ScoreCacheStats snapshots the shared docking-score cache.
func (s *Service) ScoreCacheStats() CacheStats { return s.scores.Stats() }

// FeatureCacheStats snapshots the shared feature cache.
func (s *Service) FeatureCacheStats() CacheStats { return s.features.Stats() }

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration { return time.Since(s.started) }

// Shutdown gracefully drains the service: new submissions are
// rejected, the pending queue stops popping, running jobs are
// canceled, and — with a StateDir — a final cache checkpoint is
// written and the journal is closed. Jobs interrupted by the drain are
// not journaled as terminal, so a service reopened on the same
// StateDir re-enqueues them. Idempotent.
func (s *Service) Shutdown() {
	s.sched.shutdown()
	if s.stateDir == "" {
		return
	}
	s.stopOnce.Do(func() {
		close(s.snapStop)
		s.snapWG.Wait()
		_ = s.Snapshot()
		_ = s.jl.close()
	})
}

// Wait blocks until the job reaches a terminal state or the timeout
// elapses, returning the final snapshot.
func (s *Service) Wait(id string, timeout time.Duration) (JobSnapshot, error) {
	deadline := time.Now().Add(timeout)
	for {
		snap, ok := s.Status(id)
		if !ok {
			return JobSnapshot{}, ErrUnknownJob
		}
		if snap.State.Terminal() {
			return snap, nil
		}
		if time.Now().After(deadline) {
			return snap, fmt.Errorf("service: job %s still %s after %v", id, snap.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ScoreCacheForTarget exposes a per-target cache view for in-process
// embedders that drive dock.Engine directly. The view shares entries
// with the service's own campaigns, which dock with the default
// throughput parameters (Runs=2) — attach it only to engines using the
// same configuration (see dock.ScoreCache).
func (s *Service) ScoreCacheForTarget(name string) dock.ScoreCache {
	return s.scores.ForTarget(name)
}
