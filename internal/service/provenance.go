// Merkle provenance over the journal: every event hashes its
// predecessor and its own canonical JSON, a job's terminal event is
// followed by a sealed event committing to the Merkle root of the
// chain, and any event's inclusion is checkable from the root plus a
// logarithmic sibling path. The trust model is tamper-evidence, like
// an unsigned git history: the chain does not prove who wrote the
// journal, it proves the history served today is byte-for-byte the
// history that produced the result — a bit flipped anywhere (an event
// field, a spilled artifact, a cache snapshot) fails verification.
package service

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"impeccable/internal/blob"
	"impeccable/internal/merkle"
)

// ProofStep is one sibling on the path from an event hash to the
// campaign's Merkle root. Left reports the sibling's side: true means
// it is the left child (hash order: sibling then current).
type ProofStep struct {
	Hash string `json:"hash"`
	Left bool   `json:"left"`
}

// InclusionProof connects one event hash to the root.
type InclusionProof struct {
	Leaf  string      `json:"leaf"`
	Index int         `json:"index"`
	Steps []ProofStep `json:"steps"`
}

// Provenance is what GET /api/v1/campaigns/{id}/provenance serves: the
// job's event-hash chain, the Merkle root sealed at terminal time, and
// an inclusion proof for one event (the last, unless ?event= picks
// another).
type Provenance struct {
	Job    string   `json:"job"`
	Sealed bool     `json:"sealed"`
	Root   string   `json:"root,omitempty"`
	Events int      `json:"events"`
	Leaves []string `json:"leaves"`
	// Proof is present once the chain is sealed: fold the steps over
	// the leaf (left ? H(0x01||sib||cur) : H(0x01||cur||sib)) and the
	// result must equal Root.
	Proof *InclusionProof `json:"proof,omitempty"`
}

// ErrNoProvenance distinguishes "job exists but predates provenance or
// has no journal" from unknown jobs.
var ErrNoProvenance = fmt.Errorf("service: no provenance recorded")

// provenance builds the job's provenance record with a proof for the
// event at index (negative = the last event).
func (jl *journal) provenance(jobID string, index int) (Provenance, error) {
	jl.mu.Lock()
	c := jl.prov[jobID]
	if c == nil {
		jl.mu.Unlock()
		return Provenance{}, ErrNoProvenance
	}
	c = c.clone()
	jl.mu.Unlock()
	p := Provenance{
		Job:    jobID,
		Sealed: c.sealed,
		Root:   c.root,
		Events: len(c.leaves),
		Leaves: c.leaves,
	}
	if !c.sealed || len(c.leaves) == 0 {
		return p, nil
	}
	if index < 0 {
		index = len(c.leaves) - 1
	}
	if index >= len(c.leaves) {
		return Provenance{}, fmt.Errorf("service: event index %d out of range (job has %d)", index, len(c.leaves))
	}
	leaves, err := decodeLeaves(c.leaves)
	if err != nil {
		return Provenance{}, err
	}
	steps := merkle.Proof(leaves, index)
	proof := &InclusionProof{Leaf: c.leaves[index], Index: index, Steps: []ProofStep{}}
	for _, s := range steps {
		proof.Steps = append(proof.Steps, ProofStep{Hash: hex.EncodeToString(s.Hash), Left: s.Left})
	}
	p.Proof = proof
	return p, nil
}

// Provenance returns a job's provenance record with an inclusion
// proof for the event at index (negative = last). ErrUnknownJob for
// IDs the service does not know; ErrNoProvenance when the service
// runs without persistence or the job predates provenance chains.
func (s *Service) Provenance(jobID string, index int) (Provenance, error) {
	if _, ok := s.sched.get(jobID); !ok {
		return Provenance{}, ErrUnknownJob
	}
	if s.jl == nil {
		return Provenance{}, ErrNoProvenance
	}
	return s.jl.provenance(jobID, index)
}

// VerifyReport is what VerifyStateDir found.
type VerifyReport struct {
	Events      int      `json:"events"`
	Jobs        int      `json:"jobs"`
	Sealed      int      `json:"sealed"`      // jobs with a verified Merkle root
	Checkpoints int      `json:"checkpoints"` // compacted jobs verified via checkpoint
	Legacy      int      `json:"legacy"`      // pre-provenance events (no chain to check)
	Blobs       int      `json:"blobs"`       // distinct artifacts resolved and hash-verified
	Problems    []string `json:"problems,omitempty"`
}

// Ok reports whether every check passed.
func (r *VerifyReport) Ok() bool { return len(r.Problems) == 0 }

// verifyChain is the offline mirror of provChain, rebuilt while
// re-deriving every hash.
type verifyChain struct {
	leaves []string
	last   string
	sealed bool
}

// VerifyStateDir replays a state dir offline and checks everything the
// provenance machinery promises: every event's chain hash re-derives
// from its predecessor and canonical JSON, every sealed root and
// checkpoint root equals the Merkle root of its leaves, a sampled
// inclusion proof per sealed job verifies, every blob ref resolves to
// bytes matching its hash, and the cache-snapshot manifest names a
// readable blob. Used by cmd/impeccable-verify and the crash tests.
func VerifyStateDir(dir string) (*VerifyReport, error) {
	events, err := readJournal(dir)
	if err != nil {
		return nil, err
	}
	store, err := blob.Open(filepath.Join(dir, blobDirName))
	if err != nil {
		return nil, err
	}
	r := &VerifyReport{Events: len(events)}
	badf := func(format string, args ...any) {
		r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
	}
	chains := make(map[string]*verifyChain)
	checkedBlobs := make(map[string]bool)
	checkRef := func(job string, ref *blob.Ref) {
		if ref == nil {
			return
		}
		if checkedBlobs[ref.SHA256] {
			return
		}
		if _, err := store.Get(*ref); err != nil {
			badf("job %s: artifact %s: %v", job, ref.SHA256[:12], err)
			return
		}
		checkedBlobs[ref.SHA256] = true
	}
	checkRoot := func(job, root string, leafHexes []string) bool {
		leaves, err := decodeLeaves(leafHexes)
		if err != nil {
			badf("job %s: %v", job, err)
			return false
		}
		want := hex.EncodeToString(merkle.Root(leaves))
		if root != want {
			badf("job %s: merkle root %s does not cover its %d event hashes (want %s)",
				job, short(root), len(leaves), short(want))
			return false
		}
		// Spot-check the proof path for the newest event too, so a bug
		// in proof generation cannot hide behind a correct root.
		if len(leaves) > 0 {
			i := len(leaves) - 1
			rootB, _ := hex.DecodeString(root)
			if !merkle.Verify(rootB, leaves[i], merkle.Proof(leaves, i)) {
				badf("job %s: inclusion proof for event %d does not verify", job, i)
				return false
			}
		}
		return true
	}
	for _, ev := range events {
		checkRef(ev.Job, ev.ReqRef)
		checkRef(ev.Job, ev.SummaryRef)
		if ev.Kind == evCheckpoint {
			want, err := eventHash("", ev)
			if err != nil {
				badf("job %s: %v", ev.Job, err)
				continue
			}
			if ev.Hash != want {
				badf("job %s: checkpoint hash %s does not match its content (want %s)",
					ev.Job, short(ev.Hash), short(want))
				continue
			}
			if checkRoot(ev.Job, ev.Root, ev.Leaves) {
				r.Checkpoints++
			}
			chains[ev.Job] = &verifyChain{
				leaves: append([]string(nil), ev.Leaves...),
				last:   ev.Hash,
				sealed: true,
			}
			continue
		}
		if ev.Hash == "" {
			r.Legacy++
			continue
		}
		c := chains[ev.Job]
		if c == nil {
			c = &verifyChain{}
			chains[ev.Job] = c
		}
		if ev.Kind == evSealed {
			if c.sealed && c.last == ev.Hash {
				continue // crash-window duplicate
			}
			want, err := eventHash(c.last, ev)
			if err != nil {
				badf("job %s: %v", ev.Job, err)
				continue
			}
			if ev.Hash != want {
				badf("job %s: sealed-event hash %s breaks the chain (want %s)",
					ev.Job, short(ev.Hash), short(want))
				continue
			}
			if checkRoot(ev.Job, ev.Root, c.leaves) {
				r.Sealed++
			}
			c.last = ev.Hash
			c.sealed = true
			continue
		}
		dup := false
		for _, l := range c.leaves {
			if l == ev.Hash {
				dup = true // crash-window duplicate: already verified
				break
			}
		}
		if dup {
			continue
		}
		want, err := eventHash(c.last, ev)
		if err != nil {
			badf("job %s: %v", ev.Job, err)
			continue
		}
		if ev.Hash != want {
			badf("job %s: %s-event hash %s breaks the chain (want %s)",
				ev.Job, ev.Kind, short(ev.Hash), short(want))
			continue
		}
		c.leaves = append(c.leaves, ev.Hash)
		c.last = ev.Hash
	}
	r.Jobs = len(chains)
	r.Blobs = len(checkedBlobs)
	// The cache snapshot rides the same store: its manifest must name a
	// readable, hash-clean blob.
	if raw, err := os.ReadFile(filepath.Join(dir, snapshotName)); err == nil {
		var mf snapshotManifest
		if json.Unmarshal(raw, &mf) == nil && mf.Blob.SHA256 != "" {
			if _, err := store.Get(mf.Blob); err != nil {
				badf("cache snapshot: %v", err)
			}
		}
	}
	sort.Strings(r.Problems)
	return r, nil
}

// short abbreviates a hex hash for error messages.
func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	if h == "" {
		return "(empty)"
	}
	return h
}
