package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"impeccable/internal/blob"
	"impeccable/internal/campaign"
)

// testJournal opens a journal over a fresh blob store in dir with
// default tuning.
func testJournal(t *testing.T, dir string) *journal {
	t.Helper()
	store, err := blob.Open(filepath.Join(dir, blobDirName))
	if err != nil {
		t.Fatal(err)
	}
	jl, _, err := openJournal(dir, store, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return jl
}

// science projects FunnelCounts down to the seed-deterministic fields:
// the cost ledger (DockEvals, DockCacheHits) varies with cache warmth
// by design — a warm rerun spends nothing — while the science must be
// byte-identical.
func science(c campaign.FunnelCounts) campaign.FunnelCounts {
	c.DockEvals, c.DockCacheHits = 0, 0
	return c
}

// stateDirForTest picks the state dir: IMPECCABLE_STATE_DIR (set by the
// CI restart-smoke job so the journal survives as an artifact on
// failure) or a per-test temp dir.
func stateDirForTest(t *testing.T) string {
	t.Helper()
	if root := os.Getenv("IMPECCABLE_STATE_DIR"); root != "" {
		dir := filepath.Join(root, t.Name())
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// crash simulates an unclean shutdown for tests: the workers stop and
// the journal file is closed, but no drain bookkeeping reaches the
// journal and no final cache checkpoint is written — exactly the state
// a kill -9 leaves behind (the journal is fsynced per event).
func crash(s *Service) {
	s.sched.shutdown()
	s.stopOnce.Do(func() {
		close(s.snapStop)
		s.snapWG.Wait()
		_ = s.jl.close()
	})
}

// TestRestartRecovery is the kill-and-restart acceptance test: submit
// jobs, crash mid-queue, reopen the same StateDir. Terminal results
// must be served from the journal without rerunning anything,
// interrupted jobs must resume under their original IDs with
// byte-identical science, and the restored cache snapshot must make
// every rerun and resubmit free of docking evaluations.
func TestRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full (small) campaigns")
	}
	dir := stateDirForTest(t)

	s1, err := Open(Options{Workers: 1, CacheShards: 8, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	idA, err := s1.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	snapA, err := s1.Wait(idA, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if snapA.State != StateDone {
		t.Fatalf("job A = %+v", snapA)
	}
	sumA, err := s1.Result(idA)
	if err != nil {
		t.Fatal(err)
	}

	// B and C are identical submissions; B starts running (one worker),
	// C stays queued. Then the process "dies".
	idB, err := s1.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	idC, err := s1.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(30 * time.Second); ; {
		snap, _ := s1.Status(idB)
		if snap.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job B never started: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	crash(s1)

	s2, err := Open(Options{Workers: 1, CacheShards: 8, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()

	// A's terminal summary is served straight from the journal.
	snapA2, ok := s2.Status(idA)
	if !ok {
		t.Fatalf("job A lost across restart")
	}
	if snapA2.State != StateDone || snapA2.Finished == nil {
		t.Fatalf("replayed job A = %+v", snapA2)
	}
	sumA2, err := s2.Result(idA)
	if err != nil {
		t.Fatalf("terminal result not served after replay: %v", err)
	}
	if !reflect.DeepEqual(sumA2.Funnel.Counts(), sumA.Funnel.Counts()) ||
		!reflect.DeepEqual(sumA2.Top, sumA.Top) {
		t.Fatalf("replayed summary diverged:\n%+v\nvs\n%+v", sumA2, sumA)
	}

	// B (interrupted while running) and C (interrupted while queued)
	// rerun under their original IDs to byte-identical science — and,
	// because the cache checkpoint from A's completion was restored,
	// with zero docking evaluations.
	for _, id := range []string{idB, idC} {
		snap, err := s2.Wait(id, 5*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != StateDone {
			t.Fatalf("resumed job %s = %+v", id, snap)
		}
		sum, err := s2.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(science(sum.Funnel.Counts()), science(sumA.Funnel.Counts())) {
			t.Fatalf("resumed job %s counts diverged: %+v vs %+v",
				id, sum.Funnel.Counts(), sumA.Funnel.Counts())
		}
		if !reflect.DeepEqual(sum.Top, sumA.Top) {
			t.Fatalf("resumed job %s top-K diverged", id)
		}
		if sum.Funnel.DockEvals != 0 {
			t.Fatalf("resumed job %s spent %d dock evals against a restored warm cache",
				id, sum.Funnel.DockEvals)
		}
	}

	// The restored checkpoint preserved the warm-cache hit rate: the
	// reruns were served from imported entries, not recomputed ones.
	if st := s2.ScoreCacheStats(); st.Hits == 0 || st.HitRate == 0 {
		t.Fatalf("restored score cache saw no hits: %+v", st)
	}

	// A fresh warm-cache resubmit: zero dock evals, and the replayed
	// nextID keeps new IDs collision-free.
	idD, err := s2.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if idD != "job-000004" {
		t.Fatalf("post-restart ID = %s, want job-000004", idD)
	}
	if _, err := s2.Wait(idD, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	sumD, err := s2.Result(idD)
	if err != nil {
		t.Fatal(err)
	}
	if sumD.Funnel.DockEvals != 0 {
		t.Fatalf("warm-cache resubmit spent %d dock evals, want 0", sumD.Funnel.DockEvals)
	}
	if !reflect.DeepEqual(science(sumD.Funnel.Counts()), science(sumA.Funnel.Counts())) {
		t.Fatalf("warm resubmit counts diverged")
	}

	// Listing order survives: A, B, C, then D.
	var order []string
	for _, snap := range s2.Jobs() {
		order = append(order, snap.ID)
	}
	if want := []string{idA, idB, idC, idD}; !reflect.DeepEqual(order, want) {
		t.Fatalf("job order after restart = %v, want %v", order, want)
	}
}

// TestCanceledWhileQueuedSnapshot pins the canceled-while-queued shape
// (Finished set, Started nil) across cancel, crash and replay, and that
// no negative duration is ever derived from it.
func TestCanceledWhileQueuedSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("occupies a worker with a real campaign")
	}
	dir := stateDirForTest(t)
	s1, err := Open(Options{Workers: 1, CacheShards: 8, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	blocker := smallReq()
	blocker.LibrarySize = 4000
	blocker.TrainSize = 800
	blocker.FastProtocols = false
	idBlock, err := s1.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(30 * time.Second); ; {
		snap, _ := s1.Status(idBlock)
		if snap.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	idQ, err := s1.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Cancel(idQ) {
		t.Fatal("cancel returned false")
	}
	check := func(s *Service, phase string) {
		snap, ok := s.Status(idQ)
		if !ok {
			t.Fatalf("%s: canceled job lost", phase)
		}
		if snap.State != StateCanceled {
			t.Fatalf("%s: state = %s, want canceled", phase, snap.State)
		}
		if snap.Started != nil {
			t.Fatalf("%s: canceled-while-queued job has a start time %v", phase, snap.Started)
		}
		if snap.Finished == nil {
			t.Fatalf("%s: canceled job has no finish time", phase)
		}
		if d := snap.Duration(); d != 0 {
			t.Fatalf("%s: duration = %v for a job that never ran", phase, d)
		}
	}
	check(s1, "before crash")
	crash(s1)

	s2, err := Open(Options{Workers: 1, CacheShards: 8, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	check(s2, "after replay")
	// The interrupted blocker came back as pending work, not canceled.
	if snap, ok := s2.Status(idBlock); !ok || snap.State.Terminal() {
		t.Fatalf("interrupted blocker = %+v ok=%v, want re-enqueued", snap, ok)
	}
	s2.Cancel(idBlock)
	s2.Shutdown()
}

// TestJobSnapshotDuration pins the clamping directly, including a
// pathological finished-before-started pair.
func TestJobSnapshotDuration(t *testing.T) {
	now := time.Now()
	earlier := now.Add(-time.Minute)
	cases := []struct {
		name string
		snap JobSnapshot
		want time.Duration
	}{
		{"never started", JobSnapshot{Finished: &now}, 0},
		{"never finished", JobSnapshot{Started: &now}, 0},
		{"normal", JobSnapshot{Started: &earlier, Finished: &now}, time.Minute},
		{"clock skew", JobSnapshot{Started: &now, Finished: &earlier}, 0},
	}
	for _, c := range cases {
		if got := c.snap.Duration(); got != c.want {
			t.Errorf("%s: Duration() = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestReplayJournal drives the event-stream reducer directly: terminal
// jobs restore as servable records, interrupted jobs come back queued,
// and the ID high-water mark is recovered.
func TestReplayJournal(t *testing.T) {
	t0 := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	req := smallReq()
	sum := ResultSummary{ScientificYield: 0.5}
	events := []journalEvent{
		{Kind: evSubmitted, Job: "job-000001", Time: t0, Req: &req},
		{Kind: evStarted, Job: "job-000001", Time: t0.Add(time.Second)},
		{Kind: evDone, Job: "job-000001", Time: t0.Add(time.Minute), Summary: &sum},
		{Kind: evSubmitted, Job: "job-000002", Time: t0.Add(2 * time.Second), Req: &req},
		{Kind: evStarted, Job: "job-000002", Time: t0.Add(3 * time.Second)},
		{Kind: evSubmitted, Job: "job-000003", Time: t0.Add(4 * time.Second), Req: &req},
		{Kind: evCanceled, Job: "job-000003", Time: t0.Add(5 * time.Second)},
		{Kind: evStarted, Job: "job-000099", Time: t0}, // submission lost: dropped
		{Kind: evSubmitted, Job: "job-000007", Time: t0.Add(6 * time.Second), Req: &req},
	}
	jobs, maxID := replayJournal(events, nil)
	if maxID != 7 {
		t.Fatalf("maxID = %d, want 7", maxID)
	}
	if len(jobs) != 4 {
		t.Fatalf("replayed %d jobs, want 4", len(jobs))
	}
	byID := map[string]*job{}
	for _, j := range jobs {
		byID[j.id] = j
	}
	if j := byID["job-000001"]; j.state != StateDone || j.result == nil ||
		j.result.summary.ScientificYield != 0.5 || j.progress != 1 {
		t.Fatalf("done job replayed as %+v", j)
	}
	// Interrupted mid-run: queued again, stale start time cleared.
	if j := byID["job-000002"]; j.state != StateQueued || !j.started.IsZero() {
		t.Fatalf("interrupted job replayed as state=%s started=%v", j.state, j.started)
	}
	// Canceled while queued: terminal, finish time kept, never started.
	if j := byID["job-000003"]; j.state != StateCanceled || j.finished.IsZero() || !j.started.IsZero() {
		t.Fatalf("canceled job replayed as %+v", j)
	}
	if j := byID["job-000007"]; j.state != StateQueued {
		t.Fatalf("never-started job replayed as %s", j.state)
	}
	if _, lost := byID["job-000099"]; lost {
		t.Fatal("event without a submission produced a job")
	}
}

// TestReadJournalToleratesTornWrite: a trailing line torn by a crash
// must not poison the replayable prefix.
func TestReadJournalToleratesTornWrite(t *testing.T) {
	dir := t.TempDir()
	jl := testJournal(t, dir)
	req := smallReq()
	if err := jl.append(journalEvent{Kind: evSubmitted, Job: "job-000001", Time: time.Now(), Req: &req}); err != nil {
		t.Fatal(err)
	}
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(1)), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"done","job":"job-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	events, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != evSubmitted || events[0].Job != "job-000001" {
		t.Fatalf("events = %+v, want the one intact submission", events)
	}
	if events[0].Req == nil || events[0].Req.Target != req.Target {
		t.Fatalf("request payload lost: %+v", events[0].Req)
	}
}

// TestJournalEventRoundTrip pins the on-disk shape: one JSON object per
// line with the SubmitRequest and ResultSummary payloads intact, plus
// the auto-appended sealed event closing the provenance chain.
func TestJournalEventRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jl := testJournal(t, dir)
	req := smallReq()
	req.LibOffset = 1234
	sum := ResultSummary{ScientificYield: 2.5}
	evs := []journalEvent{
		{Kind: evSubmitted, Job: "job-000001", Time: time.Now().UTC(), Req: &req},
		{Kind: evStarted, Job: "job-000001", Time: time.Now().UTC()},
		{Kind: evDone, Job: "job-000001", Time: time.Now().UTC(), Summary: &sum},
	}
	for _, ev := range evs {
		if err := jl.append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}
	if err := jl.close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := jl.append(evs[0]); err == nil {
		t.Fatal("append after close succeeded")
	}
	got, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("read %d events, want 4 (3 appended + auto-sealed)", len(got))
	}
	if got[0].Req.LibOffset != 1234 {
		t.Fatalf("LibOffset lost: %+v", got[0].Req)
	}
	if got[2].Summary.ScientificYield != 2.5 {
		t.Fatalf("summary lost: %+v", got[2].Summary)
	}
	if got[3].Kind != evSealed || got[3].Root == "" {
		t.Fatalf("terminal event not followed by a sealed root: %+v", got[3])
	}
	for i, ev := range got {
		if ev.Hash == "" {
			t.Fatalf("event %d has no chain hash: %+v", i, ev)
		}
	}
	// Each line must be standalone JSON (jq-able operator tooling).
	raw, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	var probe map[string]any
	line := raw[:1+bytesIndex(raw, '\n')]
	if err := json.Unmarshal(line, &probe); err != nil {
		t.Fatalf("first journal line is not standalone JSON: %v", err)
	}
}

// bytesIndex avoids importing bytes for one call.
func bytesIndex(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// TestSnapshotRoundTrip checkpoints warm caches through the blob store
// and restores them into cold ones.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := blob.Open(filepath.Join(dir, blobDirName))
	if err != nil {
		t.Fatal(err)
	}
	scores := NewScoreCache(4, 0)
	features := NewFeatureCache(4, 0)
	view := scores.ForTarget("PLPro")
	for id := uint64(1); id <= 20; id++ {
		view.Put(molForTest(id), mockResult(id))
		features.Features(id)
	}
	ref, skipped, err := saveSnapshot(dir, store, scores, features, nil)
	if err != nil {
		t.Fatal(err)
	}
	if skipped {
		t.Fatal("first snapshot reported as skipped")
	}
	// An unchanged cache dedupes against the previous checkpoint: same
	// bytes, same hash, no new write.
	ref2, skipped, err := saveSnapshot(dir, store, scores, features, &ref)
	if err != nil {
		t.Fatal(err)
	}
	if !skipped || ref2 != ref {
		t.Fatalf("unchanged re-checkpoint: skipped=%v ref=%v want %v", skipped, ref2, ref)
	}
	scores2 := NewScoreCache(8, 0) // different shard width on purpose
	features2 := NewFeatureCache(8, 0)
	got, err := loadSnapshot(dir, store, scores2, features2)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.SHA256 != ref.SHA256 {
		t.Fatalf("loadSnapshot ref = %v, want %v", got, ref)
	}
	if scores2.Len() != scores.Len() {
		t.Fatalf("restored %d score entries, want %d", scores2.Len(), scores.Len())
	}
	view2 := scores2.ForTarget("PLPro")
	for id := uint64(1); id <= 20; id++ {
		r, ok := view2.Get(molForTest(id))
		want := mockResult(id)
		if !ok || r.Score != want.Score || len(r.Genome) != len(want.Genome) {
			t.Fatalf("restored entry %d = %+v ok=%v", id, r, ok)
		}
	}
	if st := features2.Stats(); st.Entries != 20 {
		t.Fatalf("restored %d feature entries, want 20", st.Entries)
	}
	// Missing snapshot dir: cold start, not an error.
	cold := t.TempDir()
	coldStore, err := blob.Open(filepath.Join(cold, blobDirName))
	if err != nil {
		t.Fatal(err)
	}
	if ref, err := loadSnapshot(cold, coldStore, NewScoreCache(2, 0), NewFeatureCache(2, 0)); err != nil || ref != nil {
		t.Fatalf("cold start: ref=%v err=%v", ref, err)
	}
}
