package service

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// memJournal collects journal events in memory for scheduler-level
// lease tests. Setting fail simulates a journal closed by a racing
// Shutdown: record errors and nothing is stored.
type memJournal struct {
	mu     sync.Mutex
	events []journalEvent
	fail   bool
}

func (m *memJournal) record(ev journalEvent) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail {
		return errors.New("journal is closed")
	}
	m.events = append(m.events, ev)
	return nil
}

func (m *memJournal) setFail(v bool) {
	m.mu.Lock()
	m.fail = v
	m.mu.Unlock()
}

func (m *memJournal) kinds(job string) []eventKind {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []eventKind
	for _, ev := range m.events {
		if ev.Job == job {
			out = append(out, ev.Kind)
		}
	}
	return out
}

// remoteScheduler builds a coordinator-style scheduler: no in-process
// workers, jobs move only through the lease protocol.
func remoteScheduler(ttl time.Duration, jl *memJournal) *scheduler {
	cfg := schedConfig{remoteOnly: true, leaseTTL: ttl}
	if jl != nil {
		cfg.record = jl.record
	}
	return newScheduler(cfg, func(*job) {})
}

func stateOf(t *testing.T, s *scheduler, id string) JobState {
	t.Helper()
	j, ok := s.get(id)
	if !ok {
		t.Fatalf("job %s lost", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// tokenOf reads a job's current lease token — what the grant carries
// to the holder.
func tokenOf(t *testing.T, s *scheduler, id string) string {
	t.Helper()
	j, ok := s.get(id)
	if !ok {
		t.Fatalf("job %s lost", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.leaseToken
}

// TestLeaseLifecycle drives the happy path at the scheduler level:
// queued → leased (journaled with the holder) → heartbeat-extended →
// completed remotely with the posted summary served and journaled.
func TestLeaseLifecycle(t *testing.T) {
	jl := &memJournal{}
	s := remoteScheduler(time.Minute, jl)
	defer s.shutdown()

	id, err := s.submit(SubmitRequest{Target: "PLPro"}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	// No in-process workers: the job must still be queued.
	if st := stateOf(t, s, id); st != StateQueued {
		t.Fatalf("state before lease = %s", st)
	}

	now := time.Now()
	j, err := s.lease("w1", 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if j == nil || j.id != id {
		t.Fatalf("lease returned %+v, want job %s", j, id)
	}
	if st := stateOf(t, s, id); st != StateLeased {
		t.Fatalf("state after lease = %s", st)
	}
	j.mu.Lock()
	firstExpiry := j.leaseExpiry
	worker := j.leaseWorker
	tok := j.leaseToken
	j.mu.Unlock()
	if worker != "w1" || !firstExpiry.After(now) || tok == "" {
		t.Fatalf("lease bookkeeping: worker=%q token=%q expiry=%v", worker, tok, firstExpiry)
	}
	// An empty queue leases nothing.
	if extra, err := s.lease("w2", 0, time.Now()); err != nil || extra != nil {
		t.Fatalf("second lease = %v, %v; want nil, nil", extra, err)
	}

	// Heartbeats extend the lease and carry remote progress; the wrong
	// worker — or the right worker without the lease token — is
	// rejected (worker IDs are public in listings, tokens are not).
	exp, err := s.heartbeat("w1", tok, id, "s1-dock", 0.4, now.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !exp.After(firstExpiry) {
		t.Fatalf("heartbeat did not extend the lease: %v !> %v", exp, firstExpiry)
	}
	if _, err := s.heartbeat("w2", tok, id, "", 0, time.Now()); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("foreign heartbeat error = %v, want ErrLeaseLost", err)
	}
	if _, err := s.heartbeat("w1", "forged-token", id, "", 0, time.Now()); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("forged-token heartbeat error = %v, want ErrLeaseLost", err)
	}
	if _, err := s.heartbeat("w1", tok, "job-999999", "", 0, time.Now()); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown-job heartbeat error = %v, want ErrUnknownJob", err)
	}
	snap := func() JobSnapshot {
		j, _ := s.get(id)
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.snapshotLocked()
	}()
	if snap.Stage != "s1-dock" || snap.Progress != 0.4 || snap.Worker != "w1" {
		t.Fatalf("remote progress not visible: %+v", snap)
	}

	// The wrong worker cannot complete; the holder can, and the summary
	// is served.
	sum := ResultSummary{ScientificYield: 0.75}
	if err := s.completeRemote("w2", tok, id, StateDone, "", &sum, time.Now()); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("foreign complete error = %v, want ErrLeaseLost", err)
	}
	if err := s.completeRemote("w1", "forged-token", id, StateDone, "", &sum, time.Now()); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("forged-token complete error = %v, want ErrLeaseLost", err)
	}
	if err := s.completeRemote("w1", tok, id, StateDone, "", &sum, time.Now()); err != nil {
		t.Fatal(err)
	}
	j2, _ := s.get(id)
	j2.mu.Lock()
	st, res := j2.state, j2.result
	j2.mu.Unlock()
	if st != StateDone || res == nil || res.summary.ScientificYield != 0.75 {
		t.Fatalf("completed job: state=%s result=%+v", st, res)
	}
	if got, want := jl.kinds(id), []eventKind{evSubmitted, evLeased, evDone}; !equalKinds(got, want) {
		t.Fatalf("journal = %v, want %v", got, want)
	}
	// A completed job's lease is gone: late heartbeats bounce.
	if _, err := s.heartbeat("w1", tok, id, "", 0, time.Now()); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("post-complete heartbeat error = %v, want ErrLeaseLost", err)
	}
}

func equalKinds(a, b []eventKind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLeaseExpiryRequeues: a worker that stops heartbeating loses the
// job, which re-enters the queue under its original ID (requeue
// journaled), and the dead worker's late complete is rejected while a
// second worker's succeeds.
func TestLeaseExpiryRequeues(t *testing.T) {
	jl := &memJournal{}
	s := remoteScheduler(50*time.Millisecond, jl)
	defer s.shutdown()

	req := SubmitRequest{Target: "PLPro", Seed: 42, LibOffset: 7}
	id, err := s.submit(req, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.lease("w-dead", 0, time.Now()); err != nil {
		t.Fatal(err)
	}
	deadTok := tokenOf(t, s, id)
	waitFor(t, "lease to expire and requeue", func() bool {
		return stateOf(t, s, id) == StateQueued
	})
	if got, want := jl.kinds(id), []eventKind{evSubmitted, evLeased, evRequeued}; !equalKinds(got, want) {
		t.Fatalf("journal = %v, want %v", got, want)
	}
	if _, err := s.heartbeat("w-dead", deadTok, id, "", 0, time.Now()); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("dead worker heartbeat error = %v, want ErrLeaseLost", err)
	}
	if err := s.completeRemote("w-dead", deadTok, id, StateDone, "", &ResultSummary{}, time.Now()); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("dead worker complete error = %v, want ErrLeaseLost", err)
	}

	// The requeued job keeps its original request — Seed and LibOffset
	// are what make the rerun byte-identical.
	j2, err := s.lease("w2", time.Minute, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if j2 == nil || j2.id != id {
		t.Fatalf("re-lease = %+v, want job %s", j2, id)
	}
	if j2.req.Seed != 42 || j2.req.LibOffset != 7 {
		t.Fatalf("requeued request mutated: %+v", j2.req)
	}
	if err := s.completeRemote("w2", tokenOf(t, s, id), id, StateDone, "", &ResultSummary{ScientificYield: 1}, time.Now()); err != nil {
		t.Fatal(err)
	}
	if st := stateOf(t, s, id); st != StateDone {
		t.Fatalf("final state = %s", st)
	}
}

// TestExpiryRequeueOrder: leases that lapse in the same watchdog sweep
// (the common shape after a coordinator restart re-arms every restored
// lease with the same TTL) re-enter the queue in submission order,
// ahead of anything submitted later — regardless of lease-map
// iteration order.
func TestExpiryRequeueOrder(t *testing.T) {
	s := remoteScheduler(time.Hour, nil)
	defer s.shutdown()
	now := time.Now()
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := s.submit(SubmitRequest{Target: "PLPro"}, now)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.lease("w-dead", time.Second, now); err != nil {
			t.Fatal(err)
		}
	}
	s.expireLeases(now.Add(2 * time.Second))
	s.mu.Lock()
	var got []string
	for _, j := range s.tq(DefaultTenant).pending {
		got = append(got, j.id)
	}
	s.mu.Unlock()
	if len(got) != len(ids) {
		t.Fatalf("pending = %v, want all of %v", got, ids)
	}
	for i, id := range ids {
		if got[i] != id {
			t.Fatalf("pending order = %v, want %v", got, ids)
		}
	}
}

// TestCancelLeasedJob: a user cancel of a leased job is terminal
// immediately (journaled), and the remote worker discovers it through
// ErrLeaseLost on its next heartbeat.
func TestCancelLeasedJob(t *testing.T) {
	jl := &memJournal{}
	s := remoteScheduler(time.Minute, jl)
	defer s.shutdown()
	id, _ := s.submit(SubmitRequest{Target: "PLPro"}, time.Now())
	if _, err := s.lease("w1", 0, time.Now()); err != nil {
		t.Fatal(err)
	}
	tok := tokenOf(t, s, id)
	if _, err := s.cancelJob(id); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if st := stateOf(t, s, id); st != StateCanceled {
		t.Fatalf("state after cancel = %s", st)
	}
	if _, err := s.heartbeat("w1", tok, id, "", 0, time.Now()); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("heartbeat after cancel = %v, want ErrLeaseLost", err)
	}
	if got, want := jl.kinds(id), []eventKind{evSubmitted, evLeased, evCanceled}; !equalKinds(got, want) {
		t.Fatalf("journal = %v, want %v", got, want)
	}
}

// TestCancelCompleteJournalBeforeApply: a cancel or complete whose
// terminal event cannot be journaled (the journal closed under a
// racing Shutdown) must be refused with ErrShuttingDown and leave the
// job untouched — acking first and journaling best-effort would let
// the acknowledged outcome evaporate across a restart, the
// acked-then-lost shape the 503 path exists to prevent.
func TestCancelCompleteJournalBeforeApply(t *testing.T) {
	jl := &memJournal{}
	s := remoteScheduler(time.Hour, jl)
	defer s.shutdown()
	id, _ := s.submit(SubmitRequest{Target: "PLPro"}, time.Now())
	if _, err := s.lease("w1", 0, time.Now()); err != nil {
		t.Fatal(err)
	}
	tok := tokenOf(t, s, id)

	jl.setFail(true)
	if _, err := s.cancelJob(id); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("cancel with dead journal = %v, want ErrShuttingDown", err)
	}
	if err := s.completeRemote("w1", tok, id, StateDone, "", &ResultSummary{}, time.Now()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("complete with dead journal = %v, want ErrShuttingDown", err)
	}
	// The job is exactly as it was: still leased to w1 under the same
	// token, no terminal event journaled, counters unmoved.
	if st := stateOf(t, s, id); st != StateLeased {
		t.Fatalf("state after refused transitions = %s, want leased", st)
	}
	if got, want := jl.kinds(id), []eventKind{evSubmitted, evLeased}; !equalKinds(got, want) {
		t.Fatalf("journal = %v, want %v", got, want)
	}
	if got := s.counts(); got[StateLeased] != 1 || got[StateDone] != 0 || got[StateCanceled] != 0 {
		t.Fatalf("counts after refusals = %v", got)
	}

	// Journal back: the same complete lands.
	jl.setFail(false)
	if err := s.completeRemote("w1", tok, id, StateDone, "", &ResultSummary{ScientificYield: 1}, time.Now()); err != nil {
		t.Fatal(err)
	}
	if got, want := jl.kinds(id), []eventKind{evSubmitted, evLeased, evDone}; !equalKinds(got, want) {
		t.Fatalf("journal = %v, want %v", got, want)
	}

	// After shutdown both are refused up front, same sentinel.
	s.shutdown()
	if _, err := s.cancelJob(id); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("cancel after shutdown = %v, want ErrShuttingDown", err)
	}
	if err := s.completeRemote("w1", tok, id, StateDone, "", &ResultSummary{}, time.Now()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("complete after shutdown = %v, want ErrShuttingDown", err)
	}
}

// TestSchedulerCounts pins the incrementally maintained per-state
// tallies across submit, lease, expiry, completion and pruning — the
// fix for O(jobs × mutex) health probes.
func TestSchedulerCounts(t *testing.T) {
	s := remoteScheduler(time.Hour, nil)
	s.maxRecords = 1
	defer s.shutdown()

	var ids []string
	for i := 0; i < 3; i++ {
		id, err := s.submit(SubmitRequest{Target: "PLPro"}, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	check := func(what string, want map[JobState]int) {
		t.Helper()
		got := s.counts()
		if len(got) != len(want) {
			t.Fatalf("%s: counts = %v, want %v", what, got, want)
		}
		for st, n := range want {
			if got[st] != n {
				t.Fatalf("%s: counts = %v, want %v", what, got, want)
			}
		}
	}
	check("after submits", map[JobState]int{StateQueued: 3})

	if _, err := s.lease("w1", 0, time.Now()); err != nil {
		t.Fatal(err)
	}
	check("after lease", map[JobState]int{StateQueued: 2, StateLeased: 1})

	if err := s.completeRemote("w1", tokenOf(t, s, ids[0]), ids[0], StateDone, "", &ResultSummary{}, time.Now()); err != nil {
		t.Fatal(err)
	}
	check("after complete", map[JobState]int{StateQueued: 2, StateDone: 1})

	s.cancelJob(ids[1])
	// maxRecords=1: the canceled job displaces the done one from the
	// table, and the tallies must follow the table.
	check("after cancel+prune", map[JobState]int{StateQueued: 1, StateCanceled: 1})
}

// TestRetryAfterDerivation pins the 429 hint formula: queue depth ×
// recent mean duration over available slots, clamped to [1s, 60s].
func TestRetryAfterDerivation(t *testing.T) {
	// remoteOnly: no worker goroutines pop the placeholder entries the
	// test stuffs into pending.
	s := remoteScheduler(time.Hour, nil)
	s.workerSlots = 2
	// stuffPending swaps placeholder jobs into the default tenant's
	// queue; pendingN is what the formula reads.
	stuffPending := func(sc *scheduler, n int) {
		sc.mu.Lock()
		tq := sc.tq(DefaultTenant)
		tq.pending = make([]*job, n)
		sc.pendingN = n
		sc.mu.Unlock()
	}
	defer func() {
		stuffPending(s, 0)
		s.shutdown()
	}()
	// Idle queue: minimum hint.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("idle Retry-After = %d, want 1", got)
	}
	// 6 pending × 10s mean / 2 workers = 30s.
	s.recordDuration(10 * time.Second)
	stuffPending(s, 6)
	if got := s.retryAfterSeconds(); got != 30 {
		t.Fatalf("Retry-After = %d, want 30", got)
	}
	// A huge backlog clamps at 60.
	stuffPending(s, 1000)
	if got := s.retryAfterSeconds(); got != 60 {
		t.Fatalf("clamped Retry-After = %d, want 60", got)
	}
	// No duration samples yet: the mean defaults to 5s.
	s2 := remoteScheduler(time.Hour, nil)
	defer s2.shutdown()
	stuffPending(s2, 2)
	if got := s2.retryAfterSeconds(); got != 10 {
		t.Fatalf("default-mean Retry-After = %d, want 10 (2 × 5s / 1 slot)", got)
	}
	stuffPending(s2, 0)
}

// TestReplayJournalLeases drives the reducer over lease histories: a
// job leased at crash time comes back leased with its holder (so the
// worker can re-attach), a requeued one comes back queued, and a
// remotely completed one is terminal with the worker recorded.
func TestReplayJournalLeases(t *testing.T) {
	t0 := time.Date(2026, 7, 29, 12, 0, 0, 0, time.UTC)
	req := smallReq()
	sum := ResultSummary{ScientificYield: 0.5}
	events := []journalEvent{
		{Kind: evSubmitted, Job: "job-000001", Time: t0, Req: &req},
		{Kind: evLeased, Job: "job-000001", Time: t0.Add(time.Second), Worker: "w1"},
		{Kind: evSubmitted, Job: "job-000002", Time: t0, Req: &req},
		{Kind: evLeased, Job: "job-000002", Time: t0.Add(time.Second), Worker: "w1"},
		{Kind: evRequeued, Job: "job-000002", Time: t0.Add(time.Minute)},
		{Kind: evSubmitted, Job: "job-000003", Time: t0, Req: &req},
		{Kind: evLeased, Job: "job-000003", Time: t0.Add(time.Second), Worker: "w2"},
		{Kind: evDone, Job: "job-000003", Time: t0.Add(time.Minute), Worker: "w2", Summary: &sum},
	}
	jobs, maxID := replayJournal(events, nil)
	if maxID != 3 || len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, maxID %d", len(jobs), maxID)
	}
	byID := map[string]*job{}
	for _, j := range jobs {
		byID[j.id] = j
	}
	if j := byID["job-000001"]; j.state != StateLeased || j.leaseWorker != "w1" || j.started.IsZero() {
		t.Fatalf("leased-at-crash job = state=%s worker=%q", j.state, j.leaseWorker)
	}
	if j := byID["job-000002"]; j.state != StateQueued || j.leaseWorker != "" || !j.started.IsZero() {
		t.Fatalf("requeued job = state=%s worker=%q started=%v", j.state, j.leaseWorker, j.started)
	}
	if j := byID["job-000003"]; j.state != StateDone || j.leaseWorker != "w2" ||
		j.result == nil || j.result.summary.ScientificYield != 0.5 {
		t.Fatalf("remotely completed job = %+v", j)
	}
}

// TestLeaseSurvivesCoordinatorRestart is the durability half of the
// lease protocol, with no campaigns involved (RemoteOnly never
// executes in-process): a job leased at crash time is re-adopted by
// the reopened coordinator, where the surviving worker can complete it
// — while a job whose worker died with the coordinator expires into a
// requeue under its original ID.
func TestLeaseSurvivesCoordinatorRestart(t *testing.T) {
	dir := stateDirForTest(t)
	open := func(ttl time.Duration) *Service {
		s, err := Open(Options{RemoteOnly: true, CacheShards: 4, StateDir: dir, LeaseTTL: ttl})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := open(time.Minute)
	idA, err := s1.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	idB, err := s1.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	gA, err := s1.Lease("w-live", 0)
	if err != nil || gA == nil || gA.JobID != idA {
		t.Fatalf("lease A = %+v, %v", gA, err)
	}
	gB, err := s1.Lease("w-doomed", 0)
	if err != nil || gB == nil || gB.JobID != idB {
		t.Fatalf("lease B = %+v, %v", gB, err)
	}
	crash(s1)

	// Reopen with a short grace TTL: both jobs come back leased to
	// their original workers.
	s2 := open(400 * time.Millisecond)
	for id, worker := range map[string]string{idA: "w-live", idB: "w-doomed"} {
		snap, ok := s2.Status(id)
		if !ok || snap.State != StateLeased || snap.Worker != worker {
			t.Fatalf("job %s after replay = %+v (ok=%v), want leased by %s", id, snap, ok, worker)
		}
	}
	// The surviving worker re-attaches and completes within the grace
	// window — presenting the token from its original grant, which must
	// survive the restart via the journal; its result is accepted as if
	// the restart never happened.
	sum := ResultSummary{ScientificYield: 0.9}
	if err := s2.Complete("w-live", gA.Token, idA, WorkerResult{Summary: &sum}); err != nil {
		t.Fatalf("re-attached complete: %v", err)
	}
	got, err := s2.Result(idA)
	if err != nil || got.ScientificYield != 0.9 {
		t.Fatalf("result after re-attach = %+v, %v", got, err)
	}
	// The dead worker's lease expires into a requeue; the job is
	// leasable again under its original ID.
	waitFor(t, "doomed lease to expire", func() bool {
		snap, _ := s2.Status(idB)
		return snap.State == StateQueued
	})
	gB2, err := s2.Lease("w-replacement", time.Minute)
	if err != nil || gB2 == nil || gB2.JobID != idB {
		t.Fatalf("re-lease B = %+v, %v", gB2, err)
	}
	if gB2.Req.Seed != smallReq().Seed || gB2.Req.LibrarySize != smallReq().LibrarySize {
		t.Fatalf("request mutated across restart: %+v", gB2.Req)
	}
	if err := s2.Complete("w-replacement", gB2.Token, idB, WorkerResult{Summary: &sum}); err != nil {
		t.Fatal(err)
	}
	crash(s2)

	// Third generation: both terminal results are served straight from
	// the journal.
	s3 := open(time.Minute)
	defer s3.Shutdown()
	for _, id := range []string{idA, idB} {
		sum, err := s3.Result(id)
		if err != nil || sum.ScientificYield != 0.9 {
			t.Fatalf("replayed result %s = %+v, %v", id, sum, err)
		}
	}
	// Lease history must not confuse the listing order or states.
	var states []string
	for _, snap := range s3.Jobs() {
		states = append(states, string(snap.State))
	}
	if strings.Join(states, ",") != "done,done" {
		t.Fatalf("states after two restarts = %v", states)
	}
}

// TestRemoteOnlyNeverRunsLocally: a RemoteOnly coordinator must not
// execute campaigns in-process — jobs sit queued until leased.
func TestRemoteOnlyNeverRunsLocally(t *testing.T) {
	s := NewService(Options{RemoteOnly: true, CacheShards: 4})
	defer s.Shutdown()
	id, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	snap, _ := s.Status(id)
	if snap.State != StateQueued {
		t.Fatalf("job on a zero-worker coordinator = %s, want queued", snap.State)
	}
	if s.Cancel(id); true {
		snap, _ = s.Status(id)
		if snap.State != StateCanceled {
			t.Fatalf("cancel of queued job = %s", snap.State)
		}
	}
}
