// First-class tenancy for the campaign service: every submission
// belongs to a named tenant, and the scheduler arbitrates between
// tenants with deficit-round-robin (DRR) weighted-fair scheduling
// instead of one global FIFO — so a tenant flooding the queue cannot
// starve everyone else, the failure mode any shared funnel service
// hits first at fleet scale.
//
// The pieces, layer by layer:
//
//   - Identity: SubmitRequest.Tenant (or the X-Tenant header) names the
//     submitter; empty means DefaultTenant, so legacy clients, journals
//     and state dirs keep working unchanged. Tenant names are validated
//     (they become metric labels and journal fields).
//   - Admission: per-tenant MaxQueued replaces the global pending bound,
//     and a per-tenant token bucket rate-limits submissions (HTTP 429
//     with a tenant-derived Retry-After).
//   - Scheduling: each tenant has its own queue (priority-ordered, FIFO
//     within a priority); workers and the remote lease path both pull
//     through one DRR arbiter honoring configurable weights and
//     per-tenant running-concurrency caps.
//   - Preemption: a starved tenant whose head job carries Priority > 0
//     may revoke the youngest leased job of the most over-share tenant,
//     reusing the lease-expiry requeue machinery — the preempted job
//     re-enters its tenant's queue under its original ID and reruns
//     byte-identically (Seed and LibOffset ride along).
package service

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// DefaultTenant is the tenant legacy (tenant-less) submissions belong
// to. Pre-tenancy journals replay into it, so old state dirs upgrade
// in place.
const DefaultTenant = "default"

// Tenant-name and priority bounds. Names become Prometheus label
// values and journal fields, so they are restricted to a safe charset;
// priorities are a small ladder, not an unbounded knob.
const (
	maxTenantLen = 64
	MaxPriority  = 9
)

// validateTenant checks a tenant name: 1–64 chars of [A-Za-z0-9._-].
// The empty name is valid at the API boundary (it means DefaultTenant)
// but must be normalized before reaching the scheduler.
func validateTenant(name string) error {
	if name == "" {
		return nil
	}
	if len(name) > maxTenantLen {
		return fmt.Errorf("service: tenant name longer than %d chars", maxTenantLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("service: tenant name %q has invalid character %q (allowed: letters, digits, '.', '_', '-')", name, c)
		}
	}
	return nil
}

// normalizeTenant maps the empty name to DefaultTenant.
func normalizeTenant(name string) string {
	if name == "" {
		return DefaultTenant
	}
	return name
}

// TenantLimits configures one tenant's share of the service. The zero
// value means "all defaults": weight 1, the service-wide queue bound,
// no concurrency cap, no submit rate limit.
type TenantLimits struct {
	// Weight is the tenant's DRR weight: over contended slots, tenants
	// receive job-slots proportionally to their weights. 0 means 1.
	Weight int
	// MaxQueued bounds this tenant's pending queue; overflow submissions
	// fail with ErrQueueFull (HTTP 429). 0 inherits Options.MaxQueued
	// (which is per-tenant now); negative means unbounded even when the
	// service-wide default is set.
	MaxQueued int
	// MaxRunning caps how many of the tenant's jobs may execute at once
	// (in-process running plus remote leases). 0 means unbounded.
	MaxRunning int
	// SubmitPerSec is the tenant's token-bucket submit rate; 0 disables
	// rate limiting for the tenant.
	SubmitPerSec float64
	// SubmitBurst is the bucket depth; 0 means max(1, ceil(SubmitPerSec)).
	SubmitBurst int
}

// withDefaults resolves zero fields against the service-wide defaults.
func (l TenantLimits) withDefaults(d TenantLimits) TenantLimits {
	if l.Weight <= 0 {
		l.Weight = d.Weight
	}
	if l.Weight <= 0 {
		l.Weight = 1
	}
	if l.MaxQueued == 0 {
		l.MaxQueued = d.MaxQueued
	}
	if l.MaxRunning == 0 {
		l.MaxRunning = d.MaxRunning
	}
	if l.SubmitPerSec == 0 {
		l.SubmitPerSec = d.SubmitPerSec
	}
	if l.SubmitBurst == 0 {
		l.SubmitBurst = d.SubmitBurst
	}
	return l
}

// tenantQueue is the scheduler's per-tenant state: the pending queue
// (priority-ordered, FIFO within a priority), the DRR deficit, and the
// in-flight tally the concurrency cap enforces. All fields are guarded
// by scheduler.mu.
type tenantQueue struct {
	name    string
	weight  int
	deficit int // DRR credit: job-slots this tenant may take before yielding
	// maxQueued/maxRunning are the resolved bounds (0 = unbounded).
	maxQueued  int
	maxRunning int
	pending    []*job
	// inflight counts the tenant's jobs currently executing: in-process
	// running plus remote leases. The concurrency cap gates on it, and
	// the preemption arbiter compares it against the tenant's fair share.
	inflight int
}

// eligible reports whether the tenant can hand out a job right now.
func (tq *tenantQueue) eligible() bool {
	return len(tq.pending) > 0 && (tq.maxRunning <= 0 || tq.inflight < tq.maxRunning)
}

// push inserts a job in priority order: higher Priority first, FIFO
// within equal priorities. Legacy submissions (Priority 0) therefore
// keep exact submission order.
func (tq *tenantQueue) push(j *job) {
	p := j.req.Priority
	i := len(tq.pending)
	for i > 0 && tq.pending[i-1].req.Priority < p {
		i--
	}
	tq.pending = append(tq.pending, nil)
	copy(tq.pending[i+1:], tq.pending[i:])
	tq.pending[i] = j
}

// pushFront re-enqueues a job at the head of its tenant's queue — the
// lease-expiry and preemption requeue path. The job was dispatched
// before anything currently pending for this tenant, so it runs first.
func (tq *tenantQueue) pushFront(j *job) {
	tq.pending = append([]*job{j}, tq.pending...)
}

// remove drops a job from the pending queue (eager cancel removal);
// reports whether it was present.
func (tq *tenantQueue) remove(j *job) bool {
	for i, p := range tq.pending {
		if p == j {
			tq.pending = append(tq.pending[:i], tq.pending[i+1:]...)
			return true
		}
	}
	return false
}

// ErrRateLimited is returned by Submit when the tenant's token bucket
// is empty (HTTP surfaces it as 429 with a Retry-After derived from
// the bucket's refill rate).
var ErrRateLimited = errors.New("service: tenant submit rate exceeded")

// RateLimitError carries the tenant and the wait until the bucket
// refills; errors.Is(err, ErrRateLimited) matches it.
type RateLimitError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("service: tenant %q submit rate exceeded, retry in %s",
		e.Tenant, e.RetryAfter.Round(time.Millisecond))
}

// Is matches the ErrRateLimited sentinel.
func (e *RateLimitError) Is(target error) bool { return target == ErrRateLimited }

// tokenBucket is one tenant's submit-rate state.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// tenantLimiter applies per-tenant token-bucket submit rate limits.
// Its mutex is independent of the scheduler's (it is only ever held
// alone, before the submit reaches the scheduler) and is declared last
// in the project lock order.
type tenantLimiter struct {
	mu      sync.Mutex
	limits  func(tenant string) TenantLimits
	buckets map[string]*tokenBucket
}

func newTenantLimiter(limits func(tenant string) TenantLimits) *tenantLimiter {
	return &tenantLimiter{limits: limits, buckets: make(map[string]*tokenBucket)}
}

// allow takes one token from the tenant's bucket. When the bucket is
// empty it returns false and how long until the next token — the
// Retry-After the 429 carries, derived from the tenant's own refill
// rate rather than a global constant.
func (tl *tenantLimiter) allow(tenant string, now time.Time) (bool, time.Duration) {
	lim := tl.limits(tenant)
	if lim.SubmitPerSec <= 0 {
		return true, 0
	}
	burst := float64(lim.SubmitBurst)
	if burst <= 0 {
		burst = math.Ceil(lim.SubmitPerSec)
		if burst < 1 {
			burst = 1
		}
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	b := tl.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: burst, last: now}
		tl.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(burst, b.tokens+dt*lim.SubmitPerSec)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / lim.SubmitPerSec * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}
