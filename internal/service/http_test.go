package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := NewService(Options{Workers: 1, CacheShards: 8})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Shutdown()
	})
	return s, srv
}

// doJSON issues a request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPSubmitStatusResult(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (small) campaign")
	}
	_, srv := newTestServer(t)

	var snap JobSnapshot
	code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns", smallReq(), &snap)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if snap.ID == "" || snap.State == "" {
		t.Fatalf("submit snapshot = %+v", snap)
	}

	// A result request before completion is a 409, not a 404. Probe once,
	// right after submit — the campaign cannot have finished yet.
	var apiErr apiError
	if code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+snap.ID+"/result", nil, &apiErr); code != http.StatusConflict {
		t.Fatalf("premature result fetch = %d, want 409", code)
	}
	deadlineOK := false
	for deadline := time.Now().Add(5 * time.Minute); time.Now().Before(deadline); {
		code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+snap.ID, nil, &snap)
		if code != http.StatusOK {
			t.Fatalf("status code = %d", code)
		}
		if snap.State.Terminal() {
			deadlineOK = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !deadlineOK {
		t.Fatalf("job never finished: %+v", snap)
	}
	if snap.State != StateDone {
		t.Fatalf("job state = %s (%s)", snap.State, snap.Error)
	}
	if snap.Progress != 1 || snap.Started == nil || snap.Finished == nil {
		t.Fatalf("done snapshot incomplete: %+v", snap)
	}

	var sum ResultSummary
	if code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+snap.ID+"/result", nil, &sum); code != http.StatusOK {
		t.Fatalf("result status = %d", code)
	}
	if sum.Funnel.Screened != 300 || len(sum.Top) == 0 {
		t.Fatalf("result summary = %+v", sum)
	}

	// List includes the job; cache endpoint reports the cold misses.
	var list []JobSnapshot
	if code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns", nil, &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("list = %d items, code %d", len(list), code)
	}
	var cs cacheStatsBody
	if code := doJSON(t, "GET", srv.URL+"/api/v1/cache", nil, &cs); code != http.StatusOK {
		t.Fatalf("cache status = %d", code)
	}
	if cs.Scores.Puts == 0 || cs.Features.Entries == 0 {
		t.Fatalf("cache stats empty after a campaign: %+v", cs)
	}
}

func TestHTTPCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a real campaign")
	}
	_, srv := newTestServer(t)
	req := smallReq()
	req.LibrarySize = 4000
	req.TrainSize = 800
	req.FastProtocols = false

	var snap JobSnapshot
	if code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns", req, &snap); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	id := snap.ID
	for deadline := time.Now().Add(30 * time.Second); ; {
		doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+id, nil, &snap)
		if snap.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code := doJSON(t, "DELETE", srv.URL+"/api/v1/campaigns/"+id, nil, &snap); code != http.StatusOK {
		t.Fatalf("cancel = %d", code)
	}
	for deadline := time.Now().Add(time.Minute); ; {
		doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+id, nil, &snap)
		if snap.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never terminated after cancel: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", snap.State)
	}
	var apiErr apiError
	if code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+id+"/result", nil, &apiErr); code != http.StatusGone {
		t.Fatalf("result of canceled job = %d, want 410", code)
	}
}

func TestHTTPErrorsAndHealth(t *testing.T) {
	_, srv := newTestServer(t)

	// Malformed body.
	resp, err := http.Post(srv.URL+"/api/v1/campaigns", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", resp.StatusCode)
	}
	// Unknown field.
	resp, err = http.Post(srv.URL+"/api/v1/campaigns", "application/json",
		strings.NewReader(`{"target":"PLPro","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d", resp.StatusCode)
	}
	// Unknown target.
	var apiErr apiError
	if code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns",
		SubmitRequest{Target: "Nope"}, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("unknown target = %d", code)
	}
	if apiErr.Error == "" {
		t.Fatal("error body missing")
	}
	// Oversized body: a size problem is 413, not 400.
	resp, err = http.Post(srv.URL+"/api/v1/campaigns", "application/json",
		strings.NewReader(`{"target":"`+strings.Repeat("x", maxSubmitBody+1)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
	// Unknown job IDs.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/api/v1/campaigns/job-999999"},
		{"DELETE", "/api/v1/campaigns/job-999999"},
		{"GET", "/api/v1/campaigns/job-999999/result"},
	} {
		if code := doJSON(t, probe.method, srv.URL+probe.path, nil, &apiErr); code != http.StatusNotFound {
			t.Fatalf("%s %s = %d, want 404", probe.method, probe.path, code)
		}
	}
	// Health.
	var hb healthBody
	if code := doJSON(t, "GET", srv.URL+"/healthz", nil, &hb); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if hb.Status != "ok" || len(hb.Targets) != 4 {
		t.Fatalf("health = %+v", hb)
	}
}

// TestHTTPQueueFull429 pins the MaxQueued backpressure surface: a full
// pending queue turns into 429 Too Many Requests with a Retry-After
// hint, while in-bound submissions still 202.
func TestHTTPQueueFull429(t *testing.T) {
	if testing.Short() {
		t.Skip("occupies a worker with a real campaign")
	}
	s := NewService(Options{Workers: 1, CacheShards: 8, MaxQueued: 1})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Shutdown()
	})

	blocker := smallReq()
	blocker.LibrarySize = 4000
	blocker.TrainSize = 800
	blocker.FastProtocols = false
	var snap JobSnapshot
	if code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns", blocker, &snap); code != http.StatusAccepted {
		t.Fatalf("blocker submit = %d", code)
	}
	// Wait for the blocker to leave the queue so exactly MaxQueued slots
	// remain.
	for deadline := time.Now().Add(30 * time.Second); ; {
		doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+snap.ID, nil, &snap)
		if snap.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	var queued JobSnapshot
	if code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns", smallReq(), &queued); code != http.StatusAccepted {
		t.Fatalf("in-bound submit = %d, want 202", code)
	}

	body, _ := json.Marshal(smallReq())
	resp, err := http.Post(srv.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
		t.Fatalf("429 body = %+v, %v", apiErr, err)
	}

	// Unblock quickly: cancel both.
	doJSON(t, "DELETE", srv.URL+"/api/v1/campaigns/"+queued.ID, nil, nil)
	doJSON(t, "DELETE", srv.URL+"/api/v1/campaigns/"+snap.ID, nil, nil)
}

// TestHTTPConcurrentSubmissions floods the API from several clients and
// checks every job reaches a terminal state — the multi-tenant smoke
// test. Kept small; skipped in -short.
func TestHTTPConcurrentSubmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several small campaigns")
	}
	s, srv := newTestServer(t)
	const n = 3
	ids := make([]string, n)
	for i := range ids {
		req := smallReq()
		req.LibOffset = uint64(i % 2 * 1000) // two of three overlap
		var snap JobSnapshot
		if code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns", req, &snap); code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		ids[i] = snap.ID
	}
	for i, id := range ids {
		snap, err := s.Wait(id, 5*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != StateDone {
			t.Fatalf("job %d (%s) = %+v", i, id, snap)
		}
	}
	var cs cacheStatsBody
	doJSON(t, "GET", srv.URL+"/api/v1/cache", nil, &cs)
	if cs.Features.Hits == 0 {
		t.Fatal("feature cache saw no reuse across overlapping windows")
	}
}
