package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := NewService(Options{Workers: 1, CacheShards: 8})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Shutdown()
	})
	return s, srv
}

// doJSON issues a request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPSubmitStatusResult(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (small) campaign")
	}
	_, srv := newTestServer(t)

	var snap JobSnapshot
	code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns", smallReq(), &snap)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if snap.ID == "" || snap.State == "" {
		t.Fatalf("submit snapshot = %+v", snap)
	}

	// A result request before completion is a 409, not a 404. Probe once,
	// right after submit — the campaign cannot have finished yet.
	var apiErr apiError
	if code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+snap.ID+"/result", nil, &apiErr); code != http.StatusConflict {
		t.Fatalf("premature result fetch = %d, want 409", code)
	}
	deadlineOK := false
	for deadline := time.Now().Add(5 * time.Minute); time.Now().Before(deadline); {
		code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+snap.ID, nil, &snap)
		if code != http.StatusOK {
			t.Fatalf("status code = %d", code)
		}
		if snap.State.Terminal() {
			deadlineOK = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !deadlineOK {
		t.Fatalf("job never finished: %+v", snap)
	}
	if snap.State != StateDone {
		t.Fatalf("job state = %s (%s)", snap.State, snap.Error)
	}
	if snap.Progress != 1 || snap.Started == nil || snap.Finished == nil {
		t.Fatalf("done snapshot incomplete: %+v", snap)
	}

	var sum ResultSummary
	if code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+snap.ID+"/result", nil, &sum); code != http.StatusOK {
		t.Fatalf("result status = %d", code)
	}
	if sum.Funnel.Screened != 300 || len(sum.Top) == 0 {
		t.Fatalf("result summary = %+v", sum)
	}

	// List includes the job; cache endpoint reports the cold misses.
	var list []JobSnapshot
	if code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns", nil, &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("list = %d items, code %d", len(list), code)
	}
	var cs cacheStatsBody
	if code := doJSON(t, "GET", srv.URL+"/api/v1/cache", nil, &cs); code != http.StatusOK {
		t.Fatalf("cache status = %d", code)
	}
	if cs.Scores.Puts == 0 || cs.Features.Entries == 0 {
		t.Fatalf("cache stats empty after a campaign: %+v", cs)
	}
}

func TestHTTPCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a real campaign")
	}
	_, srv := newTestServer(t)
	req := smallReq()
	req.LibrarySize = 4000
	req.TrainSize = 800
	req.FastProtocols = false

	var snap JobSnapshot
	if code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns", req, &snap); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	id := snap.ID
	for deadline := time.Now().Add(30 * time.Second); ; {
		doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+id, nil, &snap)
		if snap.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code := doJSON(t, "DELETE", srv.URL+"/api/v1/campaigns/"+id, nil, &snap); code != http.StatusOK {
		t.Fatalf("cancel = %d", code)
	}
	for deadline := time.Now().Add(time.Minute); ; {
		doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+id, nil, &snap)
		if snap.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never terminated after cancel: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", snap.State)
	}
	var apiErr apiError
	if code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+id+"/result", nil, &apiErr); code != http.StatusGone {
		t.Fatalf("result of canceled job = %d, want 410", code)
	}
}

func TestHTTPErrorsAndHealth(t *testing.T) {
	_, srv := newTestServer(t)

	// Malformed body.
	resp, err := http.Post(srv.URL+"/api/v1/campaigns", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", resp.StatusCode)
	}
	// Unknown field.
	resp, err = http.Post(srv.URL+"/api/v1/campaigns", "application/json",
		strings.NewReader(`{"target":"PLPro","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d", resp.StatusCode)
	}
	// Unknown target.
	var apiErr apiError
	if code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns",
		SubmitRequest{Target: "Nope"}, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("unknown target = %d", code)
	}
	if apiErr.Error == "" {
		t.Fatal("error body missing")
	}
	// Oversized body: a size problem is 413, not 400.
	resp, err = http.Post(srv.URL+"/api/v1/campaigns", "application/json",
		strings.NewReader(`{"target":"`+strings.Repeat("x", maxSubmitBody+1)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
	// Unknown job IDs.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/api/v1/campaigns/job-999999"},
		{"DELETE", "/api/v1/campaigns/job-999999"},
		{"GET", "/api/v1/campaigns/job-999999/result"},
	} {
		if code := doJSON(t, probe.method, srv.URL+probe.path, nil, &apiErr); code != http.StatusNotFound {
			t.Fatalf("%s %s = %d, want 404", probe.method, probe.path, code)
		}
	}
	// Health.
	var hb healthBody
	if code := doJSON(t, "GET", srv.URL+"/healthz", nil, &hb); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if hb.Status != "ok" || len(hb.Targets) != 4 {
		t.Fatalf("health = %+v", hb)
	}
}

// TestHTTPQueueFull429 pins the MaxQueued backpressure surface: a full
// pending queue turns into 429 Too Many Requests with a Retry-After
// hint, while in-bound submissions still 202.
func TestHTTPQueueFull429(t *testing.T) {
	if testing.Short() {
		t.Skip("occupies a worker with a real campaign")
	}
	s := NewService(Options{Workers: 1, CacheShards: 8, MaxQueued: 1})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Shutdown()
	})

	blocker := smallReq()
	blocker.LibrarySize = 4000
	blocker.TrainSize = 800
	blocker.FastProtocols = false
	var snap JobSnapshot
	if code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns", blocker, &snap); code != http.StatusAccepted {
		t.Fatalf("blocker submit = %d", code)
	}
	// Wait for the blocker to leave the queue so exactly MaxQueued slots
	// remain.
	for deadline := time.Now().Add(30 * time.Second); ; {
		doJSON(t, "GET", srv.URL+"/api/v1/campaigns/"+snap.ID, nil, &snap)
		if snap.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	var queued JobSnapshot
	if code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns", smallReq(), &queued); code != http.StatusAccepted {
		t.Fatalf("in-bound submit = %d, want 202", code)
	}

	body, _ := json.Marshal(smallReq())
	resp, err := http.Post(srv.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
		t.Fatalf("429 body = %+v, %v", apiErr, err)
	}

	// Unblock quickly: cancel both.
	doJSON(t, "DELETE", srv.URL+"/api/v1/campaigns/"+queued.ID, nil, nil)
	doJSON(t, "DELETE", srv.URL+"/api/v1/campaigns/"+snap.ID, nil, nil)
}

// TestHTTPConcurrentSubmissions floods the API from several clients and
// checks every job reaches a terminal state — the multi-tenant smoke
// test. Kept small; skipped in -short.
func TestHTTPConcurrentSubmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several small campaigns")
	}
	s, srv := newTestServer(t)
	const n = 3
	ids := make([]string, n)
	for i := range ids {
		req := smallReq()
		req.LibOffset = uint64(i % 2 * 1000) // two of three overlap
		var snap JobSnapshot
		if code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns", req, &snap); code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		ids[i] = snap.ID
	}
	for i, id := range ids {
		snap, err := s.Wait(id, 5*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != StateDone {
			t.Fatalf("job %d (%s) = %+v", i, id, snap)
		}
	}
	var cs cacheStatsBody
	doJSON(t, "GET", srv.URL+"/api/v1/cache", nil, &cs)
	if cs.Features.Hits == 0 {
		t.Fatal("feature cache saw no reuse across overlapping windows")
	}
}

// TestHTTPHealthzDraining: once Shutdown begins the health endpoint
// must flip to 503 "draining" so load balancers stop routing here —
// an "ok" from a draining coordinator sends tenants to a server that
// rejects their submissions.
func TestHTTPHealthzDraining(t *testing.T) {
	s := NewService(Options{Workers: 1, CacheShards: 4})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var hb healthBody
	if code := doJSON(t, "GET", srv.URL+"/healthz", nil, &hb); code != http.StatusOK || hb.Status != "ok" {
		t.Fatalf("live healthz = %d %q", code, hb.Status)
	}
	s.Shutdown()
	if code := doJSON(t, "GET", srv.URL+"/healthz", nil, &hb); code != http.StatusServiceUnavailable || hb.Status != "draining" {
		t.Fatalf("draining healthz = %d %q, want 503 draining", code, hb.Status)
	}
	// Submissions during the drain get the matching 503, not a 400.
	var apiErr apiError
	if code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns", smallReq(), &apiErr); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", code)
	}
}

// TestHTTPListFilters pins the listing query surface: ?state=, ?limit=
// and ?after= compose, an empty listing is [] (never null), and bad
// parameters are 400s. RemoteOnly keeps every job inert so the states
// are fully deterministic.
func TestHTTPListFilters(t *testing.T) {
	s := NewService(Options{RemoteOnly: true, CacheShards: 4})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Shutdown()
	})

	// Empty listing: literally "[]".
	resp, err := http.Get(srv.URL + "/api/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.TrimSpace(string(raw)); got != "[]" {
		t.Fatalf("empty listing body = %q, want []", got)
	}

	var ids []string
	for i := 0; i < 4; i++ {
		id, err := s.Submit(smallReq())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Diversify states: lease job 1 to a worker, cancel job 2.
	if g, err := s.Lease("w1", 0); err != nil || g == nil || g.JobID != ids[0] {
		t.Fatalf("lease = %+v, %v", g, err)
	}
	s.Cancel(ids[1])

	get := func(query string) []JobSnapshot {
		t.Helper()
		var list []JobSnapshot
		if code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns"+query, nil, &list); code != http.StatusOK {
			t.Fatalf("list %q = %d", query, code)
		}
		return list
	}
	if list := get("?state=queued"); len(list) != 2 || list[0].ID != ids[2] || list[1].ID != ids[3] {
		t.Fatalf("?state=queued = %+v", list)
	}
	if list := get("?state=leased"); len(list) != 1 || list[0].ID != ids[0] || list[0].Worker != "w1" {
		t.Fatalf("?state=leased = %+v", list)
	}
	if list := get("?limit=2"); len(list) != 2 || list[0].ID != ids[0] {
		t.Fatalf("?limit=2 = %+v", list)
	}
	if list := get("?after=" + ids[1]); len(list) != 2 || list[0].ID != ids[2] {
		t.Fatalf("?after = %+v", list)
	}
	if list := get("?state=queued&after=" + ids[2] + "&limit=5"); len(list) != 1 || list[0].ID != ids[3] {
		t.Fatalf("combined filters = %+v", list)
	}
	// A filter that matches nothing still yields [].
	resp, err = http.Get(srv.URL + "/api/v1/campaigns?state=failed")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.TrimSpace(string(raw)); got != "[]" {
		t.Fatalf("no-match listing body = %q, want []", got)
	}
	var apiErr apiError
	if code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns?state=bogus", nil, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("bogus state = %d, want 400", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns?limit=nope", nil, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("bogus limit = %d, want 400", code)
	}
}

// TestHTTPRetryAfterDerived: the 429 hint must reflect the backlog,
// not a hardcoded constant. Two stuck pending jobs at the default 5s
// mean over one slot put the deterministic hint at 10s.
func TestHTTPRetryAfterDerived(t *testing.T) {
	s := NewService(Options{RemoteOnly: true, CacheShards: 4, MaxQueued: 2})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Shutdown()
	})
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(smallReq()); err != nil {
			t.Fatal(err)
		}
	}
	body, _ := json.Marshal(smallReq())
	resp, err := http.Post(srv.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", ra, err)
	}
	if secs != 10 {
		t.Fatalf("Retry-After = %d, want 10 (2 pending × 5s default mean / 1 slot)", secs)
	}
}

// TestHTTPWorkerEndpointErrors walks the lease protocol's error
// surface over real HTTP: missing worker_id, unknown jobs, foreign
// workers and no-work 204s.
func TestHTTPWorkerEndpointErrors(t *testing.T) {
	s := NewService(Options{RemoteOnly: true, CacheShards: 4})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Shutdown()
	})

	// Empty queue: 204, no body.
	var buf bytes.Buffer
	_ = json.NewEncoder(&buf).Encode(map[string]any{"worker_id": "w1"})
	resp, err := http.Post(srv.URL+"/api/v1/worker/lease", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("idle lease = %d, want 204", resp.StatusCode)
	}
	// Missing worker_id: 400.
	var apiErr apiError
	if code := doJSON(t, "POST", srv.URL+"/api/v1/worker/lease", map[string]any{}, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("anonymous lease = %d, want 400", code)
	}
	// Heartbeat for an unknown job: 404.
	if code := doJSON(t, "POST", srv.URL+"/api/v1/worker/heartbeat",
		map[string]any{"worker_id": "w1", "job_id": "job-999999"}, &apiErr); code != http.StatusNotFound {
		t.Fatalf("unknown-job heartbeat = %d, want 404", code)
	}

	id, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	var grant LeaseGrant
	if code := doJSON(t, "POST", srv.URL+"/api/v1/worker/lease",
		map[string]any{"worker_id": "w1"}, &grant); code != http.StatusOK || grant.JobID != id {
		t.Fatalf("lease = %d %+v", code, grant)
	}
	if grant.Req.Target != "PLPro" || grant.TTLSeconds <= 0 || grant.ExpiresAt.IsZero() || grant.Token == "" {
		t.Fatalf("grant incomplete: %+v", grant)
	}
	// A foreign worker's heartbeat and complete are 409s — and so is
	// the holder's own ID without the lease token, which anyone can
	// read out of the public job listing.
	if code := doJSON(t, "POST", srv.URL+"/api/v1/worker/heartbeat",
		map[string]any{"worker_id": "w2", "token": grant.Token, "job_id": id}, &apiErr); code != http.StatusConflict {
		t.Fatalf("foreign heartbeat = %d, want 409", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/api/v1/worker/heartbeat",
		map[string]any{"worker_id": "w1", "job_id": id}, &apiErr); code != http.StatusConflict {
		t.Fatalf("tokenless heartbeat = %d, want 409", code)
	}
	// ... and a rejected complete must not smuggle cache deltas into
	// the shared caches (score poisoning would silently break the
	// byte-identical rerun guarantee).
	bogus := []ScoreEntry{{Target: "PLPro", FP: molForTest(1).FP(), Result: mockResult(1)}}
	if code := doJSON(t, "POST", srv.URL+"/api/v1/worker/complete",
		map[string]any{"worker_id": "w1", "token": "forged", "job_id": id, "canceled": true, "Scores": bogus}, &apiErr); code != http.StatusConflict {
		t.Fatalf("forged-token complete = %d, want 409", code)
	}
	if st := s.ScoreCacheStats(); st.Entries != 0 {
		t.Fatalf("rejected complete wrote %d entries into the shared score cache", st.Entries)
	}
	// The holder heartbeats fine, and its complete lands.
	var hb heartbeatResponse
	if code := doJSON(t, "POST", srv.URL+"/api/v1/worker/heartbeat",
		map[string]any{"worker_id": "w1", "token": grant.Token, "job_id": id, "stage": "s1-dock", "progress": 0.5}, &hb); code != http.StatusOK {
		t.Fatalf("holder heartbeat = %d", code)
	}
	var snap JobSnapshot
	if code := doJSON(t, "POST", srv.URL+"/api/v1/worker/complete",
		map[string]any{"worker_id": "w1", "token": grant.Token, "job_id": id,
			"summary": ResultSummary{ScientificYield: 0.5}}, &snap); code != http.StatusOK {
		t.Fatalf("holder complete = %d", code)
	}
	if snap.State != StateDone || snap.Worker != "w1" {
		t.Fatalf("completed snapshot = %+v", snap)
	}
	// A complete that names no outcome is a 400.
	id2, _ := s.Submit(smallReq())
	doJSON(t, "POST", srv.URL+"/api/v1/worker/lease", map[string]any{"worker_id": "w1"}, &grant)
	if code := doJSON(t, "POST", srv.URL+"/api/v1/worker/complete",
		map[string]any{"worker_id": "w1", "job_id": id2}, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("outcome-less complete = %d, want 400", code)
	}
}
