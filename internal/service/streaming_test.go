package service

import (
	"testing"
	"time"
)

// TestStreamingJobMatchesSequential runs the same submission through a
// sequential-path service and a streaming-path service (separate
// instances, so both start cold) and requires identical funnel counts —
// the service-level slice of the golden-funnel contract — plus evidence
// that the streaming job populated the shared caches mid-stream.
func TestStreamingJobMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full (small) campaigns")
	}
	runOne := func(streaming bool) (ResultSummary, *Service) {
		s := NewService(Options{Workers: 1, CacheShards: 8, Streaming: streaming})
		t.Cleanup(s.Shutdown)
		id, err := s.Submit(smallReq())
		if err != nil {
			t.Fatal(err)
		}
		snap, err := s.Wait(id, 5*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != StateDone {
			t.Fatalf("job = %+v", snap)
		}
		sum, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		return sum, s
	}

	seq, _ := runOne(false)
	str, svc := runOne(true)

	if seq.Funnel.Counts() != str.Funnel.Counts() {
		t.Fatalf("streaming service diverged from sequential:\n  %+v\n  %+v",
			seq.Funnel.Counts(), str.Funnel.Counts())
	}
	if len(seq.Top) != len(str.Top) {
		t.Fatalf("top-K lengths differ: %d vs %d", len(seq.Top), len(str.Top))
	}
	for i := range seq.Top {
		if seq.Top[i].MolID != str.Top[i].MolID {
			t.Fatalf("top-K[%d] = %016x vs %016x", i, seq.Top[i].MolID, str.Top[i].MolID)
		}
	}
	// The streaming job must have filled the shared caches as it ran.
	if st := svc.ScoreCacheStats(); st.Puts == 0 {
		t.Fatalf("streaming job did not populate the score cache: %+v", st)
	}
	if st := svc.FeatureCacheStats(); st.Entries == 0 {
		t.Fatalf("streaming job did not populate the feature cache: %+v", st)
	}
	if str.Funnel.OverlapRatio <= 0 || len(str.Funnel.Timings) == 0 {
		t.Fatalf("streaming job missing schedule telemetry: %+v", str.Funnel)
	}
}

// TestStreamingPerJobOptIn: a single submission can opt into streaming
// on a sequential-default service.
func TestStreamingPerJobOptIn(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one full (small) campaign")
	}
	s := newTestService(t, 1)
	req := smallReq()
	req.Streaming = true
	id, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Wait(id, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateDone {
		t.Fatalf("job = %+v", snap)
	}
	sum, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	// The streaming schedule leaves its signature: an s1-dock window that
	// opens before the ml1-screen window closes.
	dockStart, _, ok1 := sum.Funnel.StageWindow("s1-dock")
	_, screenEnd, ok2 := sum.Funnel.StageWindow("ml1-screen")
	if !ok1 || !ok2 {
		t.Fatalf("missing stage windows: %+v", sum.Funnel.Timings)
	}
	if dockStart >= screenEnd {
		t.Fatalf("job did not stream: dock window starts at %v, screen ends at %v",
			dockStart, screenEnd)
	}
}

// TestStreamingJobCancellation cancels a streaming job mid-run and
// expects a clean canceled state (no hang, no failed state).
func TestStreamingJobCancellation(t *testing.T) {
	s := NewService(Options{Workers: 1, CacheShards: 8, Streaming: true})
	t.Cleanup(s.Shutdown)
	req := smallReq()
	req.LibrarySize = 2000 // long enough to catch mid-flight
	id, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for it to leave the queue, then cancel.
	deadline := time.Now().Add(time.Minute)
	for {
		snap, ok := s.Status(id)
		if !ok {
			t.Fatal("job vanished")
		}
		if snap.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !s.Cancel(id) {
		t.Fatal("cancel refused")
	}
	snap, err := s.Wait(id, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCanceled {
		t.Fatalf("state = %v, want canceled", snap.State)
	}
}
