// Live progress streaming: a per-job event bus inside the scheduler
// feeding GET /api/v1/campaigns/{id}/events as Server-Sent Events.
// Every state transition, stage change, remote heartbeat and terminal
// summary is published as a sequenced JobEvent; subscribers replay
// from an in-memory ring (Last-Event-ID semantics) and then follow
// live, so a dashboard holds one idle connection instead of polling
// /status — the difference between a million dashboards and a million
// QPS.
//
// The bus never blocks the scheduler: publishers append to the ring
// and poke a buffered notify channel; subscribers pull events by
// cursor at their own pace. A subscriber that falls behind a pruned
// ring skips forward (it still sees every state the job is in now and
// the terminal summary — exactly what a progress consumer needs).
package service

import (
	"sync"
	"time"
)

// JobEvent is one entry in a job's event stream.
type JobEvent struct {
	// Seq is the per-job sequence number, starting at 1; it is the SSE
	// event ID, so clients resume with Last-Event-ID after a drop.
	Seq int64  `json:"seq"`
	Job string `json:"job"`
	// Tenant is the job's owner ("default" for legacy submissions), so
	// a stream consumer can attribute events without a status lookup.
	Tenant string `json:"tenant,omitempty"`
	// Type is "state" for lifecycle transitions (terminal ones carry
	// Error or Summary) and "progress" for stage/fraction updates.
	Type     string    `json:"type"`
	State    JobState  `json:"state"`
	Stage    string    `json:"stage,omitempty"`
	Progress float64   `json:"progress,omitempty"`
	Worker   string    `json:"worker,omitempty"`
	Error    string    `json:"error,omitempty"`
	Time     time.Time `json:"time"`
	// Summary rides on the terminal "done" event so stream followers
	// never need a second request for the result.
	Summary *ResultSummary `json:"summary,omitempty"`
}

// Event types.
const (
	evTypeState    = "state"
	evTypeProgress = "progress"
)

// Terminal reports whether the event ends the stream.
func (e JobEvent) Terminal() bool {
	return e.Type == evTypeState && e.State.Terminal()
}

// maxRingEvents bounds one job's replay ring. State transitions are
// O(10) per job and progress is throttled, so a healthy job stays far
// below this; a pathological publisher degrades replay, not memory.
const maxRingEvents = 512

// eventSub is one subscriber's cursor onto a job's ring plus the
// channel the bus pokes when news arrives.
type eventSub struct {
	cursor int64 // last seq delivered to this subscriber
	notify chan struct{}
}

// jobStream is the bus's per-job state: the bounded event ring and the
// live subscribers.
type jobStream struct {
	events   []JobEvent // ring content; events[0].Seq == firstSeq
	firstSeq int64      // seq of events[0]; advances when the ring prunes
	nextSeq  int64      // seq the next published event gets
	subs     map[*eventSub]struct{}
	dropped  bool // record pruned: stream is over for subscribers
}

// eventBus fans job lifecycle events out to SSE subscribers.
type eventBus struct {
	mu     sync.Mutex
	jobs   map[string]*jobStream
	closed bool
	met    *metrics
}

func newEventBus(met *metrics) *eventBus {
	return &eventBus{jobs: map[string]*jobStream{}, met: met}
}

// stream returns (creating if needed) the per-job state; callers hold
// b.mu.
func (b *eventBus) stream(job string) *jobStream {
	st := b.jobs[job]
	if st == nil {
		st = &jobStream{firstSeq: 1, nextSeq: 1, subs: map[*eventSub]struct{}{}}
		b.jobs[job] = st
	}
	return st
}

// publish appends one event to the job's ring and wakes subscribers.
// Safe to call while holding a job's mutex or the scheduler's — the
// bus lock nests innermost and pokes are non-blocking.
func (b *eventBus) publish(ev JobEvent) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	st := b.stream(ev.Job)
	ev.Seq = st.nextSeq
	st.nextSeq++
	st.events = append(st.events, ev)
	if len(st.events) > maxRingEvents {
		over := len(st.events) - maxRingEvents
		st.events = append(st.events[:0], st.events[over:]...)
		st.firstSeq += int64(over)
	}
	subs := make([]*eventSub, 0, len(st.subs))
	for sub := range st.subs {
		subs = append(subs, sub)
	}
	b.mu.Unlock()
	if b.met != nil {
		b.met.eventsPublished.Inc()
	}
	for _, sub := range subs {
		select {
		case sub.notify <- struct{}{}:
		default: // already poked; subscriber will catch up
		}
	}
}

// subscribe attaches a cursor after seq `after` (0 = from the stream's
// beginning) to the job's stream. The caller must unsubscribe.
func (b *eventBus) subscribe(job string, after int64) *eventSub {
	sub := &eventSub{cursor: after, notify: make(chan struct{}, 1)}
	b.mu.Lock()
	st := b.stream(job)
	st.subs[sub] = struct{}{}
	b.mu.Unlock()
	if b.met != nil {
		b.met.sseSubscribers.Inc()
	}
	return sub
}

// unsubscribe detaches the cursor; idempotent.
func (b *eventBus) unsubscribe(job string, sub *eventSub) {
	b.mu.Lock()
	st := b.jobs[job]
	var present bool
	if st != nil {
		_, present = st.subs[sub]
		delete(st.subs, sub)
	}
	b.mu.Unlock()
	if present && b.met != nil {
		b.met.sseSubscribers.Dec()
	}
}

// next returns the events after the subscriber's cursor (advancing
// it), plus whether the stream has ended for this subscriber: the bus
// shut down, the record was pruned, or a terminal event is included in
// (or precedes) the returned batch. A cursor behind a pruned ring
// skips forward to the oldest retained event.
func (b *eventBus) next(job string, sub *eventSub) (evs []JobEvent, over bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.jobs[job]
	if st == nil {
		return nil, true
	}
	if sub.cursor < st.firstSeq-1 {
		sub.cursor = st.firstSeq - 1
	}
	from := int(sub.cursor - st.firstSeq + 1)
	if from < len(st.events) {
		evs = append(evs, st.events[from:]...)
		sub.cursor = st.nextSeq - 1
	}
	over = b.closed || st.dropped
	for _, ev := range evs {
		if ev.Terminal() {
			over = true
		}
	}
	// A subscriber arriving after the terminal event was consumed from
	// its cursor position still has to stop: check the retained tail.
	if !over && len(evs) == 0 && len(st.events) > 0 &&
		st.events[len(st.events)-1].Terminal() && sub.cursor >= st.nextSeq-1 {
		over = true
	}
	return evs, over
}

// drop removes pruned jobs' streams and ends their subscribers.
func (b *eventBus) drop(jobs []string) {
	b.mu.Lock()
	var wake []*eventSub
	for _, id := range jobs {
		st := b.jobs[id]
		if st == nil {
			continue
		}
		st.dropped = true
		for sub := range st.subs {
			wake = append(wake, sub)
		}
		if len(st.subs) == 0 {
			delete(b.jobs, id)
		}
	}
	b.mu.Unlock()
	for _, sub := range wake {
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
}

// shutdown ends every stream so SSE handlers return and the HTTP
// server's graceful drain is not held open by idle subscribers.
func (b *eventBus) shutdown() {
	b.mu.Lock()
	b.closed = true
	var wake []*eventSub
	for _, st := range b.jobs {
		for sub := range st.subs {
			wake = append(wake, sub)
		}
	}
	b.mu.Unlock()
	for _, sub := range wake {
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
}

// subscriberCount reports the live subscriptions on one job (tests).
func (b *eventBus) subscriberCount(job string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if st := b.jobs[job]; st != nil {
		return len(st.subs)
	}
	return 0
}
