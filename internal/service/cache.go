// Package service turns the one-shot campaign engine into a long-lived,
// concurrent, multi-tenant evaluation service: a bounded-worker job
// queue and scheduler for submitted campaigns, a sharded memoizing score
// cache that dedupes repeated docking work across tenants, and an HTTP
// JSON API (submit / status / result / cache stats / health) built on
// net/http only. The shape follows standing solver-evaluation services
// (cf. the ICCMA competition infrastructure): many submitted jobs, one
// shared solver substrate, aggressive reuse of identical evaluations.
package service

import (
	"sync"
	"sync/atomic"

	"impeccable/internal/chem"
	"impeccable/internal/dock"
)

// scoreKey identifies one memoized docking evaluation: the receptor by
// name and the ligand by structural fingerprint. Structurally identical
// molecules (same fingerprint) dock identically, so the fingerprint —
// not the library ID — is the unit of reuse across tenants.
type scoreKey struct {
	target string
	fp     chem.Fingerprint
}

// scoreShard is one lock-striped segment of the score cache. Hit,
// miss and eviction counters live on the shard so /metrics can expose
// per-shard series (skewed traffic shows up as one hot shard) and so
// counting never contends on a cache-global cell.
type scoreShard struct {
	mu sync.RWMutex
	m  map[scoreKey]dock.Result

	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64
}

// ScoreCache is a sharded, concurrency-safe memoizing cache of docking
// results keyed by (target, molecule fingerprint). Shards are selected
// by fingerprint hash so concurrent campaigns stripe their traffic
// across independent locks instead of serializing on one map.
type ScoreCache struct {
	shards []scoreShard
	mask   uint64

	// maxPerShard bounds each shard's entry count; 0 means unbounded.
	// Eviction is random-replacement (delete an arbitrary entry), which
	// is cheap and adequate for a dedup cache.
	maxPerShard int

	puts atomic.Int64
}

// NewScoreCache builds a cache with the given shard count (rounded up to
// a power of two; values < 1 become 16) and a total soft capacity of
// maxEntries results (0 = unbounded).
func NewScoreCache(shards, maxEntries int) *ScoreCache {
	if shards < 1 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &ScoreCache{shards: make([]scoreShard, n), mask: uint64(n - 1)}
	if maxEntries > 0 {
		c.maxPerShard = (maxEntries + n - 1) / n
	}
	for i := range c.shards {
		c.shards[i].m = make(map[scoreKey]dock.Result)
	}
	return c
}

// shardFor hashes the key's fingerprint (already well mixed) with the
// target name into a shard index.
func (c *ScoreCache) shardFor(k scoreKey) *scoreShard {
	h := uint64(14695981039346656037)
	for _, ch := range []byte(k.target) {
		h = (h ^ uint64(ch)) * 1099511628211
	}
	for _, w := range k.fp {
		h ^= w
		h *= 1099511628211
	}
	return &c.shards[h&c.mask]
}

// get returns the cached result for (target, molecule), if present.
func (c *ScoreCache) get(target string, m *chem.Molecule) (dock.Result, bool) {
	k := scoreKey{target: target, fp: m.FP()}
	s := c.shardFor(k)
	s.mu.RLock()
	r, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
		// Callers may hold the genome slice; hand out a private copy so
		// no two tenants share backing memory.
		r.Genome = append([]float64(nil), r.Genome...)
		return r, true
	}
	s.misses.Add(1)
	return dock.Result{}, false
}

// put stores a result for (target, molecule), evicting an arbitrary
// entry when the shard is at capacity.
func (c *ScoreCache) put(target string, m *chem.Molecule, r dock.Result) {
	// Store a private copy of the genome: the caller may mutate its
	// slice after Put returns.
	r.Genome = append([]float64(nil), r.Genome...)
	c.store(scoreKey{target: target, fp: m.FP()}, r)
	c.puts.Add(1)
}

// store inserts one entry under the capacity bound; r's genome must
// already be private to the cache.
func (c *ScoreCache) store(k scoreKey, r dock.Result) {
	s := c.shardFor(k)
	s.mu.Lock()
	if _, exists := s.m[k]; !exists && c.maxPerShard > 0 && len(s.m) >= c.maxPerShard {
		for victim := range s.m {
			delete(s.m, victim)
			s.evicts.Add(1)
			break
		}
	}
	s.m[k] = r
	s.mu.Unlock()
}

// ScoreEntry is one exported score-cache record: the (target,
// fingerprint) key plus the memoized docking result. The serializable
// unit of the cache snapshot.
type ScoreEntry struct {
	Target string
	FP     chem.Fingerprint
	Result dock.Result
}

// Export snapshots every cached docking result. Shards are walked one
// at a time under their read locks, so concurrent campaigns keep
// hitting the cache while a checkpoint is taken; the snapshot is
// per-shard-consistent, which is all a memoization cache needs.
func (c *ScoreCache) Export() []ScoreEntry {
	out := make([]ScoreEntry, 0, c.Len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, r := range s.m {
			r.Genome = append([]float64(nil), r.Genome...)
			out = append(out, ScoreEntry{Target: k.target, FP: k.fp, Result: r})
		}
		s.mu.RUnlock()
	}
	return out
}

// Import merges previously exported entries into the cache, respecting
// the capacity bound. Imported entries do not count as puts — the
// stats keep reflecting runtime traffic only.
func (c *ScoreCache) Import(entries []ScoreEntry) {
	for _, e := range entries {
		r := e.Result
		r.Genome = append([]float64(nil), r.Genome...)
		c.store(scoreKey{target: e.Target, fp: e.FP}, r)
	}
}

// Len returns the total number of cached results across all shards.
func (c *ScoreCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Shards    int     `json:"shards"`
	Entries   int     `json:"entries"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Puts      int64   `json:"puts"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"` // hits / (hits+misses); 0 when no lookups
}

// ShardStats is one shard's point-in-time counters, exposed per shard
// on /metrics so load imbalance across the stripes is visible.
type ShardStats struct {
	Entries   int
	Hits      int64
	Misses    int64
	Evictions int64
}

// ShardStats snapshots every shard's counters, in shard order.
func (c *ScoreCache) ShardStats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		out[i].Entries = len(s.m)
		s.mu.RUnlock()
		out[i].Hits = s.hits.Load()
		out[i].Misses = s.misses.Load()
		out[i].Evictions = s.evicts.Load()
	}
	return out
}

// Stats snapshots the cache counters, summed across shards.
func (c *ScoreCache) Stats() CacheStats {
	st := CacheStats{
		Shards: len(c.shards),
		Puts:   c.puts.Load(),
	}
	for _, ss := range c.ShardStats() {
		st.Entries += ss.Entries
		st.Hits += ss.Hits
		st.Misses += ss.Misses
		st.Evictions += ss.Evictions
	}
	if lookups := st.Hits + st.Misses; lookups > 0 {
		st.HitRate = float64(st.Hits) / float64(lookups)
	}
	return st
}

// ForTarget returns a view of the cache scoped to one receptor,
// satisfying dock.ScoreCache so it can be attached to a dock.Engine or a
// campaign.Config.
func (c *ScoreCache) ForTarget(name string) dock.ScoreCache {
	return &targetCache{c: c, target: name}
}

// targetCache adapts the shared cache to dock.ScoreCache for one target.
type targetCache struct {
	c      *ScoreCache
	target string
}

func (t *targetCache) Get(m *chem.Molecule) (dock.Result, bool) { return t.c.get(t.target, m) }
func (t *targetCache) Put(m *chem.Molecule, r dock.Result)      { t.c.put(t.target, m, r) }
