// Tenancy tests: DRR fairness under a flood, per-tenant quotas and
// concurrency caps, preemption of over-share leases, submit rate
// limiting, eager cancel removal, and the tenant-aware HTTP surface.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// tenantReq is smallReq stamped with a tenant (and optional priority).
func tenantReq(tenant string, priority int) SubmitRequest {
	req := smallReq()
	req.Tenant = tenant
	req.Priority = priority
	return req
}

func TestTenantValidation(t *testing.T) {
	for _, name := range []string{"", "default", "acme", "team-a.b_c", "X9"} {
		if err := validateTenant(name); err != nil {
			t.Errorf("validateTenant(%q) = %v, want nil", name, err)
		}
	}
	long := make([]byte, maxTenantLen+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, name := range []string{"has space", "sla/sh", "ünïcode", string(long)} {
		if err := validateTenant(name); err == nil {
			t.Errorf("validateTenant(%q) accepted", name)
		}
	}
	if got := normalizeTenant(""); got != DefaultTenant {
		t.Fatalf("normalizeTenant(\"\") = %q", got)
	}
	if got := normalizeTenant("acme"); got != "acme" {
		t.Fatalf("normalizeTenant(acme) = %q", got)
	}

	// The service rejects bad identities and out-of-range priorities
	// before touching the scheduler.
	s := NewService(Options{RemoteOnly: true, CacheShards: 4})
	defer s.Shutdown()
	if _, err := s.Submit(tenantReq("no/slash", 0)); err == nil {
		t.Fatal("invalid tenant name accepted")
	}
	if _, err := s.Submit(tenantReq("acme", MaxPriority+1)); err == nil {
		t.Fatal("out-of-range priority accepted")
	}
	if _, err := s.Submit(tenantReq("acme", -1)); err == nil {
		t.Fatal("negative priority accepted")
	}
}

// TestDRRFairnessUnderFlood is the fairness acceptance test: with two
// equal-weight tenants, one flooding 50 submissions ahead of a light
// tenant's single job, the light job is granted within two job-slots.
func TestDRRFairnessUnderFlood(t *testing.T) {
	s := remoteScheduler(time.Hour, nil)
	defer s.shutdown()
	now := time.Now()
	for i := 0; i < 50; i++ {
		if _, err := s.submit(tenantReq("flood", 0), now); err != nil {
			t.Fatal(err)
		}
	}
	lightID, err := s.submit(tenantReq("light", 0), now)
	if err != nil {
		t.Fatal(err)
	}
	granted := -1
	for i := 0; i < 2; i++ {
		j, err := s.lease("w1", 0, time.Now())
		if err != nil || j == nil {
			t.Fatalf("grant %d = %v, %v", i, j, err)
		}
		if j.id == lightID {
			granted = i
			break
		}
	}
	if granted < 0 {
		t.Fatalf("light tenant's job not scheduled within 2 job-slots of a 50-job flood")
	}
}

// TestDRRWeightedShares pins the proportional split: weights 3:1 yield
// a heavy-heavy-heavy-light grant cadence over contended slots.
func TestDRRWeightedShares(t *testing.T) {
	cfg := schedConfig{remoteOnly: true, leaseTTL: time.Hour,
		limits: func(tenant string) TenantLimits {
			if tenant == "heavy" {
				return TenantLimits{Weight: 3}
			}
			return TenantLimits{}
		}}
	s := newScheduler(cfg, func(*job) {})
	defer s.shutdown()
	now := time.Now()
	for i := 0; i < 8; i++ {
		if _, err := s.submit(tenantReq("heavy", 0), now); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := s.submit(tenantReq("light", 0), now); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for i := 0; i < 8; i++ {
		j, err := s.lease("w1", 0, time.Now())
		if err != nil || j == nil {
			t.Fatalf("grant %d = %v, %v", i, j, err)
		}
		got = append(got, j.tenant)
	}
	want := []string{"heavy", "heavy", "heavy", "light", "heavy", "heavy", "heavy", "light"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
}

// TestTenantPriorityOrdering: within one tenant's queue, higher
// Priority runs first; equal priorities stay FIFO.
func TestTenantPriorityOrdering(t *testing.T) {
	s := remoteScheduler(time.Hour, nil)
	defer s.shutdown()
	now := time.Now()
	low1, _ := s.submit(tenantReq("acme", 0), now)
	low2, _ := s.submit(tenantReq("acme", 0), now)
	high, _ := s.submit(tenantReq("acme", 5), now)
	var got []string
	for i := 0; i < 3; i++ {
		j, err := s.lease("w1", 0, time.Now())
		if err != nil || j == nil {
			t.Fatalf("grant %d = %v, %v", i, j, err)
		}
		got = append(got, j.id)
	}
	want := []string{high, low1, low2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
}

// TestTenantMaxRunningCap: a tenant at its running-concurrency cap is
// skipped — its queued work waits even with free slots — and resumes
// when an in-flight job completes.
func TestTenantMaxRunningCap(t *testing.T) {
	cfg := schedConfig{remoteOnly: true, leaseTTL: time.Hour,
		limits: func(tenant string) TenantLimits {
			if tenant == "capped" {
				return TenantLimits{MaxRunning: 1}
			}
			return TenantLimits{}
		}}
	s := newScheduler(cfg, func(*job) {})
	defer s.shutdown()
	now := time.Now()
	first, _ := s.submit(tenantReq("capped", 0), now)
	second, _ := s.submit(tenantReq("capped", 0), now)
	j, err := s.lease("w1", 0, time.Now())
	if err != nil || j == nil || j.id != first {
		t.Fatalf("first grant = %v, %v", j, err)
	}
	if extra, err := s.lease("w2", 0, time.Now()); err != nil || extra != nil {
		t.Fatalf("lease over the cap = %v, %v; want nil, nil", extra, err)
	}
	if err := s.completeRemote("w1", tokenOf(t, s, first), first, StateDone, "", &ResultSummary{}, time.Now()); err != nil {
		t.Fatal(err)
	}
	j2, err := s.lease("w2", 0, time.Now())
	if err != nil || j2 == nil || j2.id != second {
		t.Fatalf("post-completion grant = %v, %v, want %s", j2, err, second)
	}
}

// TestTenantMaxQueuedIsolation: one tenant filling its own pending
// bound gets ErrQueueFull while another tenant still submits freely —
// the bound is per tenant, not global.
func TestTenantMaxQueuedIsolation(t *testing.T) {
	cfg := schedConfig{remoteOnly: true, leaseTTL: time.Hour, maxQueued: 2}
	s := newScheduler(cfg, func(*job) {})
	defer s.shutdown()
	now := time.Now()
	for i := 0; i < 2; i++ {
		if _, err := s.submit(tenantReq("noisy", 0), now); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.submit(tenantReq("noisy", 0), now); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-bound submit = %v, want ErrQueueFull", err)
	}
	if v := s.met.tenantRejections.With("noisy", rejectQueueFull).Value(); v != 1 {
		t.Fatalf("tenant_rejections{noisy,queue_full} = %v, want 1", v)
	}
	if _, err := s.submit(tenantReq("quiet", 0), now); err != nil {
		t.Fatalf("other tenant blocked by noisy tenant's bound: %v", err)
	}
}

// TestCancelWhileQueuedLeavesQueueEagerly: a canceled queued job exits
// the pending queue immediately, so queue depth, the per-tenant bound
// and the Retry-After hint stop counting it — no dead entry lingers
// until a worker would have popped it.
func TestCancelWhileQueuedLeavesQueueEagerly(t *testing.T) {
	cfg := schedConfig{remoteOnly: true, leaseTTL: time.Hour, maxQueued: 3}
	s := newScheduler(cfg, func(*job) {})
	defer s.shutdown()
	now := time.Now()
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := s.submit(tenantReq("acme", 0), now)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := s.cancelJob(ids[1]); err != nil {
		t.Fatal(err)
	}
	if got := s.queueDepth(); got != 2 {
		t.Fatalf("queueDepth after cancel = %d, want 2", got)
	}
	if got := s.tenantQueueDepths()["acme"]; got != 2 {
		t.Fatalf("tenant depth after cancel = %d, want 2", got)
	}
	// The freed slot is usable again at once.
	if _, err := s.submit(tenantReq("acme", 0), now); err != nil {
		t.Fatalf("submit into freed slot = %v", err)
	}
	// Grants skip the canceled job entirely.
	for i, want := range []string{ids[0], ids[2]} {
		j, err := s.lease("w1", 0, time.Now())
		if err != nil || j == nil || j.id != want {
			t.Fatalf("grant %d = %v, %v, want %s", i, j, err, want)
		}
	}
}

// TestPreemptionRevokesYoungestOverShare drives the arbiter directly:
// a starved priority job revokes the over-share tenant's youngest
// lease, the revoked job re-enters its owner's queue front with the
// requeue journaled, and the freed slot goes to the starved tenant.
func TestPreemptionRevokesYoungestOverShare(t *testing.T) {
	jl := &memJournal{}
	cfg := schedConfig{remoteOnly: true, leaseTTL: time.Hour,
		preemptAfter: time.Second, record: jl.record}
	s := newScheduler(cfg, func(*job) {})
	defer s.shutdown()
	t0 := time.Now()
	h1, _ := s.submit(tenantReq("hog", 0), t0)
	h2, _ := s.submit(tenantReq("hog", 0), t0.Add(10*time.Millisecond))
	if j, err := s.lease("w1", 0, t0.Add(20*time.Millisecond)); err != nil || j == nil || j.id != h1 {
		t.Fatalf("lease h1 = %v, %v", j, err)
	}
	if j, err := s.lease("w2", 0, t0.Add(30*time.Millisecond)); err != nil || j == nil || j.id != h2 {
		t.Fatalf("lease h2 = %v, %v", j, err)
	}
	vip, err := s.submit(tenantReq("vip", 2), t0.Add(40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	// Not yet waited past preemptAfter: nothing moves.
	s.maybePreempt(t0.Add(500 * time.Millisecond))
	if st := stateOf(t, s, h2); st != StateLeased {
		t.Fatalf("premature preemption: h2 = %s", st)
	}

	s.maybePreempt(t0.Add(2 * time.Second))
	if st := stateOf(t, s, h2); st != StateQueued {
		t.Fatalf("h2 after preemption = %s, want queued", st)
	}
	if st := stateOf(t, s, h1); st != StateLeased {
		t.Fatalf("h1 (older lease) = %s, want still leased", st)
	}
	if got, want := jl.kinds(h2), []eventKind{evSubmitted, evLeased, evRequeued}; !equalKinds(got, want) {
		t.Fatalf("h2 journal = %v, want %v", got, want)
	}
	if v := s.met.tenantPreemptions.With("hog").Value(); v != 1 {
		t.Fatalf("tenant_preemptions{hog} = %v, want 1", v)
	}
	// The evicted worker discovers the revocation on its next heartbeat.
	if _, err := s.heartbeat("w2", tokenOf(t, s, h1), h2, "", 0, time.Now()); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("evicted heartbeat = %v, want ErrLeaseLost", err)
	}
	// The freed slot goes to the starved tenant, then hog's requeued
	// job — with its request untouched, so the rerun stays identical.
	j, err := s.lease("w3", 0, time.Now())
	if err != nil || j == nil || j.id != vip {
		t.Fatalf("post-preemption grant = %v, %v, want %s", j, err, vip)
	}
	j2, err := s.lease("w4", 0, time.Now())
	if err != nil || j2 == nil || j2.id != h2 {
		t.Fatalf("second grant = %v, %v, want %s", j2, err, h2)
	}
	if j2.req.Seed != smallReq().Seed || j2.req.LibOffset != smallReq().LibOffset {
		t.Fatalf("requeued request mutated: %+v", j2.req)
	}

	// A starved tenant already at fair share cannot keep stealing: with
	// one of two slots, a second preemption attempt is a no-op.
	s.maybePreempt(t0.Add(10 * time.Second))
	if st := stateOf(t, s, h1); st != StateLeased {
		t.Fatalf("h1 preempted despite vip at fair share: %s", st)
	}
}

// TestTenantRateLimiter covers the token bucket in isolation: burst,
// refill, a positive wait hint, and the disabled (zero-rate) case.
func TestTenantRateLimiter(t *testing.T) {
	tl := newTenantLimiter(func(tenant string) TenantLimits {
		if tenant == "metered" {
			return TenantLimits{SubmitPerSec: 2, SubmitBurst: 2}
		}
		return TenantLimits{}
	})
	t0 := time.Now()
	for i := 0; i < 2; i++ {
		if ok, _ := tl.allow("metered", t0); !ok {
			t.Fatalf("burst submit %d rejected", i)
		}
	}
	ok, wait := tl.allow("metered", t0)
	if ok {
		t.Fatal("drained bucket allowed a submit")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait hint = %v, want (0, 1s]", wait)
	}
	// Half a second refills one token at 2/s.
	if ok, _ := tl.allow("metered", t0.Add(600*time.Millisecond)); !ok {
		t.Fatal("refilled bucket still rejecting")
	}
	// No configured rate: never limited.
	for i := 0; i < 100; i++ {
		if ok, _ := tl.allow("unmetered", t0); !ok {
			t.Fatal("unmetered tenant rate limited")
		}
	}
}

// TestHTTPTenant429Matrix pins both 429 shapes per tenant over real
// HTTP: a rate-limited tenant and a queue-full tenant each get their
// own Retry-After while an unaffected tenant keeps submitting 202s.
func TestHTTPTenant429Matrix(t *testing.T) {
	s := NewService(Options{RemoteOnly: true, CacheShards: 4,
		Tenants: map[string]TenantLimits{
			"metered": {SubmitPerSec: 0.001, SubmitBurst: 1},
			"boxed":   {MaxQueued: 1},
		}})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Shutdown()
	})

	post := func(req SubmitRequest) *http.Response {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	expect := func(req SubmitRequest, code int) *http.Response {
		t.Helper()
		resp := post(req)
		if resp.StatusCode != code {
			t.Fatalf("submit tenant=%q = %d, want %d", req.Tenant, resp.StatusCode, code)
		}
		return resp
	}

	expect(tenantReq("metered", 0), http.StatusAccepted).Body.Close()
	resp := expect(tenantReq("metered", 0), http.StatusTooManyRequests)
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("rate-limit Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
		t.Fatalf("429 body = %+v, %v", apiErr, err)
	}
	resp.Body.Close()

	expect(tenantReq("boxed", 0), http.StatusAccepted).Body.Close()
	resp = expect(tenantReq("boxed", 0), http.StatusTooManyRequests)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-full 429 without Retry-After")
	}
	resp.Body.Close()

	// The limits above are per tenant: an unconfigured tenant is
	// untouched by either.
	expect(tenantReq("bystander", 0), http.StatusAccepted).Body.Close()
	expect(tenantReq("bystander", 0), http.StatusAccepted).Body.Close()

	// Both rejection reasons surfaced in the tenant-labeled counter.
	if v := s.met.tenantRejections.With("metered", rejectRateLimited).Value(); v != 1 {
		t.Fatalf("tenant_rejections{metered,rate_limited} = %v, want 1", v)
	}
	if v := s.met.tenantRejections.With("boxed", rejectQueueFull).Value(); v != 1 {
		t.Fatalf("tenant_rejections{boxed,queue_full} = %v, want 1", v)
	}
}

// TestHTTPTenantHeaderAndListing: the X-Tenant header stands in for an
// absent body field (body wins when both are present), snapshots carry
// the tenant, and ?tenant= filters the listing, composing with ?state=
// and ?limit=.
func TestHTTPTenantHeaderAndListing(t *testing.T) {
	s := NewService(Options{RemoteOnly: true, CacheShards: 4})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Shutdown()
	})

	submit := func(req SubmitRequest, header string) JobSnapshot {
		t.Helper()
		body, _ := json.Marshal(req)
		hreq, _ := http.NewRequest("POST", srv.URL+"/api/v1/campaigns", bytes.NewReader(body))
		hreq.Header.Set("Content-Type", "application/json")
		if header != "" {
			hreq.Header.Set(tenantHeader, header)
		}
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %d", resp.StatusCode)
		}
		var snap JobSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}

	if snap := submit(smallReq(), "gateway"); snap.Tenant != "gateway" {
		t.Fatalf("header-only tenant = %q, want gateway", snap.Tenant)
	}
	if snap := submit(tenantReq("body", 0), "gateway"); snap.Tenant != "body" {
		t.Fatalf("body+header tenant = %q, want body (body wins)", snap.Tenant)
	}
	if snap := submit(smallReq(), ""); snap.Tenant != DefaultTenant {
		t.Fatalf("legacy tenant = %q, want %q", snap.Tenant, DefaultTenant)
	}
	a1 := submit(tenantReq("acme", 0), "")
	a2 := submit(tenantReq("acme", 0), "")

	get := func(query string) []JobSnapshot {
		t.Helper()
		var list []JobSnapshot
		if code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns"+query, nil, &list); code != http.StatusOK {
			t.Fatalf("list %q = %d", query, code)
		}
		return list
	}
	if list := get("?tenant=acme"); len(list) != 2 || list[0].ID != a1.ID || list[1].ID != a2.ID {
		t.Fatalf("?tenant=acme = %+v", list)
	}
	if list := get("?tenant=acme&state=queued&limit=1"); len(list) != 1 || list[0].ID != a1.ID {
		t.Fatalf("composed tenant filter = %+v", list)
	}
	if list := get("?tenant=acme&after=" + a1.ID); len(list) != 1 || list[0].ID != a2.ID {
		t.Fatalf("?tenant&after = %+v", list)
	}
	if list := get("?tenant=nobody"); len(list) != 0 {
		t.Fatalf("?tenant=nobody = %+v", list)
	}
	var apiErr apiError
	if code := doJSON(t, "GET", srv.URL+"/api/v1/campaigns?tenant=no/slash", nil, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("invalid ?tenant = %d, want 400", code)
	}
}

// TestReplayJournalTenants: schema-v2 events restore their tenant and
// priority; legacy (pre-tenancy) events fall back to the request's
// tenant field and finally to the default tenant, so old journals keep
// replaying byte-identically.
func TestReplayJournalTenants(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	legacy := smallReq()
	tagged := tenantReq("acme", 3)
	events := []journalEvent{
		// Legacy event: no Tenant on the event or the request.
		{Kind: evSubmitted, Job: "job-000001", Time: t0, Req: &legacy},
		// Schema v2: tenant and priority journaled on the event.
		{Kind: evSubmitted, Job: "job-000002", Time: t0, Req: &tagged, Tenant: "acme", Priority: 3},
		// Transitional: tenant only inside the retained request.
		{Kind: evSubmitted, Job: "job-000003", Time: t0, Req: &tagged},
	}
	jobs, _ := replayJournal(events, nil)
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	byID := map[string]*job{}
	for _, j := range jobs {
		byID[j.id] = j
	}
	if j := byID["job-000001"]; j.tenant != DefaultTenant {
		t.Fatalf("legacy job tenant = %q, want %q", j.tenant, DefaultTenant)
	}
	if j := byID["job-000002"]; j.tenant != "acme" || j.req.Priority != 3 {
		t.Fatalf("v2 job = tenant %q priority %d", j.tenant, j.req.Priority)
	}
	if j := byID["job-000003"]; j.tenant != "acme" {
		t.Fatalf("transitional job tenant = %q, want acme", j.tenant)
	}

	// Restored jobs land in their tenants' queues — fairness survives a
	// restart, not just fresh submissions.
	s := remoteScheduler(time.Hour, nil)
	defer s.shutdown()
	s.restore(jobs, 3)
	depths := s.tenantQueueDepths()
	if depths[DefaultTenant] != 1 || depths["acme"] != 2 {
		t.Fatalf("restored tenant depths = %v", depths)
	}
}

// TestTenantRetryAfterUsesOwnBacklog: the 429 hint a tenant sees is
// derived from its own queue against its weighted slot share, not from
// the global backlog.
func TestTenantRetryAfterUsesOwnBacklog(t *testing.T) {
	s := remoteScheduler(time.Hour, nil)
	s.workerSlots = 2
	defer s.shutdown()
	s.recordDuration(10 * time.Second)
	now := time.Now()
	for i := 0; i < 6; i++ {
		if _, err := s.submit(tenantReq("flood", 0), now); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.submit(tenantReq("light", 0), now); err != nil {
		t.Fatal(err)
	}
	// flood: 6 pending × 10s over its half of 2 slots (weight 1 of 2) = 60s.
	if got := s.retryAfterSecondsFor("flood"); got != 60 {
		t.Fatalf("flood Retry-After = %d, want 60", got)
	}
	// light: 1 pending × 10s over its 1-slot share = 10s.
	if got := s.retryAfterSecondsFor("light"); got != 10 {
		t.Fatalf("light Retry-After = %d, want 10", got)
	}
	// Unknown tenant: nothing queued, minimum hint.
	if got := s.retryAfterSecondsFor("stranger"); got != 1 {
		t.Fatalf("unknown-tenant Retry-After = %d, want 1", got)
	}
}
