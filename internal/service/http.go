package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the service's HTTP API:
//
//	POST   /api/v1/campaigns          submit a campaign (SubmitRequest JSON; X-Tenant
//	                                  header names the tenant when the body doesn't)
//	GET    /api/v1/campaigns          list job snapshots (?state= ?tenant= ?limit= ?after=)
//	GET    /api/v1/campaigns/{id}     one job's status
//	DELETE /api/v1/campaigns/{id}     cancel a job
//	GET    /api/v1/campaigns/{id}/result   completed job's summary
//	GET    /api/v1/campaigns/{id}/events   live progress stream (SSE)
//	GET    /api/v1/campaigns/{id}/provenance   event-hash chain + Merkle proof
//	GET    /api/v1/cache              score + feature cache stats
//	GET    /healthz                   liveness + job counts (503 while draining)
//	GET    /metrics                   Prometheus text exposition
//
// plus the remote-worker protocol (cmd/impeccable-worker):
//
//	POST   /api/v1/worker/lease       pull a job under a TTL lease (204 = no work)
//	POST   /api/v1/worker/heartbeat   extend a lease, report stage/progress
//	POST   /api/v1/worker/complete    post a result + cache deltas
//
// Every route passes through the observability middleware: request IDs
// are accepted (or minted) and echoed as X-Request-Id, and per-route
// latency, status codes and in-flight counts feed /metrics.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /api/v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/provenance", s.handleProvenance)
	mux.HandleFunc("GET /api/v1/cache", s.handleCache)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /api/v1/worker/lease", s.handleWorkerLease)
	mux.HandleFunc("POST /api/v1/worker/heartbeat", s.handleWorkerHeartbeat)
	mux.HandleFunc("POST /api/v1/worker/complete", s.handleWorkerComplete)
	return s.instrument(mux)
}

// writeJSON encodes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, apiError{Error: msg})
}

// maxSubmitBody bounds the request body; a SubmitRequest is tiny.
const maxSubmitBody = 1 << 16

// tenantHeader is the identity fallback for clients that set a header
// instead of the body field (proxies and gateways commonly inject it).
// The body field wins when both are present.
const tenantHeader = "X-Tenant"

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !decodeBody(w, r, maxSubmitBody, strictFields, &req) {
		return
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get(tenantHeader)
	}
	id, err := s.SubmitCtx(r.Context(), req)
	if err != nil {
		// A full tenant queue is backpressure, not a bad request: 429
		// tells the tenant to retry later, with the wait derived from
		// how fast its own backlog is draining against its fair share.
		if errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After",
				strconv.Itoa(s.sched.retryAfterSecondsFor(normalizeTenant(req.Tenant))))
			writeError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		// A drained token bucket is the tenant's own submit rate, not
		// queue pressure: the wait comes from the bucket's refill rate.
		var rl *RateLimitError
		if errors.As(err, &rl) {
			secs := int((rl.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		// Submissions during a drain get the same 503 the health probe
		// shows — this instance is going away, try another.
		if errors.Is(err, ErrShuttingDown) {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	snap, _ := s.Status(id)
	writeJSON(w, http.StatusAccepted, snap)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	var q JobQuery
	if v := r.URL.Query().Get("state"); v != "" {
		st := JobState(v)
		switch st {
		case StateQueued, StateLeased, StateRunning, StateDone, StateFailed, StateCanceled:
			q.State = st
		default:
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown state %q", v))
			return
		}
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid limit %q", v))
			return
		}
		q.Limit = n
	}
	if v := r.URL.Query().Get("tenant"); v != "" {
		if err := validateTenant(v); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		q.Tenant = v
	}
	q.After = r.URL.Query().Get("after")
	writeJSON(w, http.StatusOK, s.JobsFiltered(q))
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	// The snapshot comes back from the cancel itself (taken under the
	// job's lock): re-reading through the record table here could race
	// a concurrent completion's prune and misreport the outcome.
	snap, err := s.sched.cancelJobTraced(r.PathValue("id"), RequestIDFrom(r.Context()))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "unknown job")
	case errors.Is(err, ErrShuttingDown):
		// The journal is closed: a cancel acked now would be lost
		// across the restart. 503 tells the tenant to retry against
		// the next instance.
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusOK, snap)
	}
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	sum, err := s.Result(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "unknown job")
	case errors.Is(err, ErrNotFinished):
		// 409: the resource exists but is not ready; poll status first.
		writeError(w, http.StatusConflict, err.Error())
	case err != nil:
		writeError(w, http.StatusGone, err.Error())
	default:
		writeJSON(w, http.StatusOK, sum)
	}
}

// handleProvenance serves a job's event-hash chain, the Merkle root
// sealed at terminal time, and an inclusion proof for one event —
// the last by default, or the one picked with ?event=N.
func (s *Service) handleProvenance(w http.ResponseWriter, r *http.Request) {
	index := -1
	if v := r.URL.Query().Get("event"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid event index %q", v))
			return
		}
		index = n
	}
	p, err := s.Provenance(r.PathValue("id"), index)
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "unknown job")
	case errors.Is(err, ErrNoProvenance):
		writeError(w, http.StatusNotFound, err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusOK, p)
	}
}

// sseKeepalive is how often an idle event stream emits a comment line
// so intermediaries (and the client) can tell the connection is alive.
const sseKeepalive = 15 * time.Second

// handleEvents streams one job's lifecycle as Server-Sent Events:
// every state transition, stage/progress update and the terminal
// summary. Each event's SSE id is its per-job sequence number, so a
// reconnecting client sends Last-Event-ID and replays only what it
// missed (served from the in-memory ring). The stream closes itself
// after the terminal event — including for already-finished jobs,
// which get their replay and an immediate end-of-stream.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.sched.get(id); !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var after int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			after = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sub := s.sched.bus.subscribe(id, after)
	defer s.sched.bus.unsubscribe(id, sub)
	keep := time.NewTicker(sseKeepalive)
	defer keep.Stop()
	for {
		evs, over := s.sched.bus.next(id, sub)
		for _, ev := range evs {
			if !writeSSE(w, ev) {
				return
			}
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		if over {
			return
		}
		select {
		case <-sub.notify:
		case <-r.Context().Done():
			return
		case <-keep.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE renders one event in SSE framing; false means the client is
// gone.
func writeSSE(w http.ResponseWriter, ev JobEvent) bool {
	data, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err == nil
}

// cacheStatsBody is the /api/v1/cache response.
type cacheStatsBody struct {
	Scores   CacheStats `json:"scores"`
	Features CacheStats `json:"features"`
}

func (s *Service) handleCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, cacheStatsBody{
		Scores:   s.ScoreCacheStats(),
		Features: s.FeatureCacheStats(),
	})
}

// healthBody is the /healthz response.
type healthBody struct {
	Status        string           `json:"status"`
	Uptime        string           `json:"uptime"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Jobs          map[JobState]int `json:"jobs"`
	Targets       []string         `json:"targets"`
	// RetryAfterSeconds is the same backpressure estimate served with
	// 429 responses: backlog × recent mean job duration over execution
	// slots. Probes can watch it climb before the queue actually fills.
	RetryAfterSeconds int `json:"retry_after_seconds"`
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	// A draining coordinator must stop attracting traffic: load
	// balancers route on the health probe, so "ok" during a drain keeps
	// sending work to a server that rejects it. And like /metrics, a
	// probe is a point-in-time read — never cacheable.
	w.Header().Set("Cache-Control", "no-store")
	status, code := "ok", http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	up := s.Uptime()
	writeJSON(w, code, healthBody{
		Status:            status,
		Uptime:            up.Round(time.Millisecond).String(),
		UptimeSeconds:     up.Seconds(),
		Jobs:              s.sched.counts(),
		Targets:           s.Targets(),
		RetryAfterSeconds: s.sched.retryAfterSeconds(),
	})
}

// maxCompleteBody bounds a worker's complete payload: a ResultSummary
// plus the run's score/feature-cache deltas. Workers cap each delta at
// 50k entries (~40 MB of JSON apiece at the largest genome/feature
// shapes), so the bound leaves headroom above the worst legitimate
// payload rather than rejecting a finished multi-minute run.
const maxCompleteBody = 128 << 20

// Field strictness for decodeBody. Tenant-facing submissions reject
// unknown fields (catching typos in hand-written curl bodies); the
// worker protocol tolerates them so coordinator and worker binaries
// can skew by a version.
const (
	strictFields = true
	looseFields  = false
)

// decodeBody decodes a bounded JSON request body, writing the
// appropriate error response (413 for oversize, 400 for syntax) and
// returning false on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, strict bool, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	if strict {
		dec.DisallowUnknownFields()
	}
	err := dec.Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		return false
	}
	writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
	return false
}

// LeaseRequest is a worker's pull for one job. Exported so the worker
// client (internal/service/worker) marshals the exact struct this
// handler decodes — one definition, no drift between the two binaries.
type LeaseRequest struct {
	WorkerID   string  `json:"worker_id"`
	TTLSeconds float64 `json:"ttl_seconds,omitempty"` // 0 = server default
}

func (s *Service) handleWorkerLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeBody(w, r, maxSubmitBody, looseFields, &req) {
		return
	}
	if req.WorkerID == "" {
		writeError(w, http.StatusBadRequest, "worker_id is required")
		return
	}
	grant, err := s.Lease(req.WorkerID, time.Duration(req.TTLSeconds*float64(time.Second)))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if grant == nil {
		// No runnable work (empty queue, or the coordinator is
		// draining): the worker polls again later.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, grant)
}

// HeartbeatRequest extends a lease and reports remote progress
// (shared with the worker client, like LeaseRequest). Token is the
// secret from the LeaseGrant — worker IDs appear in job listings, so
// the ID alone does not authenticate.
type HeartbeatRequest struct {
	WorkerID string  `json:"worker_id"`
	Token    string  `json:"token"`
	JobID    string  `json:"job_id"`
	Stage    string  `json:"stage,omitempty"`
	Progress float64 `json:"progress,omitempty"`
}

// heartbeatResponse carries the extended lease deadline.
type heartbeatResponse struct {
	ExpiresAt time.Time `json:"expires_at"`
}

func (s *Service) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, maxSubmitBody, looseFields, &req) {
		return
	}
	expires, err := s.Heartbeat(req.WorkerID, req.Token, req.JobID, req.Stage, req.Progress)
	if !writeWorkerError(w, err) {
		return
	}
	writeJSON(w, http.StatusOK, heartbeatResponse{ExpiresAt: expires})
}

// CompleteRequest is a worker's posted outcome for a leased job
// (shared with the worker client, like LeaseRequest). Token
// authenticates as in HeartbeatRequest.
type CompleteRequest struct {
	WorkerID string `json:"worker_id"`
	Token    string `json:"token"`
	JobID    string `json:"job_id"`
	WorkerResult
}

func (s *Service) handleWorkerComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeBody(w, r, maxCompleteBody, looseFields, &req) {
		return
	}
	if !writeWorkerError(w, s.Complete(req.WorkerID, req.Token, req.JobID, req.WorkerResult)) {
		return
	}
	snap, ok := s.Status(req.JobID)
	if !ok {
		// The completion can prune this very record (MaxJobRecords);
		// reconstruct the state the accepted outcome implies.
		snap = JobSnapshot{ID: req.JobID, State: StateDone, Worker: req.WorkerID}
		switch {
		case req.Canceled:
			snap.State = StateCanceled
		case req.Error != "":
			snap.State = StateFailed
		}
	}
	writeJSON(w, http.StatusOK, snap)
}

// writeWorkerError maps lease-protocol errors onto status codes (404
// unknown job, 409 lease lost, 400 otherwise) and reports whether the
// request may proceed.
func writeWorkerError(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "unknown job")
	case errors.Is(err, ErrLeaseLost):
		// 409: the worker's claim conflicts with the coordinator's
		// state — abandon the run and lease something else.
		writeError(w, http.StatusConflict, err.Error())
	case errors.Is(err, ErrShuttingDown):
		// 503: this coordinator is going away; the restarted one owns
		// the job. Distinct from 400 so the worker knows to retry
		// later rather than treat its payload as malformed.
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
	return false
}
