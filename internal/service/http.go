package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Handler returns the service's HTTP API:
//
//	POST   /api/v1/campaigns          submit a campaign (SubmitRequest JSON)
//	GET    /api/v1/campaigns          list job snapshots
//	GET    /api/v1/campaigns/{id}     one job's status
//	DELETE /api/v1/campaigns/{id}     cancel a job
//	GET    /api/v1/campaigns/{id}/result   completed job's summary
//	GET    /api/v1/cache              score + feature cache stats
//	GET    /healthz                   liveness + job counts
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /api/v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/cache", s.handleCache)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// writeJSON encodes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, apiError{Error: msg})
}

// maxSubmitBody bounds the request body; a SubmitRequest is tiny.
const maxSubmitBody = 1 << 16

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// A body past the MaxBytesReader limit is a size problem, not a
		// syntax problem: 413, not 400.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	id, err := s.Submit(req)
	if err != nil {
		// A full pending queue is backpressure, not a bad request: 429
		// tells well-behaved tenants to retry later.
		if errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	snap, _ := s.Status(id)
	writeJSON(w, http.StatusAccepted, snap)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.Cancel(id) {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	snap, _ := s.Status(id)
	writeJSON(w, http.StatusOK, snap)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	sum, err := s.Result(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "unknown job")
	case errors.Is(err, ErrNotFinished):
		// 409: the resource exists but is not ready; poll status first.
		writeError(w, http.StatusConflict, err.Error())
	case err != nil:
		writeError(w, http.StatusGone, err.Error())
	default:
		writeJSON(w, http.StatusOK, sum)
	}
}

// cacheStatsBody is the /api/v1/cache response.
type cacheStatsBody struct {
	Scores   CacheStats `json:"scores"`
	Features CacheStats `json:"features"`
}

func (s *Service) handleCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, cacheStatsBody{
		Scores:   s.ScoreCacheStats(),
		Features: s.FeatureCacheStats(),
	})
}

// healthBody is the /healthz response.
type healthBody struct {
	Status  string           `json:"status"`
	Uptime  string           `json:"uptime"`
	Jobs    map[JobState]int `json:"jobs"`
	Targets []string         `json:"targets"`
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthBody{
		Status:  "ok",
		Uptime:  s.Uptime().Round(time.Millisecond).String(),
		Jobs:    s.sched.counts(),
		Targets: s.Targets(),
	})
}
