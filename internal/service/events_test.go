package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"impeccable/internal/obs"
)

// TestEventBusSemantics exercises the bus without a campaign: replay
// from the beginning, Last-Event-ID resume, and end-of-stream on the
// terminal event.
func TestEventBusSemantics(t *testing.T) {
	b := newEventBus(nil)
	pub := func(typ string, st JobState) {
		b.publish(JobEvent{Job: "j1", Type: typ, State: st, Time: time.Now()})
	}
	pub(evTypeState, StateQueued)
	pub(evTypeProgress, StateRunning)
	pub(evTypeState, StateDone)

	// A late subscriber replays the whole ring and the stream ends.
	sub := b.subscribe("j1", 0)
	evs, over := b.next("j1", sub)
	if len(evs) != 3 || !over {
		t.Fatalf("full replay = %d events, over=%v; want 3, true", len(evs), over)
	}
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	b.unsubscribe("j1", sub)

	// Last-Event-ID resume: a cursor after seq 2 sees only the terminal
	// event.
	sub = b.subscribe("j1", 2)
	evs, over = b.next("j1", sub)
	if len(evs) != 1 || evs[0].Seq != 3 || !over {
		t.Fatalf("resume after 2 = %+v, over=%v", evs, over)
	}
	// A cursor already past the terminal event still ends immediately.
	sub2 := b.subscribe("j1", 3)
	if evs, over := b.next("j1", sub2); len(evs) != 0 || !over {
		t.Fatalf("resume past terminal = %d events, over=%v; want 0, true", len(evs), over)
	}
	b.unsubscribe("j1", sub)
	b.unsubscribe("j1", sub2)
	if n := b.subscriberCount("j1"); n != 0 {
		t.Fatalf("subscriberCount after unsubscribe = %d", n)
	}
}

// TestEventBusRingPrune: a subscriber behind a pruned ring skips
// forward instead of blocking or erroring.
func TestEventBusRingPrune(t *testing.T) {
	b := newEventBus(nil)
	sub := b.subscribe("j1", 0)
	for i := 0; i < maxRingEvents+50; i++ {
		b.publish(JobEvent{Job: "j1", Type: evTypeProgress, State: StateRunning})
	}
	evs, over := b.next("j1", sub)
	if over {
		t.Fatal("stream ended without a terminal event")
	}
	if len(evs) != maxRingEvents {
		t.Fatalf("got %d events, want the %d retained", len(evs), maxRingEvents)
	}
	if evs[0].Seq != 51 {
		t.Fatalf("first retained seq = %d, want 51", evs[0].Seq)
	}
	b.unsubscribe("j1", sub)
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    int64
	event string
	data  JobEvent
}

// readSSE parses frames until the terminal event or EOF.
func readSSE(t *testing.T, br *bufio.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	var hasData bool
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return out
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if hasData {
				out = append(out, cur)
				if cur.data.Terminal() {
					return out
				}
			}
			cur, hasData = sseEvent{}, false
		case strings.HasPrefix(line, ":"): // keepalive comment
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseInt(line[4:], 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.id = n
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[6:]), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
			hasData = true
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
}

// TestSSEStreamFollowsJob is the acceptance test for live progress: a
// client subscribed before the campaign starts follows it from queued
// to done — terminal summary included — without ever polling /status.
func TestSSEStreamFollowsJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (small) campaign")
	}
	_, srv := newTestServer(t)

	var snap JobSnapshot
	if code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns", smallReq(), &snap); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	resp, err := http.Get(srv.URL + "/api/v1/campaigns/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q", cc)
	}

	evs := readSSE(t, bufio.NewReader(resp.Body))
	if len(evs) == 0 {
		t.Fatal("no events received")
	}
	var lastSeq int64
	for _, ev := range evs {
		if ev.id <= lastSeq {
			t.Fatalf("SSE ids not strictly increasing: %d after %d", ev.id, lastSeq)
		}
		lastSeq = ev.id
		if ev.id != ev.data.Seq {
			t.Fatalf("SSE id %d != event seq %d", ev.id, ev.data.Seq)
		}
		if ev.event != ev.data.Type {
			t.Fatalf("SSE event %q != type %q", ev.event, ev.data.Type)
		}
	}
	last := evs[len(evs)-1]
	if !last.data.Terminal() || last.data.State != StateDone {
		t.Fatalf("stream ended on %+v, want terminal done", last.data)
	}
	if last.data.Summary == nil || last.data.Summary.Funnel.Docked == 0 {
		t.Fatalf("terminal event carries no usable summary: %+v", last.data.Summary)
	}

	// A fresh subscriber to the finished job gets the retained replay
	// and an immediate end-of-stream.
	resp2, err := http.Get(srv.URL + "/api/v1/campaigns/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replay := readSSE(t, bufio.NewReader(resp2.Body))
	if len(replay) == 0 || !replay[len(replay)-1].data.Terminal() {
		t.Fatalf("replay on finished job = %d events", len(replay))
	}

	// Last-Event-ID resume skips what was already seen.
	req, _ := http.NewRequest("GET", srv.URL+"/api/v1/campaigns/"+snap.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", strconv.FormatInt(lastSeq-1, 10))
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	resumed := readSSE(t, bufio.NewReader(resp3.Body))
	if len(resumed) != 1 || resumed[0].id != lastSeq {
		t.Fatalf("resume after %d = %+v, want only seq %d", lastSeq-1, resumed, lastSeq)
	}
}

// TestSSEDisconnectFreesSubscription: a client that walks away mid-
// stream must not leave a subscription (or its gauge) behind.
func TestSSEDisconnectFreesSubscription(t *testing.T) {
	s := NewService(Options{RemoteOnly: true, CacheShards: 4})
	t.Cleanup(s.Shutdown)
	srv := newHTTPServer(t, s)

	id, err := s.Submit(smallReq()) // stays queued: no local workers
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", srv+"/api/v1/campaigns/"+id+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitFor(t, "subscription registered", func() bool {
		return s.sched.bus.subscriberCount(id) == 1
	})
	cancel()
	waitFor(t, "subscription freed after disconnect", func() bool {
		return s.sched.bus.subscriberCount(id) == 0
	})
}

// TestSSEUnknownJob404: the events route 404s like the status route.
func TestSSEUnknownJob404(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/api/v1/campaigns/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events on unknown job = %d", resp.StatusCode)
	}
}

// newHTTPServer starts an httptest server over an existing service.
func newHTTPServer(t *testing.T, s *Service) string {
	t.Helper()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}

// parseExposition indexes an exposition body by raw series line
// ("name" or `name{labels}`) → value, skipping comments.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsReflectSchedulerState is the acceptance test for the
// exposition: after one submit→complete cycle, /metrics is valid
// 0.0.4 text whose gauges and counters match what the scheduler says.
func TestMetricsReflectSchedulerState(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (small) campaign")
	}
	s, srv := newTestServer(t)

	var snap JobSnapshot
	if code := doJSON(t, "POST", srv.URL+"/api/v1/campaigns", smallReq(), &snap); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	if _, err := s.Wait(snap.ID, 5*time.Minute); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q", cc)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if err := obs.Validate(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition fails grammar check: %v", err)
	}

	vals := parseExposition(t, body)
	want := map[string]float64{
		"impeccable_jobs_submitted_total":              1,
		`impeccable_jobs_terminal_total{state="done"}`: 1,
		`impeccable_jobs{state="done"}`:                1,
		`impeccable_jobs{state="queued"}`:              0,
		`impeccable_jobs{state="running"}`:             0,
		"impeccable_queue_depth":                       0,
		"impeccable_leases_active":                     0,
		"impeccable_funnel_runs_total":                 1,
		`impeccable_http_requests_total{route="/api/v1/campaigns",method="POST",code="202"}`: 1,
	}
	for series, v := range want {
		got, ok := vals[series]
		if !ok {
			t.Errorf("series %s missing from exposition", series)
			continue
		}
		if got != v {
			t.Errorf("%s = %v, want %v", series, got, v)
		}
	}
	// At least queued → running → done was published on the bus.
	if v := vals["impeccable_events_published_total"]; v < 3 {
		t.Errorf("impeccable_events_published_total = %v, want >= 3", v)
	}
	// The campaign did real docking: cache misses and funnel seconds
	// must be nonzero somewhere.
	var misses, stageSecs float64
	for series, v := range vals {
		if strings.HasPrefix(series, `impeccable_cache_misses_total{cache="score"`) {
			misses += v
		}
		if strings.HasPrefix(series, "impeccable_funnel_stage_seconds_total{") {
			stageSecs += v
		}
	}
	if misses == 0 {
		t.Error("score-cache misses are all zero after a cold campaign")
	}
	if stageSecs == 0 {
		t.Error("funnel stage seconds are all zero after a completed campaign")
	}
	// The scrape itself carried a latency sample for its route.
	if _, ok := vals[`impeccable_http_request_seconds_count{route="/metrics"}`]; !ok {
		// The count appears only on a later scrape of this scrape; the
		// submit route must be there though.
		if _, ok := vals[`impeccable_http_request_seconds_count{route="/api/v1/campaigns"}`]; !ok {
			t.Error("no latency histogram for the submit route")
		}
	}
}
