package service

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"impeccable/internal/blob"
)

// JobState is the lifecycle state of a submitted campaign.
type JobState string

const (
	StateQueued JobState = "queued"
	// StateLeased marks a job handed to a remote worker under a TTL
	// lease; a worker that stops heartbeating loses the lease and the
	// job re-enters the queue under its original ID.
	StateLeased   JobState = "leased"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// countedStates enumerates every state once, indexing the scheduler's
// incrementally maintained per-state counters.
var countedStates = [...]JobState{
	StateQueued, StateLeased, StateRunning, StateDone, StateFailed, StateCanceled,
}

const numStates = len(countedStates)

// stateIdx maps a state to its counter slot.
func stateIdx(st JobState) int {
	for i, s := range countedStates {
		if s == st {
			return i
		}
	}
	return numStates - 1
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// job is the scheduler's record of one submitted campaign.
type job struct {
	id string
	// tenant is the normalized owner (never empty: legacy submissions
	// land on DefaultTenant). Immutable after submit/restore.
	tenant string
	req    SubmitRequest

	mu        sync.Mutex
	state     JobState
	stage     string  // last reported campaign stage
	progress  float64 // approximate completed fraction [0,1]
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *jobResult
	// summaryRef points at the job's spilled ResultSummary in the blob
	// store when replay restored the job from a ref instead of an
	// inline summary; Service.Result resolves and caches it lazily.
	summaryRef *blob.Ref
	cancel     chan struct{}
	cancelOnce sync.Once
	// drainCanceled marks a job interrupted by a graceful drain rather
	// than by user intent: its terminal state is not journaled, so a
	// reopened service re-enqueues it instead of serving "canceled".
	drainCanceled bool
	// userCanceled marks an explicit cancel request. A drain that
	// overlaps one must not suppress its terminal journal event — the
	// user's cancel survives restarts.
	userCanceled bool
	// queuedAt is when the job last entered its tenant's pending queue
	// (submit, lease-expiry requeue, or preemption). Guarded by
	// scheduler.mu, not j.mu: every writer and the preemption arbiter
	// (which reads it to decide whether the queue head is starved)
	// already hold the scheduler lock.
	queuedAt time.Time

	// Lease bookkeeping: which remote worker holds the job, until when,
	// and the TTL each heartbeat extends the lease by. leaseWorker is
	// kept after completion so listings show which worker ran the job.
	// leaseToken is the per-lease secret the holder must present on
	// heartbeat/complete: worker IDs are published in job listings, so
	// they alone must not authenticate a completion (a forged complete
	// could poison the shared score cache).
	leaseWorker string
	leaseToken  string
	leaseExpiry time.Time
	leaseTTL    time.Duration
	// lastBeat is when the lease was granted or last heartbeated —
	// the liveness signal surfaced as heartbeat_age_seconds in status
	// responses so an operator can spot a worker going quiet before the
	// TTL expires it.
	lastBeat time.Time
}

// requestCancel closes the job's cancel channel exactly once.
func (j *job) requestCancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
}

// snapshotLocked builds a JobSnapshot; callers hold j.mu.
func (j *job) snapshotLocked() JobSnapshot {
	s := JobSnapshot{
		ID:        j.id,
		Tenant:    j.tenant,
		Priority:  j.req.Priority,
		Target:    j.req.Target,
		State:     j.state,
		Stage:     j.stage,
		Progress:  j.progress,
		Error:     j.err,
		Submitted: j.submitted,
		Worker:    j.leaseWorker,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if j.state == StateLeased {
		t := j.leaseExpiry
		s.LeaseExpires = &t
		if !j.lastBeat.IsZero() {
			age := time.Since(j.lastBeat).Seconds()
			if age < 0 {
				age = 0
			}
			s.HeartbeatAge = &age
		}
	}
	return s
}

// JobSnapshot is the externally visible status of a job.
type JobSnapshot struct {
	ID string `json:"id"`
	// Tenant is the submission's owner; "default" for legacy
	// tenant-less submissions.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the submission's priority class (0 = normal); a
	// starved tenant whose queue head carries Priority > 0 may preempt
	// an over-share tenant's leased job.
	Priority  int        `json:"priority,omitempty"`
	Target    string     `json:"target"`
	State     JobState   `json:"state"`
	Stage     string     `json:"stage,omitempty"`
	Progress  float64    `json:"progress"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted_at"`
	Started   *time.Time `json:"started_at,omitempty"`
	Finished  *time.Time `json:"finished_at,omitempty"`
	// Worker is the remote worker that holds (or last held) the job's
	// lease; empty for jobs executed in-process.
	Worker string `json:"worker,omitempty"`
	// Lease liveness, present only while the job is leased: when the
	// lease lapses unless renewed, and how many seconds ago the holder
	// was last heard from (grant or heartbeat).
	LeaseExpires *time.Time `json:"lease_expires_at,omitempty"`
	HeartbeatAge *float64   `json:"heartbeat_age_seconds,omitempty"`
}

// Duration reports how long the job ran. Jobs that never left the
// queue — canceled while queued, so Finished is set while Started is
// nil — report zero; the result is never negative.
func (s JobSnapshot) Duration() time.Duration {
	if s.Started == nil || s.Finished == nil {
		return 0
	}
	if d := s.Finished.Sub(*s.Started); d > 0 {
		return d
	}
	return 0
}

// ErrQueueFull is returned by Submit when Options.MaxQueued pending
// jobs are already waiting (HTTP surfaces it as 429).
var ErrQueueFull = errors.New("service: submission queue is full")

// ErrShuttingDown is returned by Submit once a drain has begun (HTTP
// surfaces it as 503, matching the draining health probe).
var ErrShuttingDown = errors.New("service: shutting down")

// ErrLeaseLost is returned to a remote worker whose lease on a job is
// no longer valid: it expired and the job was re-enqueued (possibly
// re-leased to another worker), or the job was canceled. The worker
// must abandon the run; the coordinator owns the job again.
var ErrLeaseLost = errors.New("service: lease lost")

// Lease TTL bounds. A worker-requested TTL is clamped to
// [minLeaseTTL, maxLeaseTTL]; the lower clamp relaxes to the
// scheduler's configured default when that is smaller (fast tests).
const (
	defaultLeaseTTL = 30 * time.Second
	minLeaseTTL     = time.Second
	maxLeaseTTL     = 5 * time.Minute
)

// durSamples is the window of recently finished runs feeding the
// Retry-After backpressure hint.
const durSamples = 32

// schedConfig bundles the scheduler's construction parameters.
type schedConfig struct {
	workers     int
	remoteOnly  bool          // no in-process workers: jobs run only via leases
	leaseTTL    time.Duration // default remote lease TTL; 0 = defaultLeaseTTL
	maxQueued   int           // per-tenant pending bound for tenants without their own; 0 = unbounded
	maxRecords  int           // retained terminal jobs; 0 = unbounded
	// limits resolves a tenant's configured limits; nil means every
	// tenant gets the defaults (weight 1, maxQueued above).
	limits func(tenant string) TenantLimits
	// preemptAfter arms preemption: a starved tenant whose queue head
	// carries Priority > 0 and has waited this long may revoke an
	// over-share tenant's youngest lease. 0 disables preemption.
	preemptAfter time.Duration
	record       func(journalEvent) error   // journal appender; nil = in-memory only
	recordBatch  func([]journalEvent) error // many events, one fsync; nil = record per event
	onTerminal   func()                     // runs after each job's terminal event
	met          *metrics                   // instrument sink; nil = private registry
	bus          *eventBus                  // lifecycle event fan-out; nil = private bus
}

// scheduler runs queued jobs over a bounded worker pool and hands jobs
// to remote workers under TTL leases. Pending work lives in per-tenant
// queues arbitrated by deficit round-robin, so one tenant's flood
// cannot starve another's trickle.
type scheduler struct {
	run          func(*job) // executes one job's campaign
	workerSlots  int        // in-process worker goroutines
	leaseTTL     time.Duration
	maxQueued    int // per-tenant default pending bound
	maxRecords   int
	limits       func(tenant string) TenantLimits
	preemptAfter time.Duration
	record       func(journalEvent) error
	recordBatch  func([]journalEvent) error
	onTerminal   func()
	met          *metrics
	bus          *eventBus

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for listing
	// tenants holds each tenant's pending queue, DRR deficit and
	// in-flight tally; ring fixes the arbiter's visit order (tenants in
	// first-seen order — map iteration would be nondeterministic) and
	// ringCur is the tenant the next dequeue considers first.
	tenants  map[string]*tenantQueue
	ring     []string
	ringCur  int
	pendingN int             // total pending jobs across all tenants
	leases   map[string]*job // jobs currently out on a remote lease
	nextID   int
	closed   bool
	draining bool // drain in progress: pop hands out nothing

	// stateN maintains per-state job tallies incrementally so health
	// probes are O(states), not O(jobs × mutex). Updated at every
	// transition by the goroutine holding the job's mutex.
	stateN [numStates]atomic.Int64

	// durRing holds the durations of recently finished runs (local and
	// remote), feeding retryAfterSeconds.
	durRing [durSamples]time.Duration
	durIdx  int
	durN    int

	wake chan struct{} // pokes idle workers; buffered
	quit chan struct{}
	wg   sync.WaitGroup
}

// newScheduler starts workers goroutines draining the queue plus the
// lease-expiry watchdog.
func newScheduler(cfg schedConfig, run func(*job)) *scheduler {
	workers := cfg.workers
	if workers < 1 {
		workers = 1
	}
	if cfg.remoteOnly {
		workers = 0
	}
	ttl := cfg.leaseTTL
	if ttl <= 0 {
		ttl = defaultLeaseTTL
	}
	// Tests construct schedulers without a Service; give them private
	// instruments so the counting paths stay unconditional.
	met := cfg.met
	if met == nil {
		met = newMetrics()
	}
	bus := cfg.bus
	if bus == nil {
		bus = newEventBus(met)
	}
	s := &scheduler{
		run:          run,
		workerSlots:  workers,
		leaseTTL:     ttl,
		maxQueued:    cfg.maxQueued,
		maxRecords:   cfg.maxRecords,
		limits:       cfg.limits,
		preemptAfter: cfg.preemptAfter,
		record:       cfg.record,
		recordBatch:  cfg.recordBatch,
		onTerminal:   cfg.onTerminal,
		met:          met,
		bus:          bus,
		jobs:         make(map[string]*job),
		tenants:      make(map[string]*tenantQueue),
		leases:       make(map[string]*job),
		wake:         make(chan struct{}, workers+1),
		quit:         make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.leaseLoop()
	return s
}

// countMove shifts one job between per-state tallies.
func (s *scheduler) countMove(from, to JobState) {
	s.stateN[stateIdx(from)].Add(-1)
	s.stateN[stateIdx(to)].Add(1)
}

// publishLocked emits one event for the job's current state onto the
// bus. Callers hold j.mu; the bus lock nests innermost and never
// blocks, so publishing from inside scheduler transitions is safe.
func (s *scheduler) publishLocked(j *job, typ string, now time.Time) {
	ev := JobEvent{
		Job:      j.id,
		Tenant:   j.tenant,
		Type:     typ,
		State:    j.state,
		Stage:    j.stage,
		Progress: j.progress,
		Worker:   j.leaseWorker,
		Error:    j.err,
		Time:     now,
	}
	if typ == evTypeState && j.state == StateDone && j.result != nil {
		sum := j.result.summary
		ev.Summary = &sum
	}
	s.bus.publish(ev)
}

// markTerminal counts one terminal transition on the exposition.
func (s *scheduler) markTerminal(st JobState) {
	s.met.jobsTerminal.With(string(st)).Inc()
}

// stateCounts snapshots the per-state tallies for the /metrics mirror.
func (s *scheduler) stateCounts() [numStates]int64 {
	var out [numStates]int64
	for i := range out {
		out[i] = s.stateN[i].Load()
	}
	return out
}

// tq returns (creating on first use) a tenant's queue state; callers
// hold s.mu. New tenants join the back of the DRR ring with their
// configured (or default) weight and bounds.
func (s *scheduler) tq(tenant string) *tenantQueue {
	if q, ok := s.tenants[tenant]; ok {
		return q
	}
	lim := s.limitsFor(tenant)
	q := &tenantQueue{
		name:       tenant,
		weight:     lim.Weight,
		maxQueued:  lim.MaxQueued,
		maxRunning: lim.MaxRunning,
	}
	s.tenants[tenant] = q
	s.ring = append(s.ring, tenant)
	return q
}

// limitsFor resolves a tenant's effective limits against the
// scheduler-wide defaults (weight 1, the shared MaxQueued bound).
func (s *scheduler) limitsFor(tenant string) TenantLimits {
	d := TenantLimits{Weight: 1, MaxQueued: s.maxQueued}
	if s.limits != nil {
		return s.limits(tenant).withDefaults(d)
	}
	return d
}

// queueDepth reports the pending-queue length across all tenants.
func (s *scheduler) queueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingN
}

// tenantQueueDepths snapshots each known tenant's pending depth — the
// scrape-time source of the per-tenant queue-depth gauge.
func (s *scheduler) tenantQueueDepths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.ring))
	for _, name := range s.ring {
		out[name] = len(s.tenants[name].pending)
	}
	return out
}

// activeLeases reports the jobs currently out on a remote lease.
func (s *scheduler) activeLeases() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.leases)
}

// submit enqueues a request and returns the new job's ID. The
// submitted event is journaled (and fsynced) before the ID is handed
// back, so an acknowledged submission survives a crash.
func (s *scheduler) submit(req SubmitRequest, now time.Time) (string, error) {
	return s.submitTraced(req, now, "")
}

// submitTraced is submit carrying the originating request ID into the
// journal, so an operator can walk from an access-log line to the
// durable record of what it caused.
func (s *scheduler) submitTraced(req SubmitRequest, now time.Time, rid string) (string, error) {
	tenant := normalizeTenant(req.Tenant)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", ErrShuttingDown
	}
	tq := s.tq(tenant)
	if tq.maxQueued > 0 && len(tq.pending) >= tq.maxQueued {
		s.met.tenantRejections.With(tenant, rejectQueueFull).Inc()
		s.mu.Unlock()
		return "", fmt.Errorf("%w (tenant %q has %d jobs pending, max %d)",
			ErrQueueFull, tenant, tq.maxQueued, tq.maxQueued)
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.nextID),
		tenant:    tenant,
		req:       req,
		state:     StateQueued,
		submitted: now,
		queuedAt:  now,
		cancel:    make(chan struct{}),
	}
	if s.record != nil {
		if err := s.record(journalEvent{Kind: evSubmitted, Job: j.id, Time: now, Req: &j.req, RID: rid, Tenant: tenant, Priority: req.Priority}); err != nil {
			s.nextID--
			s.mu.Unlock()
			return "", err
		}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	tq.push(j)
	s.pendingN++
	s.stateN[stateIdx(StateQueued)].Add(1)
	s.met.jobsSubmitted.Inc()
	s.met.tenantAdmissions.With(tenant).Inc()
	s.publishLocked(j, evTypeState, now)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return j.id, nil
}

// restore inserts journal-replayed jobs: terminal ones become
// servable records, non-terminal ones re-enter the pending queue under
// their original IDs. Jobs that were leased to a remote worker at
// crash time come back leased with a fresh grace TTL — a surviving
// worker re-attaches via its next heartbeat or complete, and a dead
// one's lease expires into a requeue. nextID advances past the highest
// replayed job number so new submissions never collide.
func (s *scheduler) restore(jobs []*job, maxID int) {
	requeued := 0
	now := time.Now()
	s.mu.Lock()
	for _, j := range jobs {
		if _, dup := s.jobs[j.id]; dup {
			continue
		}
		if j.tenant == "" {
			// Pre-tenancy journal events replay without a tenant; they
			// belong to the default tenant, same as legacy live submits.
			j.tenant = normalizeTenant(j.req.Tenant)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.stateN[stateIdx(j.state)].Add(1)
		switch {
		case j.state == StateLeased:
			j.leaseTTL = s.leaseTTL
			j.leaseExpiry = now.Add(s.leaseTTL)
			j.lastBeat = now
			s.leases[j.id] = j
			s.tq(j.tenant).inflight++
		case !j.state.Terminal():
			j.queuedAt = now
			s.tq(j.tenant).push(j)
			s.pendingN++
			requeued++
		}
		// Seed the restored job's event stream with its current state so
		// an SSE subscriber on a replayed job gets an immediate answer
		// (including the terminal summary) instead of silence.
		s.publishLocked(j, evTypeState, now)
	}
	if maxID > s.nextID {
		s.nextID = maxID
	}
	s.mu.Unlock()
	for i := 0; i < requeued; i++ {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// worker drains the pending queue until the scheduler shuts down.
func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		j := s.pop()
		if j == nil {
			select {
			case <-s.wake:
				continue
			case <-s.quit:
				return
			}
		}
		if s.record != nil {
			j.mu.Lock()
			started := j.started
			j.mu.Unlock()
			_ = s.record(journalEvent{Kind: evStarted, Job: j.id, Time: started})
		}
		s.execute(j)
	}
}

// dequeueLocked is the deficit-round-robin arbiter both execution
// paths (in-process pop, remote lease) pull through; callers hold
// s.mu. Each tenant is visited in ring order; an eligible tenant with
// no credit is granted its weight in job-slots and serves its queue
// head, one job per call, until the credit runs out — so over
// contended slots tenants are served proportionally to their weights,
// and a tenant at its running-concurrency cap (or with an empty queue)
// is skipped with its credit reset, never banking bandwidth it could
// not use. Returns nil when no tenant can hand out work.
func (s *scheduler) dequeueLocked() *job {
	n := len(s.ring)
	for scanned := 0; scanned < n; scanned++ {
		tq := s.tenants[s.ring[s.ringCur]]
		if !tq.eligible() {
			tq.deficit = 0
			s.ringCur = (s.ringCur + 1) % n
			continue
		}
		if tq.deficit < 1 {
			tq.deficit += tq.weight
		}
		j := tq.pending[0]
		tq.pending = tq.pending[1:]
		s.pendingN--
		tq.deficit--
		if len(tq.pending) == 0 {
			tq.deficit = 0 // no banking credit across idle periods
		}
		if tq.deficit < 1 || !tq.eligible() {
			s.ringCur = (s.ringCur + 1) % n
		}
		return j
	}
	return nil
}

// pop dequeues the next runnable job via the DRR arbiter, skipping
// jobs canceled while queued (a rare race — cancels eagerly leave the
// queue, but may overlap a concurrent dequeue). Returns nil when no
// tenant has runnable work or a drain is under way (a draining
// scheduler stops popping so queued work stays journaled as pending
// and resumes after restart).
func (s *scheduler) pop() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.draining {
		j := s.dequeueLocked()
		if j == nil {
			return nil
		}
		j.mu.Lock()
		runnable := j.state == StateQueued
		if runnable {
			s.countMove(StateQueued, StateRunning)
			j.state = StateRunning
			j.started = time.Now()
			s.publishLocked(j, evTypeState, j.started)
		}
		j.mu.Unlock()
		if runnable {
			s.tenants[j.tenant].inflight++
			return j
		}
	}
	return nil
}

// execute runs one job, records its terminal state and journals it —
// unless a drain interrupted the job, in which case the journal keeps
// showing it in flight so a reopened service reruns it.
func (s *scheduler) execute(j *job) {
	s.run(j)
	j.mu.Lock()
	if !j.state.Terminal() {
		j.state = StateDone //impeccable:unjournaled execute journals after the run so drain interruptions rerun instead of acking
	}
	// The run function sets the terminal state directly; diff the
	// counters here so they track whatever it chose.
	s.countMove(StateRunning, j.state)
	j.finished = time.Now()
	var dur time.Duration
	if !j.started.IsZero() && j.state != StateCanceled {
		dur = j.finished.Sub(j.started)
	}
	ev := journalEvent{Job: j.id, Time: j.finished}
	switch j.state {
	case StateDone:
		ev.Kind = evDone
		if j.result != nil {
			sum := j.result.summary
			ev.Summary = &sum
		}
	case StateFailed:
		ev.Kind = evFailed
		ev.Error = j.err
	case StateCanceled:
		ev.Kind = evCanceled
	}
	// Suppress journaling only when the drain actually interrupted the
	// job: one that raced to normal completion still records its
	// result, and one the user explicitly canceled records the cancel
	// (user intent survives restarts; drain interruptions resume).
	suppress := j.drainCanceled && !j.userCanceled && j.state == StateCanceled
	s.markTerminal(j.state)
	s.publishLocked(j, evTypeState, j.finished)
	j.mu.Unlock()
	s.mu.Lock()
	if tq := s.tenants[j.tenant]; tq != nil {
		tq.inflight--
	}
	s.mu.Unlock()
	if dur > 0 {
		s.recordDuration(dur)
	}
	if !suppress && s.record != nil {
		_ = s.record(ev)
	}
	if !suppress && s.onTerminal != nil {
		s.onTerminal()
	}
	s.pruneTerminal()
}

// lease hands the next runnable job to a remote worker under a TTL
// lease, journaling the handoff before the grant is acknowledged. A
// nil job means no work is available (empty queue, drain, or
// shutdown). A worker-requested ttl of 0 takes the scheduler default;
// explicit values are clamped to [minLeaseTTL, maxLeaseTTL], with the
// lower clamp relaxed to the configured default when that is smaller.
func (s *scheduler) lease(workerID string, ttl time.Duration, now time.Time) (*job, error) {
	if workerID == "" {
		return nil, fmt.Errorf("service: lease requires a worker id")
	}
	if ttl <= 0 {
		ttl = s.leaseTTL
	} else {
		lo := minLeaseTTL
		if s.leaseTTL < lo {
			lo = s.leaseTTL
		}
		if ttl < lo {
			ttl = lo
		}
		if ttl > maxLeaseTTL {
			ttl = maxLeaseTTL
		}
	}
	// Mint before taking s.mu: the random read must not stretch the
	// critical section idle workers poll through.
	token, err := newLeaseToken()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return nil, nil
	}
	var leased *job
	for leased == nil {
		j := s.dequeueLocked()
		if j == nil {
			return nil, nil
		}
		j.mu.Lock()
		if j.state == StateQueued {
			s.countMove(StateQueued, StateLeased)
			j.state = StateLeased
			j.leaseWorker = workerID
			j.leaseToken = token
			j.leaseTTL = ttl
			j.leaseExpiry = now.Add(ttl)
			j.lastBeat = now
			j.started = now
			leased = j
		}
		j.mu.Unlock()
	}
	s.leases[leased.id] = leased
	s.tenants[leased.tenant].inflight++
	if s.record != nil {
		if err := s.record(journalEvent{Kind: evLeased, Job: leased.id, Time: now, Worker: workerID, Token: token}); err != nil {
			// The grant was never acknowledged: put the job back where
			// it was.
			leased.mu.Lock()
			s.countMove(StateLeased, StateQueued)
			leased.state = StateQueued
			leased.leaseWorker = ""
			leased.leaseToken = ""
			leased.started = time.Time{}
			leased.lastBeat = time.Time{}
			leased.queuedAt = now
			leased.mu.Unlock()
			delete(s.leases, leased.id)
			tq := s.tenants[leased.tenant]
			tq.inflight--
			tq.pushFront(leased)
			s.pendingN++
			s.met.leaseRequeues.Inc()
			return nil, err
		}
	}
	s.met.leaseGrants.Inc()
	leased.mu.Lock()
	s.publishLocked(leased, evTypeState, now)
	leased.mu.Unlock()
	return leased, nil
}

// newLeaseToken mints the per-lease secret a worker must present on
// heartbeat/complete. Worker IDs are published in job listings, so
// possession of the ID alone must not be able to complete (and thereby
// poison the shared caches of) someone else's lease.
func newLeaseToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: minting lease token: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// heartbeat extends a worker's lease and records the remotely observed
// stage/progress. ErrLeaseLost tells the worker to abandon the run.
func (s *scheduler) heartbeat(workerID, token, jobID, stage string, progress float64, now time.Time) (time.Time, error) {
	j, ok := s.get(jobID)
	if !ok {
		return time.Time{}, ErrUnknownJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateLeased || j.leaseWorker != workerID || j.leaseToken != token {
		return time.Time{}, fmt.Errorf("%w: job %s is %s", ErrLeaseLost, jobID, j.state)
	}
	j.leaseExpiry = now.Add(j.leaseTTL)
	j.lastBeat = now
	if stage != "" {
		j.stage = stage
	}
	if progress > j.progress {
		j.progress = progress
	}
	s.met.leaseHeartbeats.Inc()
	s.publishLocked(j, evTypeProgress, now)
	return j.leaseExpiry, nil
}

// completeRemote finalizes a leased job with the outcome a remote
// worker posted back, journaling the terminal event. A worker whose
// lease was lost in the meantime gets ErrLeaseLost and must discard
// the result — the job is owned by the queue (or another worker)
// again.
func (s *scheduler) completeRemote(workerID, token, jobID string, state JobState, errMsg string, sum *ResultSummary, now time.Time) error {
	if !state.Terminal() {
		return fmt.Errorf("service: complete with non-terminal state %q", state)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// The sentinel maps to 503 at the HTTP layer, telling the worker
		// "this coordinator is going away, the restarted one owns the
		// job" — not 400, which would read as a malformed request.
		return ErrShuttingDown
	}
	s.mu.Unlock()
	j, ok := s.get(jobID)
	if !ok {
		return ErrUnknownJob
	}
	j.mu.Lock()
	if j.state != StateLeased || j.leaseWorker != workerID || j.leaseToken != token {
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("%w: job %s is %s", ErrLeaseLost, jobID, st)
	}
	ev := journalEvent{Job: jobID, Time: now, Worker: workerID}
	switch state {
	case StateDone:
		if sum != nil {
			ev.Summary = sum
		}
		ev.Kind = evDone
	case StateFailed:
		ev.Kind = evFailed
		ev.Error = errMsg
	case StateCanceled:
		ev.Kind = evCanceled
	}
	// Journal before applying, while still holding j.mu: the 200 this
	// acks promises the outcome survives a restart, so a failed append
	// (journal closed by a racing Shutdown) must refuse the complete —
	// the worker retries against the restarted coordinator, which still
	// shows the job leased. Acking first and journaling best-effort
	// would let the result evaporate across the restart.
	if s.record != nil {
		if err := s.record(ev); err != nil {
			j.mu.Unlock()
			return ErrShuttingDown
		}
	}
	s.countMove(StateLeased, state)
	j.state = state
	j.finished = now
	switch state {
	case StateDone:
		j.progress = 1
		if sum != nil {
			j.result = &jobResult{summary: *sum}
		}
	case StateFailed:
		j.err = errMsg
	}
	var dur time.Duration
	if !j.started.IsZero() && state != StateCanceled {
		dur = now.Sub(j.started)
	}
	s.markTerminal(state)
	s.publishLocked(j, evTypeState, now)
	j.mu.Unlock()
	s.mu.Lock()
	delete(s.leases, jobID)
	if tq := s.tenants[j.tenant]; tq != nil {
		tq.inflight--
	}
	s.mu.Unlock()
	if dur > 0 {
		s.recordDuration(dur)
	}
	// No onTerminal here: Service.Complete checkpoints AFTER merging
	// the worker's cache deltas — a checkpoint now would both exclude
	// this job's own docking labels and double the full-cache fsync.
	s.pruneTerminal()
	return nil
}

// leaseLoop is the expiry watchdog: leases whose worker stopped
// heartbeating are revoked and their jobs re-enqueued.
func (s *scheduler) leaseLoop() {
	defer s.wg.Done()
	tick := s.leaseTTL / 4
	if tick < 25*time.Millisecond {
		tick = 25 * time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			now := time.Now()
			s.expireLeases(now)
			s.maybePreempt(now)
		case <-s.quit:
			return
		}
	}
}

// expireLeases re-enqueues every leased job whose lease has lapsed, at
// the front of the queue (it was submitted before anything currently
// pending) and under its original ID — Seed and LibOffset ride along
// in the retained SubmitRequest, so the rerun is byte-identical. The
// requeue is journaled so a coordinator restart does not resurrect the
// dead lease.
func (s *scheduler) expireLeases(now time.Time) {
	s.mu.Lock()
	if len(s.leases) == 0 || s.draining || s.closed {
		s.mu.Unlock()
		return
	}
	var expired []*job
	for _, j := range s.leases {
		j.mu.Lock()
		if j.state == StateLeased && now.After(j.leaseExpiry) {
			s.countMove(StateLeased, StateQueued)
			j.state = StateQueued
			j.leaseWorker = ""
			j.leaseToken = ""
			j.started = time.Time{}
			j.lastBeat = time.Time{}
			j.stage = ""
			j.progress = 0
			expired = append(expired, j)
			s.publishLocked(j, evTypeState, now)
		}
		j.mu.Unlock()
	}
	// s.leases is a map, so simultaneously expired jobs (common after a
	// restart re-arms every restored lease with the same TTL) arrive in
	// random order; sort by job number so each tenant's requeue front
	// stays in submission order.
	sort.Slice(expired, func(i, k int) bool { return jobIDAfter(expired[k].id, expired[i].id) })
	// pushFront reverses per tenant, so walk back-to-front: the lowest
	// job number ends up at its tenant's queue head.
	for i := len(expired) - 1; i >= 0; i-- {
		j := expired[i]
		j.queuedAt = now
		tq := s.tq(j.tenant)
		tq.pushFront(j)
		tq.inflight--
		s.pendingN++
	}
	var evs []journalEvent
	for _, j := range expired {
		delete(s.leases, j.id)
		evs = append(evs, journalEvent{Kind: evRequeued, Job: j.id, Time: now})
	}
	// One batched write+fsync for the whole sweep: a mass expiry (every
	// restored lease lapsing on the same tick) must not hold s.mu for
	// one fsync per dead worker.
	if s.recordBatch != nil {
		_ = s.recordBatch(evs)
	} else if s.record != nil {
		for _, ev := range evs {
			_ = s.record(ev)
		}
	}
	s.met.leaseExpiries.Add(float64(len(expired)))
	s.met.leaseRequeues.Add(float64(len(expired)))
	s.mu.Unlock()
	for range expired {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// maybePreempt is the preemption arbiter, run on the lease watchdog's
// tick: when a tenant is starved — its queue head carries Priority > 0,
// has waited past preemptAfter, and the tenant's in-flight work is
// below its weighted fair share — the most over-share tenant's
// youngest leased job is revoked and requeued at the front of its
// owner's queue. Revocation reuses the lease-expiry machinery (the
// evicted worker's next heartbeat comes back ErrLeaseLost, the requeue
// is journaled, Seed and LibOffset ride along in the retained
// request), so the eventual rerun is byte-identical to an
// uninterrupted run. Only leased jobs are preemptible: an in-process
// campaign cannot be revoked mid-run without losing its slot's work.
func (s *scheduler) maybePreempt(now time.Time) {
	if s.preemptAfter <= 0 {
		return
	}
	s.mu.Lock()
	if s.draining || s.closed || len(s.leases) == 0 || s.pendingN == 0 {
		s.mu.Unlock()
		return
	}
	slots := s.workerSlots + len(s.leases)
	// Fair shares are computed over tenants with demand (pending or
	// in-flight work); idle tenants do not dilute anyone's share.
	totalW := 0
	for _, name := range s.ring {
		tq := s.tenants[name]
		if len(tq.pending) > 0 || tq.inflight > 0 {
			totalW += tq.weight
		}
	}
	if totalW == 0 {
		s.mu.Unlock()
		return
	}
	var starved *tenantQueue
	starvedIdx := -1
	for i, name := range s.ring {
		tq := s.tenants[name]
		if len(tq.pending) == 0 {
			continue
		}
		head := tq.pending[0]
		if head.req.Priority <= 0 || now.Sub(head.queuedAt) < s.preemptAfter {
			continue
		}
		if tq.maxRunning > 0 && tq.inflight >= tq.maxRunning {
			continue // its own concurrency cap, not another tenant, is the bottleneck
		}
		if tq.inflight*totalW >= slots*tq.weight {
			continue // already at or above fair share
		}
		if starved == nil || head.req.Priority > starved.pending[0].req.Priority {
			starved, starvedIdx = tq, i
		}
	}
	if starved == nil {
		s.mu.Unlock()
		return
	}
	// Victim: the tenant furthest above its weighted fair share that
	// actually holds a lease. Ring order keeps tie-breaking stable.
	var victim *tenantQueue
	bestOver := 0
	for _, name := range s.ring {
		tq := s.tenants[name]
		if tq == starved || tq.inflight == 0 {
			continue
		}
		over := tq.inflight*totalW - slots*tq.weight
		if over <= 0 || (victim != nil && over <= bestOver) {
			continue
		}
		for _, l := range s.leases {
			if l.tenant == tq.name {
				victim, bestOver = tq, over
				break
			}
		}
	}
	if victim == nil {
		s.mu.Unlock()
		return
	}
	// The youngest lease loses: it has the least progress to discard.
	var prey *job
	var preyStart time.Time
	for _, l := range s.leases {
		if l.tenant != victim.name {
			continue
		}
		l.mu.Lock()
		st, leased := l.started, l.state == StateLeased
		l.mu.Unlock()
		if !leased {
			continue
		}
		if prey == nil || st.After(preyStart) ||
			(st.Equal(preyStart) && jobIDAfter(l.id, prey.id)) {
			prey, preyStart = l, st
		}
	}
	if prey == nil {
		s.mu.Unlock()
		return
	}
	prey.mu.Lock()
	if prey.state != StateLeased { // raced a completion; try again next tick
		prey.mu.Unlock()
		s.mu.Unlock()
		return
	}
	s.countMove(StateLeased, StateQueued)
	prey.state = StateQueued
	prey.leaseWorker = ""
	prey.leaseToken = ""
	prey.started = time.Time{}
	prey.lastBeat = time.Time{}
	prey.stage = ""
	prey.progress = 0
	s.publishLocked(prey, evTypeState, now)
	prey.mu.Unlock()
	prey.queuedAt = now
	delete(s.leases, prey.id)
	victim.inflight--
	victim.pushFront(prey)
	s.pendingN++
	// Point the arbiter at the starved tenant with enough credit for
	// one grab, so the freed slot goes to the job that earned it.
	s.ringCur = starvedIdx
	if starved.deficit < 1 {
		starved.deficit = 1
	}
	s.met.tenantPreemptions.With(victim.name).Inc()
	s.met.leaseRequeues.Inc()
	if s.record != nil {
		_ = s.record(journalEvent{Kind: evRequeued, Job: prey.id, Time: now})
	}
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// recordDuration feeds one finished run into the Retry-After window.
func (s *scheduler) recordDuration(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.durRing[s.durIdx] = d
	s.durIdx = (s.durIdx + 1) % durSamples
	if s.durN < durSamples {
		s.durN++
	}
	s.mu.Unlock()
}

// retryAfterSeconds derives the global 429 Retry-After hint from the
// current backlog: total queue depth × recent mean job duration,
// spread over the available execution slots (in-process workers plus
// active remote leases), clamped to [1s, 60s]. With no finished runs
// yet the mean defaults to 5s.
func (s *scheduler) retryAfterSeconds() int {
	return s.retryAfterSecondsFor("")
}

// retryAfterSecondsFor is the tenant-derived Retry-After: the named
// tenant's own backlog against its weighted share of the execution
// slots, so a rejected flood tenant is told to wait for its queue, not
// everyone's. The empty tenant is the global estimate (health probe,
// Retry-After gauge).
func (s *scheduler) retryAfterSecondsFor(tenant string) int {
	s.mu.Lock()
	depth := s.pendingN
	slotShare := float64(s.workerSlots + len(s.leases))
	if tenant != "" {
		tq := s.tenants[tenant]
		if tq == nil {
			depth = 0
		} else {
			depth = len(tq.pending)
			totalW := 0
			for _, name := range s.ring {
				q := s.tenants[name]
				if len(q.pending) > 0 || q.inflight > 0 {
					totalW += q.weight
				}
			}
			if totalW > tq.weight {
				slotShare = slotShare * float64(tq.weight) / float64(totalW)
			}
		}
	}
	var sum time.Duration
	for i := 0; i < s.durN; i++ {
		sum += s.durRing[i]
	}
	n := s.durN
	s.mu.Unlock()
	mean := 5 * time.Second
	if n > 0 {
		mean = sum / time.Duration(n)
	}
	if slotShare < 1 {
		slotShare = 1
	}
	wait := time.Duration(float64(depth) * float64(mean) / slotShare)
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// get returns the job by ID.
func (s *scheduler) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// cancelJob cancels a queued or running job. Canceling a terminal job is
// a no-op; unknown IDs return false.
func (s *scheduler) cancelJob(id string) (JobSnapshot, error) {
	return s.cancelJobTraced(id, "")
}

// cancelJobTraced is cancelJob carrying the originating request ID
// into the journal.
func (s *scheduler) cancelJobTraced(id, rid string) (JobSnapshot, error) {
	// After shutdown the journal is closed: a cancel acknowledged now
	// could not be recorded, and the restarted coordinator would revive
	// the job — an acked-then-lost cancel. Refuse instead (HTTP 503);
	// the tenant retries against the next instance. The in-flight
	// window exists because the listener drains after the service.
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return JobSnapshot{}, ErrShuttingDown
	}
	j, ok := s.get(id)
	if !ok {
		return JobSnapshot{}, ErrUnknownJob
	}
	terminal := false
	unqueue := false
	unlease := false
	j.mu.Lock()
	switch j.state {
	case StateQueued, StateLeased:
		// Queued: never started, mark terminal immediately; pop() will
		// skip it. Leased: the remote worker cannot be signaled
		// directly — mark terminal now and let its next heartbeat or
		// complete come back ErrLeaseLost, at which point it abandons
		// the run. Either way, journal BEFORE applying, still under
		// j.mu: the 200 this acks promises the cancel survives a
		// restart, so a failed append (journal closed by a racing
		// Shutdown) must refuse the cancel rather than ack it and let
		// the restarted coordinator revive the job.
		from := j.state
		now := time.Now()
		if s.record != nil {
			if err := s.record(journalEvent{Kind: evCanceled, Job: j.id, Time: now, RID: rid}); err != nil {
				j.mu.Unlock()
				return JobSnapshot{}, ErrShuttingDown
			}
		}
		s.countMove(from, StateCanceled)
		j.state = StateCanceled
		j.leaseToken = ""
		j.finished = now
		j.userCanceled = true
		terminal = true
		unqueue = from == StateQueued
		unlease = from == StateLeased
		s.markTerminal(StateCanceled)
		s.publishLocked(j, evTypeState, now)
	case StateRunning:
		// The campaign observes the closed channel between stages and
		// returns ErrCanceled; execute journals the terminal state (the
		// drain barrier waits for worker goroutines, so that append
		// cannot race the journal's close).
		j.userCanceled = true
	}
	// Snapshot under the same lock: a caller re-reading through the job
	// table could race a concurrent completion's prune and find nothing
	// — or worse, fabricate a state the journal contradicts.
	snap := j.snapshotLocked()
	j.mu.Unlock()
	j.requestCancel()
	if unlease {
		s.mu.Lock()
		delete(s.leases, j.id)
		if tq := s.tenants[j.tenant]; tq != nil {
			tq.inflight--
		}
		s.mu.Unlock()
	}
	if unqueue {
		// Drop the tombstone from its tenant's pending queue eagerly so
		// it stops holding a MaxQueued slot and stops inflating the
		// queue-depth gauge and the derived Retry-After (pop would only
		// skip it once a worker frees up, spuriously 429ing the tenant's
		// new submissions until then).
		s.mu.Lock()
		if tq := s.tenants[j.tenant]; tq != nil && tq.remove(j) {
			s.pendingN--
		}
		s.mu.Unlock()
	}
	if terminal {
		// The cancel was terminal (queued or leased): enforce the
		// record bound now rather than at the next completion.
		s.pruneTerminal()
	}
	return snap, nil
}

// pruneTerminal drops the oldest terminal job records beyond
// maxRecords from the job table, the order slice and therefore every
// listing — the fix for the unbounded growth of completed-job state in
// a long-lived service. Queued and running jobs are never pruned. With
// a journal configured, pruned history remains on disk.
func (s *scheduler) pruneTerminal() {
	if s.maxRecords <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var terminal []string // IDs of terminal jobs, oldest first
	states := map[string]JobState{}
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		done := j.state.Terminal()
		if done {
			terminal = append(terminal, id)
			states[id] = j.state
		}
		j.mu.Unlock()
	}
	drop := len(terminal) - s.maxRecords
	if drop <= 0 {
		return
	}
	doomed := make(map[string]bool, drop)
	for _, id := range terminal[:drop] {
		doomed[id] = true
		delete(s.jobs, id)
		// Pruned records leave the table, so they leave the tallies too.
		s.stateN[stateIdx(states[id])].Add(-1)
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if !doomed[id] {
			kept = append(kept, id)
		}
	}
	s.order = kept
	// End the pruned jobs' event streams so their subscribers (and ring
	// memory) go away with the records.
	s.bus.drop(terminal[:drop])
}

// retainedIDs snapshots the IDs currently in the job table — what a
// restart should still list. Journal compaction drops closed jobs
// outside this set, so the prune horizon (MaxJobRecords) holds on
// disk as well as in memory.
func (s *scheduler) retainedIDs() map[string]struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]struct{}, len(s.jobs))
	for id := range s.jobs {
		out[id] = struct{}{}
	}
	return out
}

// jobsInOrder returns every job in submission order.
func (s *scheduler) jobsInOrder() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// list snapshots every job in submission order.
func (s *scheduler) list() []JobSnapshot { return s.listFiltered(jobQuery{}) }

// jobQuery bounds and filters a job listing.
type jobQuery struct {
	state  JobState // only jobs in this state; "" = all
	tenant string   // only this tenant's jobs; "" = all
	after  string   // exclusive lower bound on job ID; "" = from the start
	limit  int      // max snapshots returned; <= 0 = unbounded
}

// listFiltered snapshots jobs in submission order under the query's
// bounds. Only jobs that pass the cursor are locked, and the walk
// stops as soon as limit snapshots are collected, so a bounded page
// over a large job table stays cheap. Always returns a non-nil slice
// (the HTTP listing guarantees [] over null).
func (s *scheduler) listFiltered(q jobQuery) []JobSnapshot {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		// IDs are handed out in submission order, so the cursor is a
		// comparison — and keeps working even when the cursor job
		// itself has been pruned.
		if q.after != "" && !jobIDAfter(id, q.after) {
			continue
		}
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	capHint := len(jobs)
	if q.limit > 0 && q.limit < capHint {
		capHint = q.limit
	}
	out := make([]JobSnapshot, 0, capHint)
	for _, j := range jobs {
		j.mu.Lock()
		snap := j.snapshotLocked()
		j.mu.Unlock()
		if q.state != "" && snap.State != q.state {
			continue
		}
		if q.tenant != "" && snap.Tenant != q.tenant {
			continue
		}
		out = append(out, snap)
		if q.limit > 0 && len(out) >= q.limit {
			break
		}
	}
	return out
}

// jobIDAfter reports whether job ID a sorts after the cursor b.
// Both-numeric IDs ("job-%06d") compare by job number, so the cursor
// stays correct past the six-digit zero padding (job-1000000 sorts
// after job-999999, not before); anything unparseable falls back to a
// string comparison.
func jobIDAfter(a, b string) bool {
	na, errA := strconv.Atoi(strings.TrimPrefix(a, "job-"))
	nb, errB := strconv.Atoi(strings.TrimPrefix(b, "job-"))
	if errA == nil && errB == nil {
		return na > nb
	}
	return a > b
}

// counts tallies jobs by state for the health endpoint, served from
// the incrementally maintained counters — O(states), no job locks.
func (s *scheduler) counts() map[JobState]int {
	out := map[JobState]int{}
	for i, st := range countedStates {
		if n := s.stateN[i].Load(); n > 0 {
			out[st] = int(n)
		}
	}
	return out
}

// isDraining reports whether a shutdown/drain has begun.
func (s *scheduler) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// shutdown gracefully drains the scheduler: stop accepting
// submissions, stop popping the pending queue, cancel running jobs and
// wait for the workers. Jobs interrupted here are marked canceled
// in memory but deliberately NOT journaled as terminal — from the
// journal's point of view they are still in flight, so a service
// reopened on the same state dir re-enqueues them.
func (s *scheduler) shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.draining = true
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			s.countMove(StateQueued, StateCanceled)
			j.state = StateCanceled //impeccable:unjournaled drain keeps interrupted jobs in-flight in the journal for rerun
			j.finished = time.Now()
			j.drainCanceled = true
		case StateRunning:
			j.drainCanceled = true
		case StateLeased:
			// Remote leases survive the drain untouched: the journal
			// still shows the job leased, so a reopened coordinator
			// re-adopts the lease (and expires it if the worker is
			// gone). The worker's complete will bounce off the closed
			// scheduler and the rerun stays deterministic.
			j.mu.Unlock()
			continue
		}
		j.mu.Unlock()
		j.requestCancel()
	}
	close(s.quit)
	s.wg.Wait()
	// Wake every SSE subscriber after the workers have quiesced: their
	// handlers return, so the HTTP server's graceful drain is never held
	// open by an idle event stream.
	s.bus.shutdown()
}
