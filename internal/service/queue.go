package service

import (
	"fmt"
	"sync"
	"time"
)

// JobState is the lifecycle state of a submitted campaign.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// job is the scheduler's record of one submitted campaign.
type job struct {
	id  string
	req SubmitRequest

	mu         sync.Mutex
	state      JobState
	stage      string  // last reported campaign stage
	progress   float64 // approximate completed fraction [0,1]
	err        string
	submitted  time.Time
	started    time.Time
	finished   time.Time
	result     *jobResult
	cancel     chan struct{}
	cancelOnce sync.Once
}

// requestCancel closes the job's cancel channel exactly once.
func (j *job) requestCancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
}

// snapshotLocked builds a JobSnapshot; callers hold j.mu.
func (j *job) snapshotLocked() JobSnapshot {
	s := JobSnapshot{
		ID:        j.id,
		Target:    j.req.Target,
		State:     j.state,
		Stage:     j.stage,
		Progress:  j.progress,
		Error:     j.err,
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	return s
}

// JobSnapshot is the externally visible status of a job.
type JobSnapshot struct {
	ID        string     `json:"id"`
	Target    string     `json:"target"`
	State     JobState   `json:"state"`
	Stage     string     `json:"stage,omitempty"`
	Progress  float64    `json:"progress"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted_at"`
	Started   *time.Time `json:"started_at,omitempty"`
	Finished  *time.Time `json:"finished_at,omitempty"`
}

// scheduler runs queued jobs over a bounded worker pool.
type scheduler struct {
	run func(*job) // executes one job's campaign

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // submission order, for listing
	pending []*job   // FIFO queue of jobs awaiting a worker
	nextID  int
	closed  bool

	wake chan struct{} // pokes idle workers; buffered
	quit chan struct{}
	wg   sync.WaitGroup
}

// newScheduler starts workers goroutines draining the queue.
func newScheduler(workers int, run func(*job)) *scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &scheduler{
		run:  run,
		jobs: make(map[string]*job),
		wake: make(chan struct{}, workers),
		quit: make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// submit enqueues a request and returns the new job's ID.
func (s *scheduler) submit(req SubmitRequest, now time.Time) (string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", fmt.Errorf("service: scheduler is shut down")
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.nextID),
		req:       req,
		state:     StateQueued,
		submitted: now,
		cancel:    make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.pending = append(s.pending, j)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return j.id, nil
}

// worker drains the pending queue until the scheduler shuts down.
func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		j := s.pop()
		if j == nil {
			select {
			case <-s.wake:
				continue
			case <-s.quit:
				return
			}
		}
		s.execute(j)
	}
}

// pop dequeues the next runnable job, skipping jobs canceled while
// queued. Returns nil when the queue is empty.
func (s *scheduler) pop() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) > 0 {
		j := s.pending[0]
		s.pending = s.pending[1:]
		j.mu.Lock()
		runnable := j.state == StateQueued
		if runnable {
			j.state = StateRunning
			j.started = time.Now()
		}
		j.mu.Unlock()
		if runnable {
			return j
		}
	}
	return nil
}

// execute runs one job and records its terminal state.
func (s *scheduler) execute(j *job) {
	s.run(j)
	j.mu.Lock()
	if !j.state.Terminal() {
		j.state = StateDone
	}
	j.finished = time.Now()
	j.mu.Unlock()
}

// get returns the job by ID.
func (s *scheduler) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// cancelJob cancels a queued or running job. Canceling a terminal job is
// a no-op; unknown IDs return false.
func (s *scheduler) cancelJob(id string) bool {
	j, ok := s.get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		// Never started: mark terminal immediately; pop() will skip it.
		j.state = StateCanceled
		j.finished = time.Now()
	case StateRunning:
		// The campaign observes the closed channel between stages and
		// returns ErrCanceled; the runner records the terminal state.
	}
	j.mu.Unlock()
	j.requestCancel()
	return true
}

// jobsInOrder returns every job in submission order.
func (s *scheduler) jobsInOrder() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// list snapshots every job in submission order.
func (s *scheduler) list() []JobSnapshot {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobSnapshot, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		out = append(out, j.snapshotLocked())
		j.mu.Unlock()
	}
	return out
}

// counts tallies jobs by state for the health endpoint.
func (s *scheduler) counts() map[JobState]int {
	out := map[JobState]int{}
	for _, snap := range s.list() {
		out[snap.State]++
	}
	return out
}

// shutdown stops accepting submissions, cancels every non-terminal job
// and waits for the workers to drain.
func (s *scheduler) shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		s.cancelJob(j.id)
	}
	close(s.quit)
	s.wg.Wait()
}
