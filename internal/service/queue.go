package service

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// JobState is the lifecycle state of a submitted campaign.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// job is the scheduler's record of one submitted campaign.
type job struct {
	id  string
	req SubmitRequest

	mu         sync.Mutex
	state      JobState
	stage      string  // last reported campaign stage
	progress   float64 // approximate completed fraction [0,1]
	err        string
	submitted  time.Time
	started    time.Time
	finished   time.Time
	result     *jobResult
	cancel     chan struct{}
	cancelOnce sync.Once
	// drainCanceled marks a job interrupted by a graceful drain rather
	// than by user intent: its terminal state is not journaled, so a
	// reopened service re-enqueues it instead of serving "canceled".
	drainCanceled bool
	// userCanceled marks an explicit cancel request. A drain that
	// overlaps one must not suppress its terminal journal event — the
	// user's cancel survives restarts.
	userCanceled bool
}

// requestCancel closes the job's cancel channel exactly once.
func (j *job) requestCancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
}

// snapshotLocked builds a JobSnapshot; callers hold j.mu.
func (j *job) snapshotLocked() JobSnapshot {
	s := JobSnapshot{
		ID:        j.id,
		Target:    j.req.Target,
		State:     j.state,
		Stage:     j.stage,
		Progress:  j.progress,
		Error:     j.err,
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	return s
}

// JobSnapshot is the externally visible status of a job.
type JobSnapshot struct {
	ID        string     `json:"id"`
	Target    string     `json:"target"`
	State     JobState   `json:"state"`
	Stage     string     `json:"stage,omitempty"`
	Progress  float64    `json:"progress"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted_at"`
	Started   *time.Time `json:"started_at,omitempty"`
	Finished  *time.Time `json:"finished_at,omitempty"`
}

// Duration reports how long the job ran. Jobs that never left the
// queue — canceled while queued, so Finished is set while Started is
// nil — report zero; the result is never negative.
func (s JobSnapshot) Duration() time.Duration {
	if s.Started == nil || s.Finished == nil {
		return 0
	}
	if d := s.Finished.Sub(*s.Started); d > 0 {
		return d
	}
	return 0
}

// ErrQueueFull is returned by Submit when Options.MaxQueued pending
// jobs are already waiting (HTTP surfaces it as 429).
var ErrQueueFull = errors.New("service: submission queue is full")

// schedConfig bundles the scheduler's construction parameters.
type schedConfig struct {
	workers    int
	maxQueued  int                      // pending-queue bound; 0 = unbounded
	maxRecords int                      // retained terminal jobs; 0 = unbounded
	record     func(journalEvent) error // journal appender; nil = in-memory only
	onTerminal func()                   // runs after each job's terminal event
}

// scheduler runs queued jobs over a bounded worker pool.
type scheduler struct {
	run        func(*job) // executes one job's campaign
	maxQueued  int
	maxRecords int
	record     func(journalEvent) error
	onTerminal func()

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for listing
	pending  []*job   // FIFO queue of jobs awaiting a worker
	nextID   int
	closed   bool
	draining bool // drain in progress: pop hands out nothing

	wake chan struct{} // pokes idle workers; buffered
	quit chan struct{}
	wg   sync.WaitGroup
}

// newScheduler starts workers goroutines draining the queue.
func newScheduler(cfg schedConfig, run func(*job)) *scheduler {
	workers := cfg.workers
	if workers < 1 {
		workers = 1
	}
	s := &scheduler{
		run:        run,
		maxQueued:  cfg.maxQueued,
		maxRecords: cfg.maxRecords,
		record:     cfg.record,
		onTerminal: cfg.onTerminal,
		jobs:       make(map[string]*job),
		wake:       make(chan struct{}, workers),
		quit:       make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// submit enqueues a request and returns the new job's ID. The
// submitted event is journaled (and fsynced) before the ID is handed
// back, so an acknowledged submission survives a crash.
func (s *scheduler) submit(req SubmitRequest, now time.Time) (string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", fmt.Errorf("service: scheduler is shut down")
	}
	if s.maxQueued > 0 && len(s.pending) >= s.maxQueued {
		s.mu.Unlock()
		return "", fmt.Errorf("%w (%d jobs pending, max %d)", ErrQueueFull, s.maxQueued, s.maxQueued)
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.nextID),
		req:       req,
		state:     StateQueued,
		submitted: now,
		cancel:    make(chan struct{}),
	}
	if s.record != nil {
		if err := s.record(journalEvent{Kind: evSubmitted, Job: j.id, Time: now, Req: &j.req}); err != nil {
			s.nextID--
			s.mu.Unlock()
			return "", err
		}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.pending = append(s.pending, j)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return j.id, nil
}

// restore inserts journal-replayed jobs: terminal ones become
// servable records, non-terminal ones re-enter the pending queue under
// their original IDs. nextID advances past the highest replayed job
// number so new submissions never collide.
func (s *scheduler) restore(jobs []*job, maxID int) {
	requeued := 0
	s.mu.Lock()
	for _, j := range jobs {
		if _, dup := s.jobs[j.id]; dup {
			continue
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if !j.state.Terminal() {
			s.pending = append(s.pending, j)
			requeued++
		}
	}
	if maxID > s.nextID {
		s.nextID = maxID
	}
	s.mu.Unlock()
	for i := 0; i < requeued; i++ {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// worker drains the pending queue until the scheduler shuts down.
func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		j := s.pop()
		if j == nil {
			select {
			case <-s.wake:
				continue
			case <-s.quit:
				return
			}
		}
		if s.record != nil {
			j.mu.Lock()
			started := j.started
			j.mu.Unlock()
			_ = s.record(journalEvent{Kind: evStarted, Job: j.id, Time: started})
		}
		s.execute(j)
	}
}

// pop dequeues the next runnable job, skipping jobs canceled while
// queued. Returns nil when the queue is empty or a drain is under way
// (a draining scheduler stops popping so queued work stays journaled
// as pending and resumes after restart).
func (s *scheduler) pop() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.draining && len(s.pending) > 0 {
		j := s.pending[0]
		s.pending = s.pending[1:]
		j.mu.Lock()
		runnable := j.state == StateQueued
		if runnable {
			j.state = StateRunning
			j.started = time.Now()
		}
		j.mu.Unlock()
		if runnable {
			return j
		}
	}
	return nil
}

// execute runs one job, records its terminal state and journals it —
// unless a drain interrupted the job, in which case the journal keeps
// showing it in flight so a reopened service reruns it.
func (s *scheduler) execute(j *job) {
	s.run(j)
	j.mu.Lock()
	if !j.state.Terminal() {
		j.state = StateDone
	}
	j.finished = time.Now()
	ev := journalEvent{Job: j.id, Time: j.finished}
	switch j.state {
	case StateDone:
		ev.Kind = evDone
		if j.result != nil {
			sum := j.result.summary
			ev.Summary = &sum
		}
	case StateFailed:
		ev.Kind = evFailed
		ev.Error = j.err
	case StateCanceled:
		ev.Kind = evCanceled
	}
	// Suppress journaling only when the drain actually interrupted the
	// job: one that raced to normal completion still records its
	// result, and one the user explicitly canceled records the cancel
	// (user intent survives restarts; drain interruptions resume).
	suppress := j.drainCanceled && !j.userCanceled && j.state == StateCanceled
	j.mu.Unlock()
	if !suppress && s.record != nil {
		_ = s.record(ev)
	}
	if !suppress && s.onTerminal != nil {
		s.onTerminal()
	}
	s.pruneTerminal()
}

// get returns the job by ID.
func (s *scheduler) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// cancelJob cancels a queued or running job. Canceling a terminal job is
// a no-op; unknown IDs return false.
func (s *scheduler) cancelJob(id string) bool {
	j, ok := s.get(id)
	if !ok {
		return false
	}
	var ev *journalEvent
	unqueue := false
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		// Never started: mark terminal immediately; pop() will skip it.
		j.state = StateCanceled
		j.finished = time.Now()
		j.userCanceled = true
		unqueue = true
		ev = &journalEvent{Kind: evCanceled, Job: j.id, Time: j.finished}
	case StateRunning:
		// The campaign observes the closed channel between stages and
		// returns ErrCanceled; execute journals the terminal state.
		j.userCanceled = true
	}
	j.mu.Unlock()
	j.requestCancel()
	if unqueue {
		// Drop the tombstone from the pending queue so it stops holding
		// a MaxQueued slot (pop would only skip it once a worker frees
		// up, spuriously 429ing new submissions until then).
		s.mu.Lock()
		for i, p := range s.pending {
			if p == j {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
	}
	if ev != nil && s.record != nil {
		_ = s.record(*ev)
	}
	return true
}

// pruneTerminal drops the oldest terminal job records beyond
// maxRecords from the job table, the order slice and therefore every
// listing — the fix for the unbounded growth of completed-job state in
// a long-lived service. Queued and running jobs are never pruned. With
// a journal configured, pruned history remains on disk.
func (s *scheduler) pruneTerminal() {
	if s.maxRecords <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var terminal []string // IDs of terminal jobs, oldest first
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		done := j.state.Terminal()
		j.mu.Unlock()
		if done {
			terminal = append(terminal, id)
		}
	}
	drop := len(terminal) - s.maxRecords
	if drop <= 0 {
		return
	}
	doomed := make(map[string]bool, drop)
	for _, id := range terminal[:drop] {
		doomed[id] = true
		delete(s.jobs, id)
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if !doomed[id] {
			kept = append(kept, id)
		}
	}
	s.order = kept
}

// jobsInOrder returns every job in submission order.
func (s *scheduler) jobsInOrder() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// list snapshots every job in submission order.
func (s *scheduler) list() []JobSnapshot {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobSnapshot, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		out = append(out, j.snapshotLocked())
		j.mu.Unlock()
	}
	return out
}

// counts tallies jobs by state for the health endpoint.
func (s *scheduler) counts() map[JobState]int {
	out := map[JobState]int{}
	for _, snap := range s.list() {
		out[snap.State]++
	}
	return out
}

// shutdown gracefully drains the scheduler: stop accepting
// submissions, stop popping the pending queue, cancel running jobs and
// wait for the workers. Jobs interrupted here are marked canceled
// in memory but deliberately NOT journaled as terminal — from the
// journal's point of view they are still in flight, so a service
// reopened on the same state dir re-enqueues them.
func (s *scheduler) shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.draining = true
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			j.state = StateCanceled
			j.finished = time.Now()
			j.drainCanceled = true
		case StateRunning:
			j.drainCanceled = true
		}
		j.mu.Unlock()
		j.requestCancel()
	}
	close(s.quit)
	s.wg.Wait()
}
