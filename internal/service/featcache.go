package service

import (
	"sync"
	"sync/atomic"

	"impeccable/internal/chem"
)

// FeatureCache memoizes molecule feature vectors by library ID for the
// ML1 screening hot path. Molecule materialization is deterministic, so
// vectors computed for one tenant's screen are valid for every other
// tenant screening an overlapping library window. Sharded like the score
// cache; satisfies surrogate.FeatureSource.
type FeatureCache struct {
	shards []featShard
	mask   uint64

	maxPerShard int
}

// featShard counters mirror scoreShard's: per-shard so the exposition
// can show stripe balance and counting stays contention-free.
type featShard struct {
	mu sync.RWMutex
	m  map[uint64][]float64

	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64
}

// NewFeatureCache builds a feature cache with the given shard count
// (rounded up to a power of two; values < 1 become 16) and a total soft
// capacity of maxEntries vectors (0 = unbounded).
func NewFeatureCache(shards, maxEntries int) *FeatureCache {
	if shards < 1 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &FeatureCache{shards: make([]featShard, n), mask: uint64(n - 1)}
	if maxEntries > 0 {
		c.maxPerShard = (maxEntries + n - 1) / n
	}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64][]float64)
	}
	return c
}

// shardForID mixes the ID so sequential library windows spread across
// shards.
func (c *FeatureCache) shardForID(id uint64) *featShard {
	h := id * 0x9E3779B97F4A7C15
	return &c.shards[h&c.mask]
}

// Features returns the feature vector for the molecule ID, computing and
// caching it on first use. The returned slice is shared and must be
// treated as read-only (the surrogate copies it into its input matrix).
func (c *FeatureCache) Features(id uint64) []float64 {
	if v, ok := c.Lookup(id); ok {
		return v
	}
	v := chem.FromID(id).FeatureVector()
	c.Insert(id, v)
	return v
}

// FeaturesInto writes the feature vector for the molecule ID into dst
// (length chem.FeatureDim), computing and caching it on a miss — the
// surrogate.BatchFeatureSource counterpart of Features, letting batched
// inference fill kernel input buffers without holding a reference to the
// shared cached slice. Counter semantics match Features exactly: one
// hit or one miss per call, every miss stores (Puts == Misses).
func (c *FeatureCache) FeaturesInto(dst []float64, id uint64) {
	if v, ok := c.Lookup(id); ok {
		copy(dst, v)
		return
	}
	chem.FromID(id).FeatureVectorInto(dst)
	c.Insert(id, append([]float64(nil), dst...))
}

// Lookup returns the cached vector for the molecule ID without
// computing on a miss (counted as a hit/miss like Features). Remote
// workers use it to tell which vectors a run computed fresh — the
// feature-cache delta shipped back to the coordinator.
func (c *FeatureCache) Lookup(id uint64) ([]float64, bool) {
	s := c.shardForID(id)
	s.mu.RLock()
	v, ok := s.m[id]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return v, ok
}

// Insert stores a computed vector under the capacity bound; the
// write half of Lookup.
func (c *FeatureCache) Insert(id uint64, v []float64) {
	c.store(c.shardForID(id), id, v)
}

// store inserts one vector under the capacity bound.
func (c *FeatureCache) store(s *featShard, id uint64, v []float64) {
	s.mu.Lock()
	if _, exists := s.m[id]; !exists && c.maxPerShard > 0 && len(s.m) >= c.maxPerShard {
		for victim := range s.m {
			delete(s.m, victim)
			s.evicts.Add(1)
			break
		}
	}
	s.m[id] = v
	s.mu.Unlock()
}

// FeatureEntry is one exported feature-cache record. Vectors are
// recomputable from the ID (materialization is deterministic), so the
// snapshot is strictly an optimization: restoring it spares a restarted
// service the recompute, not the correctness.
type FeatureEntry struct {
	ID  uint64
	Vec []float64
}

// Export snapshots every cached feature vector, shard by shard under
// the read locks (per-shard-consistent, like ScoreCache.Export).
func (c *FeatureCache) Export() []FeatureEntry {
	var out []FeatureEntry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for id, v := range s.m {
			out = append(out, FeatureEntry{ID: id, Vec: append([]float64(nil), v...)})
		}
		s.mu.RUnlock()
	}
	return out
}

// Import merges previously exported entries, respecting the capacity
// bound. Imported entries count as neither hits nor misses.
func (c *FeatureCache) Import(entries []FeatureEntry) {
	for _, e := range entries {
		c.store(c.shardForID(e.ID), e.ID, append([]float64(nil), e.Vec...))
	}
}

// ShardStats snapshots every shard's counters, in shard order.
func (c *FeatureCache) ShardStats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		out[i].Entries = len(s.m)
		s.mu.RUnlock()
		out[i].Hits = s.hits.Load()
		out[i].Misses = s.misses.Load()
		out[i].Evictions = s.evicts.Load()
	}
	return out
}

// Stats snapshots the feature-cache counters, summed across shards.
func (c *FeatureCache) Stats() CacheStats {
	st := CacheStats{Shards: len(c.shards)}
	for _, ss := range c.ShardStats() {
		st.Entries += ss.Entries
		st.Hits += ss.Hits
		st.Misses += ss.Misses
		st.Evictions += ss.Evictions
	}
	st.Puts = st.Misses // every miss computes and stores
	if lookups := st.Hits + st.Misses; lookups > 0 {
		st.HitRate = float64(st.Hits) / float64(lookups)
	}
	return st
}
