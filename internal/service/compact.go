// Journal compaction: sealed segments whose jobs have all finished
// collapse into a checkpoint segment — one synthetic terminal event
// per retained job — so cold-start replay scales with live+retained
// jobs instead of lifetime history. The state machine is
// crash-safe at every step:
//
//  1. Read the sealed segments (immutable once rotated past).
//  2. Split their jobs: closed jobs (terminal event present in the
//     sealed prefix — terminal jobs never receive another event)
//     collapse to checkpoints; everything else's raw events are copied
//     verbatim, preserving the live provenance chains.
//  3. Closed jobs the scheduler has pruned (Options.MaxJobRecords) are
//     dropped entirely, so a restart lists exactly what the running
//     service listed.
//  4. Write checkpoints + copied events to a temp file, fsync, and
//     rename it over the highest sealed segment. A crash before the
//     rename changes nothing (the temp is swept on open); a crash
//     after it leaves raw segments alongside the checkpoint that
//     restates them, which replay reduces to the same state (events
//     are absolute and chains dedupe by hash).
//  5. Delete the lower sealed segments, then sweep blobs no journal
//     event or snapshot manifest references.
//
// Checkpoints always spill their request and summary payloads to the
// blob store (terminal artifacts are read lazily if ever), and carry
// the original chain's leaves and Merkle root so inclusion proofs
// survive the raw events' deletion.
package service

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"impeccable/internal/blob"
	"impeccable/internal/merkle"
)

// compactStats reports what one compaction did.
type compactStats struct {
	segments     int // sealed segments rewritten (0 = nothing to do)
	checkpointed int // closed jobs collapsed to checkpoint events
	dropped      int // pruned jobs removed from the journal entirely
	copied       int // raw events of still-open jobs carried over
}

// compactInterrupt, when set, runs after the checkpoint segment is
// installed and before the old segments are deleted; returning true
// abandons the deletion — the test seam for the crash-mid-compaction
// window.
var compactInterrupt func() bool

// compact rewrites every sealed segment into one checkpoint segment.
// retain reports whether a closed job should survive (nil retains
// all); jobs it rejects vanish from the journal, which is how
// compaction honors the scheduler's MaxJobRecords prune horizon.
func (jl *journal) compact(retain func(jobID string) bool) (compactStats, error) {
	jl.compactMu.Lock()
	defer jl.compactMu.Unlock()
	var st compactStats

	jl.mu.Lock()
	if len(jl.seqs) < 2 {
		jl.mu.Unlock()
		return st, nil // only the active segment: nothing sealed to compact
	}
	sealed := append([]uint64(nil), jl.seqs[:len(jl.seqs)-1]...)
	jl.mu.Unlock()
	hi := sealed[len(sealed)-1]

	events, err := readSegments(jl.dir, sealed)
	if err != nil {
		return st, err
	}

	// Split the prefix's jobs. A job is closed once a terminal, sealed
	// or checkpoint event for it appears: terminal jobs never receive
	// another event, so every event it will ever have is here.
	closed := make(map[string]bool)
	for _, ev := range events {
		if ev.Kind.terminal() || ev.Kind == evSealed || ev.Kind == evCheckpoint {
			closed[ev.Job] = true
		}
	}

	// Chains of closed jobs are immutable; copy them out under the lock.
	chains := make(map[string]*provChain, len(closed))
	jl.mu.Lock()
	for id := range closed {
		if c := jl.prov[id]; c != nil {
			chains[id] = c.clone()
		}
	}
	jl.mu.Unlock()

	// Fold each closed job's events into its checkpoint; collect the
	// open jobs' events for verbatim copy. refDelta tracks how the blob
	// reference counts change: removed raw events give up their refs,
	// new checkpoints take theirs (identical payloads reuse identical
	// hashes, so a retained job's spilled artifacts net to zero).
	type record struct {
		ev    journalEvent
		order int
	}
	folds := make(map[string]*journalEvent)
	var closedOrder []string
	var copied []record
	refDelta := make(map[string]int)
	for i, ev := range events {
		if !closed[ev.Job] {
			copied = append(copied, record{ev: ev, order: i})
			continue
		}
		if ev.ReqRef != nil {
			refDelta[ev.ReqRef.SHA256]--
		}
		if ev.SummaryRef != nil {
			refDelta[ev.SummaryRef.SHA256]--
		}
		ck := folds[ev.Job]
		if ck == nil {
			ck = &journalEvent{Kind: evCheckpoint, Job: ev.Job, State: StateQueued}
			folds[ev.Job] = ck
			closedOrder = append(closedOrder, ev.Job)
		}
		foldEvent(ck, ev)
	}

	drop := make(map[string]bool)
	for _, id := range closedOrder {
		if retain != nil && !retain(id) {
			drop[id] = true
			st.dropped++
		}
	}

	// Checkpoints land in job-number order so replay's listing order
	// matches submission order without extra sorting work at startup.
	sort.Slice(closedOrder, func(i, k int) bool {
		ni, iok := jobNumber(closedOrder[i])
		nk, kok := jobNumber(closedOrder[k])
		if iok && kok {
			return ni < nk
		}
		return closedOrder[i] < closedOrder[k]
	})

	var buf []byte
	for _, id := range closedOrder {
		if drop[id] {
			continue
		}
		ck := folds[id]
		if err := jl.spillCheckpoint(ck); err != nil {
			return st, err
		}
		if c := chains[id]; c != nil {
			ck.Leaves = append([]string(nil), c.leaves...)
		}
		leaves, err := decodeLeaves(ck.Leaves)
		if err != nil {
			return st, err
		}
		ck.Root = hex.EncodeToString(merkle.Root(leaves))
		if ck.Hash, err = eventHash("", *ck); err != nil {
			return st, err
		}
		if ck.ReqRef != nil {
			refDelta[ck.ReqRef.SHA256]++
		}
		if ck.SummaryRef != nil {
			refDelta[ck.SummaryRef.SHA256]++
		}
		b, err := json.Marshal(ck)
		if err != nil {
			return st, fmt.Errorf("service: encoding checkpoint event: %w", err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
		st.checkpointed++
	}
	for _, rec := range copied {
		b, err := json.Marshal(rec.ev)
		if err != nil {
			return st, fmt.Errorf("service: encoding copied event: %w", err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
		st.copied++
	}

	// Install the checkpoint segment atomically over the highest sealed
	// slot, then delete the lower segments.
	tmp, err := os.CreateTemp(jl.dir, "journal-ckpt-*.tmp")
	if err != nil {
		return st, fmt.Errorf("service: creating checkpoint segment: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return st, fmt.Errorf("service: writing checkpoint segment: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return st, fmt.Errorf("service: syncing checkpoint segment: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return st, fmt.Errorf("service: closing checkpoint segment: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(jl.dir, segmentName(hi))); err != nil {
		os.Remove(tmp.Name())
		return st, fmt.Errorf("service: installing checkpoint segment: %w", err)
	}
	syncDir(jl.dir)
	if compactInterrupt != nil && compactInterrupt() {
		st.segments = len(sealed)
		return st, nil
	}
	for _, seq := range sealed[:len(sealed)-1] {
		if err := os.Remove(filepath.Join(jl.dir, segmentName(seq))); err != nil && !os.IsNotExist(err) {
			return st, fmt.Errorf("service: removing compacted segment: %w", err)
		}
	}
	syncDir(jl.dir)

	// Commit the new shape: segment list, provenance chains, ref counts.
	jl.mu.Lock()
	keep := jl.seqs[:0]
	for _, s := range jl.seqs {
		if s >= hi {
			keep = append(keep, s)
		}
	}
	jl.seqs = keep
	for _, id := range closedOrder {
		if drop[id] {
			delete(jl.prov, id)
			continue
		}
		ck := folds[id]
		jl.prov[id] = &provChain{
			leaves: append([]string(nil), ck.Leaves...),
			last:   ck.Hash,
			root:   ck.Root,
			sealed: true,
		}
	}
	for h, d := range refDelta {
		jl.refs[h] += d
		if jl.refs[h] <= 0 {
			delete(jl.refs, h)
		}
	}
	jl.mu.Unlock()
	st.segments = len(sealed)
	return st, nil
}

// foldEvent reduces one raw event into a job's checkpoint record —
// the same absolute-state semantics as replayJournal, but keeping
// payload refs unresolved.
func foldEvent(ck *journalEvent, ev journalEvent) {
	switch ev.Kind {
	case evSubmitted:
		t := ev.Time
		ck.Submitted = &t
		ck.Req, ck.ReqRef = ev.Req, ev.ReqRef
		ck.RID = ev.RID
		// Schema v2: the owner and priority survive compaction so a
		// restart rebuilds per-tenant records from checkpoints alone.
		ck.Tenant = ev.Tenant
		ck.Priority = ev.Priority
	case evStarted, evLeased:
		t := ev.Time
		ck.Started = &t
	case evRequeued:
		ck.Started = nil
	case evDone:
		ck.State = StateDone
		ck.Time = ev.Time
		ck.Summary, ck.SummaryRef = ev.Summary, ev.SummaryRef
	case evFailed:
		ck.State = StateFailed
		ck.Time = ev.Time
		ck.Error = ev.Error
	case evCanceled:
		ck.State = StateCanceled
		ck.Time = ev.Time
	case evCheckpoint:
		// A previous compaction's checkpoint: adopt it wholesale (its
		// leaves and root are re-derived by the caller from prov, which
		// this checkpoint populated at open).
		*ck = ev
	}
	if ev.Worker != "" && ev.Kind != evRequeued {
		ck.Worker = ev.Worker
	}
}

// spillCheckpoint moves a checkpoint's inline payloads to the blob
// store unconditionally: checkpoint segments stay lean (replay parses
// a few hundred bytes per job) and terminal artifacts resolve lazily
// on first access.
func (jl *journal) spillCheckpoint(ck *journalEvent) error {
	if jl.blobs == nil {
		return nil
	}
	if ck.Req != nil {
		b, err := json.Marshal(ck.Req)
		if err != nil {
			return fmt.Errorf("service: encoding checkpoint request: %w", err)
		}
		ref, err := jl.blobs.Put(b)
		if err != nil {
			return fmt.Errorf("service: spilling checkpoint request: %w", err)
		}
		ck.Req, ck.ReqRef = nil, &ref
	}
	if ck.Summary != nil {
		b, err := json.Marshal(ck.Summary)
		if err != nil {
			return fmt.Errorf("service: encoding checkpoint summary: %w", err)
		}
		ref, err := jl.blobs.Put(b)
		if err != nil {
			return fmt.Errorf("service: spilling checkpoint summary: %w", err)
		}
		ck.Summary, ck.SummaryRef = nil, &ref
	}
	return nil
}

// CompactNow compacts the journal's sealed segments and sweeps
// unreferenced blobs. Jobs the scheduler no longer lists (pruned past
// MaxJobRecords) leave the journal; jobs still open keep their raw
// events and chains. Safe to call any time; a no-op without a
// StateDir or when nothing is sealed.
func (s *Service) CompactNow() error {
	if s.stateDir == "" {
		return nil
	}
	retained := s.sched.retainedIDs()
	start := time.Now()
	st, err := s.jl.compact(func(id string) bool {
		_, ok := retained[id]
		return ok
	})
	if err != nil {
		return err
	}
	if st.segments > 0 {
		s.met.journalCompactions.Inc()
		s.met.journalCompactionSeconds.Observe(time.Since(start).Seconds())
	}
	// Sweep even when nothing compacted: superseded snapshot blobs
	// orphan on every changed checkpoint, not just at compaction.
	_, _, err = s.blobs.Sweep(func(hash string) bool {
		return s.jl.hasRef(hash) || s.snapPinned(hash)
	})
	return err
}

// snapPinned reports whether hash is the live cache-snapshot blob.
func (s *Service) snapPinned(hash string) bool {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snapRef != nil && s.snapRef.SHA256 == hash
}

// compactLoop periodically compacts and sweeps, so a long-lived
// service's replay cost tracks its live+retained jobs.
func (s *Service) compactLoop(every time.Duration) {
	defer s.snapWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = s.CompactNow()
		case <-s.snapStop:
			return
		}
	}
}

// liveBlobRefs enumerates every blob hash the journal currently pins
// (for tests and the verifier).
func (jl *journal) liveBlobRefs() map[string]blob.Ref {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	out := make(map[string]blob.Ref, len(jl.refs))
	for h := range jl.refs {
		out[h] = blob.Ref{SHA256: h}
	}
	return out
}
