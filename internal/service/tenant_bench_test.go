package service

import (
	"sort"
	"testing"
	"time"
)

// BenchmarkTenantQueueLatency measures what the DRR arbiter buys a
// light tenant: the number of job-slots its single submission waits
// behind a 50-job flood before being granted. "fifo" puts the flood
// and the light job in one tenant queue (a single queue is served
// strictly FIFO — the pre-tenancy behavior); "drr" gives the light
// tenant its own equal-weight queue. Latency is reported in job-slots
// (grants before the light job's) rather than wall seconds so the
// number is hardware-independent: multiply by the mean campaign
// duration for wall-clock latency. Compare:
//
//	go test ./internal/service -bench TenantQueueLatency -benchtime 200x
func BenchmarkTenantQueueLatency(b *testing.B) {
	const flood = 50
	run := func(b *testing.B, lightTenant string) {
		lat := make([]float64, 0, b.N)
		for i := 0; i < b.N; i++ {
			s := remoteScheduler(time.Hour, nil)
			now := time.Now()
			for k := 0; k < flood; k++ {
				if _, err := s.submit(tenantReq("flood", 0), now); err != nil {
					b.Fatal(err)
				}
			}
			lightID, err := s.submit(tenantReq(lightTenant, 0), now)
			if err != nil {
				b.Fatal(err)
			}
			slots := 0
			for {
				j, err := s.lease("w1", 0, now)
				if err != nil || j == nil {
					b.Fatalf("grant after %d slots = %v, %v", slots, j, err)
				}
				if j.id == lightID {
					break
				}
				slots++
				j.mu.Lock()
				tok := j.leaseToken
				j.mu.Unlock()
				if err := s.completeRemote("w1", tok, j.id, StateDone, "", &ResultSummary{}, now); err != nil {
					b.Fatal(err)
				}
			}
			lat = append(lat, float64(slots))
			s.shutdown()
		}
		sort.Float64s(lat)
		b.ReportMetric(lat[len(lat)*99/100], "p99-slots")
		b.ReportMetric(lat[len(lat)/2], "p50-slots")
	}
	b.Run("fifo", func(b *testing.B) { run(b, "flood") })
	b.Run("drr", func(b *testing.B) { run(b, "light") })
}
