package service

import (
	"encoding/binary"
	"sync"
	"testing"

	"impeccable/internal/chem"
	"impeccable/internal/dock"
)

// fuzzResultFor derives the canonical docking result for a molecule from
// its fingerprint. The cache is keyed by (target, fingerprint), so two
// molecules with colliding fingerprints MUST map to the same value —
// deriving the value from the fingerprint itself makes every interleaving
// of Puts produce a value any Get is allowed to observe.
func fuzzResultFor(m *chem.Molecule) dock.Result {
	fp := m.FP()
	return dock.Result{
		MolID:  m.ID,
		Score:  -float64(fp[0]%1000) / 10,
		Evals:  int64(fp[0] % 97),
		Genome: []float64{float64(fp[0] % 7)},
	}
}

// decodeIDs turns fuzz bytes into a molecule-ID op sequence.
func decodeIDs(data []byte) []uint64 {
	ids := make([]uint64, 0, len(data)/3+1)
	for at := 0; at < len(data); at += 3 {
		end := at + 3
		if end > len(data) {
			end = len(data)
		}
		var buf [8]byte
		copy(buf[:], data[at:end])
		// A tiny ID universe forces key reuse (Get-after-Put hits) and,
		// because fingerprints hash a small structure space, occasional
		// fingerprint collisions between distinct IDs.
		ids = append(ids, binary.LittleEndian.Uint64(buf[:])%512)
	}
	return ids
}

// scoreCacheBound is the cache's worst-case entry capacity for a
// maxEntries request (per-shard ceilings round up).
func scoreCacheBound(shards, maxEntries int) int {
	n := 1
	for n < shards {
		n <<= 1
	}
	if n < 1 {
		n = 16
	}
	return n * ((maxEntries + n - 1) / n)
}

// FuzzScoreCache drives the sharded score cache with an arbitrary op
// sequence split across two goroutines and checks the invariants that
// must hold under every interleaving: a Get hit always returns the
// canonical value for that fingerprint (Get-after-Put round-trips,
// collisions included), the entry count respects the capacity bound, and
// the hit/miss/put counters stay coherent.
func FuzzScoreCache(f *testing.F) {
	f.Add([]byte{}, uint8(4), uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(1), uint8(8))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00}, uint8(64), uint8(3))
	f.Add([]byte("get-after-put-get-after-put"), uint8(2), uint8(200))
	f.Fuzz(func(t *testing.T, data []byte, shardByte, capByte uint8) {
		shards := int(shardByte)%32 + 1
		maxEntries := int(capByte) // 0 = unbounded
		c := NewScoreCache(shards, maxEntries)
		ids := decodeIDs(data)

		run := func(ids []uint64) {
			for i, id := range ids {
				m := chem.FromID(id)
				want := fuzzResultFor(m)
				if i%2 == 0 {
					c.put("PLPro", m, want)
				}
				if got, ok := c.get("PLPro", m); ok {
					if got.Score != want.Score || got.Evals != want.Evals {
						t.Errorf("get(%d) = (%v,%d), want (%v,%d)",
							id, got.Score, got.Evals, want.Score, want.Evals)
					}
					// The handed-out genome must be a private copy.
					if len(got.Genome) > 0 {
						got.Genome[0] = -12345
					}
					if again, ok2 := c.get("PLPro", m); ok2 && len(again.Genome) > 0 && again.Genome[0] == -12345 {
						t.Error("cache handed out shared genome backing memory")
					}
				}
			}
		}
		// Arbitrary interleaving: both halves run concurrently over an
		// overlapping ID universe.
		var wg sync.WaitGroup
		half := len(ids) / 2
		for _, part := range [][]uint64{ids[:half], ids[half:]} {
			wg.Add(1)
			go func(p []uint64) {
				defer wg.Done()
				run(p)
			}(part)
		}
		wg.Wait()

		st := c.Stats()
		if maxEntries > 0 {
			if bound := scoreCacheBound(shards, maxEntries); st.Entries > bound {
				t.Errorf("entries %d exceed capacity bound %d (shards=%d max=%d)",
					st.Entries, bound, shards, maxEntries)
			}
		}
		if st.Hits+st.Misses < int64(len(ids)) && len(ids) > 0 {
			t.Errorf("counter loss: %d lookups recorded for %d ops", st.Hits+st.Misses, len(ids))
		}
		if st.Entries > 0 && st.Puts == 0 {
			t.Error("entries present with zero puts")
		}
	})
}

// FuzzFeatureCache checks the feature cache under arbitrary concurrent
// ID sequences: every returned vector must equal the canonical
// featurization, and the entry count must respect the capacity bound.
func FuzzFeatureCache(f *testing.F) {
	f.Add([]byte{}, uint8(4), uint8(0))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 1, 2, 3}, uint8(8), uint8(4))
	f.Add([]byte("feature-roundtrip"), uint8(1), uint8(64))
	f.Fuzz(func(t *testing.T, data []byte, shardByte, capByte uint8) {
		shards := int(shardByte)%32 + 1
		maxEntries := int(capByte)
		c := NewFeatureCache(shards, maxEntries)
		ids := decodeIDs(data)

		run := func(ids []uint64) {
			for _, id := range ids {
				got := c.Features(id)
				want := chem.FromID(id).FeatureVector()
				if len(got) != len(want) {
					t.Errorf("Features(%d): %d dims, want %d", id, len(got), len(want))
					return
				}
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("Features(%d)[%d] = %v, want %v", id, j, got[j], want[j])
						return
					}
				}
			}
		}
		var wg sync.WaitGroup
		half := len(ids) / 2
		for _, part := range [][]uint64{ids[:half], ids[half:]} {
			wg.Add(1)
			go func(p []uint64) {
				defer wg.Done()
				run(p)
			}(part)
		}
		wg.Wait()

		st := c.Stats()
		if maxEntries > 0 {
			if bound := scoreCacheBound(shards, maxEntries); st.Entries > bound {
				t.Errorf("entries %d exceed capacity bound %d", st.Entries, bound)
			}
		}
	})
}
