// Crash-safe persistence for the campaign service: a write-ahead
// journal of job lifecycle events plus periodic snapshots of the
// sharded score and feature caches. The journal is the source of truth
// for job state across restarts (in the event-sourced style of
// replayable execution records); the cache snapshot is a pure
// optimization that keeps a restarted service's docking warm. Both
// live under Options.StateDir:
//
//	<state-dir>/journal.jsonl  append-only JSON lines, fsynced per event
//	<state-dir>/caches.snap    gob cache checkpoint, atomically renamed
//
// Replay semantics (see Open): a job whose last journaled event is
// terminal is restored as a served-from-journal record (summary, error
// and timestamps intact, full in-memory result gone); a job that was
// queued or running when the process died is re-enqueued under its
// original ID with its SubmitRequest — Seed and LibOffset ride along,
// so the rerun is deterministic and, against a restored cache
// snapshot, warm-cache-identical.
package service

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// State-dir file names.
const (
	journalName  = "journal.jsonl"
	snapshotName = "caches.snap"
)

// eventKind tags one journal line.
type eventKind string

const (
	evSubmitted eventKind = "submitted"
	evStarted   eventKind = "started"
	evLeased    eventKind = "leased"   // handed to a remote worker under a TTL lease
	evRequeued  eventKind = "requeued" // lease expired; job back in the queue
	evDone      eventKind = "done"
	evFailed    eventKind = "failed"
	evCanceled  eventKind = "canceled"
)

// terminal reports whether the event ends a job's lifecycle.
func (k eventKind) terminal() bool {
	return k == evDone || k == evFailed || k == evCanceled
}

// journalEvent is one line of the write-ahead journal.
type journalEvent struct {
	Kind eventKind `json:"kind"`
	Job  string    `json:"job"`
	Time time.Time `json:"time"`
	// Req rides on submitted events; it is everything needed to rerun
	// the job deterministically (Seed, LibOffset included).
	Req *SubmitRequest `json:"req,omitempty"`
	// Summary rides on done events; a replayed service serves it
	// without rerunning the campaign.
	Summary *ResultSummary `json:"summary,omitempty"`
	// Error rides on failed events.
	Error string `json:"error,omitempty"`
	// Worker rides on leased events (the lease holder) and on terminal
	// events posted by a remote worker.
	Worker string `json:"worker,omitempty"`
	// Token rides on leased events: the per-lease secret the holder
	// presents on heartbeat/complete. Journaled so a surviving worker
	// can re-attach to its lease across a coordinator restart.
	Token string `json:"token,omitempty"`
	// RID is the X-Request-Id of the HTTP request that caused the event
	// (submits and cancels), linking the durable record back to access
	// logs and client traces.
	RID string `json:"rid,omitempty"`
}

// journal is the append-only, per-event-fsynced job event log.
type journal struct {
	mu sync.Mutex
	f  *os.File
	// size tracks the segment's byte length for the exposition.
	size int64
	// onAppend, when set, observes each batch: event count, bytes
	// written, and the fsync's duration. Called outside jl.mu's hot
	// path concerns — it must be cheap and non-blocking.
	onAppend func(events, bytes int, fsync time.Duration)
}

// syncDir fsyncs a directory so a freshly created or renamed entry in
// it survives power loss, not just process death. Best-effort on
// filesystems that reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}

// openJournal opens (creating if needed) the journal for appending.
func openJournal(dir string) (*journal, error) {
	f, err := os.OpenFile(filepath.Join(dir, journalName),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: opening journal: %w", err)
	}
	// Persist the directory entry too: an acked submit must survive
	// power loss even when it was the journal's first event.
	syncDir(dir)
	jl := &journal{f: f}
	if st, err := f.Stat(); err == nil {
		jl.size = st.Size()
	}
	return jl, nil
}

// sizeBytes reports the current segment length.
func (jl *journal) sizeBytes() int64 {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.size
}

// append writes one event as a JSON line and fsyncs it, so an event
// that has been acknowledged (e.g. a submit that returned an ID)
// survives an immediate crash.
func (jl *journal) append(ev journalEvent) error {
	return jl.appendBatch([]journalEvent{ev})
}

// appendBatch writes several events as JSON lines under a single
// fsync. The lease-expiry watchdog journals every requeue of a sweep
// this way — after a restart re-arms many dead workers' leases with
// the same TTL, they all lapse on one tick, and per-event fsyncs there
// would stall the scheduler mutex for the whole run of writes.
func (jl *journal) appendBatch(events []journalEvent) error {
	if len(events) == 0 {
		return nil
	}
	var buf []byte
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("service: encoding journal event: %w", err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return fmt.Errorf("service: journal is closed")
	}
	if _, err := jl.f.Write(buf); err != nil {
		return fmt.Errorf("service: appending journal event: %w", err)
	}
	start := time.Now()
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("service: syncing journal: %w", err)
	}
	jl.size += int64(len(buf))
	if jl.onAppend != nil {
		jl.onAppend(len(events), len(buf), time.Since(start))
	}
	return nil
}

// close closes the journal file; later appends fail.
func (jl *journal) close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	err := jl.f.Close()
	jl.f = nil
	return err
}

// readJournal parses the journal's events in order. A line that does
// not parse — a write torn by the crash the journal exists to survive —
// is skipped rather than failing the whole replay. A missing file is
// an empty journal.
func readJournal(dir string) ([]journalEvent, error) {
	f, err := os.Open(filepath.Join(dir, journalName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: reading journal: %w", err)
	}
	defer f.Close()
	var events []journalEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		var ev journalEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil || ev.Job == "" {
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: scanning journal: %w", err)
	}
	return events, nil
}

// replayJournal reduces the event stream to restorable job records in
// first-submission order, plus the highest job number seen (so a
// reopened scheduler continues the ID sequence without collisions).
// Jobs left non-terminal by the stream come back StateQueued with a
// fresh cancel channel, ready to re-enqueue — except jobs whose last
// event is a lease, which come back StateLeased with the holder
// preserved so the worker can re-attach across the restart; duplicate
// started events (a job interrupted once already) simply overwrite the
// start time.
func replayJournal(events []journalEvent) (jobs []*job, maxID int) {
	byID := make(map[string]*job)
	for _, ev := range events {
		j := byID[ev.Job]
		if j == nil {
			if ev.Kind != evSubmitted || ev.Req == nil {
				continue // event for a job whose submission was lost
			}
			j = &job{
				id:        ev.Job,
				req:       *ev.Req,
				state:     StateQueued,
				submitted: ev.Time,
				cancel:    make(chan struct{}),
			}
			byID[ev.Job] = j
			jobs = append(jobs, j)
			if n, err := strconv.Atoi(strings.TrimPrefix(ev.Job, "job-")); err == nil && n > maxID {
				maxID = n
			}
			continue
		}
		if ev.Worker != "" {
			j.leaseWorker = ev.Worker
		}
		switch ev.Kind {
		case evStarted:
			j.started = ev.Time
		case evLeased:
			j.state = StateLeased
			j.leaseToken = ev.Token
			j.started = ev.Time
		case evRequeued:
			j.state = StateQueued
			j.leaseWorker = ""
			j.leaseToken = ""
			j.started = time.Time{}
		case evDone:
			j.state = StateDone //impeccable:unjournaled replay applies states read from the journal itself
			j.finished = ev.Time
			j.progress = 1
			if ev.Summary != nil {
				j.result = &jobResult{summary: *ev.Summary}
			}
		case evFailed:
			j.state = StateFailed //impeccable:unjournaled replay applies states read from the journal itself
			j.finished = ev.Time
			j.err = ev.Error
		case evCanceled:
			j.state = StateCanceled //impeccable:unjournaled replay applies states read from the journal itself
			j.finished = ev.Time
		}
	}
	// Interrupted jobs rerun from scratch: reset the stale start time so
	// their snapshots read as queued until a worker re-pops them. Leased
	// jobs keep theirs — the remote worker may still be running and
	// re-attach after the restart (restore re-arms the lease TTL).
	for _, j := range jobs {
		if !j.state.Terminal() && j.state != StateLeased {
			j.started = time.Time{}
		}
	}
	return jobs, maxID
}

// cacheSnapshot is the gob-encoded checkpoint of both shared caches.
type cacheSnapshot struct {
	Scores   []ScoreEntry
	Features []FeatureEntry
}

// saveSnapshot checkpoints both caches into dir atomically (temp file
// then rename), so a crash mid-snapshot leaves the previous checkpoint
// intact.
func saveSnapshot(dir string, scores *ScoreCache, features *FeatureCache) error {
	tmp, err := os.CreateTemp(dir, snapshotName+".tmp-*")
	if err != nil {
		return fmt.Errorf("service: creating snapshot temp file: %w", err)
	}
	snap := cacheSnapshot{Scores: scores.Export(), Features: features.Export()}
	if err := gob.NewEncoder(tmp).Encode(snap); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: encoding cache snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: syncing cache snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: closing cache snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snapshotName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: installing cache snapshot: %w", err)
	}
	syncDir(dir)
	return nil
}

// loadSnapshot imports a previously saved checkpoint into the caches.
// A missing snapshot is a cold start, not an error; an unreadable one
// is also tolerated (the caches refill from real work) — durable job
// state lives in the journal, never here.
func loadSnapshot(dir string, scores *ScoreCache, features *FeatureCache) error {
	f, err := os.Open(filepath.Join(dir, snapshotName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: opening cache snapshot: %w", err)
	}
	defer f.Close()
	var snap cacheSnapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return nil // torn snapshot: start cold
	}
	scores.Import(snap.Scores)
	features.Import(snap.Features)
	return nil
}
