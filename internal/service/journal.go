// Crash-safe persistence for the campaign service: a segmented
// write-ahead journal of job lifecycle events, a content-addressed
// blob store for large payloads, and periodic snapshots of the sharded
// score and feature caches. The journal is the source of truth for job
// state across restarts (in the event-sourced style of replayable
// execution records); the cache snapshot is a pure optimization that
// keeps a restarted service's docking warm. Everything lives under
// Options.StateDir:
//
//	<state-dir>/journal-<seq>.jsonl  append-only JSON lines, fsynced
//	                                 per batch; rotated at SegmentBytes,
//	                                 sealed segments compact away
//	<state-dir>/blobs/               content-addressed artifacts (spilled
//	                                 requests, result ledgers, snapshots)
//	<state-dir>/caches.snap          JSON manifest {sha256,size} naming
//	                                 the current cache-checkpoint blob
//
// Three mechanisms keep replay and disk usage scaling with live work
// instead of lifetime history:
//
//   - Spill: an event payload (SubmitRequest library spec, ResultSummary
//     ledger) whose JSON exceeds Options.InlineLimit moves to the blob
//     store and the journal line carries only its {sha256, size} ref.
//     Every ref is hash-verified on read, so a bit-flipped artifact is
//     an error, never silent data.
//   - Segments: the journal rotates at Options.SegmentBytes. Sealed
//     segments are immutable, which is what makes compaction a simple
//     rewrite (see compact.go).
//   - Provenance: every event carries a chain hash over its predecessor
//     and its own canonical JSON; when a job reaches a terminal state
//     the journal auto-appends a "sealed" event carrying the Merkle
//     root over the job's event hashes. The inclusion proof for any
//     event is served live (GET .../provenance) and the whole state
//     dir is checkable offline (cmd/impeccable-verify).
//
// Replay semantics (see Open): a job whose last journaled event is
// terminal is restored as a served-from-journal record (summary, error
// and timestamps intact, full in-memory result gone); a job that was
// queued or running when the process died is re-enqueued under its
// original ID with its SubmitRequest — Seed and LibOffset ride along,
// so the rerun is deterministic and, against a restored cache
// snapshot, warm-cache-identical.
package service

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"impeccable/internal/blob"
	"impeccable/internal/merkle"
)

// State-dir file names. legacyJournalName is the pre-segmentation
// journal; openJournal migrates it to segment 1 by rename, so old state
// dirs keep their history.
const (
	legacyJournalName = "journal.jsonl"
	segmentPrefix     = "journal-"
	segmentSuffix     = ".jsonl"
	snapshotName      = "caches.snap"
	blobDirName       = "blobs"
)

// Persistence tuning defaults (see Options).
const (
	defaultSegmentBytes = 4 << 20  // rotate segments at 4 MiB
	defaultInlineLimit  = 32 << 10 // spill payloads above 32 KiB
	defaultCompactEvery = time.Minute
)

// eventKind tags one journal line.
type eventKind string

const (
	evSubmitted eventKind = "submitted"
	evStarted   eventKind = "started"
	evLeased    eventKind = "leased"   // handed to a remote worker under a TTL lease
	evRequeued  eventKind = "requeued" // lease expired; job back in the queue
	evDone      eventKind = "done"
	evFailed    eventKind = "failed"
	evCanceled  eventKind = "canceled"
	// evSealed closes a job's provenance chain: appended automatically
	// after the terminal event, carrying the Merkle root over the job's
	// event hashes. No effect on replayed state.
	evSealed eventKind = "sealed"
	// evCheckpoint is one compacted job: the whole terminal record in a
	// single synthetic event, with the original chain's leaves and root
	// so inclusion proofs survive compaction.
	evCheckpoint eventKind = "checkpoint"
)

// terminal reports whether the event ends a job's lifecycle.
func (k eventKind) terminal() bool {
	return k == evDone || k == evFailed || k == evCanceled
}

// journalEvent is one line of the write-ahead journal.
type journalEvent struct {
	Kind eventKind `json:"kind"`
	Job  string    `json:"job"`
	Time time.Time `json:"time"`
	// Req rides on submitted events; it is everything needed to rerun
	// the job deterministically (Seed, LibOffset included). Above
	// InlineLimit it is spilled and ReqRef names the blob instead.
	Req    *SubmitRequest `json:"req,omitempty"`
	ReqRef *blob.Ref      `json:"req_ref,omitempty"`
	// Summary rides on done events; a replayed service serves it
	// without rerunning the campaign. Above InlineLimit it is spilled
	// and SummaryRef names the blob instead.
	Summary    *ResultSummary `json:"summary,omitempty"`
	SummaryRef *blob.Ref      `json:"summary_ref,omitempty"`
	// Error rides on failed events.
	Error string `json:"error,omitempty"`
	// Worker rides on leased events (the lease holder) and on terminal
	// events posted by a remote worker.
	Worker string `json:"worker,omitempty"`
	// Token rides on leased events: the per-lease secret the holder
	// presents on heartbeat/complete. Journaled so a surviving worker
	// can re-attach to its lease across a coordinator restart.
	Token string `json:"token,omitempty"`
	// RID is the X-Request-Id of the HTTP request that caused the event
	// (submits and cancels), linking the durable record back to access
	// logs and client traces.
	RID string `json:"rid,omitempty"`
	// Tenant and Priority ride on submitted and checkpoint events
	// (schema v2): the normalized owner and priority class, so fair-
	// share state and per-tenant records replay across restarts. Both
	// are omitempty — legacy (v1) events carry neither, their hash
	// chains re-derive unchanged, and replay folds them into the
	// default tenant.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`

	// Hash is the event's provenance chain hash: SHA-256 over the
	// previous event's hash and this event's canonical JSON (with Hash
	// itself cleared). The first event of a chain hashes against "".
	Hash string `json:"hash,omitempty"`
	// Root rides on sealed and checkpoint events: the Merkle root over
	// the job's event-hash leaves.
	Root string `json:"root,omitempty"`

	// Checkpoint-only fields: the collapsed terminal record.
	State     JobState   `json:"state,omitempty"`
	Submitted *time.Time `json:"submitted_at,omitempty"`
	Started   *time.Time `json:"started_at,omitempty"`
	// Leaves are the original chain's event hashes, preserved so
	// inclusion proofs keep verifying after the raw events are gone.
	Leaves []string `json:"leaves,omitempty"`
}

// eventHash computes an event's chain hash: SHA-256 over the previous
// hash, a separator, and the event's canonical JSON with Hash cleared.
// encoding/json marshals struct fields in declaration order and map
// keys sorted, so the byte stream is deterministic and the verifier
// can re-derive it from a parsed line.
func eventHash(prev string, ev journalEvent) (string, error) {
	ev.Hash = ""
	b, err := json.Marshal(ev)
	if err != nil {
		return "", fmt.Errorf("service: hashing journal event: %w", err)
	}
	h := sha256.New()
	io.WriteString(h, prev)
	h.Write([]byte{'\n'})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// provChain is one job's provenance state: the hashes of its events in
// order (the Merkle leaves) and the chain head.
type provChain struct {
	leaves []string // event hashes in append order; excludes the sealed/checkpoint hash
	last   string   // chain head: hash of the job's latest event (sealed/checkpoint included)
	root   string   // Merkle root over leaves, set once sealed
	sealed bool
}

// clone deep-copies the chain so staged appends can mutate freely and
// commit only after the write is durable.
func (c *provChain) clone() *provChain {
	cp := *c
	cp.leaves = append([]string(nil), c.leaves...)
	return &cp
}

// hasLeaf reports whether h is already one of the chain's leaves —
// how replay tolerates the duplicate events a crash mid-compaction
// leaves behind (raw segments plus the checkpoint that replaces them).
func (c *provChain) hasLeaf(h string) bool {
	for _, l := range c.leaves {
		if l == h {
			return true
		}
	}
	return false
}

// journal is the segmented, per-batch-fsynced job event log.
type journal struct {
	mu           sync.Mutex
	dir          string
	blobs        blob.Store
	segmentBytes int64
	inlineLimit  int
	f            *os.File // active segment, opened for append
	seqs         []uint64 // existing segment numbers, ascending; last is active
	size         int64    // active segment's byte length
	prov         map[string]*provChain
	refs         map[string]int // blob hash → journaled reference count
	// onAppend, when set, observes each batch: event count, bytes
	// written, and the fsync's duration. It must be cheap and
	// non-blocking (called under jl.mu).
	onAppend func(events, bytes int, fsync time.Duration)
	// onRotate, when set, observes each segment rotation.
	onRotate func()
	// compactMu serializes compactions (see compact.go).
	compactMu sync.Mutex
}

// segmentName formats a segment file name; the fixed-width sequence
// keeps lexical and numeric order identical.
func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%010d%s", segmentPrefix, seq, segmentSuffix)
}

// parseSegmentSeq extracts the sequence number from a segment file
// name; ok is false for anything else.
func parseSegmentSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the existing segment sequence numbers, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: listing state dir: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegmentSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, k int) bool { return seqs[i] < seqs[k] })
	return seqs, nil
}

// sweepStateTemps removes *.tmp stragglers in the state dir's top
// level: cache-snapshot and checkpoint-segment temp files abandoned by
// a crash mid-write. (The blob store sweeps its own temps on Open.)
// Nothing can be mid-write when the journal opens, so age does not
// matter here. Older builds created snapshot temps named
// "caches.snap.tmp-*", so match ".tmp" anywhere, not just as a suffix.
func sweepStateTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.Contains(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// syncDir fsyncs a directory so a freshly created or renamed entry in
// it survives power loss, not just process death. Best-effort on
// filesystems that reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}

// openJournal opens the segmented journal in dir, returning the raw
// event stream so the caller replays it without a second read. It
// sweeps crash-leftover temp files, migrates a legacy single-file
// journal into segment 1, rebuilds the provenance chains and blob
// reference counts from the events, and opens the highest segment for
// appending.
func openJournal(dir string, blobs blob.Store, segmentBytes int64, inlineLimit int) (*journal, []journalEvent, error) {
	sweepStateTemps(dir)
	if segmentBytes <= 0 {
		segmentBytes = defaultSegmentBytes
	}
	if inlineLimit == 0 {
		inlineLimit = defaultInlineLimit
	}
	// Migrate a pre-segmentation journal by rename: its events become
	// segment 1 and compact away like any other sealed segment.
	legacy := filepath.Join(dir, legacyJournalName)
	if _, err := os.Stat(legacy); err == nil {
		if err := os.Rename(legacy, filepath.Join(dir, segmentName(1))); err != nil {
			return nil, nil, fmt.Errorf("service: migrating legacy journal: %w", err)
		}
		syncDir(dir)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(seqs) == 0 {
		seqs = []uint64{1}
	}
	events, err := readSegments(dir, seqs)
	if err != nil {
		return nil, nil, err
	}
	jl := &journal{
		dir:          dir,
		blobs:        blobs,
		segmentBytes: segmentBytes,
		inlineLimit:  inlineLimit,
		seqs:         seqs,
		prov:         make(map[string]*provChain),
		refs:         make(map[string]int),
	}
	for _, ev := range events {
		jl.absorb(ev)
	}
	active := filepath.Join(dir, segmentName(seqs[len(seqs)-1]))
	f, err := os.OpenFile(active, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: opening journal segment: %w", err)
	}
	// Persist the directory entry too: an acked submit must survive
	// power loss even when it was the journal's first event.
	syncDir(dir)
	jl.f = f
	if st, err := f.Stat(); err == nil {
		jl.size = st.Size()
	}
	return jl, events, nil
}

// absorb folds one replayed event into the provenance chains and blob
// reference counts. Duplicate events (the crash-mid-compaction window
// leaves raw segments alongside the checkpoint that replaces them) are
// recognized by hash and counted once.
func (jl *journal) absorb(ev journalEvent) {
	// Every line on disk pins its refs, duplicates included: refs[h] is
	// the count of journal lines referencing h, which compaction's
	// line-for-line delta keeps exact. (A checkpoint restating raw
	// events still left behind by an interrupted compaction references
	// the same summary blob as the raw done event — two lines, count 2 —
	// and its spilled request blob may be referenced by no other line.)
	jl.addRefs(ev)
	if ev.Kind == evCheckpoint {
		// The checkpoint is the canonical chain now; whatever raw events
		// preceded it carried the same leaves.
		jl.prov[ev.Job] = &provChain{
			leaves: append([]string(nil), ev.Leaves...),
			last:   ev.Hash,
			root:   ev.Root,
			sealed: true,
		}
		return
	}
	if ev.Hash == "" {
		return // pre-provenance (migrated legacy) event: no chain
	}
	c := jl.prov[ev.Job]
	if c == nil {
		c = &provChain{}
		jl.prov[ev.Job] = c
	}
	if ev.Kind == evSealed {
		if !c.sealed || c.last != ev.Hash { // duplicate-tolerant
			c.root = ev.Root
			c.sealed = true
			c.last = ev.Hash
		}
		return
	}
	if c.hasLeaf(ev.Hash) {
		return // duplicate from a crash-interrupted compaction
	}
	c.leaves = append(c.leaves, ev.Hash)
	c.last = ev.Hash
}

// addRefs counts an event's blob references for GC pinning.
func (jl *journal) addRefs(ev journalEvent) {
	if ev.ReqRef != nil {
		jl.refs[ev.ReqRef.SHA256]++
	}
	if ev.SummaryRef != nil {
		jl.refs[ev.SummaryRef.SHA256]++
	}
}

// hasRef reports whether any journaled event references the blob —
// the mark phase of blob GC.
func (jl *journal) hasRef(hash string) bool {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.refs[hash] > 0
}

// segmentCount reports how many segment files exist (for the metrics
// exposition).
func (jl *journal) segmentCount() int {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return len(jl.seqs)
}

// sizeBytes reports the active segment's length.
func (jl *journal) sizeBytes() int64 {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.size
}

// append writes one event as a JSON line and fsyncs it, so an event
// that has been acknowledged (e.g. a submit that returned an ID)
// survives an immediate crash.
func (jl *journal) append(ev journalEvent) error {
	return jl.appendBatch([]journalEvent{ev})
}

// appendBatch writes several events as JSON lines under a single
// fsync. The lease-expiry watchdog journals every requeue of a sweep
// this way — after a restart re-arms many dead workers' leases with
// the same TTL, they all lapse on one tick, and per-event fsyncs there
// would stall the scheduler mutex for the whole run of writes.
//
// Each event is spilled (payloads above InlineLimit move to the blob
// store), chained (Hash set from the job's previous event), and — when
// terminal — followed by an auto-appended sealed event carrying the
// Merkle root over the job's event hashes. Chain state and blob
// reference counts commit only after the fsync succeeds, so a failed
// append leaves the in-memory provenance matching the disk.
func (jl *journal) appendBatch(events []journalEvent) error {
	if len(events) == 0 {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return fmt.Errorf("service: journal is closed")
	}
	var buf []byte
	count := 0
	staged := make(map[string]*provChain)
	var stagedRefs []journalEvent
	chainOf := func(job string) *provChain {
		if c := staged[job]; c != nil {
			return c
		}
		c := &provChain{}
		if cur := jl.prov[job]; cur != nil {
			c = cur.clone()
		}
		staged[job] = c
		return c
	}
	appendLine := func(ev journalEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("service: encoding journal event: %w", err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
		count++
		stagedRefs = append(stagedRefs, ev)
		return nil
	}
	for _, ev := range events {
		if err := jl.spill(&ev); err != nil {
			return err
		}
		c := chainOf(ev.Job)
		h, err := eventHash(c.last, ev)
		if err != nil {
			return err
		}
		ev.Hash = h
		c.leaves = append(c.leaves, h)
		c.last = h
		if err := appendLine(ev); err != nil {
			return err
		}
		if ev.Kind.terminal() && !c.sealed {
			leaves, err := decodeLeaves(c.leaves)
			if err != nil {
				return err
			}
			seal := journalEvent{
				Kind: evSealed,
				Job:  ev.Job,
				Time: ev.Time,
				Root: hex.EncodeToString(merkle.Root(leaves)),
			}
			if seal.Hash, err = eventHash(c.last, seal); err != nil {
				return err
			}
			c.last = seal.Hash
			c.root = seal.Root
			c.sealed = true
			if err := appendLine(seal); err != nil {
				return err
			}
		}
	}
	// Rotate before writing so a batch never splits across segments —
	// compaction and provenance both rely on a job's terminal and
	// sealed events landing in the same segment.
	if jl.size > 0 && jl.size+int64(len(buf)) > jl.segmentBytes {
		if err := jl.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := jl.f.Write(buf); err != nil {
		return fmt.Errorf("service: appending journal event: %w", err)
	}
	start := time.Now()
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("service: syncing journal: %w", err)
	}
	jl.size += int64(len(buf))
	for job, c := range staged {
		jl.prov[job] = c
	}
	for _, ev := range stagedRefs {
		jl.addRefs(ev)
	}
	if jl.onAppend != nil {
		jl.onAppend(count, len(buf), time.Since(start))
	}
	return nil
}

// spill moves payloads above InlineLimit to the blob store, replacing
// them with refs. A negative InlineLimit disables spilling.
func (jl *journal) spill(ev *journalEvent) error {
	if jl.inlineLimit < 0 || jl.blobs == nil {
		return nil
	}
	if ev.Req != nil {
		b, err := json.Marshal(ev.Req)
		if err != nil {
			return fmt.Errorf("service: encoding submit request: %w", err)
		}
		if len(b) > jl.inlineLimit {
			ref, err := jl.blobs.Put(b)
			if err != nil {
				return fmt.Errorf("service: spilling submit request: %w", err)
			}
			ev.Req, ev.ReqRef = nil, &ref
		}
	}
	if ev.Summary != nil {
		b, err := json.Marshal(ev.Summary)
		if err != nil {
			return fmt.Errorf("service: encoding result summary: %w", err)
		}
		if len(b) > jl.inlineLimit {
			ref, err := jl.blobs.Put(b)
			if err != nil {
				return fmt.Errorf("service: spilling result summary: %w", err)
			}
			ev.Summary, ev.SummaryRef = nil, &ref
		}
	}
	return nil
}

// decodeLeaves converts hex chain hashes to Merkle leaves.
func decodeLeaves(hexes []string) ([][]byte, error) {
	leaves := make([][]byte, len(hexes))
	for i, s := range hexes {
		b, err := hex.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("service: malformed chain hash %q: %w", s, err)
		}
		leaves[i] = b
	}
	return leaves, nil
}

// rotateLocked seals the active segment and opens the next one.
// Callers hold jl.mu.
func (jl *journal) rotateLocked() error {
	next := jl.seqs[len(jl.seqs)-1] + 1
	f, err := os.OpenFile(filepath.Join(jl.dir, segmentName(next)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("service: rotating journal segment: %w", err)
	}
	syncDir(jl.dir)
	_ = jl.f.Close()
	jl.f = f
	jl.seqs = append(jl.seqs, next)
	jl.size = 0
	if jl.onRotate != nil {
		jl.onRotate()
	}
	return nil
}

// close closes the journal file; later appends fail.
func (jl *journal) close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	err := jl.f.Close()
	jl.f = nil
	return err
}

// readSegments parses the given segments' events in order. A line that
// does not parse — a write torn by the crash the journal exists to
// survive — is skipped rather than failing the whole replay. A missing
// segment file is empty (the journal may never have been written).
func readSegments(dir string, seqs []uint64) ([]journalEvent, error) {
	var events []journalEvent
	for _, seq := range seqs {
		f, err := os.Open(filepath.Join(dir, segmentName(seq)))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("service: reading journal segment: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
		for sc.Scan() {
			var ev journalEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil || ev.Job == "" {
				continue
			}
			events = append(events, ev)
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("service: scanning journal segment: %w", err)
		}
	}
	return events, nil
}

// readJournal parses every event in the state dir's journal, in
// segment order — the offline entry point (verifier, tests).
func readJournal(dir string) ([]journalEvent, error) {
	seqs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return readSegments(dir, seqs)
}

// jobNumber extracts the numeric suffix of a "job-%06d" ID; ok is
// false for foreign IDs.
func jobNumber(id string) (int, bool) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	return n, err == nil
}

// replayJournal reduces the event stream to restorable job records in
// submission order, plus the highest job number seen (so a reopened
// scheduler continues the ID sequence without collisions). Jobs left
// non-terminal by the stream come back StateQueued with a fresh cancel
// channel, ready to re-enqueue — except jobs whose last event is a
// lease, which come back StateLeased with the holder preserved so the
// worker can re-attach across the restart; duplicate started events (a
// job interrupted once already) simply overwrite the start time.
//
// Spilled SubmitRequests are resolved eagerly through blobs (listings
// and reruns need Target and Seed); spilled summaries stay refs and
// resolve lazily on the first Result call — cold-start replay cost
// scales with event count, not artifact bytes. A checkpoint event
// restores the whole terminal record in one step.
func replayJournal(events []journalEvent, blobs blob.Store) (jobs []*job, maxID int) {
	byID := make(map[string]*job)
	note := func(j *job) {
		// Upsert: in the crash-mid-compaction window the raw events
		// replay first and the checkpoint re-states the same record.
		if old := byID[j.id]; old != nil {
			for i, e := range jobs {
				if e == old {
					jobs[i] = j
					break
				}
			}
		} else {
			jobs = append(jobs, j)
		}
		byID[j.id] = j
		if n, ok := jobNumber(j.id); ok && n > maxID {
			maxID = n
		}
	}
	// tenantOf resolves a replayed job's owner: the journaled tenant
	// field (schema v2), else the tenant inside the retained request,
	// else the default tenant (legacy v1 events carry neither).
	tenantOf := func(ev *journalEvent, req *SubmitRequest) string {
		if ev.Tenant != "" {
			return ev.Tenant
		}
		return normalizeTenant(req.Tenant)
	}
	resolveReq := func(ev *journalEvent) *SubmitRequest {
		if ev.Req != nil {
			return ev.Req
		}
		if ev.ReqRef == nil || blobs == nil {
			return nil
		}
		data, err := blobs.Get(*ev.ReqRef)
		if err != nil {
			return nil // unreadable artifact: the job is unrecoverable, skip it
		}
		var req SubmitRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return nil
		}
		return &req
	}
	for i := range events {
		ev := events[i]
		if ev.Kind == evCheckpoint {
			req := resolveReq(&ev)
			if req == nil {
				continue
			}
			j := &job{
				id:          ev.Job,
				tenant:      tenantOf(&ev, req),
				req:         *req,
				state:       ev.State,
				finished:    ev.Time,
				err:         ev.Error,
				leaseWorker: ev.Worker,
				cancel:      make(chan struct{}),
			}
			if ev.Submitted != nil {
				j.submitted = *ev.Submitted
			}
			if ev.Started != nil {
				j.started = *ev.Started
			}
			if ev.State == StateDone {
				j.progress = 1
				if ev.Summary != nil {
					j.result = &jobResult{summary: *ev.Summary}
				} else if ev.SummaryRef != nil {
					j.summaryRef = ev.SummaryRef
				}
			}
			note(j)
			continue
		}
		j := byID[ev.Job]
		if j == nil {
			if ev.Kind != evSubmitted {
				continue // event for a job whose submission was lost
			}
			req := resolveReq(&ev)
			if req == nil {
				continue
			}
			note(&job{
				id:        ev.Job,
				tenant:    tenantOf(&ev, req),
				req:       *req,
				state:     StateQueued,
				submitted: ev.Time,
				cancel:    make(chan struct{}),
			})
			continue
		}
		if ev.Worker != "" {
			j.leaseWorker = ev.Worker
		}
		switch ev.Kind {
		case evStarted:
			j.started = ev.Time
		case evLeased:
			j.state = StateLeased
			j.leaseToken = ev.Token
			j.started = ev.Time
		case evRequeued:
			j.state = StateQueued
			j.leaseWorker = ""
			j.leaseToken = ""
			j.started = time.Time{}
		case evDone:
			j.state = StateDone //impeccable:unjournaled replay applies states read from the journal itself
			j.finished = ev.Time
			j.progress = 1
			if ev.Summary != nil {
				j.result = &jobResult{summary: *ev.Summary}
			} else if ev.SummaryRef != nil {
				j.summaryRef = ev.SummaryRef
			}
		case evFailed:
			j.state = StateFailed //impeccable:unjournaled replay applies states read from the journal itself
			j.finished = ev.Time
			j.err = ev.Error
		case evCanceled:
			j.state = StateCanceled //impeccable:unjournaled replay applies states read from the journal itself
			j.finished = ev.Time
		}
	}
	// Interrupted jobs rerun from scratch: reset the stale start time so
	// their snapshots read as queued until a worker re-pops them. Leased
	// jobs keep theirs — the remote worker may still be running and
	// re-attach after the restart (restore re-arms the lease TTL).
	for _, j := range jobs {
		if !j.state.Terminal() && j.state != StateLeased {
			j.started = time.Time{}
		}
	}
	// Checkpoint events replay before the raw events of jobs that
	// outlived compaction, so encounter order is not submission order;
	// job numbers are.
	sort.Slice(jobs, func(i, k int) bool {
		ni, iok := jobNumber(jobs[i].id)
		nk, kok := jobNumber(jobs[k].id)
		if iok && kok {
			return ni < nk
		}
		return jobs[i].id < jobs[k].id
	})
	return jobs, maxID
}

// cacheSnapshot is the gob-encoded checkpoint of both shared caches.
type cacheSnapshot struct {
	Scores   []ScoreEntry
	Features []FeatureEntry
}

// snapshotManifest is what caches.snap holds now: the ref of the
// gob-encoded checkpoint blob. Keeping the (small) manifest at a fixed
// name and the (large) payload content-addressed means an unchanged
// cache costs nothing to re-checkpoint — same bytes, same hash, same
// blob.
type snapshotManifest struct {
	Blob    blob.Ref  `json:"blob"`
	SavedAt time.Time `json:"saved_at"`
}

// encodeSnapshot gob-encodes the caches deterministically: exports are
// walked shard by shard in whatever order the maps yield, so both
// slices are sorted before encoding — identical cache content must
// produce identical bytes for the content-addressed dedupe to work.
func encodeSnapshot(scores *ScoreCache, features *FeatureCache) ([]byte, error) {
	snap := cacheSnapshot{Scores: scores.Export(), Features: features.Export()}
	sort.Slice(snap.Scores, func(i, k int) bool {
		a, b := &snap.Scores[i], &snap.Scores[k]
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		for w := range a.FP {
			if a.FP[w] != b.FP[w] {
				return a.FP[w] < b.FP[w]
			}
		}
		return false
	})
	sort.Slice(snap.Features, func(i, k int) bool {
		return snap.Features[i].ID < snap.Features[k].ID
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("service: encoding cache snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// saveSnapshot checkpoints both caches: the gob payload goes to the
// blob store, and the manifest naming it is written atomically (temp
// file then rename), so a crash mid-snapshot leaves the previous
// checkpoint intact. Returns the payload's ref and whether the write
// was skipped because the cache content had not changed since prev.
func saveSnapshot(dir string, store blob.Store, scores *ScoreCache, features *FeatureCache, prev *blob.Ref) (blob.Ref, bool, error) {
	data, err := encodeSnapshot(scores, features)
	if err != nil {
		return blob.Ref{}, false, err
	}
	if prev != nil && prev.SHA256 == blob.SumHex(data) {
		return *prev, true, nil
	}
	ref, err := store.Put(data)
	if err != nil {
		return blob.Ref{}, false, fmt.Errorf("service: storing cache snapshot: %w", err)
	}
	mf, err := json.Marshal(snapshotManifest{Blob: ref, SavedAt: time.Now()})
	if err != nil {
		return blob.Ref{}, false, fmt.Errorf("service: encoding snapshot manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, snapshotName+"-*.tmp")
	if err != nil {
		return blob.Ref{}, false, fmt.Errorf("service: creating snapshot temp file: %w", err)
	}
	if _, err := tmp.Write(mf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return blob.Ref{}, false, fmt.Errorf("service: writing snapshot manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return blob.Ref{}, false, fmt.Errorf("service: syncing snapshot manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return blob.Ref{}, false, fmt.Errorf("service: closing snapshot manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snapshotName)); err != nil {
		os.Remove(tmp.Name())
		return blob.Ref{}, false, fmt.Errorf("service: installing snapshot manifest: %w", err)
	}
	syncDir(dir)
	return ref, false, nil
}

// loadSnapshot imports a previously saved checkpoint into the caches,
// returning the ref of the live snapshot blob (nil when there is
// none). A missing snapshot is a cold start, not an error; an
// unreadable manifest, blob or legacy file is also tolerated (the
// caches refill from real work) — durable job state lives in the
// journal, never here. Pre-manifest snapshots (raw gob at the manifest
// path) still load, so old state dirs stay warm across the upgrade.
func loadSnapshot(dir string, store blob.Store, scores *ScoreCache, features *FeatureCache) (*blob.Ref, error) {
	raw, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: opening cache snapshot: %w", err)
	}
	var snap cacheSnapshot
	var mf snapshotManifest
	if err := json.Unmarshal(raw, &mf); err == nil && mf.Blob.SHA256 != "" {
		data, err := store.Get(mf.Blob)
		if err != nil {
			return nil, nil // missing or corrupt blob: start cold
		}
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
			return nil, nil
		}
		scores.Import(snap.Scores)
		features.Import(snap.Features)
		ref := mf.Blob
		return &ref, nil
	}
	// Legacy format: the snapshot itself, gob-encoded at the fixed path.
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&snap); err != nil {
		return nil, nil // torn snapshot: start cold
	}
	scores.Import(snap.Scores)
	features.Import(snap.Features)
	return nil, nil
}
