package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"impeccable/internal/blob"
	"impeccable/internal/campaign"
)

// benchSummary fabricates a ResultSummary whose JSON sits below the
// default inline limit but is heavy enough that parsing it dominates
// an uncompacted replay. salt makes each job's summary distinct, so
// the content-addressed store cannot collapse them into one blob.
func benchSummary(salt int) ResultSummary {
	sum := ResultSummary{ScientificYield: float64(salt)}
	sum.Top = make([]campaign.TopComparison, 200)
	for i := range sum.Top {
		sum.Top[i] = campaign.TopComparison{
			MolID: uint64(salt*1000 + i),
			CG:    -7.5 - float64(i)/997,
			FG:    -8.1 - float64(i)/991,
			CGErr: 0.4, FGErr: 0.2,
			Truth: -8.0 - float64(salt)/1009,
		}
	}
	return sum
}

// terminalJobEvents is one finished job's raw event batch.
func terminalJobEvents(i int, sum ResultSummary) []journalEvent {
	id := fmt.Sprintf("job-%06d", i)
	req := smallReq()
	req.Seed = uint64(i)
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second)
	return []journalEvent{
		{Kind: evSubmitted, Job: id, Time: t0, Req: &req},
		{Kind: evStarted, Job: id, Time: t0.Add(time.Second)},
		{Kind: evDone, Job: id, Time: t0.Add(2 * time.Second), Summary: &sum},
	}
}

// fillJournal appends n finished jobs in batches and returns the store.
func fillJournal(tb testing.TB, dir string, segmentBytes int64, inlineLimit, n int) blob.Store {
	tb.Helper()
	store, err := blob.Open(filepath.Join(dir, blobDirName))
	if err != nil {
		tb.Fatal(err)
	}
	jl, _, err := openJournal(dir, store, segmentBytes, inlineLimit)
	if err != nil {
		tb.Fatal(err)
	}
	// Small batches so rotation (checked once per batch) actually
	// triggers at the tiny segment sizes the tests use.
	const batch = 5
	for lo := 1; lo <= n; lo += batch {
		var evs []journalEvent
		for i := lo; i <= n && i < lo+batch; i++ {
			evs = append(evs, terminalJobEvents(i, benchSummary(i))...)
		}
		if err := jl.appendBatch(evs); err != nil {
			tb.Fatal(err)
		}
	}
	if err := jl.close(); err != nil {
		tb.Fatal(err)
	}
	return store
}

// jobDigest projects a replayed job down to the fields a restart must
// preserve.
type jobDigest struct {
	id, state, err string
	seed           uint64
	yield          float64
}

func digestJobs(t *testing.T, jobs []*job, store blob.Store) []jobDigest {
	t.Helper()
	var out []jobDigest
	for _, j := range jobs {
		d := jobDigest{id: j.id, state: string(j.state), err: j.err, seed: j.req.Seed}
		switch {
		case j.result != nil:
			d.yield = j.result.summary.ScientificYield
		case j.summaryRef != nil:
			data, err := store.Get(*j.summaryRef)
			if err != nil {
				t.Fatalf("job %s: summary blob unreadable: %v", j.id, err)
			}
			var sum ResultSummary
			if err := json.Unmarshal(data, &sum); err != nil {
				t.Fatal(err)
			}
			d.yield = sum.ScientificYield
		}
		out = append(out, d)
	}
	return out
}

// TestCompactionRewritesSealedSegments drives the journal directly:
// many finished jobs across many segments collapse into one checkpoint
// segment, and replay before and after compaction agrees.
func TestCompactionRewritesSealedSegments(t *testing.T) {
	dir := t.TempDir()
	store := fillJournal(t, dir, 8<<10, 1<<10, 40)
	jl, events, err := openJournal(dir, store, 8<<10, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if n := jl.segmentCount(); n < 4 {
		t.Fatalf("only %d segments before compaction; the test needs rotations", n)
	}
	preJobs, preMax := replayJournal(events, store)
	pre := digestJobs(t, preJobs, store)

	st, err := jl.compact(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.segments < 3 || st.checkpointed == 0 {
		t.Fatalf("compaction stats = %+v, want several segments and checkpoints", st)
	}
	if n := jl.segmentCount(); n > 2 {
		t.Fatalf("%d segments after compaction, want at most 2", n)
	}
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}

	jl2, events2, err := openJournal(dir, store, 8<<10, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.close()
	postJobs, postMax := replayJournal(events2, store)
	post := digestJobs(t, postJobs, store)
	if !reflect.DeepEqual(pre, post) {
		t.Fatalf("replay diverged across compaction:\npre:  %+v\npost: %+v", pre, post)
	}
	if preMax != postMax {
		t.Fatalf("maxID diverged: %d vs %d", preMax, postMax)
	}
	if r, err := VerifyStateDir(dir); err != nil || !r.Ok() {
		t.Fatalf("verify after compaction: err=%v problems=%v", err, r.Problems)
	}
}

// TestCompactionHonorsRetention: jobs the scheduler has pruned past
// MaxJobRecords leave the journal at compaction, and their orphaned
// artifacts become sweepable while retained jobs' artifacts survive.
func TestCompactionHonorsRetention(t *testing.T) {
	dir := t.TempDir()
	store := fillJournal(t, dir, 4<<10, 1<<10, 12)
	jl, _, err := openJournal(dir, store, 4<<10, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Retain only the newest 4 jobs — the scheduler's prune horizon.
	retained := map[string]bool{}
	for i := 9; i <= 12; i++ {
		retained[fmt.Sprintf("job-%06d", i)] = true
	}
	st, err := jl.compact(func(id string) bool { return retained[id] })
	if err != nil {
		t.Fatal(err)
	}
	if st.dropped == 0 {
		t.Fatalf("compaction stats = %+v, want dropped jobs", st)
	}
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}

	jl2, events, err := openJournal(dir, store, 4<<10, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.close()
	jobs, maxID := replayJournal(events, store)
	var ids []string
	for _, j := range jobs {
		ids = append(ids, j.id)
	}
	var want []string
	for i := 9; i <= 12; i++ {
		want = append(want, fmt.Sprintf("job-%06d", i))
	}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("post-prune listing = %v, want %v", ids, want)
	}
	// The ID high-water mark survives pruning: new submissions must not
	// collide with pruned history.
	if maxID != 12 {
		t.Fatalf("maxID = %d, want 12", maxID)
	}

	// Age every blob past the GC grace window, then sweep with the
	// journal's live set: pruned jobs' artifacts go, retained stay.
	agBlobs(t, dir)
	if _, _, err := store.Sweep(jl2.hasRef); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.summaryRef != nil {
			if _, err := store.Get(*j.summaryRef); err != nil {
				t.Fatalf("retained job %s lost its summary to GC: %v", j.id, err)
			}
		}
	}
	if st := store.Stats(); st.Objects > int64(2*len(jobs)) {
		t.Fatalf("sweep left %d objects for %d retained jobs", st.Objects, len(jobs))
	}
}

// agBlobs backdates every blob object's mtime past the GC grace window.
func agBlobs(t *testing.T, stateDir string) {
	t.Helper()
	old := time.Now().Add(-time.Hour)
	err := filepath.Walk(filepath.Join(stateDir, blobDirName), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		return os.Chtimes(path, old, old)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashDuringCompaction kills the compactor in its vulnerable
// window — checkpoint segment installed, old raw segments not yet
// deleted — and requires the reopened journal to replay to the exact
// same state with no loss, no duplication, and every artifact intact.
func TestCrashDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	store := fillJournal(t, dir, 4<<10, 1<<10, 20)
	jl, events, err := openJournal(dir, store, 4<<10, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	preJobs, preMax := replayJournal(events, store)
	pre := digestJobs(t, preJobs, store)
	preSegs := jl.segmentCount()
	if preSegs < 3 {
		t.Fatalf("only %d segments; the crash window needs raw segments to leave behind", preSegs)
	}

	compactInterrupt = func() bool { return true }
	defer func() { compactInterrupt = nil }()
	if _, err := jl.compact(nil); err != nil {
		t.Fatal(err)
	}
	_ = jl.close()

	// The crash left the checkpoint segment alongside the raw segments
	// it restates: every checkpointed job now appears twice on disk.
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != preSegs {
		t.Fatalf("%d segments after interrupted compaction, want the original %d", len(seqs), preSegs)
	}

	compactInterrupt = nil
	jl2, events2, err := openJournal(dir, store, 4<<10, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	jobs2, max2 := replayJournal(events2, store)
	post := digestJobs(t, jobs2, store)
	if !reflect.DeepEqual(pre, post) {
		t.Fatalf("replay diverged across interrupted compaction:\npre:  %+v\npost: %+v", pre, post)
	}
	if preMax != max2 {
		t.Fatalf("maxID diverged: %d vs %d", preMax, max2)
	}
	// The verifier tolerates the duplicate window (dedup by hash).
	if r, err := VerifyStateDir(dir); err != nil || !r.Ok() {
		t.Fatalf("verify after interrupted compaction: err=%v problems=%v", err, r.Problems)
	}

	// GC in the crash window must keep every referenced blob: sweep with
	// everything aged past the grace window, then resolve every ref.
	agBlobs(t, dir)
	if _, _, err := store.Sweep(jl2.hasRef); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs2 {
		if j.summaryRef != nil {
			if _, err := store.Get(*j.summaryRef); err != nil {
				t.Fatalf("job %s summary lost to GC in crash window: %v", j.id, err)
			}
		}
	}

	// The next compaction finishes the interrupted one.
	if _, err := jl2.compact(nil); err != nil {
		t.Fatal(err)
	}
	if n := jl2.segmentCount(); n > 2 {
		t.Fatalf("%d segments after resumed compaction, want at most 2", n)
	}
	if err := jl2.close(); err != nil {
		t.Fatal(err)
	}
	jl3, events3, err := openJournal(dir, store, 4<<10, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer jl3.close()
	jobs3, _ := replayJournal(events3, store)
	if final := digestJobs(t, jobs3, store); !reflect.DeepEqual(pre, final) {
		t.Fatalf("replay diverged after resumed compaction:\npre:   %+v\nfinal: %+v", pre, final)
	}
}

// BenchmarkReplayCold measures the cold-start path — read every
// segment, reduce to job records — over 1000 terminal jobs, before and
// after compaction. Compaction wins by parsing one lean checkpoint
// line per job and leaving result ledgers as lazy blob refs.
func BenchmarkReplayCold(b *testing.B) {
	for _, mode := range []string{"uncompacted", "compacted"} {
		b.Run(mode, func(b *testing.B) {
			dir := b.TempDir()
			store := fillJournal(b, dir, 1<<20, 0, 1000)
			if mode == "compacted" {
				jl, _, err := openJournal(dir, store, 1<<20, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := jl.compact(nil); err != nil {
					b.Fatal(err)
				}
				if err := jl.close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				events, err := readJournal(dir)
				if err != nil {
					b.Fatal(err)
				}
				jobs, maxID := replayJournal(events, store)
				if len(jobs) != 1000 || maxID != 1000 {
					b.Fatalf("replayed %d jobs (maxID %d), want 1000", len(jobs), maxID)
				}
			}
		})
	}
}
