package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams overlapped %d times", same)
	}
}

func TestNewFromStreams(t *testing.T) {
	a := NewFrom(5, 1)
	b := NewFrom(5, 2)
	c := NewFrom(5, 1)
	if a.Uint64() != c.Uint64() {
		t.Fatal("NewFrom not deterministic for same (seed,id)")
	}
	if a.Uint64() == b.Uint64() {
		t.Fatal("NewFrom streams with different ids collided")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKDistinct(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(100)
		k := 1 + r.Intn(n)
		s := r.SampleK(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceWeighted(t *testing.T) {
	r := New(21)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[r.Choice(w)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight index selected %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice over zero weights did not panic")
		}
	}()
	New(1).Choice([]float64{0, 0})
}

func TestRange(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range(-3,5) = %v", v)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
