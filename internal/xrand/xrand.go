// Package xrand provides a small, fast, deterministic and splittable
// pseudo-random number generator used throughout the IMPECCABLE
// reproduction. Every stochastic component (molecule generation, docking
// search, MD thermostat, neural-network initialization, schedulers) draws
// from an xrand.RNG seeded from the experiment configuration, so that all
// tables and figures regenerate bit-identically.
//
// The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit
// state advanced by a Weyl sequence and mixed by a finalizer. It passes
// BigCrush, has period 2^64, and — crucially for a parallel campaign —
// supports O(1) splitting into statistically independent streams, which lets
// each task, replica, or worker own a private stream derived from a parent
// seed without coordination.
package xrand

import "math"

// RNG is a splittable SplitMix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0; prefer New.
type RNG struct {
	state uint64
	// gauss caches the second variate of the Box-Muller pair.
	gauss    float64
	hasGauss bool
}

// golden is the SplitMix64 Weyl increment (2^64 / phi).
const golden = 0x9E3779B97F4A7C15

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// NewFrom derives a child generator from a parent seed and a stream
// identifier. Distinct ids yield statistically independent streams.
func NewFrom(seed uint64, id uint64) *RNG {
	return New(mix64(seed ^ mix64(id+golden)))
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	return mix64(r.state)
}

// Split returns a new generator whose stream is independent of r's
// continued output. r itself advances by one step.
func (r *RNG) Split() *RNG {
	return New(mix64(r.Uint64() + golden))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate via Box-Muller, with the
// spare variate cached so consecutive calls cost one transform per pair.
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Norm returns a normal variate with the given mean and standard deviation.
func (r *RNG) Norm(mean, std float64) float64 {
	return mean + std*r.NormFloat64()
}

// ExpFloat64 returns an exponentially distributed variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle applies a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Choice returns a uniformly selected index weighted by w (all w >= 0, at
// least one positive). It panics on an empty or all-zero weight vector.
func (r *RNG) Choice(w []float64) int {
	var total float64
	for _, x := range w {
		if x < 0 {
			panic("xrand: negative weight")
		}
		total += x
	}
	if total <= 0 {
		panic("xrand: Choice over zero total weight")
	}
	t := r.Float64() * total
	for i, x := range w {
		t -= x
		if t < 0 {
			return i
		}
	}
	return len(w) - 1
}

// SampleK reservoir-samples k distinct indices from [0, n). If k >= n it
// returns the identity permutation of n indices (shuffled).
func (r *RNG) SampleK(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	res := make([]int, k)
	for i := 0; i < k; i++ {
		res[i] = i
	}
	for i := k; i < n; i++ {
		j := r.Intn(i + 1)
		if j < k {
			res[j] = i
		}
	}
	return res
}
