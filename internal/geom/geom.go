// Package geom provides the small dense 3-D linear algebra used by the
// docking engine, the molecular-dynamics substrate and the 3D-AAE point
// cloud models: vectors, quaternions, rigid transforms and RMSD with
// optimal superposition.
package geom

import "math"

// Vec3 is a 3-D vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared distance between v and w.
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Norm2() }

// Unit returns v normalized to length 1; the zero vector maps to (1,0,0)
// so callers never receive NaN axes.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{1, 0, 0}
	}
	return v.Scale(1 / n)
}

// Quat is a rotation quaternion (W scalar part, X/Y/Z vector part).
type Quat struct{ W, X, Y, Z float64 }

// IdentityQuat returns the identity rotation.
func IdentityQuat() Quat { return Quat{W: 1} }

// AxisAngle builds a quaternion rotating by angle (radians) about axis.
func AxisAngle(axis Vec3, angle float64) Quat {
	a := axis.Unit()
	s, c := math.Sincos(angle / 2)
	return Quat{W: c, X: a.X * s, Y: a.Y * s, Z: a.Z * s}
}

// Mul composes rotations: (q.Mul(p)).Rotate(v) == q.Rotate(p.Rotate(v)).
func (q Quat) Mul(p Quat) Quat {
	return Quat{
		W: q.W*p.W - q.X*p.X - q.Y*p.Y - q.Z*p.Z,
		X: q.W*p.X + q.X*p.W + q.Y*p.Z - q.Z*p.Y,
		Y: q.W*p.Y - q.X*p.Z + q.Y*p.W + q.Z*p.X,
		Z: q.W*p.Z + q.X*p.Y - q.Y*p.X + q.Z*p.W,
	}
}

// Normalize returns q scaled to unit norm; a zero quaternion maps to the
// identity rotation.
func (q Quat) Normalize() Quat {
	n := math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
	if n == 0 {
		return IdentityQuat()
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Conj returns the conjugate (inverse rotation for unit quaternions).
func (q Quat) Conj() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Rotate applies the rotation q to v.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = q * (0,v) * q^-1, expanded.
	u := Vec3{q.X, q.Y, q.Z}
	uv := u.Cross(v)
	uuv := u.Cross(uv)
	return v.Add(uv.Scale(2 * q.W)).Add(uuv.Scale(2))
}

// RotateAbout rotates point p by angle about the axis through origin o with
// direction axis.
func RotateAbout(p, o, axis Vec3, angle float64) Vec3 {
	q := AxisAngle(axis, angle)
	return q.Rotate(p.Sub(o)).Add(o)
}

// Centroid returns the mean of the points; it returns the zero vector for
// an empty slice.
func Centroid(pts []Vec3) Vec3 {
	var c Vec3
	if len(pts) == 0 {
		return c
	}
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// RMSD returns the root-mean-square deviation between two equal-length
// point sets without superposition. It panics if the lengths differ.
func RMSD(a, b []Vec3) float64 {
	if len(a) != len(b) {
		panic("geom: RMSD length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		s += a[i].Dist2(b[i])
	}
	return math.Sqrt(s / float64(len(a)))
}

// AlignedRMSD returns the RMSD of a onto b after removing the translation
// between their centroids and optimally rotating with the Kabsch algorithm.
func AlignedRMSD(a, b []Vec3) float64 {
	if len(a) != len(b) {
		panic("geom: AlignedRMSD length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	ca, cb := Centroid(a), Centroid(b)
	ac := make([]Vec3, len(a))
	bc := make([]Vec3, len(b))
	for i := range a {
		ac[i] = a[i].Sub(ca)
		bc[i] = b[i].Sub(cb)
	}
	r := Kabsch(ac, bc)
	var s float64
	for i := range ac {
		s += r.Apply(ac[i]).Dist2(bc[i])
	}
	return math.Sqrt(s / float64(len(ac)))
}

// Mat3 is a 3×3 matrix in row-major order.
type Mat3 [3][3]float64

// Apply returns M·v.
func (m Mat3) Apply(v Vec3) Vec3 {
	return Vec3{
		m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// MulM returns the matrix product m·n.
func (m Mat3) MulM(n Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				out[i][j] += m[i][k] * n[k][j]
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m Mat3) Transpose() Mat3 {
	var t Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			t[i][j] = m[j][i]
		}
	}
	return t
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// Kabsch computes the optimal rotation matrix aligning centered point set a
// onto centered point set b (both must already have zero centroid). The
// rotation is found from the SVD of the covariance matrix, computed here via
// Jacobi eigendecomposition of AᵀA, with the usual determinant correction to
// exclude reflections.
func Kabsch(a, b []Vec3) Mat3 {
	// Covariance H = Σ a_i b_iᵀ.
	var h Mat3
	for i := range a {
		av := [3]float64{a[i].X, a[i].Y, a[i].Z}
		bv := [3]float64{b[i].X, b[i].Y, b[i].Z}
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				h[r][c] += av[r] * bv[c]
			}
		}
	}
	u, s, v := svd3(h)
	_ = s
	// R = V diag(1,1,d) Uᵀ where d = sign(det(V Uᵀ)).
	d := v.MulM(u.Transpose()).Det()
	corr := Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, sign(d)}}
	return v.MulM(corr).MulM(u.Transpose())
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// svd3 computes a singular value decomposition H = U·diag(S)·Vᵀ of a 3×3
// matrix via Jacobi eigendecomposition of HᵀH (V, S²) followed by
// reconstruction of U.
func svd3(h Mat3) (u Mat3, s [3]float64, v Mat3) {
	hth := h.Transpose().MulM(h)
	eval, evec := jacobiEigen3(hth)
	// Sort eigenpairs descending.
	order := [3]int{0, 1, 2}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if eval[order[j]] > eval[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for c := 0; c < 3; c++ {
		k := order[c]
		s[c] = math.Sqrt(math.Max(eval[k], 0))
		for r := 0; r < 3; r++ {
			v[r][c] = evec[r][k]
		}
	}
	// U columns: u_c = H v_c / s_c; degenerate columns completed by
	// Gram-Schmidt against previous columns.
	for c := 0; c < 3; c++ {
		col := h.Apply(Vec3{v[0][c], v[1][c], v[2][c]})
		if s[c] > 1e-12 {
			col = col.Scale(1 / s[c])
		} else {
			col = orthoComplement(u, c)
		}
		u[0][c], u[1][c], u[2][c] = col.X, col.Y, col.Z
	}
	return u, s, v
}

// orthoComplement returns a unit vector orthogonal to the first c columns
// of m.
func orthoComplement(m Mat3, c int) Vec3 {
	basis := []Vec3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for _, cand := range basis {
		w := cand
		for k := 0; k < c; k++ {
			col := Vec3{m[0][k], m[1][k], m[2][k]}
			w = w.Sub(col.Scale(w.Dot(col)))
		}
		if w.Norm() > 1e-6 {
			return w.Unit()
		}
	}
	return Vec3{1, 0, 0}
}

// jacobiEigen3 diagonalizes a symmetric 3×3 matrix, returning eigenvalues
// and the matrix whose columns are the corresponding eigenvectors.
func jacobiEigen3(a Mat3) (eval [3]float64, evec Mat3) {
	evec = Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for sweep := 0; sweep < 50; sweep++ {
		// Largest off-diagonal element.
		p, q := 0, 1
		if math.Abs(a[0][2]) > math.Abs(a[p][q]) {
			p, q = 0, 2
		}
		if math.Abs(a[1][2]) > math.Abs(a[p][q]) {
			p, q = 1, 2
		}
		if math.Abs(a[p][q]) < 1e-14 {
			break
		}
		// Jacobi rotation zeroing a[p][q].
		theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
		t := sign(theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
		c := 1 / math.Sqrt(t*t+1)
		s := t * c
		var r Mat3
		for i := 0; i < 3; i++ {
			r[i][i] = 1
		}
		r[p][p], r[q][q] = c, c
		r[p][q], r[q][p] = s, -s
		a = r.Transpose().MulM(a).MulM(r)
		evec = evec.MulM(r)
	}
	eval = [3]float64{a[0][0], a[1][1], a[2][2]}
	return eval, evec
}
