package geom

import (
	"math"
	"testing"
	"testing/quick"

	"impeccable/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecOps(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Dot(w); got != 4-10+18 {
		t.Fatalf("Dot = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clamp(ax), clamp(ay), clamp(az)}
		b := Vec3{clamp(bx), clamp(by), clamp(bz)}
		c := a.Cross(b)
		return almost(c.Dot(a), 0, 1e-6) && almost(c.Dot(b), 0, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 100)
}

func TestUnitZeroVector(t *testing.T) {
	if got := (Vec3{}).Unit(); got != (Vec3{1, 0, 0}) {
		t.Fatalf("zero Unit = %v", got)
	}
}

func TestQuatRotatePreservesNorm(t *testing.T) {
	r := xrand.New(1)
	for i := 0; i < 200; i++ {
		axis := Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		q := AxisAngle(axis, r.Range(-6, 6))
		v := Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		if !almost(q.Rotate(v).Norm(), v.Norm(), 1e-9) {
			t.Fatalf("rotation changed norm: %v vs %v", q.Rotate(v).Norm(), v.Norm())
		}
	}
}

func TestQuatComposition(t *testing.T) {
	r := xrand.New(2)
	for i := 0; i < 100; i++ {
		q1 := AxisAngle(Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}, r.Range(-3, 3))
		q2 := AxisAngle(Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}, r.Range(-3, 3))
		v := Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		lhs := q1.Mul(q2).Rotate(v)
		rhs := q1.Rotate(q2.Rotate(v))
		if lhs.Dist(rhs) > 1e-9 {
			t.Fatalf("composition mismatch: %v vs %v", lhs, rhs)
		}
	}
}

func TestQuatConjInverse(t *testing.T) {
	q := AxisAngle(Vec3{1, 2, 3}, 1.1)
	v := Vec3{0.4, -0.2, 0.9}
	back := q.Conj().Rotate(q.Rotate(v))
	if back.Dist(v) > 1e-12 {
		t.Fatalf("conj did not invert rotation: %v", back)
	}
}

func TestAxisAngle90(t *testing.T) {
	q := AxisAngle(Vec3{0, 0, 1}, math.Pi/2)
	got := q.Rotate(Vec3{1, 0, 0})
	if got.Dist(Vec3{0, 1, 0}) > 1e-12 {
		t.Fatalf("90° z-rotation of x̂ = %v", got)
	}
}

func TestRotateAbout(t *testing.T) {
	// Rotate (2,0,0) about axis z through (1,0,0) by 180°: -> (0,0,0).
	got := RotateAbout(Vec3{2, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 0, 1}, math.Pi)
	if got.Dist(Vec3{0, 0, 0}) > 1e-12 {
		t.Fatalf("RotateAbout = %v", got)
	}
}

func TestCentroid(t *testing.T) {
	pts := []Vec3{{0, 0, 0}, {2, 4, 6}}
	if got := Centroid(pts); got != (Vec3{1, 2, 3}) {
		t.Fatalf("Centroid = %v", got)
	}
	if got := Centroid(nil); got != (Vec3{}) {
		t.Fatalf("empty Centroid = %v", got)
	}
}

func TestRMSDZeroForIdentical(t *testing.T) {
	pts := []Vec3{{1, 2, 3}, {4, 5, 6}, {-1, 0, 2}}
	if got := RMSD(pts, pts); got != 0 {
		t.Fatalf("RMSD(x,x) = %v", got)
	}
}

func TestRMSDKnown(t *testing.T) {
	a := []Vec3{{0, 0, 0}, {0, 0, 0}}
	b := []Vec3{{1, 0, 0}, {0, 1, 0}}
	if got := RMSD(a, b); !almost(got, 1, 1e-12) {
		t.Fatalf("RMSD = %v, want 1", got)
	}
}

func TestAlignedRMSDInvariantToRigidMotion(t *testing.T) {
	r := xrand.New(3)
	for trial := 0; trial < 50; trial++ {
		n := 5 + r.Intn(20)
		a := make([]Vec3, n)
		for i := range a {
			a[i] = Vec3{r.Norm(0, 3), r.Norm(0, 3), r.Norm(0, 3)}
		}
		q := AxisAngle(Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}, r.Range(-3, 3))
		shift := Vec3{r.Norm(0, 10), r.Norm(0, 10), r.Norm(0, 10)}
		b := make([]Vec3, n)
		for i := range b {
			b[i] = q.Rotate(a[i]).Add(shift)
		}
		if got := AlignedRMSD(a, b); got > 1e-6 {
			t.Fatalf("trial %d: aligned RMSD of rigid copy = %v", trial, got)
		}
	}
}

func TestAlignedRMSDDetectsDeformation(t *testing.T) {
	a := []Vec3{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	b := []Vec3{{0, 0, 0}, {3, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	if got := AlignedRMSD(a, b); got < 0.1 {
		t.Fatalf("deformation not detected, RMSD = %v", got)
	}
}

func TestKabschNoReflection(t *testing.T) {
	r := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 4 + r.Intn(10)
		a := make([]Vec3, n)
		b := make([]Vec3, n)
		for i := range a {
			a[i] = Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
			b[i] = Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		}
		ca, cb := Centroid(a), Centroid(b)
		for i := range a {
			a[i] = a[i].Sub(ca)
			b[i] = b[i].Sub(cb)
		}
		rot := Kabsch(a, b)
		if d := rot.Det(); !almost(d, 1, 1e-6) {
			t.Fatalf("Kabsch produced non-rotation with det %v", d)
		}
	}
}

func TestMat3Ops(t *testing.T) {
	id := Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	m := Mat3{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}}
	if got := m.MulM(id); got != m {
		t.Fatalf("M·I = %v", got)
	}
	if got := m.Det(); !almost(got, -3, 1e-12) {
		t.Fatalf("Det = %v, want -3", got)
	}
	v := Vec3{1, 1, 1}
	if got := id.Apply(v); got != v {
		t.Fatalf("I·v = %v", got)
	}
}

func TestJacobiEigenSymmetric(t *testing.T) {
	// Known: diag(1,2,3) rotated is still spectrum {1,2,3}.
	a := Mat3{{2, 1, 0}, {1, 2, 0}, {0, 0, 5}}
	eval, evec := jacobiEigen3(a)
	// Eigenvalues of the 2x2 block are 1 and 3; third is 5.
	got := []float64{eval[0], eval[1], eval[2]}
	sum := got[0] + got[1] + got[2]
	if !almost(sum, 9, 1e-9) {
		t.Fatalf("eigenvalue sum = %v, want 9 (trace)", sum)
	}
	// Verify A·v = λ·v for each eigenpair.
	for k := 0; k < 3; k++ {
		v := Vec3{evec[0][k], evec[1][k], evec[2][k]}
		av := a.Apply(v)
		if av.Dist(v.Scale(eval[k])) > 1e-8 {
			t.Fatalf("eigenpair %d fails: Av=%v λv=%v", k, av, v.Scale(eval[k]))
		}
	}
}

func TestRMSDPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	RMSD([]Vec3{{}}, []Vec3{{}, {}})
}

func BenchmarkAlignedRMSD(b *testing.B) {
	r := xrand.New(1)
	n := 309 // PLPro Cα count from the paper
	a := make([]Vec3, n)
	c := make([]Vec3, n)
	for i := range a {
		a[i] = Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		c[i] = a[i].Add(Vec3{r.Norm(0, 0.1), r.Norm(0, 0.1), r.Norm(0, 0.1)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AlignedRMSD(a, c)
	}
}
