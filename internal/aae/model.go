package aae

import (
	"math"

	"impeccable/internal/geom"
	"impeccable/internal/nn"
	"impeccable/internal/xrand"
)

// Config holds the 3D-AAE hyperparameters; defaults follow §7.1.3.
type Config struct {
	NumPoints    int // points per cloud (309 Cα for PLPro)
	LatentDim    int // 64
	PointHidden1 int // per-point MLP widths
	PointHidden2 int
	DecHidden    int
	PriorStd     float64 // Gaussian prior σ (0.2)
	LR           float64 // RMSprop learning rate (1e-5 in the paper)
	ReconScale   float64 // reconstruction loss scale (0.5)
	GPScale      float64 // gradient-penalty scale (10)
	ClipC        float64 // critic weight-clip constant
	NCritic      int     // critic updates per generator update
	Seed         uint64
	CoordScale   float64 // coordinate normalization divisor (Å)
}

// DefaultConfig returns the paper's hyperparameters, with a learning rate
// raised from the paper's 1e-5 to 1e-4 because the CG substrate converges
// in far fewer samples than 100 k MD frames.
func DefaultConfig(numPoints int) Config {
	return Config{
		NumPoints:    numPoints,
		LatentDim:    64,
		PointHidden1: 64,
		PointHidden2: 128,
		DecHidden:    256,
		PriorStd:     0.2,
		LR:           1e-4,
		ReconScale:   0.5,
		GPScale:      10,
		ClipC:        0.05,
		NCritic:      1,
		Seed:         1,
		CoordScale:   12,
	}
}

// Model is the 3D adversarial autoencoder.
type Model struct {
	cfg Config

	pointNet *nn.Sequential // 3 → h1 → h2, shared per point
	head     *nn.Sequential // h2 → latent
	decoder  *nn.Sequential // latent → hidden → 3·NumPoints
	critic   *nn.Sequential // latent → hidden → 1 (Wasserstein score)

	optG nn.Optimizer // encoder+decoder
	optC nn.Optimizer // critic

	rng *xrand.RNG

	// encoder backward cache
	lastPoints *nn.Mat
	lastArgmax []int
}

// New builds an untrained model.
func New(cfg Config) *Model {
	r := xrand.New(cfg.Seed)
	m := &Model{
		cfg: cfg,
		pointNet: nn.NewSequential(
			nn.NewDense(3, cfg.PointHidden1, r), &nn.ReLU{},
			nn.NewDense(cfg.PointHidden1, cfg.PointHidden2, r), &nn.ReLU{},
		),
		head: nn.NewSequential(
			nn.NewDense(cfg.PointHidden2, cfg.LatentDim, r),
		),
		decoder: nn.NewSequential(
			nn.NewDense(cfg.LatentDim, cfg.DecHidden, r), &nn.ReLU{},
			nn.NewDense(cfg.DecHidden, 3*cfg.NumPoints, r),
		),
		critic: nn.NewSequential(
			nn.NewDense(cfg.LatentDim, 64, r), &nn.LeakyReLU{Alpha: 0.2},
			nn.NewDense(64, 32, r), &nn.LeakyReLU{Alpha: 0.2},
			nn.NewDense(32, 1, r),
		),
		rng: r,
	}
	m.optG = nn.NewRMSprop(cfg.LR)
	m.optC = nn.NewRMSprop(cfg.LR * 2)
	return m
}

// normalize maps a cloud into network coordinates (centered, scaled).
func (m *Model) normalize(cloud []geom.Vec3) *nn.Mat {
	ctr := geom.Centroid(cloud)
	x := nn.NewMat(len(cloud), 3)
	inv := 1 / m.cfg.CoordScale
	for i, p := range cloud {
		q := p.Sub(ctr).Scale(inv)
		row := x.Row(i)
		row[0], row[1], row[2] = q.X, q.Y, q.Z
	}
	return x
}

// encodeForward runs the PointNet encoder on one cloud, caching what
// encodeBackward needs. Returns the latent row vector (1×L).
func (m *Model) encodeForward(cloud []geom.Vec3) *nn.Mat {
	x := m.normalize(cloud)
	h := m.pointNet.Forward(x) // N × F
	f := h.C
	pooled := nn.NewMat(1, f)
	argmax := make([]int, f)
	for j := 0; j < f; j++ {
		best, bi := h.At(0, j), 0
		for i := 1; i < h.R; i++ {
			if v := h.At(i, j); v > best {
				best, bi = v, i
			}
		}
		pooled.Set(0, j, best)
		argmax[j] = bi
	}
	m.lastPoints = h
	m.lastArgmax = argmax
	return m.head.Forward(pooled)
}

// encodeBackward backpropagates dL/dz through head, max-pool and the
// shared point MLP, accumulating parameter gradients.
func (m *Model) encodeBackward(dz *nn.Mat) {
	dPool := m.head.Backward(dz) // 1 × F
	dH := nn.NewMat(m.lastPoints.R, m.lastPoints.C)
	for j := 0; j < dH.C; j++ {
		dH.Set(m.lastArgmax[j], j, dPool.At(0, j))
	}
	m.pointNet.Backward(dH)
}

// Encode returns the latent embedding of a cloud (no gradient state kept).
func (m *Model) Encode(cloud []geom.Vec3) []float64 {
	z := m.encodeForward(cloud)
	out := make([]float64, z.C)
	copy(out, z.Row(0))
	return out
}

// EncodeBatch embeds many clouds.
func (m *Model) EncodeBatch(clouds [][]geom.Vec3) [][]float64 {
	out := make([][]float64, len(clouds))
	for i, c := range clouds {
		out[i] = m.Encode(c)
	}
	return out
}

// decode maps a latent row (1×L) to reconstruction points in network
// coordinates.
func (m *Model) decode(z *nn.Mat) []geom.Vec3 {
	out := m.decoder.Forward(z)
	pts := make([]geom.Vec3, m.cfg.NumPoints)
	for i := range pts {
		pts[i] = geom.Vec3{
			X: out.At(0, 3*i),
			Y: out.At(0, 3*i+1),
			Z: out.At(0, 3*i+2),
		}
	}
	return pts
}

// Reconstruct decodes a latent vector into a point cloud in network
// coordinates (centered, scaled by 1/CoordScale).
func (m *Model) Reconstruct(z []float64) []geom.Vec3 {
	zm := nn.NewMat(1, len(z))
	copy(zm.Row(0), z)
	return m.decode(zm)
}

// Losses reports the per-batch training diagnostics the paper tracks
// ("training and validation loss metrics", §5.1.4).
type Losses struct {
	Recon  float64 // Chamfer reconstruction loss
	Critic float64 // Wasserstein critic loss (with penalty)
	Adv    float64 // adversarial (generator) loss
}

// TrainBatch performs one generator update and NCritic critic updates on
// the given clouds, returning mean losses.
func (m *Model) TrainBatch(clouds [][]geom.Vec3) Losses {
	if len(clouds) == 0 {
		return Losses{}
	}
	b := float64(len(clouds))
	var losses Losses
	zFake := make([][]float64, len(clouds))

	// ---- Generator (encoder+decoder) phase ----
	m.zeroGenGrads()
	for ci, cloud := range clouds {
		z := m.encodeForward(cloud)
		zFake[ci] = append([]float64(nil), z.Row(0)...)

		rec := m.decode(z)
		refMat := m.normalize(cloud)
		ref := make([]geom.Vec3, refMat.R)
		for i := range ref {
			row := refMat.Row(i)
			ref[i] = geom.Vec3{X: row[0], Y: row[1], Z: row[2]}
		}
		recLoss, recGrad := chamferGrad(rec, ref)
		losses.Recon += recLoss / b

		// Backprop reconstruction through the decoder.
		dOut := nn.NewMat(1, 3*m.cfg.NumPoints)
		s := m.cfg.ReconScale / b
		for i, g := range recGrad {
			dOut.Set(0, 3*i, g.X*s)
			dOut.Set(0, 3*i+1, g.Y*s)
			dOut.Set(0, 3*i+2, g.Z*s)
		}
		dzRec := m.decoder.Backward(dOut)

		// Adversarial term: encoder maximizes critic score on z.
		score := m.critic.Forward(z.Clone())
		losses.Adv += -score.At(0, 0) / b
		dScore := nn.NewMat(1, 1)
		dScore.Set(0, 0, -1/b)
		dzAdv := m.critic.Backward(dScore)

		dz := dzRec.Clone()
		dz.AddInPlace(dzAdv)
		m.encodeBackward(dz)
	}
	nn.ClipGrads(m.genParams(), 5)
	m.optG.Step(m.genParams())
	// Discard critic gradients accumulated while routing the adversarial
	// signal into the encoder.
	for _, p := range m.critic.Params() {
		p.ZeroGrad()
	}

	// ---- Critic phase ----
	for it := 0; it < m.cfg.NCritic; it++ {
		for _, p := range m.critic.Params() {
			p.ZeroGrad()
		}
		var criticLoss float64
		for _, zf := range zFake {
			// Critic minimizes D(fake) - D(real): fake scores get
			// gradient +1/b, real -1/b.
			zm := nn.NewMat(1, m.cfg.LatentDim)
			copy(zm.Row(0), zf)
			s := m.critic.Forward(zm)
			criticLoss += s.At(0, 0) / b
			g := nn.NewMat(1, 1)
			g.Set(0, 0, 1/b)
			m.critic.Backward(g)

			zr := m.samplePrior()
			sr := m.critic.Forward(zr)
			criticLoss -= sr.At(0, 0) / b
			gr := nn.NewMat(1, 1)
			gr.Set(0, 0, -1/b)
			m.critic.Backward(gr)

			criticLoss += m.gradientPenalty(zf, zr)
		}
		losses.Critic = criticLoss
		m.optC.Step(m.critic.Params())
		nn.ClipWeights(m.critic.Params(), m.cfg.ClipC)
	}
	return losses
}

// gradientPenalty applies the finite-difference directional penalty at an
// interpolate of (fake, real): ((D(ẑ+hu) − D(ẑ−hu))/2h − 1)², scaled by
// GPScale, accumulating the corresponding critic parameter gradients. It
// returns its contribution to the critic loss.
func (m *Model) gradientPenalty(zFake []float64, zReal *nn.Mat) float64 {
	l := m.cfg.LatentDim
	eps := m.rng.Float64()
	zi := nn.NewMat(1, l)
	for k := 0; k < l; k++ {
		zi.Set(0, k, eps*zFake[k]+(1-eps)*zReal.At(0, k))
	}
	// Random unit direction.
	u := make([]float64, l)
	var norm float64
	for k := range u {
		u[k] = m.rng.NormFloat64()
		norm += u[k] * u[k]
	}
	norm = 1 / math.Max(1e-12, math.Sqrt(norm))
	const h = 1e-2
	zp := zi.Clone()
	zm := zi.Clone()
	for k := 0; k < l; k++ {
		zp.V[k] += h * u[k] * norm
		zm.V[k] -= h * u[k] * norm
	}
	sp := m.critic.Forward(zp).At(0, 0)
	sm := m.critic.Forward(zm).At(0, 0)
	g := (sp - sm) / (2 * h)
	pen := (g - 1) * (g - 1) * m.cfg.GPScale
	// d pen / d sp = 2(g-1)·GP / (2h); d pen / d sm = -that.
	dsp := 2 * (g - 1) * m.cfg.GPScale / (2 * h)
	// Re-run forwards so each Backward sees its own cached activations.
	m.critic.Forward(zp)
	gm := nn.NewMat(1, 1)
	gm.Set(0, 0, dsp)
	m.critic.Backward(gm)
	m.critic.Forward(zm)
	gm2 := nn.NewMat(1, 1)
	gm2.Set(0, 0, -dsp)
	m.critic.Backward(gm2)
	return pen
}

// samplePrior draws one latent sample from the N(0, σ²) prior.
func (m *Model) samplePrior() *nn.Mat {
	z := nn.NewMat(1, m.cfg.LatentDim)
	for k := range z.V {
		z.V[k] = m.rng.Norm(0, m.cfg.PriorStd)
	}
	return z
}

func (m *Model) genParams() []*nn.Param {
	ps := append([]*nn.Param{}, m.pointNet.Params()...)
	ps = append(ps, m.head.Params()...)
	ps = append(ps, m.decoder.Params()...)
	return ps
}

func (m *Model) zeroGenGrads() {
	for _, p := range m.genParams() {
		p.ZeroGrad()
	}
}

// TrainEpochs trains for the given epochs over the clouds with the given
// batch size, returning the loss history (one entry per epoch, averaged
// over batches).
func (m *Model) TrainEpochs(clouds [][]geom.Vec3, epochs, batchSize int) []Losses {
	history := make([]Losses, 0, epochs)
	idx := make([]int, len(clouds))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < epochs; e++ {
		m.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var acc Losses
		nb := 0
		for at := 0; at < len(idx); at += batchSize {
			end := at + batchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := make([][]geom.Vec3, 0, end-at)
			for _, i := range idx[at:end] {
				batch = append(batch, clouds[i])
			}
			l := m.TrainBatch(batch)
			acc.Recon += l.Recon
			acc.Critic += l.Critic
			acc.Adv += l.Adv
			nb++
		}
		if nb > 0 {
			acc.Recon /= float64(nb)
			acc.Critic /= float64(nb)
			acc.Adv /= float64(nb)
		}
		history = append(history, acc)
	}
	return history
}

// ValidationRecon returns the mean Chamfer reconstruction loss over a
// held-out set (the paper's validation loss metric).
func (m *Model) ValidationRecon(clouds [][]geom.Vec3) float64 {
	if len(clouds) == 0 {
		return 0
	}
	var s float64
	for _, cloud := range clouds {
		z := m.encodeForward(cloud)
		rec := m.decode(z)
		refMat := m.normalize(cloud)
		ref := make([]geom.Vec3, refMat.R)
		for i := range ref {
			row := refMat.Row(i)
			ref[i] = geom.Vec3{X: row[0], Y: row[1], Z: row[2]}
		}
		s += Chamfer(rec, ref)
	}
	return s / float64(len(clouds))
}

// TrainFlops estimates FLOPs per training batch of the given size (Table
// 3 methodology: flops per batch, forward+backward ≈ 3× forward, per
// cloud the point MLP runs NumPoints times).
func (m *Model) TrainFlops(batch int) int64 {
	perCloud := m.pointNet.ForwardFlops(m.cfg.NumPoints) +
		m.head.ForwardFlops(1) + m.decoder.ForwardFlops(1) + m.critic.ForwardFlops(1)
	chamfer := int64(m.cfg.NumPoints) * int64(m.cfg.NumPoints) * 8 * 2
	return int64(batch) * (3*perCloud + chamfer)
}
