package aae

import (
	"math"
	"testing"

	"impeccable/internal/geom"
	"impeccable/internal/xrand"
)

func TestChamferAxioms(t *testing.T) {
	r := xrand.New(1)
	a := randomCloud(r, 20, 0)
	if got := Chamfer(a, a); got != 0 {
		t.Fatalf("Chamfer(x,x) = %v", got)
	}
	b := randomCloud(r, 20, 5)
	ab, ba := Chamfer(a, b), Chamfer(b, a)
	if math.Abs(ab-ba) > 1e-12 {
		t.Fatalf("Chamfer not symmetric: %v vs %v", ab, ba)
	}
	if ab <= 0 {
		t.Fatalf("Chamfer of distinct clouds = %v", ab)
	}
	// Translation grows the distance.
	c := make([]geom.Vec3, len(a))
	for i := range c {
		c[i] = a[i].Add(geom.Vec3{X: 10})
	}
	if Chamfer(a, c) <= Chamfer(a, b)*0 {
		t.Fatal("translated cloud should have positive distance")
	}
}

func TestChamferEmpty(t *testing.T) {
	if got := Chamfer(nil, nil); got != 0 {
		t.Fatalf("Chamfer(∅,∅) = %v", got)
	}
	if got := Chamfer(nil, []geom.Vec3{{}}); !math.IsInf(got, 1) {
		t.Fatalf("Chamfer(∅,x) = %v", got)
	}
}

func TestChamferGradMatchesFiniteDifference(t *testing.T) {
	r := xrand.New(2)
	rec := randomCloud(r, 8, 0)
	ref := randomCloud(r, 8, 0.5)
	_, grad := chamferGrad(rec, ref)
	const h = 1e-6
	for i := 0; i < len(rec); i++ {
		for axis := 0; axis < 3; axis++ {
			bump := geom.Vec3{}
			switch axis {
			case 0:
				bump.X = h
			case 1:
				bump.Y = h
			case 2:
				bump.Z = h
			}
			rp := append([]geom.Vec3(nil), rec...)
			rp[i] = rp[i].Add(bump)
			lp, _ := chamferGrad(rp, ref)
			rm := append([]geom.Vec3(nil), rec...)
			rm[i] = rm[i].Sub(bump)
			lm, _ := chamferGrad(rm, ref)
			fd := (lp - lm) / (2 * h)
			var got float64
			switch axis {
			case 0:
				got = grad[i].X
			case 1:
				got = grad[i].Y
			case 2:
				got = grad[i].Z
			}
			if math.Abs(fd-got) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("point %d axis %d: grad %v, fd %v", i, axis, got, fd)
			}
		}
	}
}

func randomCloud(r *xrand.RNG, n int, shift float64) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.Vec3{
			X: r.NormFloat64() + shift,
			Y: r.NormFloat64() + shift,
			Z: r.NormFloat64() + shift,
		}
	}
	return pts
}

// cloudFamily generates structured clouds: a base shape plus per-cloud
// deformation along a single mode, so the latent space has something to
// learn.
func cloudFamily(r *xrand.RNG, n, points int) ([][]geom.Vec3, []float64) {
	base := randomCloud(r, points, 0)
	mode := randomCloud(r, points, 0)
	clouds := make([][]geom.Vec3, n)
	amps := make([]float64, n)
	for c := 0; c < n; c++ {
		amp := r.Range(-1, 1)
		amps[c] = amp
		cl := make([]geom.Vec3, points)
		for i := range cl {
			cl[i] = base[i].Add(mode[i].Scale(amp * 0.5)).
				Add(geom.Vec3{X: r.Norm(0, 0.02), Y: r.Norm(0, 0.02), Z: r.Norm(0, 0.02)})
		}
		clouds[c] = cl
	}
	return clouds, amps
}

func TestEncodeShape(t *testing.T) {
	cfg := DefaultConfig(16)
	m := New(cfg)
	r := xrand.New(3)
	z := m.Encode(randomCloud(r, 16, 0))
	if len(z) != cfg.LatentDim {
		t.Fatalf("latent dim = %d", len(z))
	}
	for _, v := range z {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite latent: %v", z)
		}
	}
}

func TestEncodeTranslationInvariant(t *testing.T) {
	// Clouds are centered before encoding, so a rigid translation must
	// not change the embedding.
	cfg := DefaultConfig(16)
	m := New(cfg)
	r := xrand.New(4)
	cloud := randomCloud(r, 16, 0)
	shifted := make([]geom.Vec3, len(cloud))
	for i := range cloud {
		shifted[i] = cloud[i].Add(geom.Vec3{X: 7, Y: -3, Z: 2})
	}
	a, b := m.Encode(cloud), m.Encode(shifted)
	for k := range a {
		if math.Abs(a[k]-b[k]) > 1e-9 {
			t.Fatalf("translation changed embedding at dim %d: %v vs %v", k, a[k], b[k])
		}
	}
}

func TestTrainingReducesReconLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	cfg := DefaultConfig(16)
	cfg.LatentDim = 8
	cfg.LR = 3e-4
	m := New(cfg)
	r := xrand.New(5)
	clouds, _ := cloudFamily(r, 60, 16)
	hist := m.TrainEpochs(clouds, 25, 16)
	first, last := hist[0].Recon, hist[len(hist)-1].Recon
	if last >= first*0.8 {
		t.Fatalf("reconstruction loss did not improve: %v -> %v", first, last)
	}
	t.Logf("recon loss %v -> %v over %d epochs", first, last, len(hist))
}

func TestLatentTracksStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	// After training on a one-mode family, the latent embedding must
	// separate extreme deformations: correlation between the deformation
	// amplitude and the first principal latent direction should be
	// strong.
	cfg := DefaultConfig(16)
	cfg.LatentDim = 8
	cfg.LR = 3e-4
	m := New(cfg)
	r := xrand.New(6)
	clouds, amps := cloudFamily(r, 80, 16)
	m.TrainEpochs(clouds, 20, 16)
	zs := m.EncodeBatch(clouds)
	// Find the latent dim with max |corr| to amplitude.
	bestCorr := 0.0
	for d := 0; d < cfg.LatentDim; d++ {
		col := make([]float64, len(zs))
		for i := range zs {
			col[i] = zs[i][d]
		}
		if c := math.Abs(pearson(col, amps)); c > bestCorr {
			bestCorr = c
		}
	}
	if bestCorr < 0.5 {
		t.Fatalf("no latent dimension tracks the deformation mode (best |corr| = %v)", bestCorr)
	}
	t.Logf("best |corr(latent, amplitude)| = %.3f", bestCorr)
}

func TestValidationRecon(t *testing.T) {
	cfg := DefaultConfig(12)
	m := New(cfg)
	r := xrand.New(7)
	clouds, _ := cloudFamily(r, 20, 12)
	v := m.ValidationRecon(clouds)
	if v <= 0 || math.IsNaN(v) {
		t.Fatalf("validation recon = %v", v)
	}
	if got := m.ValidationRecon(nil); got != 0 {
		t.Fatalf("empty validation = %v", got)
	}
}

func TestCriticWeightsClipped(t *testing.T) {
	cfg := DefaultConfig(12)
	m := New(cfg)
	r := xrand.New(8)
	clouds, _ := cloudFamily(r, 16, 12)
	m.TrainEpochs(clouds, 3, 8)
	for _, p := range m.critic.Params() {
		for _, w := range p.W.V {
			if math.Abs(w) > cfg.ClipC+1e-12 {
				t.Fatalf("critic weight %v exceeds clip %v", w, cfg.ClipC)
			}
		}
	}
}

func TestReconstructShape(t *testing.T) {
	cfg := DefaultConfig(16)
	m := New(cfg)
	z := make([]float64, cfg.LatentDim)
	rec := m.Reconstruct(z)
	if len(rec) != cfg.NumPoints {
		t.Fatalf("reconstruction has %d points", len(rec))
	}
}

func TestTrainFlopsPositive(t *testing.T) {
	m := New(DefaultConfig(309))
	if m.TrainFlops(64) <= 0 {
		t.Fatal("TrainFlops must be positive")
	}
}

func TestTrainBatchEmpty(t *testing.T) {
	m := New(DefaultConfig(8))
	if l := m.TrainBatch(nil); l != (Losses{}) {
		t.Fatalf("empty batch losses = %+v", l)
	}
}

func pearson(a, b []float64) float64 {
	var sx, sy, sxx, syy, sxy float64
	n := float64(len(a))
	for i := range a {
		sx += a[i]
		sy += b[i]
		sxx += a[i] * a[i]
		syy += b[i] * b[i]
		sxy += a[i] * b[i]
	}
	den := math.Sqrt((sxx/n - sx/n*sx/n) * (syy/n - sy/n*sy/n))
	if den == 0 {
		return 0
	}
	return (sxy/n - sx/n*sy/n) / den
}

func BenchmarkEncode309(b *testing.B) {
	m := New(DefaultConfig(309))
	cloud := randomCloud(xrand.New(1), 309, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Encode(cloud)
	}
}

func BenchmarkTrainBatch(b *testing.B) {
	m := New(DefaultConfig(64))
	clouds, _ := cloudFamily(xrand.New(1), 8, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.TrainBatch(clouds)
	}
}
