// Package aae implements the S2 stage's 3D adversarial autoencoder
// (§5.1.4): a PointNet-style encoder (shared per-point MLP + max pool)
// over Cα point clouds, an MLP decoder, a Chamfer-distance reconstruction
// loss, and adversarial matching of the latent code to a Gaussian prior
// (σ = 0.2, latent dimension 64, RMSprop, reconstruction scaled by 0.5
// and the adversarial penalty by 10 — all per the paper's §7.1.3
// hyperparameters).
//
// Substitution note (DESIGN.md): the paper's Wasserstein critic uses a
// gradient penalty, which needs second-order autodiff; with a from-scratch
// stdlib network the penalty is realized as WGAN weight clipping plus a
// finite-difference directional gradient penalty — both enforcing the same
// 1-Lipschitz constraint on the critic.
package aae

import (
	"math"

	"impeccable/internal/geom"
)

// Chamfer returns the symmetric Chamfer distance between two point
// clouds: mean over a of squared distance to the nearest point of b, plus
// the reverse. It is zero iff the clouds cover each other exactly.
func Chamfer(a, b []geom.Vec3) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == len(b) {
			return 0
		}
		return math.Inf(1)
	}
	var sum float64
	for _, p := range a {
		sum += nearestDist2(p, b)
	}
	s1 := sum / float64(len(a))
	sum = 0
	for _, q := range b {
		sum += nearestDist2(q, a)
	}
	return s1 + sum/float64(len(b))
}

func nearestDist2(p geom.Vec3, pts []geom.Vec3) float64 {
	best := math.Inf(1)
	for _, q := range pts {
		if d := p.Dist2(q); d < best {
			best = d
		}
	}
	return best
}

// chamferGrad returns the Chamfer distance between the reconstruction rec
// and the reference ref, along with dChamfer/dRec (one Vec3 per
// reconstruction point).
func chamferGrad(rec, ref []geom.Vec3) (float64, []geom.Vec3) {
	grad := make([]geom.Vec3, len(rec))
	var loss float64
	nRec, nRef := float64(len(rec)), float64(len(ref))
	// Term 1: Σ_rec min_ref |r - p|² / nRec.
	for i, rp := range rec {
		best, bi := math.Inf(1), 0
		for j, p := range ref {
			if d := rp.Dist2(p); d < best {
				best, bi = d, j
			}
		}
		loss += best / nRec
		grad[i] = grad[i].Add(rp.Sub(ref[bi]).Scale(2 / nRec))
	}
	// Term 2: Σ_ref min_rec |p - r|² / nRef; gradient flows to the
	// nearest reconstruction point of each reference point.
	for _, p := range ref {
		best, bi := math.Inf(1), 0
		for i, rp := range rec {
			if d := p.Dist2(rp); d < best {
				best, bi = d, i
			}
		}
		loss += best / nRef
		grad[bi] = grad[bi].Add(rec[bi].Sub(p).Scale(2 / nRef))
	}
	return loss, grad
}
