package surrogate

import (
	"fmt"
	"math"

	"impeccable/internal/chem"
	"impeccable/internal/nn"
	"impeccable/internal/xrand"
)

// CNNModel is the image-based ML1 variant matching the paper's actual
// featurization (§5.1.2: 2-D depictions through a convolutional network,
// chosen because images let the model exploit scale/rotation-robust
// visual features chemists themselves read structure from). The
// fingerprint MLP (Model) remains the throughput-oriented default; the
// ablation benchmark compares the two.
type CNNModel struct {
	net    *nn.Sequential
	rng    *xrand.RNG
	lo, hi float64
}

// NewCNNModel builds the small convolutional surrogate:
// 3×16×16 → conv(8,3×3) → ReLU → pool(2) → conv(16,3×3) → ReLU →
// pool(2) → dense(64) → ReLU → dense(1) → sigmoid.
func NewCNNModel(seed uint64) *CNNModel {
	r := xrand.New(seed)
	c1 := nn.NewConv2D(chem.ImageChannels, chem.ImageSize, chem.ImageSize, 8, 3, r) // 8×14×14
	p1 := nn.NewMaxPool2D(8, c1.OutH(), c1.OutW(), 2)                               // 8×7×7
	c2 := nn.NewConv2D(8, 7, 7, 16, 3, r)                                           // 16×5×5
	p2 := nn.NewMaxPool2D(16, c2.OutH(), c2.OutW(), 2)                              // 16×2×2
	return &CNNModel{
		net: nn.NewSequential(
			c1, &nn.ReLU{}, p1,
			c2, &nn.ReLU{}, p2,
			nn.NewDense(p2.OutDim(), 64, r), &nn.ReLU{},
			nn.NewDense(64, 1, r), &nn.Sigmoid{},
		),
		rng: r,
		lo:  -1, hi: 1,
	}
}

func (m *CNNModel) normalize(raw float64) float64 {
	t := (m.hi - raw) / (m.hi - m.lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return t
}

// Fit trains the CNN on molecules and raw docking scores.
func (m *CNNModel) Fit(mols []*chem.Molecule, scores []float64, cfg TrainConfig) (Report, error) {
	if len(mols) != len(scores) {
		return Report{}, fmt.Errorf("surrogate: %d molecules but %d scores", len(mols), len(scores))
	}
	if len(mols) < 4 {
		return Report{}, fmt.Errorf("surrogate: too few samples (%d)", len(mols))
	}
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	m.lo, m.hi = math.Inf(1), math.Inf(-1)
	for _, s := range scores {
		m.lo = math.Min(m.lo, s)
		m.hi = math.Max(m.hi, s)
	}
	if m.hi == m.lo {
		m.hi = m.lo + 1
	}
	n := len(mols)
	imgs := make([][]float64, n)
	for i, mol := range mols {
		imgs[i] = chem.Render2D(mol)
	}
	perm := m.rng.Perm(n)
	// ValFrac < 1 (validated above); clamp against float rounding so the
	// training split is never empty.
	nVal := int(cfg.ValFrac * float64(n))
	if nVal >= n {
		nVal = n - 1
	}
	valIdx, trainIdx := perm[:nVal], perm[nVal:]
	makeBatch := func(idx []int) (*nn.Mat, *nn.Mat) {
		x := nn.NewMat(len(idx), chem.ImageDim)
		y := nn.NewMat(len(idx), 1)
		for bi, i := range idx {
			copy(x.Row(bi), imgs[i])
			y.Set(bi, 0, m.normalize(scores[i]))
		}
		return x, y
	}
	opt := nn.NewAdam(cfg.LR)
	rep := Report{Samples: n}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 64
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(trainIdx), func(i, j int) {
			trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i]
		})
		var epochLoss float64
		var nb int
		for at := 0; at < len(trainIdx); at += batch {
			end := at + batch
			if end > len(trainIdx) {
				end = len(trainIdx)
			}
			x, y := makeBatch(trainIdx[at:end])
			m.net.ZeroGrad()
			pred := m.net.Forward(x)
			loss, grad := nn.MSELoss(pred, y)
			m.net.Backward(grad)
			opt.Step(m.net.Params())
			epochLoss += loss
			nb++
			rep.Flops += 3 * m.net.ForwardFlops(end-at)
		}
		rep.TrainLoss = append(rep.TrainLoss, epochLoss/float64(nb))
		if nVal > 0 {
			x, y := makeBatch(valIdx)
			pred := m.net.Forward(x)
			vl, _ := nn.MSELoss(pred, y)
			rep.ValLoss = append(rep.ValLoss, vl)
		}
	}
	return rep, nil
}

// Predict scores molecules (higher = predicted better binder).
func (m *CNNModel) Predict(mols []*chem.Molecule) []float64 {
	x := nn.NewMat(len(mols), chem.ImageDim)
	for i, mol := range mols {
		copy(x.Row(i), chem.Render2D(mol))
	}
	out := m.net.Forward(x)
	res := make([]float64, len(mols))
	for i := range res {
		res[i] = out.At(i, 0)
	}
	return res
}
