package surrogate

import (
	"math"
	"testing"

	"impeccable/internal/chem"
	"impeccable/internal/receptor"
	"impeccable/internal/xrand"
)

// syntheticScores builds a training set whose targets play the role of
// docking scores: ground-truth affinity plus docking-like noise. (Using
// the true oracle keeps the test fast; the integration tests and benches
// use real docking output.)
func syntheticScores(n int, seed uint64) ([]*chem.Molecule, []float64) {
	tg := receptor.PLPro()
	r := xrand.New(seed)
	mols := make([]*chem.Molecule, n)
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		mols[i] = chem.FromID(r.Uint64())
		scores[i] = tg.TrueAffinity(mols[i]) + r.Norm(0, 1.5)
	}
	return mols, scores
}

func TestFitReducesLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	mols, scores := syntheticScores(2000, 1)
	m := NewModel(7)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 15
	rep, err := m.Fit(mols, scores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := rep.TrainLoss[0], rep.TrainLoss[len(rep.TrainLoss)-1]
	if last >= first {
		t.Fatalf("training loss did not decrease: %v -> %v", first, last)
	}
	if len(rep.ValLoss) != cfg.Epochs {
		t.Fatalf("validation loss entries = %d", len(rep.ValLoss))
	}
	if rep.Flops <= 0 {
		t.Fatal("flops accounting missing")
	}
}

func TestFitErrors(t *testing.T) {
	m := NewModel(1)
	if _, err := m.Fit(nil, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("no error for empty training set")
	}
	mols, _ := syntheticScores(10, 2)
	if _, err := m.Fit(mols, make([]float64, 3), DefaultTrainConfig()); err == nil {
		t.Fatal("no error for length mismatch")
	}
}

func TestSurrogateEnriches(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	// The core ML1 claim: after training, the predicted top of the
	// library is strongly enriched in true top compounds.
	mols, scores := syntheticScores(3000, 3)
	m := NewModel(11)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 25
	if _, err := m.Fit(mols, scores, cfg); err != nil {
		t.Fatal(err)
	}
	// Evaluate on held-out molecules.
	testMols, testScores := syntheticScores(2000, 99)
	pred := m.Predict(testMols)
	ef := EnrichmentFactor(pred, testScores, 0.05)
	if ef < 2 {
		t.Fatalf("enrichment factor at 5%% = %v, want >= 2", ef)
	}
	t.Logf("EF(5%%) = %.2f", ef)
	rho := Spearman(pred, testScores)
	if rho < 0.2 {
		t.Fatalf("Spearman = %v, want >= 0.2", rho)
	}
	t.Logf("Spearman = %.3f", rho)
}

func TestPredictIDsMatchesSerial(t *testing.T) {
	mols, scores := syntheticScores(500, 4)
	m := NewModel(5)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	if _, err := m.Fit(mols, scores, cfg); err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, 300)
	r := xrand.New(6)
	for i := range ids {
		ids[i] = r.Uint64()
	}
	serialMols := make([]*chem.Molecule, len(ids))
	for i, id := range ids {
		serialMols[i] = chem.FromID(id)
	}
	want := m.Predict(serialMols)
	got := m.PredictIDs(ids, 4)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatalf("parallel prediction diverges at %d: %v vs %v", i, want[i], got[i])
		}
	}
}

func TestPredictRange(t *testing.T) {
	m := NewModel(1)
	mols, _ := syntheticScores(50, 7)
	for i, p := range m.Predict(mols) {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("prediction %d = %v outside [0,1]", i, p)
		}
	}
}

func TestTopKBottomK(t *testing.T) {
	s := []float64{3, 1, 4, 1.5, 9}
	top := TopK(s, 2)
	if top[0] != 4 || top[1] != 2 {
		t.Fatalf("TopK = %v", top)
	}
	bot := BottomK(s, 2)
	if bot[0] != 1 || bot[1] != 3 {
		t.Fatalf("BottomK = %v", bot)
	}
	if got := TopK(s, 99); len(got) != len(s) {
		t.Fatalf("TopK overflow len = %d", len(got))
	}
}

func TestRESPerfectModel(t *testing.T) {
	// A perfect model (pred = -truth) recovers everything: RES ≡ 1 on
	// the diagonal and above.
	n := 1000
	truth := make([]float64, n)
	pred := make([]float64, n)
	r := xrand.New(8)
	for i := 0; i < n; i++ {
		truth[i] = r.NormFloat64()
		pred[i] = -truth[i]
	}
	res := ComputeRES(pred, truth, []float64{0.01, 0.1}, []float64{0.01, 0.1})
	if res.At(0.01, 0.01) != 1 || res.At(0.1, 0.1) != 1 {
		t.Fatalf("perfect model RES diagonal != 1: %v", res.R)
	}
	// Perfect model, small allocation, large true-top: recall bounded by
	// alpha/beta.
	if got := res.At(0.01, 0.1); math.Abs(got-0.1) > 0.01 {
		t.Fatalf("RES(0.01,0.1) = %v, want ~0.1", got)
	}
}

func TestRESRandomModel(t *testing.T) {
	// A random model recovers ~alpha of any true-top set.
	n := 20000
	truth := make([]float64, n)
	pred := make([]float64, n)
	r := xrand.New(9)
	for i := 0; i < n; i++ {
		truth[i] = r.NormFloat64()
		pred[i] = r.NormFloat64()
	}
	res := ComputeRES(pred, truth, []float64{0.1}, []float64{0.01})
	if got := res.At(0.1, 0.01); math.Abs(got-0.1) > 0.05 {
		t.Fatalf("random model RES(0.1, 0.01) = %v, want ~0.1", got)
	}
}

func TestRESMonotoneInAlpha(t *testing.T) {
	// Growing the allocation can only recover more of the true top.
	mols, scores := syntheticScores(2000, 10)
	m := NewModel(2)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	if _, err := m.Fit(mols, scores, cfg); err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(mols)
	alphas := []float64{0.001, 0.01, 0.1, 1}
	res := ComputeRES(pred, scores, alphas, []float64{0.01})
	for i := 1; i < len(alphas); i++ {
		if res.R[i][0] < res.R[i-1][0] {
			t.Fatalf("RES not monotone in alpha: %v", res.R)
		}
	}
	if res.R[len(alphas)-1][0] != 1 {
		t.Fatalf("RES at alpha=1 must be 1, got %v", res.R[len(alphas)-1][0])
	}
}

func TestSpearmanKnown(t *testing.T) {
	// pred descending-good vs truth ascending-good: exact inverse order
	// = perfect agreement.
	pred := []float64{5, 4, 3, 2, 1}
	truth := []float64{1, 2, 3, 4, 5}
	if rho := Spearman(pred, truth); math.Abs(rho-1) > 1e-12 {
		t.Fatalf("Spearman perfect = %v", rho)
	}
	// Same order = perfect disagreement.
	if rho := Spearman(truth, truth); math.Abs(rho+1) > 1e-12 {
		t.Fatalf("Spearman anti = %v", rho)
	}
}

func TestEnrichmentFactorPerfect(t *testing.T) {
	n := 1000
	truth := make([]float64, n)
	pred := make([]float64, n)
	r := xrand.New(12)
	for i := 0; i < n; i++ {
		truth[i] = r.NormFloat64()
		pred[i] = -truth[i]
	}
	if ef := EnrichmentFactor(pred, truth, 0.01); math.Abs(ef-100) > 1e-9 {
		t.Fatalf("perfect EF(1%%) = %v, want 100", ef)
	}
}

func BenchmarkPredictBatch256(b *testing.B) {
	m := NewModel(1)
	mols := make([]*chem.Molecule, 256)
	for i := range mols {
		mols[i] = chem.FromID(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(mols)
	}
}

func BenchmarkFitEpoch(b *testing.B) {
	mols, scores := syntheticScores(512, 1)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewModel(1)
		_, _ = m.Fit(mols, scores, cfg)
	}
}
