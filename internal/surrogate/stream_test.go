package surrogate

import (
	"runtime"
	"sort"
	"testing"
	"time"

	"impeccable/internal/xrand"
)

// TestPredictIDsStreamMatchesBatch: chunked streaming inference must be
// bit-identical to the batch path — forward passes are row-independent.
func TestPredictIDsStreamMatchesBatch(t *testing.T) {
	m := NewModel(3)
	r := xrand.New(9)
	ids := make([]uint64, 1000)
	for i := range ids {
		ids[i] = r.Uint64()
	}
	want := m.PredictIDs(ids, 2)

	got := make([]float64, len(ids))
	seen := 0
	for ck := range m.PredictIDsStream(ids, 3, 64, nil, nil) {
		copy(got[ck.Start:ck.Start+len(ck.Scores)], ck.Scores)
		seen += len(ck.Scores)
	}
	if seen != len(ids) {
		t.Fatalf("stream delivered %d of %d scores", seen, len(ids))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("score %d: stream %v vs batch %v", i, got[i], want[i])
		}
	}
}

// TestPredictIDsStreamCancel: closing cancel mid-stream must close the
// channel promptly and retire every worker goroutine.
func TestPredictIDsStreamCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m := NewModel(3)
	ids := make([]uint64, 100_000)
	r := xrand.New(1)
	for i := range ids {
		ids[i] = r.Uint64()
	}
	cancel := make(chan struct{})
	ch := m.PredictIDsStream(ids, 4, 64, nil, cancel)
	<-ch // at least one chunk arrives
	close(cancel)
	n := 0
	for range ch { // drains to close
		n++
	}
	if n >= len(ids)/64 {
		t.Fatalf("cancel did not stop the stream: %d chunks after cancel", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Fatalf("stream workers leaked: %d vs baseline %d", g, baseline)
	}
}

// TestRunningTopKMatchesSort feeds a random stream and checks the final
// membership against the sort-based TopK oracle.
func TestRunningTopKMatchesSort(t *testing.T) {
	r := xrand.New(4)
	for _, n := range []int{1, 5, 100, 1000} {
		for _, k := range []int{1, 3, 17, 1200} {
			scores := make([]float64, n)
			for i := range scores {
				scores[i] = r.Float64()
			}
			tk := NewRunningTopK(k)
			for i, s := range scores {
				tk.Offer(i, s)
			}
			got := tk.Indices()
			sort.Ints(got)
			want := append([]int(nil), TopK(scores, k)...)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: %d members, want %d", n, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: members %v, want %v", n, k, got, want)
				}
			}
		}
	}
}

// TestRunningTopKOfferSemantics pins the admission contract: Offer
// reports true exactly when the candidate is in the running top-k.
func TestRunningTopKOfferSemantics(t *testing.T) {
	tk := NewRunningTopK(2)
	if _, ok := tk.Threshold(); ok {
		t.Fatal("threshold before heap is full")
	}
	if !tk.Offer(0, 0.5) || !tk.Offer(1, 0.1) {
		t.Fatal("heap-filling offers must be admitted")
	}
	if th, ok := tk.Threshold(); !ok || th != 0.1 {
		t.Fatalf("threshold = %v, %v", th, ok)
	}
	if tk.Offer(2, 0.05) {
		t.Fatal("below-threshold candidate admitted")
	}
	if !tk.Offer(3, 0.3) {
		t.Fatal("above-threshold candidate rejected")
	}
	if th, _ := tk.Threshold(); th != 0.3 {
		t.Fatalf("threshold after eviction = %v", th)
	}
	if tk.Len() != 2 {
		t.Fatalf("len = %d", tk.Len())
	}
	// k < 1 is clamped.
	if NewRunningTopK(0).k != 1 {
		t.Fatal("k=0 not clamped")
	}
}
