package surrogate

import (
	"math"
	"testing"

	"impeccable/internal/chem"
)

func TestRender2DProperties(t *testing.T) {
	img := chem.Render2D(chem.FromID(5))
	if len(img) != chem.ImageDim {
		t.Fatalf("image length = %d", len(img))
	}
	var sum float64
	for _, v := range img {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("pixel out of range: %v", v)
		}
		sum += v
	}
	if sum == 0 {
		t.Fatal("blank depiction")
	}
	// Determinism.
	img2 := chem.Render2D(chem.FromID(5))
	for i := range img {
		if img[i] != img2[i] {
			t.Fatal("rendering not deterministic")
		}
	}
	// Distinct molecules render differently.
	other := chem.Render2D(chem.FromID(6))
	same := true
	for i := range img {
		if img[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct molecules rendered identically")
	}
}

func TestCNNModelLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	mols, scores := syntheticScores(700, 21)
	m := NewCNNModel(3)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	cfg.LR = 2e-3
	rep, err := m.Fit(mols, scores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := rep.TrainLoss[0], rep.TrainLoss[len(rep.TrainLoss)-1]
	if last >= first {
		t.Fatalf("CNN loss did not decrease: %v -> %v", first, last)
	}
	// Predictions in range and better than random ordering.
	testMols, testScores := syntheticScores(500, 77)
	pred := m.Predict(testMols)
	for _, p := range pred {
		if p < 0 || p > 1 {
			t.Fatalf("prediction out of range: %v", p)
		}
	}
	if rho := Spearman(pred, testScores); rho < 0.05 {
		t.Fatalf("CNN Spearman = %v, no signal", rho)
	}
}

func TestCNNFitErrors(t *testing.T) {
	m := NewCNNModel(1)
	if _, err := m.Fit(nil, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("no error on empty set")
	}
}

func BenchmarkRender2D(b *testing.B) {
	m := chem.FromID(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = chem.Render2D(m)
	}
}

func BenchmarkCNNPredict256(b *testing.B) {
	m := NewCNNModel(1)
	mols := make([]*chem.Molecule, 256)
	for i := range mols {
		mols[i] = chem.FromID(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(mols)
	}
}
