package surrogate

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"impeccable/internal/chem"
	"impeccable/internal/nn"
	"impeccable/internal/xrand"
)

// TestFitValidation: bad TrainConfigs must come back as errors. Before
// validation existed, ValFrac < 0 sliced perm[:nVal] with a negative
// index and panicked mid-campaign.
func TestFitValidation(t *testing.T) {
	mols, scores := syntheticScores(16, 4)
	bad := []struct {
		name string
		mut  func(*TrainConfig)
	}{
		{"negative ValFrac", func(c *TrainConfig) { c.ValFrac = -0.1 }},
		{"ValFrac 1", func(c *TrainConfig) { c.ValFrac = 1.0 }},
		{"ValFrac above 1", func(c *TrainConfig) { c.ValFrac = 1.5 }},
		{"ValFrac NaN", func(c *TrainConfig) { c.ValFrac = math.NaN() }},
		{"zero Epochs", func(c *TrainConfig) { c.Epochs = 0 }},
		{"negative BatchSize", func(c *TrainConfig) { c.BatchSize = -1 }},
		{"zero LR", func(c *TrainConfig) { c.LR = 0 }},
		{"negative LR", func(c *TrainConfig) { c.LR = -1e-3 }},
		{"infinite LR", func(c *TrainConfig) { c.LR = math.Inf(1) }},
		{"NaN LR", func(c *TrainConfig) { c.LR = math.NaN() }},
	}
	for _, tc := range bad {
		cfg := DefaultTrainConfig()
		cfg.Epochs = 1
		tc.mut(&cfg)
		if _, err := NewModel(1).Fit(mols, scores, cfg); err == nil {
			t.Errorf("Model.Fit accepted %s", tc.name)
		}
		if _, err := NewCNNModel(1).Fit(mols, scores, cfg); err == nil {
			t.Errorf("CNNModel.Fit accepted %s", tc.name)
		}
	}
	// A maximal valid ValFrac must not panic (train split stays non-empty).
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.ValFrac = 0.999
	if _, err := NewModel(1).Fit(mols, scores, cfg); err != nil {
		t.Errorf("Model.Fit rejected valid ValFrac 0.999: %v", err)
	}
}

// TestTopKTieBreakByIndex: duplicate scores must come back in ascending
// index order, making the selection deterministic (sort.Slice alone
// leaves tie order unspecified).
func TestTopKTieBreakByIndex(t *testing.T) {
	scores := []float64{1, 2, 2, 1, 2, 0.5}
	got := TopK(scores, 3)
	want := []int{1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	gotB := BottomK(scores, 3)
	wantB := []int{5, 0, 3}
	for i := range wantB {
		if gotB[i] != wantB[i] {
			t.Fatalf("BottomK = %v, want %v", gotB, wantB)
		}
	}
}

// TestRunningTopKTiesMatchTopK pins the duplicate-score contract between
// the streaming and batch selectors: RunningTopK's `score <= root`
// rejection guarantees the kept score multiset equals TopK's, and every
// index scoring strictly above the selection boundary is kept by both.
// Exactly which boundary-score tie survives is where the two may differ
// (the heap evicts an arbitrary member of a minimum-score tie; TopK
// breaks ties by ascending index), so membership is only asserted off
// the boundary.
func TestRunningTopKTiesMatchTopK(t *testing.T) {
	r := xrand.New(21)
	scores := make([]float64, 500)
	for i := range scores {
		scores[i] = float64(r.Intn(20)) // heavy duplication
	}
	const k = 25
	rt := NewRunningTopK(k)
	for i, s := range scores {
		rt.Offer(i, s)
	}
	batch := TopK(scores, k)
	got := rt.Indices()
	if len(got) != k {
		t.Fatalf("RunningTopK kept %d members, want %d", len(got), k)
	}
	// Same score multiset.
	wantScores := make([]float64, k)
	gotScores := make([]float64, k)
	for i := 0; i < k; i++ {
		wantScores[i] = scores[batch[i]]
		gotScores[i] = scores[got[i]]
	}
	sort.Float64s(wantScores)
	sort.Float64s(gotScores)
	for i := range wantScores {
		if gotScores[i] != wantScores[i] {
			t.Fatalf("kept score multisets differ: %v vs %v", gotScores, wantScores)
		}
	}
	// Identical membership strictly above the boundary score.
	boundary := scores[batch[k-1]]
	batchSet := map[int]bool{}
	for _, i := range batch {
		batchSet[i] = true
	}
	gotSet := map[int]bool{}
	for _, i := range got {
		gotSet[i] = true
	}
	for i, s := range scores {
		if s > boundary && (!batchSet[i] || !gotSet[i]) {
			t.Fatalf("index %d (score %v > boundary %v) missing: batch=%v stream=%v",
				i, s, boundary, batchSet[i], gotSet[i])
		}
	}
}

// TestPredictIDsConcurrentSharedModel: the pooled inference path shares
// one set of weights across workers with no per-worker clone; concurrent
// full PredictIDs calls on the same model must race-free produce the
// serial answer bit-for-bit (run under -race in CI).
func TestPredictIDsConcurrentSharedModel(t *testing.T) {
	m := NewModel(5)
	r := xrand.New(17)
	ids := make([]uint64, 700)
	for i := range ids {
		ids[i] = r.Uint64()
	}
	want := m.PredictIDs(ids, 1)
	var wg sync.WaitGroup
	results := make([][]float64, 4)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = m.PredictIDs(ids, 3)
		}(g)
	}
	wg.Wait()
	for g, got := range results {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("goroutine %d: score %d = %v, serial %v", g, i, got[i], want[i])
			}
		}
	}
}

// TestPredictIDsNoGoroutineLeak: every pooled-inference worker must
// retire once the id window drains.
func TestPredictIDsNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m := NewModel(5)
	r := xrand.New(19)
	ids := make([]uint64, 3000)
	for i := range ids {
		ids[i] = r.Uint64()
	}
	for round := 0; round < 3; round++ {
		m.PredictIDs(ids, 4)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Fatalf("inference workers leaked: %d goroutines vs baseline %d", g, baseline)
	}
}

// scalarCloneBaseline reproduces the pre-kernel inference path for the
// benchmark: per-worker deep weight clones, per-shard fresh input and
// activation allocations, and the old scalar ikj matmul (zero-skip
// included, since fingerprint rows are sparse and the old kernel's skip
// was its one optimization).
func scalarCloneBaseline(m *Model, ids []uint64, workers int, src FeatureSource) []float64 {
	if src == nil {
		src = materializeSource{}
	}
	type dense struct{ w, b *nn.Mat }
	cloneLayers := func() []dense {
		var ds []dense
		for _, p := range m.net.Params() {
			if p.W.R > 1 { // weight mats; biases are 1×out
				ds = append(ds, dense{w: p.W.Clone()})
			} else {
				ds[len(ds)-1].b = p.W.Clone()
			}
		}
		return ds
	}
	scalarMatMul := func(a, b *nn.Mat) *nn.Mat {
		out := nn.NewMat(a.R, b.C)
		for i := 0; i < a.R; i++ {
			for k := 0; k < a.C; k++ {
				aik := a.At(i, k)
				if aik == 0 {
					continue
				}
				for j := 0; j < b.C; j++ {
					out.Set(i, j, out.At(i, j)+aik*b.At(k, j))
				}
			}
		}
		return out
	}
	out := make([]float64, len(ids))
	const shard = 1024
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ds := cloneLayers()
			for {
				mu.Lock()
				at := next
				next += shard
				mu.Unlock()
				if at >= len(ids) {
					return
				}
				end := at + shard
				if end > len(ids) {
					end = len(ids)
				}
				x := nn.NewMat(end-at, chem.FeatureDim)
				for i := at; i < end; i++ {
					copy(x.Row(i-at), src.Features(ids[i]))
				}
				h := x
				for li, d := range ds {
					h = scalarMatMul(h, d.w)
					for i := 0; i < h.R; i++ {
						row := h.Row(i)
						for j := range row {
							row[j] += d.b.V[j]
						}
					}
					if li < len(ds)-1 { // hidden ReLU
						for i := range h.V {
							if h.V[i] <= 0 {
								h.V[i] = 0
							}
						}
					} else { // sigmoid head
						for i := range h.V {
							h.V[i] = 1 / (1 + math.Exp(-h.V[i]))
						}
					}
				}
				for i := at; i < end; i++ {
					out[i] = h.At(i-at, 0)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// BenchmarkPredictIDs measures the pooled blocked-kernel inference path
// and reports its speedup over the pre-rewrite scalar clone-per-worker
// baseline. The ≥2× expectation only holds with real parallelism, so it
// is asserted only on ≥4 cores; on smaller hosts the metrics are still
// recorded honestly.
func BenchmarkPredictIDs(b *testing.B) {
	m := NewModel(7)
	r := xrand.New(23)
	ids := make([]uint64, 4096)
	for i := range ids {
		ids[i] = r.Uint64()
	}
	workers := runtime.GOMAXPROCS(0)

	// Sanity: baseline and pooled path agree before timing anything.
	want := m.PredictIDs(ids, workers)
	got := scalarCloneBaseline(m, ids, workers, nil)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			b.Fatalf("baseline diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}

	start := time.Now()
	const baseRounds = 3
	for i := 0; i < baseRounds; i++ {
		scalarCloneBaseline(m, ids, workers, nil)
	}
	scalarPer := time.Since(start) / baseRounds

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictIDs(ids, workers)
	}
	b.StopTimer()
	pooledPer := b.Elapsed() / time.Duration(b.N)

	ligandsPerSec := float64(len(ids)) / pooledPer.Seconds()
	speedup := float64(scalarPer) / float64(pooledPer)
	b.ReportMetric(ligandsPerSec, "ligands/s")
	b.ReportMetric(speedup, "speedup_vs_scalar")
	if runtime.NumCPU() >= 4 && speedup < 2 {
		b.Errorf("pooled inference only %.2fx the scalar baseline, want >= 2x on %d cores",
			speedup, runtime.NumCPU())
	}
}
