package surrogate

import (
	"runtime"
	"sync"

	"impeccable/internal/chem"
	"impeccable/internal/nn"
)

// ScoredChunk is one contiguous run of streaming-inference results:
// Scores[j] is the surrogate score of ids[Start+j] in the id slice handed
// to PredictIDsStream. Chunks arrive in arbitrary order (whichever worker
// finishes first sends first), but each chunk's scores are bit-identical
// to the batch path's — forward passes are row-independent, so chunking
// never perturbs a prediction.
type ScoredChunk struct {
	Start  int
	Scores []float64
}

// PredictIDsStream is the streaming counterpart of PredictIDsFrom: it
// scores ids over a worker pool and delivers each chunk on the returned
// bounded channel as soon as its forward pass completes, instead of
// waiting for the whole library window. This is what lets a consumer
// (the campaign's streaming funnel) overlap downstream work — docking
// the running top-K — with the remainder of the screen.
//
// The channel has capacity 2×workers, so a slow consumer exerts
// backpressure on the screen rather than buffering the library in
// memory. The channel is closed when every id has been scored or cancel
// closes, whichever comes first; the producer goroutines never outlive
// the stream. src nil means materialize molecules on the fly; chunk ≤ 0
// uses a default sized for pipeline granularity (much finer than the
// batch path's shard, so worker load stays balanced near the stream
// tail).
func (m *Model) PredictIDsStream(ids []uint64, workers, chunk int, src FeatureSource, cancel <-chan struct{}) <-chan ScoredChunk {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunk <= 0 {
		chunk = 128
	}
	if src == nil {
		src = materializeSource{}
	}
	out := make(chan ScoredChunk, 2*workers)
	canceled := func() bool {
		if cancel == nil {
			return false
		}
		select {
		case <-cancel:
			return true
		default:
			return false
		}
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Workers share the model through the cache-free inference
			// path; each carries only a pooled scratch arena.
			ar := nn.GetArena()
			defer ar.Release()
			for {
				mu.Lock()
				at := next
				next += chunk
				mu.Unlock()
				if at >= len(ids) || canceled() {
					return
				}
				end := at + chunk
				if end > len(ids) {
					end = len(ids)
				}
				scores := make([]float64, end-at)
				m.predictInto(ids[at:end], src, scores, ar)
				select {
				case out <- ScoredChunk{Start: at, Scores: scores}:
				case <-cancel:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// predictInto scores ids into out (len(out) == len(ids)) using the
// cache-free inference path with scratch from ar. The arena is reset on
// entry, so one arena serves any number of sequential calls; it must not
// be shared across goroutines.
func (m *Model) predictInto(ids []uint64, src FeatureSource, out []float64, ar *nn.Arena) {
	ar.Reset()
	x := ar.Mat(len(ids), chem.FeatureDim)
	fillFeatures(x, ids, src)
	pred := m.net.Infer(x, ar)
	for i := range out {
		out[i] = pred.At(i, 0)
	}
}

// RunningTopK maintains the running top-k of a scored stream with a
// bounded min-heap: the root is the current k-th best score, so an offer
// is accepted (and the root evicted) exactly when it beats the running
// threshold. This is the streaming funnel's speculation oracle — a
// candidate that enters the running top-k is worth docking before the
// screen finishes, because it is in the final top-k unless a later
// candidate evicts it.
type RunningTopK struct {
	k      int
	scores []float64 // min-heap by score
	idx    []int     // idx[i] is the stream index of scores[i]
}

// NewRunningTopK builds a tracker for the top k scores (k ≥ 1).
func NewRunningTopK(k int) *RunningTopK {
	if k < 1 {
		k = 1
	}
	return &RunningTopK{k: k}
}

// Offer considers (index, score) and reports whether it is now a member
// of the running top-k.
func (t *RunningTopK) Offer(index int, score float64) bool {
	if len(t.scores) < t.k {
		t.scores = append(t.scores, score)
		t.idx = append(t.idx, index)
		t.up(len(t.scores) - 1)
		return true
	}
	if score <= t.scores[0] {
		return false
	}
	t.scores[0], t.idx[0] = score, index
	t.down(0)
	return true
}

// Len returns the current member count (≤ k).
func (t *RunningTopK) Len() int { return len(t.scores) }

// Threshold returns the current k-th best score (the eviction bar), or
// -Inf semantics via ok=false while the heap is not yet full.
func (t *RunningTopK) Threshold() (float64, bool) {
	if len(t.scores) < t.k {
		return 0, false
	}
	return t.scores[0], true
}

// Indices returns the stream indices of the current members, in no
// particular order. The slice is freshly allocated.
func (t *RunningTopK) Indices() []int {
	return append([]int(nil), t.idx...)
}

func (t *RunningTopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.scores[p] <= t.scores[i] {
			break
		}
		t.swap(p, i)
		i = p
	}
}

func (t *RunningTopK) down(i int) {
	n := len(t.scores)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && t.scores[l] < t.scores[small] {
			small = l
		}
		if r < n && t.scores[r] < t.scores[small] {
			small = r
		}
		if small == i {
			return
		}
		t.swap(small, i)
		i = small
	}
}

func (t *RunningTopK) swap(a, b int) {
	t.scores[a], t.scores[b] = t.scores[b], t.scores[a]
	t.idx[a], t.idx[b] = t.idx[b], t.idx[a]
}
