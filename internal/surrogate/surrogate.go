// Package surrogate implements ML1: the deep-learning docking-score
// emulator that pre-selects compounds for physics-based docking (paper
// §5.1.2, §6.1.1). The paper trains a ResNet-50 on 2-D molecule images
// and deploys it with TensorRT at FP16; this reproduction trains an MLP
// on hashed-fingerprint + descriptor features (see DESIGN.md on the
// substitution: the operative property — near-perfect filtering of two
// orders of magnitude of the library with imperfect global rank order —
// is a function of the learning problem, not the architecture).
//
// As in the paper, targets are docking scores mapped into [0, 1] with
// higher values indicating lower (better) binding energies, and model
// quality is assessed with the Regression Enrichment Surface (RES) of
// Clyde et al., reproduced in Fig. 4.
package surrogate

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"impeccable/internal/chem"
	"impeccable/internal/nn"
	"impeccable/internal/xrand"
)

// Model is the ML1 docking-score emulator.
type Model struct {
	net *nn.Sequential
	rng *xrand.RNG
	// Normalization of raw docking scores into [0,1] targets
	// (higher = stronger predicted binding).
	lo, hi float64
}

// NewModel builds an untrained surrogate with the standard architecture:
// FeatureDim → 128 → 64 → 1 with ReLU hidden activations and a sigmoid
// output head matching the [0, 1] target mapping.
func NewModel(seed uint64) *Model {
	r := xrand.New(seed)
	return &Model{
		net: nn.NewSequential(
			nn.NewDense(chem.FeatureDim, 128, r),
			&nn.ReLU{},
			nn.NewDense(128, 64, r),
			&nn.ReLU{},
			nn.NewDense(64, 1, r),
			&nn.Sigmoid{},
		),
		rng: r,
		lo:  -1, hi: 1,
	}
}

// TrainConfig controls surrogate training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	ValFrac   float64 // fraction of samples held out for validation
}

// DefaultTrainConfig mirrors a scaled-down version of the paper's
// pretraining run (500 k OZD samples, §6.1.1).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, BatchSize: 64, LR: 1e-3, ValFrac: 0.2}
}

// Validate reports the first invalid field, if any. Fit and CNNModel.Fit
// call it so a bad configuration (e.g. a negative ValFrac, which would
// otherwise slice perm[:nVal] with nVal < 0 and panic) surfaces as an
// error instead of a runtime fault mid-campaign.
func (cfg TrainConfig) Validate() error {
	if cfg.Epochs < 1 {
		return fmt.Errorf("surrogate: TrainConfig.Epochs must be >= 1, got %d", cfg.Epochs)
	}
	if cfg.BatchSize < 0 {
		return fmt.Errorf("surrogate: TrainConfig.BatchSize must be >= 0, got %d", cfg.BatchSize)
	}
	if !(cfg.LR > 0) || math.IsInf(cfg.LR, 0) {
		return fmt.Errorf("surrogate: TrainConfig.LR must be positive and finite, got %v", cfg.LR)
	}
	// The negated form catches NaN as well as out-of-range values.
	if !(cfg.ValFrac >= 0 && cfg.ValFrac < 1) {
		return fmt.Errorf("surrogate: TrainConfig.ValFrac must be in [0, 1), got %v", cfg.ValFrac)
	}
	return nil
}

// Report summarizes a training run.
type Report struct {
	TrainLoss []float64 // per-epoch training MSE
	ValLoss   []float64 // per-epoch validation MSE
	Samples   int
	Flops     int64 // training floating-point operations (Table 3 accounting)
}

// normalize maps a raw docking score (kcal/mol, lower = better) to the
// [0,1] target space (higher = better).
func (m *Model) normalize(raw float64) float64 {
	t := (m.hi - raw) / (m.hi - m.lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return t
}

// Fit trains the surrogate on molecules and their raw docking scores.
func (m *Model) Fit(mols []*chem.Molecule, scores []float64, cfg TrainConfig) (Report, error) {
	if len(mols) != len(scores) {
		return Report{}, fmt.Errorf("surrogate: %d molecules but %d scores", len(mols), len(scores))
	}
	if len(mols) < 4 {
		return Report{}, fmt.Errorf("surrogate: too few samples (%d)", len(mols))
	}
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	// Calibrate the score mapping on the training distribution.
	m.lo, m.hi = math.Inf(1), math.Inf(-1)
	for _, s := range scores {
		m.lo = math.Min(m.lo, s)
		m.hi = math.Max(m.hi, s)
	}
	if m.hi == m.lo {
		m.hi = m.lo + 1
	}

	n := len(mols)
	perm := m.rng.Perm(n)
	// ValFrac < 1 (validated above), so nVal < n barring float rounding
	// at the very top of the range; clamp so the training split is never
	// empty.
	nVal := int(cfg.ValFrac * float64(n))
	if nVal >= n {
		nVal = n - 1
	}
	valIdx, trainIdx := perm[:nVal], perm[nVal:]

	feats := make([][]float64, n)
	for i, mol := range mols {
		feats[i] = mol.FeatureVector()
	}
	makeBatch := func(idx []int) (*nn.Mat, *nn.Mat) {
		x := nn.NewMat(len(idx), chem.FeatureDim)
		y := nn.NewMat(len(idx), 1)
		for bi, i := range idx {
			copy(x.Row(bi), feats[i])
			y.Set(bi, 0, m.normalize(scores[i]))
		}
		return x, y
	}

	opt := nn.NewAdam(cfg.LR)
	rep := Report{Samples: n}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 64
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(trainIdx), func(i, j int) {
			trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i]
		})
		var epochLoss float64
		var nb int
		for at := 0; at < len(trainIdx); at += batch {
			end := at + batch
			if end > len(trainIdx) {
				end = len(trainIdx)
			}
			x, y := makeBatch(trainIdx[at:end])
			m.net.ZeroGrad()
			pred := m.net.Forward(x)
			loss, grad := nn.MSELoss(pred, y)
			m.net.Backward(grad)
			opt.Step(m.net.Params())
			epochLoss += loss
			nb++
			// forward + backward ≈ 3× forward flops.
			rep.Flops += 3 * m.net.ForwardFlops(end-at)
		}
		rep.TrainLoss = append(rep.TrainLoss, epochLoss/float64(nb))
		if nVal > 0 {
			x, y := makeBatch(valIdx)
			pred := m.net.Forward(x)
			vl, _ := nn.MSELoss(pred, y)
			rep.ValLoss = append(rep.ValLoss, vl)
			rep.Flops += m.net.ForwardFlops(nVal)
		}
	}
	return rep, nil
}

// Predict returns the surrogate score in [0,1] (higher = predicted
// stronger binder) for each molecule.
func (m *Model) Predict(mols []*chem.Molecule) []float64 {
	x := nn.NewMat(len(mols), chem.FeatureDim)
	for i, mol := range mols {
		copy(x.Row(i), mol.FeatureVector())
	}
	out := m.net.Forward(x)
	res := make([]float64, len(mols))
	for i := range res {
		res[i] = out.At(i, 0)
	}
	return res
}

// InferenceFlops estimates FLOPs for scoring n molecules.
func (m *Model) InferenceFlops(n int) int64 { return m.net.ForwardFlops(n) }

// FeatureSource supplies the feature vector of a molecule given its
// library ID. It is the injection point for caching layers: materializing
// a molecule and featurizing it is deterministic and identical across
// tenants, so a long-lived service can memoize vectors once and serve
// every campaign's ML1 screen from memory. Implementations must be safe
// for concurrent use; the returned slice is read-only to callers.
type FeatureSource interface {
	Features(id uint64) []float64
}

// BatchFeatureSource is an optional FeatureSource extension for the
// batched inference path: FeaturesInto writes id's feature vector into
// dst (length chem.FeatureDim), overwriting every element, instead of
// returning a freshly allocated or cached slice. Implementations must be
// safe for concurrent use. Sources that implement it let inference
// workers featurize directly into kernel input buffers with zero copies
// and zero per-molecule allocations.
type BatchFeatureSource interface {
	FeatureSource
	FeaturesInto(dst []float64, id uint64)
}

// materializeSource is the default FeatureSource: build the molecule from
// its ID and featurize it on the fly.
type materializeSource struct{}

func (materializeSource) Features(id uint64) []float64 {
	return chem.FromID(id).FeatureVector()
}

func (materializeSource) FeaturesInto(dst []float64, id uint64) {
	chem.FromID(id).FeatureVectorInto(dst)
}

// fillFeatures loads ids' feature vectors into the rows of x, using the
// in-place path when the source supports it. Every row is fully
// overwritten, so x may be arena scratch with arbitrary contents.
func fillFeatures(x *nn.Mat, ids []uint64, src FeatureSource) {
	if bs, ok := src.(BatchFeatureSource); ok {
		for i, id := range ids {
			bs.FeaturesInto(x.Row(i), id)
		}
		return
	}
	for i, id := range ids {
		copy(x.Row(i), src.Features(id))
	}
}

// PredictIDs scores library molecule IDs with a parallel worker pool, the
// high-throughput inference path of §6.1.1 (one MPI rank per GPU with
// prefetching becomes one goroutine per worker materializing molecules on
// the fly).
func (m *Model) PredictIDs(ids []uint64, workers int) []float64 {
	return m.PredictIDsFrom(ids, workers, nil)
}

// PredictIDsFrom is PredictIDs with an explicit feature source; nil means
// materialize molecules on the fly.
func (m *Model) PredictIDsFrom(ids []uint64, workers int, src FeatureSource) []float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if src == nil {
		src = materializeSource{}
	}
	const shard = 1024
	out := make([]float64, len(ids))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	// Workers share the model weights through the cache-free inference
	// path (nn.Sequential.Infer): no activation state is written, so no
	// per-worker weight clone is needed — each worker just carries a
	// pooled scratch arena for its activations.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ar := nn.GetArena()
			defer ar.Release()
			for {
				mu.Lock()
				at := next
				next += shard
				mu.Unlock()
				if at >= len(ids) {
					return
				}
				end := at + shard
				if end > len(ids) {
					end = len(ids)
				}
				ar.Reset()
				x := ar.Mat(end-at, chem.FeatureDim)
				fillFeatures(x, ids[at:end], src)
				pred := m.net.Infer(x, ar)
				for i := at; i < end; i++ {
					out[i] = pred.At(i-at, 0)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// TopK returns the indices of the k highest surrogate scores. Equal
// scores are ordered by ascending index, so the selection is fully
// deterministic (sort.Slice alone leaves tie order unspecified). The
// kept score multiset always matches RunningTopK fed the same stream;
// which member of a boundary-score tie survives may differ (the heap
// evicts an arbitrary minimum, TopK keeps the lowest indices).
func TopK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := scores[idx[a]], scores[idx[b]]
		if sa != sb {
			return sa > sb
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// BottomK returns the indices of the k lowest raw values (e.g. best
// docking scores). Equal values are ordered by ascending index.
func BottomK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := scores[idx[a]], scores[idx[b]]
		if sa != sb {
			return sa < sb
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
