// Package surrogate implements ML1: the deep-learning docking-score
// emulator that pre-selects compounds for physics-based docking (paper
// §5.1.2, §6.1.1). The paper trains a ResNet-50 on 2-D molecule images
// and deploys it with TensorRT at FP16; this reproduction trains an MLP
// on hashed-fingerprint + descriptor features (see DESIGN.md on the
// substitution: the operative property — near-perfect filtering of two
// orders of magnitude of the library with imperfect global rank order —
// is a function of the learning problem, not the architecture).
//
// As in the paper, targets are docking scores mapped into [0, 1] with
// higher values indicating lower (better) binding energies, and model
// quality is assessed with the Regression Enrichment Surface (RES) of
// Clyde et al., reproduced in Fig. 4.
package surrogate

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"impeccable/internal/chem"
	"impeccable/internal/nn"
	"impeccable/internal/xrand"
)

// Model is the ML1 docking-score emulator.
type Model struct {
	net *nn.Sequential
	rng *xrand.RNG
	// Normalization of raw docking scores into [0,1] targets
	// (higher = stronger predicted binding).
	lo, hi float64
}

// NewModel builds an untrained surrogate with the standard architecture:
// FeatureDim → 128 → 64 → 1 with ReLU hidden activations and a sigmoid
// output head matching the [0, 1] target mapping.
func NewModel(seed uint64) *Model {
	r := xrand.New(seed)
	return &Model{
		net: nn.NewSequential(
			nn.NewDense(chem.FeatureDim, 128, r),
			&nn.ReLU{},
			nn.NewDense(128, 64, r),
			&nn.ReLU{},
			nn.NewDense(64, 1, r),
			&nn.Sigmoid{},
		),
		rng: r,
		lo:  -1, hi: 1,
	}
}

// TrainConfig controls surrogate training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	ValFrac   float64 // fraction of samples held out for validation
}

// DefaultTrainConfig mirrors a scaled-down version of the paper's
// pretraining run (500 k OZD samples, §6.1.1).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, BatchSize: 64, LR: 1e-3, ValFrac: 0.2}
}

// Report summarizes a training run.
type Report struct {
	TrainLoss []float64 // per-epoch training MSE
	ValLoss   []float64 // per-epoch validation MSE
	Samples   int
	Flops     int64 // training floating-point operations (Table 3 accounting)
}

// normalize maps a raw docking score (kcal/mol, lower = better) to the
// [0,1] target space (higher = better).
func (m *Model) normalize(raw float64) float64 {
	t := (m.hi - raw) / (m.hi - m.lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return t
}

// Fit trains the surrogate on molecules and their raw docking scores.
func (m *Model) Fit(mols []*chem.Molecule, scores []float64, cfg TrainConfig) (Report, error) {
	if len(mols) != len(scores) {
		return Report{}, fmt.Errorf("surrogate: %d molecules but %d scores", len(mols), len(scores))
	}
	if len(mols) < 4 {
		return Report{}, fmt.Errorf("surrogate: too few samples (%d)", len(mols))
	}
	// Calibrate the score mapping on the training distribution.
	m.lo, m.hi = math.Inf(1), math.Inf(-1)
	for _, s := range scores {
		m.lo = math.Min(m.lo, s)
		m.hi = math.Max(m.hi, s)
	}
	if m.hi == m.lo {
		m.hi = m.lo + 1
	}

	n := len(mols)
	perm := m.rng.Perm(n)
	nVal := int(cfg.ValFrac * float64(n))
	if nVal >= n {
		nVal = n / 2
	}
	valIdx, trainIdx := perm[:nVal], perm[nVal:]

	feats := make([][]float64, n)
	for i, mol := range mols {
		feats[i] = mol.FeatureVector()
	}
	makeBatch := func(idx []int) (*nn.Mat, *nn.Mat) {
		x := nn.NewMat(len(idx), chem.FeatureDim)
		y := nn.NewMat(len(idx), 1)
		for bi, i := range idx {
			copy(x.Row(bi), feats[i])
			y.Set(bi, 0, m.normalize(scores[i]))
		}
		return x, y
	}

	opt := nn.NewAdam(cfg.LR)
	rep := Report{Samples: n}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 64
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(trainIdx), func(i, j int) {
			trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i]
		})
		var epochLoss float64
		var nb int
		for at := 0; at < len(trainIdx); at += batch {
			end := at + batch
			if end > len(trainIdx) {
				end = len(trainIdx)
			}
			x, y := makeBatch(trainIdx[at:end])
			m.net.ZeroGrad()
			pred := m.net.Forward(x)
			loss, grad := nn.MSELoss(pred, y)
			m.net.Backward(grad)
			opt.Step(m.net.Params())
			epochLoss += loss
			nb++
			// forward + backward ≈ 3× forward flops.
			rep.Flops += 3 * m.net.ForwardFlops(end-at)
		}
		rep.TrainLoss = append(rep.TrainLoss, epochLoss/float64(nb))
		if nVal > 0 {
			x, y := makeBatch(valIdx)
			pred := m.net.Forward(x)
			vl, _ := nn.MSELoss(pred, y)
			rep.ValLoss = append(rep.ValLoss, vl)
			rep.Flops += m.net.ForwardFlops(nVal)
		}
	}
	return rep, nil
}

// Predict returns the surrogate score in [0,1] (higher = predicted
// stronger binder) for each molecule.
func (m *Model) Predict(mols []*chem.Molecule) []float64 {
	x := nn.NewMat(len(mols), chem.FeatureDim)
	for i, mol := range mols {
		copy(x.Row(i), mol.FeatureVector())
	}
	out := m.net.Forward(x)
	res := make([]float64, len(mols))
	for i := range res {
		res[i] = out.At(i, 0)
	}
	return res
}

// InferenceFlops estimates FLOPs for scoring n molecules.
func (m *Model) InferenceFlops(n int) int64 { return m.net.ForwardFlops(n) }

// FeatureSource supplies the feature vector of a molecule given its
// library ID. It is the injection point for caching layers: materializing
// a molecule and featurizing it is deterministic and identical across
// tenants, so a long-lived service can memoize vectors once and serve
// every campaign's ML1 screen from memory. Implementations must be safe
// for concurrent use; the returned slice is read-only to callers.
type FeatureSource interface {
	Features(id uint64) []float64
}

// materializeSource is the default FeatureSource: build the molecule from
// its ID and featurize it on the fly.
type materializeSource struct{}

func (materializeSource) Features(id uint64) []float64 {
	return chem.FromID(id).FeatureVector()
}

// PredictIDs scores library molecule IDs with a parallel worker pool, the
// high-throughput inference path of §6.1.1 (one MPI rank per GPU with
// prefetching becomes one goroutine per worker materializing molecules on
// the fly).
func (m *Model) PredictIDs(ids []uint64, workers int) []float64 {
	return m.PredictIDsFrom(ids, workers, nil)
}

// PredictIDsFrom is PredictIDs with an explicit feature source; nil means
// materialize molecules on the fly.
func (m *Model) PredictIDsFrom(ids []uint64, workers int, src FeatureSource) []float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if src == nil {
		src = materializeSource{}
	}
	const shard = 1024
	out := make([]float64, len(ids))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	// The network forward pass is not reentrant (layers cache
	// activations), so each worker clones the model weights into a
	// private forward-only copy — the analogue of each rank loading the
	// deployed TensorRT engine.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			priv := m.cloneForInference()
			for {
				mu.Lock()
				at := next
				next += shard
				mu.Unlock()
				if at >= len(ids) {
					return
				}
				end := at + shard
				if end > len(ids) {
					end = len(ids)
				}
				x := nn.NewMat(end-at, chem.FeatureDim)
				for i := at; i < end; i++ {
					copy(x.Row(i-at), src.Features(ids[i]))
				}
				pred := priv.net.Forward(x)
				for i := at; i < end; i++ {
					out[i] = pred.At(i-at, 0)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// cloneForInference deep-copies the network weights into a new model so
// concurrent forward passes do not share activation caches.
func (m *Model) cloneForInference() *Model {
	clone := NewModel(0)
	src := m.net.Params()
	dst := clone.net.Params()
	for i := range src {
		copy(dst[i].W.V, src[i].W.V)
	}
	clone.lo, clone.hi = m.lo, m.hi
	return clone
}

// TopK returns the indices of the k highest surrogate scores.
func TopK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// BottomK returns the indices of the k lowest raw values (e.g. best
// docking scores).
func BottomK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
