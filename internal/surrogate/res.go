package surrogate

import "sort"

// RES implements the Regression Enrichment Surface analysis (Clyde, Duan &
// Stevens 2020) used in the paper's Fig. 4: RES(α, β) is the fraction of
// the library's true top β·N compounds recovered within the model's
// predicted top α·N. The paper reads the surface at α = 10⁻³ to state
// that the surrogate captures ≈50 % of the top 10⁻⁴ and ≈40 % of the top
// 10⁻³ of the library.
type RES struct {
	Alphas []float64   // predicted-allocation fractions (rows)
	Betas  []float64   // true-top fractions (columns)
	R      [][]float64 // recall surface, R[i][j] = RES(Alphas[i], Betas[j])
	N      int         // library size the surface was computed on
}

// DefaultFractions returns the log-spaced grid used by the Fig. 4
// regenerator: 10⁻⁴ … 10⁻¹ plus 1.
func DefaultFractions() []float64 {
	return []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 1}
}

// ComputeRES builds the surface from surrogate predictions (higher =
// predicted better) and true docking scores (lower = actually better).
// Fractions smaller than 1/len(pred) are floored to one compound.
func ComputeRES(pred, truth []float64, alphas, betas []float64) *RES {
	n := len(pred)
	if n != len(truth) {
		panic("surrogate: RES input length mismatch")
	}
	predRank := TopK(pred, n)     // best predicted first
	trueRank := BottomK(truth, n) // best truth first

	res := &RES{Alphas: alphas, Betas: betas, N: n}
	res.R = make([][]float64, len(alphas))
	// position of each compound in the predicted ranking
	predPos := make([]int, n)
	for pos, idx := range predRank {
		predPos[idx] = pos
	}
	for i, a := range alphas {
		res.R[i] = make([]float64, len(betas))
		cut := count(n, a)
		for j, b := range betas {
			top := count(n, b)
			hits := 0
			for _, idx := range trueRank[:top] {
				if predPos[idx] < cut {
					hits++
				}
			}
			res.R[i][j] = float64(hits) / float64(top)
		}
	}
	return res
}

// count converts a fraction to a compound count, at least 1.
func count(n int, frac float64) int {
	c := int(frac * float64(n))
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// At returns RES(alpha, beta) for grid values; it panics if the pair is
// not on the grid.
func (r *RES) At(alpha, beta float64) float64 {
	ai, bi := -1, -1
	for i, a := range r.Alphas {
		if a == alpha {
			ai = i
		}
	}
	for j, b := range r.Betas {
		if b == beta {
			bi = j
		}
	}
	if ai < 0 || bi < 0 {
		panic("surrogate: RES.At off-grid query")
	}
	return r.R[ai][bi]
}

// EnrichmentFactor returns the classic EF(α): the ratio of the hit rate in
// the predicted top α·N (hits = true top α·N) to the random expectation α.
func EnrichmentFactor(pred, truth []float64, alpha float64) float64 {
	n := len(pred)
	cut := count(n, alpha)
	predTop := TopK(pred, cut)
	trueTop := BottomK(truth, cut)
	inTrue := make(map[int]bool, cut)
	for _, i := range trueTop {
		inTrue[i] = true
	}
	hits := 0
	for _, i := range predTop {
		if inTrue[i] {
			hits++
		}
	}
	hitRate := float64(hits) / float64(cut)
	expected := float64(cut) / float64(n)
	if expected == 0 {
		return 0
	}
	return hitRate / expected
}

// Spearman returns the Spearman rank correlation between surrogate
// predictions and truth (sign-adjusted so that a perfect model scores
// +1: predictions are descending-good, truth ascending-good).
func Spearman(pred, truth []float64) float64 {
	n := len(pred)
	if n < 2 {
		return 0
	}
	pr := ranks(pred)
	tr := ranks(truth)
	// Invert prediction ranks: highest prediction should match lowest
	// truth.
	var d2 float64
	for i := 0; i < n; i++ {
		d := (float64(n-1) - pr[i]) - tr[i]
		d2 += d * d
	}
	return 1 - 6*d2/float64(n)/(float64(n)*float64(n)-1)
}

func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, n)
	for pos, i := range idx {
		r[i] = float64(pos)
	}
	return r
}
