package esmacs

import (
	"math"
	"testing"

	"impeccable/internal/chem"
	"impeccable/internal/receptor"
	"impeccable/internal/xrand"
)

// fastCG returns a heavily shortened CG protocol for unit tests.
func fastCG() Protocol {
	p := CG()
	p.EquilSteps = 50
	p.ProdSteps = 200
	p.SampleEach = 20
	p.MinimizeIters = 30
	return p
}

func TestProtocolDefinitions(t *testing.T) {
	cg, fg := CG(), FG()
	if cg.Replicas != 6 || fg.Replicas != 24 {
		t.Fatalf("replica counts: CG %d, FG %d", cg.Replicas, fg.Replicas)
	}
	if cg.EquilSteps != 1*StepsPerNs || fg.EquilSteps != 2*StepsPerNs {
		t.Fatal("equilibration durations wrong")
	}
	if cg.ProdSteps != 4*StepsPerNs || fg.ProdSteps != 10*StepsPerNs {
		t.Fatal("production durations wrong")
	}
	// Table 2: FG ≈ 10× CG cost. Steps: CG 6*(1+4) = 30 ns-replicas,
	// FG 24*(2+10) = 288: ratio 9.6.
	cgCost := cg.Replicas * (cg.EquilSteps + cg.ProdSteps)
	fgCost := fg.Replicas * (fg.EquilSteps + fg.ProdSteps)
	ratio := float64(fgCost) / float64(cgCost)
	if ratio < 8 || ratio > 12 {
		t.Fatalf("FG/CG cost ratio = %v, want ≈10", ratio)
	}
}

func TestEstimateBasics(t *testing.T) {
	r := NewRunner(receptor.PLPro(), 1)
	m := chem.FromID(5)
	est := r.Estimate(m, nil, fastCG())
	if est.MolID != m.ID || est.Protocol != "ESMACS-CG" {
		t.Fatalf("identity fields wrong: %+v", est)
	}
	if len(est.ReplicaDGs) != 6 {
		t.Fatalf("replica count = %d", len(est.ReplicaDGs))
	}
	if math.IsNaN(est.DeltaG) || math.IsInf(est.DeltaG, 0) {
		t.Fatalf("DeltaG = %v", est.DeltaG)
	}
	if est.StdErr < 0 {
		t.Fatalf("StdErr = %v", est.StdErr)
	}
	if est.Steps != int64(6*(50+200)) {
		t.Fatalf("steps = %d", est.Steps)
	}
	if est.Flops <= 0 {
		t.Fatal("flops accounting missing")
	}
	if est.Trajs != nil {
		t.Fatal("trajectories retained without KeepTrajectories")
	}
}

func TestKeepTrajectories(t *testing.T) {
	r := NewRunner(receptor.PLPro(), 1)
	r.KeepTrajectories = true
	est := r.Estimate(chem.FromID(5), nil, fastCG())
	if len(est.Trajs) != 6 {
		t.Fatalf("trajectories = %d", len(est.Trajs))
	}
	for _, tr := range est.Trajs {
		if len(tr.Frames) == 0 {
			t.Fatal("empty trajectory retained")
		}
	}
}

func TestEstimateDeterministic(t *testing.T) {
	m := chem.FromID(7)
	a := NewRunner(receptor.PLPro(), 3).Estimate(m, nil, fastCG())
	b := NewRunner(receptor.PLPro(), 3).Estimate(m, nil, fastCG())
	if a.DeltaG != b.DeltaG {
		t.Fatalf("not deterministic: %v vs %v", a.DeltaG, b.DeltaG)
	}
	// Parallelism must not change results.
	c := NewRunner(receptor.PLPro(), 3)
	c.Workers = 1
	if got := c.Estimate(m, nil, fastCG()); got.DeltaG != a.DeltaG {
		t.Fatalf("worker count changed result: %v vs %v", got.DeltaG, a.DeltaG)
	}
}

func TestEnsembleTightensVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	// §5.1.3: single-trajectory MMPBSA is highly variable; the 6-replica
	// ensemble mean is substantially more reproducible. Compare the
	// spread of repeated estimates under different seeds.
	m := chem.FromID(11)
	tg := receptor.PLPro()
	single := fastCG()
	single.Replicas = 1
	ensemble := fastCG()

	var singles, ensembles []float64
	for seed := uint64(0); seed < 8; seed++ {
		singles = append(singles, NewRunner(tg, seed).Estimate(m, nil, single).DeltaG)
		ensembles = append(ensembles, NewRunner(tg, seed).Estimate(m, nil, ensemble).DeltaG)
	}
	sdS := stddev(singles)
	sdE := stddev(ensembles)
	if sdE >= sdS {
		t.Fatalf("ensemble spread %v not below single-trajectory spread %v", sdE, sdS)
	}
	t.Logf("single-replica sd %.3f, 6-replica ensemble sd %.3f", sdS, sdE)
}

func stddev(x []float64) float64 {
	var s, ss float64
	for _, v := range x {
		s += v
		ss += v * v
	}
	n := float64(len(x))
	return math.Sqrt(ss/n - (s/n)*(s/n))
}

func TestDeltaGRangeMatchesPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	// Fig. 5A: CG-ESMACS values lie roughly in [-60, +20] kcal/mol.
	r := NewRunner(receptor.PLPro(), 13)
	rng := xrand.New(2)
	proto := fastCG()
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 12; i++ {
		est := r.Estimate(chem.FromID(rng.Uint64()), nil, proto)
		lo = math.Min(lo, est.DeltaG)
		hi = math.Max(hi, est.DeltaG)
	}
	if lo < -100 || hi > 60 {
		t.Fatalf("ΔG range [%v, %v] far outside the paper's scale", lo, hi)
	}
	if lo > 0 {
		t.Fatalf("no negative (binding) estimates at all: min %v", lo)
	}
}

func TestRankingBeatsDocking(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	// The accuracy ladder (Table 2): ESMACS ranking should correlate
	// with ground truth at least as well as cheap docking does. Here we
	// just require a solid positive correlation.
	tg := receptor.PLPro()
	r := NewRunner(tg, 17)
	rng := xrand.New(3)
	proto := fastCG()
	var truths, ests []float64
	for i := 0; i < 16; i++ {
		m := chem.FromID(rng.Uint64())
		truths = append(truths, tg.TrueAffinity(m))
		ests = append(ests, r.Estimate(m, nil, proto).DeltaG)
	}
	c := pearson(truths, ests)
	if c < 0.3 {
		t.Fatalf("truth/ESMACS correlation = %v, want >= 0.3", c)
	}
	t.Logf("truth/ESMACS-CG correlation = %.3f", c)
}

func pearson(a, b []float64) float64 {
	var sx, sy, sxx, syy, sxy float64
	n := float64(len(a))
	for i := range a {
		sx += a[i]
		sy += b[i]
		sxx += a[i] * a[i]
		syy += b[i] * b[i]
		sxy += a[i] * b[i]
	}
	return (sxy/n - sx/n*sy/n) / math.Sqrt((sxx/n-sx/n*sx/n)*(syy/n-sy/n*sy/n))
}

func TestNodeHoursCalibration(t *testing.T) {
	// One CG ligand = 6 replicas × 5 ns must cost exactly 0.5 node-hours
	// (Table 2).
	cg := CG()
	steps := int64(cg.Replicas * (cg.EquilSteps + cg.ProdSteps))
	if got := NodeHours(steps); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CG NodeHours = %v, want 0.5", got)
	}
	// FG ≈ 5 node-hours (Table 2 row 4): 24 × 12 ns / (6 × 5 ns) × 0.5 = 4.8.
	fg := FG()
	fgSteps := int64(fg.Replicas * (fg.EquilSteps + fg.ProdSteps))
	if got := NodeHours(fgSteps); math.Abs(got-4.8) > 0.3 {
		t.Fatalf("FG NodeHours = %v, want ≈5", got)
	}
}

func BenchmarkEstimateCGFast(b *testing.B) {
	r := NewRunner(receptor.PLPro(), 1)
	m := chem.FromID(1)
	proto := fastCG()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Estimate(m, nil, proto)
	}
}
