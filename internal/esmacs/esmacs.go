// Package esmacs implements the S3 stage: ensemble binding free-energy
// estimation with the ESMACS protocol (Enhanced Sampling of Molecular
// dynamics with Approximation of Continuum Solvent; Coveney et al.). Per
// the paper (§3.2, §5.1.3):
//
//   - a protocol runs an ensemble of independent replicas of the same
//     LPC (coarse-grained: 6 replicas, 1 ns equilibration, 4 ns
//     production; fine-grained: 24 replicas, 2 ns, 10 ns);
//
//   - each replica yields an MMPBSA-style free-energy estimate from its
//     production trajectory; the ensemble mean is the reported ΔG and
//     the bootstrap spread its error — single-trajectory MMPBSA has
//     "huge variability" that ensemble averaging tames, which
//     BenchmarkAblation_EnsembleVariance reproduces;
//
//   - CG costs roughly an order of magnitude less than FG (Table 2:
//     0.5 vs 5 node-hours per ligand), preserved here by the step-count
//     ratio.
//
// MMPBSA-style estimates famously overestimate binding magnitudes: the
// paper's Fig. 5A histogram spans [-60, +20] kcal/mol for true affinities
// an order of magnitude smaller. The estimator applies the same
// systematic scale so the reproduced histogram matches the paper's range.
package esmacs

import (
	"math"
	"runtime"
	"sync"

	"impeccable/internal/chem"
	"impeccable/internal/geom"
	"impeccable/internal/md"
	"impeccable/internal/receptor"
	"impeccable/internal/xrand"
)

// StepsPerNs converts the paper's nanosecond durations to integration
// steps at this substrate's fidelity. One "ns" of coarse-grained sampling
// is 200 steps; the CG:FG cost ratio of Table 2 is preserved exactly.
const StepsPerNs = 200

// MMPBSA estimator constants (see package comment).
const (
	mmScale           = 2.5 // systematic MMPBSA magnitude inflation
	entropyPerRotBond = 1.2 // configurational-entropy penalty (kcal/mol)
)

// Protocol describes an ESMACS variant.
type Protocol struct {
	Name          string
	Replicas      int
	EquilSteps    int
	ProdSteps     int
	SampleEach    int // production frame stride
	MinimizeIters int
	Integ         md.Integrator
}

// CG returns the coarse-grained protocol: 6 replicas, 1 ns equilibration,
// 4 ns production (§3.2).
func CG() Protocol {
	return Protocol{
		Name:          "ESMACS-CG",
		Replicas:      6,
		EquilSteps:    1 * StepsPerNs,
		ProdSteps:     4 * StepsPerNs,
		SampleEach:    20,
		MinimizeIters: 60,
		Integ:         md.DefaultIntegrator(),
	}
}

// FG returns the fine-grained protocol: 24 replicas, 2 ns equilibration,
// 10 ns production (§3.2).
func FG() Protocol {
	return Protocol{
		Name:          "ESMACS-FG",
		Replicas:      24,
		EquilSteps:    2 * StepsPerNs,
		ProdSteps:     10 * StepsPerNs,
		SampleEach:    20,
		MinimizeIters: 100,
		Integ:         md.DefaultIntegrator(),
	}
}

// SingleTrajectory returns the classical 1-replica MMPBSA baseline the
// paper argues against (§5.1.3); used by the ensemble-variance ablation.
func SingleTrajectory() Protocol {
	p := CG()
	p.Name = "MMPBSA-1"
	p.Replicas = 1
	return p
}

// Estimate is the result of an ESMACS calculation on one LPC.
type Estimate struct {
	MolID      uint64
	Protocol   string
	DeltaG     float64   // ensemble-mean binding free energy (kcal/mol)
	StdErr     float64   // standard error over replicas
	ReplicaDGs []float64 // per-replica estimates
	MeanRMSD   float64   // ensemble-mean ligand RMSD (Fig. 5B input)
	MaxRMSD    float64
	Trajs      []*md.Trajectory // retained when Runner.KeepTrajectories
	Steps      int64            // integration steps spent
	Flops      int64            // estimated floating-point operations
}

// Runner executes ESMACS protocols against one target.
type Runner struct {
	Target *receptor.Target
	// Workers bounds replica-level parallelism; 0 means GOMAXPROCS.
	Workers int
	// Seed derives per-replica RNG streams.
	Seed uint64
	// KeepTrajectories retains production trajectories on the Estimate
	// (needed when feeding S2; costs memory).
	KeepTrajectories bool
}

// NewRunner builds a runner.
func NewRunner(t *receptor.Target, seed uint64) *Runner {
	return &Runner{Target: t, Seed: seed}
}

// Estimate runs the protocol for molecule m starting from ligand pose
// start (nil = default cavity placement).
func (r *Runner) Estimate(m *chem.Molecule, start []geom.Vec3, proto Protocol) Estimate {
	est := Estimate{
		MolID:      m.ID,
		Protocol:   proto.Name,
		ReplicaDGs: make([]float64, proto.Replicas),
	}
	trajs := make([]*md.Trajectory, proto.Replicas)
	var steps, flops int64
	var mu sync.Mutex

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > proto.Replicas {
		workers = proto.Replicas
	}
	var wg sync.WaitGroup
	var next int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				rep := next
				next++
				mu.Unlock()
				if rep >= proto.Replicas {
					return
				}
				tr, dg, st := r.replica(m, start, proto, rep)
				mu.Lock()
				est.ReplicaDGs[rep] = dg
				trajs[rep] = tr
				steps += st
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	sys := md.NewSystem(r.Target, m, start) // for flop model only
	flops = steps * sys.FlopsPerStep()
	est.Steps = steps
	est.Flops = flops

	var sum, sumsq, rmsdSum float64
	for rep, dg := range est.ReplicaDGs {
		sum += dg
		sumsq += dg * dg
		rmsdSum += trajs[rep].MeanRMSD()
		if mr := trajs[rep].MaxRMSD(); mr > est.MaxRMSD {
			est.MaxRMSD = mr
		}
	}
	n := float64(proto.Replicas)
	est.DeltaG = sum / n
	if proto.Replicas > 1 {
		variance := sumsq/n - est.DeltaG*est.DeltaG
		if variance < 0 {
			variance = 0
		}
		est.StdErr = math.Sqrt(variance / (n - 1))
	}
	est.MeanRMSD = rmsdSum / n
	if r.KeepTrajectories {
		est.Trajs = trajs
	}
	return est
}

// replica runs one independent simulation: minimize → equilibrate →
// production, returning the trajectory, its MMPBSA-style ΔG and the step
// count.
func (r *Runner) replica(m *chem.Molecule, start []geom.Vec3, proto Protocol, rep int) (*md.Trajectory, float64, int64) {
	sys := md.NewSystem(r.Target, m, start)
	rng := xrand.NewFrom(r.Seed^m.ID, uint64(rep)+uint64(len(proto.Name))<<32)
	md.Minimize(sys, proto.MinimizeIters, 1e-3)
	proto.Integ.InitVelocities(sys, rng)
	md.Run(sys, proto.Integ, md.RunConfig{Steps: proto.EquilSteps}, rng)
	tr := md.Run(sys, proto.Integ, md.RunConfig{
		Steps:      proto.ProdSteps,
		SampleEach: proto.SampleEach,
		Record:     true,
	}, rng)
	dg := mmpbsa(m, tr)
	return tr, dg, int64(proto.EquilSteps + proto.ProdSteps)
}

// mmpbsa converts a production trajectory into a single-replica binding
// free-energy estimate: inflated mean interaction enthalpy plus a
// rotatable-bond configurational-entropy penalty.
func mmpbsa(m *chem.Molecule, tr *md.Trajectory) float64 {
	return mmScale*tr.MeanInterEnergy() + entropyPerRotBond*float64(m.Desc.RotBonds)
}

// NodeHours converts an estimate's step count into simulated Summit
// node-hours using the Table 2 calibration: one CG ligand (6 replicas ×
// 5 ns) costs 0.5 node-hours.
func NodeHours(steps int64) float64 {
	cgSteps := float64(6 * 5 * StepsPerNs)
	return 0.5 * float64(steps) / cgSteps
}
