package nn

import (
	"strings"
	"testing"

	"impeccable/internal/xrand"
)

// directConvForward is the in-test executable spec for Conv2D.Forward:
// the original 6-deep scalar loop, accumulator seeded with the bias.
func directConvForward(c *Conv2D, x *Mat) *Mat {
	oh, ow := c.OutH(), c.OutW()
	out := NewMat(x.R, c.OutDim())
	for s := 0; s < x.R; s++ {
		in := x.Row(s)
		o := out.Row(s)
		for oc := 0; oc < c.OutC; oc++ {
			w := c.W.W.Row(oc)
			acc0 := c.B.W.V[oc]
			for y := 0; y < oh; y++ {
				for xx := 0; xx < ow; xx++ {
					acc := acc0
					wi := 0
					for ic := 0; ic < c.InC; ic++ {
						for ky := 0; ky < c.K; ky++ {
							base := c.inIdx(ic, y+ky, xx)
							for kx := 0; kx < c.K; kx++ {
								acc += w[wi] * in[base+kx]
								wi++
							}
						}
					}
					o[c.outIdx(oc, y, xx)] = acc
				}
			}
		}
	}
	return out
}

// directConvBackward is the in-test spec for Conv2D.Backward: the direct
// scatter loop with full IEEE semantics (no zero-grad skip).
func directConvBackward(c *Conv2D, x, grad *Mat) (dW, dB, dx *Mat) {
	oh, ow := c.OutH(), c.OutW()
	dW = NewMat(c.W.G.R, c.W.G.C)
	dB = NewMat(1, c.OutC)
	dx = NewMat(x.R, x.C)
	for s := 0; s < x.R; s++ {
		in := x.Row(s)
		g := grad.Row(s)
		dIn := dx.Row(s)
		for oc := 0; oc < c.OutC; oc++ {
			w := c.W.W.Row(oc)
			dWr := dW.Row(oc)
			for y := 0; y < oh; y++ {
				for xx := 0; xx < ow; xx++ {
					gv := g[c.outIdx(oc, y, xx)]
					dB.V[oc] += gv
					wi := 0
					for ic := 0; ic < c.InC; ic++ {
						for ky := 0; ky < c.K; ky++ {
							base := c.inIdx(ic, y+ky, xx)
							for kx := 0; kx < c.K; kx++ {
								dWr[wi] += gv * in[base+kx]
								dIn[base+kx] += gv * w[wi]
								wi++
							}
						}
					}
				}
			}
		}
	}
	return dW, dB, dx
}

// dB's direct loop above sums per (s, oc, p); the im2col path sums per
// (s, p, oc). For a single output channel the orders coincide exactly;
// with several channels each channel's chain still visits its terms in
// (s, p) order, so the chains are identical term-for-term.

func TestConv2DForwardMatchesDirect(t *testing.T) {
	r := xrand.New(5)
	for _, batch := range []int{1, 2, 5} {
		c := NewConv2D(3, 8, 8, 4, 3, r)
		x := NewMat(batch, 3*8*8)
		fillMixed(x, r)
		assertMatBits(t, "Conv2D.Forward", c.Forward(x), directConvForward(c, x))
	}
}

func TestConv2DBackwardMatchesDirect(t *testing.T) {
	r := xrand.New(6)
	c := NewConv2D(2, 7, 7, 3, 3, r)
	x := NewMat(4, 2*7*7)
	fillMixed(x, r)
	out := c.Forward(x)
	grad := NewMat(out.R, out.C)
	fillMixed(grad, r)
	// Sprinkle exact zeros to exercise the finite-guarded skip in dIn
	// and the reshaped-grad skip in dW.
	for i := 0; i < len(grad.V); i += 3 {
		grad.V[i] = 0
	}
	dx := c.Backward(grad)
	wantDW, wantDB, wantDx := directConvBackward(c, x, grad)
	assertMatBits(t, "Conv2D dW", c.W.G, wantDW)
	assertMatBits(t, "Conv2D dB", c.B.G, wantDB)
	assertMatBits(t, "Conv2D dx", dx, wantDx)
}

func TestConv2DBackwardShapeGuard(t *testing.T) {
	r := xrand.New(8)
	c := NewConv2D(1, 6, 6, 2, 3, r)
	x := NewMat(3, 36)
	c.Forward(x)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward accepted a grad from a different batch size")
		}
	}()
	c.Backward(NewMat(5, c.OutDim()))
}

func TestSequentialInferMatchesForwardMLP(t *testing.T) {
	r := xrand.New(9)
	net := NewSequential(
		NewDense(20, 16, r), &ReLU{},
		NewDense(16, 8, r), &LeakyReLU{Alpha: 0.1},
		NewDense(8, 4, r), &Tanh{},
		NewDense(4, 1, r), &Sigmoid{},
	)
	x := NewMat(7, 20)
	fillMixed(x, r)
	want := net.Forward(x)
	ar := GetArena()
	defer ar.Release()
	assertMatBits(t, "Sequential.Infer MLP", net.Infer(x, ar), want)
}

func TestSequentialInferMatchesForwardCNN(t *testing.T) {
	r := xrand.New(10)
	c1 := NewConv2D(2, 10, 10, 4, 3, r) // 4×8×8
	p1 := NewMaxPool2D(4, 8, 8, 2)      // 4×4×4
	net := NewSequential(
		c1, &ReLU{}, p1,
		NewDense(p1.OutDim(), 6, r), &ReLU{},
		NewDense(6, 1, r), &Sigmoid{},
	)
	x := NewMat(3, 2*10*10)
	fillMixed(x, r)
	want := net.Forward(x)
	ar := GetArena()
	defer ar.Release()
	assertMatBits(t, "Sequential.Infer CNN", net.Infer(x, ar), want)
}

// TestInferLeavesNoState verifies Infer does not disturb training state:
// a Forward/Backward pair after interleaved Infer calls behaves as if
// the Infer calls never happened.
func TestInferLeavesNoState(t *testing.T) {
	r := xrand.New(12)
	mk := func() *Sequential {
		rr := xrand.New(99)
		return NewSequential(NewDense(6, 5, rr), &ReLU{}, NewDense(5, 1, rr), &Sigmoid{})
	}
	netA, netB := mk(), mk()
	x := NewMat(4, 6)
	fillMixed(x, r)
	other := NewMat(9, 6)
	fillMixed(other, r)
	grad := NewMat(4, 1)
	fillMixed(grad, r)

	outA := netA.Forward(x)
	ar := GetArena()
	netA.Infer(other, ar) // interleaved inference on a different batch
	ar.Release()
	dxA := netA.Backward(grad)

	outB := netB.Forward(x)
	dxB := netB.Backward(grad)

	assertMatBits(t, "forward with interleaved Infer", outA, outB)
	assertMatBits(t, "backward with interleaved Infer", dxA, dxB)
	for i, p := range netA.Params() {
		assertMatBits(t, "grads with interleaved Infer", p.G, netB.Params()[i].G)
	}
}

// TestMaxPoolInterleavedBatchPanics is the regression for the stale
// argmax bug: Backward used whatever Forward ran last, so interleaving a
// different-size batch silently corrupted (or crashed on) the gradient.
// Now it must panic with a diagnosable message.
func TestMaxPoolInterleavedBatchPanics(t *testing.T) {
	r := xrand.New(13)
	m := NewMaxPool2D(2, 4, 4, 2)
	x4 := NewMat(4, 32)
	fillMixed(x4, r)
	out4 := m.Forward(x4)
	grad4 := NewMat(out4.R, out4.C)
	fillMixed(grad4, r)

	x2 := NewMat(2, 32)
	fillMixed(x2, r)
	m.Forward(x2) // interleaved batch invalidates argmax for grad4

	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("Backward accepted a grad whose batch does not match the last Forward")
		}
		msg, ok := rec.(string)
		if !ok || !strings.Contains(msg, "does not match last Forward") {
			t.Fatalf("panic message not diagnosable: %v", rec)
		}
	}()
	m.Backward(grad4)
}
