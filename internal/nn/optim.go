package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and leaves gradients
	// untouched (callers ZeroGrad between batches).
	Step(params []*Param)
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param]*Mat
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: map[*Param]*Mat{}}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		v := o.vel[p]
		if v == nil {
			v = NewMat(p.W.R, p.W.C)
			o.vel[p] = v
		}
		for i := range p.W.V {
			v.V[i] = o.Momentum*v.V[i] - o.LR*p.G.V[i]
			p.W.V[i] += v.V[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param]*Mat
}

// NewAdam returns Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param]*Mat{}, v: map[*Param]*Mat{}}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, v := o.m[p], o.v[p]
		if m == nil {
			m = NewMat(p.W.R, p.W.C)
			v = NewMat(p.W.R, p.W.C)
			o.m[p], o.v[p] = m, v
		}
		for i := range p.W.V {
			g := p.G.V[i]
			m.V[i] = o.Beta1*m.V[i] + (1-o.Beta1)*g
			v.V[i] = o.Beta2*v.V[i] + (1-o.Beta2)*g*g
			mh := m.V[i] / bc1
			vh := v.V[i] / bc2
			p.W.V[i] -= o.LR * mh / (math.Sqrt(vh) + o.Eps)
		}
	}
}

// RMSprop is the optimizer the paper trains the 3D-AAE with (§7.1.3,
// learning rate 1e-5).
type RMSprop struct {
	LR, Rho, Eps float64
	v            map[*Param]*Mat
}

// NewRMSprop returns RMSprop with decay 0.9 and ε=1e-8.
func NewRMSprop(lr float64) *RMSprop {
	return &RMSprop{LR: lr, Rho: 0.9, Eps: 1e-8, v: map[*Param]*Mat{}}
}

// Step implements Optimizer.
func (o *RMSprop) Step(params []*Param) {
	for _, p := range params {
		v := o.v[p]
		if v == nil {
			v = NewMat(p.W.R, p.W.C)
			o.v[p] = v
		}
		for i := range p.W.V {
			g := p.G.V[i]
			v.V[i] = o.Rho*v.V[i] + (1-o.Rho)*g*g
			p.W.V[i] -= o.LR * g / (math.Sqrt(v.V[i]) + o.Eps)
		}
	}
}

// AdaDelta is the per-dimension-scale-free optimizer (Zeiler 2012); the
// docking engine uses the same rule for pose refinement, and having it
// here completes the optimizer family for ablations.
type AdaDelta struct {
	Rho, Eps float64
	eg, ex   map[*Param]*Mat
}

// NewAdaDelta returns AdaDelta with ρ=0.95 and ε=1e-6.
func NewAdaDelta() *AdaDelta {
	return &AdaDelta{Rho: 0.95, Eps: 1e-6, eg: map[*Param]*Mat{}, ex: map[*Param]*Mat{}}
}

// Step implements Optimizer.
func (o *AdaDelta) Step(params []*Param) {
	for _, p := range params {
		eg, ex := o.eg[p], o.ex[p]
		if eg == nil {
			eg = NewMat(p.W.R, p.W.C)
			ex = NewMat(p.W.R, p.W.C)
			o.eg[p], o.ex[p] = eg, ex
		}
		for i := range p.W.V {
			g := p.G.V[i]
			eg.V[i] = o.Rho*eg.V[i] + (1-o.Rho)*g*g
			dx := -math.Sqrt(ex.V[i]+o.Eps) / math.Sqrt(eg.V[i]+o.Eps) * g
			ex.V[i] = o.Rho*ex.V[i] + (1-o.Rho)*dx*dx
			p.W.V[i] += dx
		}
	}
}

// ClipGrads rescales all gradients so their global L2 norm is at most
// maxNorm (gradient clipping, used by the adversarial training loop).
func ClipGrads(params []*Param, maxNorm float64) {
	var total float64
	for _, p := range params {
		for _, g := range p.G.V {
			total += g * g
		}
	}
	total = math.Sqrt(total)
	if total <= maxNorm || total == 0 {
		return
	}
	scale := maxNorm / total
	for _, p := range params {
		for i := range p.G.V {
			p.G.V[i] *= scale
		}
	}
}

// ClipWeights clamps every weight into [-c, c] (the WGAN weight-clipping
// Lipschitz constraint used by the AAE critic; see DESIGN.md on the
// gradient-penalty substitution).
func ClipWeights(params []*Param, c float64) {
	for _, p := range params {
		for i := range p.W.V {
			if p.W.V[i] > c {
				p.W.V[i] = c
			} else if p.W.V[i] < -c {
				p.W.V[i] = -c
			}
		}
	}
}
