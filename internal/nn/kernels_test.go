package nn

import (
	"math"
	"runtime"
	"testing"

	"impeccable/internal/xrand"
)

// bitsEqual treats two floats as equal when their bit patterns match or
// both are NaN (payloads may differ between compilers, never between our
// kernels and the reference — but the looser test documents intent).
func bitsEqual(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func assertMatBits(t *testing.T, label string, got, want *Mat) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.R, got.C, want.R, want.C)
	}
	for i, v := range got.V {
		if !bitsEqual(v, want.V[i]) {
			t.Fatalf("%s: element %d = %v (bits %x), want %v (bits %x)",
				label, i, v, math.Float64bits(v), want.V[i], math.Float64bits(want.V[i]))
		}
	}
}

// fillMixed fills m with a mix of magnitudes and exact zeros (the
// fingerprint case) so the zero-skip fast path is exercised.
func fillMixed(m *Mat, r *xrand.RNG) {
	for i := range m.V {
		switch r.Intn(4) {
		case 0:
			m.V[i] = 0
		case 1:
			m.V[i] = r.Range(-1, 1)
		case 2:
			m.V[i] = r.Range(-1e6, 1e6)
		default:
			m.V[i] = r.Range(-1e-6, 1e-6)
		}
	}
}

// kernelShapes covers degenerate, odd (non-multiple of the 4-wide
// register block), tall/thin, and production-like shapes.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{7, 1, 7},
	{2, 3, 5},
	{4, 4, 4},
	{5, 5, 5},
	{13, 9, 11},
	{64, 264, 128}, // the surrogate's input layer shape
	{33, 17, 29},
}

func TestKernelsBitIdenticalToReference(t *testing.T) {
	r := xrand.New(7)
	for _, sh := range kernelShapes {
		a := NewMat(sh.m, sh.k)
		b := NewMat(sh.k, sh.n)
		fillMixed(a, r)
		fillMixed(b, r)
		assertMatBits(t, "MatMul", MatMul(a, b), RefMatMul(a, b))

		at := NewMat(sh.k, sh.m) // aᵀ·b with shared leading dim k
		bt := NewMat(sh.k, sh.n)
		fillMixed(at, r)
		fillMixed(bt, r)
		assertMatBits(t, "MatMulATB", MatMulATB(at, bt), RefMatMulATB(at, bt))

		ab := NewMat(sh.m, sh.k)
		bb := NewMat(sh.n, sh.k)
		fillMixed(ab, r)
		fillMixed(bb, r)
		assertMatBits(t, "MatMulABT", MatMulABT(ab, bb), RefMatMulABT(ab, bb))
	}
}

// TestKernelsBitIdenticalParallel forces the goroutine fan-out (this
// host may have a single core, where kernelWorkers always picks 1) and
// checks the row-partitioned path still matches the reference exactly.
func TestKernelsBitIdenticalParallel(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	r := xrand.New(11)
	m, k, n := 96, 264, 128 // > 2·kernelParallelFlops, so workers > 1
	if kernelWorkers(m, int64(m)*int64(k)*int64(n)) < 2 {
		t.Fatal("shape too small to exercise the parallel path")
	}
	a, b := NewMat(m, k), NewMat(k, n)
	fillMixed(a, r)
	fillMixed(b, r)
	assertMatBits(t, "MatMul parallel", MatMul(a, b), RefMatMul(a, b))

	at, bt := NewMat(k, m), NewMat(k, n)
	fillMixed(at, r)
	fillMixed(bt, r)
	assertMatBits(t, "MatMulATB parallel", MatMulATB(at, bt), RefMatMulATB(at, bt))

	ab, bb := NewMat(m, k), NewMat(n, k)
	fillMixed(ab, r)
	fillMixed(bb, r)
	assertMatBits(t, "MatMulABT parallel", MatMulABT(ab, bb), RefMatMulABT(ab, bb))
}

// TestMatMulNaNInfPropagation is the regression for the zero-skip bug:
// the old kernels skipped every aik == 0 term, so 0·NaN and 0·±Inf were
// silently dropped instead of poisoning the output. IEEE requires
// 0·NaN = NaN and 0·±Inf = NaN.
func TestMatMulNaNInfPropagation(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	for _, poison := range []float64{nan, inf, -inf} {
		a := FromRows([][]float64{{0, 1}})
		b := FromRows([][]float64{{poison, 0}, {2, 3}})
		out := MatMul(a, b)
		if !math.IsNaN(out.At(0, 0)) {
			t.Fatalf("MatMul: 0·%v dropped: got %v, want NaN", poison, out.At(0, 0))
		}
		assertMatBits(t, "MatMul poison", out, RefMatMul(a, b))

		at := FromRows([][]float64{{0}, {1}}) // aᵀ = [0 1]
		bt := FromRows([][]float64{{poison}, {2}})
		outATB := MatMulATB(at, bt)
		if !math.IsNaN(outATB.At(0, 0)) {
			t.Fatalf("MatMulATB: 0·%v dropped: got %v, want NaN", poison, outATB.At(0, 0))
		}
		assertMatBits(t, "MatMulATB poison", outATB, RefMatMulATB(at, bt))

		ab := FromRows([][]float64{{0, 1}})
		bb := FromRows([][]float64{{poison, 0}})
		outABT := MatMulABT(ab, bb)
		if !math.IsNaN(outABT.At(0, 0)) {
			t.Fatalf("MatMulABT: 0·%v dropped: got %v, want NaN", poison, outABT.At(0, 0))
		}
		assertMatBits(t, "MatMulABT poison", outABT, RefMatMulABT(ab, bb))
	}
}

// TestMatMulSparseZeroRowsExact pins the other side of the finite guard:
// with finite operands, skipping zero terms must not change a single bit
// relative to the no-skip reference.
func TestMatMulSparseZeroRowsExact(t *testing.T) {
	r := xrand.New(3)
	a := NewMat(9, 40)
	b := NewMat(40, 7)
	fillMixed(b, r)
	for i := range a.V {
		if r.Intn(10) == 0 { // ~90% zeros, like fingerprint bits
			a.V[i] = r.Range(-2, 2)
		}
	}
	assertMatBits(t, "sparse MatMul", MatMul(a, b), RefMatMul(a, b))
}

func TestArenaMats(t *testing.T) {
	ar := GetArena()
	defer ar.Release()
	m1 := ar.Mat(5, 7)
	if m1.R != 5 || m1.C != 7 || len(m1.V) != 35 {
		t.Fatalf("arena mat shape: %dx%d len %d", m1.R, m1.C, len(m1.V))
	}
	for i := range m1.V {
		m1.V[i] = float64(i)
	}
	m2 := ar.Mat(3, 3)
	for i := range m2.V {
		m2.V[i] = -1
	}
	for i := range m1.V { // distinct slabs: m2 writes must not alias m1
		if m1.V[i] != float64(i) {
			t.Fatalf("arena slabs alias: m1[%d] = %v", i, m1.V[i])
		}
	}
	ar.Reset()
	m3 := ar.Mat(2, 2)
	_ = m3.V[3] // sized correctly after reset
	if z := ar.Mat(0, 5); len(z.V) != 0 {
		t.Fatalf("zero-size arena mat has %d elements", len(z.V))
	}
}

// FuzzMatMul cross-checks the blocked kernels against the scalar
// reference on fuzzer-chosen shapes and data, including NaN/Inf.
func FuzzMatMul(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), uint64(0))
	f.Add(uint8(4), uint8(4), uint8(4), uint64(1))
	f.Add(uint8(13), uint8(7), uint8(5), uint64(42))
	f.Fuzz(func(t *testing.T, mr, kr, nr uint8, seed uint64) {
		m, k, n := int(mr%16)+1, int(kr%16)+1, int(nr%16)+1
		r := xrand.New(seed)
		fill := func(mat *Mat) {
			for i := range mat.V {
				switch r.Intn(8) {
				case 0:
					mat.V[i] = 0
				case 1:
					mat.V[i] = math.NaN()
				case 2:
					mat.V[i] = math.Inf(1 - 2*r.Intn(2))
				default:
					mat.V[i] = r.Range(-10, 10)
				}
			}
		}
		a, b := NewMat(m, k), NewMat(k, n)
		fill(a)
		fill(b)
		got, want := MatMul(a, b), RefMatMul(a, b)
		for i := range got.V {
			if !bitsEqual(got.V[i], want.V[i]) {
				t.Fatalf("MatMul[%d] = %v, ref %v (m=%d k=%d n=%d seed=%d)",
					i, got.V[i], want.V[i], m, k, n, seed)
			}
		}
		at, bt := NewMat(k, m), NewMat(k, n)
		fill(at)
		fill(bt)
		gATB, wATB := MatMulATB(at, bt), RefMatMulATB(at, bt)
		for i := range gATB.V {
			if !bitsEqual(gATB.V[i], wATB.V[i]) {
				t.Fatalf("MatMulATB[%d] = %v, ref %v", i, gATB.V[i], wATB.V[i])
			}
		}
		ab, bb := NewMat(m, k), NewMat(n, k)
		fill(ab)
		fill(bb)
		gABT, wABT := MatMulABT(ab, bb), RefMatMulABT(ab, bb)
		for i := range gABT.V {
			if !bitsEqual(gABT.V[i], wABT.V[i]) {
				t.Fatalf("MatMulABT[%d] = %v, ref %v", i, gABT.V[i], wABT.V[i])
			}
		}
	})
}
