// kernels.go holds the blocked, goroutine-parallel matmul kernels behind
// the public MatMul family. The design constraints, in order:
//
//  1. Bit-identity: every output element is produced by a single
//     accumulator chain that adds terms in exactly the reference
//     kernel's order (see kernels_ref.go), so blocking and parallelism
//     never perturb a result. Register blocking only changes *which*
//     loads are shared, never the per-element summation order, and the
//     row-parallel path assigns each output element to exactly one
//     goroutine.
//  2. IEEE semantics: a zero multiplier may only be skipped when the
//     other operand panel is entirely finite (0·NaN = NaN, 0·±Inf =
//     NaN). The panel is scanned once per call — O(len) against the
//     O(R·len) multiply — so sparse fingerprint rows keep their fast
//     path without silently dropping NaN/Inf propagation.
//  3. Determinism: parallelism is a pure row partition; no atomics, no
//     reductions across goroutines, no scheduling-order dependence.
package nn

import (
	"fmt"
	"runtime"
	"sync"
)

// kernelParallelFlops is the minimum number of multiply-adds a goroutine
// must amortize before the kernels fan out. Below ~10⁵ the WaitGroup
// and scheduling overhead beats the win on every core count we target.
const kernelParallelFlops = 1 << 17

// kernelWorkers sizes the goroutine fan-out for a kernel processing
// `units` independent slices of `flops` total multiply-adds.
func kernelWorkers(units int, flops int64) int {
	p := runtime.GOMAXPROCS(0)
	if p <= 1 || flops < 2*kernelParallelFlops {
		return 1
	}
	w := int(flops / kernelParallelFlops)
	if w > p {
		w = p
	}
	if w > units {
		w = units
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelRanges splits [0, n) into `w` contiguous ranges and invokes fn
// on each, concurrently when w > 1. fn must touch only its own range, so
// the result is deterministic regardless of scheduling.
func parallelRanges(n, w int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// allFinite reports whether every element of v is finite. v-v is 0 for
// finite values and NaN for NaN and ±Inf, so one subtraction replaces
// two classification calls in the scan.
func allFinite(v []float64) bool {
	for _, x := range v {
		if x-x != 0 {
			return false
		}
	}
	return true
}

// MatMulInto computes dst = a·b, overwriting dst (shape a.R×b.C). dst
// must not alias a or b. It is the allocation-free form of MatMul; see
// the package doc in this file for the bit-identity contract.
func MatMulInto(dst, a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("nn: MatMul shape mismatch %dx%d · %dx%d", a.R, a.C, b.R, b.C))
	}
	if dst.R != a.R || dst.C != b.C {
		panic(fmt.Sprintf("nn: MatMulInto dst %dx%d, want %dx%d", dst.R, dst.C, a.R, b.C))
	}
	// Zero multipliers from a may be skipped only while b is all-finite.
	skipZero := allFinite(b.V)
	w := kernelWorkers(a.R, int64(a.R)*int64(a.C)*int64(b.C))
	parallelRanges(a.R, w, func(lo, hi int) {
		matMulRows(dst, a, b, lo, hi, skipZero)
	})
	return dst
}

// matMulRows computes dst rows [lo, hi) with a 4-row register block:
// four rows of a share each b-row load, while every dst element keeps
// its own accumulator summing over k in reference order.
func matMulRows(dst, a, b *Mat, lo, hi int, skipZero bool) {
	n, kk := b.C, a.C
	i := lo
	for ; i+4 <= hi; i += 4 {
		r0 := dst.V[(i+0)*n : (i+1)*n]
		r1 := dst.V[(i+1)*n : (i+2)*n]
		r2 := dst.V[(i+2)*n : (i+3)*n]
		r3 := dst.V[(i+3)*n : (i+4)*n]
		clearRow(r0)
		clearRow(r1)
		clearRow(r2)
		clearRow(r3)
		a0 := a.V[(i+0)*kk : (i+1)*kk]
		a1 := a.V[(i+1)*kk : (i+2)*kk]
		a2 := a.V[(i+2)*kk : (i+3)*kk]
		a3 := a.V[(i+3)*kk : (i+4)*kk]
		for k := 0; k < kk; k++ {
			v0, v1, v2, v3 := a0[k], a1[k], a2[k], a3[k]
			if skipZero && v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			bk := b.V[k*n : k*n+n]
			for j, bv := range bk {
				r0[j] += v0 * bv
				r1[j] += v1 * bv
				r2[j] += v2 * bv
				r3[j] += v3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		ri := dst.V[i*n : (i+1)*n]
		clearRow(ri)
		ai := a.V[i*kk : (i+1)*kk]
		for k := 0; k < kk; k++ {
			v := ai[k]
			if skipZero && v == 0 {
				continue
			}
			bk := b.V[k*n : k*n+n]
			for j, bv := range bk {
				ri[j] += v * bv
			}
		}
	}
}

// MatMulATBInto computes dst = aᵀ·b without materializing the
// transpose, overwriting dst (shape a.C×b.C). dst must not alias a or b.
func MatMulATBInto(dst, a, b *Mat) *Mat {
	if a.R != b.R {
		panic("nn: MatMulATB shape mismatch")
	}
	if dst.R != a.C || dst.C != b.C {
		panic(fmt.Sprintf("nn: MatMulATBInto dst %dx%d, want %dx%d", dst.R, dst.C, a.C, b.C))
	}
	matMulATB(dst, a, b, false)
	return dst
}

// matMulATBAccInto accumulates dst += aᵀ·b without clearing dst first —
// the gradient-accumulation form (Param.G carries sums across batches).
func matMulATBAccInto(dst, a, b *Mat) {
	if a.R != b.R || dst.R != a.C || dst.C != b.C {
		panic("nn: matMulATBAccInto shape mismatch")
	}
	matMulATB(dst, a, b, true)
}

func matMulATB(dst, a, b *Mat, acc bool) {
	skipZero := allFinite(b.V)
	w := kernelWorkers(a.C, int64(a.R)*int64(a.C)*int64(b.C))
	parallelRanges(a.C, w, func(lo, hi int) {
		matMulATBCols(dst, a, b, lo, hi, acc, skipZero)
	})
}

// matMulATBCols computes dst rows [lo, hi) — columns of a — with a
// 4-column register block sharing each (a-row, b-row) pair across four
// accumulator rows. k (= rows of a) stays the sequential reduction.
func matMulATBCols(dst, a, b *Mat, lo, hi int, acc, skipZero bool) {
	n, ac, rows := b.C, a.C, a.R
	i := lo
	for ; i+4 <= hi; i += 4 {
		r0 := dst.V[(i+0)*n : (i+1)*n]
		r1 := dst.V[(i+1)*n : (i+2)*n]
		r2 := dst.V[(i+2)*n : (i+3)*n]
		r3 := dst.V[(i+3)*n : (i+4)*n]
		if !acc {
			clearRow(r0)
			clearRow(r1)
			clearRow(r2)
			clearRow(r3)
		}
		for k := 0; k < rows; k++ {
			ak := a.V[k*ac : k*ac+ac]
			v0, v1, v2, v3 := ak[i], ak[i+1], ak[i+2], ak[i+3]
			if skipZero && v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			bk := b.V[k*n : k*n+n]
			for j, bv := range bk {
				r0[j] += v0 * bv
				r1[j] += v1 * bv
				r2[j] += v2 * bv
				r3[j] += v3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		ri := dst.V[i*n : (i+1)*n]
		if !acc {
			clearRow(ri)
		}
		for k := 0; k < rows; k++ {
			v := a.V[k*ac+i]
			if skipZero && v == 0 {
				continue
			}
			bk := b.V[k*n : k*n+n]
			for j, bv := range bk {
				ri[j] += v * bv
			}
		}
	}
}

// MatMulABTInto computes dst = a·bᵀ without materializing the
// transpose, overwriting dst (shape a.R×b.R). dst must not alias a or b.
func MatMulABTInto(dst, a, b *Mat) *Mat {
	if a.C != b.C {
		panic("nn: MatMulABT shape mismatch")
	}
	if dst.R != a.R || dst.C != b.R {
		panic(fmt.Sprintf("nn: MatMulABTInto dst %dx%d, want %dx%d", dst.R, dst.C, a.R, b.R))
	}
	w := kernelWorkers(a.R, int64(a.R)*int64(a.C)*int64(b.R))
	parallelRanges(a.R, w, func(lo, hi int) {
		matMulABTRows(dst, a, b, lo, hi)
	})
	return dst
}

// matMulABTRows computes dst rows [lo, hi) as dot products, four
// b-rows at a time so each a-element load feeds four independent
// accumulators (each still summing over k in reference order).
func matMulABTRows(dst, a, b *Mat, lo, hi int) {
	bc := b.C
	for i := lo; i < hi; i++ {
		arow := a.V[i*a.C : (i+1)*a.C]
		orow := dst.V[i*dst.C : (i+1)*dst.C]
		j := 0
		for ; j+4 <= b.R; j += 4 {
			b0 := b.V[(j+0)*bc : (j+1)*bc]
			b1 := b.V[(j+1)*bc : (j+2)*bc]
			b2 := b.V[(j+2)*bc : (j+3)*bc]
			b3 := b.V[(j+3)*bc : (j+4)*bc]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < b.R; j++ {
			brow := b.V[j*bc : (j+1)*bc]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// clearRow zeroes a row slice (compiles to memclr).
func clearRow(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
