// pool.go is the scratch arena behind the inference-only forward path:
// size-classed sync.Pool-backed float64 slabs handed out as Mat views,
// reclaimed in bulk with Reset. One arena belongs to one goroutine at a
// time (typically one per inference worker); the underlying pools are
// shared and safe for concurrent use, so arenas are cheap to get and
// release around short-lived work.
package nn

import (
	"math/bits"
	"sync"
)

// maxPooledClass caps which size classes recycle through the shared
// pools: 2^26 float64s = 512 MiB. Larger requests are served by plain
// allocations that die with the arena reset instead of pinning huge
// slabs in the pool forever.
const maxPooledClass = 26

// slabPools[c] holds *[]float64 slabs of capacity 1<<c.
var slabPools [maxPooledClass + 1]sync.Pool

// arenaPool recycles Arena shells themselves.
var arenaPool = sync.Pool{New: func() any { return &Arena{} }}

// Arena is a scratch allocator for inference workloads. Mats returned
// by Mat are valid until the next Reset or Release. The zero value is
// ready to use; an Arena must not be shared between goroutines.
type Arena struct {
	slabs []arenaSlab
}

type arenaSlab struct {
	buf   *[]float64
	class int // pool class, or -1 for oversized one-off allocations
}

// NewArena returns an empty arena (equivalent to &Arena{}; provided for
// symmetry with GetArena).
func NewArena() *Arena { return &Arena{} }

// GetArena fetches a pooled arena. Pair with Release.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// Release resets the arena and returns it to the shared pool. The
// caller must not use the arena, or any Mat it produced, afterwards.
func (a *Arena) Release() {
	a.Reset()
	arenaPool.Put(a)
}

// Reset reclaims every slab handed out since the last Reset. Mats
// produced before the Reset alias recycled memory and must not be used
// again.
func (a *Arena) Reset() {
	for i, s := range a.slabs {
		if s.class >= 0 {
			slabPools[s.class].Put(s.buf)
		}
		a.slabs[i] = arenaSlab{}
	}
	a.slabs = a.slabs[:0]
}

// Mat returns an r×c matrix whose backing slab comes from the arena.
// Contents are unspecified: callers must fully overwrite it (every
// kernel with an Into form clears or overwrites its destination).
func (a *Arena) Mat(r, c int) *Mat {
	return &Mat{R: r, C: c, V: a.slice(r * c)}
}

// slice returns an n-element scratch slice from the pools.
func (a *Arena) slice(n int) []float64 {
	if n == 0 {
		return nil
	}
	class := bits.Len(uint(n - 1))
	if class > maxPooledClass {
		buf := make([]float64, n)
		a.slabs = append(a.slabs, arenaSlab{buf: &buf, class: -1})
		return buf
	}
	var buf *[]float64
	if got := slabPools[class].Get(); got != nil {
		buf = got.(*[]float64)
	} else {
		b := make([]float64, 1<<class)
		buf = &b
	}
	a.slabs = append(a.slabs, arenaSlab{buf: buf, class: class})
	return (*buf)[:n]
}
