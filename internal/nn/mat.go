// Package nn is a from-scratch, stdlib-only neural-network substrate:
// dense matrices, fully connected layers, activations, losses and the
// optimizer family the paper's components use (SGD, Adam, RMSprop for the
// 3D-AAE, ADADELTA for docking local search). It replaces the
// PyTorch/TensorRT stack of the paper's ML1 and S2 stages (see DESIGN.md,
// Substitutions).
//
// The design is deliberately simple: explicit Forward/Backward per layer
// with parameter gradients accumulated into Param.G, no autodiff graph.
// That is all an MLP/PointNet-style model needs, keeps every FLOP
// countable for the Table 3 methodology, and avoids reflection-heavy
// abstractions in the hot path.
package nn

import (
	"fmt"
	"math"

	"impeccable/internal/xrand"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	V    []float64
}

// NewMat allocates an R×C zero matrix.
func NewMat(r, c int) *Mat {
	return &Mat{R: r, C: c, V: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices (all equal length).
func FromRows(rows [][]float64) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.C {
			panic("nn: ragged rows")
		}
		copy(m.V[i*m.C:(i+1)*m.C], row)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.V[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.V[i*m.C+j] = v }

// Row returns a view of row i (shared storage).
func (m *Mat) Row(i int) []float64 { return m.V[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.R, m.C)
	copy(out.V, m.V)
	return out
}

// Zero clears all elements in place.
func (m *Mat) Zero() {
	for i := range m.V {
		m.V[i] = 0
	}
}

// MatMul returns a·b. Panics on shape mismatch. Dispatches to the
// blocked, goroutine-parallel kernels (kernels.go), which are
// bit-identical to the scalar reference (kernels_ref.go) with full
// IEEE semantics — zero terms are only elided when the other operand
// is finite, so 0·NaN and 0·±Inf propagate.
func MatMul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("nn: MatMul shape mismatch %dx%d · %dx%d", a.R, a.C, b.R, b.C))
	}
	return MatMulInto(NewMat(a.R, b.C), a, b)
}

// MatMulATB returns aᵀ·b without materializing the transpose.
func MatMulATB(a, b *Mat) *Mat {
	if a.R != b.R {
		panic("nn: MatMulATB shape mismatch")
	}
	return MatMulATBInto(NewMat(a.C, b.C), a, b)
}

// MatMulABT returns a·bᵀ without materializing the transpose.
func MatMulABT(a, b *Mat) *Mat {
	if a.C != b.C {
		panic("nn: MatMulABT shape mismatch")
	}
	return MatMulABTInto(NewMat(a.R, b.R), a, b)
}

// AddInPlace computes m += x (same shape).
func (m *Mat) AddInPlace(x *Mat) {
	if m.R != x.R || m.C != x.C {
		panic("nn: AddInPlace shape mismatch")
	}
	for i := range m.V {
		m.V[i] += x.V[i]
	}
}

// ScaleInPlace computes m *= s.
func (m *Mat) ScaleInPlace(s float64) {
	for i := range m.V {
		m.V[i] *= s
	}
}

// FrobeniusNorm returns the Frobenius norm.
func (m *Mat) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.V {
		s += v * v
	}
	return math.Sqrt(s)
}

// Param is a trainable tensor with its gradient accumulator.
type Param struct {
	W *Mat // value
	G *Mat // gradient (same shape)
}

// NewParam allocates a zero parameter of the given shape.
func NewParam(r, c int) *Param {
	return &Param{W: NewMat(r, c), G: NewMat(r, c)}
}

// XavierInit fills p.W with Glorot-uniform values for fan-in/fan-out.
func (p *Param) XavierInit(r *xrand.RNG) {
	limit := math.Sqrt(6.0 / float64(p.W.R+p.W.C))
	for i := range p.W.V {
		p.W.V[i] = r.Range(-limit, limit)
	}
}

// HeInit fills p.W with He-normal values (ReLU-friendly).
func (p *Param) HeInit(r *xrand.RNG) {
	std := math.Sqrt(2.0 / float64(p.W.R))
	for i := range p.W.V {
		p.W.V[i] = r.Norm(0, std)
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.G.Zero() }
