package nn

import (
	"math"
	"testing"

	"impeccable/internal/xrand"
)

func TestConv2DKnownKernel(t *testing.T) {
	// 1 channel, 3×3 input, identity-ish kernel picking the center.
	r := xrand.New(1)
	c := NewConv2D(1, 3, 3, 1, 3, r)
	for i := range c.W.W.V {
		c.W.W.V[i] = 0
	}
	c.W.W.V[4] = 1 // center tap
	c.B.W.V[0] = 0.5
	x := FromRows([][]float64{{1, 2, 3, 4, 5, 6, 7, 8, 9}})
	y := c.Forward(x)
	if y.R != 1 || y.C != 1 {
		t.Fatalf("output shape %dx%d", y.R, y.C)
	}
	if y.V[0] != 5.5 {
		t.Fatalf("center-tap conv = %v, want 5.5", y.V[0])
	}
}

func TestConv2DGradient(t *testing.T) {
	r := xrand.New(2)
	conv := NewConv2D(2, 5, 5, 3, 3, r)
	net := NewSequential(conv)
	x := NewMat(2, 2*5*5)
	for i := range x.V {
		x.V[i] = r.NormFloat64()
	}
	numericalGrad(t, net, x, 1e-3)
}

func TestConvPoolDenseGradient(t *testing.T) {
	r := xrand.New(3)
	conv := NewConv2D(1, 6, 6, 2, 3, r) // -> 2×4×4
	pool := NewMaxPool2D(2, 4, 4, 2)    // -> 2×2×2
	net := NewSequential(conv, &ReLU{}, pool, NewDense(8, 1, r))
	x := NewMat(3, 36)
	for i := range x.V {
		x.V[i] = r.NormFloat64()
	}
	numericalGrad(t, net, x, 1e-3)
}

func TestMaxPoolForward(t *testing.T) {
	p := NewMaxPool2D(1, 4, 4, 2)
	x := FromRows([][]float64{{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}})
	y := p.Forward(x)
	want := []float64{6, 8, 14, 16}
	for i, v := range y.V {
		if v != want[i] {
			t.Fatalf("pool[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	p := NewMaxPool2D(1, 2, 2, 2)
	x := FromRows([][]float64{{1, 9, 3, 4}})
	p.Forward(x)
	g := p.Backward(FromRows([][]float64{{2}}))
	want := []float64{0, 2, 0, 0}
	for i, v := range g.V {
		if v != want[i] {
			t.Fatalf("pool grad[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestCNNLearnsPattern(t *testing.T) {
	// A CNN must learn to detect a bright 2×2 corner patch.
	r := xrand.New(4)
	conv := NewConv2D(1, 6, 6, 4, 3, r)
	pool := NewMaxPool2D(4, 4, 4, 2)
	net := NewSequential(conv, &ReLU{}, pool, NewDense(16, 1, r))
	n := 64
	x := NewMat(n, 36)
	y := NewMat(n, 1)
	for s := 0; s < n; s++ {
		row := x.Row(s)
		for i := range row {
			row[i] = r.Norm(0, 0.1)
		}
		if s%2 == 0 {
			row[0], row[1], row[6], row[7] = 2, 2, 2, 2
			y.Set(s, 0, 1)
		}
	}
	opt := NewAdam(0.01)
	var loss float64
	for e := 0; e < 200; e++ {
		net.ZeroGrad()
		pred := net.Forward(x)
		var grad *Mat
		loss, grad = MSELoss(pred, y)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if loss > 0.05 {
		t.Fatalf("CNN failed to learn corner pattern: loss %v", loss)
	}
}

func TestConvOutputDims(t *testing.T) {
	r := xrand.New(5)
	c := NewConv2D(3, 16, 16, 8, 3, r)
	if c.OutH() != 14 || c.OutW() != 14 || c.OutDim() != 8*14*14 {
		t.Fatalf("dims: %d %d %d", c.OutH(), c.OutW(), c.OutDim())
	}
	p := NewMaxPool2D(8, 14, 14, 2)
	if p.OutDim() != 8*7*7 {
		t.Fatalf("pool dim: %d", p.OutDim())
	}
}

func TestConvDeterministic(t *testing.T) {
	mk := func() float64 {
		r := xrand.New(6)
		c := NewConv2D(1, 5, 5, 2, 3, r)
		x := NewMat(1, 25)
		rr := xrand.New(7)
		for i := range x.V {
			x.V[i] = rr.NormFloat64()
		}
		out := c.Forward(x)
		var s float64
		for _, v := range out.V {
			s += v
		}
		return s
	}
	if a, b := mk(), mk(); a != b || math.IsNaN(a) {
		t.Fatalf("conv not deterministic: %v vs %v", a, b)
	}
}

func BenchmarkConvForward16(b *testing.B) {
	r := xrand.New(1)
	c := NewConv2D(3, 16, 16, 8, 3, r)
	x := NewMat(32, 3*16*16)
	for i := range x.V {
		x.V[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Forward(x)
	}
}
