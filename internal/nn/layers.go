package nn

import (
	"fmt"
	"math"

	"impeccable/internal/xrand"
)

// Layer is a differentiable module operating on batched row vectors.
type Layer interface {
	// Forward maps a batch (rows = samples) to its output batch and
	// caches whatever Backward needs.
	Forward(x *Mat) *Mat
	// Backward receives dL/d(output) and returns dL/d(input),
	// accumulating parameter gradients.
	Backward(grad *Mat) *Mat
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Inferencer is the inference-only forward contract: Infer computes the
// same outputs as Forward, bit for bit, but caches nothing on the layer
// and draws all scratch from the caller's arena. Because it never
// writes layer state, any number of goroutines may Infer through the
// same layer concurrently — this is what lets inference workers share
// one set of weights instead of deep-copying the model per worker.
type Inferencer interface {
	Infer(x *Mat, ar *Arena) *Mat
}

// Dense is a fully connected layer: y = x·W + b.
type Dense struct {
	W, B *Param
	x    *Mat // cached input
}

// NewDense builds an in→out dense layer with He initialization.
func NewDense(in, out int, r *xrand.RNG) *Dense {
	d := &Dense{W: NewParam(in, out), B: NewParam(1, out)}
	d.W.HeInit(r)
	return d
}

// NewDenseXavier builds an in→out dense layer with Xavier initialization
// (tanh/sigmoid-friendly).
func NewDenseXavier(in, out int, r *xrand.RNG) *Dense {
	d := &Dense{W: NewParam(in, out), B: NewParam(1, out)}
	d.W.XavierInit(r)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *Mat) *Mat {
	d.x = x
	out := MatMul(x, d.W.W)
	for i := 0; i < out.R; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += d.B.W.V[j]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *Mat) *Mat {
	// dW += xᵀ·grad ; db += Σ_rows grad ; dx = grad·Wᵀ.
	d.W.G.AddInPlace(MatMulATB(d.x, grad))
	for i := 0; i < grad.R; i++ {
		row := grad.Row(i)
		for j := range row {
			d.B.G.V[j] += row[j]
		}
	}
	return MatMulABT(grad, d.W.W)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Infer implements Inferencer: same arithmetic as Forward (matmul, then
// bias added after) with no input cache and all scratch from the arena.
func (d *Dense) Infer(x *Mat, ar *Arena) *Mat {
	out := ar.Mat(x.R, d.W.W.C)
	MatMulInto(out, x, d.W.W)
	for i := 0; i < out.R; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += d.B.W.V[j]
		}
	}
	return out
}

// ReLU is the rectified linear activation.
type ReLU struct{ mask []bool }

// Forward implements Layer.
func (a *ReLU) Forward(x *Mat) *Mat {
	out := x.Clone()
	if cap(a.mask) < len(out.V) {
		a.mask = make([]bool, len(out.V))
	}
	a.mask = a.mask[:len(out.V)]
	for i, v := range out.V {
		if v <= 0 {
			out.V[i] = 0
			a.mask[i] = false
		} else {
			a.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (a *ReLU) Backward(grad *Mat) *Mat {
	out := grad.Clone()
	for i := range out.V {
		if !a.mask[i] {
			out.V[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (a *ReLU) Params() []*Param { return nil }

// Infer implements Inferencer. Uses Forward's v <= 0 test so NaN inputs
// pass through unchanged on both paths.
func (a *ReLU) Infer(x *Mat, ar *Arena) *Mat {
	out := ar.Mat(x.R, x.C)
	for i, v := range x.V {
		if v <= 0 {
			out.V[i] = 0
		} else {
			out.V[i] = v
		}
	}
	return out
}

// LeakyReLU keeps a small negative-side slope (used by the AAE critic).
type LeakyReLU struct {
	Alpha float64
	x     *Mat
}

// Forward implements Layer.
func (a *LeakyReLU) Forward(x *Mat) *Mat {
	a.x = x
	out := x.Clone()
	for i, v := range out.V {
		if v < 0 {
			out.V[i] = a.Alpha * v
		}
	}
	return out
}

// Backward implements Layer.
func (a *LeakyReLU) Backward(grad *Mat) *Mat {
	out := grad.Clone()
	for i := range out.V {
		if a.x.V[i] < 0 {
			out.V[i] *= a.Alpha
		}
	}
	return out
}

// Params implements Layer.
func (a *LeakyReLU) Params() []*Param { return nil }

// Infer implements Inferencer.
func (a *LeakyReLU) Infer(x *Mat, ar *Arena) *Mat {
	out := ar.Mat(x.R, x.C)
	for i, v := range x.V {
		if v < 0 {
			out.V[i] = a.Alpha * v
		} else {
			out.V[i] = v
		}
	}
	return out
}

// Tanh is the hyperbolic-tangent activation.
type Tanh struct{ y *Mat }

// Forward implements Layer.
func (a *Tanh) Forward(x *Mat) *Mat {
	out := x.Clone()
	for i, v := range out.V {
		out.V[i] = math.Tanh(v)
	}
	a.y = out
	return out
}

// Backward implements Layer.
func (a *Tanh) Backward(grad *Mat) *Mat {
	out := grad.Clone()
	for i := range out.V {
		out.V[i] *= 1 - a.y.V[i]*a.y.V[i]
	}
	return out
}

// Params implements Layer.
func (a *Tanh) Params() []*Param { return nil }

// Infer implements Inferencer.
func (a *Tanh) Infer(x *Mat, ar *Arena) *Mat {
	out := ar.Mat(x.R, x.C)
	for i, v := range x.V {
		out.V[i] = math.Tanh(v)
	}
	return out
}

// Sigmoid is the logistic activation.
type Sigmoid struct{ y *Mat }

// Forward implements Layer.
func (a *Sigmoid) Forward(x *Mat) *Mat {
	out := x.Clone()
	for i, v := range out.V {
		out.V[i] = 1 / (1 + math.Exp(-v))
	}
	a.y = out
	return out
}

// Backward implements Layer.
func (a *Sigmoid) Backward(grad *Mat) *Mat {
	out := grad.Clone()
	for i := range out.V {
		out.V[i] *= a.y.V[i] * (1 - a.y.V[i])
	}
	return out
}

// Params implements Layer.
func (a *Sigmoid) Params() []*Param { return nil }

// Infer implements Inferencer.
func (a *Sigmoid) Infer(x *Mat, ar *Arena) *Mat {
	out := ar.Mat(x.R, x.C)
	for i, v := range x.V {
		out.V[i] = 1 / (1 + math.Exp(-v))
	}
	return out
}

// Sequential chains layers into a network.
type Sequential struct{ Layers []Layer }

// NewSequential builds a network from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x *Mat) *Mat {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *Mat) *Mat {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Infer implements Inferencer: a cache-free forward pass producing the
// same bits as Forward. The returned Mat is arena-backed and valid only
// until the arena's next Reset/Release; Clone it (or copy the rows out)
// to keep the values. Panics if any layer lacks an Infer method.
func (s *Sequential) Infer(x *Mat, ar *Arena) *Mat {
	for _, l := range s.Layers {
		inf, ok := l.(Inferencer)
		if !ok {
			panic(fmt.Sprintf("nn: layer %T has no inference-only path (does not implement Inferencer)", l))
		}
		x = inf.Infer(x, ar)
	}
	return x
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all parameter gradients.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total scalar parameter count.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += len(p.W.V)
	}
	return n
}

// ForwardFlops estimates floating-point operations for one forward pass at
// the given batch size (2·in·out per dense layer per sample), for Table 3
// style accounting.
func (s *Sequential) ForwardFlops(batch int) int64 {
	var f int64
	for _, l := range s.Layers {
		if d, ok := l.(*Dense); ok {
			f += int64(batch) * int64(2*d.W.W.R*d.W.W.C)
		}
	}
	return f
}
