package nn

import (
	"math"
	"testing"

	"impeccable/internal/xrand"
)

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	r := xrand.New(1)
	a := NewMat(4, 6)
	b := NewMat(4, 5)
	for i := range a.V {
		a.V[i] = r.NormFloat64()
	}
	for i := range b.V {
		b.V[i] = r.NormFloat64()
	}
	// aᵀ·b via MatMulATB vs explicit transpose multiply.
	at := NewMat(a.C, a.R)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	got := MatMulATB(a, b)
	want := MatMul(at, b)
	for i := range got.V {
		if math.Abs(got.V[i]-want.V[i]) > 1e-12 {
			t.Fatalf("ATB mismatch at %d", i)
		}
	}
	// a·bᵀ via MatMulABT.
	c := NewMat(6, 5)
	for i := range c.V {
		c.V[i] = r.NormFloat64()
	}
	ct := NewMat(c.C, c.R)
	for i := 0; i < c.R; i++ {
		for j := 0; j < c.C; j++ {
			ct.Set(j, i, c.At(i, j))
		}
	}
	got2 := MatMulABT(a, ct) // a(4x6)·ctᵀ(6x5)... ct is 5x6, ctᵀ is 6x5
	want2 := MatMul(a, c)
	for i := range got2.V {
		if math.Abs(got2.V[i]-want2.V[i]) > 1e-12 {
			t.Fatalf("ABT mismatch at %d", i)
		}
	}
}

func TestMatMulPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MatMul(NewMat(2, 3), NewMat(2, 3))
}

// numericalGrad checks analytic layer gradients against finite differences
// through a scalar loss L = Σ out².
func numericalGrad(t *testing.T, net *Sequential, x *Mat, tol float64) {
	t.Helper()
	lossOf := func() float64 {
		out := net.Forward(x.Clone())
		var s float64
		for _, v := range out.V {
			s += v * v
		}
		return s
	}
	net.ZeroGrad()
	out := net.Forward(x.Clone())
	grad := out.Clone()
	grad.ScaleInPlace(2)
	net.Backward(grad)
	const h = 1e-6
	for pi, p := range net.Params() {
		for i := 0; i < len(p.W.V); i += 7 { // spot-check a subset
			orig := p.W.V[i]
			p.W.V[i] = orig + h
			lp := lossOf()
			p.W.V[i] = orig - h
			lm := lossOf()
			p.W.V[i] = orig
			fd := (lp - lm) / (2 * h)
			if math.Abs(fd-p.G.V[i]) > tol*(1+math.Abs(fd)) {
				t.Fatalf("param %d elem %d: analytic %v, numeric %v", pi, i, p.G.V[i], fd)
			}
		}
	}
}

func TestDenseGradient(t *testing.T) {
	r := xrand.New(2)
	net := NewSequential(NewDense(5, 4, r))
	x := NewMat(3, 5)
	for i := range x.V {
		x.V[i] = r.NormFloat64()
	}
	numericalGrad(t, net, x, 1e-4)
}

func TestMLPGradient(t *testing.T) {
	r := xrand.New(3)
	net := NewSequential(
		NewDense(6, 8, r), &Tanh{},
		NewDense(8, 5, r), &Sigmoid{},
		NewDense(5, 2, r),
	)
	x := NewMat(4, 6)
	for i := range x.V {
		x.V[i] = r.NormFloat64()
	}
	numericalGrad(t, net, x, 1e-3)
}

func TestLeakyReLUGradient(t *testing.T) {
	r := xrand.New(4)
	net := NewSequential(NewDense(4, 6, r), &LeakyReLU{Alpha: 0.2}, NewDense(6, 1, r))
	x := NewMat(5, 4)
	for i := range x.V {
		x.V[i] = r.NormFloat64() + 0.05 // keep away from the kink
	}
	numericalGrad(t, net, x, 1e-3)
}

func TestReLUForwardBackward(t *testing.T) {
	a := &ReLU{}
	x := FromRows([][]float64{{-1, 2, -3, 4}})
	y := a.Forward(x)
	want := []float64{0, 2, 0, 4}
	for i, v := range y.V {
		if v != want[i] {
			t.Fatalf("relu fwd[%d] = %v", i, v)
		}
	}
	g := a.Backward(FromRows([][]float64{{1, 1, 1, 1}}))
	wantG := []float64{0, 1, 0, 1}
	for i, v := range g.V {
		if v != wantG[i] {
			t.Fatalf("relu bwd[%d] = %v", i, v)
		}
	}
}

func TestTrainXORWithAdam(t *testing.T) {
	// End-to-end learning sanity: a 2-layer MLP must fit XOR.
	r := xrand.New(5)
	net := NewSequential(NewDense(2, 8, r), &Tanh{}, NewDense(8, 1, r))
	x := FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := FromRows([][]float64{{0}, {1}, {1}, {0}})
	opt := NewAdam(0.05)
	var loss float64
	for epoch := 0; epoch < 800; epoch++ {
		net.ZeroGrad()
		pred := net.Forward(x)
		var grad *Mat
		loss, grad = MSELoss(pred, y)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if loss > 0.02 {
		t.Fatalf("XOR not learned, final loss %v", loss)
	}
}

func TestTrainRegressionWithEachOptimizer(t *testing.T) {
	// y = 2x1 - 3x2 + 1: every optimizer must reduce loss substantially.
	r := xrand.New(6)
	x := NewMat(64, 2)
	y := NewMat(64, 1)
	for i := 0; i < 64; i++ {
		a, b := r.NormFloat64(), r.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, 2*a-3*b+1)
	}
	opts := map[string]Optimizer{
		"sgd":      NewSGD(0.05, 0.9),
		"adam":     NewAdam(0.02),
		"rmsprop":  NewRMSprop(0.01),
		"adadelta": NewAdaDelta(),
	}
	for name, opt := range opts {
		net := NewSequential(NewDense(2, 16, xrand.New(7)), &ReLU{}, NewDense(16, 1, xrand.New(8)))
		var first, last float64
		for epoch := 0; epoch < 300; epoch++ {
			net.ZeroGrad()
			pred := net.Forward(x)
			loss, grad := MSELoss(pred, y)
			if epoch == 0 {
				first = loss
			}
			last = loss
			net.Backward(grad)
			opt.Step(net.Params())
		}
		if last > first*0.2 {
			t.Errorf("%s: loss %v -> %v, insufficient progress", name, first, last)
		}
	}
}

func TestMSELossGradient(t *testing.T) {
	pred := FromRows([][]float64{{1, 2}})
	target := FromRows([][]float64{{0, 4}})
	loss, grad := MSELoss(pred, target)
	if math.Abs(loss-(1+4)/2.0) > 1e-12 {
		t.Fatalf("loss = %v", loss)
	}
	if math.Abs(grad.V[0]-1) > 1e-12 || math.Abs(grad.V[1]-(-2)) > 1e-12 {
		t.Fatalf("grad = %v", grad.V)
	}
}

func TestHuberMatchesMSEInCore(t *testing.T) {
	pred := FromRows([][]float64{{0.5}})
	target := FromRows([][]float64{{0}})
	h, _ := HuberLoss(pred, target, 1)
	if math.Abs(h-0.125) > 1e-12 {
		t.Fatalf("huber = %v, want 0.125", h)
	}
	// Far from target the loss grows linearly.
	pred2 := FromRows([][]float64{{10}})
	h2, g2 := HuberLoss(pred2, target, 1)
	if math.Abs(h2-(10-0.5)) > 1e-12 {
		t.Fatalf("huber tail = %v", h2)
	}
	if math.Abs(g2.V[0]-1) > 1e-12 {
		t.Fatalf("huber tail grad = %v", g2.V[0])
	}
}

func TestBCEWithLogits(t *testing.T) {
	logits := FromRows([][]float64{{0}})
	target := FromRows([][]float64{{1}})
	loss, grad := BCEWithLogits(logits, target)
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("bce = %v, want ln2", loss)
	}
	if math.Abs(grad.V[0]-(-0.5)) > 1e-12 {
		t.Fatalf("bce grad = %v, want -0.5", grad.V[0])
	}
}

func TestClipGrads(t *testing.T) {
	p := NewParam(1, 3)
	p.G.V[0], p.G.V[1], p.G.V[2] = 3, 4, 0 // norm 5
	ClipGrads([]*Param{p}, 1)
	var norm float64
	for _, g := range p.G.V {
		norm += g * g
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-12 {
		t.Fatalf("clipped norm = %v", math.Sqrt(norm))
	}
}

func TestClipWeights(t *testing.T) {
	p := NewParam(1, 3)
	p.W.V[0], p.W.V[1], p.W.V[2] = -5, 0.005, 5
	ClipWeights([]*Param{p}, 0.01)
	if p.W.V[0] != -0.01 || p.W.V[1] != 0.005 || p.W.V[2] != 0.01 {
		t.Fatalf("clipped weights = %v", p.W.V)
	}
}

func TestNumParamsAndFlops(t *testing.T) {
	r := xrand.New(9)
	net := NewSequential(NewDense(10, 20, r), &ReLU{}, NewDense(20, 1, r))
	if got := net.NumParams(); got != 10*20+20+20*1+1 {
		t.Fatalf("NumParams = %d", got)
	}
	if got := net.ForwardFlops(2); got != int64(2*(2*10*20+2*20*1)) {
		t.Fatalf("ForwardFlops = %d", got)
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() float64 {
		r := xrand.New(11)
		net := NewSequential(NewDense(3, 5, r), &Tanh{}, NewDense(5, 1, r))
		x := NewMat(8, 3)
		y := NewMat(8, 1)
		rr := xrand.New(12)
		for i := range x.V {
			x.V[i] = rr.NormFloat64()
		}
		for i := range y.V {
			y.V[i] = rr.NormFloat64()
		}
		opt := NewAdam(0.01)
		var loss float64
		for e := 0; e < 50; e++ {
			net.ZeroGrad()
			pred := net.Forward(x)
			var grad *Mat
			loss, grad = MSELoss(pred, y)
			net.Backward(grad)
			opt.Step(net.Params())
		}
		return loss
	}
	if build() != build() {
		t.Fatal("training not deterministic")
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := xrand.New(1)
	a := NewMat(64, 64)
	c := NewMat(64, 64)
	for i := range a.V {
		a.V[i] = r.NormFloat64()
		c.V[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(a, c)
	}
}

func BenchmarkMLPForward(b *testing.B) {
	r := xrand.New(1)
	net := NewSequential(NewDense(264, 128, r), &ReLU{}, NewDense(128, 64, r), &ReLU{}, NewDense(64, 1, r))
	x := NewMat(256, 264)
	for i := range x.V {
		x.V[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Forward(x)
	}
}
