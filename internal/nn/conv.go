package nn

import (
	"fmt"

	"impeccable/internal/xrand"
)

// Conv2D is a stride-1, valid-padding 2-D convolution over batched
// images. Batch rows are flattened (channels × height × width) tensors in
// channel-major order. It supports the small image-based ML1 variant (the
// paper's ResNet-50 downscaled to this substrate's 2-D depictions).
//
// Forward/Backward are implemented as im2col + matmul: each output
// position's receptive field is gathered into one row of a patch matrix,
// turning the 6-deep scalar loop into the blocked kernels of kernels.go.
// Both paths are bit-identical to the direct convolution: every output
// element is bias + Σ w·patch accumulated in (ic, ky, kx) weight order,
// and every gradient element keeps the direct loop's term order.
type Conv2D struct {
	InC, InH, InW int
	OutC, K       int // output channels, square kernel size

	W *Param // OutC × (InC·K·K)
	B *Param // 1 × OutC

	x    *Mat // cached input
	cols *Mat // cached im2col of x: (R·OutH·OutW) × (InC·K·K)
	g2   *Mat // cached grad reshape: (R·OutH·OutW) × OutC
}

// NewConv2D builds a convolution layer with He initialization.
func NewConv2D(inC, inH, inW, outC, k int, r *xrand.RNG) *Conv2D {
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW, OutC: outC, K: k,
		W: NewParam(outC, inC*k*k),
		B: NewParam(1, outC),
	}
	c.W.HeInit(r)
	return c
}

// OutH returns the output height.
func (c *Conv2D) OutH() int { return c.InH - c.K + 1 }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return c.InW - c.K + 1 }

// OutDim returns the flattened output length per sample.
func (c *Conv2D) OutDim() int { return c.OutC * c.OutH() * c.OutW() }

// kdim returns the patch length: one receptive field, flattened in
// (ic, ky, kx) order to match the weight layout.
func (c *Conv2D) kdim() int { return c.InC * c.K * c.K }

func (c *Conv2D) inIdx(ch, y, x int) int  { return (ch*c.InH+y)*c.InW + x }
func (c *Conv2D) outIdx(ch, y, x int) int { return (ch*c.OutH()+y)*c.OutW() + x }

// im2colSample fills the patch rows for sample s: row (s·oh+y)·ow+xx
// holds that output position's receptive field. Rows are fully
// overwritten, so cols may hold arbitrary prior contents.
func (c *Conv2D) im2colSample(cols *Mat, in []float64, s int) {
	oh, ow := c.OutH(), c.OutW()
	for y := 0; y < oh; y++ {
		for xx := 0; xx < ow; xx++ {
			crow := cols.Row((s*oh+y)*ow + xx)
			wi := 0
			for ic := 0; ic < c.InC; ic++ {
				for ky := 0; ky < c.K; ky++ {
					base := c.inIdx(ic, y+ky, xx)
					copy(crow[wi:wi+c.K], in[base:base+c.K])
					wi += c.K
				}
			}
		}
	}
}

// forwardInto computes out = conv(x) through cols (both fully
// overwritten). Per sample it evaluates out_s = W·patchᵀ with the
// accumulator seeded by the bias — the exact chain the direct loop
// produced. A 4-position register block shares each weight load across
// four output positions; each position keeps its own accumulator.
func (c *Conv2D) forwardInto(out, cols, x *Mat) {
	oh, ow := c.OutH(), c.OutW()
	pos, kd := oh*ow, c.kdim()
	flops := int64(x.R) * int64(c.OutC) * int64(pos) * int64(kd)
	w := kernelWorkers(x.R, flops)
	parallelRanges(x.R, w, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			c.im2colSample(cols, x.Row(s), s)
			o := out.Row(s)
			for oc := 0; oc < c.OutC; oc++ {
				wrow := c.W.W.Row(oc)
				bias := c.B.W.V[oc]
				obase := oc * pos
				p := 0
				for ; p+4 <= pos; p += 4 {
					c0 := cols.Row(s*pos + p)
					c1 := cols.Row(s*pos + p + 1)
					c2 := cols.Row(s*pos + p + 2)
					c3 := cols.Row(s*pos + p + 3)
					s0, s1, s2, s3 := bias, bias, bias, bias
					for wi, wv := range wrow {
						s0 += wv * c0[wi]
						s1 += wv * c1[wi]
						s2 += wv * c2[wi]
						s3 += wv * c3[wi]
					}
					o[obase+p], o[obase+p+1], o[obase+p+2], o[obase+p+3] = s0, s1, s2, s3
				}
				for ; p < pos; p++ {
					crow := cols.Row(s*pos + p)
					acc := bias
					for wi, wv := range wrow {
						acc += wv * crow[wi]
					}
					o[obase+p] = acc
				}
			}
		}
	})
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *Mat) *Mat {
	c.x = x
	rows, kd := x.R*c.OutH()*c.OutW(), c.kdim()
	if c.cols == nil || c.cols.R != rows || c.cols.C != kd {
		c.cols = NewMat(rows, kd)
	}
	out := NewMat(x.R, c.OutDim())
	c.forwardInto(out, c.cols, x)
	return out
}

// Infer implements Inferencer: the same arithmetic as Forward with all
// scratch (patch matrix and output) drawn from the arena and no layer
// state written, so concurrent callers may share the layer.
func (c *Conv2D) Infer(x *Mat, ar *Arena) *Mat {
	cols := ar.Mat(x.R*c.OutH()*c.OutW(), c.kdim())
	out := ar.Mat(x.R, c.OutDim())
	c.forwardInto(out, cols, x)
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *Mat) *Mat {
	oh, ow := c.OutH(), c.OutW()
	pos := oh * ow
	if c.x == nil || grad.R != c.x.R || grad.C != c.OutDim() {
		panic(fmt.Sprintf("nn: Conv2D.Backward grad %dx%d does not match last Forward", grad.R, grad.C))
	}
	// Reshape grad to (s, position) rows × OutC columns so the k
	// dimension of aᵀ·b walks (s, p) in the direct loop's order.
	if c.g2 == nil || c.g2.R != grad.R*pos || c.g2.C != c.OutC {
		c.g2 = NewMat(grad.R*pos, c.OutC)
	}
	for s := 0; s < grad.R; s++ {
		g := grad.Row(s)
		for p := 0; p < pos; p++ {
			row := c.g2.Row(s*pos + p)
			for oc := 0; oc < c.OutC; oc++ {
				row[oc] = g[oc*pos+p]
			}
		}
	}
	// dB: column sums of the reshaped grad, rows in (s, p) order.
	for k := 0; k < c.g2.R; k++ {
		row := c.g2.Row(k)
		for oc, gv := range row {
			c.B.G.V[oc] += gv
		}
	}
	// dW += gradᵀ·patches, accumulated term-by-term into W.G exactly as
	// the direct loop did (reduction over (s, p) in order).
	matMulATBAccInto(c.W.G, c.g2, c.cols)
	// dIn: scatter grad·W back through the receptive fields. Kept in the
	// direct loop's oc-major order per sample; samples are independent
	// rows, so this parallelizes without changing any accumulator chain.
	// Zero grads are skipped only while the weights are all finite, so
	// 0·NaN and 0·±Inf still propagate.
	dx := NewMat(c.x.R, c.x.C)
	skipZero := allFinite(c.W.W.V)
	flops := int64(grad.R) * int64(c.OutC) * int64(pos) * int64(c.kdim())
	w := kernelWorkers(grad.R, flops)
	parallelRanges(grad.R, w, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			g := grad.Row(s)
			dIn := dx.Row(s)
			for oc := 0; oc < c.OutC; oc++ {
				wrow := c.W.W.Row(oc)
				for y := 0; y < oh; y++ {
					for xx := 0; xx < ow; xx++ {
						gv := g[(oc*oh+y)*ow+xx]
						if skipZero && gv == 0 {
							continue
						}
						wi := 0
						for ic := 0; ic < c.InC; ic++ {
							for ky := 0; ky < c.K; ky++ {
								base := c.inIdx(ic, y+ky, xx)
								for kx := 0; kx < c.K; kx++ {
									dIn[base+kx] += gv * wrow[wi]
									wi++
								}
							}
						}
					}
				}
			}
		}
	})
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// MaxPool2D is a non-overlapping 2-D max pool (window = stride = P).
type MaxPool2D struct {
	C, H, W, P int
	argmax     []int // per output element, input index of the max
	inCols     int
}

// NewMaxPool2D builds a pool layer over C×H×W inputs.
func NewMaxPool2D(c, h, w, p int) *MaxPool2D {
	return &MaxPool2D{C: c, H: h, W: w, P: p}
}

// OutH returns pooled height.
func (m *MaxPool2D) OutH() int { return m.H / m.P }

// OutW returns pooled width.
func (m *MaxPool2D) OutW() int { return m.W / m.P }

// OutDim returns the flattened output length per sample.
func (m *MaxPool2D) OutDim() int { return m.C * m.OutH() * m.OutW() }

// poolSample pools one sample. When argmax is non-nil it records, per
// output element, the input index of the max for Backward's scatter.
func (m *MaxPool2D) poolSample(in, o []float64, argmax []int) {
	oh, ow := m.OutH(), m.OutW()
	for c := 0; c < m.C; c++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				best := -1
				bv := 0.0
				for py := 0; py < m.P; py++ {
					for px := 0; px < m.P; px++ {
						idx := (c*m.H+y*m.P+py)*m.W + xx*m.P + px
						if best < 0 || in[idx] > bv {
							best, bv = idx, in[idx]
						}
					}
				}
				oi := (c*oh+y)*ow + xx
				o[oi] = bv
				if argmax != nil {
					argmax[oi] = best
				}
			}
		}
	}
}

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *Mat) *Mat {
	out := NewMat(x.R, m.OutDim())
	m.inCols = x.C
	if cap(m.argmax) < x.R*out.C {
		m.argmax = make([]int, x.R*out.C)
	}
	m.argmax = m.argmax[:x.R*out.C]
	for s := 0; s < x.R; s++ {
		m.poolSample(x.Row(s), out.Row(s), m.argmax[s*out.C:(s+1)*out.C])
	}
	return out
}

// Infer implements Inferencer: pools without recording argmax or
// touching layer state.
func (m *MaxPool2D) Infer(x *Mat, ar *Arena) *Mat {
	out := ar.Mat(x.R, m.OutDim())
	for s := 0; s < x.R; s++ {
		m.poolSample(x.Row(s), out.Row(s), nil)
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *Mat) *Mat {
	if grad.C != m.OutDim() || grad.R*grad.C != len(m.argmax) {
		panic(fmt.Sprintf(
			"nn: MaxPool2D.Backward grad %dx%d does not match last Forward (argmax for %d elements of dim %d); "+
				"running Forward on another batch between Forward and Backward is not supported",
			grad.R, grad.C, len(m.argmax)/max(m.OutDim(), 1), m.OutDim()))
	}
	dx := NewMat(grad.R, m.inCols)
	for s := 0; s < grad.R; s++ {
		g := grad.Row(s)
		d := dx.Row(s)
		for oi, gv := range g {
			d[m.argmax[s*grad.C+oi]] += gv
		}
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }
