package nn

import "impeccable/internal/xrand"

// Conv2D is a stride-1, valid-padding 2-D convolution over batched
// images. Batch rows are flattened (channels × height × width) tensors in
// channel-major order. It supports the small image-based ML1 variant (the
// paper's ResNet-50 downscaled to this substrate's 2-D depictions).
type Conv2D struct {
	InC, InH, InW int
	OutC, K       int // output channels, square kernel size

	W *Param // OutC × (InC·K·K)
	B *Param // 1 × OutC

	x *Mat // cached input
}

// NewConv2D builds a convolution layer with He initialization.
func NewConv2D(inC, inH, inW, outC, k int, r *xrand.RNG) *Conv2D {
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW, OutC: outC, K: k,
		W: NewParam(outC, inC*k*k),
		B: NewParam(1, outC),
	}
	c.W.HeInit(r)
	return c
}

// OutH returns the output height.
func (c *Conv2D) OutH() int { return c.InH - c.K + 1 }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return c.InW - c.K + 1 }

// OutDim returns the flattened output length per sample.
func (c *Conv2D) OutDim() int { return c.OutC * c.OutH() * c.OutW() }

func (c *Conv2D) inIdx(ch, y, x int) int  { return (ch*c.InH+y)*c.InW + x }
func (c *Conv2D) outIdx(ch, y, x int) int { return (ch*c.OutH()+y)*c.OutW() + x }

// Forward implements Layer.
func (c *Conv2D) Forward(x *Mat) *Mat {
	c.x = x
	oh, ow := c.OutH(), c.OutW()
	out := NewMat(x.R, c.OutDim())
	for s := 0; s < x.R; s++ {
		in := x.Row(s)
		o := out.Row(s)
		for oc := 0; oc < c.OutC; oc++ {
			w := c.W.W.Row(oc)
			bias := c.B.W.V[oc]
			for y := 0; y < oh; y++ {
				for xx := 0; xx < ow; xx++ {
					acc := bias
					wi := 0
					for ic := 0; ic < c.InC; ic++ {
						for ky := 0; ky < c.K; ky++ {
							base := c.inIdx(ic, y+ky, xx)
							for kx := 0; kx < c.K; kx++ {
								acc += w[wi] * in[base+kx]
								wi++
							}
						}
					}
					o[c.outIdx(oc, y, xx)] = acc
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *Mat) *Mat {
	oh, ow := c.OutH(), c.OutW()
	dx := NewMat(c.x.R, c.x.C)
	for s := 0; s < c.x.R; s++ {
		in := c.x.Row(s)
		g := grad.Row(s)
		dIn := dx.Row(s)
		for oc := 0; oc < c.OutC; oc++ {
			w := c.W.W.Row(oc)
			dW := c.W.G.Row(oc)
			for y := 0; y < oh; y++ {
				for xx := 0; xx < ow; xx++ {
					gv := g[c.outIdx(oc, y, xx)]
					if gv == 0 {
						continue
					}
					c.B.G.V[oc] += gv
					wi := 0
					for ic := 0; ic < c.InC; ic++ {
						for ky := 0; ky < c.K; ky++ {
							base := c.inIdx(ic, y+ky, xx)
							for kx := 0; kx < c.K; kx++ {
								dW[wi] += gv * in[base+kx]
								dIn[base+kx] += gv * w[wi]
								wi++
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// MaxPool2D is a non-overlapping 2-D max pool (window = stride = P).
type MaxPool2D struct {
	C, H, W, P int
	argmax     []int // per output element, input index of the max
	inCols     int
}

// NewMaxPool2D builds a pool layer over C×H×W inputs.
func NewMaxPool2D(c, h, w, p int) *MaxPool2D {
	return &MaxPool2D{C: c, H: h, W: w, P: p}
}

// OutH returns pooled height.
func (m *MaxPool2D) OutH() int { return m.H / m.P }

// OutW returns pooled width.
func (m *MaxPool2D) OutW() int { return m.W / m.P }

// OutDim returns the flattened output length per sample.
func (m *MaxPool2D) OutDim() int { return m.C * m.OutH() * m.OutW() }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *Mat) *Mat {
	oh, ow := m.OutH(), m.OutW()
	out := NewMat(x.R, m.OutDim())
	m.inCols = x.C
	if cap(m.argmax) < x.R*out.C {
		m.argmax = make([]int, x.R*out.C)
	}
	m.argmax = m.argmax[:x.R*out.C]
	for s := 0; s < x.R; s++ {
		in := x.Row(s)
		o := out.Row(s)
		for c := 0; c < m.C; c++ {
			for y := 0; y < oh; y++ {
				for xx := 0; xx < ow; xx++ {
					best := -1
					bv := 0.0
					for py := 0; py < m.P; py++ {
						for px := 0; px < m.P; px++ {
							idx := (c*m.H+y*m.P+py)*m.W + xx*m.P + px
							if best < 0 || in[idx] > bv {
								best, bv = idx, in[idx]
							}
						}
					}
					oi := (c*oh+y)*ow + xx
					o[oi] = bv
					m.argmax[s*out.C+oi] = best
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *Mat) *Mat {
	dx := NewMat(grad.R, m.inCols)
	for s := 0; s < grad.R; s++ {
		g := grad.Row(s)
		d := dx.Row(s)
		for oi, gv := range g {
			d[m.argmax[s*grad.C+oi]] += gv
		}
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }
