// kernels_ref.go is the executable specification for the blocked
// kernels in kernels.go: plain ikj triple loops with full IEEE
// semantics (no term is ever skipped, so 0·NaN and 0·±Inf propagate).
// The equivalence suite asserts the blocked/parallel kernels are
// bit-identical to these on every shape, and the scalar-baseline
// benchmark (BenchmarkPredictIDs) uses them to measure what the
// kernel rewrite bought.
package nn

// RefMatMul returns a·b computed by the scalar reference kernel.
func RefMatMul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic("nn: RefMatMul shape mismatch")
	}
	out := NewMat(a.R, b.C)
	for i := 0; i < a.R; i++ {
		arow := a.V[i*a.C : (i+1)*a.C]
		orow := out.V[i*out.C : (i+1)*out.C]
		for k := 0; k < a.C; k++ {
			aik := arow[k]
			brow := b.V[k*b.C : (k+1)*b.C]
			for j := range brow {
				orow[j] += aik * brow[j]
			}
		}
	}
	return out
}

// RefMatMulATB returns aᵀ·b computed by the scalar reference kernel.
func RefMatMulATB(a, b *Mat) *Mat {
	if a.R != b.R {
		panic("nn: RefMatMulATB shape mismatch")
	}
	out := NewMat(a.C, b.C)
	for k := 0; k < a.R; k++ {
		arow := a.V[k*a.C : (k+1)*a.C]
		brow := b.V[k*b.C : (k+1)*b.C]
		for i, av := range arow {
			orow := out.V[i*out.C : (i+1)*out.C]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// RefMatMulABT returns a·bᵀ computed by the scalar reference kernel.
func RefMatMulABT(a, b *Mat) *Mat {
	if a.C != b.C {
		panic("nn: RefMatMulABT shape mismatch")
	}
	out := NewMat(a.R, b.R)
	for i := 0; i < a.R; i++ {
		arow := a.V[i*a.C : (i+1)*a.C]
		for j := 0; j < b.R; j++ {
			brow := b.V[j*b.C : (j+1)*b.C]
			var s float64
			for k := range arow {
				s += arow[k] * brow[k]
			}
			out.V[i*out.C+j] = s
		}
	}
	return out
}
