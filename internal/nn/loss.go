package nn

import "math"

// MSELoss returns the mean-squared-error loss over the batch and the
// gradient dL/dpred (same shape as pred).
func MSELoss(pred, target *Mat) (float64, *Mat) {
	if pred.R != target.R || pred.C != target.C {
		panic("nn: MSELoss shape mismatch")
	}
	grad := NewMat(pred.R, pred.C)
	n := float64(len(pred.V))
	var loss float64
	for i := range pred.V {
		d := pred.V[i] - target.V[i]
		loss += d * d
		grad.V[i] = 2 * d / n
	}
	return loss / n, grad
}

// HuberLoss returns the Huber (smooth-L1) loss with threshold delta and
// its gradient; robust to the heavy-tailed docking-score targets.
func HuberLoss(pred, target *Mat, delta float64) (float64, *Mat) {
	if pred.R != target.R || pred.C != target.C {
		panic("nn: HuberLoss shape mismatch")
	}
	grad := NewMat(pred.R, pred.C)
	n := float64(len(pred.V))
	var loss float64
	for i := range pred.V {
		d := pred.V[i] - target.V[i]
		if math.Abs(d) <= delta {
			loss += 0.5 * d * d
			grad.V[i] = d / n
		} else {
			loss += delta * (math.Abs(d) - 0.5*delta)
			grad.V[i] = delta * sign(d) / n
		}
	}
	return loss / n, grad
}

// BCEWithLogits returns binary cross-entropy over raw scores (logits) and
// the gradient dL/dlogit, numerically stable.
func BCEWithLogits(logits, target *Mat) (float64, *Mat) {
	if logits.R != target.R || logits.C != target.C {
		panic("nn: BCE shape mismatch")
	}
	grad := NewMat(logits.R, logits.C)
	n := float64(len(logits.V))
	var loss float64
	for i := range logits.V {
		x, t := logits.V[i], target.V[i]
		// log(1+e^-|x|) + max(x,0) - x·t is the stable form.
		loss += math.Log1p(math.Exp(-math.Abs(x))) + math.Max(x, 0) - x*t
		p := 1 / (1 + math.Exp(-x))
		grad.V[i] = (p - t) / n
	}
	return loss / n, grad
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
