// Package blob is a pluggable content-addressed artifact store: opaque
// byte payloads keyed by their SHA-256, so identical artifacts are
// stored once no matter how many journal events or snapshots reference
// them, and every read is integrity-checked against the key. The
// campaign service spills large journal payloads (submit libraries,
// result ledgers) and cache snapshots here, keeping only {sha256, size}
// refs in the write-ahead log — the journal scales with event count,
// the artifacts with unique content.
//
// FS is the filesystem-backed default: objects live under a two-level
// fan-out (ab/cd/abcdef...) so no directory ever holds millions of
// entries, writes are temp-file + fsync + atomic rename, and a
// mark-phase Sweep deletes objects no live reference pins. The Store
// interface is deliberately small so an S3/minio backend can slot in
// behind the same journal code later.
package blob

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// Ref identifies one stored object by content: the hex SHA-256 of its
// bytes plus the byte count (a cheap second check, and what capacity
// accounting needs without reading the object).
type Ref struct {
	SHA256 string `json:"sha256"`
	Size   int64  `json:"size"`
}

// Store is the content-addressed artifact interface the journal writes
// through. Implementations must be safe for concurrent use.
type Store interface {
	// Put stores data, returning its ref. Storing bytes that already
	// exist is a cheap no-op returning the same ref.
	Put(data []byte) (Ref, error)
	// Get returns the object's bytes, verifying them against the ref:
	// a corrupt or truncated object is an error, never silent data.
	Get(ref Ref) ([]byte, error)
	// Has reports whether an object with the given hex SHA-256 exists.
	Has(hash string) bool
	// Delete removes one object; deleting a missing object is a no-op.
	Delete(hash string) error
	// Sweep deletes every object the live predicate does not pin,
	// returning how many objects and bytes were reclaimed. Objects
	// younger than the store's grace window survive regardless, so an
	// object written moments ago — whose reference may not be durable
	// yet — cannot be collected out from under its writer.
	Sweep(live func(hash string) bool) (removed int, reclaimed int64, err error)
	// Stats reports object count, total bytes and operation counters.
	Stats() Stats
}

// Stats is a point-in-time snapshot of a store.
type Stats struct {
	Objects int64 `json:"objects"`
	Bytes   int64 `json:"bytes"`
	Puts    int64 `json:"puts"`    // objects actually written (dedup hits excluded)
	Gets    int64 `json:"gets"`    // successful reads
	Deletes int64 `json:"deletes"` // objects removed (Delete + Sweep)
}

// DefaultGCGrace is how recently an object may have been written and
// still survive a Sweep that does not pin it. Covers the window between
// an object landing on disk and the journal event (or snapshot
// manifest) that references it becoming durable.
const DefaultGCGrace = 5 * time.Minute

// FS is the filesystem-backed Store.
type FS struct {
	root string
	// GCGrace overrides DefaultGCGrace; tests set it to 0 so sweeps are
	// immediate. Mutate only before concurrent use.
	GCGrace time.Duration

	objects atomic.Int64
	bytes   atomic.Int64
	puts    atomic.Int64
	gets    atomic.Int64
	deletes atomic.Int64
}

// Open opens (creating if needed) a store rooted at dir, removes
// temp files abandoned by a crashed writer, and scans existing objects
// so Stats is accurate from the start.
func Open(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: creating store dir: %w", err)
	}
	s := &FS{root: dir, GCGrace: DefaultGCGrace}
	// No writer can be mid-Put at open, so every temp file is a crash
	// leftover: clean them all (far-future cutoff).
	err := s.walkObjects(func(path string, hash string, info fs.FileInfo) error {
		s.objects.Add(1)
		s.bytes.Add(info.Size())
		return nil
	}, time.Now().Add(24*time.Hour))
	if err != nil {
		return nil, err
	}
	return s, nil
}

// SumHex returns the hex SHA-256 of data — the hash Put would key it
// under.
func SumHex(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// validHash reports whether s looks like a hex SHA-256.
func validHash(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// objectPath maps a hash to its fan-out location:
// <root>/ab/cd/abcdef... Two levels of 256 keep any single directory
// small even at tens of millions of objects.
func (s *FS) objectPath(hash string) string {
	return filepath.Join(s.root, hash[:2], hash[2:4], hash)
}

// Put stores data under its SHA-256, atomically: temp file in the leaf
// directory, fsync, rename. An object that already exists is not
// rewritten (content addressing: same hash, same bytes).
func (s *FS) Put(data []byte) (Ref, error) {
	ref := Ref{SHA256: SumHex(data), Size: int64(len(data))}
	path := s.objectPath(ref.SHA256)
	if _, err := os.Stat(path); err == nil {
		return ref, nil // dedup hit
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Ref{}, fmt.Errorf("blob: creating fan-out dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ref.SHA256[:8]+"-*.tmp")
	if err != nil {
		return Ref{}, fmt.Errorf("blob: creating temp object: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return Ref{}, fmt.Errorf("blob: writing object: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return Ref{}, fmt.Errorf("blob: syncing object: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return Ref{}, fmt.Errorf("blob: closing object: %w", err)
	}
	// Link-then-remove instead of rename: two racing Puts of the same
	// content both reach here, and link fails with EEXIST for the loser,
	// so the object (and its counters) is installed exactly once.
	if err := os.Link(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		if os.IsExist(err) {
			return ref, nil // lost the race: identical content already installed
		}
		return Ref{}, fmt.Errorf("blob: installing object: %w", err)
	}
	os.Remove(tmp.Name())
	syncDir(dir)
	s.objects.Add(1)
	s.bytes.Add(ref.Size)
	s.puts.Add(1)
	return ref, nil
}

// Get reads an object and verifies it against the ref. A hash or size
// mismatch — a bit-flipped or truncated object — is an error: the
// store never silently serves bytes that do not match their address.
func (s *FS) Get(ref Ref) ([]byte, error) {
	if !validHash(ref.SHA256) {
		return nil, fmt.Errorf("blob: malformed hash %q", ref.SHA256)
	}
	data, err := os.ReadFile(s.objectPath(ref.SHA256))
	if err != nil {
		return nil, fmt.Errorf("blob: reading object %s: %w", ref.SHA256[:12], err)
	}
	if int64(len(data)) != ref.Size {
		return nil, fmt.Errorf("blob: object %s is %d bytes, ref says %d",
			ref.SHA256[:12], len(data), ref.Size)
	}
	if got := SumHex(data); got != ref.SHA256 {
		return nil, fmt.Errorf("blob: object %s corrupt: content hashes to %s",
			ref.SHA256[:12], got[:12])
	}
	s.gets.Add(1)
	return data, nil
}

// Has reports whether the object exists.
func (s *FS) Has(hash string) bool {
	if !validHash(hash) {
		return false
	}
	_, err := os.Stat(s.objectPath(hash))
	return err == nil
}

// Delete removes one object. Missing objects are a no-op.
func (s *FS) Delete(hash string) error {
	if !validHash(hash) {
		return fmt.Errorf("blob: malformed hash %q", hash)
	}
	path := s.objectPath(hash)
	info, err := os.Stat(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("blob: statting object: %w", err)
	}
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("blob: deleting object: %w", err)
	}
	s.objects.Add(-1)
	s.bytes.Add(-info.Size())
	s.deletes.Add(1)
	return nil
}

// Sweep deletes every object not pinned by live and older than the
// grace window, plus any abandoned temp files. This is the collection
// half of the journal's ref-counted GC: the caller marks (scans the
// live journal segments and snapshot manifest for refs), the store
// sweeps.
func (s *FS) Sweep(live func(hash string) bool) (removed int, reclaimed int64, err error) {
	grace := s.GCGrace
	cutoff := time.Now().Add(-grace)
	err = s.walkObjects(func(path, hash string, info fs.FileInfo) error {
		if live != nil && live(hash) {
			return nil
		}
		if grace > 0 && info.ModTime().After(cutoff) {
			return nil // too young: its reference may not be durable yet
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("blob: sweeping object: %w", err)
		}
		s.objects.Add(-1)
		s.bytes.Add(-info.Size())
		s.deletes.Add(1)
		removed++
		reclaimed += info.Size()
		return nil
	}, cutoff)
	return removed, reclaimed, err
}

// walkObjects visits every object file under the fan-out. A *.tmp
// straggler (a writer crashed between CreateTemp and rename) modified
// before cleanTempBefore is removed instead of visited — the age gate
// keeps a sweep from yanking a temp file a concurrent Put is still
// writing. The zero time disables temp cleanup.
func (s *FS) walkObjects(visit func(path, hash string, info fs.FileInfo) error, cleanTempBefore time.Time) error {
	return filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil // raced a concurrent sweep
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".tmp") {
			if !cleanTempBefore.IsZero() {
				if info, err := d.Info(); err == nil && info.ModTime().Before(cleanTempBefore) {
					_ = os.Remove(path)
				}
			}
			return nil
		}
		if !validHash(name) {
			return nil // foreign file: leave it alone
		}
		info, err := d.Info()
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		return visit(path, name, info)
	})
}

// Stats snapshots the store's counters.
func (s *FS) Stats() Stats {
	return Stats{
		Objects: s.objects.Load(),
		Bytes:   s.bytes.Load(),
		Puts:    s.puts.Load(),
		Gets:    s.gets.Load(),
		Deletes: s.deletes.Load(),
	}
}

// syncDir fsyncs a directory so a freshly renamed entry survives power
// loss. Best-effort on filesystems that reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}
