package blob

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openTest(t *testing.T) *FS {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.GCGrace = 0 // tests sweep immediately
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t)
	data := []byte("dock pose ledger payload")
	ref, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if ref.SHA256 != SumHex(data) || ref.Size != int64(len(data)) {
		t.Fatalf("ref = %+v", ref)
	}
	got, err := s.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q", got)
	}
	if !s.Has(ref.SHA256) {
		t.Fatal("Has = false for a stored object")
	}
	if st := s.Stats(); st.Objects != 1 || st.Bytes != ref.Size || st.Puts != 1 || st.Gets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutDeduplicates(t *testing.T) {
	s := openTest(t)
	data := []byte("same bytes twice")
	r1, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("refs differ: %+v vs %+v", r1, r2)
	}
	if st := s.Stats(); st.Objects != 1 || st.Puts != 1 {
		t.Fatalf("dedup put counted twice: %+v", st)
	}
}

func TestFanOutLayout(t *testing.T) {
	s := openTest(t)
	ref, err := s.Put([]byte("layout probe"))
	if err != nil {
		t.Fatal(err)
	}
	h := ref.SHA256
	want := filepath.Join(s.root, h[:2], h[2:4], h)
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("object not at two-level fan-out path %s: %v", want, err)
	}
}

func TestGetDetectsCorruption(t *testing.T) {
	s := openTest(t)
	ref, err := s.Put([]byte("integrity matters"))
	if err != nil {
		t.Fatal(err)
	}
	path := s.objectPath(ref.SHA256)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0x01 // bit flip
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ref); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("bit-flipped object read back without error: %v", err)
	}
	// Truncation (size mismatch) is caught before hashing.
	if err := os.WriteFile(path, raw[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ref); err == nil {
		t.Fatal("truncated object read back without error")
	}
}

func TestDelete(t *testing.T) {
	s := openTest(t)
	ref, err := s.Put([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ref.SHA256); err != nil {
		t.Fatal(err)
	}
	if s.Has(ref.SHA256) {
		t.Fatal("deleted object still present")
	}
	if err := s.Delete(ref.SHA256); err != nil { // idempotent
		t.Fatal(err)
	}
	if st := s.Stats(); st.Objects != 0 || st.Bytes != 0 || st.Deletes != 1 {
		t.Fatalf("stats after delete = %+v", st)
	}
	if err := s.Delete("not-a-hash"); err == nil {
		t.Fatal("malformed hash accepted")
	}
}

func TestSweepRespectsLiveSetAndGrace(t *testing.T) {
	s := openTest(t)
	var refs []Ref
	for i := 0; i < 6; i++ {
		ref, err := s.Put([]byte(fmt.Sprintf("object %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	live := map[string]bool{refs[0].SHA256: true, refs[3].SHA256: true}
	removed, reclaimed, err := s.Sweep(func(h string) bool { return live[h] })
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 || reclaimed <= 0 {
		t.Fatalf("removed %d objects (%d bytes), want 4", removed, reclaimed)
	}
	for i, ref := range refs {
		if got, want := s.Has(ref.SHA256), live[ref.SHA256]; got != want {
			t.Fatalf("object %d: Has = %v, want %v", i, got, want)
		}
	}
	if st := s.Stats(); st.Objects != 2 {
		t.Fatalf("stats after sweep = %+v", st)
	}

	// With a grace window, a freshly written unpinned object survives.
	s.GCGrace = time.Hour
	ref, err := s.Put([]byte("too young to die"))
	if err != nil {
		t.Fatal(err)
	}
	if removed, _, err := s.Sweep(func(string) bool { return false }); err != nil || removed != 0 {
		t.Fatalf("grace-window sweep removed %d (err %v), want 0", removed, err)
	}
	if !s.Has(ref.SHA256) {
		t.Fatal("young object collected inside the grace window")
	}
}

func TestOpenScansAndCleansTemp(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s1.Put([]byte("persisted across opens"))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-Put: a stray temp file in a fan-out dir.
	tmp := filepath.Join(dir, ref.SHA256[:2], ref.SHA256[2:4], "deadbeef-123.tmp")
	if err := os.WriteFile(tmp, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Objects != 1 || st.Bytes != ref.Size {
		t.Fatalf("rescan stats = %+v", st)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("crash-leftover temp file survived Open")
	}
	if got, err := s2.Get(ref); err != nil || !bytes.Equal(got, []byte("persisted across opens")) {
		t.Fatalf("object lost across opens: %q %v", got, err)
	}
}

func TestForeignFilesAreLeftAlone(t *testing.T) {
	s := openTest(t)
	foreign := filepath.Join(s.root, "README")
	if err := os.WriteFile(foreign, []byte("not an object"), 0o644); err != nil {
		t.Fatal(err)
	}
	if removed, _, err := s.Sweep(func(string) bool { return false }); err != nil || removed != 0 {
		t.Fatalf("sweep touched foreign files: removed=%d err=%v", removed, err)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("foreign file removed by sweep")
	}
}

func TestGetRejectsMalformedRef(t *testing.T) {
	s := openTest(t)
	if _, err := s.Get(Ref{SHA256: "../../etc/passwd", Size: 1}); err == nil {
		t.Fatal("path-traversal ref accepted")
	}
	if s.Has("../escape") {
		t.Fatal("malformed hash reported present")
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := openTest(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				// Half the writes collide across goroutines on purpose.
				_, err := s.Put([]byte(fmt.Sprintf("payload %d", i%25)))
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Objects != 25 {
		t.Fatalf("concurrent puts left %d objects, want 25", st.Objects)
	}
}
