package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags range-over-map loops in science packages whose
// bodies build ordered output — appending to a slice or writing to a
// stream. Go randomizes map iteration order per run, so such a loop
// produces a different sequence every execution: the one failure mode
// the golden-funnel tests catch only when they happen to get unlucky.
// A loop whose collected output is sorted immediately afterwards is
// exempt; genuinely order-free loops (pure reductions are not flagged;
// anything else) carry //impeccable:unordered with a justification.
type MapOrder struct {
	// Packages lists the import paths under the invariant.
	Packages []string
}

func (*MapOrder) Name() string { return "maporder" }
func (*MapOrder) Doc() string {
	return "map-range loops that build ordered output must sort it (iteration order is randomized)"
}
func (*MapOrder) Directive() string { return "unordered" }

func (a *MapOrder) Run(pass *Pass) {
	if !pathInList(pass.Pkg.Path, a.Packages) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.walkStmtLists(pass, info, fd.Body)
		}
	}
}

// walkStmtLists visits every statement list in the function so each
// range statement is seen together with its following sibling (the
// sort-after exemption).
func (a *MapOrder) walkStmtLists(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, s := range list {
			rng, ok := s.(*ast.RangeStmt)
			if !ok || !rangesOverMap(info, rng) {
				continue
			}
			what, found := orderedOutput(info, rng.Body)
			if !found {
				continue
			}
			if i+1 < len(list) && isSortCall(info, list[i+1]) {
				continue
			}
			pass.Reportf(rng.Pos(),
				"map iteration order is randomized per run but this loop %s; sort the collected output after the loop", what)
		}
		return true
	})
}

// rangesOverMap reports whether the range statement iterates a map.
func rangesOverMap(info *types.Info, rng *ast.RangeStmt) bool {
	t := info.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderedOutput scans a loop body for order-sensitive effects:
// appends and stream writes.
func orderedOutput(info *types.Info, body *ast.BlockStmt) (string, bool) {
	what, found := "", false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" {
				if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
					what, found = "appends to a slice", true
				}
			}
		case *ast.SelectorExpr:
			if pkg, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := info.Uses[pkg].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
					name := fun.Sel.Name
					if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
						what, found = "writes formatted output", true
					}
				}
			}
		}
		return true
	})
	return what, found
}

// isSortCall reports whether the statement is a call into package sort.
func isSortCall(info *types.Info, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		p := pn.Imported().Path()
		return p == "sort" || p == "slices"
	}
	return false
}
