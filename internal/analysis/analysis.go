// Package analysis is the project-invariant static-analysis suite
// behind cmd/impeccable-vet. The reproduction's headline guarantee —
// byte-identical science across the sequential, EnTK and streaming
// paths, and across crash/restart/worker-kill reruns — rests on
// invariants that ordinary tests cannot pin down exhaustively: all
// randomness flows through xrand.RNG, all schedulable time through
// hpc.Clock, terminal job-state transitions journal before they apply,
// and the scheduler/job/bus mutexes nest in one fixed order. This
// package turns each invariant into a compile-time check over the
// typed AST, in the spirit of analyzing concurrent programs against
// declared concurrency specifications rather than testing them.
//
// The framework is dependency-free: stdlib go/parser, go/ast, go/types
// and go/token only (matching the zero-dep ethos of internal/obs). It
// deliberately mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer reports Diagnostics through a Pass — without importing
// it, so the module's dependency graph stays empty.
//
// Findings are suppressed, one site at a time, with directive
// comments of the form
//
//	//impeccable:<keyword> <justification>
//
// placed on the offending line or the line directly above it. Each
// analyzer accepts its own keyword (wallclock, lockorder, unjournaled,
// metricname, unordered); the keyword "ignore" silences any analyzer.
// A directive is a reviewed, greppable exception — the justification
// text is part of the contract.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Run inspects a single
// type-checked package and reports findings through the pass.
type Analyzer interface {
	// Name identifies the analyzer in diagnostics and in the
	// -analyzers flag.
	Name() string
	// Doc is the one-line description shown by impeccable-vet's usage.
	Doc() string
	// Directive is the suppression keyword the analyzer honors
	// (besides the universal "ignore").
	Directive() string
	// Run analyzes one package.
	Run(pass *Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Pkg      *Package
	analyzer Analyzer
	diags    *[]Diagnostic
}

// Report files a diagnostic at pos unless a matching suppression
// directive covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.suppressed(position, p.analyzer.Directive()) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.analyzer.Name(),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package and returns the combined
// unsuppressed findings sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			a.Run(&Pass{Pkg: pkg, analyzer: a, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "//impeccable:"

// suppressed reports whether a directive with the given keyword (or
// "ignore") covers the line at position: same line, or the line
// directly above.
func (pkg *Package) suppressed(pos token.Position, keyword string) bool {
	lines, ok := pkg.directives[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, kw := range lines[line] {
			if kw == keyword || kw == "ignore" {
				return true
			}
		}
	}
	return false
}

// parseDirective extracts the keyword from one comment's text, or ""
// when the comment is not a directive. The keyword runs to the first
// space; everything after it is the human justification.
func parseDirective(text string) string {
	if !strings.HasPrefix(text, directivePrefix) {
		return ""
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}
