package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis. Test files (_test.go) are excluded: the invariants govern
// shipped code, and tests legitimately use wall clocks and sleeps.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects non-fatal type-checking problems. The
	// analyzers degrade gracefully on partial type information, so
	// these are surfaced, not fatal.
	TypeErrors []error

	// directives maps filename → line → suppression keywords.
	directives map[string]map[int][]string
}

// Loader parses and type-checks packages of one module from source.
// Module-internal imports resolve through the loader itself
// (memoized); everything else — the standard library — resolves
// through go/importer's source importer, so the whole pipeline needs
// no compiled export data and no child processes.
type Loader struct {
	Fset    *token.FileSet
	ModPath string // module path from go.mod
	ModDir  string // module root directory

	std  types.ImporterFrom
	pkgs map[string]*Package
}

// NewLoader locates the enclosing module of dir (walking up to the
// go.mod) and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModDir:  root,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*Package{},
	}, nil
}

// Load resolves package patterns to packages. A pattern is a
// directory (absolute or relative to the loader's module root), an
// import path within the module, or either followed by /... for a
// recursive walk. testdata and hidden directories are never walked.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var out []*Package
	seen := map[string]bool{}
	add := func(dir string) error {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return err
		}
		if pkg != nil && !seen[pkg.Path] {
			seen[pkg.Path] = true
			out = append(out, pkg)
		}
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		dir := l.patternDir(pat)
		if recursive {
			err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				return add(p)
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := add(dir); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// patternDir maps one non-recursive pattern to a directory.
func (l *Loader) patternDir(pat string) string {
	switch {
	case pat == "" || pat == ".":
		return l.ModDir
	case filepath.IsAbs(pat):
		return pat
	case pat == l.ModPath:
		return l.ModDir
	case strings.HasPrefix(pat, l.ModPath+"/"):
		return filepath.Join(l.ModDir, strings.TrimPrefix(pat, l.ModPath+"/"))
	default:
		return filepath.Join(l.ModDir, pat)
	}
}

// importPath maps a directory under the module root to its import path.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModDir)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir, memoized. A
// directory with no non-test Go files yields (nil, nil).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files}
	// Memoize before type-checking: an import cycle then terminates
	// with partial types instead of recursing forever.
	l.pkgs[path] = pkg
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never hard-fails here: with an Error handler installed it
	// type-checks as much as it can, and the analyzers are written
	// against partial information.
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg.Types, pkg.Info = tpkg, info
	pkg.directives = collectDirectives(l.Fset, files)
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// through the loader, everything else through the source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.loadDir(l.patternDir(path))
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("analysis: no Go package at %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// collectDirectives indexes every //impeccable: comment by file and line.
func collectDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := map[string]map[int][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				kw := parseDirective(c.Text)
				if kw == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					out[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], kw)
			}
		}
	}
	return out
}
