package analysis

import "testing"

// TestRepositoryIsVetClean is the in-tree mirror of the CI gate: the
// default suite over the whole module must load with full type
// information and report zero unsuppressed findings. A red run here
// means either a real invariant violation or a site that needs a
// justified //impeccable: directive.
func TestRepositoryIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(loader.ModPath + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module walk is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
	}
	for _, d := range Run(pkgs, DefaultAnalyzers()) {
		t.Errorf("unsuppressed finding: %s", d)
	}
}
