package analysis

import "testing"

// Each analyzer runs over its fixture package under testdata/src; the
// fixture's // want comments are the expected-diagnostic oracle and
// every fixture also carries suppressed sites that must stay silent.

func checkFixture(t *testing.T, pattern string, analyzers ...Analyzer) {
	t.Helper()
	for _, problem := range CheckFixture("testdata/src", pattern, analyzers...) {
		t.Error(problem)
	}
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, "determ", &Determinism{Packages: []string{"fix/determ"}})
}

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, "lockfix", &LockOrder{Order: []MutexRef{
		{Type: "fix/lockfix.sched", Field: "mu"},
		{Type: "fix/lockfix.jb", Field: "mu"},
		{Type: "fix/lockfix.bus", Field: "mu"},
	}})
}

func TestJournalBeforeFixture(t *testing.T) {
	checkFixture(t, "journalfix", &JournalBefore{
		Packages:       []string{"fix/journalfix"},
		StateType:      "fix/journalfix.job",
		StateField:     "state",
		StateValueType: "fix/journalfix.JobState",
		Terminal:       []string{"StateDone", "StateFailed", "StateCanceled"},
		JournalCalls:   []string{"record", "recordBatch", "append", "appendBatch"},
	})
}

func TestMetricsDeclFixture(t *testing.T) {
	checkFixture(t, "metricfix", &MetricsDecl{RegistryType: "fix/metricfix.Registry"})
}

func TestMapOrderFixture(t *testing.T) {
	checkFixture(t, "mapfix", &MapOrder{Packages: []string{"fix/mapfix"}})
}

// TestFixturesTogether runs the full fixture tree through the
// combined, fixture-configured suite in one load, proving analyzers
// do not fire outside their governed packages.
func TestFixturesTogether(t *testing.T) {
	checkFixture(t, "./...",
		&Determinism{Packages: []string{"fix/determ"}},
		&LockOrder{Order: []MutexRef{
			{Type: "fix/lockfix.sched", Field: "mu"},
			{Type: "fix/lockfix.jb", Field: "mu"},
			{Type: "fix/lockfix.bus", Field: "mu"},
		}},
		&JournalBefore{
			Packages:       []string{"fix/journalfix"},
			StateType:      "fix/journalfix.job",
			StateField:     "state",
			StateValueType: "fix/journalfix.JobState",
			Terminal:       []string{"StateDone", "StateFailed", "StateCanceled"},
			JournalCalls:   []string{"record", "recordBatch", "append", "appendBatch"},
		},
		&MetricsDecl{RegistryType: "fix/metricfix.Registry"},
		&MapOrder{Packages: []string{"fix/mapfix"}},
	)
}
