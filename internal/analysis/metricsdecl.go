package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// MetricsDecl lifts the obs exposition's scrape-time validation to the
// source level: every metric registered on an obs.Registry with a
// constant name must satisfy the Prometheus metric-name grammar, its
// label names the label grammar, and no two registration sites in one
// package may claim the same name. The running server already rejects
// these at scrape time (obs.Validate via cluster-smoke); this analyzer
// rejects them before the code ships, where the fix is a one-line
// rename instead of a red smoke run.
type MetricsDecl struct {
	// RegistryType is the qualified registry type ("pkgpath.Registry").
	RegistryType string
	// Methods maps registration method names to the argument index at
	// which label names start (-1: the method takes no label names).
	Methods map[string]int
}

// defaultMetricMethods covers the obs.Registry surface.
func defaultMetricMethods() map[string]int {
	return map[string]int{
		"Counter": -1, "Gauge": -1, "GaugeFunc": -1, "Histogram": -1,
		"CounterVec": 2, "GaugeVec": 2, "HistogramVec": 3,
	}
}

func (*MetricsDecl) Name() string { return "metricsdecl" }
func (*MetricsDecl) Doc() string {
	return "metric registrations must use valid, package-unique Prometheus names and label names"
}
func (*MetricsDecl) Directive() string { return "metricname" }

func (a *MetricsDecl) Run(pass *Pass) {
	methods := a.Methods
	if methods == nil {
		methods = defaultMetricMethods()
	}
	info := pass.Pkg.Info
	firstSite := map[string]token.Position{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			labelStart, ok := methods[sel.Sel.Name]
			if !ok || !a.isRegistry(info, sel.X) || len(call.Args) == 0 {
				return true
			}
			name, ok := constString(info, call.Args[0])
			if !ok {
				return true // dynamic name: the scrape-time validator owns it
			}
			if !validMetricName(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q violates the Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]*", name)
			} else if prev, dup := firstSite[name]; dup {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q collides with the registration at %s: names must be unique within the package", name, prev)
			} else {
				firstSite[name] = pass.Pkg.Fset.Position(call.Args[0].Pos())
			}
			if labelStart >= 0 {
				for _, arg := range call.Args[labelStart:] {
					label, ok := constString(info, arg)
					if !ok {
						continue
					}
					if !validLabelName(label) {
						pass.Reportf(arg.Pos(),
							"label name %q violates the Prometheus grammar [a-zA-Z_][a-zA-Z0-9_]*", label)
					} else if strings.HasPrefix(label, "__") {
						pass.Reportf(arg.Pos(),
							"label name %q uses the reserved __ prefix", label)
					}
				}
			}
			return true
		})
	}
}

// isRegistry reports whether the receiver is the configured registry
// type (behind any number of pointers).
func (a *MetricsDecl) isRegistry(info *types.Info, recv ast.Expr) bool {
	t := info.TypeOf(recv)
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path()+"."+named.Obj().Name() == a.RegistryType
}

// constString evaluates an expression to a compile-time string.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// validMetricName checks [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// validLabelName checks [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
