package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MutexRef names one declared mutex: a field of a named type.
type MutexRef struct {
	Type  string // fully qualified named type, "pkgpath.TypeName"
	Field string // the sync.Mutex/RWMutex field
}

// short returns the human name used in diagnostics ("scheduler.mu").
func (m MutexRef) short() string {
	t := m.Type
	if i := strings.LastIndexByte(t, '.'); i >= 0 {
		t = t[i+1:]
	}
	return t + "." + m.Field
}

// LockOrder proves that the declared mutexes are only ever acquired
// in their fixed nesting order (outermost first). A misordered pair —
// goroutine A holding the job lock while taking the scheduler lock,
// goroutine B doing the reverse — deadlocks only under production
// interleavings that no test schedule reliably provokes; the order is
// therefore a declared invariant checked at the source level.
//
// The check is flow-approximate: within each function, Lock/Unlock
// calls on declared mutexes are tracked in statement order (branch
// bodies are analyzed against a copy of the held set, so early-unlock
// returns stay precise), and every static call is checked against the
// callee's transitive acquisition summary, computed to a fixed point
// over the package's call graph. Goroutine launches start with an
// empty held set. False positives are suppressed, with justification,
// via //impeccable:lockorder.
type LockOrder struct {
	// Order lists the declared mutexes outermost first: a function may
	// only acquire a mutex that is strictly deeper than every mutex it
	// already holds.
	Order []MutexRef
}

func (*LockOrder) Name() string { return "lockorder" }
func (*LockOrder) Doc() string {
	return "prove the declared mutex partial order (scheduler → job → bus) is never inverted"
}
func (*LockOrder) Directive() string { return "lockorder" }

// lockMethods classifies the sync.Mutex/RWMutex methods.
var lockMethods = map[string]bool{ // method → acquires
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
	"Unlock": false, "RUnlock": false,
}

func (a *LockOrder) Run(pass *Pass) {
	if len(a.Order) == 0 {
		return
	}
	// Only packages that can even name a declared mutex are analyzed.
	relevant := false
	for _, m := range a.Order {
		if pkgOf(m.Type) == pass.Pkg.Path {
			relevant = true
		}
	}
	if !relevant {
		return
	}
	w := &lockWalker{pass: pass, order: a.Order, summaries: map[*types.Func]levelSet{}}
	w.collectDecls()
	for _, fd := range w.decls {
		w.walkFunc(fd.Body, newHeld())
	}
	for _, fl := range w.lits {
		w.walkFunc(fl.Body, newHeld())
	}
}

// pkgOf splits "pkgpath.TypeName" into its package path.
func pkgOf(qualified string) string {
	if i := strings.LastIndexByte(qualified, '.'); i >= 0 {
		return qualified[:i]
	}
	return qualified
}

// levelSet is the set of declared-mutex levels a function may acquire.
type levelSet map[int]bool

// held tracks the mutexes currently held on the walked path.
type held struct{ levels map[int]bool }

func newHeld() *held { return &held{levels: map[int]bool{}} }
func (h *held) copy() *held {
	c := newHeld()
	for l := range h.levels {
		c.levels[l] = true
	}
	return c
}
func (h *held) innermost() (int, bool) {
	best, ok := -1, false
	for l := range h.levels {
		if l > best {
			best, ok = l, true
		}
	}
	return best, ok
}

type lockWalker struct {
	pass      *Pass
	order     []MutexRef
	decls     []*ast.FuncDecl
	lits      []*ast.FuncLit
	funcDecls map[*types.Func]*ast.FuncDecl
	summaries map[*types.Func]levelSet
	onStack   map[*types.Func]bool
}

// collectDecls indexes the package's function declarations and the
// function literals that run as their own goroutines or callbacks
// (each is analyzed with an empty held set).
func (w *lockWalker) collectDecls() {
	w.funcDecls = map[*types.Func]*ast.FuncDecl{}
	for _, f := range w.pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.decls = append(w.decls, fd)
			if obj, ok := w.pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				w.funcDecls[obj] = fd
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					w.lits = append(w.lits, fl)
					return false
				}
				return true
			})
		}
	}
}

// mutexCall resolves a call to Lock/Unlock/... on a declared mutex.
func (w *lockWalker) mutexCall(call *ast.CallExpr) (level int, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return 0, false, false
	}
	acquires, known := lockMethods[sel.Sel.Name]
	if !known {
		return 0, false, false
	}
	field, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return 0, false, false
	}
	t := w.pass.Pkg.Info.TypeOf(field.X)
	if t == nil {
		return 0, false, false
	}
	for {
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			continue
		}
		break
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return 0, false, false
	}
	qualified := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for i, m := range w.order {
		if m.Type == qualified && m.Field == field.Sel.Name {
			return i, acquires, true
		}
	}
	return 0, false, false
}

// callee resolves a static call to an in-package declared function.
func (w *lockWalker) callee(call *ast.CallExpr) (*types.Func, *ast.FuncDecl) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = w.pass.Pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := w.pass.Pkg.Info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = w.pass.Pkg.Info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, nil
	}
	fd, ok := w.funcDecls[fn]
	if !ok {
		return nil, nil
	}
	return fn, fd
}

// summary computes (to a fixed point) the set of declared-mutex levels
// fn may acquire, directly or through in-package callees.
func (w *lockWalker) summary(fn *types.Func, fd *ast.FuncDecl) levelSet {
	if s, ok := w.summaries[fn]; ok {
		return s
	}
	if w.onStack == nil {
		w.onStack = map[*types.Func]bool{}
	}
	if w.onStack[fn] {
		return levelSet{} // recursion: the cycle's effects are already accumulating
	}
	w.onStack[fn] = true
	defer delete(w.onStack, fn)
	s := levelSet{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals run on their own schedule
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if level, acquires, isMutex := w.mutexCall(call); isMutex {
			if acquires {
				s[level] = true
			}
			return true
		}
		if cfn, cfd := w.callee(call); cfn != nil {
			for l := range w.summary(cfn, cfd) {
				s[l] = true
			}
		}
		return true
	})
	w.summaries[fn] = s
	return s
}

// walkFunc abstractly interprets one function body.
func (w *lockWalker) walkFunc(body *ast.BlockStmt, h *held) {
	if body == nil {
		return
	}
	w.stmts(body.List, h)
}

func (w *lockWalker) stmts(list []ast.Stmt, h *held) {
	for _, s := range list {
		w.stmt(s, h)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, h *held) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.stmts(s.List, h)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, h)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, h)
		}
		w.calls(s.Cond, h)
		w.stmts(s.Body.List, h.copy())
		if s.Else != nil {
			w.stmt(s.Else, h.copy())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, h)
		}
		c := h.copy()
		if s.Cond != nil {
			w.calls(s.Cond, c)
		}
		w.stmts(s.Body.List, c)
		if s.Post != nil {
			w.stmt(s.Post, c)
		}
	case *ast.RangeStmt:
		w.calls(s.X, h)
		w.stmts(s.Body.List, h.copy())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, h)
		}
		if s.Tag != nil {
			w.calls(s.Tag, h)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, h.copy())
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, h)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, h.copy())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				cp := h.copy()
				if cc.Comm != nil {
					w.stmt(cc.Comm, cp)
				}
				w.stmts(cc.Body, cp)
			}
		}
	case *ast.GoStmt:
		// A new goroutine starts with nothing held; only its argument
		// expressions evaluate on this one.
		for _, arg := range s.Call.Args {
			w.calls(arg, h)
		}
	case *ast.DeferStmt:
		// A deferred unlock releases at return: from here on the mutex
		// is held for the rest of the function, which is exactly what
		// leaving it in the held set models. Other deferred work runs
		// under an unknowable held set; only its arguments are checked.
		if level, acquires, ok := w.mutexCall(s.Call); ok && !acquires {
			_ = level // deliberately kept held
			return
		}
		for _, arg := range s.Call.Args {
			w.calls(arg, h)
		}
	default:
		w.calls(s, h)
	}
}

// calls processes every call expression under n (skipping function
// literals) against the current held set.
func (w *lockWalker) calls(n ast.Node, h *held) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if level, acquires, isMutex := w.mutexCall(call); isMutex {
			if acquires {
				w.acquire(call, level, h)
			} else {
				delete(h.levels, level)
			}
			return true
		}
		if cfn, cfd := w.callee(call); cfn != nil {
			inner, anyHeld := h.innermost()
			if !anyHeld {
				return true
			}
			for l := range w.summary(cfn, cfd) {
				if l <= inner {
					w.pass.Reportf(call.Pos(),
						"call to %s acquires %s while %s is held: declared order is %s",
						cfn.Name(), w.order[l].short(), w.order[inner].short(), w.orderString())
					break
				}
			}
		}
		return true
	})
}

// acquire checks one direct Lock against the held set.
func (w *lockWalker) acquire(call *ast.CallExpr, level int, h *held) {
	if inner, anyHeld := h.innermost(); anyHeld && level <= inner {
		if level == inner {
			w.pass.Reportf(call.Pos(),
				"acquires %s while an instance of it is already held (self-deadlock or unordered same-level pair)",
				w.order[level].short())
		} else {
			w.pass.Reportf(call.Pos(),
				"acquires %s while holding %s: declared order is %s",
				w.order[level].short(), w.order[inner].short(), w.orderString())
		}
	}
	h.levels[level] = true
}

// orderString renders the declared order for diagnostics.
func (w *lockWalker) orderString() string {
	parts := make([]string, len(w.order))
	for i, m := range w.order {
		parts[i] = m.short()
	}
	return fmt.Sprintf("%s (outermost first)", strings.Join(parts, " → "))
}
