// Package journalfix seeds journal-before-apply violations: terminal
// job-state writes with and without a preceding journal append.
package journalfix

type JobState int

const (
	StateQueued JobState = iota
	StateRunning
	StateDone
	StateFailed
	StateCanceled
)

type job struct {
	state JobState
	note  string
}

type store struct{ events []JobState }

func (st *store) record(s JobState)        { st.events = append(st.events, s) }
func (st *store) recordBatch(s []JobState) { st.events = append(st.events, s...) }

// compliant journals before applying the terminal state.
func compliant(st *store, j *job) {
	st.record(StateDone)
	j.state = StateDone
}

// unjournaled applies a terminal state with no journal append in sight.
func unjournaled(j *job) {
	j.state = StateFailed // want "terminal state write without a preceding journal append"
}

// nonTerminal writes are always fine.
func nonTerminal(j *job) {
	j.state = StateRunning
}

// dynamic assigns a computed state: possibly terminal, so the journal
// must already hold the event.
func dynamic(j *job, next JobState) {
	j.state = next // want "possibly-.*terminal state write without a preceding journal append"
}

// builtinAppendIsNotAJournal guards the builtin/method name collision:
// append(slice, ...) must not count as a journal call even though the
// journal's writer method is also named append.
func builtinAppendIsNotAJournal(j *job, xs []int) []int {
	xs = append(xs, 1)
	j.state = StateCanceled // want "terminal state write without a preceding journal append"
	return xs
}

// suppressed carries a justified exception.
func suppressed(j *job) {
	j.state = StateCanceled //impeccable:unjournaled fixture: justified exception
}
