// Package metricfix seeds metric-declaration violations against a
// fixture Registry mirroring the obs.Registry surface.
package metricfix

type Registry struct{}

func (r *Registry) Counter(name, help string)                                           {}
func (r *Registry) Gauge(name, help string)                                             {}
func (r *Registry) Histogram(name, help string, buckets []float64)                      {}
func (r *Registry) CounterVec(name, help string, labels ...string)                      {}
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) {}

func register(r *Registry) {
	r.Counter("jobs_total", "completed jobs")
	r.Counter("jobs-total", "bad name")                            // want "violates the Prometheus grammar"
	r.Gauge("jobs_total", "collides")                              // want "collides with the registration at"
	r.CounterVec("pops_total", "pops by stage", "stage", "0stage") // want "label name .0stage. violates the Prometheus grammar"
	r.CounterVec("acks_total", "acks", "__reserved")               // want "uses the reserved __ prefix"
	r.HistogramVec("latency_seconds", "latency", []float64{1, 2}, "stage")

	// A computed name belongs to the scrape-time validator, not this
	// analyzer.
	dyn := "a" + "b"
	r.Counter(dyn+"_total", "dynamic")
}

func suppressed(r *Registry) {
	r.Counter("legacy-name", "grandfathered") //impeccable:metricname fixture: grandfathered name
}
