// Package lockfix seeds mutex-order violations against the declared
// fixture order sched.mu → jb.mu → bus.mu (outermost first).
package lockfix

import "sync"

type sched struct {
	mu   sync.Mutex
	jobs []*jb
}

type jb struct {
	mu   sync.Mutex
	bus  *bus
	done bool
}

type bus struct {
	mu   sync.RWMutex
	subs int
}

// compliant takes the locks strictly outermost-first.
func compliant(s *sched, j *jb) {
	s.mu.Lock()
	j.mu.Lock()
	j.bus.mu.Lock()
	j.bus.mu.Unlock()
	j.mu.Unlock()
	s.mu.Unlock()
}

// inverted takes the scheduler lock while holding a job lock.
func inverted(s *sched, j *jb) {
	j.mu.Lock()
	s.mu.Lock() // want "acquires sched.mu while holding jb.mu"
	s.mu.Unlock()
	j.mu.Unlock()
}

// sameLevel re-acquires a held level: a self-deadlock on one instance,
// an undeclared ordering on two.
func sameLevel(a, b *jb) {
	a.mu.Lock()
	b.mu.Lock() // want "while an instance of it is already held"
	b.mu.Unlock()
	a.mu.Unlock()
}

// lockScheduler is the transitive half of the indirect inversion below.
func lockScheduler(s *sched) {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// indirect inverts the order through a callee: the report lands on the
// call, attributed to the callee's transitive acquisition summary.
func indirect(s *sched, j *jb) {
	j.mu.Lock()
	defer j.mu.Unlock()
	lockScheduler(s) // want "call to lockScheduler acquires sched.mu while jb.mu is held"
}

// earlyUnlock releases before taking the outer lock on the other
// branch; branch-local held sets keep this precise.
func earlyUnlock(s *sched, j *jb, flip bool) {
	j.mu.Lock()
	if flip {
		j.mu.Unlock()
		s.mu.Lock()
		s.mu.Unlock()
		return
	}
	j.mu.Unlock()
}

// goroutineFresh hands the inverted pair to a new goroutine, which
// starts with an empty held set: no violation.
func goroutineFresh(s *sched, j *jb) {
	j.mu.Lock()
	go func() {
		s.mu.Lock()
		s.mu.Unlock()
	}()
	j.mu.Unlock()
}

// suppressed carries a justified inversion.
func suppressed(s *sched, j *jb) {
	j.mu.Lock()
	//impeccable:lockorder fixture: justified inversion
	s.mu.Lock()
	s.mu.Unlock()
	j.mu.Unlock()
}
