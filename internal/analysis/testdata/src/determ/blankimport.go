package determ

import (
	_ "math/rand" // want "import of math/rand into a science package"
)
