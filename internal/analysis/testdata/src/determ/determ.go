// Package determ seeds one violation per determinism rule plus a
// suppressed site, as fixture input for the determinism analyzer.
package determ

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func sleepy() {
	time.Sleep(time.Second) // want "time.Sleep schedules against the wall clock"
}

func elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want "time.Since reads the wall clock"
}

func globalDraw() int {
	return rand.Intn(6) // want "rand.Intn draws from a global"
}

// durationsAreFine exercises the allowed parts of package time: bare
// durations and constants carry no clock and must not be flagged.
func durationsAreFine(d time.Duration) time.Duration {
	return d + 3*time.Millisecond
}

func suppressedWallClock() time.Time {
	//impeccable:wallclock fixture: justified operational read
	return time.Now()
}

func suppressedSameLine() time.Time {
	return time.Now() //impeccable:wallclock fixture: justified operational read
}
