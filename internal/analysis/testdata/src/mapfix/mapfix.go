// Package mapfix seeds map-iteration-order violations: range-over-map
// loops that build ordered output with and without a sort after.
package mapfix

import (
	"fmt"
	"io"
	"sort"
)

// unsortedAppend collects map keys in randomized order.
func unsortedAppend(scores map[string]float64) []string {
	var names []string
	for name := range scores { // want "map iteration order is randomized"
		names = append(names, name)
	}
	return names
}

// printed writes map entries straight to a stream.
func printed(w io.Writer, scores map[string]float64) {
	for name, s := range scores { // want "map iteration order is randomized"
		fmt.Fprintf(w, "%s %g\n", name, s)
	}
}

// sortedAfter is exempt: the collected output is sorted immediately
// after the loop.
func sortedAfter(scores map[string]float64) []string {
	var names []string
	for name := range scores {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// reduction is order-free: commutative accumulation only.
func reduction(scores map[string]float64) float64 {
	var sum float64
	for _, s := range scores {
		sum += s
	}
	return sum
}

// suppressed carries a justified order-free append.
func suppressed(scores map[string]float64) []string {
	var names []string
	//impeccable:unordered fixture: consumer treats this as a set
	for name := range scores {
		names = append(names, name)
	}
	return names
}
