package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism forbids wall-clock time and globally-seeded randomness
// in the science packages. Every table and figure of the reproduction
// must regenerate bit-identically from (seed, libOffset); a single
// time.Now() feeding a result, or one math/rand draw from the global
// stream, silently breaks the golden-funnel guarantee in a way no
// fixed-seed test can reliably catch. Randomness must come from
// xrand.RNG streams and schedulable time from hpc.Clock; genuinely
// operational wall-clock reads (telemetry, stage timings) are
// suppressed site-by-site with //impeccable:wallclock.
type Determinism struct {
	// Packages lists the import paths under the invariant.
	Packages []string
}

func (*Determinism) Name() string { return "determinism" }
func (*Determinism) Doc() string {
	return "forbid time.Now/Sleep and global math/rand in science packages (use hpc.Clock / xrand.RNG)"
}
func (*Determinism) Directive() string { return "wallclock" }

// forbiddenTimeFuncs are the package-level time functions that read or
// schedule against the wall clock. Duration arithmetic and constants
// (time.Second, time.Duration) stay legal — they carry no clock.
var forbiddenTimeFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "schedules against the wall clock",
	"After":     "schedules against the wall clock",
	"Tick":      "schedules against the wall clock",
	"NewTimer":  "schedules against the wall clock",
	"NewTicker": "schedules against the wall clock",
	"AfterFunc": "schedules against the wall clock",
}

// randPkgs are the globally-seeded random sources.
var randPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

func (a *Determinism) Run(pass *Pass) {
	if !pathInList(pass.Pkg.Path, a.Packages) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch path := pn.Imported().Path(); {
			case path == "time":
				if why, bad := forbiddenTimeFuncs[sel.Sel.Name]; bad {
					pass.Reportf(sel.Pos(),
						"time.%s %s; science packages must take time from hpc.Clock so simulated and real runs stay identical",
						sel.Sel.Name, why)
				}
			case randPkgs[path]:
				pass.Reportf(sel.Pos(),
					"%s.%s draws from a global, nondeterministically-shared stream; use a per-stage xrand.RNG derived from the campaign seed",
					ident.Name, sel.Sel.Name)
			}
			return true
		})
		// A dot- or blank-import of math/rand evades the selector walk;
		// flag the import itself.
		for _, imp := range f.Imports {
			if randPkgs[importString(imp)] && imp.Name != nil &&
				(imp.Name.Name == "." || imp.Name.Name == "_") {
				pass.Reportf(imp.Pos(),
					"import of %s into a science package; use xrand.RNG streams instead", importString(imp))
			}
		}
	}
}

// importString unquotes an import spec's path.
func importString(imp *ast.ImportSpec) string {
	s := imp.Path.Value
	if len(s) >= 2 {
		s = s[1 : len(s)-1]
	}
	return s
}

// pathInList reports whether the import path is an exact entry of the
// governed list.
func pathInList(path string, list []string) bool {
	for _, p := range list {
		if path == p {
			return true
		}
	}
	return false
}
