package analysis

// This file pins the project's declared invariants: which packages
// are science (deterministic by contract), how the service mutexes
// nest, where the write-ahead journal sits, and which registry the
// exposition uses. cmd/impeccable-vet runs exactly this suite; the
// configurations are data, so DESIGN.md §5 and this file must move
// together.

// SciencePackages are the packages whose outputs feed the paper's
// tables and figures: everything they compute must be a pure function
// of (seed, libOffset), which is what the determinism and maporder
// analyzers enforce.
var SciencePackages = []string{
	"impeccable/internal/campaign",
	"impeccable/internal/dock",
	"impeccable/internal/nn",
	"impeccable/internal/md",
	"impeccable/internal/chem",
	"impeccable/internal/esmacs",
	"impeccable/internal/ties",
	"impeccable/internal/latent",
	"impeccable/internal/pilot",
}

// ServiceLockOrder is the declared mutex nesting of the campaign
// service, outermost first: the scheduler's table lock, then a single
// job's lock, then the event bus's lock (which nests innermost so
// publishing is safe from inside any transition). The tenant rate
// limiter's lock is a leaf — admission control runs before the
// scheduler is consulted and never holds another service lock.
var ServiceLockOrder = []MutexRef{
	{Type: "impeccable/internal/service.scheduler", Field: "mu"},
	{Type: "impeccable/internal/service.job", Field: "mu"},
	{Type: "impeccable/internal/service.eventBus", Field: "mu"},
	{Type: "impeccable/internal/service.tenantLimiter", Field: "mu"},
}

// DefaultAnalyzers returns the project-configured suite, one analyzer
// per enforced invariant.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		&Determinism{Packages: SciencePackages},
		&LockOrder{Order: ServiceLockOrder},
		&JournalBefore{
			Packages:       []string{"impeccable/internal/service"},
			StateType:      "impeccable/internal/service.job",
			StateField:     "state",
			StateValueType: "impeccable/internal/service.JobState",
			Terminal:       []string{"StateDone", "StateFailed", "StateCanceled"},
			JournalCalls:   []string{"record", "recordBatch", "append", "appendBatch"},
		},
		&MetricsDecl{RegistryType: "impeccable/internal/obs.Registry"},
		&MapOrder{Packages: SciencePackages},
	}
}

// AnalyzerByName returns the default-suite analyzer with the given
// name, or nil.
func AnalyzerByName(name string) Analyzer {
	for _, a := range DefaultAnalyzers() {
		if a.Name() == name {
			return a
		}
	}
	return nil
}
