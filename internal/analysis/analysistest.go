package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// This file is the fixture harness used by the analyzer tests: a
// fixture package under testdata/src carries // want "regex"
// expectations on the lines where an analyzer must fire, and
// CheckFixture verifies the diagnostics and the expectations match
// one-to-one. It lives in the non-test part of the package so the
// per-analyzer test files stay declarative.

// wantRE extracts the quoted expectations from a // want comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE extracts each quoted regex from the expectation list.
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one // want entry awaiting a matching diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// CheckFixture runs the analyzers over one fixture package (rooted at
// fixtureRoot, which must hold a go.mod) and diffs the diagnostics
// against the fixture's // want expectations. Each diagnostic must
// match an expectation on its line, and each expectation must be hit.
// Failures are returned as one message per problem.
func CheckFixture(fixtureRoot, pattern string, analyzers ...Analyzer) []string {
	loader, err := NewLoader(fixtureRoot)
	if err != nil {
		return []string{err.Error()}
	}
	pkgs, err := loader.Load(pattern)
	if err != nil {
		return []string{err.Error()}
	}
	if len(pkgs) == 0 {
		return []string{fmt.Sprintf("no packages matched %q under %s", pattern, fixtureRoot)}
	}
	var problems []string
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, err := range pkg.TypeErrors {
			problems = append(problems, fmt.Sprintf("fixture type error: %v", err))
		}
		w, errs := collectWants(pkg.Dir)
		problems = append(problems, errs...)
		wants = append(wants, w...)
	}
	for _, d := range Run(pkgs, analyzers) {
		matched := false
		for _, w := range wants {
			if w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("%s:%d: expected diagnostic matching %q never reported", w.file, w.line, w.re))
		}
	}
	return problems
}

// collectWants scans a fixture directory's Go files for // want comments.
func collectWants(dir string) ([]*expectation, []string) {
	var wants []*expectation
	var problems []string
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, []string{err.Error()}
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
			if len(quoted) == 0 {
				problems = append(problems, fmt.Sprintf("%s:%d: malformed want comment", e.Name(), i+1))
				continue
			}
			for _, q := range quoted {
				re, err := regexp.Compile(q[1])
				if err != nil {
					problems = append(problems, fmt.Sprintf("%s:%d: bad want regex: %v", e.Name(), i+1, err))
					continue
				}
				wants = append(wants, &expectation{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return wants, problems
}
