package analysis

import (
	"go/ast"
	"go/types"
)

// JournalBefore enforces the ack-durability invariant of the campaign
// service: a terminal job-state transition must be journaled before it
// is applied. An acknowledged cancel or completion that reaches memory
// before the write-ahead journal can be lost across a crash — the
// restarted coordinator would revive a job whose cancellation was
// already acked, or drop a result a worker was told had landed. The
// analyzer flags every assignment of a terminal state to the job
// record that is not preceded, in the same function, by a journal
// append.
//
// The invariant has three deliberate exceptions, each carrying an
// //impeccable:unjournaled directive at the site: the in-process
// execute path (journals after the run, so drain interruptions resume
// instead of acking), the drain itself (interrupted jobs must stay
// in-flight in the journal), and journal replay (which applies states
// read from the journal).
type JournalBefore struct {
	// Packages lists the import paths under the invariant.
	Packages []string
	// StateType is the qualified named type holding the state field
	// ("pkgpath.job").
	StateType string
	// StateField is the state field's name.
	StateField string
	// StateValueType is the qualified state value type
	// ("pkgpath.JobState"); a non-constant assignment of this type is
	// treated as possibly terminal.
	StateValueType string
	// Terminal lists the package-level constant names that denote
	// terminal states.
	Terminal []string
	// JournalCalls lists callee names (methods, funcs or function
	// fields) that append to the journal.
	JournalCalls []string
}

func (*JournalBefore) Name() string { return "journalbefore" }
func (*JournalBefore) Doc() string {
	return "terminal job-state writes must be preceded by a journal append in the same function"
}
func (*JournalBefore) Directive() string { return "unjournaled" }

func (a *JournalBefore) Run(pass *Pass) {
	if !pathInList(pass.Pkg.Path, a.Packages) {
		return
	}
	info := pass.Pkg.Info
	journalCall := map[string]bool{}
	for _, n := range a.JournalCalls {
		journalCall[n] = true
	}
	terminal := map[string]bool{}
	for _, n := range a.Terminal {
		terminal[n] = true
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// One linear pass in source order: remember whether a journal
			// append has been seen when each state write is reached.
			journaled := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if name := calleeName(info, n); journalCall[name] {
						journaled = true
					}
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if !a.isStateField(info, lhs) {
							continue
						}
						rhs := n.Rhs[0]
						if len(n.Lhs) == len(n.Rhs) {
							for i, l := range n.Lhs {
								if l == lhs {
									rhs = n.Rhs[i]
								}
							}
						}
						kind, isTerminal := a.classify(info, terminal, rhs)
						if !isTerminal || journaled {
							continue
						}
						pass.Reportf(n.Pos(),
							"%s terminal state write without a preceding journal append in this function: an acked transition must be durable before it applies",
							kind)
					}
				}
				return true
			})
		}
	}
}

// isStateField reports whether the expression is the governed state
// field of the governed record type.
func (a *JournalBefore) isStateField(info *types.Info, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != a.StateField {
		return false
	}
	t := info.TypeOf(sel.X)
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path()+"."+named.Obj().Name() == a.StateType
}

// classify decides whether the assigned value is (or may be) a
// terminal state.
func (a *JournalBefore) classify(info *types.Info, terminal map[string]bool, rhs ast.Expr) (string, bool) {
	// A direct reference to a package-level state constant is decisive.
	if id, ok := rhs.(*ast.Ident); ok {
		if c, ok := info.Uses[id].(*types.Const); ok {
			if terminal[c.Name()] {
				return "a", true
			}
			return "", false
		}
	}
	// Any other expression of the state value type may evaluate to a
	// terminal state; the journal must already have the event either way.
	t := info.TypeOf(rhs)
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path()+"."+named.Obj().Name() == a.StateValueType {
		return "a possibly-", true
	}
	return "", false
}

// calleeName extracts the final name of a call's callee: method name,
// function name, or function-valued field name. Builtins never count —
// `append(jobs, j)` must not satisfy a journal method named "append".
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, builtin := info.Uses[fun].(*types.Builtin); builtin {
			return ""
		}
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
