package receptor

import (
	"math"
	"testing"

	"impeccable/internal/chem"
	"impeccable/internal/geom"
	"impeccable/internal/xrand"
)

func TestDeterministicConstruction(t *testing.T) {
	a := NewTarget("X", "0XXX", 42)
	b := NewTarget("X", "0XXX", 42)
	if len(a.Wells()) != len(b.Wells()) {
		t.Fatal("well counts differ")
	}
	for i := range a.Wells() {
		if a.Wells()[i].Pos != b.Wells()[i].Pos {
			t.Fatalf("well %d position differs", i)
		}
	}
	m := chem.FromID(7)
	if a.TrueAffinity(m) != b.TrueAffinity(m) {
		t.Fatal("TrueAffinity not deterministic")
	}
}

func TestStandardTargetsDistinct(t *testing.T) {
	ts := StandardTargets()
	if len(ts) != 4 {
		t.Fatalf("want 4 targets, got %d", len(ts))
	}
	m := chem.FromID(123)
	aff := map[float64]bool{}
	for _, tg := range ts {
		aff[tg.TrueAffinity(m)] = true
	}
	if len(aff) < 4 {
		t.Fatal("targets share affinity landscapes")
	}
	if ts[1].Name != "PLPro" || ts[1].PDBID != "6W9C" {
		t.Fatalf("PLPro misconfigured: %+v", ts[1])
	}
}

func TestTrueAffinityDistribution(t *testing.T) {
	tg := PLPro()
	r := xrand.New(1)
	var sum, sumsq float64
	lo, hi := math.Inf(1), math.Inf(-1)
	const n = 5000
	for i := 0; i < n; i++ {
		dg := tg.TrueAffinity(chem.FromID(r.Uint64()))
		if dg < -18 || dg > 2 {
			t.Fatalf("affinity out of clamp range: %v", dg)
		}
		sum += dg
		sumsq += dg * dg
		lo, hi = math.Min(lo, dg), math.Max(hi, dg)
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if mean > 0 || mean < -12 {
		t.Fatalf("affinity mean = %v, want in (-12, 0)", mean)
	}
	if sd < 1 || sd > 8 {
		t.Fatalf("affinity spread = %v, want a discriminating landscape", sd)
	}
	if hi-lo < 5 {
		t.Fatalf("affinity range too narrow: [%v, %v]", lo, hi)
	}
}

func TestWellDepthsTrackAffinity(t *testing.T) {
	// Molecules with better (more negative) true affinity must see
	// deeper wells on average — this is the causal channel that makes
	// docking informative about the hidden truth.
	tg := PLPro()
	r := xrand.New(3)
	type rec struct{ aff, depth float64 }
	recs := make([]rec, 0, 2000)
	for i := 0; i < 2000; i++ {
		m := chem.FromID(r.Uint64())
		depths := tg.WellDepths(m)
		var mean float64
		for _, d := range depths {
			for _, v := range d {
				mean += v
			}
		}
		mean /= float64(len(depths) * int(chem.NumBeadClasses))
		recs = append(recs, rec{tg.TrueAffinity(m), mean})
	}
	// Pearson correlation between affinity and mean depth should be
	// strongly negative (deeper wells <=> lower ΔG).
	var sa, sd, saa, sdd, sad float64
	for _, x := range recs {
		sa += x.aff
		sd += x.depth
		saa += x.aff * x.aff
		sdd += x.depth * x.depth
		sad += x.aff * x.depth
	}
	n := float64(len(recs))
	cov := sad/n - (sa/n)*(sd/n)
	va := saa/n - (sa/n)*(sa/n)
	vd := sdd/n - (sd/n)*(sd/n)
	corr := cov / math.Sqrt(va*vd)
	if corr > -0.5 {
		t.Fatalf("affinity/depth correlation = %v, want strongly negative", corr)
	}
}

func TestWellsInsideCavityNeighborhood(t *testing.T) {
	for _, tg := range StandardTargets() {
		for i, w := range tg.Wells() {
			if w.Pos.Dist(tg.PocketCenter()) > tg.PocketRadius()+1 {
				t.Fatalf("%s well %d at %v outside cavity", tg.Name, i, w.Pos)
			}
			if w.Sigma <= 0 {
				t.Fatalf("%s well %d nonpositive sigma", tg.Name, i)
			}
		}
	}
}

func TestBodyPenetration(t *testing.T) {
	tg := PLPro()
	// Deep inside the body, far from pocket: positive penetration.
	if p := tg.BodyPenetration(geom.Vec3{X: -8}); p <= 0 {
		t.Fatalf("interior point penetration = %v", p)
	}
	// Solvent: zero.
	if p := tg.BodyPenetration(geom.Vec3{X: 30}); p != 0 {
		t.Fatalf("solvent point penetration = %v", p)
	}
	// Pocket center: zero (cavity).
	if p := tg.BodyPenetration(tg.PocketCenter()); p != 0 {
		t.Fatalf("cavity point penetration = %v", p)
	}
}

func TestInsideBodyConsistentWithPenetration(t *testing.T) {
	tg := PLPro()
	r := xrand.New(9)
	for i := 0; i < 5000; i++ {
		x := geom.Vec3{X: r.Range(-20, 20), Y: r.Range(-20, 20), Z: r.Range(-20, 20)}
		in := tg.InsideBody(x)
		pen := tg.BodyPenetration(x)
		if in && pen <= 0 {
			t.Fatalf("point %v inside body but penetration %v", x, pen)
		}
		if !in && pen > 0 {
			t.Fatalf("point %v outside body but penetration %v", x, pen)
		}
	}
}

func TestBackboneGeometry(t *testing.T) {
	tg := PLPro()
	bb := tg.Backbone()
	if len(bb) != BackboneLen {
		t.Fatalf("backbone length = %d, want %d", len(bb), BackboneLen)
	}
	for i := 1; i < len(bb); i++ {
		d := bb[i].Dist(bb[i-1])
		// Bond length is 3.8 Å, but cavity steering may stretch a few.
		if d < 1 || d > 12 {
			t.Fatalf("bond %d length %v out of range", i, d)
		}
	}
	// Backbone stays clear of the pocket so a ligand can bind.
	for i, p := range bb {
		if p.Dist(tg.PocketCenter()) < 4.0 {
			t.Fatalf("backbone bead %d at %v intrudes into pocket", i, p)
		}
	}
}

func TestBackboneCompact(t *testing.T) {
	tg := PLPro()
	var far int
	for _, p := range tg.Backbone() {
		if p.Norm() > tg.SurfaceRadius()*1.5 {
			far++
		}
	}
	if far > BackboneLen/10 {
		t.Fatalf("%d backbone beads far outside the body", far)
	}
}

func BenchmarkTrueAffinity(b *testing.B) {
	tg := PLPro()
	m := chem.FromID(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tg.TrueAffinity(m)
	}
}

func BenchmarkWellDepths(b *testing.B) {
	tg := PLPro()
	m := chem.FromID(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tg.WellDepths(m)
	}
}
