// Package receptor models the protein targets of the campaign: the four
// SARS-CoV-2 proteins the paper screens against (3CLPro, PLPro, ADRP,
// NSP15). A Target carries
//
//   - a pocket geometry (binding cavity carved into a spherical protein
//     body, with several attraction subsites), which the docking engine
//     (S1) searches and the MD substrate (S2/S3) embeds the ligand in;
//
//   - a hidden pharmacophore weight vector defining the ground-truth
//     binding affinity of every molecule. The paper cannot know its ground
//     truth; the reproduction can, which is what lets EXPERIMENTS.md report
//     "scientific performance" (effective ligands found per unit time)
//     exactly.
//
// The physics stages never read TrueAffinity directly: the docking scoring
// function and the MD force field couple to the molecule only through
// per-well depths derived from the same hidden vectors, so physics-based
// estimates are noisy, biased observations of the truth — with accuracy
// improving from docking to CG-ESMACS to FG-ESMACS exactly as in the
// paper's Table 2 cost/accuracy ladder.
package receptor

import (
	"math"

	"impeccable/internal/chem"
	"impeccable/internal/geom"
	"impeccable/internal/xrand"
)

// Well is an attraction subsite inside the binding pocket (an H-bonding
// residue cluster, a hydrophobic shelf, ...).
type Well struct {
	Pos      geom.Vec3
	Sigma    float64                      // interaction range (Å)
	ClassAff [chem.NumBeadClasses]float64 // base well depth per bead class
	Vec      [chem.PharmaDim]float64      // pharmacophore coupling direction
	Charge   float64                      // electrostatic monopole
	// Cryptic marks a subsite closed in the crystal structure: invisible
	// to docking (S1 scores against the rigid crystal receptor) but
	// present in dynamics (S2/S3), where it opens transiently. Cryptic
	// sites are what make the S2→FG feedback loop scientifically
	// productive (Figs. 5E, 6).
	Cryptic bool
}

// Target is a receptor with a single designed binding region, matching the
// docking protocol input of the paper (§3.2 S1).
type Target struct {
	Name  string
	PDBID string

	seed          uint64
	weights       [chem.PharmaDim]float64
	wells         []Well
	pocketCenter  geom.Vec3
	pocketRadius  float64
	surfaceRadius float64
	backbone      []geom.Vec3
}

// BackboneLen is the number of Cα beads in every generated receptor
// backbone — 309, the Cα count the paper reports for PLPro (§7.1.3).
const BackboneLen = 309

// NewTarget builds a deterministic synthetic receptor.
func NewTarget(name, pdbID string, seed uint64) *Target {
	t := &Target{
		Name:          name,
		PDBID:         pdbID,
		seed:          seed,
		surfaceRadius: 14,
		pocketRadius:  5.0,
	}
	r := xrand.NewFrom(seed, 0x7EC7)
	// Hidden affinity direction: unit-ish vector in pharmacophore space.
	var norm float64
	for k := range t.weights {
		t.weights[k] = r.NormFloat64()
		norm += t.weights[k] * t.weights[k]
	}
	norm = math.Sqrt(norm)
	for k := range t.weights {
		t.weights[k] /= norm
	}
	// Pocket along +x, mouth at the surface, center inside the body.
	t.pocketCenter = geom.Vec3{X: 9}
	// Four to six subsites scattered through the cavity.
	nw := 4 + r.Intn(3)
	for w := 0; w < nw; w++ {
		well := Well{
			Pos: t.pocketCenter.Add(geom.Vec3{
				X: r.Range(-2.5, 2.5),
				Y: r.Range(-2.5, 2.5),
				Z: r.Range(-2.5, 2.5),
			}),
			Sigma:  r.Range(1.2, 2.2),
			Charge: r.Range(-0.5, 0.5),
		}
		for c := 0; c < int(chem.NumBeadClasses); c++ {
			well.ClassAff[c] = r.Range(0.1, 1.4)
		}
		// Couple each well to the hidden direction plus a private
		// perturbation: molecules aligned with the target's weights
		// see uniformly deeper wells.
		for k := range well.Vec {
			well.Vec[k] = t.weights[k] + 0.35*r.NormFloat64()
		}
		t.wells = append(t.wells, well)
	}
	// Cryptic subsite: one deep, narrow well at the cavity bottom. Short
	// CG simulations visit it only transiently; conformations that found
	// it show markedly lower interaction energy, get selected by S2's
	// stability/outlier filter, and seed FG runs that stay bound there —
	// the "compound moving further into the binding site" mechanism the
	// paper reports in Fig. 5E and quantifies in Fig. 6.
	deepDir := geom.Vec3{X: r.Range(0.2, 1), Y: r.Norm(0, 0.3), Z: r.Norm(0, 0.3)}.Unit()
	cryptic := Well{
		Pos:     t.pocketCenter.Add(deepDir.Scale(r.Range(2.8, 3.4))),
		Sigma:   r.Range(0.9, 1.2),
		Charge:  r.Range(-0.3, 0.3),
		Cryptic: true,
	}
	for c := 0; c < int(chem.NumBeadClasses); c++ {
		cryptic.ClassAff[c] = r.Range(1.4, 2.4)
	}
	for k := range cryptic.Vec {
		cryptic.Vec[k] = t.weights[k] + 0.25*r.NormFloat64()
	}
	t.wells = append(t.wells, cryptic)
	t.backbone = generateBackbone(r.Split(), t.pocketCenter, t.surfaceRadius)
	return t
}

// StandardTargets returns the four main SARS-CoV-2 targets of §7.1.1.
func StandardTargets() []*Target {
	return []*Target{
		NewTarget("3CLPro", "6LU7", 0x3C1),
		NewTarget("PLPro", "6W9C", 0x917),
		NewTarget("ADRP", "6W02", 0xAD4),
		NewTarget("NSP15", "6VWW", 0x5F1),
	}
}

// PLPro returns the papain-like protease target used for the paper's
// headline vignette (PDB 6W9C, Figs. 4–6).
func PLPro() *Target { return StandardTargets()[1] }

// Wells exposes all pocket subsites, including cryptic ones (the
// landscape dynamics sees).
func (t *Target) Wells() []Well { return t.wells }

// DockableWells returns the subsites visible in the rigid crystal
// structure — the landscape docking scores against. Cryptic subsites are
// excluded.
func (t *Target) DockableWells() []Well {
	out := make([]Well, 0, len(t.wells))
	for _, w := range t.wells {
		if !w.Cryptic {
			out = append(out, w)
		}
	}
	return out
}

// PocketCenter returns the cavity center; the docking search box and MD
// funnel potential are anchored here.
func (t *Target) PocketCenter() geom.Vec3 { return t.pocketCenter }

// PocketRadius returns the cavity radius (Å).
func (t *Target) PocketRadius() float64 { return t.pocketRadius }

// SurfaceRadius returns the protein body radius (Å).
func (t *Target) SurfaceRadius() float64 { return t.surfaceRadius }

// Backbone returns the receptor's Cα skeleton (BackboneLen beads),
// used by the MD substrate and the 3D-AAE point clouds.
func (t *Target) Backbone() []geom.Vec3 { return t.backbone }

// affinityScore is the scalar structure-activity landscape: hidden
// direction response plus a mild quadratic term so the landscape is not
// linear in features.
func (t *Target) affinityScore(m *chem.Molecule) float64 {
	p := m.Pharma()
	var s, q float64
	for k := 0; k < chem.PharmaDim; k++ {
		s += t.weights[k] * p[k]
		q += p[k] * p[k]
	}
	return s - 0.010*q
}

// TrueAffinity returns the ground-truth binding free energy (kcal/mol) of
// molecule m against this target. More negative is better. Values fall
// mostly in [-14, 0] with strong binders in the deep tail, mirroring
// experimental dissociation-constant scales.
func (t *Target) TrueAffinity(m *chem.Molecule) float64 {
	s := t.affinityScore(m)
	// Map the roughly unit-normal landscape score onto kcal/mol, then
	// squash smoothly into (-18, 2) — a smooth map keeps the landscape
	// injective (no degenerate plateau of identical affinities) while
	// bounding it to experimental scales.
	dg := -6 - 3.2*s
	return -8 + 10*math.Tanh((dg+8)/10)
}

// WellDepths precomputes, for molecule m, the depth of every (well, bead
// class) pair. The docking scoring function and the MD pocket forces both
// consume this table, which is where the hidden structure-activity signal
// enters the physics: wells are deeper for molecules aligned with the
// target's pharmacophore.
func (t *Target) WellDepths(m *chem.Molecule) [][chem.NumBeadClasses]float64 {
	p := m.Pharma()
	out := make([][chem.NumBeadClasses]float64, len(t.wells))
	for w, well := range t.wells {
		var dot float64
		for k := 0; k < chem.PharmaDim; k++ {
			dot += well.Vec[k] * p[k]
		}
		gate := sigmoid(0.8 * dot) // (0,1): molecule/well compatibility
		for c := 0; c < int(chem.NumBeadClasses); c++ {
			out[w][c] = well.ClassAff[c] * (0.3 + 1.7*gate)
		}
	}
	return out
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// InsideBody reports whether point x lies inside the protein body
// (excluding the carved pocket cavity): the clash region for docking.
func (t *Target) InsideBody(x geom.Vec3) bool {
	return x.Norm() < t.surfaceRadius && x.Dist(t.pocketCenter) > t.pocketRadius
}

// BodyPenetration returns the depth (Å) by which x penetrates the protein
// body, or 0 if x is in solvent or in the cavity. The measure is smooth
// enough for gradient-based local search (ADADELTA in the docking engine).
func (t *Target) BodyPenetration(x geom.Vec3) float64 {
	d := x.Norm()
	if d >= t.surfaceRadius {
		return 0
	}
	cav := x.Dist(t.pocketCenter)
	if cav <= t.pocketRadius {
		return 0
	}
	pen := t.surfaceRadius - d
	// Soften near the cavity wall so the boundary is continuous.
	wall := cav - t.pocketRadius
	if wall < pen {
		pen = wall
	}
	return pen
}

// generateBackbone grows a compact self-avoiding-ish Cα walk filling the
// protein body while keeping out of the pocket cavity.
func generateBackbone(r *xrand.RNG, pocket geom.Vec3, surfaceR float64) []geom.Vec3 {
	const bond = 3.8 // Cα–Cα virtual bond length (Å)
	pts := make([]geom.Vec3, 0, BackboneLen)
	cur := geom.Vec3{X: -surfaceR * 0.5}
	pts = append(pts, cur)
	dir := geom.Vec3{X: 0, Y: 1, Z: 0}
	for len(pts) < BackboneLen {
		// Propose a bend of the current direction.
		axis := geom.Vec3{X: r.NormFloat64(), Y: r.NormFloat64(), Z: r.NormFloat64()}
		prop := geom.AxisAngle(axis, r.Range(0.2, 1.0)).Rotate(dir).Unit()
		next := cur.Add(prop.Scale(bond))
		// Reflect back toward the center if leaving the body; steer
		// away from the cavity so the pocket stays open.
		if next.Norm() > surfaceR*0.92 {
			prop = prop.Sub(next.Unit().Scale(2 * prop.Dot(next.Unit()))).Unit()
			next = cur.Add(prop.Scale(bond))
		}
		if next.Dist(pocket) < 6.0 {
			away := next.Sub(pocket).Unit()
			next = next.Add(away.Scale(6.0 - next.Dist(pocket)))
		}
		pts = append(pts, next)
		dir = next.Sub(cur).Unit()
		cur = next
	}
	return pts
}
