// Package hpc models the leadership-class platforms of the campaign
// (§7.2/§8: Summit, Frontera, Lassen, Theta, SuperMUC-NG): node/GPU
// resource specifications, a virtual clock with a discrete-event mode for
// at-scale runs, a batch system with queue latency, and the FLOP
// accounting used by the Table 3 methodology.
//
// The workflow runtimes (pilot, entk, raptor) are written against the
// Clock/Timer abstraction, so the same scheduler and load-balancer code
// executes both in real time (laptop-scale runs where tasks are real Go
// functions) and in simulated time (Summit-scale runs where task
// durations come from the Table 2 cost model). That duality is how a
// 4000-node, 40 M-docks/hour campaign reproduces on one machine.
package hpc

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts time for the workflow runtimes.
type Clock interface {
	// Now returns the current time in seconds since the clock epoch.
	Now() float64
	// After schedules fn to run at Now()+delay seconds. In the simulated
	// clock fn runs synchronously from the event loop; in the real clock
	// it runs on its own goroutine.
	After(delay float64, fn func())
}

// RealClock is the wall-clock implementation.
type RealClock struct{ epoch time.Time }

// NewRealClock returns a wall clock with epoch = now.
func NewRealClock() *RealClock { return &RealClock{epoch: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() float64 { return time.Since(c.epoch).Seconds() }

// After implements Clock.
func (c *RealClock) After(delay float64, fn func()) {
	if delay <= 0 {
		go fn()
		return
	}
	time.AfterFunc(time.Duration(delay*float64(time.Second)), fn)
}

// event is a scheduled simulation callback.
type event struct {
	at  float64
	seq uint64 // tie-break: FIFO among equal times
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SimClock is a single-threaded discrete-event simulation clock: events
// execute in timestamp order, each possibly scheduling further events.
// All workflow-runtime callbacks in simulation mode run on the goroutine
// that calls Run, so runtime state needs no extra synchronization there —
// but the implementation is still mutex-guarded so the same runtimes can
// be driven concurrently in real mode.
type SimClock struct {
	mu  sync.Mutex
	now float64
	seq uint64
	pq  eventHeap
}

// NewSimClock returns a simulation clock at time zero.
func NewSimClock() *SimClock { return &SimClock{} }

// Now implements Clock.
func (c *SimClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock.
func (c *SimClock) After(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	c.mu.Lock()
	c.seq++
	heap.Push(&c.pq, event{at: c.now + delay, seq: c.seq, fn: fn})
	c.mu.Unlock()
}

// Step executes the next pending event, returning false when none remain.
func (c *SimClock) Step() bool {
	c.mu.Lock()
	if len(c.pq) == 0 {
		c.mu.Unlock()
		return false
	}
	e := heap.Pop(&c.pq).(event)
	c.now = e.at
	c.mu.Unlock()
	e.fn()
	return true
}

// Run drains the event queue to quiescence and returns the final time.
func (c *SimClock) Run() float64 {
	for c.Step() {
	}
	return c.Now()
}

// RunUntil executes events up to (and including) time t, leaving later
// events queued.
func (c *SimClock) RunUntil(t float64) {
	for {
		c.mu.Lock()
		if len(c.pq) == 0 || c.pq[0].at > t {
			if c.now < t {
				c.now = t
			}
			c.mu.Unlock()
			return
		}
		e := heap.Pop(&c.pq).(event)
		c.now = e.at
		c.mu.Unlock()
		e.fn()
	}
}

// Pending returns the number of queued events.
func (c *SimClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pq)
}
