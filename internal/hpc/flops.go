package hpc

import (
	"sort"
	"sync"
)

// FlopCounter aggregates floating-point-operation counts per named
// component, following the Table 3 methodology: flops are counted per
// representative work unit (an MD step, a training batch, a docked
// ligand) and scaled by the work-set size; rates are flops divided by the
// time a component's tasks spent, including pre/post overhead.
type FlopCounter struct {
	mu      sync.Mutex
	flops   map[string]int64
	seconds map[string]float64
	units   map[string]int64 // work units processed (ligands, batches…)
}

// NewFlopCounter returns an empty counter.
func NewFlopCounter() *FlopCounter {
	return &FlopCounter{
		flops:   map[string]int64{},
		seconds: map[string]float64{},
		units:   map[string]int64{},
	}
}

// Add records flops, busy seconds and work units for a component.
func (c *FlopCounter) Add(component string, flops int64, seconds float64, units int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flops[component] += flops
	c.seconds[component] += seconds
	c.units[component] += units
}

// ComponentStats summarizes one component.
type ComponentStats struct {
	Component string
	Flops     int64
	Seconds   float64
	Units     int64
	// Rate is flops/second (0 when no time recorded).
	Rate float64
	// Throughput is units/second (0 when no time recorded).
	Throughput float64
}

// Stats returns per-component summaries sorted by component name.
func (c *FlopCounter) Stats() []ComponentStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.flops))
	for n := range c.flops {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]ComponentStats, 0, len(names))
	for _, n := range names {
		s := ComponentStats{
			Component: n,
			Flops:     c.flops[n],
			Seconds:   c.seconds[n],
			Units:     c.units[n],
		}
		if s.Seconds > 0 {
			s.Rate = float64(s.Flops) / s.Seconds
			s.Throughput = float64(s.Units) / s.Seconds
		}
		out = append(out, s)
	}
	return out
}

// Get returns the stats for one component (zero value if absent).
func (c *FlopCounter) Get(component string) ComponentStats {
	for _, s := range c.Stats() {
		if s.Component == component {
			return s
		}
	}
	return ComponentStats{Component: component}
}
