package hpc

// NodeSpec describes one compute node's resources.
type NodeSpec struct {
	Cores int
	GPUs  int
}

// Platform is a named machine with homogeneous nodes.
type Platform struct {
	Name  string
	Nodes int
	Spec  NodeSpec
}

// Summit returns the OLCF Summit configuration the paper's Tables 2-3 are
// normalized to: 4608 nodes, 42 usable CPU cores and 6 V100 GPUs each.
func Summit() Platform {
	return Platform{Name: "Summit", Nodes: 4608, Spec: NodeSpec{Cores: 42, GPUs: 6}}
}

// Frontera returns the TACC Frontera configuration (§8: 40 M docks/hour
// sustained on 4000 nodes): 8008 CPU nodes, 56 cores, no GPUs.
func Frontera() Platform {
	return Platform{Name: "Frontera", Nodes: 8008, Spec: NodeSpec{Cores: 56}}
}

// Lassen returns the LLNL Lassen configuration (Summit-like, 4 GPUs).
func Lassen() Platform {
	return Platform{Name: "Lassen", Nodes: 795, Spec: NodeSpec{Cores: 40, GPUs: 4}}
}

// WithNodes returns a copy of the platform restricted to n nodes (what a
// batch allocation grants).
func (p Platform) WithNodes(n int) Platform {
	if n > p.Nodes {
		n = p.Nodes
	}
	p.Nodes = n
	return p
}

// TotalCores returns the aggregate core count.
func (p Platform) TotalCores() int { return p.Nodes * p.Spec.Cores }

// TotalGPUs returns the aggregate GPU count.
func (p Platform) TotalGPUs() int { return p.Nodes * p.Spec.GPUs }

// BatchSystem models the machine's batch scheduler at the fidelity the
// campaign needs: a submission delay before a pilot's resources become
// available (queue wait), after which the allocation is dedicated.
type BatchSystem struct {
	Clock     Clock
	QueueWait float64 // seconds between submission and allocation
}

// Submit requests n nodes of p and calls grant with the allocation when
// the queue wait elapses.
func (b *BatchSystem) Submit(p Platform, n int, grant func(Platform)) {
	alloc := p.WithNodes(n)
	b.Clock.After(b.QueueWait, func() { grant(alloc) })
}
