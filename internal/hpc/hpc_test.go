package hpc

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSimClockOrdering(t *testing.T) {
	c := NewSimClock()
	var order []int
	c.After(3, func() { order = append(order, 3) })
	c.After(1, func() { order = append(order, 1) })
	c.After(2, func() { order = append(order, 2) })
	end := c.Run()
	if end != 3 {
		t.Fatalf("final time = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v", order)
	}
}

func TestSimClockFIFOAtEqualTimes(t *testing.T) {
	c := NewSimClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.After(5, func() { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestSimClockCascade(t *testing.T) {
	c := NewSimClock()
	var hits int
	var recurse func()
	depth := 0
	recurse = func() {
		hits++
		depth++
		if depth < 100 {
			c.After(1, recurse)
		}
	}
	c.After(1, recurse)
	end := c.Run()
	if hits != 100 {
		t.Fatalf("hits = %d", hits)
	}
	if end != 100 {
		t.Fatalf("end = %v", end)
	}
}

func TestSimClockNegativeDelayClamped(t *testing.T) {
	c := NewSimClock()
	c.After(5, func() {})
	c.Step()
	ran := false
	c.After(-10, func() { ran = true })
	c.Run()
	if !ran {
		t.Fatal("negative-delay event dropped")
	}
	if c.Now() != 5 {
		t.Fatalf("time went backwards: %v", c.Now())
	}
}

func TestSimClockRunUntil(t *testing.T) {
	c := NewSimClock()
	var hits []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		c.After(at, func() { hits = append(hits, at) })
	}
	c.RunUntil(3)
	if len(hits) != 3 {
		t.Fatalf("hits after RunUntil(3) = %v", hits)
	}
	if c.Pending() != 2 {
		t.Fatalf("pending = %d", c.Pending())
	}
	if c.Now() != 3 {
		t.Fatalf("now = %v", c.Now())
	}
	c.Run()
	if len(hits) != 5 {
		t.Fatalf("hits after Run = %v", hits)
	}
}

func TestSimClockMonotone(t *testing.T) {
	f := func(delays []float64) bool {
		c := NewSimClock()
		var last float64
		ok := true
		for _, d := range delays {
			if d < 0 {
				d = -d
			}
			if d > 1e6 {
				continue
			}
			c.After(d, func() {
				if c.Now() < last {
					ok = false
				}
				last = c.Now()
			})
		}
		c.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := NewRealClock()
	var wg sync.WaitGroup
	wg.Add(1)
	c.After(0, func() { wg.Done() })
	wg.Wait()
	if c.Now() < 0 {
		t.Fatal("negative wall time")
	}
}

func TestPlatformSpecs(t *testing.T) {
	s := Summit()
	if s.Nodes != 4608 || s.Spec.GPUs != 6 || s.Spec.Cores != 42 {
		t.Fatalf("Summit spec wrong: %+v", s)
	}
	if s.TotalGPUs() != 4608*6 {
		t.Fatalf("TotalGPUs = %d", s.TotalGPUs())
	}
	f := Frontera()
	if f.Spec.GPUs != 0 || f.TotalCores() != 8008*56 {
		t.Fatalf("Frontera spec wrong: %+v", f)
	}
}

func TestWithNodesClamps(t *testing.T) {
	p := Summit().WithNodes(100)
	if p.Nodes != 100 {
		t.Fatalf("WithNodes = %d", p.Nodes)
	}
	p = Summit().WithNodes(10_000_000)
	if p.Nodes != 4608 {
		t.Fatalf("WithNodes did not clamp: %d", p.Nodes)
	}
}

func TestBatchSystemQueueWait(t *testing.T) {
	clk := NewSimClock()
	bs := &BatchSystem{Clock: clk, QueueWait: 120}
	var grantedAt float64
	var got Platform
	bs.Submit(Summit(), 1000, func(p Platform) {
		grantedAt = clk.Now()
		got = p
	})
	clk.Run()
	if grantedAt != 120 {
		t.Fatalf("granted at %v, want 120", grantedAt)
	}
	if got.Nodes != 1000 {
		t.Fatalf("allocation nodes = %d", got.Nodes)
	}
}

func TestFlopCounter(t *testing.T) {
	fc := NewFlopCounter()
	fc.Add("S1", 1000, 2, 10)
	fc.Add("S1", 1000, 2, 10)
	fc.Add("ML1", 500, 1, 100)
	stats := fc.Stats()
	if len(stats) != 2 {
		t.Fatalf("components = %d", len(stats))
	}
	s1 := fc.Get("S1")
	if s1.Flops != 2000 || s1.Seconds != 4 || s1.Units != 20 {
		t.Fatalf("S1 stats = %+v", s1)
	}
	if s1.Rate != 500 || s1.Throughput != 5 {
		t.Fatalf("S1 rates = %+v", s1)
	}
	if got := fc.Get("missing"); got.Flops != 0 {
		t.Fatalf("missing component = %+v", got)
	}
}

func TestFlopCounterConcurrent(t *testing.T) {
	fc := NewFlopCounter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				fc.Add("x", 1, 0.001, 1)
			}
		}()
	}
	wg.Wait()
	if got := fc.Get("x"); got.Flops != 8000 {
		t.Fatalf("concurrent adds lost: %d", got.Flops)
	}
}

func BenchmarkSimClockEvents(b *testing.B) {
	c := NewSimClock()
	for i := 0; i < b.N; i++ {
		c.After(float64(i%100), func() {})
	}
	b.ResetTimer()
	c.Run()
}
