// Package deepdrive implements the S2 stage: DeepDriveMD-style ML-driven
// adaptive sampling (§5.1.4, §6.1.3). One S2 iteration consumes ensemble
// MD trajectories (from S3-CG), aggregates their Cα point clouds, trains
// the 3D-AAE on an 80/20 train/validation split, embeds every frame into
// the latent manifold, runs local-outlier-factor detection there, and
// selects the outlier conformations — the "interesting" protein-ligand
// complexes — that seed the expensive S3-FG stage.
//
// The adaptive loop (ML-steered simulation) is exposed both as a single
// Run (one pipeline iteration, as scheduled by EnTK) and as Iterate,
// which launches new MD from the selected outliers — the "steered
// advanced sampling" feedback of Fig. 1.
package deepdrive

import (
	"fmt"
	"sort"

	"impeccable/internal/aae"
	"impeccable/internal/esmacs"
	"impeccable/internal/geom"
	"impeccable/internal/latent"
	"impeccable/internal/md"
	"impeccable/internal/receptor"
	"impeccable/internal/xrand"
)

// Config controls one S2 iteration. Defaults follow §7.1.3: latent 64,
// batch 64, Gaussian prior σ 0.2, 80/20 split.
type Config struct {
	Epochs            int
	BatchSize         int
	MaxFrames         int     // subsample cap on the aggregated dataset
	ValFrac           float64 // validation fraction (0.2)
	LOFK              int     // LOF neighbourhood size
	OutliersPerLigand int     // conformations selected per compound (5)
	Seed              uint64
	AAE               aae.Config // zero value: derived from the backbone size
}

// DefaultConfig returns the §7.1.3 configuration scaled to substrate
// size.
func DefaultConfig() Config {
	return Config{
		Epochs:            20,
		BatchSize:         16,
		MaxFrames:         1024,
		ValFrac:           0.2,
		LOFK:              12,
		OutliersPerLigand: 5,
		Seed:              1,
	}
}

// FrameRef locates a frame in the aggregated dataset.
type FrameRef struct {
	MolID    uint64
	Replica  int
	Frame    int
	RMSD     float64 // ligand RMSD of the frame
	Contacts int
	Inter    float64 // protein-ligand interaction energy of the frame
}

// Selection is one outlier conformation chosen to seed S3-FG.
type Selection struct {
	Ref      FrameRef
	Ligand   []geom.Vec3 // ligand pose to restart from
	Latent   []float64
	LOFScore float64
}

// Report is the outcome of an S2 iteration.
type Report struct {
	Selections []Selection  // outliers, grouped per molecule, best first
	History    []aae.Losses // per-epoch training losses
	ValRecon   float64      // validation Chamfer loss
	Embeddings [][]float64  // latent embedding of every aggregated frame
	Refs       []FrameRef   // provenance of each embedding row
	LOF        []float64    // LOF score per frame
	Frames     int          // aggregated dataset size
	Flops      int64        // training FLOP estimate
}

// Driver runs S2 iterations against a target.
type Driver struct {
	Target *receptor.Target
	Cfg    Config
}

// NewDriver builds a driver with the default configuration.
func NewDriver(t *receptor.Target) *Driver {
	return &Driver{Target: t, Cfg: DefaultConfig()}
}

// Run performs one S2 iteration over the retained trajectories of the
// given CG estimates (each must have been produced with
// Runner.KeepTrajectories). It returns the outlier selections for S3-FG.
func (d *Driver) Run(ests []esmacs.Estimate) (*Report, error) {
	clouds, ligands, refs, err := d.aggregate(ests)
	if err != nil {
		return nil, err
	}
	rep := &Report{Refs: refs, Frames: len(clouds)}

	// Train/validation split.
	r := xrand.New(d.Cfg.Seed)
	perm := r.Perm(len(clouds))
	nVal := int(d.Cfg.ValFrac * float64(len(clouds)))
	if nVal < 1 {
		nVal = 1
	}
	train := make([][]geom.Vec3, 0, len(clouds)-nVal)
	val := make([][]geom.Vec3, 0, nVal)
	for i, pi := range perm {
		if i < nVal {
			val = append(val, clouds[pi])
		} else {
			train = append(train, clouds[pi])
		}
	}

	cfg := d.Cfg.AAE
	if cfg.NumPoints == 0 {
		cfg = aae.DefaultConfig(len(clouds[0]))
		cfg.Seed = d.Cfg.Seed
	}
	model := aae.New(cfg)
	rep.History = model.TrainEpochs(train, d.Cfg.Epochs, d.Cfg.BatchSize)
	rep.ValRecon = model.ValidationRecon(val)
	rep.Flops = model.TrainFlops(d.Cfg.BatchSize) *
		int64(d.Cfg.Epochs) * int64((len(train)+d.Cfg.BatchSize-1)/d.Cfg.BatchSize)

	// Embed every frame and find density outliers on the manifold.
	rep.Embeddings = model.EncodeBatch(clouds)
	k := d.Cfg.LOFK
	if k >= len(clouds) {
		k = len(clouds) - 1
	}
	if k < 1 {
		return nil, fmt.Errorf("deepdrive: dataset too small for LOF (%d frames)", len(clouds))
	}
	rep.LOF = latent.LOF(rep.Embeddings, k)

	// Per-molecule: keep the top OutliersPerLigand scoring frames,
	// restricted to frames with increased stability profiles (§5.1.4:
	// the 3D-AAE filters "those conformations that show increased
	// stability profiles in the LPCs", measured as heavy-atom contacts;
	// here: contacts at or above the molecule's median).
	type cand struct {
		idx   int
		score float64
	}
	perMol := map[uint64][]cand{}
	for i, ref := range refs {
		perMol[ref.MolID] = append(perMol[ref.MolID], cand{i, rep.LOF[i]})
	}
	molIDs := make([]uint64, 0, len(perMol))
	for id := range perMol {
		molIDs = append(molIDs, id)
	}
	sort.Slice(molIDs, func(a, b int) bool { return molIDs[a] < molIDs[b] })
	for _, id := range molIDs {
		cands := perMol[id]
		// Stability filter: keep the more favourably interacting half of
		// this molecule's frames (lower interaction energy = increased
		// stability profile), then rank those by LOF outlier score.
		ee := make([]float64, len(cands))
		for i, c := range cands {
			ee[i] = refs[c.idx].Inter
		}
		sort.Float64s(ee)
		median := ee[len(ee)/2]
		stable := cands[:0]
		for _, c := range cands {
			if refs[c.idx].Inter <= median {
				stable = append(stable, c)
			}
		}
		if len(stable) > 0 {
			cands = stable
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
		n := d.Cfg.OutliersPerLigand
		if n > len(cands) {
			n = len(cands)
		}
		for _, c := range cands[:n] {
			rep.Selections = append(rep.Selections, Selection{
				Ref:      refs[c.idx],
				Ligand:   ligands[c.idx],
				Latent:   rep.Embeddings[c.idx],
				LOFScore: c.score,
			})
		}
	}
	return rep, nil
}

// aggregate flattens the retained trajectories into point clouds (protein
// Cα coordinates), ligand poses and provenance refs, subsampling uniformly
// to MaxFrames.
func (d *Driver) aggregate(ests []esmacs.Estimate) ([][]geom.Vec3, [][]geom.Vec3, []FrameRef, error) {
	var clouds, ligands [][]geom.Vec3
	var refs []FrameRef
	for _, est := range ests {
		if est.Trajs == nil {
			return nil, nil, nil, fmt.Errorf(
				"deepdrive: estimate for mol %x has no retained trajectories", est.MolID)
		}
		for rep, tr := range est.Trajs {
			for fi, fr := range tr.Frames {
				clouds = append(clouds, fr.Protein)
				ligands = append(ligands, fr.Ligand)
				refs = append(refs, FrameRef{
					MolID:    est.MolID,
					Replica:  rep,
					Frame:    fi,
					RMSD:     fr.LigandRMSD,
					Contacts: fr.Contacts,
					Inter:    fr.E.Inter,
				})
			}
		}
	}
	if len(clouds) == 0 {
		return nil, nil, nil, fmt.Errorf("deepdrive: no frames aggregated")
	}
	if len(clouds) > d.Cfg.MaxFrames {
		r := xrand.NewFrom(d.Cfg.Seed, 0xA66)
		keep := r.SampleK(len(clouds), d.Cfg.MaxFrames)
		sort.Ints(keep)
		nc := make([][]geom.Vec3, len(keep))
		nl := make([][]geom.Vec3, len(keep))
		nr := make([]FrameRef, len(keep))
		for i, k := range keep {
			nc[i], nl[i], nr[i] = clouds[k], ligands[k], refs[k]
		}
		clouds, ligands, refs = nc, nl, nr
	}
	return clouds, ligands, refs, nil
}

// Iterate performs the steered-sampling feedback: for each selection it
// restarts a short MD segment from the outlier conformation and returns
// the resulting trajectories (new data for the next S2 round). steps
// controls the segment length.
func (d *Driver) Iterate(sels []Selection, molOf func(uint64) *md.System, steps int) []*md.Trajectory {
	var out []*md.Trajectory
	integ := md.DefaultIntegrator()
	for i, sel := range sels {
		sys := molOf(sel.Ref.MolID)
		// Restart from the outlier's ligand pose.
		copy(sys.Pos[sys.NProt:], sel.Ligand)
		r := xrand.NewFrom(d.Cfg.Seed^sel.Ref.MolID, uint64(i))
		integ.InitVelocities(sys, r)
		tr := md.Run(sys, integ, md.RunConfig{
			Steps:      steps,
			SampleEach: 20,
			Record:     true,
		}, r)
		out = append(out, tr)
	}
	return out
}
