package deepdrive

import (
	"testing"

	"impeccable/internal/chem"
	"impeccable/internal/esmacs"
	"impeccable/internal/md"
	"impeccable/internal/receptor"
	"impeccable/internal/xrand"
)

// fastEstimates runs a shortened CG protocol with retained trajectories
// for a few molecules.
func fastEstimates(t *testing.T, n int) []esmacs.Estimate {
	t.Helper()
	tg := receptor.PLPro()
	runner := esmacs.NewRunner(tg, 5)
	runner.KeepTrajectories = true
	proto := esmacs.CG()
	proto.Replicas = 3
	proto.EquilSteps = 40
	proto.ProdSteps = 200
	proto.SampleEach = 20
	proto.MinimizeIters = 20
	r := xrand.New(7)
	ests := make([]esmacs.Estimate, n)
	for i := 0; i < n; i++ {
		ests[i] = runner.Estimate(chem.FromID(r.Uint64()), nil, proto)
	}
	return ests
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Epochs = 4
	cfg.BatchSize = 8
	cfg.MaxFrames = 120
	cfg.LOFK = 8
	cfg.OutliersPerLigand = 3
	return cfg
}

func TestRunProducesSelections(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	ests := fastEstimates(t, 3)
	d := NewDriver(receptor.PLPro())
	d.Cfg = fastConfig()
	rep, err := d.Run(ests)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames == 0 || len(rep.Embeddings) != rep.Frames || len(rep.Refs) != rep.Frames {
		t.Fatalf("dataset bookkeeping broken: %d frames, %d embeddings, %d refs",
			rep.Frames, len(rep.Embeddings), len(rep.Refs))
	}
	// 3 molecules × 3 outliers each.
	if len(rep.Selections) != 9 {
		t.Fatalf("selections = %d, want 9", len(rep.Selections))
	}
	perMol := map[uint64]int{}
	for _, s := range rep.Selections {
		perMol[s.Ref.MolID]++
		if len(s.Ligand) == 0 || len(s.Latent) == 0 {
			t.Fatal("selection missing coordinates or latent")
		}
	}
	for id, c := range perMol {
		if c != 3 {
			t.Fatalf("mol %x has %d selections", id, c)
		}
	}
	if len(rep.History) != d.Cfg.Epochs {
		t.Fatalf("history epochs = %d", len(rep.History))
	}
	if rep.ValRecon <= 0 {
		t.Fatalf("validation recon = %v", rep.ValRecon)
	}
	if rep.Flops <= 0 {
		t.Fatal("flops accounting missing")
	}
}

func TestSelectionsOrderedByLOF(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	ests := fastEstimates(t, 2)
	d := NewDriver(receptor.PLPro())
	d.Cfg = fastConfig()
	rep, err := d.Run(ests)
	if err != nil {
		t.Fatal(err)
	}
	// Within each molecule, LOF scores must be non-increasing.
	last := map[uint64]float64{}
	for _, s := range rep.Selections {
		if prev, ok := last[s.Ref.MolID]; ok && s.LOFScore > prev+1e-12 {
			t.Fatalf("selections not ordered by LOF: %v after %v", s.LOFScore, prev)
		}
		last[s.Ref.MolID] = s.LOFScore
	}
}

func TestRunErrors(t *testing.T) {
	d := NewDriver(receptor.PLPro())
	d.Cfg = fastConfig()
	if _, err := d.Run(nil); err == nil {
		t.Fatal("no error for empty input")
	}
	// Estimates without retained trajectories must error.
	tg := receptor.PLPro()
	runner := esmacs.NewRunner(tg, 1)
	proto := esmacs.CG()
	proto.Replicas = 1
	proto.EquilSteps = 10
	proto.ProdSteps = 40
	proto.MinimizeIters = 5
	est := runner.Estimate(chem.FromID(1), nil, proto)
	if _, err := d.Run([]esmacs.Estimate{est}); err == nil {
		t.Fatal("no error for estimates without trajectories")
	}
}

func TestMaxFramesSubsampling(t *testing.T) {
	ests := fastEstimates(t, 3)
	d := NewDriver(receptor.PLPro())
	d.Cfg = fastConfig()
	d.Cfg.MaxFrames = 30
	rep, err := d.Run(ests)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 30 {
		t.Fatalf("frames = %d, want capped 30", rep.Frames)
	}
}

func TestIterateRestartsFromSelections(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	ests := fastEstimates(t, 2)
	d := NewDriver(receptor.PLPro())
	d.Cfg = fastConfig()
	rep, err := d.Run(ests)
	if err != nil {
		t.Fatal(err)
	}
	sels := rep.Selections[:2]
	trs := d.Iterate(sels, func(id uint64) *md.System {
		return md.NewSystem(receptor.PLPro(), chem.FromID(id), nil)
	}, 100)
	if len(trs) != 2 {
		t.Fatalf("trajectories = %d", len(trs))
	}
	for _, tr := range trs {
		if len(tr.Frames) == 0 {
			t.Fatal("restarted trajectory empty")
		}
	}
}

func TestDeterministicRun(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	ests := fastEstimates(t, 2)
	d1 := NewDriver(receptor.PLPro())
	d1.Cfg = fastConfig()
	d2 := NewDriver(receptor.PLPro())
	d2.Cfg = fastConfig()
	r1, err1 := d1.Run(ests)
	r2, err2 := d2.Run(ests)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.ValRecon != r2.ValRecon {
		t.Fatalf("not deterministic: %v vs %v", r1.ValRecon, r2.ValRecon)
	}
	for i := range r1.Selections {
		if r1.Selections[i].Ref != r2.Selections[i].Ref {
			t.Fatalf("selection %d differs", i)
		}
	}
}
