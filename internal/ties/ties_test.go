package ties

import (
	"math"
	"testing"

	"impeccable/internal/chem"
	"impeccable/internal/receptor"
	"impeccable/internal/xrand"
)

// fastConfig shrinks the windows/durations for unit tests.
func fastConfig() Config {
	cfg := Default()
	cfg.Windows = 5
	cfg.Replicas = 3
	cfg.EquilSteps = 30
	cfg.ProdSteps = 120
	cfg.MinimizeIters = 20
	return cfg
}

func TestIdentityTransformIsZero(t *testing.T) {
	// A → A must give ΔΔG = 0 exactly (∂U/∂λ ≡ 0).
	tg := receptor.PLPro()
	m := chem.FromID(5)
	res := Compute(tg, m, m, fastConfig(), 1)
	if res.DeltaDeltaG != 0 {
		t.Fatalf("identity ΔΔG = %v", res.DeltaDeltaG)
	}
	for _, p := range res.Profile {
		if p.Mean != 0 || p.StdErr != 0 {
			t.Fatalf("identity profile nonzero at λ=%v: %+v", p.Lambda, p)
		}
	}
}

func TestAntisymmetry(t *testing.T) {
	// ΔΔG(A→B) ≈ −ΔΔG(B→A). The two legs simulate different geometries
	// (A's vs B's conformer), so equality is statistical, not exact.
	tg := receptor.PLPro()
	a, b := chem.FromID(11), chem.FromID(12)
	ab := Compute(tg, a, b, fastConfig(), 1)
	ba := Compute(tg, b, a, fastConfig(), 1)
	sum := ab.DeltaDeltaG + ba.DeltaDeltaG
	tol := 3*(ab.StdErr+ba.StdErr) + 1.5
	if math.Abs(sum) > tol {
		t.Fatalf("antisymmetry violated: %v + %v = %v (tol %v)",
			ab.DeltaDeltaG, ba.DeltaDeltaG, sum, tol)
	}
}

func TestProfileShape(t *testing.T) {
	tg := receptor.PLPro()
	res := Compute(tg, chem.FromID(3), chem.FromID(4), fastConfig(), 2)
	if len(res.Profile) != 5 {
		t.Fatalf("profile windows = %d", len(res.Profile))
	}
	if res.Profile[0].Lambda != 0 || res.Profile[4].Lambda != 1 {
		t.Fatalf("λ grid endpoints wrong: %v .. %v",
			res.Profile[0].Lambda, res.Profile[4].Lambda)
	}
	for _, p := range res.Profile {
		if math.IsNaN(p.Mean) || p.StdErr < 0 {
			t.Fatalf("bad profile point %+v", p)
		}
	}
	if res.Steps != int64(5*3*(30+120)) {
		t.Fatalf("steps = %d", res.Steps)
	}
	if res.Flops <= 0 {
		t.Fatal("flops missing")
	}
}

func TestSignTracksGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	// For pairs with a large true affinity gap, the TI sign should agree
	// with the oracle most of the time (alchemical methods sit at the
	// top of the paper's accuracy ladder).
	tg := receptor.PLPro()
	r := xrand.New(7)
	agree, total := 0, 0
	cfg := fastConfig()
	for total < 8 {
		a, b := chem.FromID(r.Uint64()), chem.FromID(r.Uint64())
		gap := tg.TrueAffinity(b) - tg.TrueAffinity(a)
		if math.Abs(gap) < 4 { // only clearly separated pairs
			continue
		}
		res := Compute(tg, a, b, cfg, uint64(total))
		if (res.DeltaDeltaG < 0) == (gap < 0) {
			agree++
		}
		total++
	}
	if agree < 6 {
		t.Fatalf("TI sign agreed with truth in only %d/%d separated pairs", agree, total)
	}
	t.Logf("sign agreement: %d/%d", agree, total)
}

func TestDeterministic(t *testing.T) {
	tg := receptor.PLPro()
	a, b := chem.FromID(21), chem.FromID(22)
	r1 := Compute(tg, a, b, fastConfig(), 9)
	r2 := Compute(tg, a, b, fastConfig(), 9)
	if r1.DeltaDeltaG != r2.DeltaDeltaG {
		t.Fatalf("not deterministic: %v vs %v", r1.DeltaDeltaG, r2.DeltaDeltaG)
	}
}

func TestNodeHoursOrderOfMagnitude(t *testing.T) {
	// Table 2: TI ≈ 640 node-hours/ligand, ~128× ESMACS-FG. With the
	// default protocol: 11 windows × 5 replicas × 6 ns-units × 64 nodes.
	cfg := Default()
	steps := int64(cfg.Windows * cfg.Replicas * (cfg.EquilSteps + cfg.ProdSteps))
	nh := NodeHours(steps)
	if nh < 100 || nh > 1500 {
		t.Fatalf("TI node-hours = %v, want same order as 640", nh)
	}
	t.Logf("TI node-hours per transformation: %.0f (paper: 640)", nh)
}

func BenchmarkComputeFast(b *testing.B) {
	tg := receptor.PLPro()
	x, y := chem.FromID(1), chem.FromID(2)
	cfg := fastConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Compute(tg, x, y, cfg, 1)
	}
}
