// Package ties implements TIES — Thermodynamic Integration with Enhanced
// Sampling (Coveney et al.) — the lead-optimization stage the paper's
// Table 2 lists as two orders of magnitude costlier than ESMACS-FG
// ("BFE-TI, not integrated": 640 node-hours/ligand) and §4 places at the
// top of the accuracy ladder ("alchemical methods are theoretically the
// most exact").
//
// TIES computes the *relative* binding free energy ΔΔG between two
// ligands A and B by alchemically transforming the ligand-receptor
// coupling along λ ∈ [0, 1] and integrating the ensemble average of
// ∂U/∂λ over λ windows, with an independent replica ensemble per window
// (the "enhanced sampling" part, exactly like ESMACS's replicas).
//
// On this substrate the transformation is a single-topology morph of the
// (well × bead-class) depth table from A's to B's on A's conformer
// geometry: U(λ) = U_rest + U_wells((1-λ)·D_A + λ·D_B), so
// ∂U/∂λ = U_wells(D_B) − U_wells(D_A) analytically (U is linear in the
// depths). The solvent leg vanishes because ligands interact only with
// the receptor here; both simplifications are documented in DESIGN.md.
package ties

import (
	"math"
	"runtime"
	"sync"

	"impeccable/internal/chem"
	"impeccable/internal/md"
	"impeccable/internal/receptor"
	"impeccable/internal/xrand"
)

// Config parameterizes a TIES calculation.
type Config struct {
	Windows       int // λ windows (trapezoid nodes), ≥ 2
	Replicas      int // independent replicas per window
	EquilSteps    int
	ProdSteps     int
	SampleEach    int
	MinimizeIters int
	Integ         md.Integrator
}

// Default returns the standard configuration: 11 λ-windows × 5 replicas,
// the usual TIES ensemble shape.
func Default() Config {
	return Config{
		Windows:       11,
		Replicas:      5,
		EquilSteps:    2 * stepsPerNs,
		ProdSteps:     4 * stepsPerNs,
		SampleEach:    20,
		MinimizeIters: 60,
		Integ:         md.DefaultIntegrator(),
	}
}

// stepsPerNs matches the esmacs calibration.
const stepsPerNs = 200

// LambdaPoint is one node of the ∂U/∂λ profile.
type LambdaPoint struct {
	Lambda float64
	Mean   float64 // ensemble mean of ∂U/∂λ
	StdErr float64 // standard error over replicas
}

// Result is a completed TIES calculation.
type Result struct {
	MolA, MolB  uint64
	DeltaDeltaG float64 // ΔG(B) − ΔG(A), kcal/mol (negative: B binds better)
	StdErr      float64 // error propagated through the quadrature
	Profile     []LambdaPoint
	Steps       int64
	Flops       int64
}

// Compute runs TIES for the A→B transformation against the target. The
// ligand geometry is A's conformer; the coupling morphs between the two
// molecules' well-depth tables.
func Compute(t *receptor.Target, a, b *chem.Molecule, cfg Config, seed uint64) Result {
	dA := t.WellDepths(a)
	dB := t.WellDepths(b)

	res := Result{MolA: a.ID, MolB: b.ID, Profile: make([]LambdaPoint, cfg.Windows)}
	type windowOut struct {
		mean, se float64
		steps    int64
	}
	outs := make([]windowOut, cfg.Windows)

	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Windows {
		workers = cfg.Windows
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	next := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				wi := next
				next++
				mu.Unlock()
				if wi >= cfg.Windows {
					return
				}
				lambda := float64(wi) / float64(cfg.Windows-1)
				mean, se, steps := window(t, a, dA, dB, lambda, cfg, seed, wi)
				outs[wi] = windowOut{mean, se, steps}
			}
		}()
	}
	wg.Wait()

	for wi := range outs {
		res.Profile[wi] = LambdaPoint{
			Lambda: float64(wi) / float64(cfg.Windows-1),
			Mean:   outs[wi].mean,
			StdErr: outs[wi].se,
		}
		res.Steps += outs[wi].steps
	}
	// Trapezoidal quadrature of the profile and error propagation.
	var dg, varSum float64
	for i := 0; i+1 < len(res.Profile); i++ {
		h := res.Profile[i+1].Lambda - res.Profile[i].Lambda
		dg += h * (res.Profile[i].Mean + res.Profile[i+1].Mean) / 2
		e0, e1 := res.Profile[i].StdErr, res.Profile[i+1].StdErr
		varSum += (h * h / 4) * (e0*e0 + e1*e1)
	}
	res.DeltaDeltaG = dg
	res.StdErr = math.Sqrt(varSum)
	sys := md.NewSystem(t, a, nil)
	res.Flops = res.Steps * sys.FlopsPerStep()
	return res
}

// window runs one λ window's replica ensemble, returning the mean and
// standard error of ∂U/∂λ and the steps spent.
func window(t *receptor.Target, a *chem.Molecule, dA, dB [][chem.NumBeadClasses]float64,
	lambda float64, cfg Config, seed uint64, wi int) (mean, se float64, steps int64) {

	mix := make([][chem.NumBeadClasses]float64, len(dA))
	for w := range dA {
		for c := 0; c < int(chem.NumBeadClasses); c++ {
			mix[w][c] = (1-lambda)*dA[w][c] + lambda*dB[w][c]
		}
	}
	repMeans := make([]float64, cfg.Replicas)
	for rep := 0; rep < cfg.Replicas; rep++ {
		sys := md.NewSystem(t, a, nil)
		sys.SetWellDepths(mix)
		rng := xrand.NewFrom(seed^a.ID, uint64(wi)<<16|uint64(rep))
		md.Minimize(sys, cfg.MinimizeIters, 1e-3)
		cfg.Integ.InitVelocities(sys, rng)
		md.Run(sys, cfg.Integ, md.RunConfig{Steps: cfg.EquilSteps}, rng)
		var acc float64
		var n int
		for s := 0; s < cfg.ProdSteps; s++ {
			cfg.Integ.Step(sys, rng)
			if (s+1)%cfg.SampleEach == 0 {
				acc += sys.WellEnergy(dB) - sys.WellEnergy(dA)
				n++
			}
		}
		if n > 0 {
			repMeans[rep] = acc / float64(n)
		}
		steps += int64(cfg.EquilSteps + cfg.ProdSteps)
	}
	var sum, sumsq float64
	for _, v := range repMeans {
		sum += v
		sumsq += v * v
	}
	nf := float64(cfg.Replicas)
	mean = sum / nf
	if cfg.Replicas > 1 {
		variance := sumsq/nf - mean*mean
		if variance < 0 {
			variance = 0
		}
		se = math.Sqrt(variance / (nf - 1))
	}
	return mean, se, steps
}

// NodeHours converts steps to simulated Summit node-hours with the same
// calibration as esmacs (one CG ligand = 30 ns-units = 0.5 node-hours),
// times the 64-node footprint of a TI task (Table 2).
func NodeHours(steps int64) float64 {
	cgSteps := float64(6 * 5 * stepsPerNs)
	return 0.5 * float64(steps) / cgSteps * 64 / 1
}
