package stats

import (
	"math"
	"strings"
	"testing"

	"impeccable/internal/xrand"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Q25 != 2 || s.Q75 != 4 {
		t.Fatalf("quartiles = %v, %v", s.Q25, s.Q75)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Quantile(sorted, 0.5); got != 5 {
		t.Fatalf("median of {0,10} = %v", got)
	}
	if got := Quantile(sorted, 0); got != 0 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(sorted, 1); got != 10 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := Pearson(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect corr = %v", got)
	}
	c := []float64{8, 6, 4, 2}
	if got := Pearson(a, c); math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti corr = %v", got)
	}
	if got := Pearson(a, []float64{1}); got != 0 {
		t.Fatalf("mismatched corr = %v", got)
	}
	if got := Pearson([]float64{1, 1}, []float64{2, 3}); got != 0 {
		t.Fatalf("degenerate corr = %v", got)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5, 1.6, 9.9, -5, 100}, 0, 10, 10)
	if h.Total != 6 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Counts[0] != 2 { // 0.5 and clamped -5
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 2 { // 1.5, 1.6
		t.Fatalf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 9.9 and clamped 100
		t.Fatalf("bin9 = %d", h.Counts[9])
	}
	if got := h.BinCenter(0); got != 0.5 {
		t.Fatalf("bin center = %v", got)
	}
}

func TestHistogramMode(t *testing.T) {
	r := xrand.New(1)
	x := make([]float64, 10000)
	for i := range x {
		x[i] = r.Norm(5, 1)
	}
	h := NewHistogram(x, 0, 10, 20)
	center := h.BinCenter(h.Mode())
	if math.Abs(center-5) > 1 {
		t.Fatalf("mode at %v, want ≈5", center)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram([]float64{1, 1, 2}, 0, 3, 3)
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Fatal("render missing bars")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Fatalf("render rows wrong:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "bbbb"}, [][]string{{"xxxxx", "y"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("separator misaligned:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"x", "y"}, [][]string{{"1", "a,b"}, {"2", "q\"q"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,\"a,b\"\n2,\"q\"\"q\"\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestTimeSeriesRender(t *testing.T) {
	ts := []float64{0, 1, 2, 3, 4}
	vs := []float64{0, 10, 10, 5, 0}
	out := TimeSeries(ts, vs, 40, 5)
	if !strings.Contains(out, "#") {
		t.Fatal("time series missing marks")
	}
	if got := TimeSeries(nil, nil, 40, 5); got != "(no data)\n" {
		t.Fatalf("empty series = %q", got)
	}
}

func TestScatterRender(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}, {0.5, 0.5}}
	mark := []bool{false, true, false}
	out := Scatter(pts, mark, 20, 10)
	if !strings.Contains(out, "O") || !strings.Contains(out, ".") {
		t.Fatalf("scatter missing markers:\n%s", out)
	}
	if got := Scatter(nil, nil, 20, 10); got != "(no data)\n" {
		t.Fatalf("empty scatter = %q", got)
	}
	// Degenerate (all-identical) points must not divide by zero.
	same := [][]float64{{2, 3}, {2, 3}}
	if out := Scatter(same, nil, 20, 10); !strings.Contains(out, ".") {
		t.Fatalf("degenerate scatter:\n%s", out)
	}
}
